// Ablation 6 (DESIGN.md §5): checkpoint interval vs write-throughput dip
// magnitude in the native store (Neo4j analog). Figure 3 shows Neo4j's
// update rate periodically collapsing; this bench sweeps the checkpoint
// interval and reports mean vs minimum per-bucket write rates.

#include <cstdio>

#include "bench_common.h"
#include "engines/native/native_graph.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: native-store checkpoint interval vs write "
              "dips ===\n");
  const int64_t writes = bench::FlagInt(argc, argv, "writes", 60000);
  const int64_t bucket_ms = 50;

  TablePrinter table("Checkpoint interval vs write throughput stability");
  table.SetHeader({"Interval (writes)", "Mean writes/bucket",
                   "Min writes/bucket", "Dip ratio", "Checkpoints"});

  obs::BenchReport report("ablation_checkpoint");
  report.SetParam("writes", Json::Int(writes));
  report.SetParam("bucket_ms", Json::Int(bucket_ms));

  for (uint64_t interval : {uint64_t{0}, uint64_t{20000}, uint64_t{5000},
                            uint64_t{1000}}) {
    NativeGraphOptions options;
    options.checkpoint_interval_writes = interval;
    options.checkpoint_micros_per_dirty_write = 30;
    options.checkpoint_max_pause_micros = 60000;
    NativeGraph graph(options);

    std::vector<uint64_t> buckets;
    Stopwatch clock;
    for (int64_t i = 0; i < writes; ++i) {
      if (!graph.AddVertex("Person", {{"id", Value(i)}}).ok()) return 1;
      size_t bucket = size_t(clock.ElapsedMicros() / 1000 / bucket_ms);
      if (buckets.size() <= bucket) buckets.resize(bucket + 1, 0);
      ++buckets[bucket];
    }
    if (!buckets.empty()) buckets.pop_back();  // drop partial tail bucket
    if (buckets.empty()) buckets.push_back(uint64_t(writes));

    uint64_t total = 0, min_bucket = ~uint64_t{0};
    for (uint64_t b : buckets) {
      total += b;
      min_bucket = std::min(min_bucket, b);
    }
    double mean = double(total) / double(buckets.size());
    table.AddRow({interval == 0 ? "off" : std::to_string(interval),
                  StringPrintf("%.0f", mean),
                  std::to_string(min_bucket),
                  StringPrintf("%.2f", mean > 0 ? double(min_bucket) / mean
                                                : 0.0),
                  std::to_string(graph.checkpoints_taken())});
    Json metrics = Json::Object();
    metrics.Set("interval_writes", Json::Int(int64_t(interval)));
    metrics.Set("mean_writes_per_bucket", Json::Number(mean));
    metrics.Set("min_writes_per_bucket", Json::Int(int64_t(min_bucket)));
    metrics.Set("dip_ratio",
                Json::Number(mean > 0 ? double(min_bucket) / mean : 0.0));
    metrics.Set("checkpoints", Json::Int(int64_t(graph.checkpoints_taken())));
    report.AddSystem(interval == 0 ? "interval=off"
                                   : "interval=" + std::to_string(interval),
                     std::move(metrics));
  }
  table.Print();
  std::printf("\nExpected shape: shorter intervals produce more frequent, "
              "deeper dips (lower min/mean ratio).\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
