// Ablation (DESIGN.md §12): what durability costs the BerkeleyDB-analog
// write path. Three configurations of the same B-tree contract:
//
//   in-memory        — BTreeKv, the paper's memory-resident methodology
//   paged            — PagedBTreeKv over the pager/WAL, group durability
//                      (log buffered, fsync at checkpoints/evictions)
//   paged+fsync      — PagedBTreeKv with fsync_on_commit: every Put is
//                      a logged, fsynced commit before it acks
//
// Reports load/read/update throughput plus the WAL traffic behind it, so
// the gap between "specialized vs general" and "memory-resident vs
// durable" can be separated when reading the paper's Table 4/Figure 3.

#include <cstdio>

#include "bench_common.h"
#include "kv/btree_kv.h"
#include "kv/paged_btree_kv.h"
#include "obs/metrics.h"
#include "storage/durability.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace graphbench {
namespace {

std::string KeyFor(int64_t i) {
  return StringPrintf("person:%012lld", (long long)i);
}

struct ModeResult {
  double load_kops = 0;
  double get_kops = 0;
  double update_kops = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_bytes = 0;
  uint64_t checkpoints = 0;
};

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: durability cost on the Titan-B substrate ===\n");
  const int64_t keys = bench::FlagInt(argc, argv, "keys", 20000);
  const int64_t gets = bench::FlagInt(argc, argv, "gets", 40000);
  const int64_t updates = bench::FlagInt(argc, argv, "updates", 10000);
  const std::string dir =
      bench::FlagValue(argc, argv, "durable_dir", "ablation_durable");
  const std::string value(120, 'v');

  storage::FileSystem* fs = storage::PosixFileSystem::Default();
  Status dir_ok = fs->CreateDir(dir);
  if (!dir_ok.ok()) {
    std::fprintf(stderr, "--durable_dir: %s\n", dir_ok.ToString().c_str());
    return 2;
  }

  TablePrinter table("Durability ablation — B-tree KV substrate");
  table.SetHeader({"Mode", "Load kops/s", "Get kops/s", "Update kops/s",
                   "WAL fsyncs", "WAL MB", "Checkpoints"});

  obs::BenchReport report("ablation_durability");
  report.SetParam("keys", Json::Int(keys));
  report.SetParam("gets", Json::Int(gets));
  report.SetParam("updates", Json::Int(updates));
  report.SetParam("value_bytes", Json::Int(int64_t(value.size())));

  const char* kModes[] = {"in-memory", "paged", "paged+fsync"};
  for (const char* mode : kModes) {
    const bool paged = std::string(mode) != "in-memory";
    const bool fsync_commit = std::string(mode) == "paged+fsync";

    std::unique_ptr<KvStore> kv;
    storage::Pager* pager = nullptr;
    if (paged) {
      std::string stem = dir + "/" + (fsync_commit ? "fsync" : "group");
      (void)fs->Remove(stem + ".db");
      (void)fs->Remove(stem + ".wal");
      storage::PagerOptions options;
      options.cache_pages = 2048;
      options.fsync_on_commit = fsync_commit;
      Result<std::unique_ptr<PagedBTreeKv>> opened = PagedBTreeKv::Open(
          fs, stem + ".db", stem + ".wal", options);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s: open: %s\n", mode,
                     opened.status().ToString().c_str());
        return 1;
      }
      pager = opened.value()->pager();
      kv = std::move(opened).value();
    } else {
      kv = std::make_unique<BTreeKv>();
    }

    uint64_t fsyncs_before = pager ? pager->wal()->fsyncs() : 0;
    uint64_t bytes_before = pager ? pager->wal()->log_bytes() : 0;

    ModeResult r;
    Stopwatch timer;
    for (int64_t i = 0; i < keys; ++i) {
      if (!kv->Put(KeyFor(i), value).ok()) return 1;
    }
    r.load_kops = double(keys) / timer.ElapsedSeconds() / 1000.0;

    Rng rng(7);
    timer.Reset();
    std::string out;
    for (int64_t i = 0; i < gets; ++i) {
      if (!kv->Get(KeyFor(int64_t(rng.Uniform(uint64_t(keys)))), &out)
               .ok()) {
        return 1;
      }
    }
    r.get_kops = double(gets) / timer.ElapsedSeconds() / 1000.0;

    timer.Reset();
    for (int64_t i = 0; i < updates; ++i) {
      if (!kv->Put(KeyFor(int64_t(rng.Uniform(uint64_t(keys)))), value)
               .ok()) {
        return 1;
      }
    }
    r.update_kops = double(updates) / timer.ElapsedSeconds() / 1000.0;

    if (pager != nullptr) {
      if (!pager->Checkpoint().ok()) return 1;
      r.wal_fsyncs = pager->wal()->fsyncs() - fsyncs_before;
      r.wal_bytes = pager->wal()->log_bytes() - bytes_before;
      r.checkpoints = pager->checkpoints_taken();
    }

    table.AddRow({mode, StringPrintf("%.1f", r.load_kops),
                  StringPrintf("%.1f", r.get_kops),
                  StringPrintf("%.1f", r.update_kops),
                  std::to_string(r.wal_fsyncs),
                  StringPrintf("%.1f", double(r.wal_bytes) / 1e6),
                  std::to_string(r.checkpoints)});
    Json metrics = Json::Object();
    metrics.Set("load_kops", Json::Number(r.load_kops));
    metrics.Set("get_kops", Json::Number(r.get_kops));
    metrics.Set("update_kops", Json::Number(r.update_kops));
    metrics.Set("wal_fsyncs", Json::Int(int64_t(r.wal_fsyncs)));
    metrics.Set("wal_bytes", Json::Int(int64_t(r.wal_bytes)));
    metrics.Set("checkpoints", Json::Int(int64_t(r.checkpoints)));
    report.AddSystem(mode, std::move(metrics));
  }
  table.Print();
  std::printf("\nExpected shape: paged reads stay near in-memory (the "
              "buffer pool holds the working set; reads never touch the "
              "WAL) while paged writes pay WAL serialization + page "
              "logging; paged+fsync further collapses write throughput "
              "to the fsync rate — the cost the paper's memory-resident "
              "runs never pay.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
