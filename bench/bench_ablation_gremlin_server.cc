// Ablation 1 (DESIGN.md §5): what does the Gremlin Server layer itself
// cost? Runs the four read queries against the same provider twice —
// through the server (GraphSON codec + request queue + worker pool) and
// embedded (direct step execution) — isolating the overhead §4.2/§4.4
// attribute to the server.

#include <cstdio>

#include "bench_common.h"
#include "snb/datagen.h"
#include "snb/params.h"
#include "sut/gremlin_sut.h"
#include "util/stopwatch.h"

namespace graphbench {
namespace {

double MeanMs(GremlinServer* server, const Traversal& t, bool embedded,
              int reps) {
  Stopwatch clock;
  int ok = 0;
  for (int i = 0; i < reps; ++i) {
    auto r = embedded ? server->SubmitEmbedded(t) : server->Submit(t);
    if (r.ok()) ++ok;
  }
  return ok ? clock.ElapsedMillis() / ok : -1;
}

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: Gremlin Server layer on/off (Neo4j-Gremlin "
              "provider) ===\n");
  int reps = int(bench::FlagInt(argc, argv, "reps", 100));

  snb::Dataset data = snb::Generate(snb::ScaleA());
  std::unique_ptr<GremlinSut> sut = MakeNeo4jGremlinSut();
  if (Status s = sut->Load(data); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  snb::ParamPools params(data, 7);

  TablePrinter table("Gremlin Server vs embedded execution (mean ms)");
  table.SetHeader({"Query", "Via server", "Embedded", "Server overhead"});

  struct QueryCase {
    const char* name;
    Traversal traversal;
  };
  std::vector<QueryCase> cases;
  {
    QueryCase point{"Point lookup", {}};
    point.traversal.V()
        .HasIndexed("Person", "id", Value(params.NextPersonId()))
        .ValueMap({"firstName", "lastName", "gender", "birthday",
                   "browserUsed", "locationIP"});
    cases.push_back(std::move(point));

    QueryCase onehop{"1-hop", {}};
    onehop.traversal.V()
        .HasIndexed("Person", "id", Value(params.NextPersonId()))
        .Both("knows")
        .ValueMap({"id", "firstName", "lastName"});
    cases.push_back(std::move(onehop));

    QueryCase twohop{"2-hop", {}};
    twohop.traversal.V()
        .HasIndexed("Person", "id", Value(params.NextPersonId()))
        .As("p")
        .Both("knows")
        .Both("knows")
        .WhereNeq("p")
        .Dedup()
        .Values("id");
    cases.push_back(std::move(twohop));

    auto [a, b] = params.NextPersonPair();
    QueryCase sp{"Shortest path", {}};
    sp.traversal.V()
        .HasIndexed("Person", "id", Value(a))
        .ShortestPath("knows", "id", Value(b));
    cases.push_back(std::move(sp));
  }

  obs::BenchReport report("ablation_gremlin_server", "SF-A (SF3 analog)");
  report.SetParam("reps", Json::Int(reps));

  for (const QueryCase& c : cases) {
    double via_server = MeanMs(sut->server(), c.traversal, false, reps);
    double embedded = MeanMs(sut->server(), c.traversal, true, reps);
    table.AddRow({c.name, bench::FormatMillis(via_server),
                  bench::FormatMillis(embedded),
                  embedded > 0
                      ? StringPrintf("%.2fx", via_server / embedded)
                      : "-"});
    Json metrics = Json::Object();
    metrics.Set("via_server_ms", Json::Number(via_server));
    metrics.Set("embedded_ms", Json::Number(embedded));
    report.AddSystem(c.name, std::move(metrics));
  }
  table.Print();

  // Per-stage attribution: the trace spans recorded inside Submit should
  // account for (nearly) all of the measured Submit latency.
  const obs::TraceRing& trace = sut->server()->trace();
  TablePrinter stages("Submit cost by pipeline stage");
  stages.SetHeader({"Stage", "Spans", "Total ms", "Mean us"});
  uint64_t stage_micros = 0;
  for (int i = 0; i < obs::kNumStages; ++i) {
    auto totals = trace.totals(obs::Stage(i));
    if (totals.count == 0) continue;
    stage_micros += totals.total_micros;
    stages.AddRow({obs::StageName(obs::Stage(i)),
                   std::to_string(totals.count),
                   StringPrintf("%.2f", totals.total_micros / 1000.0),
                   StringPrintf("%.1f", double(totals.total_micros) /
                                            double(totals.count))});
  }
  stages.Print();
  const Histogram& submit = sut->server()->submit_latency_micros();
  double submit_micros = submit.mean() * double(submit.count());
  if (submit_micros > 0) {
    double coverage = double(stage_micros) / submit_micros;
    std::printf("\ntrace coverage: stages sum to %.1f%% of total Submit "
                "latency (%s)\n", 100.0 * coverage,
                coverage > 0.9 && coverage < 1.1 ? "ok" : "OUT OF BOUNDS");
  }
  report.AttachTrace(trace);

  bench::WriteReport(report, argc, argv);
  return 0;
}
