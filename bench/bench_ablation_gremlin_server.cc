// Ablation 1 (DESIGN.md §5): what does the Gremlin Server layer itself
// cost? Runs the four read queries against the same provider twice —
// through the server (GraphSON codec + request queue + worker pool) and
// embedded (direct step execution) — isolating the overhead §4.2/§4.4
// attribute to the server.

#include <cstdio>

#include "bench_common.h"
#include "snb/datagen.h"
#include "snb/params.h"
#include "sut/gremlin_sut.h"
#include "util/stopwatch.h"

namespace graphbench {
namespace {

double MeanMs(GremlinServer* server, const Traversal& t, bool embedded,
              int reps) {
  Stopwatch clock;
  int ok = 0;
  for (int i = 0; i < reps; ++i) {
    auto r = embedded ? server->SubmitEmbedded(t) : server->Submit(t);
    if (r.ok()) ++ok;
  }
  return ok ? clock.ElapsedMillis() / ok : -1;
}

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: Gremlin Server layer on/off (Neo4j-Gremlin "
              "provider) ===\n");
  int reps = int(bench::FlagInt(argc, argv, "reps", 100));

  snb::Dataset data = snb::Generate(snb::ScaleA());
  std::unique_ptr<GremlinSut> sut = MakeNeo4jGremlinSut();
  if (Status s = sut->Load(data); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  snb::ParamPools params(data, 7);

  TablePrinter table("Gremlin Server vs embedded execution (mean ms)");
  table.SetHeader({"Query", "Via server", "Embedded", "Server overhead"});

  struct QueryCase {
    const char* name;
    Traversal traversal;
  };
  std::vector<QueryCase> cases;
  {
    QueryCase point{"Point lookup", {}};
    point.traversal.V()
        .HasIndexed("Person", "id", Value(params.NextPersonId()))
        .ValueMap({"firstName", "lastName", "gender", "birthday",
                   "browserUsed", "locationIP"});
    cases.push_back(std::move(point));

    QueryCase onehop{"1-hop", {}};
    onehop.traversal.V()
        .HasIndexed("Person", "id", Value(params.NextPersonId()))
        .Both("knows")
        .ValueMap({"id", "firstName", "lastName"});
    cases.push_back(std::move(onehop));

    QueryCase twohop{"2-hop", {}};
    twohop.traversal.V()
        .HasIndexed("Person", "id", Value(params.NextPersonId()))
        .As("p")
        .Both("knows")
        .Both("knows")
        .WhereNeq("p")
        .Dedup()
        .Values("id");
    cases.push_back(std::move(twohop));

    auto [a, b] = params.NextPersonPair();
    QueryCase sp{"Shortest path", {}};
    sp.traversal.V()
        .HasIndexed("Person", "id", Value(a))
        .ShortestPath("knows", "id", Value(b));
    cases.push_back(std::move(sp));
  }

  for (const QueryCase& c : cases) {
    double via_server = MeanMs(sut->server(), c.traversal, false, reps);
    double embedded = MeanMs(sut->server(), c.traversal, true, reps);
    table.AddRow({c.name, bench::FormatMillis(via_server),
                  bench::FormatMillis(embedded),
                  embedded > 0
                      ? StringPrintf("%.2fx", via_server / embedded)
                      : "-"});
  }
  table.Print();
  return 0;
}
