// Ablation (DESIGN.md §9): landmark-accelerated shortest paths. Every SUT
// answers the §4.2 single-pair shortest-path query twice — engine-native
// BFS (the paper's methodology, landmarks off) and through the shared
// landmark index (on) — at increasing write rates, where each write is a
// KNOWS insert or delete that invalidates the index. This isolates (a) how
// much of shortest-path latency the triangle-inequality bounds remove and
// (b) how quickly that advantage erodes when churn forces incremental
// repairs or full rebuilds. Both modes return exact hop counts, so the two
// columns are answer-identical by construction (enforced by
// tests/landmarks_churn_property_test.cc).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "snb/params.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: landmark index for shortest paths ===\n");

  snb::DatagenOptions scale = bench::ScaleFromFlag(argc, argv);
  // Smoke mode for CI: --persons overrides the scale to a tiny graph.
  const int64_t persons = bench::FlagInt(argc, argv, "persons", 0);
  if (persons > 0) scale.num_persons = uint32_t(persons);
  const int reps = int(bench::FlagInt(argc, argv, "reps", 100));
  const uint64_t seed = uint64_t(bench::FlagInt(argc, argv, "seed", 77));
  // Hub selection policy for the landmark build (DESIGN.md §9):
  // --landmark_selection=degree|coverage.
  const std::string selection =
      bench::FlagValue(argc, argv, "landmark_selection", "degree");
  if (selection != "degree" && selection != "coverage") {
    std::fprintf(stderr, "unknown --landmark_selection=%s "
                 "(want degree|coverage)\n", selection.c_str());
    return 1;
  }
  LandmarkOptions landmark_options;
  landmark_options.hub_selection = selection == "coverage"
                                       ? HubSelection::kCoverage
                                       : HubSelection::kDegree;
  snb::Dataset data = snb::Generate(scale);

  // Writes interleaved per query: 0 (read-only), then 1-in-4. Each write
  // pairs a KNOWS insert from the update stream with a later delete of the
  // same edge, so the graph stays near its loaded size and both
  // invalidation paths (unit-decrease repair and region re-settle) run.
  const double kWriteRates[] = {0.0, 0.25};
  std::vector<snb::UpdateOp> inserts;
  for (const snb::UpdateOp& op : data.update_stream) {
    if (op.kind == snb::UpdateOp::Kind::kAddFriendship) inserts.push_back(op);
  }

  TablePrinter table("Landmark ablation — mean shortest-path latency in ms, " +
                     bench::ScaleName(scale));
  table.SetHeader({"System", "Writes/query", "Plain BFS", "Landmarks",
                   "Speedup"});

  obs::BenchReport report("ablation_landmarks", bench::ScaleName(scale));
  report.SetParam("repetitions", Json::Int(reps));
  report.SetParam("seed", Json::Int(int64_t(seed)));
  report.SetParam("persons", Json::Int(int64_t(scale.num_persons)));
  report.SetParam("landmark_selection", Json::Str(selection));

  for (SutKind kind : AllSutKinds()) {
    constexpr int kNumRates = 2;
    double means[kNumRates][2] = {};
    LandmarkStats lm_stats;
    std::string name;
    bool loaded = true;
    for (int mode = 0; mode < 2 && loaded; ++mode) {
      const bool landmarks = mode == 1;
      std::unique_ptr<Sut> sut =
          MakeSut(kind, SutOptions{.landmarks = landmarks,
                                   .landmark_options = landmark_options});
      name = sut->name();
      Status s = sut->Load(data);
      if (!s.ok()) {
        std::fprintf(stderr, "load failed for %s: %s\n", name.c_str(),
                     s.ToString().c_str());
        loaded = false;
        break;
      }
      for (int ri = 0; ri < kNumRates; ++ri) {
        // Identical deterministic parameter sequence across modes/rates.
        snb::ParamPools params(data, seed);
        size_t next_insert = 0;
        std::vector<snb::UpdateOp> pending_removes;
        double write_debt = 0;
        Stopwatch clock;
        int completed = 0;
        for (int rep = 0; rep < reps; ++rep) {
          write_debt += kWriteRates[ri];
          while (write_debt >= 1.0 && next_insert < inserts.size()) {
            write_debt -= 1.0;
            // Alternate: drain one queued delete, else insert a new edge.
            if (!pending_removes.empty()) {
              snb::UpdateOp del = pending_removes.back();
              pending_removes.pop_back();
              (void)sut->Apply(del);
            } else {
              snb::UpdateOp ins = inserts[next_insert++];
              if (sut->Apply(ins).ok()) {
                snb::UpdateOp del = ins;
                del.kind = snb::UpdateOp::Kind::kRemoveFriendship;
                pending_removes.push_back(del);
              }
            }
          }
          auto [a, b] = params.NextPersonPair();
          if (sut->ShortestPathLen(a, b).ok()) ++completed;
        }
        means[ri][mode] =
            completed > 0 ? clock.ElapsedMillis() / double(completed) : -1;
      }
      if (landmarks) lm_stats = sut->landmark_stats();
    }
    if (!loaded) continue;

    Json metrics = Json::Object();
    const char* kRateKeys[] = {"read_only", "mixed"};
    for (int ri = 0; ri < kNumRates; ++ri) {
      double off = means[ri][0];
      double on = means[ri][1];
      table.AddRow({ri == 0 ? name : "",
                    StringPrintf("%.2f", kWriteRates[ri]),
                    bench::FormatMillis(off), bench::FormatMillis(on),
                    on > 0 ? StringPrintf("%.2fx", off / on) : "-"});
      metrics.Set(std::string(kRateKeys[ri]) + "_off_ms", Json::Number(off));
      metrics.Set(std::string(kRateKeys[ri]) + "_on_ms", Json::Number(on));
    }
    Json lm = Json::Object();
    lm.Set("hits", Json::Int(int64_t(lm_stats.hits)));
    lm.Set("pruned_searches", Json::Int(int64_t(lm_stats.pruned_searches)));
    lm.Set("prunes", Json::Int(int64_t(lm_stats.prunes)));
    lm.Set("rebuilds", Json::Int(int64_t(lm_stats.rebuilds)));
    lm.Set("repairs", Json::Int(int64_t(lm_stats.repairs)));
    lm.Set("fallbacks", Json::Int(int64_t(lm_stats.fallbacks)));
    metrics.Set("landmarks", std::move(lm));
    report.AddSystem(name, std::move(metrics));
  }
  table.Print();
  std::printf("\nExpected shape: at zero write rate the bounds answer most "
              "pairs without search (large speedup, hits >> pruned "
              "searches); under churn every KNOWS write pays an index "
              "repair, so the read-side gain shrinks and repairs/rebuilds "
              "climb. Both columns are exact hop counts — the index is an "
              "accelerator, never an approximation.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
