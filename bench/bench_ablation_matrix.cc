// Ablation (DESIGN.md §10): the linear-algebra engine's two structural
// choices, isolated on the matrix SUT alone.
//
// Part 1 — delta merge threshold. The KNOWS matrix is an immutable CSR
// body plus a per-row sorted delta overlay; the threshold decides how
// much pending churn accumulates before the overlay folds back into a
// fresh CSR. Threshold 1 degenerates to "rebuild CSR on every write"
// (pristine reads, punishing writes); never-merge degenerates to a pure
// delta list (cheap writes, every row gather pays the overlay walk).
// The sweep runs an interleaved read/write mix (OneHop + TwoHop gathers
// against KNOWS insert/delete pairs) at each threshold and reports both
// latencies plus the merge/rebuild counters that explain them.
//
// Part 2 — SpMV BFS vs pointer chasing. The same engine answers the
// §4.2 shortest-path query either by level-synchronous bitmap SpMV
// (frontier-at-a-time row gathers) or by a conventional per-vertex FIFO
// walk over the same delta-CSR rows, isolating the data-structure layout
// from the traversal strategy.

#include <cstddef>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "snb/params.h"
#include "sut/matrix_sut.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: matrix engine (delta-CSR merge, SpMV BFS) ===\n");

  snb::DatagenOptions scale = bench::ScaleFromFlag(argc, argv);
  // Smoke mode for CI: --persons overrides the scale to a tiny graph.
  const int64_t persons = bench::FlagInt(argc, argv, "persons", 0);
  if (persons > 0) scale.num_persons = uint32_t(persons);
  const int reps = int(bench::FlagInt(argc, argv, "reps", 200));
  const uint64_t seed = uint64_t(bench::FlagInt(argc, argv, "seed", 77));
  snb::Dataset data = snb::Generate(scale);

  // Two write sources that stress both overlay sides: friendship inserts
  // from the update stream land in the add-lists, deletes of distinct
  // snapshot edges (CSR-resident after Load) land in the del-lists.
  // Deleting a just-inserted edge would merely cancel its overlay adds, so
  // the sweep would never accumulate enough pending churn to cross the
  // mid thresholds.
  std::vector<snb::UpdateOp> inserts;
  for (const snb::UpdateOp& op : data.update_stream) {
    if (op.kind == snb::UpdateOp::Kind::kAddFriendship) inserts.push_back(op);
  }
  std::vector<snb::UpdateOp> snapshot_deletes;
  for (const snb::Knows& k : data.knows) {
    snb::UpdateOp del;
    del.kind = snb::UpdateOp::Kind::kRemoveFriendship;
    del.knows = k;
    snapshot_deletes.push_back(del);
  }

  obs::BenchReport report("ablation_matrix", bench::ScaleName(scale));
  report.SetParam("repetitions", Json::Int(reps));
  report.SetParam("seed", Json::Int(int64_t(seed)));
  report.SetParam("persons", Json::Int(int64_t(scale.num_persons)));

  // --- Part 1: merge-threshold sweep --------------------------------------
  struct Threshold {
    const char* label;
    size_t value;
  };
  const Threshold kThresholds[] = {
      {"1 (CSR always)", 1},
      {"64", 64},
      {"1024", 1024},
      {"never (pure delta)", SIZE_MAX},
  };

  TablePrinter sweep("Delta-CSR merge threshold — interleaved 1-hop/2-hop "
                     "reads with KNOWS churn, " +
                     bench::ScaleName(scale));
  sweep.SetHeader({"Threshold", "Read ms", "Write ms", "Merges", "Rebuilds",
                   "Pending"});

  Json sweep_json = Json::Object();
  for (const Threshold& t : kThresholds) {
    MatrixSut sut(MatrixEngineOptions{
        .csr = DeltaCsrOptions{.merge_threshold = t.value}});
    Status s = sut.Load(data);
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    // Identical deterministic sequence per threshold: one write per read
    // pair, alternating stream inserts with snapshot-edge deletes so both
    // overlay sides keep growing until a merge folds them.
    snb::ParamPools params(data, seed);
    size_t next_insert = 0, next_delete = 0;
    double read_ms = 0, write_ms = 0;
    int reads = 0, writes = 0;
    for (int rep = 0; rep < reps; ++rep) {
      const bool do_delete = rep % 2 == 1 &&
                             next_delete < snapshot_deletes.size();
      if (do_delete || next_insert < inserts.size()) {
        Stopwatch w;
        if (do_delete) {
          (void)sut.Apply(snapshot_deletes[next_delete++]);
        } else {
          (void)sut.Apply(inserts[next_insert++]);
        }
        write_ms += w.ElapsedMillis();
        ++writes;
      }
      int64_t id = params.NextPersonId();
      Stopwatch r;
      if (sut.OneHop(id).ok()) ++reads;
      if (sut.TwoHop(id).ok()) ++reads;
      read_ms += r.ElapsedMillis();
    }
    MatrixStats stats = sut.matrix_stats();
    double read_mean = reads > 0 ? read_ms / double(reads) : -1;
    double write_mean = writes > 0 ? write_ms / double(writes) : -1;
    sweep.AddRow({t.label, bench::FormatMillis(read_mean),
                  bench::FormatMillis(write_mean),
                  StringPrintf("%llu", (unsigned long long)stats.delta_merges),
                  StringPrintf("%llu", (unsigned long long)stats.csr_rebuilds),
                  StringPrintf("%llu",
                               (unsigned long long)stats.pending_delta)});
    Json cell = Json::Object();
    cell.Set("read_ms", Json::Number(read_mean));
    cell.Set("write_ms", Json::Number(write_mean));
    cell.Set("delta_merges", Json::Int(int64_t(stats.delta_merges)));
    cell.Set("csr_rebuilds", Json::Int(int64_t(stats.csr_rebuilds)));
    cell.Set("pending_delta", Json::Int(int64_t(stats.pending_delta)));
    sweep_json.Set(t.value == SIZE_MAX ? "never" : std::to_string(t.value),
                   std::move(cell));
  }
  sweep.Print();
  report.AddSystem("merge_threshold_sweep", std::move(sweep_json));

  // --- Part 2: SpMV BFS vs pointer chasing --------------------------------
  struct BfsMode {
    const char* label;
    MatrixBfsKind kind;
  };
  const BfsMode kModes[] = {
      {"SpMV (bitmap frontier)", MatrixBfsKind::kSpmv},
      {"Pointer chasing (FIFO)", MatrixBfsKind::kPointerChasing},
  };

  TablePrinter bfs("Shortest path — SpMV vs pointer chasing over the same "
                   "delta-CSR, " + bench::ScaleName(scale));
  bfs.SetHeader({"Traversal", "Mean ms", "Speedup", "Rows gathered"});

  double mode_means[2] = {-1, -1};
  uint64_t rows_gathered[2] = {0, 0};
  for (size_t mi = 0; mi < 2; ++mi) {
    MatrixSut sut(MatrixEngineOptions{.bfs = kModes[mi].kind});
    Status s = sut.Load(data);
    if (!s.ok()) {
      std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    snb::ParamPools params(data, seed);
    Stopwatch clock;
    int completed = 0;
    for (int rep = 0; rep < reps; ++rep) {
      auto [a, b] = params.NextPersonPair();
      if (sut.ShortestPathLen(a, b).ok()) ++completed;
    }
    mode_means[mi] =
        completed > 0 ? clock.ElapsedMillis() / double(completed) : -1;
    rows_gathered[mi] = sut.matrix_stats().spmv_rows;
  }
  Json bfs_json = Json::Object();
  for (size_t mi = 0; mi < 2; ++mi) {
    double base = mode_means[1];  // pointer chasing is the baseline
    bfs.AddRow({kModes[mi].label, bench::FormatMillis(mode_means[mi]),
                mode_means[mi] > 0 && base > 0
                    ? StringPrintf("%.2fx", base / mode_means[mi])
                    : "-",
                StringPrintf("%llu", (unsigned long long)rows_gathered[mi])});
    Json cell = Json::Object();
    cell.Set("mean_ms", Json::Number(mode_means[mi]));
    cell.Set("spmv_rows", Json::Int(int64_t(rows_gathered[mi])));
    bfs_json.Set(mi == 0 ? "spmv" : "pointer_chasing", std::move(cell));
  }
  bfs.Print();
  report.AddSystem("bfs_strategy", std::move(bfs_json));

  std::printf("\nExpected shape: threshold 1 pays a CSR re-pack per write "
              "(merges ≈ writes, cheapest reads); never-merge accumulates "
              "pending delta that every row gather re-walks; the middle "
              "thresholds amortize both. For BFS, the bitmap sweep costs "
              "n/64 words per level regardless of frontier width, so "
              "pointer chasing can win on short-diameter, narrow-frontier "
              "graphs — the matrix formulation's advantage is the masked "
              "row gathers (1-hop/2-hop), not the path search.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
