// Ablation (DESIGN.md §11): epoch-snapshot reads vs coarse reader-writer
// locking. The epoch arm is the SUT as shipped — hot read paths pin an
// epoch and walk immutable published versions, taking no reader lock. The
// coarse arm re-imposes the retired discipline from outside: a wrapper
// takes a shared_mutex in shared mode around every read and in exclusive
// mode around every write, so one writer stalls all readers exactly the
// way the pre-MVCC engines did. Sweeping reader counts × write pacing
// isolates (a) what reader-lock traffic costs even uncontended and (b) how
// reader throughput and tail latency collapse once a paced writer keeps
// taking the exclusive lock. Both arms run the same driver mix over the
// same snapshot, so rows differ only in concurrency control.

#include <cstdio>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "bench_common.h"
#include "driver/driver.h"
#include "mq/broker.h"
#include "snb/params.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

/// Re-imposes the coarse reader-writer lock the epoch subsystem retired.
/// Every read holds the lock in shared mode for its full duration, every
/// write in exclusive mode — the strictest form of what native_graph,
/// lsm_kv, and the matrix engine used to do internally per structure.
class CoarseLockSut : public Sut {
 public:
  explicit CoarseLockSut(std::unique_ptr<Sut> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }

  Status Load(const snb::Dataset& data) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Load(data);
  }
  Result<QueryResult> PointLookup(int64_t person_id) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->PointLookup(person_id);
  }
  Result<QueryResult> OneHop(int64_t person_id) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->OneHop(person_id);
  }
  Result<QueryResult> TwoHop(int64_t person_id) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->TwoHop(person_id);
  }
  Result<int> ShortestPathLen(int64_t from_person,
                              int64_t to_person) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->ShortestPathLen(from_person, to_person);
  }
  Result<QueryResult> RecentPosts(int64_t person_id,
                                  int64_t limit) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->RecentPosts(person_id, limit);
  }
  Result<QueryResult> FriendsWithName(
      int64_t person_id, const std::string& first_name) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->FriendsWithName(person_id, first_name);
  }
  Result<QueryResult> RepliesOfPost(int64_t post_id) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->RepliesOfPost(post_id);
  }
  Result<QueryResult> TopPosters(int64_t limit) override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->TopPosters(limit);
  }
  Status Apply(const snb::UpdateOp& op) override {
    std::unique_lock<std::shared_mutex> lock(mu_);
    return inner_->Apply(op);
  }
  uint64_t SizeBytes() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return inner_->SizeBytes();
  }

 private:
  std::unique_ptr<Sut> inner_;
  mutable std::shared_mutex mu_;
};

struct Arm {
  const char* id;
  bool coarse;
};

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: epoch-snapshot reads vs coarse RW locking ===\n");

  snb::DatagenOptions scale = bench::ScaleFromFlag(argc, argv);
  scale.update_window = 0.3;  // long stream so the paced writer never idles
  const int64_t persons = bench::FlagInt(argc, argv, "persons", 0);
  if (persons > 0) scale.num_persons = uint32_t(persons);
  const int64_t millis = bench::FlagInt(argc, argv, "millis", 1500);
  const double replay_rate =
      bench::FlagDouble(argc, argv, "replay_rate", 2000.0);

  // Reader-count sweep (--readers=1,4,16). Under- and over-subscribing the
  // machine are both interesting: the coarse arm loses ground in both.
  std::vector<size_t> reader_counts;
  {
    std::string csv = bench::FlagValue(argc, argv, "readers", "1,4,16");
    size_t value = 0;
    bool have = false;
    for (char c : csv + ",") {
      if (c >= '0' && c <= '9') {
        value = value * 10 + size_t(c - '0');
        have = true;
      } else if (c == ',') {
        if (have && value > 0) reader_counts.push_back(value);
        value = 0;
        have = false;
      } else {
        std::fprintf(stderr, "invalid --readers=%s (want e.g. 1,4,16)\n",
                     csv.c_str());
        return 1;
      }
    }
  }

  // One SUT per converted engine family: native adjacency (Cypher), LSM
  // KV (Titan-C), and the delta-CSR matrix engine. --suts=CSV overrides.
  std::vector<SutKind> kinds;
  {
    std::string csv =
        bench::FlagValue(argc, argv, "suts", "neo4j,titan-c,matrix");
    std::string token;
    for (char c : csv + ",") {
      if (c != ',') {
        token += c;
        continue;
      }
      if (token.empty()) continue;
      Result<SutKind> kind = ParseSutKind(token);
      if (!kind.ok()) {
        std::fprintf(stderr, "%s\n", kind.status().ToString().c_str());
        return 1;
      }
      kinds.push_back(*kind);
      token.clear();
    }
  }

  snb::Dataset data = snb::Generate(scale);
  std::printf("dataset: %llu vertices, %llu edges, %zu update ops\n\n",
              (unsigned long long)data.VertexCount(),
              (unsigned long long)data.EdgeCount(),
              data.update_stream.size());

  const Arm kArms[] = {{"coarse-lock", true}, {"epoch-snapshot", false}};
  const double kWriteRates[] = {0.0, replay_rate};

  TablePrinter table("MVCC ablation — reader throughput under write load, " +
                     bench::ScaleName(scale));
  table.SetHeader({"System", "Arm", "Readers", "Writes/s", "Reads/s",
                   "Read p99 (ms)"});

  obs::BenchReport report("ablation_mvcc", bench::ScaleName(scale));
  report.SetParam("run_millis", Json::Int(millis));
  report.SetParam("replay_rate", Json::Int(int64_t(replay_rate)));
  report.SetParam("persons", Json::Int(int64_t(scale.num_persons)));

  mq::Broker broker;
  int topic_seq = 0;
  for (SutKind kind : kinds) {
    for (const Arm& arm : kArms) {
      for (size_t readers : reader_counts) {
        for (double rate : kWriteRates) {
          // Fresh SUT per cell: paced runs mutate the store, and the two
          // arms must answer over identical snapshots.
          std::unique_ptr<Sut> sut = MakeSut(kind);
          if (arm.coarse) {
            sut = std::make_unique<CoarseLockSut>(std::move(sut));
          }
          std::string name = sut->name();
          Status load = sut->Load(data);
          if (!load.ok()) {
            table.AddRow({name, arm.id, std::to_string(readers),
                          "load error", load.ToString(), ""});
            continue;
          }
          std::string topic = "mvcc-" + std::to_string(topic_seq++);
          const bool writes = rate > 0;
          if (writes) {
            Status produced =
                InteractiveDriver::ProduceUpdates(&broker, topic, data);
            if (!produced.ok()) {
              table.AddRow({name, arm.id, std::to_string(readers),
                            "produce error", produced.ToString(), ""});
              continue;
            }
          } else {
            // Empty topic: the writer thread finds nothing and idles, so
            // the run measures the pure read side of each arm.
            Status created = broker.CreateTopic(topic, 1);
            if (!created.ok()) {
              table.AddRow({name, arm.id, std::to_string(readers),
                            "topic error", created.ToString(), ""});
              continue;
            }
          }
          DriverOptions options;
          options.num_readers = readers;
          options.run_millis = millis;
          options.two_hop_fraction = 0.25;
          options.replay_updates_per_second = writes ? rate : 0;
          InteractiveDriver driver(sut.get(), &broker, options);
          snb::ParamPools params(data, 55);
          auto metrics = driver.Run(topic, &params);
          if (!metrics.ok()) {
            table.AddRow({name, arm.id, std::to_string(readers),
                          "run error", metrics.status().ToString(), ""});
            continue;
          }
          table.AddRow(
              {name, arm.id, std::to_string(readers),
               StringPrintf("%.0f", metrics->writes_per_second),
               StringPrintf("%.0f", metrics->reads_per_second),
               StringPrintf(
                   "%.2f",
                   metrics->read_latency_micros.Percentile(99) / 1000.0)});
          Json row = Json::Object();
          row.Set("arm", Json::Str(arm.id));
          row.Set("readers", Json::Int(int64_t(readers)));
          row.Set("paced_rate", Json::Int(int64_t(rate)));
          row.Set("reads_per_second",
                  Json::Number(metrics->reads_per_second));
          row.Set("writes_per_second",
                  Json::Number(metrics->writes_per_second));
          row.Set("read_p99_us",
                  Json::Number(metrics->read_latency_micros.Percentile(99)));
          row.Set("read_errors", Json::Int(int64_t(metrics->read_errors)));
          report.AddSystem(SutKindId(kind), std::move(row));
        }
      }
    }
  }
  table.Print();
  std::printf("\ncoarse-lock re-imposes a shared_mutex around every SUT "
              "call (the retired\ndiscipline); epoch-snapshot is the "
              "shipped code — readers pin an epoch and\nnever block on "
              "writers.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
