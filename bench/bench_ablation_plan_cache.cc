// Ablation (DESIGN.md §8): prepared statements + plan cache. Every SUT
// runs the §4.2 read types twice — parse-per-call (the paper's
// methodology, cache off) and Prepare-once/bind-per-call (cache on) —
// isolating how much of each stack's read latency is statement
// translation rather than data access. The report embeds the on/off
// latency pairs and the engine cache's hit rate per system.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "lang/plan_cache.h"
#include "snb/params.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: prepared statements / plan cache ===\n");

  snb::DatagenOptions scale = bench::ScaleFromFlag(argc, argv);
  const int reps = int(bench::FlagInt(argc, argv, "reps", 100));
  const uint64_t seed = uint64_t(bench::FlagInt(argc, argv, "seed", 77));
  snb::Dataset data = snb::Generate(scale);

  enum QueryType { kPoint, kOneHop, kTwoHop, kShortestPath };
  const char* kNames[] = {"Point lookup", "1-hop", "2-hop", "Shortest path"};
  const char* kKeys[] = {"point_lookup", "one_hop", "two_hop",
                         "shortest_path"};

  TablePrinter table("Plan-cache ablation — mean read latency in ms, " +
                     bench::ScaleName(scale));
  table.SetHeader({"System", "Query", "Parse/call", "Prepared", "Speedup",
                   "Hit rate"});

  obs::BenchReport report("ablation_plan_cache", bench::ScaleName(scale));
  report.SetParam("repetitions", Json::Int(reps));
  report.SetParam("seed", Json::Int(int64_t(seed)));

  for (SutKind kind : AllSutKinds()) {
    // One mean latency per (query type, cache mode).
    double means[4][2] = {};
    lang::PlanCacheStats cache_stats;
    std::string name;
    bool loaded = true;
    for (int mode = 0; mode < 2 && loaded; ++mode) {
      const bool cached = mode == 1;
      std::unique_ptr<Sut> sut =
          MakeSut(kind, SutOptions{.plan_cache = cached});
      name = sut->name();
      Status s = sut->Load(data);
      if (!s.ok()) {
        std::fprintf(stderr, "load failed for %s: %s\n", name.c_str(),
                     s.ToString().c_str());
        loaded = false;
        break;
      }
      for (int qt = kPoint; qt <= kShortestPath; ++qt) {
        // Identical deterministic parameter sequence across modes.
        snb::ParamPools params(data, seed);
        Stopwatch clock;
        int completed = 0;
        for (int rep = 0; rep < reps; ++rep) {
          Status rs;
          switch (qt) {
            case kPoint:
              rs = sut->PointLookup(params.NextPersonId()).status();
              break;
            case kOneHop:
              rs = sut->OneHop(params.NextPersonId()).status();
              break;
            case kTwoHop:
              rs = sut->TwoHop(params.NextPersonId()).status();
              break;
            case kShortestPath: {
              auto [a, b] = params.NextPersonPair();
              rs = sut->ShortestPathLen(a, b).status();
              break;
            }
          }
          if (rs.ok()) ++completed;
        }
        means[qt][mode] =
            completed > 0 ? clock.ElapsedMillis() / double(completed) : -1;
      }
      if (cached) cache_stats = sut->plan_cache_stats();
    }
    if (!loaded) continue;

    Json metrics = Json::Object();
    for (int qt = kPoint; qt <= kShortestPath; ++qt) {
      double off = means[qt][0];
      double on = means[qt][1];
      table.AddRow({qt == kPoint ? name : "", kNames[qt],
                    bench::FormatMillis(off), bench::FormatMillis(on),
                    on > 0 ? StringPrintf("%.2fx", off / on) : "-",
                    qt == kPoint
                        ? StringPrintf("%.1f%%", 100.0 * cache_stats.HitRate())
                        : ""});
      metrics.Set(std::string(kKeys[qt]) + "_off_ms", Json::Number(off));
      metrics.Set(std::string(kKeys[qt]) + "_on_ms", Json::Number(on));
    }
    Json cache = Json::Object();
    cache.Set("hits", Json::Int(int64_t(cache_stats.hits)));
    cache.Set("misses", Json::Int(int64_t(cache_stats.misses)));
    cache.Set("evictions", Json::Int(int64_t(cache_stats.evictions)));
    cache.Set("hit_rate", Json::Number(cache_stats.HitRate()));
    metrics.Set("plan_cache", std::move(cache));
    report.AddSystem(name, std::move(metrics));
  }
  table.Print();
  std::printf("\nExpected shape: the declarative stacks (SQL, Cypher, "
              "SPARQL) gain most on point lookups and 1-hops, where "
              "parse+plan time is a large latency fraction; Gremlin "
              "submissions inline parameters into bytecode, so its "
              "server-side cache only hits on byte-identical requests.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
