// Ablation 3 (DESIGN.md §5): the RDF write tax. Virtuoso-SPARQL's slower
// updates (§4.3) are attributed to maintaining multiple indexes over one
// big triple table. This bench sweeps the triple store's index count 1-4
// and reports insert throughput and pattern-match latency, isolating
// maintenance cost vs read benefit.

#include <cstdio>

#include "bench_common.h"
#include "engines/rdf/triple_store.h"
#include "util/random.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: triple-store index count (RDF write tax) "
              "===\n");
  const int64_t n = bench::FlagInt(argc, argv, "triples", 200000);

  TablePrinter table("Index count vs insert throughput and read latency");
  table.SetHeader({"Indexes", "Inserts/s", "?p?o match (us)",
                   "??o match (us)"});

  obs::BenchReport report("ablation_rdf_indexes");
  report.SetParam("triples", Json::Int(n));

  for (int indexes = 1; indexes <= 4; ++indexes) {
    TripleStore store(indexes);
    Rng rng(7);
    Stopwatch insert_clock;
    for (int64_t i = 0; i < n; ++i) {
      store.Insert(rng.Uniform(50000), rng.Uniform(16),
                   rng.Uniform(50000));
    }
    double inserts_per_s = double(n) / insert_clock.ElapsedSeconds();

    // Reads: predicate-bound and object-bound patterns, the shapes SNB
    // BGPs produce.
    std::vector<Triple> out;
    Stopwatch po_clock;
    for (int i = 0; i < 200; ++i) {
      store.Match(kWildcard, rng.Uniform(16), rng.Uniform(50000), &out);
    }
    double po_us = double(po_clock.ElapsedMicros()) / 200.0;
    Stopwatch o_clock;
    for (int i = 0; i < 200; ++i) {
      store.Match(kWildcard, kWildcard, rng.Uniform(50000), &out);
    }
    double o_us = double(o_clock.ElapsedMicros()) / 200.0;

    table.AddRow({std::to_string(indexes),
                  StringPrintf("%.0f", inserts_per_s),
                  StringPrintf("%.1f", po_us),
                  StringPrintf("%.1f", o_us)});
    Json metrics = Json::Object();
    metrics.Set("indexes", Json::Int(indexes));
    metrics.Set("inserts_per_second", Json::Number(inserts_per_s));
    metrics.Set("po_match_us", Json::Number(po_us));
    metrics.Set("o_match_us", Json::Number(o_us));
    report.AddSystem("indexes=" + std::to_string(indexes),
                     std::move(metrics));
  }
  table.Print();
  std::printf("\nExpected shape: insert throughput falls as indexes are "
              "added; unbound-subject reads collapse without POS/OSP.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
