// Ablation 4 (DESIGN.md §5): row vs columnar write path. Figure 3's
// Postgres-over-Virtuoso write advantage (§4.3: ~1.6x) is attributed to
// storage format. This bench inserts identical SNB-person rows into the
// two Table implementations and reports insert throughput, then the
// read-side counterpoint: single-column projection scans.

#include <cstdio>

#include "bench_common.h"
#include "storage/column_table.h"
#include "storage/heap_table.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace graphbench {
namespace {

TableSchema PersonSchema() {
  using T = Value::Type;
  return TableSchema("person", {{"id", T::kInt},
                                {"firstName", T::kString},
                                {"lastName", T::kString},
                                {"gender", T::kString},
                                {"birthday", T::kInt},
                                {"creationDate", T::kInt},
                                {"browserUsed", T::kString},
                                {"locationIP", T::kString},
                                {"cityId", T::kInt}});
}

Row MakeRow(Rng* rng, int64_t id) {
  return Row{Value(id),
             Value("First" + std::to_string(rng->Uniform(100))),
             Value("Last" + std::to_string(rng->Uniform(100))),
             Value(rng->Bernoulli(0.5) ? "male" : "female"),
             Value(int64_t(rng->Uniform(1u << 30))),
             Value(int64_t(rng->Uniform(1u << 30))),
             Value("Firefox"),
             Value("10.0.0.1"),
             Value(int64_t(rng->Uniform(50)))};
}

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Ablation: row store vs column store write/read paths "
              "===\n");
  const int64_t n = bench::FlagInt(argc, argv, "rows", 100000);

  TablePrinter table("Row vs columnar storage (same schema, same data)");
  table.SetHeader({"Store", "Inserts/s", "Full-row get (us)",
                   "1-col projection scan (ms)"});

  obs::BenchReport report("ablation_row_vs_column");
  report.SetParam("rows", Json::Int(n));

  for (const char* which : {"heap (row)", "columnar"}) {
    std::unique_ptr<Table> t;
    if (std::string(which) == "heap (row)") {
      t = std::make_unique<HeapTable>(PersonSchema());
    } else {
      t = std::make_unique<ColumnTable>(PersonSchema());
    }
    Rng rng(3);
    Stopwatch insert_clock;
    for (int64_t i = 0; i < n; ++i) {
      if (!t->Insert(MakeRow(&rng, i)).ok()) return 1;
    }
    double inserts_per_s = double(n) / insert_clock.ElapsedSeconds();

    Stopwatch get_clock;
    Row row;
    for (int i = 0; i < 5000; ++i) {
      t->Get(RowId(rng.Uniform(uint64_t(n))), &row).ok();
    }
    double get_us = double(get_clock.ElapsedMicros()) / 5000.0;

    Stopwatch scan_clock;
    Value v;
    uint64_t sum = 0;
    for (auto it = t->NewScanIterator(); it->Valid(); it->Next()) {
      t->GetColumn(it->row_id(), 0, &v);
      sum += uint64_t(v.as_int());
    }
    double scan_ms = scan_clock.ElapsedMillis();

    table.AddRow({which, StringPrintf("%.0f", inserts_per_s),
                  StringPrintf("%.2f", get_us),
                  StringPrintf("%.1f (checksum %llu)", scan_ms,
                               (unsigned long long)(sum & 0xffff))});
    Json metrics = Json::Object();
    metrics.Set("inserts_per_second", Json::Number(inserts_per_s));
    metrics.Set("full_row_get_us", Json::Number(get_us));
    metrics.Set("projection_scan_ms", Json::Number(scan_ms));
    report.AddSystem(which, std::move(metrics));
  }
  table.Print();
  std::printf("\nExpected shape: the row store wins inserts and full-row "
              "gets; the column store wins narrow projections.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
