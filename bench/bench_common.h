#ifndef GRAPHBENCH_BENCH_BENCH_COMMON_H_
#define GRAPHBENCH_BENCH_BENCH_COMMON_H_

// Shared helpers for the paper-reproduction benchmark binaries.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/report.h"
#include "snb/datagen.h"
#include "sut/sut.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace graphbench {
namespace bench {

/// Minimal --flag=value parsing.
inline std::string FlagValue(int argc, char** argv, const char* name,
                             const char* fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (StartsWith(argv[i], prefix)) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

/// Exits with a usage error instead of crashing (std::stoll throws on
/// garbage, which used to surface as an unhandled exception).
[[noreturn]] inline void FlagParseError(const char* name,
                                        const std::string& value,
                                        const char* expected) {
  std::fprintf(stderr, "invalid value for --%s: \"%s\" (expected %s)\n",
               name, value.c_str(), expected);
  std::exit(2);
}

inline int64_t FlagInt(int argc, char** argv, const char* name,
                       int64_t fallback) {
  std::string v = FlagValue(argc, argv, name, "");
  if (v.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  int64_t parsed = std::strtoll(v.c_str(), &end, 10);
  if (errno != 0 || end == v.c_str() || *end != '\0') {
    FlagParseError(name, v, "an integer");
  }
  return parsed;
}

inline double FlagDouble(int argc, char** argv, const char* name,
                         double fallback) {
  std::string v = FlagValue(argc, argv, name, "");
  if (v.empty()) return fallback;
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(v.c_str(), &end);
  if (errno != 0 || end == v.c_str() || *end != '\0') {
    FlagParseError(name, v, "a number");
  }
  return parsed;
}

/// Accepts bare `--name` as true, or `--name=0/1/true/false/yes/no`.
inline bool FlagBool(int argc, char** argv, const char* name,
                     bool fallback) {
  std::string bare = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (bare == argv[i]) return true;
  }
  std::string v = FlagValue(argc, argv, name, "");
  if (v.empty()) return fallback;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  FlagParseError(name, v, "a boolean (0/1/true/false/yes/no/on/off)");
}

/// Scale selection: "a" is the SF3 analog, "b" the SF10 analog.
inline snb::DatagenOptions ScaleFromFlag(int argc, char** argv) {
  std::string scale = FlagValue(argc, argv, "scale", "a");
  return scale == "b" ? snb::ScaleB() : snb::ScaleA();
}

inline std::string ScaleName(const snb::DatagenOptions& options) {
  return options.num_persons == snb::ScaleB().num_persons ? "SF-B (SF10 analog)"
                                                          : "SF-A (SF3 analog)";
}

/// Loads a SUT and reports the elapsed seconds.
inline Result<double> TimedLoad(Sut* sut, const snb::Dataset& data) {
  Stopwatch timer;
  GB_RETURN_IF_ERROR(sut->Load(data));
  return timer.ElapsedSeconds();
}

inline std::string FormatMillis(double millis) {
  if (millis < 0) return "-";
  if (millis < 0.1) return StringPrintf("%.3f", millis);
  if (millis < 10) return StringPrintf("%.2f", millis);
  return StringPrintf("%.1f", millis);
}

inline std::string FormatBytesMb(uint64_t bytes) {
  return StringPrintf("%.1f", double(bytes) / 1e6);
}

/// Attaches the default metrics registry, writes `BENCH_<name>.json` to the
/// --report_dir directory (default "."), and prints the path. Every bench
/// binary calls this last so runs are machine-diffable across commits.
inline void WriteReport(obs::BenchReport& report, int argc, char** argv) {
  report.AttachRegistry(obs::MetricsRegistry::Default());
  std::string dir = FlagValue(argc, argv, "report_dir", ".");
  Result<std::string> path = report.WriteFile(dir);
  if (!path.ok()) {
    std::fprintf(stderr, "report: %s\n", path.status().ToString().c_str());
    return;
  }
  std::printf("\nreport written to %s\n", path->c_str());
}

}  // namespace bench
}  // namespace graphbench

#endif  // GRAPHBENCH_BENCH_BENCH_COMMON_H_
