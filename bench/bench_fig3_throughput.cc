// Reproduces Figure 3: aggregate read and write throughput under the
// real-time interactive workload — N concurrent readers running the
// modified query mix (2-hop complex query + short reads) while a single
// writer drains the Kafka-analog update stream into the SUT.
//
// Also prints the per-bucket write timeline for the two specialized graph
// stores, exposing Neo4j's checkpoint-induced throughput dips vs Titan-C's
// steady drain (§4.3).

#include <cstdio>

#include "bench_common.h"
#include "driver/driver.h"
#include "snb/datagen.h"
#include "storage/durability.h"
#include "sut/cypher_sut.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

std::unique_ptr<Sut> MakeFig3Sut(SutKind kind, bool plan_cache,
                                 bool landmarks,
                                 const storage::DurabilityOptions& durability) {
  std::unique_ptr<Sut> sut;
  if (kind == SutKind::kNeo4jCypher) {
    // Aggressive checkpointing so the §4.3 write dips land inside the
    // measurement window at this scale. With --durable the dip is a real
    // journal-sync + store-append + fsync instead of the simulated floor.
    NativeGraphOptions options;
    options.checkpoint_interval_writes = 1500;
    options.checkpoint_micros_per_dirty_write = 40;
    options.checkpoint_max_pause_micros = 80000;
    options.durability = durability;
    sut = std::make_unique<CypherSut>(options);
  } else {
    SutOptions options;
    options.durability = durability;
    sut = MakeSut(kind, options);
  }
  if (sut == nullptr) return sut;
  if (plan_cache) sut->EnablePlanCache();
  if (landmarks) sut->EnableLandmarks();
  return sut;
}

std::string Sparkline(const std::vector<uint64_t>& buckets) {
  uint64_t peak = 1;
  for (uint64_t b : buckets) peak = std::max(peak, b);
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  std::string out;
  for (uint64_t b : buckets) {
    out += kLevels[b * 7 / peak];
  }
  return out;
}

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Figure 3: read/write throughput, real-time interactive "
              "workload ===\n");

  snb::DatagenOptions scale = snb::ScaleA();
  scale.update_window = 0.3;  // longer stream so the writer stays busy
  snb::Dataset data = snb::Generate(scale);
  std::printf("dataset: %llu vertices, %llu edges, %zu update ops\n",
              (unsigned long long)data.VertexCount(),
              (unsigned long long)data.EdgeCount(),
              data.update_stream.size());

  DriverOptions options;
  options.num_readers = size_t(bench::FlagInt(argc, argv, "readers", 8));
  options.run_millis = bench::FlagInt(argc, argv, "millis", 3000);
  options.slowlog_threshold_micros =
      uint64_t(bench::FlagInt(argc, argv, "slowlog_threshold_us", 0));
  bool plan_cache = bench::FlagBool(argc, argv, "plan_cache", false);
  bool landmarks = bench::FlagBool(argc, argv, "landmarks", false);
  storage::DurabilityOptions durability;
  durability.enabled = bench::FlagBool(argc, argv, "durable", false);
  durability.dir =
      bench::FlagValue(argc, argv, "durable_dir", "fig3_durable");
  durability.fsync_on_commit =
      bench::FlagBool(argc, argv, "fsync_on_commit", false);
  if (durability.enabled) {
    Status dir_ok =
        storage::ResolveFileSystem(durability)->CreateDir(durability.dir);
    if (!dir_ok.ok()) {
      std::fprintf(stderr, "--durable_dir: %s\n", dir_ok.ToString().c_str());
      return 2;
    }
  }
  std::printf("readers=%zu, window=%lldms (paper: 32 readers on 32 cores; "
              "single-core container measures contention shape)\n\n",
              options.num_readers, (long long)options.run_millis);

  TablePrinter table("Figure 3 analog — aggregate throughput");
  table.SetHeader({"System", "Reads/s", "Writes/s", "Read p99 (ms)",
                   "Write p99 (ms)", "Read errors", "Write errors"});

  obs::BenchReport report("fig3_throughput", bench::ScaleName(scale));
  report.SetParam("readers", Json::Int(int64_t(options.num_readers)));
  report.SetParam("run_millis", Json::Int(options.run_millis));
  report.SetParam("update_ops", Json::Int(int64_t(data.update_stream.size())));
  report.SetParam("timeline_bucket_millis",
                  Json::Int(options.timeline_bucket_millis));
  report.SetParam("slowlog_threshold_us",
                  Json::Int(int64_t(options.slowlog_threshold_micros)));
  report.SetParam("plan_cache", Json::Int(plan_cache ? 1 : 0));
  report.SetParam("landmarks", Json::Int(landmarks ? 1 : 0));
  report.SetParam("durable", Json::Int(durability.enabled ? 1 : 0));
  report.SetParam("fsync_on_commit",
                  Json::Int(durability.fsync_on_commit ? 1 : 0));

  struct Timeline {
    std::string name;
    std::vector<uint64_t> writes;
  };
  std::vector<Timeline> timelines;

  mq::Broker broker;
  for (SutKind kind : AllSutKinds()) {
    std::unique_ptr<Sut> sut =
        MakeFig3Sut(kind, plan_cache, landmarks, durability);
    if (sut == nullptr) {
      table.AddRow({SutKindName(kind), "durable open error", "", "", "", "",
                    ""});
      continue;
    }
    Status load = sut->Load(data);
    if (!load.ok()) {
      table.AddRow({sut->name(), "load error", load.ToString(), "", "", "",
                    ""});
      continue;
    }
    std::string topic = "updates-" + std::to_string(int(kind));
    Status produced =
        InteractiveDriver::ProduceUpdates(&broker, topic, data);
    if (!produced.ok()) {
      table.AddRow({sut->name(), "produce error", produced.ToString(), "",
                    "", "", ""});
      continue;
    }
    InteractiveDriver driver(sut.get(), &broker, options);
    snb::ParamPools params(data, 55);
    auto metrics = driver.Run(topic, &params);
    if (!metrics.ok()) {
      table.AddRow({sut->name(), "run error",
                    metrics.status().ToString(), "", "", "", ""});
      continue;
    }
    table.AddRow(
        {sut->name(), StringPrintf("%.0f", metrics->reads_per_second),
         StringPrintf("%.0f", metrics->writes_per_second),
         StringPrintf("%.2f",
                      metrics->read_latency_micros.Percentile(99) / 1000.0),
         StringPrintf("%.2f",
                      metrics->write_latency_micros.Percentile(99) / 1000.0),
         std::to_string(metrics->read_errors),
         std::to_string(metrics->write_errors)});
    Json system_json = obs::DriverMetricsJson(*metrics);
    if (landmarks) {
      LandmarkStats stats = sut->landmark_stats();
      Json lm = Json::Object();
      lm.Set("hits", Json::Int(int64_t(stats.hits)));
      lm.Set("pruned_searches", Json::Int(int64_t(stats.pruned_searches)));
      lm.Set("rebuilds", Json::Int(int64_t(stats.rebuilds)));
      lm.Set("repairs", Json::Int(int64_t(stats.repairs)));
      lm.Set("fallbacks", Json::Int(int64_t(stats.fallbacks)));
      system_json.Set("landmarks", std::move(lm));
    }
    report.AddSystem(sut->name(), std::move(system_json));

    if (kind == SutKind::kNeo4jCypher || kind == SutKind::kTitanC) {
      timelines.push_back(Timeline{sut->name(), metrics->write_timeline});
    }
  }
  table.Print();

  std::printf("\nWrite-throughput timelines (one char per %d ms; Neo4j "
              "shows checkpoint dips, Titan-C drains steadily) "
              "[checkpoints: %s]:\n",
              int(options.timeline_bucket_millis),
              durability.enabled ? "real fsync stalls (--durable)"
                                 : "simulated stall floor");
  for (const auto& t : timelines) {
    std::printf("%-20s |%s|\n", t.name.c_str(),
                Sparkline(t.writes).c_str());
  }
  bench::WriteReport(report, argc, argv);
  return 0;
}
