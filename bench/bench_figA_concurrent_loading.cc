// Reproduces Appendix A's concurrent-loading experiment: aggregate
// ingestion rate for Titan-C, Titan-B, and Sqlg with 1-16 concurrent
// loaders. Neo4j (Gremlin) is omitted, as in the paper, because its store
// serializes concurrent loads.
//
// On this single-core container the expected shape is relative: Titan-C's
// LSM write path stays nearly flat under added loader threads, while the
// tree-latched Titan-B and the lock-coupled Sqlg degrade (the contention
// behaviour behind the paper's scaling curves).

#include <cstdio>

#include "bench_common.h"
#include "snb/datagen.h"
#include "sut/gremlin_sut.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Appendix A: concurrent-loader ingestion scaling ===\n");
  snb::DatagenOptions scale = snb::ScaleA();
  snb::Dataset data = snb::Generate(scale);
  uint64_t total = data.VertexCount() + data.EdgeCount();
  std::printf("dataset: %llu vertices + edges to ingest\n\n",
              (unsigned long long)total);

  TablePrinter table(
      "Appendix A analog — aggregate ingest rate (elements/s) by loader "
      "count");
  table.SetHeader({"System", "1", "2", "4", "8", "16"});

  struct Factory {
    const char* name;
    std::unique_ptr<GremlinSut> (*make)(GremlinServerOptions);
  };
  const Factory factories[] = {
      {"Titan-C (Gremlin)", &MakeTitanCSut},
      {"Titan-B (Gremlin)", &MakeTitanBSut},
      {"Sqlg (Gremlin)", &MakeSqlgSut},
  };

  obs::BenchReport report("figA_concurrent_loading",
                          bench::ScaleName(scale));
  report.SetParam("elements", Json::Int(int64_t(total)));

  const size_t loader_counts[] = {1, 2, 4, 8, 16};
  for (const Factory& f : factories) {
    std::vector<std::string> row{f.name};
    Json metrics = Json::Object();
    for (size_t loaders : loader_counts) {
      std::unique_ptr<GremlinSut> sut = f.make({});
      Stopwatch clock;
      Status s = sut->LoadConcurrent(data, loaders);
      double seconds = clock.ElapsedSeconds();
      if (!s.ok()) {
        row.push_back("err:" + s.ToString());
        continue;
      }
      uint64_t loaded =
          sut->graph()->VertexCount() + sut->graph()->EdgeCount();
      double rate = double(loaded) / std::max(seconds, 1e-9);
      row.push_back(StringPrintf("%.0f", rate));
      metrics.Set("elements_per_second_" + std::to_string(loaders),
                  Json::Number(rate));
    }
    table.AddRow(row);
    report.AddSystem(f.name, std::move(metrics));
  }
  table.Print();
  bench::WriteReport(report, argc, argv);
  return 0;
}
