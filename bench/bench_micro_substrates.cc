// Google-benchmark microbenchmarks for the storage substrates: KV stores
// (B+-tree vs LSM), table stores (row vs columnar), the message queue, and
// the wire codecs. These calibrate the building blocks underneath the
// paper-level experiments.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "graph/value_codec.h"
#include "kv/btree_kv.h"
#include "kv/lsm_kv.h"
#include "mq/broker.h"
#include "storage/column_table.h"
#include "storage/heap_table.h"
#include "tinkerpop/bytecode.h"
#include "util/random.h"

namespace graphbench {
namespace {

std::string Key(uint64_t i) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%012llu", (unsigned long long)i);
  return buf;
}

template <typename Kv>
std::unique_ptr<KvStore> MakeKv() {
  return std::make_unique<Kv>();
}

template <typename Kv>
void BM_KvPut(benchmark::State& state) {
  auto kv = MakeKv<Kv>();
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv->Put(Key(i++), "value-payload-64-bytes"));
  }
  state.SetItemsProcessed(int64_t(i));
}
BENCHMARK(BM_KvPut<BTreeKv>);
BENCHMARK(BM_KvPut<LsmKv>);

template <typename Kv>
void BM_KvGet(benchmark::State& state) {
  auto kv = MakeKv<Kv>();
  constexpr uint64_t kN = 100000;
  for (uint64_t i = 0; i < kN; ++i) kv->Put(Key(i), "v");
  Rng rng(1);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kv->Get(Key(rng.Uniform(kN)), &value));
  }
}
BENCHMARK(BM_KvGet<BTreeKv>);
BENCHMARK(BM_KvGet<LsmKv>);

template <typename Kv>
void BM_KvScanPrefix(benchmark::State& state) {
  auto kv = MakeKv<Kv>();
  // 1000 "vertices" with 20 adjacency rows each.
  for (uint64_t v = 0; v < 1000; ++v) {
    for (uint64_t e = 0; e < 20; ++e) {
      kv->Put(Key(v) + "/" + std::to_string(e), "edge");
    }
  }
  Rng rng(2);
  std::vector<std::pair<std::string, std::string>> out;
  for (auto _ : state) {
    kv->ScanPrefix(Key(rng.Uniform(1000)) + "/", &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_KvScanPrefix<BTreeKv>);
BENCHMARK(BM_KvScanPrefix<LsmKv>);

TableSchema BenchSchema() {
  return TableSchema("t", {{"id", Value::Type::kInt},
                           {"name", Value::Type::kString},
                           {"score", Value::Type::kInt}});
}

template <typename T>
void BM_TableInsert(benchmark::State& state) {
  T table(BenchSchema());
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Insert({Value(i++), Value("somebody"), Value(i * 3)}));
  }
  state.SetItemsProcessed(i);
}
BENCHMARK(BM_TableInsert<HeapTable>);
BENCHMARK(BM_TableInsert<ColumnTable>);

template <typename T>
void BM_TableGetColumn(benchmark::State& state) {
  T table(BenchSchema());
  for (int64_t i = 0; i < 50000; ++i) {
    table.Insert({Value(i), Value("somebody"), Value(i * 3)}).ok();
  }
  Rng rng(3);
  Value v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.GetColumn(RowId(rng.Uniform(50000)), 2, &v));
  }
}
BENCHMARK(BM_TableGetColumn<HeapTable>);
BENCHMARK(BM_TableGetColumn<ColumnTable>);

void BM_MqProduceConsume(benchmark::State& state) {
  mq::Broker broker;
  broker.CreateTopic("bench", 4);
  mq::Producer producer(&broker, "bench");
  mq::Consumer consumer(&broker, "bench");
  for (auto _ : state) {
    producer.Send("k", "update-payload").ok();
    auto batch = consumer.Poll(1);
    benchmark::DoNotOptimize(batch.ok());
  }
}
BENCHMARK(BM_MqProduceConsume);

void BM_GraphsonTraversalRoundTrip(benchmark::State& state) {
  Traversal t;
  t.V()
      .HasIndexed("Person", "id", Value(12345))
      .As("p")
      .Both("knows")
      .Both("knows")
      .WhereNeq("p")
      .Dedup()
      .Values("id");
  for (auto _ : state) {
    std::string bytes = gremlinio::EncodeTraversal(t);
    auto decoded = gremlinio::DecodeTraversal(bytes);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_GraphsonTraversalRoundTrip);

void BM_PropertyMapCodecRoundTrip(benchmark::State& state) {
  PropertyMap props{{"id", Value(917)},
                    {"firstName", Value("Ada")},
                    {"lastName", Value("Lovelace")},
                    {"creationDate", Value(int64_t{123456789})}};
  for (auto _ : state) {
    std::string bytes;
    valuecodec::EncodePropertyMap(&bytes, props);
    std::string_view view(bytes);
    PropertyMap decoded;
    valuecodec::DecodePropertyMap(&view, &decoded);
    benchmark::DoNotOptimize(decoded.size());
  }
}
BENCHMARK(BM_PropertyMapCodecRoundTrip);

}  // namespace
}  // namespace graphbench

// Expanded BENCHMARK_MAIN() so the run can also emit a machine-readable
// report; the unrecognized-arguments check is skipped because this binary
// additionally accepts the shared --report_dir flag.
int main(int argc, char** argv) {
  using namespace graphbench;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The mq counters accumulated by BM_MqProduceConsume land in the
  // registry snapshot attached by WriteReport.
  obs::BenchReport report("micro_substrates");
  bench::WriteReport(report, argc, argv);
  return 0;
}
