// Reproduces the §4.4 roadblock: under the ORIGINAL LDBC-style query mix —
// heavy on complex queries (2-hop neighbourhoods and shortest paths) — and
// many concurrent clients, the Gremlin Server cannot keep up: its request
// queue fills and submissions fail (the real server hangs and eventually
// crashes; ours degrades to Busy errors the driver counts). The native
// interfaces process the same mix without errors, which is why the paper
// had to switch Figure 3 to a reduced mix.

#include <cstdio>

#include "bench_common.h"
#include "driver/driver.h"
#include "snb/datagen.h"
#include "sut/gremlin_sut.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

/// Sut wrapper turning the driver's "two-hop" slot into a coin-flip
/// between 2-hop and shortest path — the complex half of the original mix.
class ComplexMixSut : public Sut {
 public:
  explicit ComplexMixSut(std::unique_ptr<Sut> inner)
      : inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  Status Load(const snb::Dataset& data) override {
    pair_pool_.clear();
    for (const auto& k : data.knows) {
      pair_pool_.push_back({k.person1, k.person2});
      if (pair_pool_.size() >= 512) break;
    }
    return inner_->Load(data);
  }
  Result<QueryResult> PointLookup(int64_t id) override {
    return inner_->PointLookup(id);
  }
  Result<QueryResult> OneHop(int64_t id) override {
    return inner_->OneHop(id);
  }
  Result<QueryResult> TwoHop(int64_t id) override {
    // Half the complex slots become shortest paths between far-apart
    // endpoints (id pairs drawn from the knows pool, shifted).
    if (!pair_pool_.empty() && (++flip_ & 1)) {
      auto [a, b] = pair_pool_[size_t(flip_) % pair_pool_.size()];
      auto [c, d] =
          pair_pool_[size_t(flip_ * 7919) % pair_pool_.size()];
      (void)d;
      GB_RETURN_IF_ERROR(inner_->ShortestPathLen(a, c).status());
      return QueryResult{};
    }
    return inner_->TwoHop(id);
  }
  Result<int> ShortestPathLen(int64_t a, int64_t b) override {
    return inner_->ShortestPathLen(a, b);
  }
  Result<QueryResult> RecentPosts(int64_t id, int64_t limit) override {
    return inner_->RecentPosts(id, limit);
  }
  Result<QueryResult> FriendsWithName(int64_t id,
                                      const std::string& name) override {
    return inner_->FriendsWithName(id, name);
  }
  Result<QueryResult> RepliesOfPost(int64_t post_id) override {
    return inner_->RepliesOfPost(post_id);
  }
  Result<QueryResult> TopPosters(int64_t limit) override {
    return inner_->TopPosters(limit);
  }
  Status Apply(const snb::UpdateOp& op) override {
    return inner_->Apply(op);
  }
  uint64_t SizeBytes() const override { return inner_->SizeBytes(); }

 private:
  std::unique_ptr<Sut> inner_;
  std::vector<std::pair<int64_t, int64_t>> pair_pool_;
  std::atomic<uint64_t> flip_{0};
};

std::unique_ptr<Sut> MakeOverloadSut(SutKind kind) {
  // A realistically provisioned Gremlin Server: few workers, bounded
  // queue. Native interfaces have no such layer.
  GremlinServerOptions server;
  server.workers = 2;
  server.max_queue = 8;
  switch (kind) {
    case SutKind::kNeo4jGremlin:
      return std::make_unique<ComplexMixSut>(MakeNeo4jGremlinSut(server));
    case SutKind::kTitanC:
      return std::make_unique<ComplexMixSut>(MakeTitanCSut(server));
    case SutKind::kTitanB:
      return std::make_unique<ComplexMixSut>(MakeTitanBSut(server));
    case SutKind::kSqlg:
      return std::make_unique<ComplexMixSut>(MakeSqlgSut(server));
    default:
      return std::make_unique<ComplexMixSut>(MakeSut(kind));
  }
}

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== §4.4: original complex mix under high concurrency ===\n");
  snb::DatagenOptions scale = snb::ScaleA();
  // Smoke mode for CI: --persons overrides the scale to a tiny graph.
  const int64_t persons = bench::FlagInt(argc, argv, "persons", 0);
  if (persons > 0) scale.num_persons = uint32_t(persons);
  snb::Dataset data = snb::Generate(scale);

  DriverOptions options;
  options.num_readers = size_t(bench::FlagInt(argc, argv, "readers", 24));
  options.run_millis = bench::FlagInt(argc, argv, "millis", 1500);
  options.two_hop_fraction = 0.5;  // the original, complex-heavy mix
  options.one_hop_fraction = 0.2;
  options.recent_posts_fraction = 0.1;
  // Paced replay makes write latency schedule-aware (measured from each
  // op's scheduled slot), so overload shows up as latency instead of being
  // hidden by coordinated omission.
  options.replay_updates_per_second =
      bench::FlagDouble(argc, argv, "replay_rate", 2000);
  options.slowlog_threshold_micros =
      uint64_t(bench::FlagInt(argc, argv, "slowlog_threshold_us", 0));
  std::printf("readers=%zu, complex fraction=%.0f%% (2-hop + shortest "
              "path), replay rate=%.0f updates/s\n\n",
              options.num_readers, options.two_hop_fraction * 100,
              options.replay_updates_per_second);

  TablePrinter table("Original-mix overload: completed vs rejected reads");
  table.SetHeader({"System", "Reads ok", "Reads rejected", "Rejection %",
                   "Write p99 (ms)", "Sched p99 (ms)"});

  obs::BenchReport report("sec44_overload", "SF-A (SF3 analog)");
  report.SetParam("readers", Json::Int(int64_t(options.num_readers)));
  report.SetParam("run_millis", Json::Int(options.run_millis));
  report.SetParam("two_hop_fraction", Json::Number(options.two_hop_fraction));
  report.SetParam("replay_rate",
                  Json::Number(options.replay_updates_per_second));
  report.SetParam("slowlog_threshold_us",
                  Json::Int(int64_t(options.slowlog_threshold_micros)));
  report.SetParam("persons", Json::Int(int64_t(scale.num_persons)));

  mq::Broker broker;
  for (SutKind kind : AllSutKinds()) {
    std::unique_ptr<Sut> sut = MakeOverloadSut(kind);
    if (Status s = sut->Load(data); !s.ok()) {
      table.AddRow({sut->name(), "load error", s.ToString(), "", "", ""});
      continue;
    }
    std::string topic = "ov-" + std::to_string(int(kind));
    InteractiveDriver::ProduceUpdates(&broker, topic, data).ok();
    InteractiveDriver driver(sut.get(), &broker, options);
    snb::ParamPools params(data, 17);
    auto metrics = driver.Run(topic, &params);
    if (!metrics.ok()) {
      table.AddRow({sut->name(), "run error",
                    metrics.status().ToString(), "", "", ""});
      continue;
    }
    double total =
        double(metrics->reads_completed + metrics->read_errors);
    table.AddRow({sut->name(),
                  std::to_string(metrics->reads_completed),
                  std::to_string(metrics->read_errors),
                  total > 0 ? StringPrintf("%.1f%%",
                                           100.0 * metrics->read_errors /
                                               total)
                            : "-",
                  StringPrintf("%.2f",
                               metrics->write_latency_micros.Percentile(
                                   99) / 1000.0),
                  StringPrintf("%.2f",
                               metrics->write_schedule_latency_micros
                                       .Percentile(99) /
                                   1000.0)});
    Json system = obs::DriverMetricsJson(*metrics);
    system.Set("rejection_rate",
               Json::Number(total > 0 ? metrics->read_errors / total : 0));
    report.AddSystem(sut->name(), std::move(system));
  }
  table.Print();
  std::printf("\nExpected shape: only the Gremlin Server systems reject "
              "requests; native interfaces complete the mix. The schedule "
              "p99 includes time an update spent queued past its slot.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
