// Reproduces Table 1: dataset statistics and loaded database sizes for
// both scale factors across all eight system configurations.

#include <cstdio>

#include "bench_common.h"
#include "snb/datagen.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

void RunScale(const snb::DatagenOptions& options, obs::BenchReport* report) {
  snb::Dataset data = snb::Generate(options);
  std::printf("\nDataset %s: %llu vertices, %llu edges, raw %.1f MB, "
              "%zu update ops\n",
              bench::ScaleName(options).c_str(),
              (unsigned long long)data.VertexCount(),
              (unsigned long long)data.EdgeCount(),
              double(data.RawBytes()) / 1e6, data.update_stream.size());

  TablePrinter table("Table 1 analog — loaded database sizes (MB), " +
                     bench::ScaleName(options));
  table.SetHeader({"System", "Size (MB)", "Load time (s)"});
  for (SutKind kind : AllSutKinds()) {
    std::unique_ptr<Sut> sut = MakeSut(kind);
    auto seconds = bench::TimedLoad(sut.get(), data);
    if (!seconds.ok()) {
      table.AddRow({sut->name(), "error", seconds.status().ToString()});
      continue;
    }
    table.AddRow({sut->name(), bench::FormatBytesMb(sut->SizeBytes()),
                  StringPrintf("%.2f", *seconds)});
    Json metrics = Json::Object();
    metrics.Set("scale", Json::Str(bench::ScaleName(options)));
    metrics.Set("size_bytes", Json::Int(int64_t(sut->SizeBytes())));
    metrics.Set("load_seconds", Json::Number(*seconds));
    report->AddSystem(sut->name(), std::move(metrics));
  }
  table.Print();
}

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Table 1: dataset statistics and database sizes ===\n");
  bool quick = bench::FlagInt(argc, argv, "quick", 0) != 0;
  obs::BenchReport report("table1_datasets",
                          quick ? "SF-A" : "SF-A,SF-B");
  report.SetParam("quick", Json::Int(quick ? 1 : 0));
  RunScale(snb::ScaleA(), &report);
  if (!quick) RunScale(snb::ScaleB(), &report);
  bench::WriteReport(report, argc, argv);
  return 0;
}
