// Reproduces Table 1: dataset statistics and loaded database sizes for
// both scale factors across all eight system configurations.

#include <cstdio>

#include "bench_common.h"
#include "snb/datagen.h"
#include "sut/sut.h"

namespace graphbench {
namespace {

void RunScale(const snb::DatagenOptions& options) {
  snb::Dataset data = snb::Generate(options);
  std::printf("\nDataset %s: %llu vertices, %llu edges, raw %.1f MB, "
              "%zu update ops\n",
              bench::ScaleName(options).c_str(),
              (unsigned long long)data.VertexCount(),
              (unsigned long long)data.EdgeCount(),
              double(data.RawBytes()) / 1e6, data.update_stream.size());

  TablePrinter table("Table 1 analog — loaded database sizes (MB), " +
                     bench::ScaleName(options));
  table.SetHeader({"System", "Size (MB)", "Load time (s)"});
  for (SutKind kind : AllSutKinds()) {
    std::unique_ptr<Sut> sut = MakeSut(kind);
    auto seconds = bench::TimedLoad(sut.get(), data);
    if (!seconds.ok()) {
      table.AddRow({sut->name(), "error", seconds.status().ToString()});
      continue;
    }
    table.AddRow({sut->name(), bench::FormatBytesMb(sut->SizeBytes()),
                  StringPrintf("%.2f", *seconds)});
  }
  table.Print();
}

}  // namespace
}  // namespace graphbench

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Table 1: dataset statistics and database sizes ===\n");
  bool quick = bench::FlagInt(argc, argv, "quick", 0) != 0;
  RunScale(snb::ScaleA());
  if (!quick) RunScale(snb::ScaleB());
  return 0;
}
