// Reproduces Table 2: mean read-only query latencies (ms) on the SF3-analog
// dataset — point lookup, 1-hop, 2-hop, single-pair shortest path across
// all eight system configurations, 100 repetitions each, no concurrency.

#include "bench_common.h"
#include "benchlib/read_latency.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  benchlib::ReadLatencyOptions options;
  options.repetitions = int(bench::FlagInt(argc, argv, "reps", 100));
  options.profile = bench::FlagBool(argc, argv, "profile", false);
  options.plan_cache = bench::FlagBool(argc, argv, "plan_cache", false);
  options.landmarks = bench::FlagBool(argc, argv, "landmarks", false);
  obs::BenchReport report("table2_read_latency", "SF-A (SF3 analog)");
  benchlib::RunReadLatencyTable(
      snb::ScaleA(), options,
      "Table 2 analog — query latencies in ms, SF-A (SF3 analog)", &report);
  bench::WriteReport(report, argc, argv);
  return 0;
}
