// Reproduces Table 3: same experiment as Table 2 on the ~3x larger
// SF10-analog dataset, exposing how each architecture's latency scales
// with graph size (Neo4j/Cypher should be the least size-sensitive).

#include "bench_common.h"
#include "benchlib/read_latency.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  benchlib::ReadLatencyOptions options;
  options.repetitions = int(bench::FlagInt(argc, argv, "reps", 100));
  options.profile = bench::FlagBool(argc, argv, "profile", false);
  options.plan_cache = bench::FlagBool(argc, argv, "plan_cache", false);
  options.landmarks = bench::FlagBool(argc, argv, "landmarks", false);
  obs::BenchReport report("table3_read_latency", "SF-B (SF10 analog)");
  benchlib::RunReadLatencyTable(
      snb::ScaleB(), options,
      "Table 3 analog — query latencies in ms, SF-B (SF10 analog)", &report);
  bench::WriteReport(report, argc, argv);
  return 0;
}
