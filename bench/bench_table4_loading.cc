// Reproduces Table 4 (Appendix A): single-loader data ingestion for the
// TinkerPop3-compliant systems — total load time plus vertex/s and edge/s
// rates, loading the SF-A snapshot through the structure API.

#include <cstdio>

#include "bench_common.h"
#include "snb/datagen.h"
#include "sut/gremlin_sut.h"
#include "util/stopwatch.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== Table 4: single-loader ingestion, TinkerPop systems "
              "===\n");
  snb::DatagenOptions scale = bench::ScaleFromFlag(argc, argv);
  snb::Dataset data = snb::Generate(scale);
  uint64_t vertex_count = data.VertexCount();
  std::printf("dataset %s: %llu vertices, %llu edges\n\n",
              bench::ScaleName(scale).c_str(),
              (unsigned long long)vertex_count,
              (unsigned long long)data.EdgeCount());

  TablePrinter table("Table 4 analog — data loading, single loader");
  table.SetHeader({"System", "Total time (s)", "Vertex / second",
                   "Edge / second"});
  obs::BenchReport report("table4_loading", bench::ScaleName(scale));
  report.SetParam("vertices", Json::Int(int64_t(vertex_count)));
  report.SetParam("edges", Json::Int(int64_t(data.EdgeCount())));

  struct Factory {
    const char* name;
    std::unique_ptr<GremlinSut> (*make)(GremlinServerOptions);
  };
  const Factory factories[] = {
      {"Neo4j (Gremlin)", &MakeNeo4jGremlinSut},
      {"Titan-C (Gremlin)", &MakeTitanCSut},
      {"Titan-B (Gremlin)", &MakeTitanBSut},
      {"Sqlg (Gremlin)", &MakeSqlgSut},
  };

  for (const Factory& f : factories) {
    std::unique_ptr<GremlinSut> sut = f.make({});
    Stopwatch vertex_clock;
    Status vs = sut->LoadVertices(data, 0, 1);
    double vertex_seconds = vertex_clock.ElapsedSeconds();
    Stopwatch edge_clock;
    Status es = sut->LoadEdges(data, 0, 1);
    double edge_seconds = edge_clock.ElapsedSeconds();
    if (!vs.ok() || !es.ok()) {
      table.AddRow({f.name, "error",
                    vs.ok() ? es.ToString() : vs.ToString(), ""});
      continue;
    }
    uint64_t edges = sut->graph()->EdgeCount();
    table.AddRow(
        {f.name, StringPrintf("%.2f", vertex_seconds + edge_seconds),
         StringPrintf("%.0f", double(vertex_count) /
                                  std::max(vertex_seconds, 1e-9)),
         StringPrintf("%.0f",
                      double(edges) / std::max(edge_seconds, 1e-9))});
    Json metrics = Json::Object();
    metrics.Set("load_seconds", Json::Number(vertex_seconds + edge_seconds));
    metrics.Set("vertices_per_second",
                Json::Number(double(vertex_count) /
                             std::max(vertex_seconds, 1e-9)));
    metrics.Set("edges_per_second",
                Json::Number(double(edges) / std::max(edge_seconds, 1e-9)));
    report.AddSystem(f.name, std::move(metrics));
  }
  table.Print();
  bench::WriteReport(report, argc, argv);
  return 0;
}
