// Reproduces §4.3's Titan-backend finding: "Titan-B suffers significant
// performance degradation under highly-concurrent reads and writes, which
// makes it unsuitable for this experiment", while Titan-C sustains a
// steady write rate. Sweeps the reader count and reports the writer's
// throughput and tail latency for both backends: BerkeleyDB's tree-level
// latching collapses as readers multiply; Cassandra's partitioned LSM
// write path does not.

#include <cstdio>

#include "bench_common.h"
#include "driver/driver.h"
#include "snb/datagen.h"
#include "sut/gremlin_sut.h"

int main(int argc, char** argv) {
  using namespace graphbench;
  std::printf("=== §4.3: Titan backend behaviour under concurrent "
              "read/write ===\n");
  snb::DatagenOptions scale = snb::ScaleA();
  scale.update_window = 0.3;
  snb::Dataset data = snb::Generate(scale);
  int64_t millis = bench::FlagInt(argc, argv, "millis", 1200);

  TablePrinter table(
      "Titan-C (LSM/Cassandra) vs Titan-B (B+-tree/BerkeleyDB): writer "
      "under reader pressure");
  table.SetHeader({"System", "Readers", "Writes/s", "Write p99 (ms)",
                   "Reads/s"});

  struct Backend {
    const char* name;
    std::unique_ptr<GremlinSut> (*make)(GremlinServerOptions);
  };
  const Backend backends[] = {
      {"Titan-C (Gremlin)", &MakeTitanCSut},
      {"Titan-B (Gremlin)", &MakeTitanBSut},
  };

  obs::BenchReport report("titan_backends", bench::ScaleName(scale));
  report.SetParam("run_millis", Json::Int(millis));

  mq::Broker broker;
  int topic_id = 0;
  for (const Backend& backend : backends) {
    for (size_t readers : {size_t{1}, size_t{4}, size_t{8}}) {
      std::unique_ptr<GremlinSut> sut = backend.make({});
      if (Status s = sut->Load(data); !s.ok()) {
        table.AddRow({backend.name, std::to_string(readers), "load error",
                      s.ToString(), ""});
        continue;
      }
      std::string topic = "titan-" + std::to_string(topic_id++);
      InteractiveDriver::ProduceUpdates(&broker, topic, data).ok();
      DriverOptions options;
      options.num_readers = readers;
      options.run_millis = millis;
      InteractiveDriver driver(sut.get(), &broker, options);
      snb::ParamPools params(data, 23);
      auto metrics = driver.Run(topic, &params);
      if (!metrics.ok()) {
        table.AddRow({backend.name, std::to_string(readers), "run error",
                      metrics.status().ToString(), ""});
        continue;
      }
      table.AddRow(
          {backend.name, std::to_string(readers),
           StringPrintf("%.0f", metrics->writes_per_second),
           StringPrintf("%.2f",
                        metrics->write_latency_micros.Percentile(99) /
                            1000.0),
           StringPrintf("%.0f", metrics->reads_per_second)});
      Json system = obs::DriverMetricsJson(*metrics);
      system.Set("readers", Json::Int(int64_t(readers)));
      report.AddSystem(std::string(backend.name) + " x" +
                           std::to_string(readers),
                       std::move(system));
    }
  }
  table.Print();
  std::printf("\nExpected shape: Titan-B's write rate and tail latency "
              "degrade faster with readers than Titan-C's.\n");
  bench::WriteReport(report, argc, argv);
  return 0;
}
