# Empty dependencies file for bench_ablation_gremlin_server.
# This may be replaced when dependencies are built.
