file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_row_vs_column.dir/bench_ablation_row_vs_column.cc.o"
  "CMakeFiles/bench_ablation_row_vs_column.dir/bench_ablation_row_vs_column.cc.o.d"
  "bench_ablation_row_vs_column"
  "bench_ablation_row_vs_column.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_row_vs_column.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
