file(REMOVE_RECURSE
  "CMakeFiles/bench_figA_concurrent_loading.dir/bench_figA_concurrent_loading.cc.o"
  "CMakeFiles/bench_figA_concurrent_loading.dir/bench_figA_concurrent_loading.cc.o.d"
  "bench_figA_concurrent_loading"
  "bench_figA_concurrent_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figA_concurrent_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
