# Empty dependencies file for bench_figA_concurrent_loading.
# This may be replaced when dependencies are built.
