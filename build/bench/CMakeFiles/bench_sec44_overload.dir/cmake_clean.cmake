file(REMOVE_RECURSE
  "CMakeFiles/bench_sec44_overload.dir/bench_sec44_overload.cc.o"
  "CMakeFiles/bench_sec44_overload.dir/bench_sec44_overload.cc.o.d"
  "bench_sec44_overload"
  "bench_sec44_overload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_overload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
