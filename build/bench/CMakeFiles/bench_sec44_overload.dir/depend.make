# Empty dependencies file for bench_sec44_overload.
# This may be replaced when dependencies are built.
