file(REMOVE_RECURSE
  "CMakeFiles/bench_titan_backends.dir/bench_titan_backends.cc.o"
  "CMakeFiles/bench_titan_backends.dir/bench_titan_backends.cc.o.d"
  "bench_titan_backends"
  "bench_titan_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_titan_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
