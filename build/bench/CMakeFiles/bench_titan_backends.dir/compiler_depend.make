# Empty compiler generated dependencies file for bench_titan_backends.
# This may be replaced when dependencies are built.
