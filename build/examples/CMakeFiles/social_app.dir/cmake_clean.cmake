file(REMOVE_RECURSE
  "CMakeFiles/social_app.dir/social_app.cpp.o"
  "CMakeFiles/social_app.dir/social_app.cpp.o.d"
  "social_app"
  "social_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
