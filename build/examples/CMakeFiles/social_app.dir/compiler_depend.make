# Empty compiler generated dependencies file for social_app.
# This may be replaced when dependencies are built.
