
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/read_latency.cc" "src/CMakeFiles/graphbench.dir/benchlib/read_latency.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/benchlib/read_latency.cc.o.d"
  "/root/repo/src/driver/driver.cc" "src/CMakeFiles/graphbench.dir/driver/driver.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/driver/driver.cc.o.d"
  "/root/repo/src/engines/native/cypher_engine.cc" "src/CMakeFiles/graphbench.dir/engines/native/cypher_engine.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/engines/native/cypher_engine.cc.o.d"
  "/root/repo/src/engines/native/native_graph.cc" "src/CMakeFiles/graphbench.dir/engines/native/native_graph.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/engines/native/native_graph.cc.o.d"
  "/root/repo/src/engines/rdf/rdf_engine.cc" "src/CMakeFiles/graphbench.dir/engines/rdf/rdf_engine.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/engines/rdf/rdf_engine.cc.o.d"
  "/root/repo/src/engines/rdf/term_dictionary.cc" "src/CMakeFiles/graphbench.dir/engines/rdf/term_dictionary.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/engines/rdf/term_dictionary.cc.o.d"
  "/root/repo/src/engines/rdf/triple_store.cc" "src/CMakeFiles/graphbench.dir/engines/rdf/triple_store.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/engines/rdf/triple_store.cc.o.d"
  "/root/repo/src/engines/relational/database.cc" "src/CMakeFiles/graphbench.dir/engines/relational/database.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/engines/relational/database.cc.o.d"
  "/root/repo/src/engines/relational/sql_executor.cc" "src/CMakeFiles/graphbench.dir/engines/relational/sql_executor.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/engines/relational/sql_executor.cc.o.d"
  "/root/repo/src/engines/titan/titan_graph.cc" "src/CMakeFiles/graphbench.dir/engines/titan/titan_graph.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/engines/titan/titan_graph.cc.o.d"
  "/root/repo/src/graph/value_codec.cc" "src/CMakeFiles/graphbench.dir/graph/value_codec.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/graph/value_codec.cc.o.d"
  "/root/repo/src/kv/btree_kv.cc" "src/CMakeFiles/graphbench.dir/kv/btree_kv.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/kv/btree_kv.cc.o.d"
  "/root/repo/src/kv/key_codec.cc" "src/CMakeFiles/graphbench.dir/kv/key_codec.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/kv/key_codec.cc.o.d"
  "/root/repo/src/kv/lsm_kv.cc" "src/CMakeFiles/graphbench.dir/kv/lsm_kv.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/kv/lsm_kv.cc.o.d"
  "/root/repo/src/lang/cypher/parser.cc" "src/CMakeFiles/graphbench.dir/lang/cypher/parser.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/lang/cypher/parser.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/CMakeFiles/graphbench.dir/lang/lexer.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/lang/lexer.cc.o.d"
  "/root/repo/src/lang/sparql/parser.cc" "src/CMakeFiles/graphbench.dir/lang/sparql/parser.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/lang/sparql/parser.cc.o.d"
  "/root/repo/src/lang/sql/parser.cc" "src/CMakeFiles/graphbench.dir/lang/sql/parser.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/lang/sql/parser.cc.o.d"
  "/root/repo/src/mq/broker.cc" "src/CMakeFiles/graphbench.dir/mq/broker.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/mq/broker.cc.o.d"
  "/root/repo/src/providers/sqlg_provider.cc" "src/CMakeFiles/graphbench.dir/providers/sqlg_provider.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/providers/sqlg_provider.cc.o.d"
  "/root/repo/src/snb/csv_io.cc" "src/CMakeFiles/graphbench.dir/snb/csv_io.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/snb/csv_io.cc.o.d"
  "/root/repo/src/snb/datagen.cc" "src/CMakeFiles/graphbench.dir/snb/datagen.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/snb/datagen.cc.o.d"
  "/root/repo/src/snb/params.cc" "src/CMakeFiles/graphbench.dir/snb/params.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/snb/params.cc.o.d"
  "/root/repo/src/snb/schema.cc" "src/CMakeFiles/graphbench.dir/snb/schema.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/snb/schema.cc.o.d"
  "/root/repo/src/snb/update_codec.cc" "src/CMakeFiles/graphbench.dir/snb/update_codec.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/snb/update_codec.cc.o.d"
  "/root/repo/src/storage/column_table.cc" "src/CMakeFiles/graphbench.dir/storage/column_table.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/storage/column_table.cc.o.d"
  "/root/repo/src/storage/hash_index.cc" "src/CMakeFiles/graphbench.dir/storage/hash_index.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/storage/hash_index.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/CMakeFiles/graphbench.dir/storage/heap_table.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/storage/heap_table.cc.o.d"
  "/root/repo/src/sut/cypher_sut.cc" "src/CMakeFiles/graphbench.dir/sut/cypher_sut.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/sut/cypher_sut.cc.o.d"
  "/root/repo/src/sut/gremlin_sut.cc" "src/CMakeFiles/graphbench.dir/sut/gremlin_sut.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/sut/gremlin_sut.cc.o.d"
  "/root/repo/src/sut/relational_sut.cc" "src/CMakeFiles/graphbench.dir/sut/relational_sut.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/sut/relational_sut.cc.o.d"
  "/root/repo/src/sut/sparql_sut.cc" "src/CMakeFiles/graphbench.dir/sut/sparql_sut.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/sut/sparql_sut.cc.o.d"
  "/root/repo/src/sut/sut.cc" "src/CMakeFiles/graphbench.dir/sut/sut.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/sut/sut.cc.o.d"
  "/root/repo/src/tinkerpop/bytecode.cc" "src/CMakeFiles/graphbench.dir/tinkerpop/bytecode.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/tinkerpop/bytecode.cc.o.d"
  "/root/repo/src/tinkerpop/gremlin_server.cc" "src/CMakeFiles/graphbench.dir/tinkerpop/gremlin_server.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/tinkerpop/gremlin_server.cc.o.d"
  "/root/repo/src/tinkerpop/traversal.cc" "src/CMakeFiles/graphbench.dir/tinkerpop/traversal.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/tinkerpop/traversal.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/CMakeFiles/graphbench.dir/util/histogram.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/util/histogram.cc.o.d"
  "/root/repo/src/util/json.cc" "src/CMakeFiles/graphbench.dir/util/json.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/util/json.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/graphbench.dir/util/random.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/graphbench.dir/util/status.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/graphbench.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/graphbench.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "src/CMakeFiles/graphbench.dir/util/thread_pool.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/util/thread_pool.cc.o.d"
  "/root/repo/src/util/value.cc" "src/CMakeFiles/graphbench.dir/util/value.cc.o" "gcc" "src/CMakeFiles/graphbench.dir/util/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
