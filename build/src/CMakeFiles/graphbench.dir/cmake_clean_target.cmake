file(REMOVE_RECURSE
  "libgraphbench.a"
)
