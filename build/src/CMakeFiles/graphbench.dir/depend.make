# Empty dependencies file for graphbench.
# This may be replaced when dependencies are built.
