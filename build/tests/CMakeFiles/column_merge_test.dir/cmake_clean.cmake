file(REMOVE_RECURSE
  "CMakeFiles/column_merge_test.dir/column_merge_test.cc.o"
  "CMakeFiles/column_merge_test.dir/column_merge_test.cc.o.d"
  "column_merge_test"
  "column_merge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
