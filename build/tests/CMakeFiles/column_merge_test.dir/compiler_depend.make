# Empty compiler generated dependencies file for column_merge_test.
# This may be replaced when dependencies are built.
