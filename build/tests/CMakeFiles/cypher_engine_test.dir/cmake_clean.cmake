file(REMOVE_RECURSE
  "CMakeFiles/cypher_engine_test.dir/cypher_engine_test.cc.o"
  "CMakeFiles/cypher_engine_test.dir/cypher_engine_test.cc.o.d"
  "cypher_engine_test"
  "cypher_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
