# Empty dependencies file for cypher_engine_test.
# This may be replaced when dependencies are built.
