file(REMOVE_RECURSE
  "CMakeFiles/gremlin_sut_test.dir/gremlin_sut_test.cc.o"
  "CMakeFiles/gremlin_sut_test.dir/gremlin_sut_test.cc.o.d"
  "gremlin_sut_test"
  "gremlin_sut_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gremlin_sut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
