# Empty compiler generated dependencies file for gremlin_sut_test.
# This may be replaced when dependencies are built.
