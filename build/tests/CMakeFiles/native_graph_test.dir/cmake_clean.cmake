file(REMOVE_RECURSE
  "CMakeFiles/native_graph_test.dir/native_graph_test.cc.o"
  "CMakeFiles/native_graph_test.dir/native_graph_test.cc.o.d"
  "native_graph_test"
  "native_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
