# Empty compiler generated dependencies file for native_graph_test.
# This may be replaced when dependencies are built.
