file(REMOVE_RECURSE
  "CMakeFiles/rdf_engine_test.dir/rdf_engine_test.cc.o"
  "CMakeFiles/rdf_engine_test.dir/rdf_engine_test.cc.o.d"
  "rdf_engine_test"
  "rdf_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
