file(REMOVE_RECURSE
  "CMakeFiles/relational_db_test.dir/relational_db_test.cc.o"
  "CMakeFiles/relational_db_test.dir/relational_db_test.cc.o.d"
  "relational_db_test"
  "relational_db_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_db_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
