# Empty dependencies file for relational_db_test.
# This may be replaced when dependencies are built.
