file(REMOVE_RECURSE
  "CMakeFiles/sut_equivalence_test.dir/sut_equivalence_test.cc.o"
  "CMakeFiles/sut_equivalence_test.dir/sut_equivalence_test.cc.o.d"
  "sut_equivalence_test"
  "sut_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sut_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
