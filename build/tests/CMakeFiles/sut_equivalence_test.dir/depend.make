# Empty dependencies file for sut_equivalence_test.
# This may be replaced when dependencies are built.
