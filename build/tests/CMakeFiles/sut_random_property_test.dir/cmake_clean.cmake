file(REMOVE_RECURSE
  "CMakeFiles/sut_random_property_test.dir/sut_random_property_test.cc.o"
  "CMakeFiles/sut_random_property_test.dir/sut_random_property_test.cc.o.d"
  "sut_random_property_test"
  "sut_random_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sut_random_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
