# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sut_random_property_test.
