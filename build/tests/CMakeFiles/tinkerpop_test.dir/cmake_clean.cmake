file(REMOVE_RECURSE
  "CMakeFiles/tinkerpop_test.dir/tinkerpop_test.cc.o"
  "CMakeFiles/tinkerpop_test.dir/tinkerpop_test.cc.o.d"
  "tinkerpop_test"
  "tinkerpop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tinkerpop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
