# Empty compiler generated dependencies file for tinkerpop_test.
# This may be replaced when dependencies are built.
