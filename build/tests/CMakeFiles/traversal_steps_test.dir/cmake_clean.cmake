file(REMOVE_RECURSE
  "CMakeFiles/traversal_steps_test.dir/traversal_steps_test.cc.o"
  "CMakeFiles/traversal_steps_test.dir/traversal_steps_test.cc.o.d"
  "traversal_steps_test"
  "traversal_steps_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traversal_steps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
