file(REMOVE_RECURSE
  "CMakeFiles/util_value_test.dir/util_value_test.cc.o"
  "CMakeFiles/util_value_test.dir/util_value_test.cc.o.d"
  "util_value_test"
  "util_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
