# Empty dependencies file for util_value_test.
# This may be replaced when dependencies are built.
