// custom_benchmark: run the interactive driver with your own knobs — pick
// the engine, reader count, query mix, and scale from the command line and
// get the Figure 3-style metrics for that single configuration.
//
//   ./custom_benchmark --engine=virtuoso --readers=8 --millis=2000 \
//       --twohop=0.3 --persons=2000

#include <cstdio>
#include <cstring>
#include <string>

#include "driver/driver.h"
#include "snb/datagen.h"
#include "sut/sut.h"

using namespace graphbench;

namespace {

std::string Flag(int argc, char** argv, const char* name,
                 const char* fallback) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::string engine = Flag(argc, argv, "engine", "postgres");
  Result<std::unique_ptr<Sut>> made = MakeSut(engine);
  if (!made.ok()) {
    std::printf("%s\n", made.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Sut> sut = std::move(*made);

  snb::DatagenOptions scale;
  scale.num_persons = uint32_t(std::stoul(Flag(argc, argv, "persons",
                                               "1500")));
  scale.seed = 11;
  scale.update_window = 0.25;
  snb::Dataset data = snb::Generate(scale);
  std::printf("engine=%s persons=%u\n", sut->name().c_str(),
              scale.num_persons);
  if (Status s = sut->Load(data); !s.ok()) {
    std::printf("load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  mq::Broker broker;
  if (Status s = InteractiveDriver::ProduceUpdates(&broker, "updates",
                                                   data);
      !s.ok()) {
    std::printf("produce failed: %s\n", s.ToString().c_str());
    return 1;
  }

  DriverOptions options;
  options.num_readers = size_t(std::stoul(Flag(argc, argv, "readers", "4")));
  options.run_millis = std::stoll(Flag(argc, argv, "millis", "2000"));
  options.two_hop_fraction = std::stod(Flag(argc, argv, "twohop", "0.1"));
  InteractiveDriver driver(sut.get(), &broker, options);
  snb::ParamPools params(data, 99);
  auto metrics = driver.Run("updates", &params);
  if (!metrics.ok()) {
    std::printf("run failed: %s\n", metrics.status().ToString().c_str());
    return 1;
  }

  std::printf("\nreads:  %llu ok, %llu errors, %.0f/s\n",
              (unsigned long long)metrics->reads_completed,
              (unsigned long long)metrics->read_errors,
              metrics->reads_per_second);
  std::printf("writes: %llu ok, %llu errors, %.0f/s\n",
              (unsigned long long)metrics->writes_completed,
              (unsigned long long)metrics->write_errors,
              metrics->writes_per_second);
  std::printf("read latency:  %s\n",
              metrics->read_latency_micros.ToString().c_str());
  std::printf("write latency: %s\n",
              metrics->write_latency_micros.ToString().c_str());
  return 0;
}
