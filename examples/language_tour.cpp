// language_tour: the same logical question — "who are the distinct
// friends-of-friends of person X?" — asked of four engines in their own
// query languages: SQL, Cypher, SPARQL, and a Gremlin traversal. Shows the
// raw query-language layer underneath the uniform Sut facade, and verifies
// all four return the same answer.

#include <algorithm>
#include <cstdio>
#include <set>

#include "engines/native/cypher_engine.h"
#include "engines/relational/database.h"
#include "snb/datagen.h"
#include "sut/cypher_sut.h"
#include "sut/gremlin_sut.h"
#include "sut/relational_sut.h"
#include "sut/sparql_sut.h"
#include "tinkerpop/traversal.h"
#include "util/string_util.h"

using namespace graphbench;

int main() {
  snb::DatagenOptions options;
  options.num_persons = 120;
  options.seed = 41;
  snb::Dataset data = snb::Generate(options);
  int64_t person = data.persons[10].id;
  std::printf("question: distinct friends-of-friends of person %lld\n\n",
              (long long)person);

  std::set<int64_t> answers[4];

  // --- SQL over the row-store RDBMS -------------------------------------
  {
    RelationalSut sut(StorageMode::kRow);
    if (!sut.Load(data).ok()) return 1;
    std::string sql =
        "SELECT DISTINCT p.id FROM knows k1 "
        "JOIN knows k2 ON k1.person2Id = k2.person1Id "
        "JOIN person p ON k2.person2Id = p.id "
        "WHERE k1.person1Id = ? AND p.id <> ?";
    std::printf("SQL:\n  %s\n", sql.c_str());
    auto r = sut.database()->Execute(sql, {Value(person), Value(person)});
    if (!r.ok()) return 1;
    for (const Row& row : r->rows) answers[0].insert(row[0].as_int());
    std::printf("  -> %zu rows\n\n", r->rows.size());
  }

  // --- Cypher over the native graph store -------------------------------
  {
    CypherSut sut;
    if (!sut.Load(data).ok()) return 1;
    std::string cypher =
        "MATCH (p:Person {id: $id})-[:knows]-(f)-[:knows]-(ff) "
        "WHERE ff.id <> $id RETURN DISTINCT ff.id";
    std::printf("Cypher:\n  %s\n", cypher.c_str());
    CypherEngine engine(sut.graph());
    auto r = engine.Execute(cypher, {{"id", Value(person)}});
    if (!r.ok()) return 1;
    for (const Row& row : r->rows) answers[1].insert(row[0].as_int());
    std::printf("  -> %zu rows\n\n", r->rows.size());
  }

  // --- SPARQL over the triple store --------------------------------------
  {
    SparqlSut sut;
    if (!sut.Load(data).ok()) return 1;
    std::string sparql = StringPrintf(
        "SELECT DISTINCT ?ffid WHERE { ?p snb:id %lld . ?p snb:knows ?f . "
        "?f snb:knows ?ff . FILTER(?ff != ?p) . ?ff snb:id ?ffid }",
        (long long)person);
    std::printf("SPARQL:\n  %s\n", sparql.c_str());
    auto r = sut.engine()->Execute(sparql);
    if (!r.ok()) return 1;
    for (const Row& row : r->rows) answers[2].insert(row[0].as_int());
    std::printf("  -> %zu rows\n\n", r->rows.size());
  }

  // --- Gremlin through the Gremlin Server --------------------------------
  {
    std::unique_ptr<GremlinSut> sut = MakeNeo4jGremlinSut();
    if (!sut->Load(data).ok()) return 1;
    std::printf(
        "Gremlin:\n  g.V().has('Person','id',%lld).as('p')"
        ".both('knows').both('knows').where(neq('p')).dedup()"
        ".values('id')\n",
        (long long)person);
    Traversal t;
    t.V().HasIndexed("Person", "id", Value(person))
        .As("p")
        .Both("knows")
        .Both("knows")
        .WhereNeq("p")
        .Dedup()
        .Values("id");
    auto r = sut->server()->Submit(t);
    if (!r.ok()) return 1;
    for (const Value& v : *r) answers[3].insert(v.as_int());
    std::printf("  -> %zu values\n\n", r->size());
  }

  bool agree = answers[0] == answers[1] && answers[1] == answers[2] &&
               answers[2] == answers[3];
  std::printf("all four languages agree: %s (%zu friends-of-friends)\n",
              agree ? "yes" : "NO", answers[0].size());
  return agree ? 0 : 1;
}
