// Quickstart: build a tiny social network in two different engines through
// the uniform Sut API, run the four benchmark queries, and apply a live
// update. Start here to see the public API surface.

#include <cstdio>

#include "snb/datagen.h"
#include "sut/sut.h"

using namespace graphbench;

namespace {

void Show(const char* what, const Result<QueryResult>& r) {
  if (!r.ok()) {
    std::printf("  %s: error %s\n", what, r.status().ToString().c_str());
    return;
  }
  std::printf("  %s: %zu row(s)", what, r->rows.size());
  if (!r->rows.empty()) {
    std::printf("  first = [");
    for (size_t i = 0; i < r->rows[0].size(); ++i) {
      std::printf("%s%s", i ? ", " : "", r->rows[0][i].ToString().c_str());
    }
    std::printf("]");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // 1. Generate a small SNB-like social network (deterministic).
  snb::DatagenOptions options;
  options.num_persons = 200;
  options.seed = 7;
  snb::Dataset data = snb::Generate(options);
  std::printf("generated %llu vertices, %llu edges, %zu streamed updates\n",
              (unsigned long long)data.VertexCount(),
              (unsigned long long)data.EdgeCount(),
              data.update_stream.size());

  // 2. Load it into two very different systems: a row-store RDBMS driven
  //    by SQL and a native graph database driven by Cypher.
  for (SutKind kind : {SutKind::kPostgresSql, SutKind::kNeo4jCypher}) {
    std::unique_ptr<Sut> sut = MakeSut(kind);
    if (Status s = sut->Load(data); !s.ok()) {
      std::printf("load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\n== %s (resident %.1f MB) ==\n", sut->name().c_str(),
                double(sut->SizeBytes()) / 1e6);

    int64_t person = data.persons.front().id;
    Show("point lookup", sut->PointLookup(person));
    Show("1-hop friends", sut->OneHop(person));
    Show("2-hop friends-of-friends", sut->TwoHop(person));

    int64_t other = data.persons.back().id;
    auto path = sut->ShortestPathLen(person, other);
    std::printf("  shortest path %lld -> %lld: %s\n", (long long)person,
                (long long)other,
                path.ok() ? std::to_string(*path).c_str()
                          : path.status().ToString().c_str());

    // 3. Apply one live update from the generated stream and observe it.
    for (const auto& op : data.update_stream) {
      if (op.kind != snb::UpdateOp::Kind::kAddFriendship) continue;
      if (Status s = sut->Apply(op); !s.ok()) {
        std::printf("update failed: %s\n", s.ToString().c_str());
        return 1;
      }
      std::printf("  applied AddFriendship(%lld, %lld); ",
                  (long long)op.knows.person1, (long long)op.knows.person2);
      auto friends = sut->OneHop(op.knows.person1);
      std::printf("person %lld now has %zu friend(s)\n",
                  (long long)op.knows.person1,
                  friends.ok() ? friends->rows.size() : 0);
      break;
    }
  }
  return 0;
}
