// social_app: a miniature social-networking backend session — the workload
// the paper's introduction motivates — running on a store of your choice.
//
//   ./social_app [--engine=postgres|virtuoso|neo4j|sparql|titan]
//
// Simulates a user opening the app: profile, friend list, news feed
// (friends' recent posts), "people you may know" (2-hop minus 1-hop), and
// degrees of separation to another user.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>

#include "snb/datagen.h"
#include "sut/sut.h"
#include "util/stopwatch.h"

using namespace graphbench;

namespace {

std::unique_ptr<Sut> PickEngine(int argc, char** argv) {
  std::string engine = "postgres";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--engine=", 9) == 0) engine = argv[i] + 9;
  }
  Result<std::unique_ptr<Sut>> made = MakeSut(engine);
  if (!made.ok()) {
    std::printf("%s\n", made.status().ToString().c_str());
    return nullptr;
  }
  return std::move(*made);
}

}  // namespace

int main(int argc, char** argv) {
  snb::DatagenOptions options;
  options.num_persons = 500;
  options.seed = 2026;
  snb::Dataset data = snb::Generate(options);

  std::unique_ptr<Sut> sut = PickEngine(argc, argv);
  if (sut == nullptr) return 1;
  std::printf("engine: %s\n", sut->name().c_str());
  Stopwatch load_clock;
  if (Status s = sut->Load(data); !s.ok()) {
    std::printf("load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("loaded %llu vertices / %llu edges in %.2fs\n\n",
              (unsigned long long)data.VertexCount(),
              (unsigned long long)data.EdgeCount(),
              load_clock.ElapsedSeconds());

  // "Log in" as the person with the most friends (most interesting page).
  std::map<int64_t, int> degree;
  for (const auto& k : data.knows) {
    ++degree[k.person1];
    ++degree[k.person2];
  }
  int64_t me = data.persons.front().id;
  for (const auto& [id, d] : degree) {
    if (d > degree[me]) me = id;
  }

  auto profile = sut->PointLookup(me);
  if (!profile.ok() || profile->rows.empty()) {
    std::printf("profile lookup failed\n");
    return 1;
  }
  std::printf("Profile of user %lld: %s %s\n", (long long)me,
              profile->rows[0][0].ToString().c_str(),
              profile->rows[0][1].ToString().c_str());

  auto friends = sut->OneHop(me);
  if (!friends.ok()) return 1;
  std::printf("Friends (%zu):", friends->rows.size());
  for (size_t i = 0; i < std::min<size_t>(5, friends->rows.size()); ++i) {
    std::printf(" %s", friends->rows[i][1].ToString().c_str());
  }
  std::printf("%s\n", friends->rows.size() > 5 ? " ..." : "");

  // News feed: most recent posts by each friend.
  std::printf("\nNews feed:\n");
  int shown = 0;
  for (const Row& f : friends->rows) {
    auto posts = sut->RecentPosts(f[0].as_int(), 1);
    if (!posts.ok() || posts->rows.empty()) continue;
    std::printf("  [%s] %s\n", f[1].ToString().c_str(),
                posts->rows[0][1].ToString().substr(0, 48).c_str());
    if (++shown == 5) break;
  }
  if (shown == 0) std::printf("  (friends have not posted yet)\n");

  // People you may know: 2-hop minus direct friends.
  auto two_hop = sut->TwoHop(me);
  if (!two_hop.ok()) return 1;
  std::set<int64_t> direct;
  for (const Row& f : friends->rows) direct.insert(f[0].as_int());
  std::printf("\nPeople you may know:");
  int suggested = 0;
  for (const Row& row : two_hop->rows) {
    int64_t candidate = row[0].as_int();
    if (direct.count(candidate)) continue;
    std::printf(" %lld", (long long)candidate);
    if (++suggested == 8) break;
  }
  std::printf("\n");

  // Degrees of separation to the least-connected user.
  int64_t stranger = data.persons.back().id;
  auto distance = sut->ShortestPathLen(me, stranger);
  if (distance.ok()) {
    std::printf("\nDegrees of separation to user %lld: %d\n",
                (long long)stranger, *distance);
  }
  return 0;
}
