#include "benchlib/bench_diff.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"
#include "util/table_printer.h"

namespace graphbench {
namespace benchlib {

namespace {

bool EndsWith(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool IsHistogramLatencyField(const std::string& key) {
  return key == "mean_us" || key == "p50_us" || key == "p95_us" ||
         key == "p99_us";
}

// Driver reports emit "reads_per_second"/"writes_per_second"; the short
// "_per_sec" spelling is accepted for hand-written baselines.
bool IsThroughputKey(const std::string& key) {
  return EndsWith(key, "_per_sec") || EndsWith(key, "_per_second");
}

const Json* FindSystem(const Json& systems, const std::string& name) {
  for (size_t i = 0; i < systems.size(); ++i) {
    const Json& entry = systems.at(i);
    if (entry.Get("system").as_string() == name) return &entry;
  }
  return nullptr;
}

void DiffEntry(const std::string& system, const Json& before,
               const Json& after, double threshold_pct,
               std::vector<MetricDelta>* out) {
  for (const auto& [key, b_value] : before.object_pairs()) {
    if (!after.Has(key)) continue;
    const Json& a_value = after.Get(key);
    if (b_value.type() == Json::Type::kNumber && EndsWith(key, "_ms")) {
      if (b_value.as_number() <= 0) continue;
      MetricDelta d;
      d.system = system;
      d.metric = key;
      d.before = b_value.as_number();
      d.after = a_value.as_number();
      d.delta_pct = (d.after - d.before) / d.before * 100.0;
      d.regressed = d.delta_pct > threshold_pct;
      out->push_back(std::move(d));
    } else if (b_value.type() == Json::Type::kNumber &&
               IsThroughputKey(key)) {
      // Throughput: higher is better, so a regression is a *drop* beyond
      // the threshold (delta_pct stays "positive = grew" for display).
      if (b_value.as_number() <= 0) continue;
      MetricDelta d;
      d.system = system;
      d.metric = key;
      d.before = b_value.as_number();
      d.after = a_value.as_number();
      d.delta_pct = (d.after - d.before) / d.before * 100.0;
      d.regressed = d.delta_pct < -threshold_pct;
      out->push_back(std::move(d));
    } else if (b_value.type() == Json::Type::kObject &&
               a_value.type() == Json::Type::kObject &&
               b_value.Has("p99_us")) {
      // Histogram summary (read_latency, write_schedule_latency, ...).
      for (const auto& [field, b_field] : b_value.object_pairs()) {
        if (!IsHistogramLatencyField(field)) continue;
        if (!a_value.Has(field)) continue;
        if (b_field.as_number() <= 0) continue;
        MetricDelta d;
        d.system = system;
        d.metric = key + "." + field;
        d.before = b_field.as_number();
        d.after = a_value.Get(field).as_number();
        d.delta_pct = (d.after - d.before) / d.before * 100.0;
        d.regressed = d.delta_pct > threshold_pct;
        out->push_back(std::move(d));
      }
    }
  }
}

}  // namespace

Result<DiffResult> DiffReports(const Json& before, const Json& after,
                               double threshold_pct) {
  if (!before.Has("systems") ||
      before.Get("systems").type() != Json::Type::kArray) {
    return Status::InvalidArgument("before report has no \"systems\" array");
  }
  if (!after.Has("systems") ||
      after.Get("systems").type() != Json::Type::kArray) {
    return Status::InvalidArgument("after report has no \"systems\" array");
  }
  const std::string& b_bench = before.Get("bench").as_string();
  const std::string& a_bench = after.Get("bench").as_string();
  if (b_bench != a_bench) {
    return Status::InvalidArgument("reports are from different benches: \"" +
                                   b_bench + "\" vs \"" + a_bench + "\"");
  }

  const Json& b_systems = before.Get("systems");
  const Json& a_systems = after.Get("systems");
  DiffResult diff;
  for (size_t i = 0; i < b_systems.size(); ++i) {
    const Json& b_entry = b_systems.at(i);
    const std::string& name = b_entry.Get("system").as_string();
    const Json* a_entry = FindSystem(a_systems, name);
    if (a_entry == nullptr) {
      diff.only_in_before.push_back(name);
      continue;
    }
    DiffEntry(name, b_entry, *a_entry, threshold_pct, &diff.deltas);
  }
  for (size_t i = 0; i < a_systems.size(); ++i) {
    const std::string& name = a_systems.at(i).Get("system").as_string();
    if (FindSystem(b_systems, name) == nullptr) {
      diff.only_in_after.push_back(name);
    }
  }
  return diff;
}

std::string FormatDiff(const DiffResult& diff, double threshold_pct) {
  TablePrinter table(
      "Metric diff (latency: positive delta = slower; throughput: "
      "negative delta = slower)");
  table.SetHeader({"System", "Metric", "Before", "After", "Delta", ""});
  // Regressions first (throughput regresses downward, so raw delta order
  // would bury them), then worst latency growth.
  std::vector<const MetricDelta*> sorted;
  sorted.reserve(diff.deltas.size());
  for (const auto& d : diff.deltas) sorted.push_back(&d);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const MetricDelta* a, const MetricDelta* b) {
                     if (a->regressed != b->regressed) return a->regressed;
                     return a->delta_pct > b->delta_pct;
                   });
  for (const MetricDelta* d : sorted) {
    table.AddRow({d->system, d->metric, StringPrintf("%.3f", d->before),
                  StringPrintf("%.3f", d->after),
                  StringPrintf("%+.1f%%", d->delta_pct),
                  d->regressed ? "REGRESSED" : ""});
  }
  std::string out = table.ToString();
  for (const auto& name : diff.only_in_before) {
    out += "only in before: " + name + "\n";
  }
  for (const auto& name : diff.only_in_after) {
    out += "only in after: " + name + "\n";
  }
  size_t regressions = 0;
  for (const auto& d : diff.deltas) regressions += d.regressed ? 1 : 0;
  out += StringPrintf(
      "%zu shared metrics, %zu regressed beyond %.1f%% (latency up or "
      "throughput down)\n",
      diff.deltas.size(), regressions, threshold_pct);
  return out;
}

}  // namespace benchlib
}  // namespace graphbench
