#ifndef GRAPHBENCH_BENCHLIB_BENCH_DIFF_H_
#define GRAPHBENCH_BENCHLIB_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "util/json.h"
#include "util/result.h"

namespace graphbench {
namespace benchlib {

/// One latency metric present in both reports for the same system.
struct MetricDelta {
  std::string system;
  /// Dotted path within the system entry, e.g. "two_hop_ms" or
  /// "read_latency.p99_us".
  std::string metric;
  double before = 0;
  double after = 0;
  /// (after - before) / before * 100. Positive means slower.
  double delta_pct = 0;
  bool regressed = false;
};

struct DiffResult {
  std::vector<MetricDelta> deltas;
  /// Systems present in only one of the two reports (not an error, but
  /// worth surfacing — a SUT that stopped loading looks like "no
  /// regressions" otherwise).
  std::vector<std::string> only_in_before;
  std::vector<std::string> only_in_after;
  bool HasRegression() const {
    for (const auto& d : deltas) {
      if (d.regressed) return true;
    }
    return false;
  }
};

/// Compares two BENCH_*.json documents produced by obs::BenchReport.
/// Walks the "systems" arrays, matching entries by their "system" name,
/// and diffs every shared metric: top-level numeric keys ending in "_ms"
/// (latency), keys ending in "_per_sec"/"_per_second" (throughput), and
/// the {"mean_us","p50_us","p95_us","p99_us"} fields of nested histogram
/// objects ("count", "min_us" and "max_us" are noise, not latency). A
/// latency metric regresses when it grows by more than `threshold_pct`
/// percent; a throughput metric regresses when it *drops* by more than
/// `threshold_pct` percent (delta_pct always reports growth). Baseline
/// values <= 0 are skipped (a -1 mean means the query failed, and ratios
/// against zero are meaningless). Errors when either document has no
/// "systems" array or the reports' "bench" names differ.
Result<DiffResult> DiffReports(const Json& before, const Json& after,
                               double threshold_pct);

/// Renders the diff as a table plus a one-line verdict. `threshold_pct`
/// only affects the wording.
std::string FormatDiff(const DiffResult& diff, double threshold_pct);

}  // namespace benchlib
}  // namespace graphbench

#endif  // GRAPHBENCH_BENCHLIB_BENCH_DIFF_H_
