#include "benchlib/read_latency.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "snb/params.h"
#include "sut/sut.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace graphbench {
namespace benchlib {

namespace {

std::string FormatMs(double ms) {
  if (ms < 0.1) return StringPrintf("%.3f", ms);
  if (ms < 10) return StringPrintf("%.2f", ms);
  return StringPrintf("%.1f", ms);
}

}  // namespace

std::string RunReadLatencyTable(const snb::DatagenOptions& scale,
                                const ReadLatencyOptions& options,
                                const std::string& title,
                                obs::BenchReport* report) {
  snb::Dataset data = snb::Generate(scale);

  struct Loaded {
    std::unique_ptr<Sut> sut;
  };
  std::vector<Loaded> suts;
  for (SutKind kind : AllSutKinds()) {
    Loaded l;
    l.sut = MakeSut(kind);
    Status s = l.sut->Load(data);
    if (!s.ok()) {
      std::fprintf(stderr, "load failed for %s: %s\n",
                   l.sut->name().c_str(), s.ToString().c_str());
      continue;
    }
    suts.push_back(std::move(l));
  }

  TablePrinter table(title);
  std::vector<std::string> header{"Query"};
  for (const auto& l : suts) header.push_back(l.sut->name());
  table.SetHeader(header);

  enum QueryType { kPoint, kOneHop, kTwoHop, kShortestPath };
  const char* kNames[] = {"Point lookup", "1-hop", "2-hop", "Shortest path"};
  const char* kKeys[] = {"point_lookup_ms", "one_hop_ms", "two_hop_ms",
                         "shortest_path_ms"};
  std::vector<Json> system_metrics(suts.size(), Json::Object());

  for (int qt = kPoint; qt <= kShortestPath; ++qt) {
    std::vector<std::string> row{kNames[qt]};
    std::vector<double> means;
    for (const auto& l : suts) {
      // Identical deterministic parameter sequence per SUT.
      snb::ParamPools params(data, options.seed);
      Stopwatch total;
      int completed = 0;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        Status s;
        switch (qt) {
          case kPoint:
            s = l.sut->PointLookup(params.NextPersonId()).status();
            break;
          case kOneHop:
            s = l.sut->OneHop(params.NextPersonId()).status();
            break;
          case kTwoHop:
            s = l.sut->TwoHop(params.NextPersonId()).status();
            break;
          case kShortestPath: {
            auto [a, b] = params.NextPersonPair();
            s = l.sut->ShortestPathLen(a, b).status();
            break;
          }
        }
        if (s.ok()) ++completed;
      }
      double mean_ms = completed > 0
                           ? total.ElapsedMillis() / double(completed)
                           : -1;
      means.push_back(mean_ms);
      row.push_back(FormatMs(mean_ms));
      system_metrics[&l - suts.data()].Set(kKeys[qt], Json::Number(mean_ms));
    }
    table.AddRow(row);

    // Ratio row: each system vs the fastest for this query type.
    double best = -1;
    for (double m : means) {
      if (m >= 0 && (best < 0 || m < best)) best = m;
    }
    std::vector<std::string> ratio{std::string("  vs best")};
    for (double m : means) {
      ratio.push_back(m < 0 || best <= 0
                          ? "-"
                          : StringPrintf("%.1fx", m / best));
    }
    table.AddRow(ratio);
  }

  if (report != nullptr) {
    report->SetParam("repetitions", Json::Int(options.repetitions));
    for (size_t i = 0; i < suts.size(); ++i) {
      report->AddSystem(suts[i].sut->name(), std::move(system_metrics[i]));
    }
  }

  std::string rendered = table.ToString();
  std::fputs(rendered.c_str(), stdout);
  std::fflush(stdout);
  return rendered;
}

}  // namespace benchlib
}  // namespace graphbench
