#include "benchlib/read_latency.h"

#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "obs/profiler.h"
#include "snb/params.h"
#include "sut/sut.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace graphbench {
namespace benchlib {

namespace {

std::string FormatMs(double ms) {
  if (ms < 0.1) return StringPrintf("%.3f", ms);
  if (ms < 10) return StringPrintf("%.2f", ms);
  return StringPrintf("%.1f", ms);
}

}  // namespace

std::string RunReadLatencyTable(const snb::DatagenOptions& scale,
                                const ReadLatencyOptions& options,
                                const std::string& title,
                                obs::BenchReport* report) {
  snb::Dataset data = snb::Generate(scale);

  struct Loaded {
    std::unique_ptr<Sut> sut;
  };
  std::vector<Loaded> suts;
  for (SutKind kind : AllSutKinds()) {
    Loaded l;
    l.sut = MakeSut(kind, SutOptions{.plan_cache = options.plan_cache,
                                     .landmarks = options.landmarks});
    Status s = l.sut->Load(data);
    if (!s.ok()) {
      std::fprintf(stderr, "load failed for %s: %s\n",
                   l.sut->name().c_str(), s.ToString().c_str());
      continue;
    }
    suts.push_back(std::move(l));
  }

  TablePrinter table(title);
  std::vector<std::string> header{"Query"};
  for (const auto& l : suts) header.push_back(l.sut->name());
  table.SetHeader(header);

  enum QueryType { kPoint, kOneHop, kTwoHop, kShortestPath };
  const char* kNames[] = {"Point lookup", "1-hop", "2-hop", "Shortest path"};
  const char* kKeys[] = {"point_lookup_ms", "one_hop_ms", "two_hop_ms",
                         "shortest_path_ms"};
  const char* kProfileKeys[] = {"point_lookup", "one_hop", "two_hop",
                                "shortest_path"};
  std::vector<Json> system_metrics(suts.size(), Json::Object());

  struct Profiled {
    obs::QueryProfile profile;
    uint64_t measured_micros = 0;
  };
  // profiles[sut][query type], captured only under options.profile.
  std::vector<std::array<Profiled, 4>> profiles(suts.size());

  for (int qt = kPoint; qt <= kShortestPath; ++qt) {
    std::vector<std::string> row{kNames[qt]};
    std::vector<double> means;
    for (const auto& l : suts) {
      size_t si = size_t(&l - suts.data());
      // Identical deterministic parameter sequence per SUT.
      snb::ParamPools params(data, options.seed);
      obs::ProfileScope scope(options.profile
                                  ? &profiles[si][size_t(qt)].profile
                                  : nullptr);
      Stopwatch total;
      int completed = 0;
      for (int rep = 0; rep < options.repetitions; ++rep) {
        int64_t id = 0;
        int64_t id2 = 0;
        if (qt == kShortestPath) {
          auto [a, b] = params.NextPersonPair();
          id = a;
          id2 = b;
        } else {
          id = params.NextPersonId();
        }
        Status s;
        // Coverage denominator: the SUT call only, excluding harness work
        // (parameter generation above, result teardown after `elapsed` is
        // captured). Clocked only under --profile so the latency table's
        // timed region is untouched.
        uint64_t elapsed = 0;
        uint64_t op_start = options.profile ? NowMicros() : 0;
        switch (qt) {
          case kPoint: {
            auto r = l.sut->PointLookup(id);
            if (options.profile) elapsed = NowMicros() - op_start;
            s = r.status();
            break;
          }
          case kOneHop: {
            auto r = l.sut->OneHop(id);
            if (options.profile) elapsed = NowMicros() - op_start;
            s = r.status();
            break;
          }
          case kTwoHop: {
            auto r = l.sut->TwoHop(id);
            if (options.profile) elapsed = NowMicros() - op_start;
            s = r.status();
            break;
          }
          case kShortestPath: {
            auto r = l.sut->ShortestPathLen(id, id2);
            if (options.profile) elapsed = NowMicros() - op_start;
            s = r.status();
            break;
          }
        }
        if (options.profile) {
          profiles[si][size_t(qt)].measured_micros += elapsed;
        }
        if (s.ok()) ++completed;
      }
      double mean_ms = completed > 0
                           ? total.ElapsedMillis() / double(completed)
                           : -1;
      means.push_back(mean_ms);
      row.push_back(FormatMs(mean_ms));
      system_metrics[si].Set(kKeys[qt], Json::Number(mean_ms));
    }
    table.AddRow(row);

    // Ratio row: each system vs the fastest for this query type.
    double best = -1;
    for (double m : means) {
      if (m >= 0 && (best < 0 || m < best)) best = m;
    }
    std::vector<std::string> ratio{std::string("  vs best")};
    for (double m : means) {
      ratio.push_back(m < 0 || best <= 0
                          ? "-"
                          : StringPrintf("%.1fx", m / best));
    }
    table.AddRow(ratio);
  }

  std::string rendered = table.ToString();

  if (options.profile) {
    for (size_t si = 0; si < suts.size(); ++si) {
      Json profile_json = Json::Object();
      for (int qt = kPoint; qt <= kShortestPath; ++qt) {
        const Profiled& cell = profiles[si][size_t(qt)];
        double coverage =
            cell.measured_micros > 0
                ? 100.0 * double(cell.profile.TotalSelfMicros()) /
                      double(cell.measured_micros)
                : 0;
        rendered += cell.profile.ToString(
            StringPrintf("%s / %s — operator coverage %.1f%% of %.2f ms "
                         "measured",
                         suts[si].sut->name().c_str(), kNames[qt],
                         coverage, double(cell.measured_micros) / 1000.0));
        Json cell_json = obs::ProfileJson(cell.profile);
        cell_json.Set("measured_micros",
                      Json::Int(int64_t(cell.measured_micros)));
        cell_json.Set("coverage_pct", Json::Number(coverage));
        profile_json.Set(kProfileKeys[qt], std::move(cell_json));
      }
      system_metrics[si].Set("profiles", std::move(profile_json));
    }
  }

  if (report != nullptr) {
    report->SetParam("repetitions", Json::Int(options.repetitions));
    report->SetParam("profile", Json::Int(options.profile ? 1 : 0));
    report->SetParam("plan_cache", Json::Int(options.plan_cache ? 1 : 0));
    report->SetParam("landmarks", Json::Int(options.landmarks ? 1 : 0));
    for (size_t i = 0; i < suts.size(); ++i) {
      if (options.plan_cache) {
        lang::PlanCacheStats stats = suts[i].sut->plan_cache_stats();
        Json cache = Json::Object();
        cache.Set("hits", Json::Int(int64_t(stats.hits)));
        cache.Set("misses", Json::Int(int64_t(stats.misses)));
        cache.Set("evictions", Json::Int(int64_t(stats.evictions)));
        cache.Set("hit_rate", Json::Number(stats.HitRate()));
        system_metrics[i].Set("plan_cache", std::move(cache));
      }
      if (options.landmarks) {
        LandmarkStats stats = suts[i].sut->landmark_stats();
        Json lm = Json::Object();
        lm.Set("hits", Json::Int(int64_t(stats.hits)));
        lm.Set("pruned_searches", Json::Int(int64_t(stats.pruned_searches)));
        lm.Set("prunes", Json::Int(int64_t(stats.prunes)));
        lm.Set("rebuilds", Json::Int(int64_t(stats.rebuilds)));
        lm.Set("repairs", Json::Int(int64_t(stats.repairs)));
        lm.Set("fallbacks", Json::Int(int64_t(stats.fallbacks)));
        system_metrics[i].Set("landmarks", std::move(lm));
      }
      report->AddSystem(suts[i].sut->name(), std::move(system_metrics[i]));
    }
  }

  std::fputs(rendered.c_str(), stdout);
  std::fflush(stdout);
  return rendered;
}

}  // namespace benchlib
}  // namespace graphbench
