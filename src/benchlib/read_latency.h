#ifndef GRAPHBENCH_BENCHLIB_READ_LATENCY_H_
#define GRAPHBENCH_BENCHLIB_READ_LATENCY_H_

#include <string>

#include "obs/report.h"
#include "snb/datagen.h"

namespace graphbench {
namespace benchlib {

struct ReadLatencyOptions {
  /// Executions per query type (the paper uses 100).
  int repetitions = 100;
  uint64_t seed = 77;
  /// When true (the --profile flag), captures a per-operator QueryProfile
  /// per (SUT, query type), prints the breakdowns — with the fraction of
  /// the measured latency the instrumented operators account for — and
  /// embeds them under "profiles" in each system's report entry.
  bool profile = false;
  /// When true (the --plan_cache flag), every SUT runs with its prepared
  /// statement set and engine plan cache enabled (DESIGN.md §8); each
  /// system's report entry then embeds a "plan_cache" section with the
  /// cache traffic. Off by default — parse-per-call is the paper's
  /// methodology.
  bool plan_cache = false;
  /// When true (the --landmarks flag), every SUT answers shortest-path
  /// queries through the shared landmark index (DESIGN.md §9); each
  /// system's report entry then embeds a "landmarks" section with
  /// hit/prune/rebuild counts. Off by default — engine-native BFS is the
  /// paper's methodology.
  bool landmarks = false;
};

/// Runs the §4.2 read-only experiment — point lookup, 1-hop, 2-hop,
/// single-pair shortest path, each `repetitions` times with no concurrent
/// load — against all eight SUTs, and prints the Table 2/3-shaped result
/// (mean latency in ms) plus a ratio row (each system vs the row's best).
/// Returns the printed table as a string (for tests). When `report` is
/// non-null, adds one system entry per SUT with per-query mean latencies.
std::string RunReadLatencyTable(const snb::DatagenOptions& scale,
                                const ReadLatencyOptions& options,
                                const std::string& title,
                                obs::BenchReport* report = nullptr);

}  // namespace benchlib
}  // namespace graphbench

#endif  // GRAPHBENCH_BENCHLIB_READ_LATENCY_H_
