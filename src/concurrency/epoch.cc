#include "concurrency/epoch.h"

#include <algorithm>

#include "obs/metrics.h"

namespace graphbench {
namespace concurrency {

namespace {

struct EpochMetrics {
  obs::Gauge* current;
  obs::Gauge* pinned_readers;
  obs::Counter* retired_objects;
  obs::Counter* reclaimed;

  static EpochMetrics& Get() {
    static EpochMetrics m{
        obs::MetricsRegistry::Default().GetGauge("epoch.current"),
        obs::MetricsRegistry::Default().GetGauge("epoch.pinned_readers"),
        obs::MetricsRegistry::Default().GetCounter("epoch.retired_objects"),
        obs::MetricsRegistry::Default().GetCounter("epoch.reclaimed"),
    };
    return m;
  }
};

// Writer-side batch bookkeeping. The epoch may only advance while no
// write batch is open; this freezes `write_epoch()` for the whole batch,
// which is what makes in-place mutation of same-batch versions safe (a
// version tagged current+1 cannot become visible until every open batch
// has closed).
std::mutex g_batch_mu;
int g_open_batches = 0;
thread_local int t_batch_depth = 0;

}  // namespace

struct EpochManager::ThreadState {
  EpochManager* mgr = nullptr;
  Slot* slot = nullptr;
  bool overflow = false;  // sticky: no slot was free on first pin
  uint64_t pinned_epoch = 0;
  int pin_depth = 0;

  ~ThreadState() {
    if (slot != nullptr) {
      slot->pinned.store(0, std::memory_order_seq_cst);
      slot->claimed.store(false, std::memory_order_release);
    }
  }
};

EpochManager::EpochManager() = default;
EpochManager::~EpochManager() = default;

EpochManager& EpochManager::Global() {
  // Leaked: must outlive every thread's ThreadState destructor.
  static EpochManager* g = new EpochManager();
  return *g;
}

EpochManager::ThreadState& EpochManager::LocalState() {
  thread_local ThreadState ts;
  return ts;
}

EpochManager::Slot* EpochManager::ClaimSlot() {
  for (Slot& s : slots_) {
    bool expected = false;
    if (!s.claimed.load(std::memory_order_relaxed) &&
        s.claimed.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      return &s;
    }
  }
  return nullptr;
}

void EpochManager::PinOverflow(uint64_t* out_epoch) {
  std::lock_guard<std::mutex> lk(overflow_mu_);
  for (;;) {
    uint64_t e = epoch_.load(std::memory_order_seq_cst);
    auto it = overflow_pins_.insert(e);
    if (epoch_.load(std::memory_order_seq_cst) == e) {
      overflow_count_.fetch_add(1, std::memory_order_relaxed);
      *out_epoch = e;
      return;
    }
    overflow_pins_.erase(it);
  }
}

void EpochManager::UnpinOverflow(uint64_t epoch) {
  std::lock_guard<std::mutex> lk(overflow_mu_);
  auto it = overflow_pins_.find(epoch);
  if (it != overflow_pins_.end()) overflow_pins_.erase(it);
  overflow_count_.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t EpochManager::MinPinned() const {
  uint64_t min = kWriterPin;
  for (const Slot& s : slots_) {
    uint64_t p = s.pinned.load(std::memory_order_seq_cst);
    if (p != 0 && p < min) min = p;
  }
  if (overflow_count_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard<std::mutex> lk(overflow_mu_);
    if (!overflow_pins_.empty() && *overflow_pins_.begin() < min) {
      min = *overflow_pins_.begin();
    }
  }
  return min;
}

uint64_t EpochManager::pinned_readers() const {
  uint64_t n = overflow_count_.load(std::memory_order_relaxed);
  for (const Slot& s : slots_) {
    if (s.pinned.load(std::memory_order_relaxed) != 0) ++n;
  }
  return n;
}

void EpochManager::Retire(std::shared_ptr<const void> obj) {
  // While a batch is open the epoch is frozen, so this is exactly the
  // epoch at which the object was unlinked. A concurrent advance (other
  // writer's commit) can only raise it, which merely delays reclamation.
  uint64_t e = epoch_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lk(retire_mu_);
    retired_.emplace_back(e, std::move(obj));
  }
  retired_outstanding_.fetch_add(1, std::memory_order_relaxed);
  total_retired_.fetch_add(1, std::memory_order_relaxed);
  EpochMetrics::Get().retired_objects->Increment();
}

void EpochManager::Advance() {
  uint64_t e;
  {
    std::lock_guard<std::mutex> lk(g_batch_mu);
    e = epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }
  EpochMetrics::Get().current->Set(int64_t(e));
  Reclaim();
}

size_t EpochManager::Reclaim() {
  if (retired_outstanding_.load(std::memory_order_relaxed) == 0) return 0;
  // A version retired at epoch R is still the visible copy until the
  // epoch moves past R, and still reachable by any reader pinned <= R —
  // so free strictly below both. Epoch first, slots second: a racing
  // reader that successfully pins e re-checked the epoch after storing
  // its slot, so if our epoch load already saw > e the slot scan below
  // is guaranteed to see that reader's pin.
  uint64_t limit = epoch_.load(std::memory_order_seq_cst);
  uint64_t min_pin = MinPinned();
  if (min_pin < limit) limit = min_pin;

  std::vector<std::pair<uint64_t, std::shared_ptr<const void>>> freed;
  {
    std::lock_guard<std::mutex> lk(retire_mu_);
    auto split = std::partition(
        retired_.begin(), retired_.end(),
        [limit](const auto& e) { return e.first >= limit; });
    freed.assign(std::make_move_iterator(split),
                 std::make_move_iterator(retired_.end()));
    retired_.erase(split, retired_.end());
  }
  if (freed.empty()) return 0;
  retired_outstanding_.fetch_sub(freed.size(), std::memory_order_relaxed);
  total_reclaimed_.fetch_add(freed.size(), std::memory_order_relaxed);
  EpochMetrics::Get().reclaimed->Increment(freed.size());
  size_t n = freed.size();
  freed.clear();  // destructors run outside retire_mu_
  return n;
}

EpochGuard::EpochGuard() {
  EpochManager& mgr = EpochManager::Global();
  EpochManager::ThreadState& ts = mgr.LocalState();
  if (ts.pin_depth++ > 0) {
    epoch_ = ts.pinned_epoch;
    return;
  }
  if (ts.slot == nullptr && !ts.overflow) {
    ts.slot = mgr.ClaimSlot();
    if (ts.slot == nullptr) ts.overflow = true;
  }
  if (ts.slot != nullptr) {
    // Store-then-recheck: once the re-check passes, any writer that
    // advances past `e` must subsequently observe this slot's pin in
    // its reclaim scan (both sides are seq_cst).
    uint64_t e;
    do {
      e = mgr.epoch_.load(std::memory_order_seq_cst);
      ts.slot->pinned.store(e, std::memory_order_seq_cst);
    } while (mgr.epoch_.load(std::memory_order_seq_cst) != e);
    epoch_ = e;
  } else {
    mgr.PinOverflow(&epoch_);
  }
  ts.pinned_epoch = epoch_;
  EpochMetrics::Get().pinned_readers->Add(1);
}

EpochGuard::~EpochGuard() {
  EpochManager& mgr = EpochManager::Global();
  EpochManager::ThreadState& ts = mgr.LocalState();
  if (--ts.pin_depth > 0) return;
  if (ts.slot != nullptr) {
    ts.slot->pinned.store(0, std::memory_order_seq_cst);
  } else {
    mgr.UnpinOverflow(ts.pinned_epoch);
  }
  EpochMetrics::Get().pinned_readers->Add(-1);
  // The writer drains its own garbage on commit; the last reader out
  // sweeps anything that was still pinned at that point.
  if (mgr.retired_outstanding_.load(std::memory_order_relaxed) > 0) {
    mgr.Reclaim();
  }
}

bool WriteBatch::ThreadInBatch() { return t_batch_depth > 0; }

WriteBatch::WriteBatch() {
  ++t_batch_depth;
  std::lock_guard<std::mutex> lk(g_batch_mu);
  ++g_open_batches;
}

WriteBatch::~WriteBatch() {
  --t_batch_depth;
  uint64_t advanced_to = 0;
  EpochManager& mgr = EpochManager::Global();
  {
    std::lock_guard<std::mutex> lk(g_batch_mu);
    if (--g_open_batches == 0) {
      advanced_to =
          mgr.epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
    }
  }
  if (advanced_to != 0) {
    EpochMetrics::Get().current->Set(int64_t(advanced_to));
    mgr.Reclaim();
  }
}

}  // namespace concurrency
}  // namespace graphbench
