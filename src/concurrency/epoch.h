#ifndef GRAPHBENCH_CONCURRENCY_EPOCH_H_
#define GRAPHBENCH_CONCURRENCY_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace graphbench {
namespace concurrency {

/// Epoch-based reclamation for the benchmark's single-writer/many-reader
/// topology (§4.3: readers must not serialize against the update stream).
///
/// Protocol:
///   - The global epoch E only moves forward, and only when a write batch
///     commits (`Advance`, via `WriteBatch`).
///   - Writers tag every new version with `write_epoch() == E + 1`. Until
///     the batch commits those versions are invisible to every reader, so
///     a batch of any size becomes visible atomically ("all-or-none").
///   - Readers pin the current epoch for the duration of a query
///     (`EpochGuard`) and only observe versions with epoch <= pin.
///   - Replaced versions are pushed onto a deferred-reclamation list
///     (`Retire`). A retired object is destroyed once (a) the epoch has
///     advanced past its retire epoch and (b) no reader pins an epoch
///     <= its retire epoch. With one writer per structure this needs no
///     hazard pointers: the writer is the only producer of garbage and
///     drains the list on each commit; the last reader to unpin sweeps
///     anything the writer left behind.
class EpochManager {
 public:
  /// Fixed reader-slot array: one cache line per concurrently registered
  /// thread. Threads beyond this fall back to a mutex-guarded overflow
  /// set (correct, just slower).
  static constexpr size_t kMaxReaderSlots = 256;

  EpochManager();
  ~EpochManager();

  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// The process-wide instance every engine shares. Sharing one epoch
  /// across engines is what makes a multi-engine `Apply` commit as a unit.
  static EpochManager& Global();

  /// Last committed epoch. Readers pin this value.
  uint64_t current() const { return epoch_.load(std::memory_order_acquire); }

  /// Epoch for in-flight writes: becomes visible at the next Advance().
  uint64_t write_epoch() const { return current() + 1; }

  /// Sentinel pin that sees every version, including uncommitted ones.
  /// Writer-side reads use this so a batch can read its own writes.
  static constexpr uint64_t kWriterPin = ~uint64_t{0};

  /// Defers destruction of `obj` until no reader can still hold a pin
  /// that reaches it. Thread-safe (engines flush/merge concurrently).
  void Retire(std::shared_ptr<const void> obj);

  /// Convenience: retire a raw pointer, deleting it on reclamation.
  template <typename T>
  void RetireDelete(const T* p) {
    if (p == nullptr) return;
    Retire(std::shared_ptr<const void>(
        p, [](const void* q) { delete static_cast<const T*>(q); }));
  }

  /// Commits the in-flight epoch (all versions tagged `write_epoch()`
  /// become visible) and reclaims whatever garbage is now unreachable.
  void Advance();

  /// Destroys every retired object whose retire epoch is both behind the
  /// current epoch and behind every pinned reader. Returns the number
  /// reclaimed. Called by Advance() and by the last unpinning reader.
  size_t Reclaim();

  /// Number of currently pinned readers (gauge; approximate under churn).
  uint64_t pinned_readers() const;

  /// Retired objects not yet reclaimed.
  uint64_t retired_outstanding() const {
    return retired_outstanding_.load(std::memory_order_relaxed);
  }
  uint64_t total_retired() const {
    return total_retired_.load(std::memory_order_relaxed);
  }
  uint64_t total_reclaimed() const {
    return total_reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  friend class EpochGuard;
  friend class WriteBatch;

  struct alignas(64) Slot {
    /// 0 = idle, otherwise the pinned epoch.
    std::atomic<uint64_t> pinned{0};
    std::atomic<bool> claimed{false};
  };

  struct ThreadState;
  ThreadState& LocalState();

  /// Smallest pinned epoch, or kWriterPin when no reader is pinned.
  uint64_t MinPinned() const;

  Slot* ClaimSlot();
  void PinOverflow(uint64_t* out_epoch);
  void UnpinOverflow(uint64_t epoch);

  std::atomic<uint64_t> epoch_{1};
  std::vector<Slot> slots_{kMaxReaderSlots};

  mutable std::mutex overflow_mu_;
  std::multiset<uint64_t> overflow_pins_;
  std::atomic<uint64_t> overflow_count_{0};

  std::mutex retire_mu_;
  std::vector<std::pair<uint64_t, std::shared_ptr<const void>>> retired_;
  std::atomic<uint64_t> retired_outstanding_{0};
  std::atomic<uint64_t> total_retired_{0};
  std::atomic<uint64_t> total_reclaimed_{0};
};

/// RAII reader pin on EpochManager::Global(). Re-entrant: nested guards on
/// the same thread share the outermost pin, so an engine read called from
/// an already-guarded SUT entry point keeps the caller's snapshot.
class EpochGuard {
 public:
  EpochGuard();
  ~EpochGuard();

  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

  /// The pinned epoch: versions with epoch <= this are visible.
  uint64_t epoch() const { return epoch_; }

 private:
  uint64_t epoch_;
};

/// RAII write-batch scope on EpochManager::Global(). The outermost scope
/// on a thread commits (Advance) on destruction; nested scopes — an
/// engine primitive called from a SUT `Apply` — are absorbed, so a whole
/// SNB update op publishes atomically. Engine mutators open one of these
/// so standalone (test/bench) use still commits per primitive.
class WriteBatch {
 public:
  WriteBatch();
  ~WriteBatch();

  WriteBatch(const WriteBatch&) = delete;
  WriteBatch& operator=(const WriteBatch&) = delete;

  /// True when the calling thread is inside an open batch.
  static bool ThreadInBatch();
};

/// The pin an engine read path should use: inside a write batch the caller
/// IS the writer (engine writer mutexes serialize them), so it reads its
/// own uncommitted versions; otherwise it reads the guard's snapshot.
inline uint64_t ReadPin(const EpochGuard& guard) {
  return WriteBatch::ThreadInBatch() ? EpochManager::kWriterPin
                                     : guard.epoch();
}

}  // namespace concurrency
}  // namespace graphbench

#endif  // GRAPHBENCH_CONCURRENCY_EPOCH_H_
