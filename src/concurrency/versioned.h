#ifndef GRAPHBENCH_CONCURRENCY_VERSIONED_H_
#define GRAPHBENCH_CONCURRENCY_VERSIONED_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "concurrency/epoch.h"

namespace graphbench {
namespace concurrency {

/// Building blocks for epoch-versioned engine state. Shared contract:
///
///   - Exactly one writer mutates a given container at a time (the
///     engines serialize writers with a plain mutex); readers are
///     unbounded, lock-free, and must hold an EpochGuard for the whole
///     read so the versions they traverse cannot be reclaimed.
///   - Writers call mutators inside a WriteBatch; new versions are tagged
///     with the frozen `write_epoch()` and become visible atomically when
///     the outermost batch commits.
///   - `pin` arguments are a guard's `epoch()`, or
///     `EpochManager::kWriterPin` for writer-side reads that must see the
///     batch's own uncommitted writes.

namespace internal {

template <typename T>
struct Version {
  Version(uint64_t e, T v, const Version* o)
      : epoch(e), older(o), value(std::move(v)) {}
  const uint64_t epoch;
  const Version* const older;  // non-owning: owned by the retire list
  T value;
};

/// Newest version visible at `pin`, or nullptr. A version node reached
/// here is safe to dereference: it is either the live head or was retired
/// at an epoch >= the predecessor's epoch - 1 >= pin, which the caller's
/// guard keeps unreclaimed.
template <typename T>
const T* ReadChain(const std::atomic<const Version<T>*>& head, uint64_t pin) {
  const Version<T>* v = head.load(std::memory_order_acquire);
  while (v != nullptr && v->epoch > pin) v = v->older;
  return v != nullptr ? &v->value : nullptr;
}

/// Writer-side publish: mutates a clone of the latest version under the
/// current write epoch. If the head was already produced by this (still
/// open, epoch-freezing) batch it is mutated in place — invisible to all
/// readers until the batch commits — which keeps bulk loads O(total work)
/// instead of O(clones x versions).
template <typename T, typename Fn>
void PublishChain(std::atomic<const Version<T>*>& head, EpochManager& mgr,
                  Fn&& mutate) {
  const uint64_t we = mgr.write_epoch();
  const Version<T>* h = head.load(std::memory_order_relaxed);
  if (h != nullptr && h->epoch == we) {
    mutate(const_cast<Version<T>*>(h)->value);
    head.store(h, std::memory_order_release);
    return;
  }
  T next = h != nullptr ? h->value : T{};
  mutate(next);
  head.store(new Version<T>(we, std::move(next), h),
             std::memory_order_release);
  if (h != nullptr) mgr.RetireDelete(h);
}

}  // namespace internal

/// One epoch-versioned value. Readers see the newest value whose publish
/// batch committed at or before their pin; nullptr before the first
/// committed publish.
template <typename T>
class VersionedCell {
 public:
  VersionedCell() = default;
  ~VersionedCell() {
    // Superseded versions are owned by the retire list; only the head is
    // ours.
    delete head_.load(std::memory_order_relaxed);
  }

  VersionedCell(const VersionedCell&) = delete;
  VersionedCell& operator=(const VersionedCell&) = delete;

  const T* Read(uint64_t pin) const { return internal::ReadChain(head_, pin); }
  const T* WriterLatest() const { return Read(EpochManager::kWriterPin); }

  template <typename Fn>
  void Publish(EpochManager& mgr, Fn&& mutate) {
    internal::PublishChain(head_, mgr, std::forward<Fn>(mutate));
  }

  void Store(EpochManager& mgr, T value) {
    Publish(mgr, [&value](T& v) { v = std::move(value); });
  }

 private:
  std::atomic<const internal::Version<T>*> head_{nullptr};
};

/// Growable array of epoch-versioned slots: the per-vertex / per-row
/// version-chain directory behind the copy-on-write adjacency segments.
/// Slots are appended by the writer and never move (chunked storage; the
/// chunk directory is republished and the old one retired on growth).
/// `Read` of a slot appended by a still-uncommitted batch returns nullptr,
/// so readers may index anything below `size()`.
template <typename T, size_t kChunkSize = 64>
class VersionedTable {
 public:
  VersionedTable() = default;
  ~VersionedTable() {
    for (auto& chunk : chunks_) {
      for (auto& slot : chunk->slots) {
        delete slot.load(std::memory_order_relaxed);
      }
    }
    delete dir_.load(std::memory_order_relaxed);
  }

  VersionedTable(const VersionedTable&) = delete;
  VersionedTable& operator=(const VersionedTable&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  const T* Read(size_t i, uint64_t pin) const {
    if (i >= size()) return nullptr;
    const Dir* d = dir_.load(std::memory_order_acquire);
    return internal::ReadChain((*d)[i / kChunkSize]->slots[i % kChunkSize],
                               pin);
  }

  const T* WriterLatest(size_t i) const {
    return Read(i, EpochManager::kWriterPin);
  }

  /// Appends a slot whose first version carries the current write epoch;
  /// returns its index.
  size_t Append(EpochManager& mgr, T value) {
    size_t i = size_.load(std::memory_order_relaxed);
    Publish(mgr, i, [&value](T& v) { v = std::move(value); });
    return i;
  }

  /// Publishes a new version of slot `i` (clone-mutate, or in place for
  /// same-batch versions). Appends the slot if `i == size()`.
  template <typename Fn>
  void Publish(EpochManager& mgr, size_t i, Fn&& mutate) {
    size_t n = size_.load(std::memory_order_relaxed);
    if (i >= n) {
      GrowTo(mgr, i + 1);
    }
    const Dir* d = dir_.load(std::memory_order_relaxed);
    internal::PublishChain((*d)[i / kChunkSize]->slots[i % kChunkSize], mgr,
                           std::forward<Fn>(mutate));
    if (i >= n) size_.store(i + 1, std::memory_order_release);
  }

 private:
  struct Chunk {
    std::array<std::atomic<const internal::Version<T>*>, kChunkSize> slots{};
  };
  using Dir = std::vector<Chunk*>;

  void GrowTo(EpochManager& mgr, size_t n) {
    size_t need = (n + kChunkSize - 1) / kChunkSize;
    if (need <= chunks_.size()) return;
    auto* next = new Dir(dir_.load(std::memory_order_relaxed) != nullptr
                             ? *dir_.load(std::memory_order_relaxed)
                             : Dir{});
    while (chunks_.size() < need) {
      chunks_.push_back(std::make_unique<Chunk>());
      next->push_back(chunks_.back().get());
    }
    const Dir* old = dir_.load(std::memory_order_relaxed);
    dir_.store(next, std::memory_order_release);
    if (old != nullptr) mgr.RetireDelete(old);
  }

  std::atomic<const Dir*> dir_{nullptr};
  std::vector<std::unique_ptr<Chunk>> chunks_;  // writer-owned, stable
  std::atomic<size_t> size_{0};
};

/// Append-only chunked vector with stable element addresses: columnar
/// side tables. Elements are immutable once `size()` has published them.
/// Visibility control is the caller's: readers must bound indexes by an
/// epoch-versioned count (e.g. a VersionedCell of row counts), not by
/// `size()`, which may already include uncommitted appends.
template <typename T, size_t kChunkSize = 256>
class StableVec {
 public:
  StableVec() = default;
  ~StableVec() { delete dir_.load(std::memory_order_relaxed); }

  StableVec(const StableVec&) = delete;
  StableVec& operator=(const StableVec&) = delete;

  size_t size() const { return size_.load(std::memory_order_acquire); }

  const T& operator[](size_t i) const {
    const Dir* d = dir_.load(std::memory_order_acquire);
    return (*d)[i / kChunkSize]->items[i % kChunkSize];
  }

  void PushBack(EpochManager& mgr, T value) {
    size_t i = size_.load(std::memory_order_relaxed);
    if (i / kChunkSize >= chunks_.size()) {
      chunks_.push_back(std::make_unique<Chunk>());
      auto* next = new Dir(dir_.load(std::memory_order_relaxed) != nullptr
                               ? *dir_.load(std::memory_order_relaxed)
                               : Dir{});
      next->push_back(chunks_.back().get());
      const Dir* old = dir_.load(std::memory_order_relaxed);
      dir_.store(next, std::memory_order_release);
      if (old != nullptr) mgr.RetireDelete(old);
    }
    chunks_.back()->items[i % kChunkSize] = std::move(value);
    size_.store(i + 1, std::memory_order_release);
  }

 private:
  struct Chunk {
    std::array<T, kChunkSize> items{};
  };
  using Dir = std::vector<Chunk*>;

  std::atomic<const Dir*> dir_{nullptr};
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::atomic<size_t> size_{0};
};

/// Insert-only hash map with epoch-tagged entries: unique vertex indexes
/// and id -> ordinal maps. Readers probe lock-free under a guard; entries
/// inserted by uncommitted batches are invisible to them. The writer sees
/// every entry (uniqueness checks read their own batch's inserts).
template <typename K, typename V, typename Hash = std::hash<K>>
class EpochHashMap {
 public:
  explicit EpochHashMap(size_t initial_buckets = 64)
      : owned_(std::make_unique<Table>(RoundUpPow2(initial_buckets))) {
    table_.store(owned_.get(), std::memory_order_release);
  }

  EpochHashMap(const EpochHashMap&) = delete;
  EpochHashMap& operator=(const EpochHashMap&) = delete;

  /// Reader probe: the value visible at `pin`, or nullptr.
  const V* Find(const K& key, uint64_t pin) const {
    const Table* t = table_.load(std::memory_order_acquire);
    const Node* n =
        t->buckets[Hash{}(key) & (t->buckets.size() - 1)].load(
            std::memory_order_acquire);
    for (; n != nullptr; n = n->next) {
      if (n->key == key) return n->epoch <= pin ? &n->value : nullptr;
    }
    return nullptr;
  }

  /// Writer-side insert; returns false (and stores nothing) if the key is
  /// already present, committed or not.
  bool Insert(EpochManager& mgr, const K& key, V value) {
    Table* t = owned_.get();
    size_t b = Hash{}(key) & (t->buckets.size() - 1);
    for (const Node* n = t->buckets[b].load(std::memory_order_relaxed);
         n != nullptr; n = n->next) {
      if (n->key == key) return false;
    }
    t->arena.push_back(Node{key, std::move(value), mgr.write_epoch(),
                            t->buckets[b].load(std::memory_order_relaxed)});
    t->buckets[b].store(&t->arena.back(), std::memory_order_release);
    count_.fetch_add(1, std::memory_order_relaxed);
    if (t->arena.size() > t->buckets.size()) Grow(mgr);
    return true;
  }

  size_t size() const { return count_.load(std::memory_order_relaxed); }

  /// Writer-side iteration over every entry (any epoch).
  template <typename Fn>
  void ForEachWriter(Fn&& fn) const {
    for (const Node& n : owned_->arena) fn(n.key, n.value);
  }

 private:
  struct Node {
    K key;
    V value;
    uint64_t epoch;
    const Node* next;
  };
  struct Table {
    explicit Table(size_t n) : buckets(n) {}
    std::vector<std::atomic<const Node*>> buckets;
    std::deque<Node> arena;  // nodes never move; copied on resize
  };

  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void Grow(EpochManager& mgr) {
    auto next = std::make_unique<Table>(owned_->buckets.size() * 2);
    size_t mask = next->buckets.size() - 1;
    // Copy nodes (original epochs preserved); relinking in place would
    // race with readers traversing the old chains.
    for (const Node& n : owned_->arena) {
      size_t b = Hash{}(n.key) & mask;
      next->arena.push_back(
          Node{n.key, n.value, n.epoch,
               next->buckets[b].load(std::memory_order_relaxed)});
      next->buckets[b].store(&next->arena.back(), std::memory_order_release);
    }
    table_.store(next.get(), std::memory_order_release);
    mgr.RetireDelete(owned_.release());
    owned_ = std::move(next);
  }

  std::unique_ptr<Table> owned_;
  std::atomic<const Table*> table_{nullptr};
  std::atomic<size_t> count_{0};
};

}  // namespace concurrency
}  // namespace graphbench

#endif  // GRAPHBENCH_CONCURRENCY_VERSIONED_H_
