#include "driver/driver.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slowlog.h"
#include "snb/update_codec.h"
#include "util/string_util.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace graphbench {

InteractiveDriver::InteractiveDriver(Sut* sut, mq::Broker* broker,
                                     DriverOptions options)
    : sut_(sut), broker_(broker), options_(options) {}

Status InteractiveDriver::ProduceUpdates(mq::Broker* broker,
                                         std::string_view topic,
                                         const snb::Dataset& data) {
  // Single partition preserves the scheduled order end-to-end, which is
  // what makes timestamp-order replay dependency-safe.
  Status s = broker->CreateTopic(topic, 1);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  mq::Producer producer(broker, std::string(topic));
  for (const snb::UpdateOp& op : data.update_stream) {
    GB_RETURN_IF_ERROR(
        producer.Send("", snb::EncodeUpdate(op), op.scheduled_date)
            .status());
  }
  return Status::OK();
}

Result<DriverMetrics> InteractiveDriver::Run(std::string_view topic,
                                             snb::ParamPools* params) {
  DriverMetrics metrics;
  const size_t buckets =
      size_t(options_.run_millis / options_.timeline_bucket_millis) + 2;
  metrics.write_timeline.assign(buckets, 0);
  metrics.read_timeline.assign(buckets, 0);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0}, read_errors{0};
  std::atomic<uint64_t> writes{0}, write_errors{0}, dep_violations{0};
  std::mutex timeline_mu;

  Stopwatch run_clock;
  auto bucket_of = [&](uint64_t micros) {
    size_t b = size_t(int64_t(micros / 1000) /
                      options_.timeline_bucket_millis);
    return std::min(b, buckets - 1);
  };

  // Observability: mirror the run's counters into the default registry so
  // bench reports can snapshot them alongside DriverMetrics.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  obs::Counter* obs_reads = registry.GetCounter("driver.reads");
  obs::Counter* obs_read_errors = registry.GetCounter("driver.read_errors");
  obs::Counter* obs_writes = registry.GetCounter("driver.writes");
  obs::Counter* obs_write_errors =
      registry.GetCounter("driver.write_errors");
  obs::Gauge* obs_lag = registry.GetGauge("mq.consumer.lag");

  // --- The single writer: drain the Kafka queue into the SUT -----------
  std::atomic<uint64_t> write_micros_active{0};
  std::atomic<uint64_t> late{0};
  std::thread writer([&] {
    mq::Consumer consumer(broker_, std::string(topic));
    // Paced mode: op k is due at k / rate seconds into the run.
    const double pace = options_.replay_updates_per_second;
    uint64_t op_index = 0;
    // Dependency tracking: ops arrive in scheduled order; the watermark
    // is the latest scheduled_date already applied. An op whose
    // dependency_date exceeds the watermark would have run before its
    // dependencies — counted (it cannot happen with a single ordered
    // partition, but the check is the driver's §2.2 contract).
    int64_t watermark = 0;
    Stopwatch writer_clock;
    for (;;) {
      auto batch = consumer.Poll(64);
      if (!batch.ok()) break;
      obs_lag->Set(int64_t(consumer.Lag()));
      if (batch->empty()) {
        if (stop.load() || consumer.Lag() == 0) break;
        std::this_thread::yield();
        continue;
      }
      for (const mq::Message& m : *batch) {
        auto op = snb::DecodeUpdate(m.payload);
        if (!op.ok()) {
          ++write_errors;
          continue;
        }
        if (op->dependency_date > watermark &&
            op->dependency_date > 0) {
          // Dependency not yet satisfied by an applied op; with ordered
          // replay this means the dependency is in the static snapshot
          // (fine) or missing (violation). Snapshot deps have dates
          // before the stream's first op.
          if (op->dependency_date >= op->scheduled_date) {
            ++dep_violations;
          }
        }
        uint64_t due_us = 0;
        if (pace > 0) {
          due_us = uint64_t(double(op_index) / pace * 1e6);
          uint64_t now_us = run_clock.ElapsedMicros();
          if (now_us < due_us) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(due_us - now_us));
          } else if (now_us > due_us + uint64_t(options_
                                                    .timeline_bucket_millis) *
                                           1000) {
            ++late;  // the SUT fell behind the pre-set rate
          }
        }
        ++op_index;
        Stopwatch op_clock;
        Status s = sut_->Apply(*op);
        uint64_t us = op_clock.ElapsedMicros();
        metrics.write_latency_micros.Add(us);
        if (pace > 0) {
          // Schedule-aware latency (the LDBC driver's definition):
          // completion relative to the op's scheduled slot, not its actual
          // start. When the writer falls behind, the queueing delay counts
          // — avoiding coordinated omission in overload reporting.
          uint64_t end_us = run_clock.ElapsedMicros();
          metrics.write_schedule_latency_micros.Add(
              end_us > due_us ? end_us - due_us : 0);
        }
        if (s.ok()) {
          ++writes;
          obs_writes->Increment();
          watermark = std::max(watermark, op->scheduled_date);
          std::lock_guard<std::mutex> lock(timeline_mu);
          ++metrics.write_timeline[bucket_of(run_clock.ElapsedMicros())];
        } else {
          ++write_errors;
          obs_write_errors->Increment();
        }
        if (stop.load()) break;
      }
      if (stop.load()) break;
    }
    write_micros_active = writer_clock.ElapsedMicros();
  });

  // --- Concurrent readers over the modified query mix -------------------
  // Slow-query capture: when enabled, every read runs under a ProfileScope
  // so the per-operator breakdown of an offending query is available at
  // the moment it crosses the threshold.
  obs::SlowQueryLog slowlog(options_.slowlog_capacity,
                            options_.slowlog_threshold_micros);
  const bool slowlog_enabled =
      obs::kEnabled && options_.slowlog_threshold_micros > 0;

  std::vector<std::thread> readers;
  readers.reserve(options_.num_readers);
  for (size_t r = 0; r < options_.num_readers; ++r) {
    readers.emplace_back([&, r] {
      snb::ParamPools local(*params);  // independent deterministic stream
      Rng mix_rng(options_.seed + r * 7919);
      obs::QueryProfile profile;
      while (!stop.load()) {
        double roll = mix_rng.NextDouble();
        const char* kind;
        int64_t person = 0;
        Stopwatch op_clock;
        Status s;
        {
          obs::ProfileScope scope(slowlog_enabled ? &profile : nullptr);
          if (roll < options_.two_hop_fraction) {
            kind = "two_hop";
            person = local.NextPersonId();
            s = sut_->TwoHop(person).status();
          } else if (roll <
                     options_.two_hop_fraction + options_.one_hop_fraction) {
            kind = "one_hop";
            person = local.NextPersonId();
            s = sut_->OneHop(person).status();
          } else if (roll < options_.two_hop_fraction +
                                options_.one_hop_fraction +
                                options_.recent_posts_fraction) {
            kind = "recent_posts";
            person = local.NextPersonId();
            s = sut_->RecentPosts(person, options_.recent_posts_limit)
                    .status();
          } else {
            kind = "point_lookup";
            person = local.NextPersonId();
            s = sut_->PointLookup(person).status();
          }
        }
        uint64_t us = op_clock.ElapsedMicros();
        if (slowlog_enabled) {
          if (us >= options_.slowlog_threshold_micros) {
            slowlog.Record(kind, sut_->StatementText(kind),
                           StringPrintf("person_id=%lld",
                                        (long long)person),
                           us, std::move(profile));
            profile = obs::QueryProfile();
          } else {
            profile.Clear();
          }
        }
        metrics.read_latency_micros.Add(us);
        if (s.ok()) {
          ++reads;
          obs_reads->Increment();
          std::lock_guard<std::mutex> lock(timeline_mu);
          ++metrics.read_timeline[bucket_of(run_clock.ElapsedMicros())];
        } else {
          ++read_errors;
          obs_read_errors->Increment();
        }
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(options_.run_millis));
  stop = true;
  for (auto& t : readers) t.join();
  writer.join();

  metrics.elapsed_seconds = run_clock.ElapsedSeconds();
  metrics.timeline_bucket_millis = options_.timeline_bucket_millis;
  metrics.slow_queries = slowlog.TakeEntries();
  metrics.reads_completed = reads;
  metrics.read_errors = read_errors;
  metrics.writes_completed = writes;
  metrics.write_errors = write_errors;
  metrics.dependency_violations = dep_violations;
  metrics.late_writes = late;
  metrics.write_seconds =
      double(write_micros_active.load()) / 1e6;
  metrics.reads_per_second =
      metrics.elapsed_seconds > 0
          ? double(metrics.reads_completed) / metrics.elapsed_seconds
          : 0;
  // Writes are bounded by the stream length; rate over active drain time.
  metrics.writes_per_second =
      metrics.write_seconds > 0
          ? double(metrics.writes_completed) / metrics.write_seconds
          : 0;
  return metrics;
}

}  // namespace graphbench
