#ifndef GRAPHBENCH_DRIVER_DRIVER_H_
#define GRAPHBENCH_DRIVER_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "mq/broker.h"
#include "obs/slowlog.h"
#include "snb/params.h"
#include "snb/schema.h"
#include "sut/sut.h"
#include "util/histogram.h"

namespace graphbench {

/// Configuration of the real-time interactive workload run (§4.3): N
/// concurrent readers execute the modified query mix while one writer
/// consumes the Kafka-analog update stream and applies it to the SUT.
struct DriverOptions {
  size_t num_readers = 8;
  /// Wall-clock measurement window in milliseconds.
  int64_t run_millis = 2000;
  uint64_t seed = 1234;

  /// The modified §4.3 mix: the 2-hop neighbourhood complex query plus
  /// short reads (profile lookup, friends, recent posts). Fractions sum
  /// to <= 1; the remainder falls to point lookups.
  double two_hop_fraction = 0.10;
  double one_hop_fraction = 0.25;
  double recent_posts_fraction = 0.20;

  int64_t recent_posts_limit = 10;

  /// Per-bucket width of the throughput timeline (Figure 3's x-axis
  /// granularity; exposes checkpoint-induced write dips).
  int64_t timeline_bucket_millis = 100;

  /// Schedule-based execution (§2.2): when > 0, the writer paces updates
  /// so that `replay_updates_per_second` are *due* per wall-clock second
  /// (an op never executes before its scheduled slot), testing whether the
  /// SUT sustains a pre-set transaction rate. 0 = drain as fast as
  /// possible (the Figure 3 max-throughput mode).
  double replay_updates_per_second = 0;

  /// Slow-query log: when > 0, every read is profiled and those at or
  /// above this latency (micros) are captured — query kind, parameter
  /// digest, latency, per-operator profile — into
  /// DriverMetrics::slow_queries, keeping the `slowlog_capacity` worst.
  /// 0 disables capture (and its profiling overhead) entirely.
  uint64_t slowlog_threshold_micros = 0;
  size_t slowlog_capacity = 16;
};

/// Results of one driver run.
struct DriverMetrics {
  uint64_t reads_completed = 0;
  uint64_t read_errors = 0;    // e.g. Gremlin Server Busy rejections
  uint64_t writes_completed = 0;
  uint64_t write_errors = 0;
  uint64_t dependency_violations = 0;  // ops seen before their deps
  /// Paced mode: ops that executed more than one bucket after their due
  /// time (the SUT fell behind the pre-set rate).
  uint64_t late_writes = 0;
  double elapsed_seconds = 0;
  double write_seconds = 0;  // time the writer was actively draining

  double reads_per_second = 0;
  double writes_per_second = 0;

  Histogram read_latency_micros;
  Histogram write_latency_micros;
  /// Paced mode only: write latency measured from each op's *scheduled*
  /// slot rather than its actual start (LDBC-style schedule-aware
  /// latency). Includes the time an op queued behind schedule, so a SUT
  /// that falls behind shows honest overload latency instead of the
  /// coordinated-omission-friendly service latency above. Empty when
  /// replay_updates_per_second == 0.
  Histogram write_schedule_latency_micros;

  /// Bucket width (millis) backing the timelines below.
  int64_t timeline_bucket_millis = 0;
  /// Writes completed per timeline bucket (Figure 3 dips).
  std::vector<uint64_t> write_timeline;
  /// Reads completed per timeline bucket.
  std::vector<uint64_t> read_timeline;

  /// The run's worst reads at or above DriverOptions::
  /// slowlog_threshold_micros, worst first (empty when disabled).
  std::vector<obs::SlowQueryEntry> slow_queries;
};

/// The benchmark driver of Figure 1, minus the data generator: produces
/// the update stream into a broker topic and runs readers + the single
/// writer against a loaded SUT.
class InteractiveDriver {
 public:
  InteractiveDriver(Sut* sut, mq::Broker* broker, DriverOptions options);

  /// Publishes the dataset's update stream to `topic` (creating it), in
  /// scheduled order — the LDBC-driver-side of the Kafka integration.
  static Status ProduceUpdates(mq::Broker* broker, std::string_view topic,
                               const snb::Dataset& data);

  /// Runs the interactive workload: `options.num_readers` reader threads
  /// over the query mix plus one writer consuming `topic`. Returns the
  /// collected metrics.
  Result<DriverMetrics> Run(std::string_view topic, snb::ParamPools* params);

 private:
  Sut* sut_;
  mq::Broker* broker_;
  DriverOptions options_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_DRIVER_DRIVER_H_
