#include "engines/matrix/delta_csr.h"

#include <algorithm>

#include "obs/metrics.h"

namespace graphbench {
namespace {

obs::Counter* DeltaMergesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("matrix.delta_merges");
  return c;
}

obs::Counter* CsrRebuildsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("matrix.csr_rebuilds");
  return c;
}

// Inserts `col` into a sorted vector; false if already present.
bool SortedInsert(std::vector<int32_t>* v, int32_t col) {
  auto it = std::lower_bound(v->begin(), v->end(), col);
  if (it != v->end() && *it == col) return false;
  v->insert(it, col);
  return true;
}

// Removes `col` from a sorted vector; false if absent.
bool SortedErase(std::vector<int32_t>* v, int32_t col) {
  auto it = std::lower_bound(v->begin(), v->end(), col);
  if (it == v->end() || *it != col) return false;
  v->erase(it);
  return true;
}

}  // namespace

DeltaCsrMatrix::DeltaCsrMatrix(DeltaCsrOptions options) : options_(options) {}

void DeltaCsrMatrix::AddRow() {
  row_ptr_.push_back(row_ptr_.back());
  add_.emplace_back();
  del_.emplace_back();
}

void DeltaCsrMatrix::Build(std::vector<std::vector<int32_t>> adjacency) {
  const size_t n = adjacency.size();
  row_ptr_.assign(n + 1, 0);
  cols_.clear();
  add_.assign(n, {});
  del_.assign(n, {});
  pending_ = 0;
  for (size_t r = 0; r < n; ++r) {
    std::vector<int32_t>& row = adjacency[r];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    cols_.insert(cols_.end(), row.begin(), row.end());
    row_ptr_[r + 1] = cols_.size();
  }
  nnz_ = cols_.size();
  ++csr_rebuilds_;
  CsrRebuildsCounter()->Increment();
}

bool DeltaCsrMatrix::CsrContains(int32_t row, int32_t col) const {
  const size_t r = static_cast<size_t>(row);
  return std::binary_search(cols_.begin() + row_ptr_[r],
                            cols_.begin() + row_ptr_[r + 1], col);
}

bool DeltaCsrMatrix::Contains(int32_t row, int32_t col) const {
  if (row < 0 || row >= rows() || col < 0 || col >= rows()) return false;
  const size_t r = static_cast<size_t>(row);
  if (std::binary_search(add_[r].begin(), add_[r].end(), col)) return true;
  if (std::binary_search(del_[r].begin(), del_[r].end(), col)) return false;
  return CsrContains(row, col);
}

size_t DeltaCsrMatrix::RowDegree(int32_t row) const {
  const size_t r = static_cast<size_t>(row);
  return (row_ptr_[r + 1] - row_ptr_[r]) - del_[r].size() + add_[r].size();
}

bool DeltaCsrMatrix::AddHalf(int32_t row, int32_t col) {
  const size_t r = static_cast<size_t>(row);
  if (CsrContains(row, col)) {
    // Present in the body: only a pending delete can hide it.
    if (!SortedErase(&del_[r], col)) return false;
    --pending_;
    ++nnz_;
    return true;
  }
  if (!SortedInsert(&add_[r], col)) return false;
  ++pending_;
  ++nnz_;
  return true;
}

bool DeltaCsrMatrix::RemoveHalf(int32_t row, int32_t col) {
  const size_t r = static_cast<size_t>(row);
  if (SortedErase(&add_[r], col)) {
    --pending_;
    --nnz_;
    return true;
  }
  if (!CsrContains(row, col)) return false;
  if (!SortedInsert(&del_[r], col)) return false;
  ++pending_;
  --nnz_;
  return true;
}

bool DeltaCsrMatrix::AddEdge(int32_t a, int32_t b) {
  if (a < 0 || a >= rows() || b < 0 || b >= rows() || a == b) return false;
  if (!AddHalf(a, b)) return false;
  AddHalf(b, a);  // symmetric slot; invariants keep it in lockstep
  MaybeMerge();
  return true;
}

bool DeltaCsrMatrix::RemoveEdge(int32_t a, int32_t b) {
  if (a < 0 || a >= rows() || b < 0 || b >= rows() || a == b) return false;
  if (!RemoveHalf(a, b)) return false;
  RemoveHalf(b, a);
  MaybeMerge();
  return true;
}

void DeltaCsrMatrix::MaybeMerge() {
  if (pending_ >= options_.merge_threshold) MergeDelta();
}

void DeltaCsrMatrix::MergeDelta() {
  if (pending_ == 0) return;
  const size_t n = add_.size();
  std::vector<size_t> new_ptr(n + 1, 0);
  std::vector<int32_t> new_cols;
  new_cols.reserve(nnz_);
  for (size_t r = 0; r < n; ++r) {
    const int32_t* it = cols_.data() + row_ptr_[r];
    const int32_t* end = cols_.data() + row_ptr_[r + 1];
    const std::vector<int32_t>& adds = add_[r];
    const std::vector<int32_t>& dels = del_[r];
    size_t ai = 0;
    size_t di = 0;
    // Three-way sorted merge: body minus deletes, interleaved with adds
    // (disjoint from the body by invariant), keeping columns ascending.
    while (it != end || ai < adds.size()) {
      if (it == end || (ai < adds.size() && adds[ai] < *it)) {
        new_cols.push_back(adds[ai++]);
        continue;
      }
      while (di < dels.size() && dels[di] < *it) ++di;
      if (di < dels.size() && dels[di] == *it) {
        ++it;
        continue;
      }
      new_cols.push_back(*it++);
    }
    new_ptr[r + 1] = new_cols.size();
  }
  row_ptr_ = std::move(new_ptr);
  cols_ = std::move(new_cols);
  for (size_t r = 0; r < n; ++r) {
    add_[r].clear();
    del_[r].clear();
  }
  pending_ = 0;
  ++delta_merges_;
  DeltaMergesCounter()->Increment();
}

DeltaCsrStats DeltaCsrMatrix::stats() const {
  DeltaCsrStats s;
  s.delta_merges = delta_merges_;
  s.csr_rebuilds = csr_rebuilds_;
  s.pending_delta = pending_;
  s.nnz = nnz_;
  return s;
}

uint64_t DeltaCsrMatrix::ApproximateSizeBytes() const {
  uint64_t bytes = row_ptr_.capacity() * sizeof(size_t) +
                   cols_.capacity() * sizeof(int32_t);
  for (size_t r = 0; r < add_.size(); ++r) {
    bytes += sizeof(std::vector<int32_t>) * 2;
    bytes += add_[r].capacity() * sizeof(int32_t);
    bytes += del_[r].capacity() * sizeof(int32_t);
  }
  return bytes;
}

}  // namespace graphbench
