#include "engines/matrix/delta_csr.h"

#include <algorithm>
#include <memory>

#include "obs/metrics.h"

namespace graphbench {
namespace {

obs::Counter* DeltaMergesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("matrix.delta_merges");
  return c;
}

obs::Counter* CsrRebuildsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("matrix.csr_rebuilds");
  return c;
}

// Inserts `col` into a sorted vector; false if already present.
bool SortedInsert(std::vector<int32_t>* v, int32_t col) {
  auto it = std::lower_bound(v->begin(), v->end(), col);
  if (it != v->end() && *it == col) return false;
  v->insert(it, col);
  return true;
}

// Removes `col` from a sorted vector; false if absent.
bool SortedErase(std::vector<int32_t>* v, int32_t col) {
  auto it = std::lower_bound(v->begin(), v->end(), col);
  if (it == v->end() || *it != col) return false;
  v->erase(it);
  return true;
}

bool SortedContains(const std::vector<int32_t>& v, int32_t col) {
  return std::binary_search(v.begin(), v.end(), col);
}

}  // namespace

DeltaCsrMatrix::DeltaCsrMatrix(DeltaCsrOptions options) : options_(options) {}

DeltaCsrMatrix::Totals DeltaCsrMatrix::WriterTotals() const {
  const Totals* t = totals_.WriterLatest();
  return t == nullptr ? Totals{} : *t;
}

void DeltaCsrMatrix::AddRow() {
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  concurrency::WriteBatch batch;
  body_.Publish(mgr, [](Body& b) { b.row_ptr.push_back(b.row_ptr.back()); });
  overlay_.Append(mgr, OverlayRow{});
}

void DeltaCsrMatrix::Build(std::vector<std::vector<int32_t>> adjacency) {
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  concurrency::WriteBatch batch;
  const size_t n = adjacency.size();
  Body body;
  body.row_ptr.assign(n + 1, 0);
  for (size_t r = 0; r < n; ++r) {
    std::vector<int32_t>& row = adjacency[r];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    body.cols.insert(body.cols.end(), row.begin(), row.end());
    body.row_ptr[r + 1] = body.cols.size();
  }
  Totals t;
  t.pending = 0;
  t.nnz = body.cols.size();
  body_.Store(mgr, std::move(body));
  // Grow the overlay to n slots and clear any stale rows.
  while (overlay_.size() < n) overlay_.Append(mgr, OverlayRow{});
  for (size_t r = 0; r < n; ++r) {
    const OverlayRow* o = overlay_.WriterLatest(r);
    if (o != nullptr && (!o->add.empty() || !o->del.empty())) {
      overlay_.Publish(mgr, r, [](OverlayRow& row) {
        row.add.clear();
        row.del.clear();
      });
    }
  }
  totals_.Store(mgr, t);
  csr_rebuilds_.fetch_add(1, std::memory_order_relaxed);
  CsrRebuildsCounter()->Increment();
}

bool DeltaCsrMatrix::CsrContains(const Body& b, int32_t row, int32_t col) {
  const size_t r = static_cast<size_t>(row);
  return std::binary_search(b.cols.begin() + b.row_ptr[r],
                            b.cols.begin() + b.row_ptr[r + 1], col);
}

bool DeltaCsrMatrix::Contains(int32_t row, int32_t col, uint64_t pin) const {
  const Body* b = body_.Read(pin);
  if (b == nullptr) return false;
  const int32_t n = static_cast<int32_t>(b->row_ptr.size() - 1);
  if (row < 0 || row >= n || col < 0 || col >= n) return false;
  const OverlayRow* o = overlay_.Read(static_cast<size_t>(row), pin);
  if (o != nullptr) {
    if (SortedContains(o->add, col)) return true;
    if (SortedContains(o->del, col)) return false;
  }
  return CsrContains(*b, row, col);
}

size_t DeltaCsrMatrix::RowDegree(int32_t row, uint64_t pin) const {
  const Body* b = body_.Read(pin);
  if (b == nullptr || row < 0 ||
      static_cast<size_t>(row) + 1 >= b->row_ptr.size()) {
    return 0;
  }
  const size_t r = static_cast<size_t>(row);
  size_t deg = b->row_ptr[r + 1] - b->row_ptr[r];
  const OverlayRow* o = overlay_.Read(r, pin);
  if (o != nullptr) deg = deg - o->del.size() + o->add.size();
  return deg;
}

bool DeltaCsrMatrix::AddHalf(concurrency::EpochManager& mgr, int32_t row,
                             int32_t col) {
  const size_t r = static_cast<size_t>(row);
  const Body* b = body_.WriterLatest();
  const OverlayRow* o = overlay_.WriterLatest(r);
  if (b != nullptr && CsrContains(*b, row, col)) {
    // Present in the body: only a pending delete can hide it.
    if (o == nullptr || !SortedContains(o->del, col)) return false;
    overlay_.Publish(mgr, r,
                     [col](OverlayRow& row) { SortedErase(&row.del, col); });
    totals_.Publish(mgr, [](Totals& t) {
      --t.pending;
      ++t.nnz;
    });
    return true;
  }
  if (o != nullptr && SortedContains(o->add, col)) return false;
  overlay_.Publish(mgr, r,
                   [col](OverlayRow& row) { SortedInsert(&row.add, col); });
  totals_.Publish(mgr, [](Totals& t) {
    ++t.pending;
    ++t.nnz;
  });
  return true;
}

bool DeltaCsrMatrix::RemoveHalf(concurrency::EpochManager& mgr, int32_t row,
                                int32_t col) {
  const size_t r = static_cast<size_t>(row);
  const Body* b = body_.WriterLatest();
  const OverlayRow* o = overlay_.WriterLatest(r);
  if (o != nullptr && SortedContains(o->add, col)) {
    overlay_.Publish(mgr, r,
                     [col](OverlayRow& row) { SortedErase(&row.add, col); });
    totals_.Publish(mgr, [](Totals& t) {
      --t.pending;
      --t.nnz;
    });
    return true;
  }
  if (b == nullptr || !CsrContains(*b, row, col)) return false;
  if (o != nullptr && SortedContains(o->del, col)) return false;
  overlay_.Publish(mgr, r,
                   [col](OverlayRow& row) { SortedInsert(&row.del, col); });
  totals_.Publish(mgr, [](Totals& t) {
    ++t.pending;
    --t.nnz;
  });
  return true;
}

bool DeltaCsrMatrix::AddEdge(int32_t a, int32_t b) {
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  concurrency::WriteBatch batch;
  const int32_t n = rows();
  if (a < 0 || a >= n || b < 0 || b >= n || a == b) return false;
  if (!AddHalf(mgr, a, b)) return false;
  AddHalf(mgr, b, a);  // symmetric slot; invariants keep it in lockstep
  MaybeMerge();
  return true;
}

bool DeltaCsrMatrix::RemoveEdge(int32_t a, int32_t b) {
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  concurrency::WriteBatch batch;
  const int32_t n = rows();
  if (a < 0 || a >= n || b < 0 || b >= n || a == b) return false;
  if (!RemoveHalf(mgr, a, b)) return false;
  RemoveHalf(mgr, b, a);
  MaybeMerge();
  return true;
}

void DeltaCsrMatrix::MaybeMerge() {
  if (WriterTotals().pending >= options_.merge_threshold) MergeDelta();
}

void DeltaCsrMatrix::MergeDelta() {
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  concurrency::WriteBatch batch;
  MergeDeltaLocked(mgr);
}

void DeltaCsrMatrix::MergeDeltaLocked(concurrency::EpochManager& mgr) {
  const Totals t = WriterTotals();
  if (t.pending == 0) return;
  const Body* old = body_.WriterLatest();
  static const Body kEmptyBody{};
  if (old == nullptr) old = &kEmptyBody;
  const size_t n = old->row_ptr.size() - 1;
  Body body;
  body.row_ptr.assign(n + 1, 0);
  body.cols.reserve(t.nnz);
  static const OverlayRow kEmptyRow{};
  for (size_t r = 0; r < n; ++r) {
    const int32_t* it = old->cols.data() + old->row_ptr[r];
    const int32_t* end = old->cols.data() + old->row_ptr[r + 1];
    const OverlayRow* o = overlay_.WriterLatest(r);
    if (o == nullptr) o = &kEmptyRow;
    const std::vector<int32_t>& adds = o->add;
    const std::vector<int32_t>& dels = o->del;
    size_t ai = 0;
    size_t di = 0;
    // Three-way sorted merge: body minus deletes, interleaved with adds
    // (disjoint from the body by invariant), keeping columns ascending.
    while (it != end || ai < adds.size()) {
      if (it == end || (ai < adds.size() && adds[ai] < *it)) {
        body.cols.push_back(adds[ai++]);
        continue;
      }
      while (di < dels.size() && dels[di] < *it) ++di;
      if (di < dels.size() && dels[di] == *it) {
        ++it;
        continue;
      }
      body.cols.push_back(*it++);
    }
    body.row_ptr[r + 1] = body.cols.size();
  }
  body_.Store(mgr, std::move(body));
  // Clear the folded-in overlay rows in the same batch: a reader pinned
  // before the merge keeps the old body with its matching overlay, one
  // pinned after sees the folded body with empty rows — the swap happens
  // under the epoch, never under a reader lock.
  for (size_t r = 0; r < n; ++r) {
    const OverlayRow* o = overlay_.WriterLatest(r);
    if (o == nullptr || (o->add.empty() && o->del.empty())) continue;
    overlay_.Publish(mgr, r, [](OverlayRow& row) {
      row.add.clear();
      row.del.clear();
    });
  }
  totals_.Publish(mgr, [](Totals& tt) { tt.pending = 0; });
  delta_merges_.fetch_add(1, std::memory_order_relaxed);
  DeltaMergesCounter()->Increment();
}

DeltaCsrStats DeltaCsrMatrix::stats(uint64_t pin) const {
  DeltaCsrStats s;
  s.delta_merges = delta_merges_.load(std::memory_order_relaxed);
  s.csr_rebuilds = csr_rebuilds_.load(std::memory_order_relaxed);
  const Totals* t = totals_.Read(pin);
  if (t != nullptr) {
    s.pending_delta = t->pending;
    s.nnz = t->nnz;
  }
  return s;
}

uint64_t DeltaCsrMatrix::ApproximateSizeBytes(uint64_t pin) const {
  const Body* b = body_.Read(pin);
  uint64_t bytes = 0;
  if (b != nullptr) {
    bytes += b->row_ptr.size() * sizeof(size_t) +
             b->cols.size() * sizeof(int32_t);
  }
  const size_t n = b == nullptr ? 0 : b->row_ptr.size() - 1;
  for (size_t r = 0; r < n; ++r) {
    bytes += sizeof(std::vector<int32_t>) * 2;
    const OverlayRow* o = overlay_.Read(r, pin);
    if (o == nullptr) continue;
    bytes += o->add.size() * sizeof(int32_t);
    bytes += o->del.size() * sizeof(int32_t);
  }
  return bytes;
}

}  // namespace graphbench
