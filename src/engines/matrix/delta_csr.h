#ifndef GRAPHBENCH_ENGINES_MATRIX_DELTA_CSR_H_
#define GRAPHBENCH_ENGINES_MATRIX_DELTA_CSR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "concurrency/epoch.h"
#include "concurrency/versioned.h"

namespace graphbench {

/// Tuning knobs for the delta-CSR adjacency matrix (DESIGN.md §10).
struct DeltaCsrOptions {
  /// Pending overlay entries (inserts + deletes, summed over all rows)
  /// tolerated before the overlay is folded into the CSR body. 1 merges
  /// after every write (pure CSR); SIZE_MAX never merges (pure delta) —
  /// the two endpoints of the bench_ablation_matrix sweep.
  size_t merge_threshold = 4096;
};

/// Traffic counters for one matrix instance, mirrored into the default
/// obs registry as matrix.delta_merges / matrix.csr_rebuilds.
struct DeltaCsrStats {
  uint64_t delta_merges = 0;  // overlay folded into the CSR body
  uint64_t csr_rebuilds = 0;  // full builds from a fresh adjacency
  size_t pending_delta = 0;   // overlay entries currently outstanding
  size_t nnz = 0;             // stored edges (directed slots)
};

/// A square boolean sparse matrix in CSR form with a sorted delta-list
/// overlay — the GraphBLAS-style storage for the KNOWS relation
/// (DESIGN.md §10). The CSR body (`row_ptr` offsets into a flat sorted
/// column array) is immutable between merges, which is what makes row
/// gathers and SpMV cache-friendly; streamed updates land in per-row
/// sorted insert/delete lists consulted by every gather, and are folded
/// into the body once `merge_threshold` entries accumulate.
///
/// Semantics are boolean and symmetric: an edge is present or absent
/// (duplicate inserts are no-ops), and AddEdge/RemoveEdge maintain both
/// (a,b) and (b,a) slots. Invariants per row r: add[r] is disjoint from
/// the CSR row, del[r] is a subset of it, both stay sorted.
///
/// Concurrency: one writer at a time (MatrixEngine's mutex, or a single
/// test thread); readers are lock-free. The CSR body and every overlay
/// row are epoch-versioned, and a merge publishes the folded body and the
/// cleared overlay rows in one batch — a reader pinned mid-merge keeps
/// the pre-merge body *with* its matching overlay, so the overlay swap
/// happens under the epoch instead of a mutex. Read methods take a `pin`
/// (a guard epoch, defaulting to the writer's own all-seeing pin for
/// single-threaded use).
class DeltaCsrMatrix {
 public:
  explicit DeltaCsrMatrix(DeltaCsrOptions options = {});

  int32_t rows(
      uint64_t pin = concurrency::EpochManager::kWriterPin) const {
    const Body* b = body_.Read(pin);
    return b == nullptr ? 0 : static_cast<int32_t>(b->row_ptr.size() - 1);
  }

  /// Appends one empty row/column (a new person). The CSR body gains an
  /// empty row, the overlay an empty slot.
  void AddRow();

  /// Rebuilds the CSR body from an explicit adjacency (bulk load). Rows
  /// are sorted and deduplicated; the overlay is cleared.
  void Build(std::vector<std::vector<int32_t>> adjacency);

  /// Inserts the undirected edge {a,b}; false if already present (the
  /// boolean matrix collapses duplicates). May trigger a merge.
  bool AddEdge(int32_t a, int32_t b);

  /// Removes the undirected edge {a,b}; false if absent. May trigger a
  /// merge.
  bool RemoveEdge(int32_t a, int32_t b);

  /// True when the effective matrix (CSR − deletes + inserts) has (row,
  /// col) set.
  bool Contains(int32_t row, int32_t col,
                uint64_t pin = concurrency::EpochManager::kWriterPin) const;

  /// Effective out-degree of `row`.
  size_t RowDegree(int32_t row,
                   uint64_t pin =
                       concurrency::EpochManager::kWriterPin) const;

  /// Visits every set column of `row` (CSR slots minus deletes, then the
  /// insert overlay), each exactly once. The CSR portion streams in
  /// ascending column order; overlay inserts follow, also ascending.
  template <typename Fn>
  void ForEachInRow(int32_t row, Fn&& fn,
                    uint64_t pin =
                        concurrency::EpochManager::kWriterPin) const {
    const Body* b = body_.Read(pin);
    if (b == nullptr || row < 0 ||
        static_cast<size_t>(row) + 1 >= b->row_ptr.size()) {
      return;
    }
    const size_t r = static_cast<size_t>(row);
    const int32_t* it = b->cols.data() + b->row_ptr[r];
    const int32_t* end = b->cols.data() + b->row_ptr[r + 1];
    static const OverlayRow kEmpty{};
    const OverlayRow* o = overlay_.Read(r, pin);
    if (o == nullptr) o = &kEmpty;
    const std::vector<int32_t>& dels = o->del;
    size_t di = 0;
    for (; it != end; ++it) {
      while (di < dels.size() && dels[di] < *it) ++di;
      if (di < dels.size() && dels[di] == *it) continue;
      fn(*it);
    }
    for (int32_t c : o->add) fn(c);
  }

  /// Folds the overlay into the CSR body (also called automatically past
  /// the merge threshold). Public so tests and the ablation can force the
  /// pure-CSR configuration.
  void MergeDelta();

  DeltaCsrStats stats(
      uint64_t pin = concurrency::EpochManager::kWriterPin) const;
  uint64_t ApproximateSizeBytes(
      uint64_t pin = concurrency::EpochManager::kWriterPin) const;

 private:
  /// Immutable-between-merges CSR body:
  /// cols[row_ptr[r] .. row_ptr[r+1]) sorted ascending.
  struct Body {
    std::vector<size_t> row_ptr{0};
    std::vector<int32_t> cols;
  };
  /// Sorted per-row overlay.
  struct OverlayRow {
    std::vector<int32_t> add;
    std::vector<int32_t> del;
  };
  struct Totals {
    size_t pending = 0;  // total overlay entries
    size_t nnz = 0;      // effective directed edge slots
  };

  // One direction of AddEdge/RemoveEdge; returns whether the slot
  // changed. Caller is the (sole) writer, inside a WriteBatch.
  bool AddHalf(concurrency::EpochManager& mgr, int32_t row, int32_t col);
  bool RemoveHalf(concurrency::EpochManager& mgr, int32_t row, int32_t col);
  // Binary search of a CSR body row.
  static bool CsrContains(const Body& b, int32_t row, int32_t col);
  void MaybeMerge();
  void MergeDeltaLocked(concurrency::EpochManager& mgr);
  Totals WriterTotals() const;

  const DeltaCsrOptions options_;
  concurrency::VersionedCell<Body> body_;
  concurrency::VersionedTable<OverlayRow> overlay_;
  concurrency::VersionedCell<Totals> totals_;
  std::atomic<uint64_t> delta_merges_{0};
  std::atomic<uint64_t> csr_rebuilds_{0};
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_MATRIX_DELTA_CSR_H_
