#include "engines/matrix/matrix_engine.h"

#include <algorithm>
#include <deque>
#include <mutex>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace graphbench {
namespace {

obs::Counter* SpmvRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("matrix.spmv_rows");
  return c;
}

/// Fixed-size bitmap over dense ordinals: the SpMV frontier/visited
/// vectors.
class Bitmap {
 public:
  explicit Bitmap(size_t bits) : words_((bits + 63) / 64, 0) {}

  bool Test(int32_t i) const {
    return (words_[size_t(i) >> 6] >> (size_t(i) & 63)) & 1;
  }
  void Set(int32_t i) { words_[size_t(i) >> 6] |= uint64_t{1} << (size_t(i) & 63); }
  void Clear() { std::fill(words_.begin(), words_.end(), 0); }
  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Visits every set bit in ascending order (the row-order sweep that
  /// makes the SpMV BFS cache-friendly).
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        w &= w - 1;
        fn(int32_t(wi * 64 + size_t(bit)));
      }
    }
  }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace

MatrixEngine::MatrixEngine(MatrixEngineOptions options)
    : options_(options), knows_(options.csr) {}

int32_t MatrixEngine::PersonOrd(int64_t person_id, uint64_t pin) const {
  const int32_t* ord = person_ord_.Find(person_id, pin);
  return ord == nullptr ? -1 : *ord;
}

int32_t MatrixEngine::PostOrd(int64_t post_id, uint64_t pin) const {
  const int32_t* ord = post_ord_.Find(post_id, pin);
  return ord == nullptr ? -1 : *ord;
}

int32_t MatrixEngine::InternPerson(concurrency::EpochManager& mgr,
                                   const snb::Person& p) {
  const int32_t* existing =
      person_ord_.Find(p.id, concurrency::EpochManager::kWriterPin);
  if (existing != nullptr) return *existing;
  int32_t ord = int32_t(person_id_.size());
  // Columns before the ordinal: a reader that resolves the ordinal has
  // every cell of its row already published.
  person_id_.PushBack(mgr, p.id);
  first_name_.PushBack(mgr, p.first_name);
  last_name_.PushBack(mgr, p.last_name);
  gender_.PushBack(mgr, p.gender);
  birthday_.PushBack(mgr, p.birthday);
  person_creation_.PushBack(mgr, p.creation_date);
  browser_.PushBack(mgr, p.browser);
  location_ip_.PushBack(mgr, p.location_ip);
  posts_by_creator_.Append(mgr, {});
  knows_.AddRow();
  person_ord_.Insert(mgr, p.id, ord);
  counts_.Publish(mgr, [&p](Counts& c) {
    ++c.persons;
    c.side_string_bytes += p.first_name.size() + p.last_name.size() +
                           p.gender.size() + p.browser.size() +
                           p.location_ip.size();
  });
  return ord;
}

void MatrixEngine::AppendPost(concurrency::EpochManager& mgr,
                              const snb::Post& p) {
  int32_t ord = int32_t(post_id_.size());
  post_id_.PushBack(mgr, p.id);
  post_content_.PushBack(mgr, p.content);
  post_creation_.PushBack(mgr, p.creation_date);
  replies_of_post_.Append(mgr, {});
  int32_t creator = PersonOrd(p.creator, concurrency::EpochManager::kWriterPin);
  post_creator_.PushBack(mgr, creator);
  if (creator >= 0) {
    posts_by_creator_.Publish(mgr, size_t(creator), [ord](auto& posts) {
      posts.push_back(ord);
    });
  }
  post_ord_.Insert(mgr, p.id, ord);
  counts_.Publish(mgr, [&p](Counts& c) {
    ++c.posts;
    c.side_string_bytes += p.content.size() + p.browser.size();
  });
}

void MatrixEngine::AppendComment(concurrency::EpochManager& mgr,
                                 const snb::Comment& c) {
  int32_t ord = int32_t(comment_id_.size());
  comment_id_.PushBack(mgr, c.id);
  comment_content_.PushBack(mgr, c.content);
  comment_creation_.PushBack(mgr, c.creation_date);
  comment_creator_.PushBack(mgr, c.creator);
  if (c.reply_of_post >= 0) {
    int32_t post = PostOrd(c.reply_of_post,
                           concurrency::EpochManager::kWriterPin);
    if (post >= 0) {
      replies_of_post_.Publish(mgr, size_t(post), [ord](auto& replies) {
        replies.push_back(ord);
      });
    }
  }
  counts_.Publish(mgr, [&c](Counts& cc) {
    ++cc.comments;
    cc.side_string_bytes += c.content.size();
  });
}

Status MatrixEngine::Load(const snb::Dataset& data) {
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  concurrency::WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  for (const snb::Person& p : data.persons) InternPerson(mgr, p);
  // Bulk path: materialize the adjacency once and CSR-pack it in one
  // Build, instead of n AddEdge overlay inserts followed by merges.
  std::vector<std::vector<int32_t>> adjacency(person_id_.size());
  for (const snb::Knows& k : data.knows) {
    int32_t a = PersonOrd(k.person1, concurrency::EpochManager::kWriterPin);
    int32_t b = PersonOrd(k.person2, concurrency::EpochManager::kWriterPin);
    if (a < 0 || b < 0) {
      return Status::Corruption("knows references unknown person");
    }
    adjacency[size_t(a)].push_back(b);
    adjacency[size_t(b)].push_back(a);
  }
  knows_.Build(std::move(adjacency));
  for (const snb::Post& p : data.posts) AppendPost(mgr, p);
  for (const snb::Comment& c : data.comments) AppendComment(mgr, c);
  forums_ = data.forums;
  counts_.Publish(mgr, [&data](Counts& c) {
    c.forums = data.forums.size();
    c.members = data.members.size();
    c.likes = data.likes.size();
  });
  return Status::OK();
}

QueryResult MatrixEngine::PointLookup(int64_t person_id) const {
  obs::OpTimer op("column_lookup");
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  QueryResult r;
  r.columns = {"p.firstName", "p.lastName",    "p.gender",
               "p.birthday",  "p.browserUsed", "p.locationIP"};
  int32_t ord = PersonOrd(person_id, pin);
  if (ord < 0) return r;
  size_t i = size_t(ord);
  r.rows.push_back({Value(first_name_[i]), Value(last_name_[i]),
                    Value(gender_[i]), Value(birthday_[i]),
                    Value(browser_[i]), Value(location_ip_[i])});
  op.AddRows(1);
  return r;
}

QueryResult MatrixEngine::OneHop(int64_t person_id) const {
  obs::OpTimer op("spmv_gather");
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  QueryResult r;
  r.columns = {"f.id", "f.firstName", "f.lastName"};
  int32_t ord = PersonOrd(person_id, pin);
  if (ord < 0) return r;
  knows_.ForEachInRow(ord, [&](int32_t f) {
    size_t i = size_t(f);
    r.rows.push_back(
        {Value(person_id_[i]), Value(first_name_[i]), Value(last_name_[i])});
  }, pin);
  spmv_rows_.fetch_add(1, std::memory_order_relaxed);
  SpmvRowsCounter()->Increment();
  op.AddRows(r.rows.size());
  return r;
}

QueryResult MatrixEngine::TwoHop(int64_t person_id) const {
  obs::OpTimer op("masked_spgemm");
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  QueryResult r;
  r.columns = {"ff.id"};
  int32_t ord = PersonOrd(person_id, pin);
  if (ord < 0) return r;
  // Masked SpGEMM row: (A · A_row)(ord) with the self bit masked out. The
  // `seen` bitmap is both the DISTINCT and the mask — direct friends stay
  // includable (they are reachable in two hops through a mutual friend),
  // matching the reference semantics where only self is excluded.
  Bitmap seen(size_t(knows_.rows(pin)));
  seen.Set(ord);
  uint64_t gathered = 1;
  knows_.ForEachInRow(ord, [&](int32_t f) {
    ++gathered;
    knows_.ForEachInRow(f, [&](int32_t ff) {
      if (seen.Test(ff)) return;
      seen.Set(ff);
      r.rows.push_back({Value(person_id_[size_t(ff)])});
    }, pin);
  }, pin);
  // A direct friend that is *not* reachable in two hops was masked by
  // `seen` without ever being emitted — correct, since the mask seeded
  // only self; friends enter `seen` exclusively via second-level gathers.
  spmv_rows_.fetch_add(gathered, std::memory_order_relaxed);
  SpmvRowsCounter()->Increment(gathered);
  op.AddRows(r.rows.size());
  return r;
}

int MatrixEngine::ShortestPathSpmv(int32_t src, int32_t dst,
                                   uint64_t pin) const {
  const size_t n = size_t(knows_.rows(pin));
  Bitmap visited(n);
  Bitmap frontier(n);
  Bitmap next(n);
  visited.Set(src);
  frontier.Set(src);
  uint64_t rows_gathered = 0;
  int depth = 0;
  bool found = false;
  while (!found && !frontier.Empty()) {
    ++depth;
    next.Clear();
    // One SpMV step: y = A^T x over the frontier bitmap, masked by
    // !visited. Rows stream in ascending order — the cache-friendly sweep
    // the ablation measures against the pointer-chasing walk.
    frontier.ForEachSet([&](int32_t row) {
      ++rows_gathered;
      knows_.ForEachInRow(row, [&](int32_t col) {
        if (visited.Test(col)) return;
        visited.Set(col);
        next.Set(col);
        if (col == dst) found = true;
      }, pin);
    });
    std::swap(frontier, next);
  }
  spmv_rows_.fetch_add(rows_gathered, std::memory_order_relaxed);
  SpmvRowsCounter()->Increment(rows_gathered);
  return found ? depth : -1;
}

int MatrixEngine::ShortestPathPointerChasing(int32_t src, int32_t dst,
                                             uint64_t pin) const {
  const size_t n = size_t(knows_.rows(pin));
  std::vector<int32_t> dist(n, -1);
  dist[size_t(src)] = 0;
  std::deque<int32_t> queue{src};
  while (!queue.empty()) {
    int32_t v = queue.front();
    queue.pop_front();
    if (v == dst) return dist[size_t(v)];
    int32_t next = dist[size_t(v)] + 1;
    bool hit = false;
    knows_.ForEachInRow(v, [&](int32_t nb) {
      if (dist[size_t(nb)] >= 0) return;
      dist[size_t(nb)] = next;
      if (nb == dst) hit = true;
      queue.push_back(nb);
    }, pin);
    if (hit) return next;
  }
  return -1;
}

int MatrixEngine::ShortestPathLen(int64_t from_person,
                                  int64_t to_person) const {
  obs::OpTimer op("spmv_bfs");
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  int32_t src = PersonOrd(from_person, pin);
  int32_t dst = PersonOrd(to_person, pin);
  if (src < 0 || dst < 0) return -1;
  if (src == dst) return 0;
  return options_.bfs == MatrixBfsKind::kSpmv
             ? ShortestPathSpmv(src, dst, pin)
             : ShortestPathPointerChasing(src, dst, pin);
}

QueryResult MatrixEngine::RecentPosts(int64_t person_id,
                                      int64_t limit) const {
  obs::OpTimer op("column_sort");
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  QueryResult r;
  r.columns = {"post.id", "post.content", "post.creationDate"};
  int32_t ord = PersonOrd(person_id, pin);
  if (ord < 0 || limit <= 0) return r;
  const std::vector<int32_t>* by_creator =
      posts_by_creator_.Read(size_t(ord), pin);
  if (by_creator == nullptr) return r;
  std::vector<int32_t> posts = *by_creator;
  std::stable_sort(posts.begin(), posts.end(), [this](int32_t a, int32_t b) {
    return post_creation_[size_t(a)] > post_creation_[size_t(b)];
  });
  if (posts.size() > size_t(limit)) posts.resize(size_t(limit));
  for (int32_t p : posts) {
    size_t i = size_t(p);
    r.rows.push_back({Value(post_id_[i]), Value(post_content_[i]),
                      Value(post_creation_[i])});
  }
  op.AddRows(r.rows.size());
  return r;
}

QueryResult MatrixEngine::FriendsWithName(int64_t person_id,
                                          const std::string& first_name) const {
  obs::OpTimer op("spmv_gather");
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  QueryResult r;
  r.columns = {"f.id", "f.lastName"};
  int32_t ord = PersonOrd(person_id, pin);
  if (ord < 0) return r;
  std::vector<int32_t> matches;
  knows_.ForEachInRow(ord, [&](int32_t f) {
    if (first_name_[size_t(f)] == first_name) matches.push_back(f);
  }, pin);
  spmv_rows_.fetch_add(1, std::memory_order_relaxed);
  SpmvRowsCounter()->Increment();
  // ORDER BY f.id: ordinals are insertion order, not id order.
  std::sort(matches.begin(), matches.end(), [this](int32_t a, int32_t b) {
    return person_id_[size_t(a)] < person_id_[size_t(b)];
  });
  for (int32_t f : matches) {
    r.rows.push_back({Value(person_id_[size_t(f)]),
                      Value(last_name_[size_t(f)])});
  }
  op.AddRows(r.rows.size());
  return r;
}

QueryResult MatrixEngine::RepliesOfPost(int64_t post_id) const {
  obs::OpTimer op("column_sort");
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  QueryResult r;
  r.columns = {"c.id", "c.content", "cr.id"};
  int32_t ord = PostOrd(post_id, pin);
  if (ord < 0) return r;
  const std::vector<int32_t>* reply_row =
      replies_of_post_.Read(size_t(ord), pin);
  if (reply_row == nullptr) return r;
  std::vector<int32_t> replies = *reply_row;
  std::stable_sort(replies.begin(), replies.end(),
                   [this](int32_t a, int32_t b) {
                     return comment_creation_[size_t(a)] >
                            comment_creation_[size_t(b)];
                   });
  for (int32_t c : replies) {
    size_t i = size_t(c);
    r.rows.push_back({Value(comment_id_[i]), Value(comment_content_[i]),
                      Value(comment_creator_[i])});
  }
  op.AddRows(r.rows.size());
  return r;
}

QueryResult MatrixEngine::TopPosters(int64_t limit) const {
  obs::OpTimer op("column_aggregate");
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  QueryResult r;
  r.columns = {"p.id", "n"};
  if (limit <= 0) return r;
  const Counts* counts = counts_.Read(pin);
  const size_t persons = counts == nullptr ? 0 : counts->persons;
  // Aggregate straight off the posts_by_creator_ rows of the pinned
  // snapshot: persons without posts never rank (the MATCH semantics of
  // the reference query).
  std::vector<std::pair<int32_t, size_t>> creators;
  for (size_t i = 0; i < persons; ++i) {
    const std::vector<int32_t>* posts = posts_by_creator_.Read(i, pin);
    if (posts != nullptr && !posts->empty()) {
      creators.emplace_back(int32_t(i), posts->size());
    }
  }
  auto rank = [this](const std::pair<int32_t, size_t>& a,
                     const std::pair<int32_t, size_t>& b) {
    if (a.second != b.second) return a.second > b.second;
    return person_id_[size_t(a.first)] < person_id_[size_t(b.first)];
  };
  size_t k = std::min(size_t(limit), creators.size());
  std::partial_sort(creators.begin(), creators.begin() + long(k),
                    creators.end(), rank);
  creators.resize(k);
  for (const auto& [c, n] : creators) {
    r.rows.push_back({Value(person_id_[size_t(c)]), Value(int64_t(n))});
  }
  op.AddRows(r.rows.size());
  return r;
}

Status MatrixEngine::Apply(const snb::UpdateOp& op, bool* knows_changed) {
  obs::OpTimer timer("matrix_apply");
  if (knows_changed != nullptr) *knows_changed = false;
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  concurrency::WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  const uint64_t wp = concurrency::EpochManager::kWriterPin;
  using K = snb::UpdateOp::Kind;
  switch (op.kind) {
    case K::kAddPerson:
      InternPerson(mgr, op.person);
      return Status::OK();
    case K::kAddFriendship: {
      int32_t a = PersonOrd(op.knows.person1, wp);
      int32_t b = PersonOrd(op.knows.person2, wp);
      // Unknown endpoints no-op, mirroring a MATCH that binds nothing.
      if (a < 0 || b < 0) return Status::OK();
      bool changed = knows_.AddEdge(a, b);
      if (knows_changed != nullptr) *knows_changed = changed;
      return Status::OK();
    }
    case K::kRemoveFriendship: {
      int32_t a = PersonOrd(op.knows.person1, wp);
      int32_t b = PersonOrd(op.knows.person2, wp);
      if (a < 0 || b < 0) {
        return Status::NotFound("unfriend references unknown person");
      }
      if (!knows_.RemoveEdge(a, b)) {
        return Status::NotFound("no knows edge to remove");
      }
      if (knows_changed != nullptr) *knows_changed = true;
      return Status::OK();
    }
    case K::kAddPost:
      if (PostOrd(op.post.id, wp) >= 0) {
        return Status::AlreadyExists("duplicate post id");
      }
      AppendPost(mgr, op.post);
      return Status::OK();
    case K::kAddComment:
      AppendComment(mgr, op.comment);
      return Status::OK();
    case K::kAddForum:
      forums_.push_back(op.forum);
      counts_.Publish(mgr, [&op](Counts& c) {
        ++c.forums;
        c.side_string_bytes += op.forum.title.size();
      });
      return Status::OK();
    case K::kAddForumMember:
      counts_.Publish(mgr, [](Counts& c) { ++c.members; });
      return Status::OK();
    case K::kAddLikePost:
    case K::kAddLikeComment:
      counts_.Publish(mgr, [](Counts& c) { ++c.likes; });
      return Status::OK();
  }
  return Status::InvalidArgument("unknown update kind");
}

uint64_t MatrixEngine::SizeBytes() const {
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  const Counts* cp = counts_.Read(pin);
  const Counts counts = cp == nullptr ? Counts{} : *cp;
  uint64_t bytes = knows_.ApproximateSizeBytes(pin) + counts.side_string_bytes;
  bytes += counts.persons * sizeof(int64_t) * 3;  // id/birthday/created
  bytes += counts.persons * sizeof(std::string) * 5;
  bytes += counts.posts * (sizeof(int64_t) * 2 + sizeof(int32_t) +
                           sizeof(std::string));
  bytes += counts.comments * (sizeof(int64_t) * 3 + sizeof(std::string));
  for (size_t i = 0; i < counts.persons; ++i) {
    const std::vector<int32_t>* v = posts_by_creator_.Read(i, pin);
    bytes += sizeof(std::vector<int32_t>);
    if (v != nullptr) bytes += v->size() * sizeof(int32_t);
  }
  for (size_t i = 0; i < counts.posts; ++i) {
    const std::vector<int32_t>* v = replies_of_post_.Read(i, pin);
    bytes += sizeof(std::vector<int32_t>);
    if (v != nullptr) bytes += v->size() * sizeof(int32_t);
  }
  bytes += (counts.persons + counts.posts) *
           (sizeof(int64_t) + sizeof(int32_t) + sizeof(void*) * 2);
  bytes += counts.forums * sizeof(snb::Forum);
  bytes += (counts.members + counts.likes) * sizeof(int64_t);
  return bytes;
}

MatrixStats MatrixEngine::stats() const {
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  DeltaCsrStats c = knows_.stats(pin);
  MatrixStats s;
  s.spmv_rows = spmv_rows_.load(std::memory_order_relaxed);
  s.delta_merges = c.delta_merges;
  s.csr_rebuilds = c.csr_rebuilds;
  s.pending_delta = c.pending_delta;
  s.nnz = c.nnz;
  return s;
}

}  // namespace graphbench
