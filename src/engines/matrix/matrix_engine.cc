#include "engines/matrix/matrix_engine.h"

#include <algorithm>
#include <deque>
#include <mutex>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace graphbench {
namespace {

obs::Counter* SpmvRowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("matrix.spmv_rows");
  return c;
}

/// Fixed-size bitmap over dense ordinals: the SpMV frontier/visited
/// vectors.
class Bitmap {
 public:
  explicit Bitmap(size_t bits) : words_((bits + 63) / 64, 0) {}

  bool Test(int32_t i) const {
    return (words_[size_t(i) >> 6] >> (size_t(i) & 63)) & 1;
  }
  void Set(int32_t i) { words_[size_t(i) >> 6] |= uint64_t{1} << (size_t(i) & 63); }
  void Clear() { std::fill(words_.begin(), words_.end(), 0); }
  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Visits every set bit in ascending order (the row-order sweep that
  /// makes the SpMV BFS cache-friendly).
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        int bit = __builtin_ctzll(w);
        w &= w - 1;
        fn(int32_t(wi * 64 + size_t(bit)));
      }
    }
  }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace

MatrixEngine::MatrixEngine(MatrixEngineOptions options)
    : options_(options), knows_(options.csr) {}

int32_t MatrixEngine::PersonOrd(int64_t person_id) const {
  auto it = person_ord_.find(person_id);
  return it == person_ord_.end() ? -1 : it->second;
}

int32_t MatrixEngine::InternPerson(const snb::Person& p) {
  auto it = person_ord_.find(p.id);
  if (it != person_ord_.end()) return it->second;
  int32_t ord = int32_t(person_id_.size());
  person_ord_.emplace(p.id, ord);
  person_id_.push_back(p.id);
  first_name_.push_back(p.first_name);
  last_name_.push_back(p.last_name);
  gender_.push_back(p.gender);
  birthday_.push_back(p.birthday);
  person_creation_.push_back(p.creation_date);
  browser_.push_back(p.browser);
  location_ip_.push_back(p.location_ip);
  posts_by_creator_.emplace_back();
  knows_.AddRow();
  side_string_bytes_ += p.first_name.size() + p.last_name.size() +
                        p.gender.size() + p.browser.size() +
                        p.location_ip.size();
  return ord;
}

void MatrixEngine::AppendPost(const snb::Post& p) {
  int32_t ord = int32_t(post_id_.size());
  post_ord_.emplace(p.id, ord);
  post_id_.push_back(p.id);
  post_content_.push_back(p.content);
  post_creation_.push_back(p.creation_date);
  replies_of_post_.emplace_back();
  int32_t creator = PersonOrd(p.creator);
  post_creator_.push_back(creator);
  if (creator >= 0) posts_by_creator_[size_t(creator)].push_back(ord);
  side_string_bytes_ += p.content.size() + p.browser.size();
}

void MatrixEngine::AppendComment(const snb::Comment& c) {
  int32_t ord = int32_t(comment_id_.size());
  comment_id_.push_back(c.id);
  comment_content_.push_back(c.content);
  comment_creation_.push_back(c.creation_date);
  comment_creator_.push_back(c.creator);
  if (c.reply_of_post >= 0) {
    auto it = post_ord_.find(c.reply_of_post);
    if (it != post_ord_.end()) {
      replies_of_post_[size_t(it->second)].push_back(ord);
    }
  }
  side_string_bytes_ += c.content.size();
}

Status MatrixEngine::Load(const snb::Dataset& data) {
  std::unique_lock lock(mu_);
  for (const snb::Person& p : data.persons) InternPerson(p);
  // Bulk path: materialize the adjacency once and CSR-pack it in one
  // Build, instead of n AddEdge overlay inserts followed by merges.
  std::vector<std::vector<int32_t>> adjacency(person_id_.size());
  for (const snb::Knows& k : data.knows) {
    int32_t a = PersonOrd(k.person1);
    int32_t b = PersonOrd(k.person2);
    if (a < 0 || b < 0) {
      return Status::Corruption("knows references unknown person");
    }
    adjacency[size_t(a)].push_back(b);
    adjacency[size_t(b)].push_back(a);
  }
  knows_.Build(std::move(adjacency));
  for (const snb::Post& p : data.posts) AppendPost(p);
  for (const snb::Comment& c : data.comments) AppendComment(c);
  forums_ = data.forums;
  member_count_ = data.members.size();
  like_count_ = data.likes.size();
  return Status::OK();
}

QueryResult MatrixEngine::PointLookup(int64_t person_id) const {
  obs::OpTimer op("column_lookup");
  std::shared_lock lock(mu_);
  QueryResult r;
  r.columns = {"p.firstName", "p.lastName",    "p.gender",
               "p.birthday",  "p.browserUsed", "p.locationIP"};
  int32_t ord = PersonOrd(person_id);
  if (ord < 0) return r;
  size_t i = size_t(ord);
  r.rows.push_back({Value(first_name_[i]), Value(last_name_[i]),
                    Value(gender_[i]), Value(birthday_[i]),
                    Value(browser_[i]), Value(location_ip_[i])});
  op.AddRows(1);
  return r;
}

QueryResult MatrixEngine::OneHop(int64_t person_id) const {
  obs::OpTimer op("spmv_gather");
  std::shared_lock lock(mu_);
  QueryResult r;
  r.columns = {"f.id", "f.firstName", "f.lastName"};
  int32_t ord = PersonOrd(person_id);
  if (ord < 0) return r;
  knows_.ForEachInRow(ord, [&](int32_t f) {
    size_t i = size_t(f);
    r.rows.push_back(
        {Value(person_id_[i]), Value(first_name_[i]), Value(last_name_[i])});
  });
  spmv_rows_.fetch_add(1, std::memory_order_relaxed);
  SpmvRowsCounter()->Increment();
  op.AddRows(r.rows.size());
  return r;
}

QueryResult MatrixEngine::TwoHop(int64_t person_id) const {
  obs::OpTimer op("masked_spgemm");
  std::shared_lock lock(mu_);
  QueryResult r;
  r.columns = {"ff.id"};
  int32_t ord = PersonOrd(person_id);
  if (ord < 0) return r;
  // Masked SpGEMM row: (A · A_row)(ord) with the self bit masked out. The
  // `seen` bitmap is both the DISTINCT and the mask — direct friends stay
  // includable (they are reachable in two hops through a mutual friend),
  // matching the reference semantics where only self is excluded.
  Bitmap seen(size_t(knows_.rows()));
  seen.Set(ord);
  uint64_t gathered = 1;
  knows_.ForEachInRow(ord, [&](int32_t f) {
    ++gathered;
    knows_.ForEachInRow(f, [&](int32_t ff) {
      if (seen.Test(ff)) return;
      seen.Set(ff);
      r.rows.push_back({Value(person_id_[size_t(ff)])});
    });
  });
  // A direct friend that is *not* reachable in two hops was masked by
  // `seen` without ever being emitted — correct, since the mask seeded
  // only self; friends enter `seen` exclusively via second-level gathers.
  spmv_rows_.fetch_add(gathered, std::memory_order_relaxed);
  SpmvRowsCounter()->Increment(gathered);
  op.AddRows(r.rows.size());
  return r;
}

int MatrixEngine::ShortestPathSpmvLocked(int32_t src, int32_t dst) const {
  const size_t n = size_t(knows_.rows());
  Bitmap visited(n);
  Bitmap frontier(n);
  Bitmap next(n);
  visited.Set(src);
  frontier.Set(src);
  uint64_t rows_gathered = 0;
  int depth = 0;
  bool found = false;
  while (!found && !frontier.Empty()) {
    ++depth;
    next.Clear();
    // One SpMV step: y = A^T x over the frontier bitmap, masked by
    // !visited. Rows stream in ascending order — the cache-friendly sweep
    // the ablation measures against the pointer-chasing walk.
    frontier.ForEachSet([&](int32_t row) {
      ++rows_gathered;
      knows_.ForEachInRow(row, [&](int32_t col) {
        if (visited.Test(col)) return;
        visited.Set(col);
        next.Set(col);
        if (col == dst) found = true;
      });
    });
    std::swap(frontier, next);
  }
  spmv_rows_.fetch_add(rows_gathered, std::memory_order_relaxed);
  SpmvRowsCounter()->Increment(rows_gathered);
  return found ? depth : -1;
}

int MatrixEngine::ShortestPathPointerChasingLocked(int32_t src,
                                                   int32_t dst) const {
  const size_t n = size_t(knows_.rows());
  std::vector<int32_t> dist(n, -1);
  dist[size_t(src)] = 0;
  std::deque<int32_t> queue{src};
  while (!queue.empty()) {
    int32_t v = queue.front();
    queue.pop_front();
    if (v == dst) return dist[size_t(v)];
    int32_t next = dist[size_t(v)] + 1;
    bool hit = false;
    knows_.ForEachInRow(v, [&](int32_t nb) {
      if (dist[size_t(nb)] >= 0) return;
      dist[size_t(nb)] = next;
      if (nb == dst) hit = true;
      queue.push_back(nb);
    });
    if (hit) return next;
  }
  return -1;
}

int MatrixEngine::ShortestPathLen(int64_t from_person,
                                  int64_t to_person) const {
  obs::OpTimer op("spmv_bfs");
  std::shared_lock lock(mu_);
  int32_t src = PersonOrd(from_person);
  int32_t dst = PersonOrd(to_person);
  if (src < 0 || dst < 0) return -1;
  if (src == dst) return 0;
  return options_.bfs == MatrixBfsKind::kSpmv
             ? ShortestPathSpmvLocked(src, dst)
             : ShortestPathPointerChasingLocked(src, dst);
}

QueryResult MatrixEngine::RecentPosts(int64_t person_id,
                                      int64_t limit) const {
  obs::OpTimer op("column_sort");
  std::shared_lock lock(mu_);
  QueryResult r;
  r.columns = {"post.id", "post.content", "post.creationDate"};
  int32_t ord = PersonOrd(person_id);
  if (ord < 0 || limit <= 0) return r;
  std::vector<int32_t> posts = posts_by_creator_[size_t(ord)];
  std::stable_sort(posts.begin(), posts.end(), [this](int32_t a, int32_t b) {
    return post_creation_[size_t(a)] > post_creation_[size_t(b)];
  });
  if (posts.size() > size_t(limit)) posts.resize(size_t(limit));
  for (int32_t p : posts) {
    size_t i = size_t(p);
    r.rows.push_back({Value(post_id_[i]), Value(post_content_[i]),
                      Value(post_creation_[i])});
  }
  op.AddRows(r.rows.size());
  return r;
}

QueryResult MatrixEngine::FriendsWithName(int64_t person_id,
                                          const std::string& first_name) const {
  obs::OpTimer op("spmv_gather");
  std::shared_lock lock(mu_);
  QueryResult r;
  r.columns = {"f.id", "f.lastName"};
  int32_t ord = PersonOrd(person_id);
  if (ord < 0) return r;
  std::vector<int32_t> matches;
  knows_.ForEachInRow(ord, [&](int32_t f) {
    if (first_name_[size_t(f)] == first_name) matches.push_back(f);
  });
  spmv_rows_.fetch_add(1, std::memory_order_relaxed);
  SpmvRowsCounter()->Increment();
  // ORDER BY f.id: ordinals are insertion order, not id order.
  std::sort(matches.begin(), matches.end(), [this](int32_t a, int32_t b) {
    return person_id_[size_t(a)] < person_id_[size_t(b)];
  });
  for (int32_t f : matches) {
    r.rows.push_back({Value(person_id_[size_t(f)]),
                      Value(last_name_[size_t(f)])});
  }
  op.AddRows(r.rows.size());
  return r;
}

QueryResult MatrixEngine::RepliesOfPost(int64_t post_id) const {
  obs::OpTimer op("column_sort");
  std::shared_lock lock(mu_);
  QueryResult r;
  r.columns = {"c.id", "c.content", "cr.id"};
  auto it = post_ord_.find(post_id);
  if (it == post_ord_.end()) return r;
  std::vector<int32_t> replies = replies_of_post_[size_t(it->second)];
  std::stable_sort(replies.begin(), replies.end(),
                   [this](int32_t a, int32_t b) {
                     return comment_creation_[size_t(a)] >
                            comment_creation_[size_t(b)];
                   });
  for (int32_t c : replies) {
    size_t i = size_t(c);
    r.rows.push_back({Value(comment_id_[i]), Value(comment_content_[i]),
                      Value(comment_creator_[i])});
  }
  op.AddRows(r.rows.size());
  return r;
}

QueryResult MatrixEngine::TopPosters(int64_t limit) const {
  obs::OpTimer op("column_aggregate");
  std::shared_lock lock(mu_);
  QueryResult r;
  r.columns = {"p.id", "n"};
  if (limit <= 0) return r;
  // Aggregate straight off the posts_by_creator_ column: persons without
  // posts never rank (the MATCH semantics of the reference query).
  std::vector<int32_t> creators;
  for (size_t i = 0; i < posts_by_creator_.size(); ++i) {
    if (!posts_by_creator_[i].empty()) creators.push_back(int32_t(i));
  }
  auto rank = [this](int32_t a, int32_t b) {
    size_t ca = posts_by_creator_[size_t(a)].size();
    size_t cb = posts_by_creator_[size_t(b)].size();
    if (ca != cb) return ca > cb;
    return person_id_[size_t(a)] < person_id_[size_t(b)];
  };
  size_t k = std::min(size_t(limit), creators.size());
  std::partial_sort(creators.begin(), creators.begin() + long(k),
                    creators.end(), rank);
  creators.resize(k);
  for (int32_t c : creators) {
    r.rows.push_back({Value(person_id_[size_t(c)]),
                      Value(int64_t(posts_by_creator_[size_t(c)].size()))});
  }
  op.AddRows(r.rows.size());
  return r;
}

Status MatrixEngine::Apply(const snb::UpdateOp& op, bool* knows_changed) {
  obs::OpTimer timer("matrix_apply");
  if (knows_changed != nullptr) *knows_changed = false;
  std::unique_lock lock(mu_);
  using K = snb::UpdateOp::Kind;
  switch (op.kind) {
    case K::kAddPerson:
      InternPerson(op.person);
      return Status::OK();
    case K::kAddFriendship: {
      int32_t a = PersonOrd(op.knows.person1);
      int32_t b = PersonOrd(op.knows.person2);
      // Unknown endpoints no-op, mirroring a MATCH that binds nothing.
      if (a < 0 || b < 0) return Status::OK();
      bool changed = knows_.AddEdge(a, b);
      if (knows_changed != nullptr) *knows_changed = changed;
      return Status::OK();
    }
    case K::kRemoveFriendship: {
      int32_t a = PersonOrd(op.knows.person1);
      int32_t b = PersonOrd(op.knows.person2);
      if (a < 0 || b < 0) {
        return Status::NotFound("unfriend references unknown person");
      }
      if (!knows_.RemoveEdge(a, b)) {
        return Status::NotFound("no knows edge to remove");
      }
      if (knows_changed != nullptr) *knows_changed = true;
      return Status::OK();
    }
    case K::kAddPost:
      if (post_ord_.count(op.post.id)) {
        return Status::AlreadyExists("duplicate post id");
      }
      AppendPost(op.post);
      return Status::OK();
    case K::kAddComment:
      AppendComment(op.comment);
      return Status::OK();
    case K::kAddForum:
      forums_.push_back(op.forum);
      side_string_bytes_ += op.forum.title.size();
      return Status::OK();
    case K::kAddForumMember:
      ++member_count_;
      return Status::OK();
    case K::kAddLikePost:
    case K::kAddLikeComment:
      ++like_count_;
      return Status::OK();
  }
  return Status::InvalidArgument("unknown update kind");
}

uint64_t MatrixEngine::SizeBytes() const {
  std::shared_lock lock(mu_);
  uint64_t bytes = knows_.ApproximateSizeBytes() + side_string_bytes_;
  bytes += person_id_.capacity() * sizeof(int64_t) * 3;  // id/birthday/created
  bytes += person_id_.capacity() * sizeof(std::string) * 5;
  bytes += post_id_.capacity() * (sizeof(int64_t) * 2 + sizeof(int32_t) +
                                  sizeof(std::string));
  bytes += comment_id_.capacity() * (sizeof(int64_t) * 3 +
                                     sizeof(std::string));
  for (const auto& v : posts_by_creator_) {
    bytes += v.capacity() * sizeof(int32_t) + sizeof(v);
  }
  for (const auto& v : replies_of_post_) {
    bytes += v.capacity() * sizeof(int32_t) + sizeof(v);
  }
  bytes += (person_ord_.size() + post_ord_.size()) *
           (sizeof(int64_t) + sizeof(int32_t) + sizeof(void*) * 2);
  bytes += forums_.size() * sizeof(snb::Forum);
  bytes += (member_count_ + like_count_) * sizeof(int64_t);
  return bytes;
}

MatrixStats MatrixEngine::stats() const {
  std::shared_lock lock(mu_);
  DeltaCsrStats c = knows_.stats();
  MatrixStats s;
  s.spmv_rows = spmv_rows_.load(std::memory_order_relaxed);
  s.delta_merges = c.delta_merges;
  s.csr_rebuilds = c.csr_rebuilds;
  s.pending_delta = c.pending_delta;
  s.nnz = c.nnz;
  return s;
}

}  // namespace graphbench
