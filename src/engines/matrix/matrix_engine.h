#ifndef GRAPHBENCH_ENGINES_MATRIX_MATRIX_ENGINE_H_
#define GRAPHBENCH_ENGINES_MATRIX_MATRIX_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "concurrency/epoch.h"
#include "concurrency/versioned.h"
#include "engines/matrix/delta_csr.h"
#include "engines/relational/query_result.h"
#include "snb/schema.h"
#include "util/result.h"

namespace graphbench {

/// Which BFS the engine runs for ShortestPathLen — the axis of the
/// bench_ablation_matrix algorithm comparison.
enum class MatrixBfsKind : uint8_t {
  /// Level-synchronous repeated SpMV: the frontier is a bitmap, each level
  /// sweeps the frontier rows of the adjacency matrix in row order and
  /// ORs unreached columns into the next frontier (the GraphBLAS idiom).
  kSpmv,
  /// Per-vertex FIFO walk (the native-graph style): pop one vertex, chase
  /// its adjacency, push unseen neighbors. Same answers, no frontier
  /// batching — the cache-behavior baseline the SpMV sweep is measured
  /// against.
  kPointerChasing,
};

struct MatrixEngineOptions {
  DeltaCsrOptions csr;
  MatrixBfsKind bfs = MatrixBfsKind::kSpmv;
};

/// Engine traffic, mirrored into the default obs registry as
/// matrix.spmv_rows / matrix.delta_merges / matrix.csr_rebuilds.
struct MatrixStats {
  uint64_t spmv_rows = 0;  // adjacency rows gathered by reads
  uint64_t delta_merges = 0;
  uint64_t csr_rebuilds = 0;
  size_t pending_delta = 0;
  size_t nnz = 0;
};

/// The linear-algebra substrate (DESIGN.md §10): the KNOWS relation as a
/// boolean delta-CSR adjacency matrix over dense person ordinals, with
/// person/post/comment properties in columnar side tables that share the
/// same ordinals. Graph reads are matrix operations — OneHop is one SpMV
/// row gather, TwoHop a masked SpGEMM-style two-level gather, shortest
/// path a repeated-SpMV BFS over bitmaps — and the property reads scan or
/// index the columns directly. There is no query language: MatrixSut calls
/// these methods straight, the RedisGraph/GraphBLAS design point.
///
/// Concurrency follows the repo's one-writer/lock-free-readers discipline:
/// Load/Apply serialize on a plain mutex and publish inside a write batch;
/// queries pin an epoch and read the matrix body, overlay rows, ordinal
/// maps, and columnar counts of that snapshot — no reader lock, so a
/// pending CSR merge or update burst never stalls a gather.
class MatrixEngine {
 public:
  explicit MatrixEngine(MatrixEngineOptions options = {});

  MatrixEngine(const MatrixEngine&) = delete;
  MatrixEngine& operator=(const MatrixEngine&) = delete;

  Status Load(const snb::Dataset& data);

  // --- Reads (columns match the Cypher reference SUT positionally) ------
  QueryResult PointLookup(int64_t person_id) const;
  QueryResult OneHop(int64_t person_id) const;
  QueryResult TwoHop(int64_t person_id) const;
  /// -1 when unreachable or either person is unknown.
  int ShortestPathLen(int64_t from_person, int64_t to_person) const;
  QueryResult RecentPosts(int64_t person_id, int64_t limit) const;
  QueryResult FriendsWithName(int64_t person_id,
                              const std::string& first_name) const;
  QueryResult RepliesOfPost(int64_t post_id) const;
  QueryResult TopPosters(int64_t limit) const;

  /// Applies one update-stream op. `knows_changed` (may be null) reports
  /// whether the adjacency matrix actually mutated — false for duplicate
  /// friendship inserts the boolean matrix collapses — so the caller fires
  /// landmark invalidation hooks only for real mutations.
  Status Apply(const snb::UpdateOp& op, bool* knows_changed = nullptr);

  uint64_t SizeBytes() const;
  MatrixStats stats() const;

 private:
  /// Epoch-versioned row counts: the bound every reader applies to the
  /// append-only columns of its pinned snapshot.
  struct Counts {
    uint64_t persons = 0;
    uint64_t posts = 0;
    uint64_t comments = 0;
    uint64_t forums = 0;
    uint64_t members = 0;
    uint64_t likes = 0;
    uint64_t side_string_bytes = 0;  // content/name bytes across columns
  };

  // Dense ordinal of a person/post id visible at `pin`, or -1.
  int32_t PersonOrd(int64_t person_id, uint64_t pin) const;
  int32_t PostOrd(int64_t post_id, uint64_t pin) const;
  // Interns a person id, growing the matrix and every person column;
  // write_mu_ held, inside a batch.
  int32_t InternPerson(concurrency::EpochManager& mgr, const snb::Person& p);
  void AppendPost(concurrency::EpochManager& mgr, const snb::Post& p);
  void AppendComment(concurrency::EpochManager& mgr, const snb::Comment& c);
  int ShortestPathSpmv(int32_t src, int32_t dst, uint64_t pin) const;
  int ShortestPathPointerChasing(int32_t src, int32_t dst,
                                 uint64_t pin) const;

  const MatrixEngineOptions options_;
  std::mutex write_mu_;  // serializes writers; readers never take it

  DeltaCsrMatrix knows_;

  // Person columns, indexed by matrix row ordinal. Appended inside the
  // batch that inserts the ordinal, so a visible ordinal implies visible
  // column cells.
  concurrency::EpochHashMap<int64_t, int32_t> person_ord_;
  concurrency::StableVec<int64_t> person_id_;
  concurrency::StableVec<std::string> first_name_;
  concurrency::StableVec<std::string> last_name_;
  concurrency::StableVec<std::string> gender_;
  concurrency::StableVec<int64_t> birthday_;
  concurrency::StableVec<int64_t> person_creation_;
  concurrency::StableVec<std::string> browser_;
  concurrency::StableVec<std::string> location_ip_;
  /// Post ordinals per creator; mutated by every post append, so
  /// versioned per row.
  concurrency::VersionedTable<std::vector<int32_t>> posts_by_creator_;

  // Post columns, indexed by post ordinal.
  concurrency::EpochHashMap<int64_t, int32_t> post_ord_;
  concurrency::StableVec<int64_t> post_id_;
  concurrency::StableVec<std::string> post_content_;
  concurrency::StableVec<int64_t> post_creation_;
  concurrency::StableVec<int32_t> post_creator_;  // person ordinal, -1
  concurrency::VersionedTable<std::vector<int32_t>> replies_of_post_;

  // Comment columns, indexed by comment ordinal.
  concurrency::StableVec<int64_t> comment_id_;
  concurrency::StableVec<std::string> comment_content_;
  concurrency::StableVec<int64_t> comment_creation_;
  concurrency::StableVec<int64_t> comment_creator_;  // person id (cr.id)

  // Entities no read query touches, kept only so Apply is total and
  // SizeBytes honest. The forum rows themselves are writer-only; their
  // count is in counts_.
  std::vector<snb::Forum> forums_;
  concurrency::VersionedCell<Counts> counts_;

  // Read-side counter: relaxed, bumped lock-free.
  mutable std::atomic<uint64_t> spmv_rows_{0};
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_MATRIX_MATRIX_ENGINE_H_
