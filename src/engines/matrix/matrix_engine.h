#ifndef GRAPHBENCH_ENGINES_MATRIX_MATRIX_ENGINE_H_
#define GRAPHBENCH_ENGINES_MATRIX_MATRIX_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engines/matrix/delta_csr.h"
#include "engines/relational/query_result.h"
#include "snb/schema.h"
#include "util/result.h"

namespace graphbench {

/// Which BFS the engine runs for ShortestPathLen — the axis of the
/// bench_ablation_matrix algorithm comparison.
enum class MatrixBfsKind : uint8_t {
  /// Level-synchronous repeated SpMV: the frontier is a bitmap, each level
  /// sweeps the frontier rows of the adjacency matrix in row order and
  /// ORs unreached columns into the next frontier (the GraphBLAS idiom).
  kSpmv,
  /// Per-vertex FIFO walk (the native-graph style): pop one vertex, chase
  /// its adjacency, push unseen neighbors. Same answers, no frontier
  /// batching — the cache-behavior baseline the SpMV sweep is measured
  /// against.
  kPointerChasing,
};

struct MatrixEngineOptions {
  DeltaCsrOptions csr;
  MatrixBfsKind bfs = MatrixBfsKind::kSpmv;
};

/// Engine traffic, mirrored into the default obs registry as
/// matrix.spmv_rows / matrix.delta_merges / matrix.csr_rebuilds.
struct MatrixStats {
  uint64_t spmv_rows = 0;  // adjacency rows gathered by reads
  uint64_t delta_merges = 0;
  uint64_t csr_rebuilds = 0;
  size_t pending_delta = 0;
  size_t nnz = 0;
};

/// The linear-algebra substrate (DESIGN.md §10): the KNOWS relation as a
/// boolean delta-CSR adjacency matrix over dense person ordinals, with
/// person/post/comment properties in columnar side tables that share the
/// same ordinals. Graph reads are matrix operations — OneHop is one SpMV
/// row gather, TwoHop a masked SpGEMM-style two-level gather, shortest
/// path a repeated-SpMV BFS over bitmaps — and the property reads scan or
/// index the columns directly. There is no query language: MatrixSut calls
/// these methods straight, the RedisGraph/GraphBLAS design point.
///
/// Concurrency follows the repo's one-writer/many-readers discipline:
/// queries take the shared lock, Load/Apply the exclusive lock; read-side
/// stats are relaxed atomics.
class MatrixEngine {
 public:
  explicit MatrixEngine(MatrixEngineOptions options = {});

  Status Load(const snb::Dataset& data);

  // --- Reads (columns match the Cypher reference SUT positionally) ------
  QueryResult PointLookup(int64_t person_id) const;
  QueryResult OneHop(int64_t person_id) const;
  QueryResult TwoHop(int64_t person_id) const;
  /// -1 when unreachable or either person is unknown.
  int ShortestPathLen(int64_t from_person, int64_t to_person) const;
  QueryResult RecentPosts(int64_t person_id, int64_t limit) const;
  QueryResult FriendsWithName(int64_t person_id,
                              const std::string& first_name) const;
  QueryResult RepliesOfPost(int64_t post_id) const;
  QueryResult TopPosters(int64_t limit) const;

  /// Applies one update-stream op. `knows_changed` (may be null) reports
  /// whether the adjacency matrix actually mutated — false for duplicate
  /// friendship inserts the boolean matrix collapses — so the caller fires
  /// landmark invalidation hooks only for real mutations.
  Status Apply(const snb::UpdateOp& op, bool* knows_changed = nullptr);

  uint64_t SizeBytes() const;
  MatrixStats stats() const;

 private:
  // Dense ordinal of a person/post id, or -1 when unknown; mu_ held.
  int32_t PersonOrd(int64_t person_id) const;
  // Interns a person id, growing the matrix and every person column
  // (missing property cells default-initialize); mu_ held exclusively.
  int32_t InternPerson(const snb::Person& p);
  void AppendPost(const snb::Post& p);
  void AppendComment(const snb::Comment& c);
  int ShortestPathSpmvLocked(int32_t src, int32_t dst) const;
  int ShortestPathPointerChasingLocked(int32_t src, int32_t dst) const;

  const MatrixEngineOptions options_;
  mutable std::shared_mutex mu_;

  DeltaCsrMatrix knows_;

  // Person columns, indexed by matrix row ordinal.
  std::unordered_map<int64_t, int32_t> person_ord_;
  std::vector<int64_t> person_id_;
  std::vector<std::string> first_name_;
  std::vector<std::string> last_name_;
  std::vector<std::string> gender_;
  std::vector<int64_t> birthday_;
  std::vector<int64_t> person_creation_;
  std::vector<std::string> browser_;
  std::vector<std::string> location_ip_;
  std::vector<std::vector<int32_t>> posts_by_creator_;  // post ordinals

  // Post columns, indexed by post ordinal.
  std::unordered_map<int64_t, int32_t> post_ord_;
  std::vector<int64_t> post_id_;
  std::vector<std::string> post_content_;
  std::vector<int64_t> post_creation_;
  std::vector<int32_t> post_creator_;  // person ordinal, -1 unknown
  std::vector<std::vector<int32_t>> replies_of_post_;  // comment ordinals

  // Comment columns, indexed by comment ordinal.
  std::vector<int64_t> comment_id_;
  std::vector<std::string> comment_content_;
  std::vector<int64_t> comment_creation_;
  std::vector<int64_t> comment_creator_;  // person id (for the cr.id column)

  // Entities no read query touches, kept only so Apply is total and
  // SizeBytes honest: forums/members/likes as flat rows.
  std::vector<snb::Forum> forums_;
  uint64_t member_count_ = 0;
  uint64_t like_count_ = 0;
  uint64_t side_string_bytes_ = 0;  // content/name bytes across columns

  // Read-side counter: bumped under the shared lock.
  mutable std::atomic<uint64_t> spmv_rows_{0};
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_MATRIX_MATRIX_ENGINE_H_
