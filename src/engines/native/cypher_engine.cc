#include "engines/native/cypher_engine.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "lang/cypher/parser.h"
#include "obs/profiler.h"

namespace graphbench {

using cypher::BinOp;
using cypher::Expr;

namespace {

bool CompareSatisfies(BinOp op, int cmp) {
  switch (op) {
    case BinOp::kEq: return cmp == 0;
    case BinOp::kNe: return cmp != 0;
    case BinOp::kLt: return cmp < 0;
    case BinOp::kLe: return cmp <= 0;
    case BinOp::kGt: return cmp > 0;
    case BinOp::kGe: return cmp >= 0;
    case BinOp::kAnd: return false;
  }
  return false;
}

// Variable slot registry shared by the executor below.
class Slots {
 public:
  int GetOrAdd(const std::string& var) {
    auto [it, inserted] = map_.emplace(var, int(map_.size()));
    return it->second;
  }
  int Find(const std::string& var) const {
    auto it = map_.find(var);
    return it == map_.end() ? -1 : it->second;
  }
  size_t size() const { return map_.size(); }

 private:
  std::unordered_map<std::string, int> map_;
};

using BindingRow = std::vector<VertexId>;

}  // namespace

Result<Value> CypherEngine::EvalConst(const Expr& e,
                                      const Params& params) const {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kParam: {
      auto it = params.find(e.var);
      if (it == params.end()) {
        return Status::InvalidArgument("missing parameter $" + e.var);
      }
      return it->second;
    }
    default:
      return Status::NotSupported("expected literal or parameter");
  }
}

void CypherEngine::EnablePlanCache(size_t capacity) {
  plan_cache_ =
      std::make_unique<lang::PlanCache<cypher::Query>>("cypher", capacity);
}

Result<CypherEngine::PreparedStatement> CypherEngine::Prepare(
    std::string_view query) {
  PreparedStatement prepared;
  prepared.text_ = std::string(query);
  if (plan_cache_ != nullptr) {
    if (auto cached = plan_cache_->Lookup(query)) {
      prepared.query_ = std::move(cached);
      return prepared;
    }
  }
  obs::OpTimer parse_op("Parse");
  GB_ASSIGN_OR_RETURN(cypher::Query q, cypher::Parse(query));
  parse_op.Stop();
  auto shared = std::make_shared<const cypher::Query>(std::move(q));
  if (plan_cache_ != nullptr) plan_cache_->Insert(query, shared);
  prepared.query_ = std::move(shared);
  return prepared;
}

Result<QueryResult> CypherEngine::Execute(const PreparedStatement& prepared,
                                          const Params& params) {
  if (!prepared.valid()) {
    return Status::InvalidArgument("prepared statement is empty");
  }
  obs::OpTimer root_op("ProduceResults");
  if (plan_cache_ != nullptr) {
    // Extended-protocol model: every execution of a named statement goes
    // through the server's statement cache. A handle whose entry was
    // evicted re-seeds it — never a re-parse, the handle keeps the plan
    // alive.
    if (auto cached = plan_cache_->Lookup(prepared.text_)) {
      return ExecuteParsed(*cached, params);
    }
    plan_cache_->Insert(prepared.text_, prepared.query_);
  }
  return ExecuteParsed(*prepared.query_, params);
}

Result<QueryResult> CypherEngine::Execute(std::string_view query,
                                          const Params& params) {
  // Root operator (Neo4j PROFILE's ProduceResults): cumulative spans the
  // whole execution; self is whatever the specific operators below do not
  // account for (setup, expression-closure allocation, result assembly).
  obs::OpTimer root_op("ProduceResults");
  if (plan_cache_ != nullptr) {
    if (auto cached = plan_cache_->Lookup(query)) {
      return ExecuteParsed(*cached, params);
    }
    obs::OpTimer cached_parse_op("Parse");
    GB_ASSIGN_OR_RETURN(cypher::Query parsed, cypher::Parse(query));
    cached_parse_op.Stop();
    auto shared = std::make_shared<const cypher::Query>(std::move(parsed));
    plan_cache_->Insert(query, shared);
    return ExecuteParsed(*shared, params);
  }
  obs::OpTimer parse_op("Parse");
  GB_ASSIGN_OR_RETURN(cypher::Query q, cypher::Parse(query));
  parse_op.Stop();
  return ExecuteParsed(q, params);
}

Result<QueryResult> CypherEngine::ExecuteParsed(const cypher::Query& q,
                                                const Params& params) {
  // LIMIT binds like any other parameter so one cached plan serves every
  // limit value.
  int64_t limit_bound = q.limit;
  if (!q.limit_param.empty()) {
    auto it = params.find(q.limit_param);
    if (it == params.end()) {
      return Status::InvalidArgument("missing parameter $" + q.limit_param);
    }
    if (!it->second.is_int()) {
      return Status::InvalidArgument("LIMIT parameter must be an integer");
    }
    limit_bound = it->second.as_int();
  }

  Slots slots;
  std::vector<BindingRow> rows;
  rows.emplace_back();

  auto ensure_width = [&rows, &slots] {
    for (BindingRow& r : rows) r.resize(slots.size(), kInvalidVertexId);
  };

  // Evaluate an expression against one binding.
  std::function<Result<Value>(const Expr&, const BindingRow&)> eval =
      [&](const Expr& e, const BindingRow& b) -> Result<Value> {
    switch (e.kind) {
      case Expr::Kind::kLiteral:
      case Expr::Kind::kParam:
        return EvalConst(e, params);
      case Expr::Kind::kProp: {
        int slot = slots.Find(e.var);
        if (slot < 0 || b[size_t(slot)] == kInvalidVertexId) {
          return Status::InvalidArgument("unbound variable " + e.var);
        }
        return graph_->VertexProperty(b[size_t(slot)], e.key);
      }
      case Expr::Kind::kBinary: {
        if (e.op == BinOp::kAnd) {
          GB_ASSIGN_OR_RETURN(Value l, eval(*e.lhs, b));
          if (!l.is_bool() || !l.as_bool()) return Value(false);
          return eval(*e.rhs, b);
        }
        GB_ASSIGN_OR_RETURN(Value l, eval(*e.lhs, b));
        GB_ASSIGN_OR_RETURN(Value r, eval(*e.rhs, b));
        return Value(CompareSatisfies(e.op, l.Compare(r)));
      }
      case Expr::Kind::kPathLength: {
        obs::OpTimer op("ShortestPath");
        int from = slots.Find(e.path_from);
        int to = slots.Find(e.path_to);
        if (from < 0 || to < 0) {
          return Status::InvalidArgument("shortestPath over unbound vars");
        }
        GB_ASSIGN_OR_RETURN(
            int len, graph_->ShortestPathLength(b[size_t(from)],
                                                b[size_t(to)],
                                                e.path_rel_type));
        return Value(int64_t{len});
      }
      case Expr::Kind::kCountStar:
        return Status::Internal("count(*) outside aggregation");
    }
    return Status::Internal("unhandled expr");
  };

  // --- MATCH ----------------------------------------------------------
  for (const auto& chain : q.match) {
    // Solve the chain left-to-right against every current binding.
    for (size_t ni = 0; ni < chain.nodes.size(); ++ni) {
      const cypher::NodePattern& node = chain.nodes[ni];
      int slot = node.var.empty() ? -1 : slots.GetOrAdd(node.var);
      ensure_width();

      const char* op_name =
          ni == 0 ? (node.props.empty() ? "NodeByLabelScan"
                                        : "NodeIndexSeek")
                  : (chain.rels[ni - 1].max_hops == 1 ? "Expand"
                                                      : "VarLengthExpand");
      obs::OpTimer op(op_name);

      std::vector<BindingRow> next;
      for (const BindingRow& b : rows) {
        if (ni == 0) {
          // Anchor node: already bound / property lookup / label scan.
          if (slot >= 0 && b[size_t(slot)] != kInvalidVertexId) {
            next.push_back(b);
            continue;
          }
          std::vector<VertexId> candidates;
          if (!node.props.empty()) {
            GB_ASSIGN_OR_RETURN(Value v, EvalConst(*node.props[0].second,
                                                   params));
            auto found =
                graph_->FindVertex(node.label, node.props[0].first, v);
            if (found.ok()) candidates.push_back(*found);
          } else {
            candidates = graph_->VerticesByLabel(node.label);
          }
          for (VertexId v : candidates) {
            // Verify every inline constraint (the lookup used only the
            // first one).
            bool props_ok = true;
            for (const auto& [key, expr] : node.props) {
              GB_ASSIGN_OR_RETURN(Value want, EvalConst(*expr, params));
              GB_ASSIGN_OR_RETURN(Value got,
                                  graph_->VertexProperty(v, key));
              if (got != want) {
                props_ok = false;
                break;
              }
            }
            if (!props_ok) continue;
            BindingRow nb = b;
            if (slot >= 0) nb[size_t(slot)] = v;
            next.push_back(std::move(nb));
          }
          continue;
        }
        // Expansion step: from nodes[ni-1] across rels[ni-1].
        const cypher::NodePattern& prev = chain.nodes[ni - 1];
        const cypher::RelPattern& rel = chain.rels[ni - 1];
        int prev_slot = slots.Find(prev.var);
        if (prev_slot < 0 || b[size_t(prev_slot)] == kInvalidVertexId) {
          return Status::NotSupported(
              "chain must expand from a bound node");
        }
        std::vector<Neighbor> neighbors;
        if (rel.max_hops == 1) {
          GB_ASSIGN_OR_RETURN(
              neighbors,
              graph_->Neighbors(b[size_t(prev_slot)], rel.type, rel.dir));
        } else {
          // Variable-length expansion -[:T*min..max]-: BFS collecting the
          // distinct vertices first reached at depth in [min, max]
          // (distinct-vertex semantics; full Cypher enumerates edge-unique
          // paths).
          std::unordered_set<VertexId> visited{b[size_t(prev_slot)]};
          std::vector<VertexId> frontier{b[size_t(prev_slot)]};
          for (int depth = 1;
               depth <= rel.max_hops && !frontier.empty(); ++depth) {
            std::vector<VertexId> next_frontier;
            for (VertexId v : frontier) {
              GB_ASSIGN_OR_RETURN(
                  std::vector<Neighbor> step,
                  graph_->Neighbors(v, rel.type, rel.dir));
              for (const Neighbor& n : step) {
                if (!visited.insert(n.vertex).second) continue;
                next_frontier.push_back(n.vertex);
                if (depth >= rel.min_hops) {
                  neighbors.push_back(Neighbor{n.vertex, n.edge});
                }
              }
            }
            frontier = std::move(next_frontier);
          }
        }
        for (const Neighbor& n : neighbors) {
          // Label / inline property / prior-binding consistency checks.
          if (!node.label.empty()) {
            std::string label;
            GB_RETURN_IF_ERROR(graph_->GetVertex(n.vertex, &label, nullptr));
            if (label != node.label) continue;
          }
          if (slot >= 0 && b[size_t(slot)] != kInvalidVertexId &&
              b[size_t(slot)] != n.vertex) {
            continue;
          }
          bool props_ok = true;
          for (const auto& [key, expr] : node.props) {
            GB_ASSIGN_OR_RETURN(Value want, EvalConst(*expr, params));
            GB_ASSIGN_OR_RETURN(Value got,
                                graph_->VertexProperty(n.vertex, key));
            if (got != want) {
              props_ok = false;
              break;
            }
          }
          if (!props_ok) continue;
          BindingRow nb = b;
          if (slot >= 0) nb[size_t(slot)] = n.vertex;
          next.push_back(std::move(nb));
        }
      }
      rows = std::move(next);
      op.AddRows(rows.size());
      if (rows.empty()) break;
    }
    if (rows.empty()) break;
  }

  // --- WHERE ----------------------------------------------------------
  if (q.where != nullptr) {
    obs::OpTimer op("Filter");
    std::vector<BindingRow> kept;
    for (BindingRow& b : rows) {
      GB_ASSIGN_OR_RETURN(Value pass, eval(*q.where, b));
      if (pass.is_bool() && pass.as_bool()) kept.push_back(std::move(b));
    }
    rows = std::move(kept);
    op.AddRows(rows.size());
  }

  QueryResult result;

  // --- CREATE ---------------------------------------------------------
  if (!q.create_nodes.empty() || !q.create_rels.empty()) {
    obs::OpTimer create_op("Create");
    for (const BindingRow& b : rows) {
      std::unordered_map<std::string, VertexId> created;
      for (const auto& node : q.create_nodes) {
        PropertyMap props;
        for (const auto& [key, expr] : node.props) {
          GB_ASSIGN_OR_RETURN(Value v, EvalConst(*expr, params));
          props.Set(key, std::move(v));
        }
        GB_ASSIGN_OR_RETURN(VertexId v,
                            graph_->AddVertex(node.label, props));
        if (!node.var.empty()) created[node.var] = v;
        ++result.affected;
      }
      for (const auto& cr : q.create_rels) {
        auto resolve = [&](const std::string& var) -> Result<VertexId> {
          auto it = created.find(var);
          if (it != created.end()) return it->second;
          int slot = slots.Find(var);
          if (slot < 0 || b[size_t(slot)] == kInvalidVertexId) {
            return Status::InvalidArgument("CREATE endpoint unbound: " +
                                           var);
          }
          return b[size_t(slot)];
        };
        GB_ASSIGN_OR_RETURN(VertexId from, resolve(cr.from_var));
        GB_ASSIGN_OR_RETURN(VertexId to, resolve(cr.to_var));
        PropertyMap props;
        for (const auto& [key, expr] : cr.rel.props) {
          GB_ASSIGN_OR_RETURN(Value v, EvalConst(*expr, params));
          props.Set(key, std::move(v));
        }
        GB_RETURN_IF_ERROR(
            graph_->AddEdge(cr.rel.type, from, to, props).status());
        ++result.affected;
      }
    }
    create_op.AddRows(result.affected);
    if (q.ret.empty()) return result;
  }

  // --- RETURN ---------------------------------------------------------
  for (const auto& item : q.ret) result.columns.push_back(item.name);

  // Cypher's implicit aggregation: count(*) groups by the non-aggregate
  // return items (RETURN f.id, count(*) counts per friend).
  bool has_count = false;
  for (const auto& item : q.ret) {
    has_count |= item.expr->kind == Expr::Kind::kCountStar;
  }
  if (has_count) {
    obs::OpTimer agg_op("EagerAggregation");
    std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
    std::vector<Row> group_order;
    for (const BindingRow& b : rows) {
      Row key;
      for (const auto& item : q.ret) {
        if (item.expr->kind == Expr::Kind::kCountStar) continue;
        GB_ASSIGN_OR_RETURN(Value v, eval(*item.expr, b));
        key.push_back(std::move(v));
      }
      auto [it, inserted] = counts.emplace(key, 0);
      if (inserted) group_order.push_back(key);
      ++it->second;
    }
    if (group_order.empty() && q.ret.size() == 1) {
      // Bare RETURN count(*) over zero rows.
      result.rows.push_back(Row{Value(int64_t{0})});
      return result;
    }
    for (const Row& key : group_order) {
      Row row;
      size_t key_index = 0;
      for (const auto& item : q.ret) {
        if (item.expr->kind == Expr::Kind::kCountStar) {
          row.push_back(Value(counts[key]));
        } else {
          row.push_back(key[key_index++]);
        }
      }
      result.rows.push_back(std::move(row));
    }
    agg_op.AddRows(result.rows.size());
    agg_op.Stop();
    // ORDER BY over aggregated output: only aliases of return items.
    if (!q.order_by.empty()) {
      obs::OpTimer sort_op("Sort");
      std::vector<std::pair<size_t, bool>> keys;
      for (const auto& o : q.order_by) {
        size_t column = q.ret.size();
        if (o.expr->kind == Expr::Kind::kProp) {
          for (size_t i = 0; i < q.ret.size(); ++i) {
            const Expr& re = *q.ret[i].expr;
            if (re.kind == Expr::Kind::kProp && re.var == o.expr->var &&
                re.key == o.expr->key) {
              column = i;
              break;
            }
          }
        } else if (o.expr->kind == Expr::Kind::kCountStar) {
          for (size_t i = 0; i < q.ret.size(); ++i) {
            if (q.ret[i].expr->kind == Expr::Kind::kCountStar) column = i;
          }
        }
        if (column == q.ret.size()) {
          return Status::NotSupported(
              "aggregated ORDER BY must reference a RETURN item");
        }
        keys.emplace_back(column, o.desc);
      }
      std::stable_sort(result.rows.begin(), result.rows.end(),
                       [&keys](const Row& a, const Row& b) {
                         for (auto [column, desc] : keys) {
                           int c = a[column].Compare(b[column]);
                           if (c != 0) return desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    if (limit_bound >= 0 && result.rows.size() > size_t(limit_bound)) {
      result.rows.resize(size_t(limit_bound));
    }
    return result;
  }

  struct Projected {
    Row row;
    Row sort_key;
  };
  std::vector<Projected> projected;
  std::unordered_set<Row, RowHash, RowEq> seen;
  obs::OpTimer project_op("Projection");
  for (const BindingRow& b : rows) {
    Row row;
    for (const auto& item : q.ret) {
      GB_ASSIGN_OR_RETURN(Value v, eval(*item.expr, b));
      row.push_back(std::move(v));
    }
    if (q.distinct && !seen.insert(row).second) continue;
    Row sort_key;
    for (const auto& o : q.order_by) {
      GB_ASSIGN_OR_RETURN(Value v, eval(*o.expr, b));
      sort_key.push_back(std::move(v));
    }
    projected.push_back(Projected{std::move(row), std::move(sort_key)});
  }
  project_op.AddRows(projected.size());
  project_op.Stop();
  if (!q.order_by.empty()) {
    obs::OpTimer sort_op("Sort");
    std::stable_sort(projected.begin(), projected.end(),
                     [&q](const Projected& a, const Projected& b) {
                       for (size_t i = 0; i < q.order_by.size(); ++i) {
                         int c = a.sort_key[i].Compare(b.sort_key[i]);
                         if (c != 0) return q.order_by[i].desc ? c > 0
                                                               : c < 0;
                       }
                       return false;
                     });
  }
  size_t limit = limit_bound < 0
                     ? projected.size()
                     : std::min(size_t(limit_bound), projected.size());
  result.rows.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    result.rows.push_back(std::move(projected[i].row));
  }
  return result;
}

}  // namespace graphbench
