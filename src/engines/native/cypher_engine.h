#ifndef GRAPHBENCH_ENGINES_NATIVE_CYPHER_ENGINE_H_
#define GRAPHBENCH_ENGINES_NATIVE_CYPHER_ENGINE_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "engines/native/native_graph.h"
#include "engines/relational/query_result.h"
#include "lang/cypher/ast.h"
#include "util/result.h"

namespace graphbench {

/// Declarative query front-end over the native graph store: the
/// Neo4j-with-Cypher configuration. Queries are parsed and planned per
/// execution (as a server does), then run as pipelined pattern expansions
/// directly over the store's adjacency records.
///
/// Planning: each MATCH chain is solved left-to-right; the first node of a
/// chain must be resolvable — by an inline property equality (index lookup
/// when one exists), by a label scan, or by already being bound by an
/// earlier chain. The SNB interactive queries all satisfy this.
class CypherEngine {
 public:
  using Params = std::map<std::string, Value>;

  explicit CypherEngine(NativeGraph* graph) : graph_(graph) {}

  /// Parses and executes one statement with named $parameters.
  Result<QueryResult> Execute(std::string_view query, const Params& params);

  NativeGraph* graph() { return graph_; }

 private:
  struct Binding;  // var name -> VertexId slots; defined in the .cc

  Result<Value> EvalConst(const cypher::Expr& e, const Params& params) const;

  NativeGraph* graph_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_NATIVE_CYPHER_ENGINE_H_
