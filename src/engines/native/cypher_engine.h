#ifndef GRAPHBENCH_ENGINES_NATIVE_CYPHER_ENGINE_H_
#define GRAPHBENCH_ENGINES_NATIVE_CYPHER_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engines/native/native_graph.h"
#include "engines/relational/query_result.h"
#include "lang/cypher/ast.h"
#include "lang/plan_cache.h"
#include "util/result.h"

namespace graphbench {

/// Declarative query front-end over the native graph store: the
/// Neo4j-with-Cypher configuration. Queries are parsed and planned per
/// execution (as a server does) by default; Prepare splits that lifecycle
/// so a statement is parsed once and executed repeatedly with per-call
/// $parameters (Neo4j's query-cache analog, opted into per instance via
/// EnablePlanCache).
///
/// Planning: each MATCH chain is solved left-to-right; the first node of a
/// chain must be resolvable — by an inline property equality (index lookup
/// when one exists), by a label scan, or by already being bound by an
/// earlier chain. The SNB interactive queries all satisfy this.
class CypherEngine {
 public:
  using Params = std::map<std::string, Value>;

  explicit CypherEngine(NativeGraph* graph) : graph_(graph) {}

  /// An immutable parsed query; share freely across threads and execute
  /// with per-call parameters.
  class PreparedStatement {
   public:
    PreparedStatement() = default;
    const std::string& text() const { return text_; }
    const cypher::Query& query() const { return *query_; }
    bool valid() const { return query_ != nullptr; }

   private:
    friend class CypherEngine;
    std::string text_;
    std::shared_ptr<const cypher::Query> query_;
  };

  /// Parses `query` into an immutable statement (consulting the plan
  /// cache when enabled).
  Result<PreparedStatement> Prepare(std::string_view query);

  /// Binds `params` and runs a prepared statement — no parsing.
  Result<QueryResult> Execute(const PreparedStatement& prepared,
                              const Params& params);

  /// Parses and executes one statement with named $parameters. Parses per
  /// call — the paper-faithful default — unless the plan cache is enabled.
  Result<QueryResult> Execute(std::string_view query, const Params& params);

  /// Opts this instance into caching parsed queries keyed by statement
  /// text. Call before concurrent use. Off by default.
  void EnablePlanCache(size_t capacity = lang::kDefaultPlanCacheCapacity);
  bool plan_cache_enabled() const { return plan_cache_ != nullptr; }
  lang::PlanCacheStats plan_cache_stats() const {
    return plan_cache_ == nullptr ? lang::PlanCacheStats{}
                                  : plan_cache_->Stats();
  }

  NativeGraph* graph() { return graph_; }

 private:
  struct Binding;  // var name -> VertexId slots; defined in the .cc

  Result<Value> EvalConst(const cypher::Expr& e, const Params& params) const;
  // Runs an already-parsed query: the shared tail of both Execute
  // overloads.
  Result<QueryResult> ExecuteParsed(const cypher::Query& q,
                                    const Params& params);

  NativeGraph* graph_;
  std::unique_ptr<lang::PlanCache<cypher::Query>> plan_cache_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_NATIVE_CYPHER_ENGINE_H_
