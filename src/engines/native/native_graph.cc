#include "engines/native/native_graph.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <thread>
#include <unordered_map>

#include "graph/value_codec.h"
#include "storage/heap_table.h"  // ValueFootprint
#include "util/stopwatch.h"

namespace graphbench {

namespace {
using concurrency::EpochGuard;
using concurrency::EpochManager;
using concurrency::ReadPin;
using concurrency::WriteBatch;
}  // namespace

NativeGraph::NativeGraph(NativeGraphOptions options) : options_(options) {
  if (!options_.durability.enabled) return;
  storage::FileSystem* fs = storage::ResolveFileSystem(options_.durability);
  auto store = fs->Open(storage::DbPath(options_.durability, "neo4j"));
  auto journal = storage::Wal::Create(
      fs, storage::WalPath(options_.durability, "neo4j"), /*salt=*/1);
  if (!store.ok() || !journal.ok()) {
    std::fprintf(stderr,
                 "native-graph: durable store unavailable (%s); "
                 "falling back to in-memory checkpoints\n",
                 (!store.ok() ? store.status() : journal.status())
                     .message().c_str());
    return;
  }
  store_file_ = std::move(store).value();
  (void)store_file_->Truncate(0);  // each run starts a fresh store file
  journal_ = std::move(journal).value();
}

uint32_t NativeGraph::InternLabel(EpochManager& mgr, std::string_view label) {
  std::string key(label);
  if (const uint32_t* id = label_ids_.Find(key, EpochManager::kWriterPin)) {
    return *id;
  }
  uint32_t id = uint32_t(label_names_.size());
  label_names_.PushBack(mgr, key);
  label_ids_.Insert(mgr, key, id);
  return id;
}

int NativeGraph::LookupLabel(std::string_view label, uint64_t pin) const {
  const uint32_t* id = label_ids_.Find(std::string(label), pin);
  return id == nullptr ? -1 : int(*id);
}

NativeGraph::AdjGroup& NativeGraph::GroupFor(VertexRec& rec,
                                             uint32_t edge_label) {
  for (AdjGroup& g : rec.adj) {
    if (g.edge_label == edge_label) return g;
  }
  rec.adj.push_back(AdjGroup{edge_label, {}, {}});
  return rec.adj.back();
}

NativeGraph::Counts NativeGraph::WriterCounts() const {
  const Counts* c = counts_.WriterLatest();
  return c != nullptr ? *c : Counts{};
}

void NativeGraph::SerializeRange(size_t from_vertex, size_t from_edge,
                                 uint64_t pin, std::string* out) const {
  const Counts* c = counts_.Read(pin);
  size_t end_v = c != nullptr ? c->vertices : 0;
  size_t end_e = c != nullptr ? c->edges : 0;
  for (size_t v = from_vertex; v < end_v; ++v) {
    const VertexRec* rec = vertices_.Read(v, pin);
    if (rec == nullptr) continue;
    out->push_back('V');
    valuecodec::EncodeValue(out, Value(int64_t(v)));
    valuecodec::EncodeValue(out, Value(label_names_[rec->label]));
    valuecodec::EncodePropertyMap(out, rec->props);
  }
  for (size_t e = from_edge; e < end_e; ++e) {
    const EdgeRec* rec = edges_.Read(e, pin);
    if (rec == nullptr || rec->removed) continue;
    out->push_back('E');
    valuecodec::EncodeValue(out, Value(label_names_[rec->label]));
    valuecodec::EncodeValue(out, Value(int64_t(rec->src)));
    valuecodec::EncodeValue(out, Value(int64_t(rec->dst)));
    valuecodec::EncodePropertyMap(out, rec->props);
  }
}

void NativeGraph::JournalLocked(char kind, const std::string& body) {
  if (journal_ == nullptr) return;
  std::string record;
  record.reserve(1 + body.size());
  record.push_back(kind);
  record.append(body);
  // Journal errors degrade to in-memory behaviour rather than failing the
  // write: the engines above have no durability contract to surface them.
  if (journal_->Append(/*type=*/1, record).ok() &&
      options_.durability.fsync_on_commit) {
    (void)journal_->Sync();
  }
}

void NativeGraph::MaybeCheckpointLocked() {
  if (options_.checkpoint_interval_writes == 0) return;
  if (++writes_since_checkpoint_ < options_.checkpoint_interval_writes) {
    return;
  }
  // Flush the dirty records: serialize everything written since the last
  // checkpoint into the store's snapshot buffer. The writer stalls —
  // producing the Figure 3 write-throughput dips — but unlike the old
  // coarse-latch design, readers keep running against their pinned
  // snapshots for the whole pause. A configurable floor models the fsync
  // an in-memory analogue doesn't pay.
  Stopwatch checkpoint_clock;
  SerializeRange(checkpointed_vertices_, checkpointed_edges_,
                 EpochManager::kWriterPin, &checkpoint_buffer_);
  Counts c = WriterCounts();
  checkpointed_vertices_ = c.vertices;
  checkpointed_edges_ = c.edges;
  if (store_file_ != nullptr) {
    // Durable mode: the stall is the genuine I/O — journal made durable,
    // the newly serialized records appended to the store file and
    // fsynced, journal reset — so the simulated fsync floor is skipped.
    if (journal_ != nullptr) (void)journal_->Sync();
    std::string_view fresh(checkpoint_buffer_);
    fresh.remove_prefix(
        std::min<size_t>(store_bytes_written_, fresh.size()));
    if (store_file_->Append(fresh).ok() && store_file_->Sync().ok()) {
      store_bytes_written_ = checkpoint_buffer_.size();
      if (journal_ != nullptr) {
        (void)journal_->ResetForCheckpoint(
            checkpoints_.load(std::memory_order_relaxed) + 2);
      }
    }
  } else {
    uint64_t target =
        std::min(writes_since_checkpoint_ *
                     options_.checkpoint_micros_per_dirty_write,
                 options_.checkpoint_max_pause_micros);
    uint64_t spent = checkpoint_clock.ElapsedMicros();
    if (spent < target) {
      std::this_thread::sleep_for(std::chrono::microseconds(target - spent));
    }
  }
  writes_since_checkpoint_ = 0;
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
}

Status NativeGraph::SnapshotTo(std::string* out) const {
  // Pinned-snapshot serialization: consistent even while updates stream in.
  EpochGuard guard;
  out->clear();
  SerializeRange(0, 0, ReadPin(guard), out);
  return Status::OK();
}

Status NativeGraph::RestoreFrom(std::string_view snapshot) {
  {
    EpochGuard guard;
    Counts c = WriterCounts();
    if (c.vertices != 0 || c.edges != 0) {
      return Status::InvalidArgument("restore requires an empty store");
    }
  }
  // One batch for the whole restore: the recovered store appears in a
  // single epoch, and per-record versions collapse in place.
  WriteBatch batch;
  std::string_view cursor = snapshot;
  while (!cursor.empty()) {
    char tag = cursor[0];
    cursor.remove_prefix(1);
    if (tag == 'V') {
      Value vid, label;
      PropertyMap props;
      if (!valuecodec::DecodeValue(&cursor, &vid) ||
          !valuecodec::DecodeValue(&cursor, &label) ||
          !valuecodec::DecodePropertyMap(&cursor, &props)) {
        return Status::Corruption("bad vertex record in snapshot");
      }
      GB_ASSIGN_OR_RETURN(VertexId created,
                          AddVertex(label.as_string(), props));
      if (created != VertexId(vid.as_int())) {
        return Status::Corruption("snapshot vertex ids not dense");
      }
    } else if (tag == 'E') {
      Value label, src, dst;
      PropertyMap props;
      if (!valuecodec::DecodeValue(&cursor, &label) ||
          !valuecodec::DecodeValue(&cursor, &src) ||
          !valuecodec::DecodeValue(&cursor, &dst) ||
          !valuecodec::DecodePropertyMap(&cursor, &props)) {
        return Status::Corruption("bad edge record in snapshot");
      }
      GB_RETURN_IF_ERROR(AddEdge(label.as_string(),
                                 VertexId(src.as_int()),
                                 VertexId(dst.as_int()), props)
                             .status());
    } else {
      return Status::Corruption("unknown snapshot record tag");
    }
  }
  return Status::OK();
}

Result<VertexId> NativeGraph::AddVertex(std::string_view label,
                                        const PropertyMap& props) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  uint32_t label_id = InternLabel(mgr, label);
  VertexId v = vertices_.size();
  // Maintain any unique index declared on (label, key): check every index
  // first so a violation publishes nothing.
  const std::vector<IndexHandle>* handles = indexes_.WriterLatest();
  if (handles != nullptr) {
    for (const IndexHandle& h : *handles) {
      if (h.label != label_id) continue;
      const Value& value = props.Get(h.key);
      if (value.is_null()) continue;
      if (h.map->Find(value, EpochManager::kWriterPin) != nullptr) {
        return Status::AlreadyExists("unique index violation on " + h.key);
      }
    }
    for (const IndexHandle& h : *handles) {
      if (h.label != label_id) continue;
      const Value& value = props.Get(h.key);
      if (value.is_null()) continue;
      h.map->Insert(mgr, value, v);
    }
  }
  vertices_.Append(mgr, VertexRec{label_id, props, {}});
  uint64_t added = 64;
  for (const auto& [k, val] : props.entries()) {
    added += k.size() + ValueFootprint(val);
  }
  counts_.Publish(mgr, [added](Counts& c) {
    ++c.vertices;
    c.bytes += added;
  });
  if (journal_ != nullptr) {
    std::string body;
    valuecodec::EncodeValue(&body, Value(int64_t(v)));
    valuecodec::EncodeValue(&body, Value(label));
    valuecodec::EncodePropertyMap(&body, props);
    JournalLocked('V', body);
  }
  MaybeCheckpointLocked();
  return v;
}

Result<EdgeId> NativeGraph::AddEdge(std::string_view label, VertexId src,
                                    VertexId dst, const PropertyMap& props) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  if (src >= vertices_.size() || dst >= vertices_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  uint32_t label_id = InternLabel(mgr, label);
  EdgeId e = edges_.size();
  edges_.Append(mgr, EdgeRec{label_id, src, dst, props, false});
  // Index-free adjacency: both endpoint records get a direct pointer.
  // The mutated records are copy-on-write versions; concurrent readers
  // keep traversing the adjacency of their pinned epoch.
  vertices_.Publish(mgr, src, [&](VertexRec& rec) {
    GroupFor(rec, label_id).out.push_back(Neighbor{dst, e});
  });
  vertices_.Publish(mgr, dst, [&](VertexRec& rec) {
    GroupFor(rec, label_id).in.push_back(Neighbor{src, e});
  });
  uint64_t added = 48 + 2 * sizeof(Neighbor);
  for (const auto& [k, val] : props.entries()) {
    added += k.size() + ValueFootprint(val);
  }
  counts_.Publish(mgr, [added](Counts& c) {
    ++c.edges;
    c.bytes += added;
  });
  if (journal_ != nullptr) {
    std::string body;
    valuecodec::EncodeValue(&body, Value(label));
    valuecodec::EncodeValue(&body, Value(int64_t(src)));
    valuecodec::EncodeValue(&body, Value(int64_t(dst)));
    valuecodec::EncodePropertyMap(&body, props);
    JournalLocked('E', body);
  }
  MaybeCheckpointLocked();
  return e;
}

Status NativeGraph::GetVertex(VertexId v, std::string* label,
                              PropertyMap* props) const {
  EpochGuard guard;
  const VertexRec* rec = vertices_.Read(v, ReadPin(guard));
  if (rec == nullptr) return Status::NotFound("vertex");
  if (label != nullptr) *label = label_names_[rec->label];
  if (props != nullptr) *props = rec->props;
  return Status::OK();
}

Status NativeGraph::GetEdge(EdgeId e, std::string* label, VertexId* src,
                            VertexId* dst, PropertyMap* props) const {
  EpochGuard guard;
  const EdgeRec* rec = edges_.Read(e, ReadPin(guard));
  if (rec == nullptr || rec->removed) return Status::NotFound("edge");
  if (label != nullptr) *label = label_names_[rec->label];
  if (src != nullptr) *src = rec->src;
  if (dst != nullptr) *dst = rec->dst;
  if (props != nullptr) *props = rec->props;
  return Status::OK();
}

Result<Value> NativeGraph::VertexProperty(VertexId v,
                                          std::string_view key) const {
  EpochGuard guard;
  const VertexRec* rec = vertices_.Read(v, ReadPin(guard));
  if (rec == nullptr) return Status::NotFound("vertex");
  return rec->props.Get(key);
}

Status NativeGraph::SetVertexProperty(VertexId v, std::string_view key,
                                      const Value& value) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  if (v >= vertices_.size()) return Status::NotFound("vertex");
  vertices_.Publish(mgr, v,
                    [&](VertexRec& rec) { rec.props.Set(key, value); });
  if (journal_ != nullptr) {
    std::string body;
    valuecodec::EncodeValue(&body, Value(int64_t(v)));
    valuecodec::EncodeValue(&body, Value(key));
    valuecodec::EncodeValue(&body, value);
    JournalLocked('P', body);
  }
  MaybeCheckpointLocked();
  return Status::OK();
}

Result<std::vector<Neighbor>> NativeGraph::Neighbors(
    VertexId v, std::string_view edge_label, Direction dir) const {
  EpochGuard guard;
  const uint64_t pin = ReadPin(guard);
  const VertexRec* rec = vertices_.Read(v, pin);
  if (rec == nullptr) return Status::NotFound("vertex");
  std::vector<Neighbor> out;
  int wanted = edge_label.empty() ? -2 : LookupLabel(edge_label, pin);
  if (wanted == -1) return out;  // label never seen: no edges
  for (const AdjGroup& g : rec->adj) {
    if (wanted != -2 && int(g.edge_label) != wanted) continue;
    if (dir == Direction::kOut || dir == Direction::kBoth) {
      out.insert(out.end(), g.out.begin(), g.out.end());
    }
    if (dir == Direction::kIn || dir == Direction::kBoth) {
      out.insert(out.end(), g.in.begin(), g.in.end());
    }
  }
  return out;
}

Status NativeGraph::CreateUniqueIndex(std::string_view label,
                                      std::string_view key) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  uint32_t label_id = InternLabel(mgr, label);
  const std::vector<IndexHandle>* handles = indexes_.WriterLatest();
  if (handles != nullptr) {
    for (const IndexHandle& h : *handles) {
      if (h.label == label_id && h.key == key) {
        return Status::OK();  // idempotent
      }
    }
  }
  // Back-fill off to the side; the handle is only published when the
  // whole back-fill succeeds, so a duplicate leaves no trace.
  auto map = std::make_unique<ValueIndex>();
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    const VertexRec* rec = vertices_.WriterLatest(v);
    if (rec == nullptr || rec->label != label_id) continue;
    const Value& value = rec->props.Get(key);
    if (value.is_null()) continue;
    if (!map->Insert(mgr, value, v)) {
      return Status::AlreadyExists("existing duplicate blocks unique index");
    }
  }
  index_storage_.push_back(std::move(map));
  ValueIndex* published = index_storage_.back().get();
  indexes_.Publish(mgr, [&](std::vector<IndexHandle>& hs) {
    hs.push_back(IndexHandle{label_id, std::string(key), published});
  });
  return Status::OK();
}

Result<VertexId> NativeGraph::FindVertex(std::string_view label,
                                         std::string_view key,
                                         const Value& value) const {
  EpochGuard guard;
  const uint64_t pin = ReadPin(guard);
  int label_id = LookupLabel(label, pin);
  if (label_id < 0) return Status::NotFound("label");
  const std::vector<IndexHandle>* handles = indexes_.Read(pin);
  if (handles != nullptr) {
    for (const IndexHandle& h : *handles) {
      if (int(h.label) != label_id || h.key != key) continue;
      const VertexId* found = h.map->Find(value, pin);
      if (found == nullptr) return Status::NotFound("vertex");
      return *found;
    }
  }
  // No index: linear scan (the expensive path the paper's indexing rule
  // exists to avoid).
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    const VertexRec* rec = vertices_.Read(v, pin);
    if (rec != nullptr && int(rec->label) == label_id &&
        rec->props.Get(key) == value) {
      return v;
    }
  }
  return Status::NotFound("vertex");
}

std::vector<VertexId> NativeGraph::VerticesByLabel(
    std::string_view label) const {
  EpochGuard guard;
  const uint64_t pin = ReadPin(guard);
  std::vector<VertexId> out;
  int wanted = label.empty() ? -2 : LookupLabel(label, pin);
  if (wanted == -1) return out;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    const VertexRec* rec = vertices_.Read(v, pin);
    if (rec == nullptr) continue;
    if (wanted == -2 || int(rec->label) == wanted) out.push_back(v);
  }
  return out;
}

uint64_t NativeGraph::VertexCount() const {
  EpochGuard guard;
  const Counts* c = counts_.Read(ReadPin(guard));
  return c != nullptr ? c->vertices : 0;
}

uint64_t NativeGraph::EdgeCount() const {
  EpochGuard guard;
  const Counts* c = counts_.Read(ReadPin(guard));
  return c != nullptr ? c->edges - c->removed_edges : 0;
}

Status NativeGraph::RemoveEdge(std::string_view label, VertexId src,
                               VertexId dst) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  if (src >= vertices_.size() || dst >= vertices_.size()) {
    return Status::NotFound("vertex");
  }
  int label_id = LookupLabel(label, EpochManager::kWriterPin);
  if (label_id < 0) return Status::NotFound("edge");
  // Locate one live edge between the endpoints in either orientation.
  const VertexRec* srec = vertices_.WriterLatest(src);
  if (srec == nullptr) return Status::NotFound("vertex");
  EdgeId eid = 0;
  bool found = false;
  for (const AdjGroup& g : srec->adj) {
    if (int(g.edge_label) != label_id) continue;
    for (const Neighbor& n : g.out) {
      if (n.vertex == dst) {
        eid = n.edge;
        found = true;
        break;
      }
    }
    if (found) break;
    for (const Neighbor& n : g.in) {
      if (n.vertex == dst) {
        eid = n.edge;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) return Status::NotFound("edge");
  const EdgeRec* erec = edges_.WriterLatest(eid);
  const VertexId esrc = erec->src;
  const VertexId edst = erec->dst;
  const uint32_t elabel = erec->label;
  auto unlink = [eid](std::vector<Neighbor>& list) {
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->edge == eid) {
        list.erase(it);
        return;
      }
    }
  };
  edges_.Publish(mgr, eid, [](EdgeRec& rec) { rec.removed = true; });
  vertices_.Publish(mgr, esrc, [&](VertexRec& rec) {
    unlink(GroupFor(rec, elabel).out);
  });
  vertices_.Publish(mgr, edst, [&](VertexRec& rec) {
    unlink(GroupFor(rec, elabel).in);
  });
  counts_.Publish(mgr, [](Counts& c) {
    ++c.removed_edges;
    c.bytes -= 48 + 2 * sizeof(Neighbor);
  });
  if (journal_ != nullptr) {
    std::string body;
    valuecodec::EncodeValue(&body, Value(label));
    valuecodec::EncodeValue(&body, Value(int64_t(esrc)));
    valuecodec::EncodeValue(&body, Value(int64_t(edst)));
    JournalLocked('R', body);
  }
  MaybeCheckpointLocked();
  return Status::OK();
}

uint64_t NativeGraph::ApproximateSizeBytes() const {
  EpochGuard guard;
  const Counts* c = counts_.Read(ReadPin(guard));
  return c != nullptr ? c->bytes : 0;
}

Result<int> NativeGraph::ShortestPathLength(
    VertexId a, VertexId b, std::string_view edge_label) const {
  EpochGuard guard;
  const uint64_t pin = ReadPin(guard);
  if (vertices_.Read(a, pin) == nullptr ||
      vertices_.Read(b, pin) == nullptr) {
    return Status::NotFound("vertex");
  }
  if (a == b) return 0;
  int wanted = LookupLabel(edge_label, pin);
  if (wanted < 0) return -1;

  // Bidirectional BFS over undirected adjacency, alternating expansion of
  // the smaller frontier. Runs directly on the in-record adjacency lists
  // of the pinned epoch: the whole traversal sees one consistent graph.
  std::unordered_map<VertexId, int> dist_a{{a, 0}}, dist_b{{b, 0}};
  std::deque<VertexId> frontier_a{a}, frontier_b{b};

  auto expand = [&](std::deque<VertexId>& frontier,
                    std::unordered_map<VertexId, int>& dist,
                    const std::unordered_map<VertexId, int>& other,
                    int* meet) {
    size_t level_size = frontier.size();
    for (size_t i = 0; i < level_size; ++i) {
      VertexId v = frontier.front();
      frontier.pop_front();
      int d = dist[v];
      const VertexRec* rec = vertices_.Read(v, pin);
      if (rec == nullptr) continue;
      for (const AdjGroup& g : rec->adj) {
        if (int(g.edge_label) != wanted) continue;
        for (const auto* side : {&g.out, &g.in}) {
          for (const Neighbor& n : *side) {
            if (dist.count(n.vertex)) continue;
            dist[n.vertex] = d + 1;
            auto hit = other.find(n.vertex);
            if (hit != other.end()) {
              *meet = d + 1 + hit->second;
              return true;
            }
            frontier.push_back(n.vertex);
          }
        }
      }
    }
    return false;
  };

  int meet = -1;
  while (!frontier_a.empty() && !frontier_b.empty()) {
    bool found = frontier_a.size() <= frontier_b.size()
                     ? expand(frontier_a, dist_a, dist_b, &meet)
                     : expand(frontier_b, dist_b, dist_a, &meet);
    if (found) return meet;
  }
  return -1;
}

}  // namespace graphbench
