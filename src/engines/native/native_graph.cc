#include "engines/native/native_graph.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_set>

#include "graph/value_codec.h"
#include "storage/heap_table.h"  // ValueFootprint
#include "util/stopwatch.h"

namespace graphbench {

NativeGraph::NativeGraph(NativeGraphOptions options) : options_(options) {}

uint32_t NativeGraph::InternLabel(std::string_view label) {
  auto it = label_ids_.find(std::string(label));
  if (it != label_ids_.end()) return it->second;
  uint32_t id = uint32_t(label_names_.size());
  label_names_.emplace_back(label);
  label_ids_.emplace(std::string(label), id);
  return id;
}

int NativeGraph::LookupLabel(std::string_view label) const {
  auto it = label_ids_.find(std::string(label));
  return it == label_ids_.end() ? -1 : int(it->second);
}

NativeGraph::AdjGroup& NativeGraph::GroupFor(VertexRec& rec,
                                             uint32_t edge_label) {
  for (AdjGroup& g : rec.adj) {
    if (g.edge_label == edge_label) return g;
  }
  rec.adj.push_back(AdjGroup{edge_label, {}, {}});
  return rec.adj.back();
}

void NativeGraph::SerializeRecentLocked(size_t from_vertex,
                                        size_t from_edge,
                                        std::string* out) const {
  for (size_t v = from_vertex; v < vertices_.size(); ++v) {
    out->push_back('V');
    valuecodec::EncodeValue(out, Value(int64_t(v)));
    valuecodec::EncodeValue(out,
                            Value(label_names_[vertices_[v].label]));
    valuecodec::EncodePropertyMap(out, vertices_[v].props);
  }
  for (size_t e = from_edge; e < edges_.size(); ++e) {
    if (edges_[e].removed) continue;
    out->push_back('E');
    valuecodec::EncodeValue(out, Value(label_names_[edges_[e].label]));
    valuecodec::EncodeValue(out, Value(int64_t(edges_[e].src)));
    valuecodec::EncodeValue(out, Value(int64_t(edges_[e].dst)));
    valuecodec::EncodePropertyMap(out, edges_[e].props);
  }
}

void NativeGraph::MaybeCheckpointLocked() {
  if (options_.checkpoint_interval_writes == 0) return;
  if (++writes_since_checkpoint_ < options_.checkpoint_interval_writes) {
    return;
  }
  // Flush the dirty records: serialize everything written since the last
  // checkpoint into the store's snapshot buffer while holding the latch
  // exclusively — readers and the writer stall, producing the Figure 3
  // throughput dips. A configurable floor models the fsync an in-memory
  // analogue doesn't pay.
  Stopwatch checkpoint_clock;
  SerializeRecentLocked(checkpointed_vertices_, checkpointed_edges_,
                        &checkpoint_buffer_);
  checkpointed_vertices_ = vertices_.size();
  checkpointed_edges_ = edges_.size();
  uint64_t target =
      std::min(writes_since_checkpoint_ *
                   options_.checkpoint_micros_per_dirty_write,
               options_.checkpoint_max_pause_micros);
  uint64_t spent = checkpoint_clock.ElapsedMicros();
  if (spent < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(target - spent));
  }
  writes_since_checkpoint_ = 0;
  ++checkpoints_;
}

Status NativeGraph::SnapshotTo(std::string* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  out->clear();
  SerializeRecentLocked(0, 0, out);
  return Status::OK();
}

Status NativeGraph::RestoreFrom(std::string_view snapshot) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!vertices_.empty() || !edges_.empty()) {
      return Status::InvalidArgument("restore requires an empty store");
    }
  }
  std::string_view cursor = snapshot;
  while (!cursor.empty()) {
    char tag = cursor[0];
    cursor.remove_prefix(1);
    if (tag == 'V') {
      Value vid, label;
      PropertyMap props;
      if (!valuecodec::DecodeValue(&cursor, &vid) ||
          !valuecodec::DecodeValue(&cursor, &label) ||
          !valuecodec::DecodePropertyMap(&cursor, &props)) {
        return Status::Corruption("bad vertex record in snapshot");
      }
      GB_ASSIGN_OR_RETURN(VertexId created,
                          AddVertex(label.as_string(), props));
      if (created != VertexId(vid.as_int())) {
        return Status::Corruption("snapshot vertex ids not dense");
      }
    } else if (tag == 'E') {
      Value label, src, dst;
      PropertyMap props;
      if (!valuecodec::DecodeValue(&cursor, &label) ||
          !valuecodec::DecodeValue(&cursor, &src) ||
          !valuecodec::DecodeValue(&cursor, &dst) ||
          !valuecodec::DecodePropertyMap(&cursor, &props)) {
        return Status::Corruption("bad edge record in snapshot");
      }
      GB_RETURN_IF_ERROR(AddEdge(label.as_string(),
                                 VertexId(src.as_int()),
                                 VertexId(dst.as_int()), props)
                             .status());
    } else {
      return Status::Corruption("unknown snapshot record tag");
    }
  }
  return Status::OK();
}

Result<VertexId> NativeGraph::AddVertex(std::string_view label,
                                        const PropertyMap& props) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint32_t label_id = InternLabel(label);
  VertexId v = vertices_.size();
  // Maintain any unique index declared on (label, key).
  for (auto& [index_key, map] : indexes_) {
    if (index_key.first != label_id) continue;
    const Value& value = props.Get(index_key.second);
    if (value.is_null()) continue;
    auto [it, inserted] = map.emplace(value, v);
    if (!inserted) {
      return Status::AlreadyExists("unique index violation on " +
                                   index_key.second);
    }
  }
  vertices_.push_back(VertexRec{label_id, props, {}});
  bytes_ += 64;
  for (const auto& [k, val] : props.entries()) {
    bytes_ += k.size() + ValueFootprint(val);
  }
  MaybeCheckpointLocked();
  return v;
}

Result<EdgeId> NativeGraph::AddEdge(std::string_view label, VertexId src,
                                    VertexId dst, const PropertyMap& props) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (src >= vertices_.size() || dst >= vertices_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  uint32_t label_id = InternLabel(label);
  EdgeId e = edges_.size();
  edges_.push_back(EdgeRec{label_id, src, dst, props});
  // Index-free adjacency: both endpoint records get a direct pointer.
  GroupFor(vertices_[src], label_id).out.push_back(Neighbor{dst, e});
  GroupFor(vertices_[dst], label_id).in.push_back(Neighbor{src, e});
  bytes_ += 48 + 2 * sizeof(Neighbor);
  for (const auto& [k, val] : props.entries()) {
    bytes_ += k.size() + ValueFootprint(val);
  }
  MaybeCheckpointLocked();
  return e;
}

Status NativeGraph::GetVertex(VertexId v, std::string* label,
                              PropertyMap* props) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (v >= vertices_.size()) return Status::NotFound("vertex");
  const VertexRec& rec = vertices_[v];
  if (label != nullptr) *label = label_names_[rec.label];
  if (props != nullptr) *props = rec.props;
  return Status::OK();
}

Status NativeGraph::GetEdge(EdgeId e, std::string* label, VertexId* src,
                            VertexId* dst, PropertyMap* props) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (e >= edges_.size() || edges_[e].removed) {
    return Status::NotFound("edge");
  }
  const EdgeRec& rec = edges_[e];
  if (label != nullptr) *label = label_names_[rec.label];
  if (src != nullptr) *src = rec.src;
  if (dst != nullptr) *dst = rec.dst;
  if (props != nullptr) *props = rec.props;
  return Status::OK();
}

Result<Value> NativeGraph::VertexProperty(VertexId v,
                                          std::string_view key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (v >= vertices_.size()) return Status::NotFound("vertex");
  return vertices_[v].props.Get(key);
}

Status NativeGraph::SetVertexProperty(VertexId v, std::string_view key,
                                      const Value& value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (v >= vertices_.size()) return Status::NotFound("vertex");
  vertices_[v].props.Set(key, value);
  MaybeCheckpointLocked();
  return Status::OK();
}

Result<std::vector<Neighbor>> NativeGraph::Neighbors(
    VertexId v, std::string_view edge_label, Direction dir) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (v >= vertices_.size()) return Status::NotFound("vertex");
  std::vector<Neighbor> out;
  int wanted = edge_label.empty() ? -2 : LookupLabel(edge_label);
  if (wanted == -1) return out;  // label never seen: no edges
  for (const AdjGroup& g : vertices_[v].adj) {
    if (wanted != -2 && int(g.edge_label) != wanted) continue;
    if (dir == Direction::kOut || dir == Direction::kBoth) {
      out.insert(out.end(), g.out.begin(), g.out.end());
    }
    if (dir == Direction::kIn || dir == Direction::kBoth) {
      out.insert(out.end(), g.in.begin(), g.in.end());
    }
  }
  return out;
}

Status NativeGraph::CreateUniqueIndex(std::string_view label,
                                      std::string_view key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  uint32_t label_id = InternLabel(label);
  auto index_key = std::make_pair(label_id, std::string(key));
  auto [it, inserted] = indexes_.try_emplace(index_key);
  if (!inserted) return Status::OK();  // idempotent
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    const VertexRec& rec = vertices_[v];
    if (rec.label != label_id) continue;
    const Value& value = rec.props.Get(key);
    if (value.is_null()) continue;
    auto [pos, fresh] = it->second.emplace(value, v);
    if (!fresh) {
      indexes_.erase(it);
      return Status::AlreadyExists("existing duplicate blocks unique index");
    }
  }
  return Status::OK();
}

Result<VertexId> NativeGraph::FindVertex(std::string_view label,
                                         std::string_view key,
                                         const Value& value) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  int label_id = LookupLabel(label);
  if (label_id < 0) return Status::NotFound("label");
  auto it = indexes_.find(std::make_pair(uint32_t(label_id),
                                         std::string(key)));
  if (it != indexes_.end()) {
    auto pos = it->second.find(value);
    if (pos == it->second.end()) return Status::NotFound("vertex");
    return pos->second;
  }
  // No index: linear scan (the expensive path the paper's indexing rule
  // exists to avoid).
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (int(vertices_[v].label) == label_id &&
        vertices_[v].props.Get(key) == value) {
      return v;
    }
  }
  return Status::NotFound("vertex");
}

std::vector<VertexId> NativeGraph::VerticesByLabel(
    std::string_view label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<VertexId> out;
  int wanted = label.empty() ? -2 : LookupLabel(label);
  if (wanted == -1) return out;
  for (VertexId v = 0; v < vertices_.size(); ++v) {
    if (wanted == -2 || int(vertices_[v].label) == wanted) out.push_back(v);
  }
  return out;
}

uint64_t NativeGraph::VertexCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return vertices_.size();
}

uint64_t NativeGraph::EdgeCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return edges_.size() - removed_edges_;
}

Status NativeGraph::RemoveEdge(std::string_view label, VertexId src,
                               VertexId dst) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (src >= vertices_.size() || dst >= vertices_.size()) {
    return Status::NotFound("vertex");
  }
  int label_id = LookupLabel(label);
  if (label_id < 0) return Status::NotFound("edge");
  // Locate one live edge between the endpoints in either orientation.
  EdgeId eid = 0;
  bool found = false;
  for (const AdjGroup& g : vertices_[src].adj) {
    if (int(g.edge_label) != label_id) continue;
    for (const Neighbor& n : g.out) {
      if (n.vertex == dst) {
        eid = n.edge;
        found = true;
        break;
      }
    }
    if (found) break;
    for (const Neighbor& n : g.in) {
      if (n.vertex == dst) {
        eid = n.edge;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) return Status::NotFound("edge");
  EdgeRec& rec = edges_[eid];
  auto unlink = [eid](std::vector<Neighbor>& list) {
    for (auto it = list.begin(); it != list.end(); ++it) {
      if (it->edge == eid) {
        list.erase(it);
        return;
      }
    }
  };
  unlink(GroupFor(vertices_[rec.src], rec.label).out);
  unlink(GroupFor(vertices_[rec.dst], rec.label).in);
  rec.removed = true;
  ++removed_edges_;
  bytes_ -= 48 + 2 * sizeof(Neighbor);
  MaybeCheckpointLocked();
  return Status::OK();
}

uint64_t NativeGraph::ApproximateSizeBytes() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return bytes_;
}

Result<int> NativeGraph::ShortestPathLength(
    VertexId a, VertexId b, std::string_view edge_label) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (a >= vertices_.size() || b >= vertices_.size()) {
    return Status::NotFound("vertex");
  }
  if (a == b) return 0;
  int wanted = LookupLabel(edge_label);
  if (wanted < 0) return -1;

  // Bidirectional BFS over undirected adjacency, alternating expansion of
  // the smaller frontier. Runs directly on the in-record adjacency lists.
  std::unordered_map<VertexId, int> dist_a{{a, 0}}, dist_b{{b, 0}};
  std::deque<VertexId> frontier_a{a}, frontier_b{b};

  auto expand = [&](std::deque<VertexId>& frontier,
                    std::unordered_map<VertexId, int>& dist,
                    const std::unordered_map<VertexId, int>& other,
                    int* meet) {
    size_t level_size = frontier.size();
    for (size_t i = 0; i < level_size; ++i) {
      VertexId v = frontier.front();
      frontier.pop_front();
      int d = dist[v];
      for (const AdjGroup& g : vertices_[v].adj) {
        if (int(g.edge_label) != wanted) continue;
        for (const auto* side : {&g.out, &g.in}) {
          for (const Neighbor& n : *side) {
            if (dist.count(n.vertex)) continue;
            dist[n.vertex] = d + 1;
            auto hit = other.find(n.vertex);
            if (hit != other.end()) {
              *meet = d + 1 + hit->second;
              return true;
            }
            frontier.push_back(n.vertex);
          }
        }
      }
    }
    return false;
  };

  int meet = -1;
  while (!frontier_a.empty() && !frontier_b.empty()) {
    bool found = frontier_a.size() <= frontier_b.size()
                     ? expand(frontier_a, dist_a, dist_b, &meet)
                     : expand(frontier_b, dist_b, dist_a, &meet);
    if (found) return meet;
  }
  return -1;
}

}  // namespace graphbench
