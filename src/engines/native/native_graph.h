#ifndef GRAPHBENCH_ENGINES_NATIVE_NATIVE_GRAPH_H_
#define GRAPHBENCH_ENGINES_NATIVE_NATIVE_GRAPH_H_

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "concurrency/epoch.h"
#include "concurrency/versioned.h"
#include "graph/property_graph.h"
#include "storage/durability.h"
#include "storage/wal.h"

namespace graphbench {

/// Tuning knobs for the native store.
struct NativeGraphOptions {
  /// Run a checkpoint every N writes (0 disables). Neo4j 2.3's periodic
  /// checkpointing is what causes the sudden write-throughput drops the
  /// paper observes in Figure 3. The checkpoint is real work: the records
  /// written since the last checkpoint are serialized into the store's
  /// snapshot buffer while the writer is stalled.
  uint64_t checkpoint_interval_writes = 20000;
  /// Floor on the stall per checkpointed write, modelling the fsync cost
  /// a memory-resident analogue doesn't pay. Applied on top of the real
  /// serialization work, capped by `max_pause_micros`.
  uint64_t checkpoint_micros_per_dirty_write = 3;
  uint64_t checkpoint_max_pause_micros = 100000;
  /// Real durability (--durable): every write appends a journal record
  /// (optionally fsynced per commit), and the checkpoint appends the
  /// newly serialized records to the store file and fsyncs it instead of
  /// sleeping the simulated floor — the Figure 3 dips become genuine
  /// fsync stalls.
  storage::DurabilityOptions durability;
};

/// Specialized graph database with native graph storage: the Neo4j analog.
///
/// Vertex records embed adjacency lists grouped by edge label ("index-free
/// adjacency"): expanding a vertex's neighbourhood dereferences in-record
/// pointers and never consults an index, so traversal latency is
/// independent of graph size — the property §4.2 credits Neo4j with.
///
/// Concurrency: single writer (serialized by a plain mutex), lock-free
/// readers. Vertex and edge records live in epoch-versioned slot tables:
/// a mutation installs a copy-on-write record tagged with the write
/// epoch, readers pin an epoch and traverse the version visible at their
/// pin. Readers therefore never block — not even during the checkpoint
/// stall, which under the old coarse shared_mutex froze every read for up
/// to `checkpoint_max_pause_micros`.
class NativeGraph : public PropertyGraph {
 public:
  explicit NativeGraph(NativeGraphOptions options = {});

  NativeGraph(const NativeGraph&) = delete;
  NativeGraph& operator=(const NativeGraph&) = delete;

  Result<VertexId> AddVertex(std::string_view label,
                             const PropertyMap& props) override;
  Result<EdgeId> AddEdge(std::string_view label, VertexId src, VertexId dst,
                         const PropertyMap& props) override;
  Status GetVertex(VertexId v, std::string* label,
                   PropertyMap* props) const override;
  Status GetEdge(EdgeId e, std::string* label, VertexId* src, VertexId* dst,
                 PropertyMap* props) const override;
  Result<Value> VertexProperty(VertexId v,
                               std::string_view key) const override;
  Status SetVertexProperty(VertexId v, std::string_view key,
                           const Value& value) override;
  Result<std::vector<Neighbor>> Neighbors(VertexId v,
                                          std::string_view edge_label,
                                          Direction dir) const override;
  Result<VertexId> FindVertex(std::string_view label, std::string_view key,
                              const Value& value) const override;
  std::vector<VertexId> VerticesByLabel(
      std::string_view label) const override;
  uint64_t VertexCount() const override;
  uint64_t EdgeCount() const override;
  uint64_t ApproximateSizeBytes() const override;
  std::string name() const override { return "native-graph"; }

  /// Declares a unique index on (vertex label, property). The benchmark
  /// creates one on every label's "id" property, per the paper's fairness
  /// rule (§4.1). Existing vertices are back-filled.
  Status CreateUniqueIndex(std::string_view label, std::string_view key);

  /// Removes one `label` edge between src and dst, trying both
  /// orientations (SNB `knows` is undirected). The edge record is
  /// tombstoned — ids stay dense — and both adjacency pointers are
  /// unlinked. NotFound when no such edge exists.
  Status RemoveEdge(std::string_view label, VertexId src, VertexId dst);

  /// Unweighted single-pair shortest-path length over `edge_label`
  /// (treated as undirected, SNB `knows` semantics). -1 when unreachable.
  /// Runs directly on adjacency records (what Cypher's shortestPath()
  /// compiles to). Bidirectional BFS.
  Result<int> ShortestPathLength(VertexId a, VertexId b,
                                 std::string_view edge_label) const;

  /// Number of checkpoints taken so far (observable for tests/benchmarks).
  uint64_t checkpoints_taken() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }

  /// Serializes the whole store (labels, vertices with properties, edges)
  /// into `out` — the store-file a restart would recover from. Reads a
  /// pinned snapshot; safe (and consistent) while updates stream in.
  Status SnapshotTo(std::string* out) const;

  /// Rebuilds this (empty) store from a snapshot. Fails on a non-empty
  /// store or corrupt input. The whole restore publishes as one epoch.
  Status RestoreFrom(std::string_view snapshot);

 private:
  struct AdjGroup {
    uint32_t edge_label;
    std::vector<Neighbor> out;
    std::vector<Neighbor> in;
  };
  struct VertexRec {
    uint32_t label = 0;
    PropertyMap props;
    std::vector<AdjGroup> adj;  // sorted insertion order; few edge labels
  };
  struct EdgeRec {
    uint32_t label = 0;
    VertexId src = 0;
    VertexId dst = 0;
    PropertyMap props;
    bool removed = false;  // tombstone; record kept so edge ids stay dense
  };
  /// Epoch-versioned aggregate counters: readers see the totals of their
  /// pinned snapshot.
  struct Counts {
    uint64_t vertices = 0;
    uint64_t edges = 0;
    uint64_t removed_edges = 0;
    uint64_t bytes = 0;
  };
  using ValueIndex =
      concurrency::EpochHashMap<Value, VertexId, ValueHash>;
  struct IndexHandle {
    uint32_t label;
    std::string key;
    ValueIndex* map;  // owned by index_storage_
  };

  // Interns `label`, assigning the next id on first use. Caller holds
  // write_mu_.
  uint32_t InternLabel(concurrency::EpochManager& mgr,
                       std::string_view label);
  // Returns the label id visible at `pin`, or -1.
  int LookupLabel(std::string_view label, uint64_t pin) const;
  static AdjGroup& GroupFor(VertexRec& rec, uint32_t edge_label);
  Counts WriterCounts() const;
  // Checkpoint bookkeeping; called with write_mu_ held.
  void MaybeCheckpointLocked();
  // Appends one journal record in durable mode (no-op otherwise); called
  // with write_mu_ held at the end of each successful write.
  void JournalLocked(char kind, const std::string& body);

  // Serializes records [from_vertex, from_edge) visible at `pin` into
  // `out`.
  void SerializeRange(size_t from_vertex, size_t from_edge, uint64_t pin,
                      std::string* out) const;

  NativeGraphOptions options_;
  std::mutex write_mu_;  // serializes writers; readers never take it

  concurrency::VersionedTable<VertexRec> vertices_;
  concurrency::VersionedTable<EdgeRec> edges_;
  concurrency::VersionedCell<Counts> counts_;
  concurrency::EpochHashMap<std::string, uint32_t> label_ids_;
  concurrency::StableVec<std::string> label_names_;
  // Unique indexes: the handle list is republished on schema changes;
  // the per-index maps are insert-only and epoch-tagged.
  concurrency::VersionedCell<std::vector<IndexHandle>> indexes_;
  std::deque<std::unique_ptr<ValueIndex>> index_storage_;

  // Incremental checkpoint state (writer-only, under write_mu_):
  // everything before these marks has been serialized into
  // checkpoint_buffer_.
  size_t checkpointed_vertices_ = 0;
  size_t checkpointed_edges_ = 0;
  std::string checkpoint_buffer_;
  uint64_t writes_since_checkpoint_ = 0;
  std::atomic<uint64_t> checkpoints_{0};

  // Durable mode (writer-only, under write_mu_): the WAL journal and the
  // store file the checkpoint appends to. Null when durability is off or
  // the files failed to open (degrades to the simulated checkpoint).
  std::unique_ptr<storage::Wal> journal_;
  std::unique_ptr<storage::File> store_file_;
  uint64_t store_bytes_written_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_NATIVE_NATIVE_GRAPH_H_
