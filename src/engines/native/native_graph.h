#ifndef GRAPHBENCH_ENGINES_NATIVE_NATIVE_GRAPH_H_
#define GRAPHBENCH_ENGINES_NATIVE_NATIVE_GRAPH_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/property_graph.h"

namespace graphbench {

/// Tuning knobs for the native store.
struct NativeGraphOptions {
  /// Run a checkpoint every N writes (0 disables). Neo4j 2.3's periodic
  /// checkpointing is what causes the sudden write-throughput drops the
  /// paper observes in Figure 3. The checkpoint is real work: the records
  /// written since the last checkpoint are serialized into the store's
  /// snapshot buffer while the write latch is held exclusively.
  uint64_t checkpoint_interval_writes = 20000;
  /// Floor on the stall per checkpointed write, modelling the fsync cost
  /// a memory-resident analogue doesn't pay. Applied on top of the real
  /// serialization work, capped by `max_pause_micros`.
  uint64_t checkpoint_micros_per_dirty_write = 3;
  uint64_t checkpoint_max_pause_micros = 100000;
};

/// Specialized graph database with native graph storage: the Neo4j analog.
///
/// Vertex records embed adjacency lists grouped by edge label ("index-free
/// adjacency"): expanding a vertex's neighbourhood dereferences in-record
/// pointers and never consults an index, so traversal latency is
/// independent of graph size — the property §4.2 credits Neo4j with.
class NativeGraph : public PropertyGraph {
 public:
  explicit NativeGraph(NativeGraphOptions options = {});

  NativeGraph(const NativeGraph&) = delete;
  NativeGraph& operator=(const NativeGraph&) = delete;

  Result<VertexId> AddVertex(std::string_view label,
                             const PropertyMap& props) override;
  Result<EdgeId> AddEdge(std::string_view label, VertexId src, VertexId dst,
                         const PropertyMap& props) override;
  Status GetVertex(VertexId v, std::string* label,
                   PropertyMap* props) const override;
  Status GetEdge(EdgeId e, std::string* label, VertexId* src, VertexId* dst,
                 PropertyMap* props) const override;
  Result<Value> VertexProperty(VertexId v,
                               std::string_view key) const override;
  Status SetVertexProperty(VertexId v, std::string_view key,
                           const Value& value) override;
  Result<std::vector<Neighbor>> Neighbors(VertexId v,
                                          std::string_view edge_label,
                                          Direction dir) const override;
  Result<VertexId> FindVertex(std::string_view label, std::string_view key,
                              const Value& value) const override;
  std::vector<VertexId> VerticesByLabel(
      std::string_view label) const override;
  uint64_t VertexCount() const override;
  uint64_t EdgeCount() const override;
  uint64_t ApproximateSizeBytes() const override;
  std::string name() const override { return "native-graph"; }

  /// Declares a unique index on (vertex label, property). The benchmark
  /// creates one on every label's "id" property, per the paper's fairness
  /// rule (§4.1). Existing vertices are back-filled.
  Status CreateUniqueIndex(std::string_view label, std::string_view key);

  /// Removes one `label` edge between src and dst, trying both
  /// orientations (SNB `knows` is undirected). The edge record is
  /// tombstoned — ids stay dense — and both adjacency pointers are
  /// unlinked. NotFound when no such edge exists.
  Status RemoveEdge(std::string_view label, VertexId src, VertexId dst);

  /// Unweighted single-pair shortest-path length over `edge_label`
  /// (treated as undirected, SNB `knows` semantics). -1 when unreachable.
  /// Runs directly on adjacency records (what Cypher's shortestPath()
  /// compiles to). Bidirectional BFS.
  Result<int> ShortestPathLength(VertexId a, VertexId b,
                                 std::string_view edge_label) const;

  /// Number of checkpoints taken so far (observable for tests/benchmarks).
  uint64_t checkpoints_taken() const { return checkpoints_; }

  /// Serializes the whole store (labels, vertices with properties, edges)
  /// into `out` — the store-file a restart would recover from.
  Status SnapshotTo(std::string* out) const;

  /// Rebuilds this (empty) store from a snapshot, including unique
  /// indexes. Fails on a non-empty store or corrupt input.
  Status RestoreFrom(std::string_view snapshot);

 private:
  struct AdjGroup {
    uint32_t edge_label;
    std::vector<Neighbor> out;
    std::vector<Neighbor> in;
  };
  struct VertexRec {
    uint32_t label;
    PropertyMap props;
    std::vector<AdjGroup> adj;  // sorted insertion order; few edge labels
  };
  struct EdgeRec {
    uint32_t label;
    VertexId src;
    VertexId dst;
    PropertyMap props;
    bool removed = false;  // tombstone; record kept so edge ids stay dense
  };

  // Interns `label`, assigning the next id on first use. Caller holds mu_
  // exclusively.
  uint32_t InternLabel(std::string_view label);
  // Returns the label id or -1 without interning (shared lock suffices).
  int LookupLabel(std::string_view label) const;
  AdjGroup& GroupFor(VertexRec& rec, uint32_t edge_label);
  // Checkpoint bookkeeping; called with mu_ held exclusively.
  void MaybeCheckpointLocked();

  // Serializes records [from_vertex, from_edge) into the snapshot tail;
  // called by the checkpointer with mu_ held exclusively.
  void SerializeRecentLocked(size_t from_vertex, size_t from_edge,
                             std::string* out) const;

  NativeGraphOptions options_;
  mutable std::shared_mutex mu_;
  std::vector<VertexRec> vertices_;
  std::vector<EdgeRec> edges_;
  // Incremental checkpoint state: everything before these marks has been
  // serialized into checkpoint_buffer_.
  size_t checkpointed_vertices_ = 0;
  size_t checkpointed_edges_ = 0;
  std::string checkpoint_buffer_;
  std::unordered_map<std::string, uint32_t> label_ids_;
  std::vector<std::string> label_names_;
  // (label_id, property key) -> value -> vertex. Unique indexes only.
  std::map<std::pair<uint32_t, std::string>,
           std::unordered_map<Value, VertexId, ValueHash>>
      indexes_;
  uint64_t bytes_ = 0;
  uint64_t removed_edges_ = 0;
  uint64_t writes_since_checkpoint_ = 0;
  uint64_t checkpoints_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_NATIVE_NATIVE_GRAPH_H_
