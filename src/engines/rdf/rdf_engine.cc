#include "engines/rdf/rdf_engine.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "lang/sparql/parser.h"
#include "obs/profiler.h"

namespace graphbench {

RdfEngine::RdfEngine(int num_indexes) : store_(num_indexes) {}

Status RdfEngine::AddTriple(const Term& subject, std::string_view predicate,
                            const Term& object) {
  uint64_t s = subject.kind == Term::Kind::kIri
                   ? dict_.InternIri(subject.iri)
                   : dict_.InternLiteral(subject.literal);
  uint64_t p = dict_.InternIri(predicate);
  uint64_t o = object.kind == Term::Kind::kIri
                   ? dict_.InternIri(object.iri)
                   : dict_.InternLiteral(object.literal);
  Status st = store_.Insert(s, p, o);
  if (st.IsAlreadyExists()) return Status::OK();  // idempotent graph insert
  return st;
}

Status RdfEngine::RemoveTriple(const Term& subject,
                               std::string_view predicate,
                               const Term& object) {
  auto s = subject.kind == Term::Kind::kIri
               ? dict_.LookupIri(subject.iri)
               : dict_.LookupLiteral(subject.literal);
  auto p = dict_.LookupIri(predicate);
  auto o = object.kind == Term::Kind::kIri
               ? dict_.LookupIri(object.iri)
               : dict_.LookupLiteral(object.literal);
  if (!s || !p || !o) return Status::NotFound("triple term");
  return store_.Remove(*s, *p, *o);
}

void RdfEngine::EnablePlanCache(size_t capacity) {
  plan_cache_ =
      std::make_unique<lang::PlanCache<sparql::Query>>("sparql", capacity);
}

Result<RdfEngine::PreparedStatement> RdfEngine::Prepare(
    std::string_view sparql_text) {
  PreparedStatement prepared;
  prepared.text_ = std::string(sparql_text);
  if (plan_cache_ != nullptr) {
    if (auto cached = plan_cache_->Lookup(sparql_text)) {
      prepared.query_ = std::move(cached);
      return prepared;
    }
  }
  obs::OpTimer parse_op("parse");
  GB_ASSIGN_OR_RETURN(sparql::Query q, sparql::Parse(sparql_text));
  parse_op.Stop();
  auto shared = std::make_shared<const sparql::Query>(std::move(q));
  if (plan_cache_ != nullptr) plan_cache_->Insert(sparql_text, shared);
  prepared.query_ = std::move(shared);
  return prepared;
}

Result<QueryResult> RdfEngine::Execute(const PreparedStatement& prepared,
                                       const Params& params) {
  if (!prepared.valid()) {
    return Status::InvalidArgument("prepared statement is empty");
  }
  obs::OpTimer root_op("execute");
  if (plan_cache_ != nullptr) {
    // Extended-protocol model: every execution of a named statement goes
    // through the server's statement cache. A handle whose entry was
    // evicted re-seeds it — never a re-parse, the handle keeps the plan
    // alive.
    if (auto cached = plan_cache_->Lookup(prepared.text_)) {
      return ExecuteParsed(*cached, params);
    }
    plan_cache_->Insert(prepared.text_, prepared.query_);
  }
  return ExecuteParsed(*prepared.query_, params);
}

Result<QueryResult> RdfEngine::Execute(std::string_view sparql_text) {
  // Root phase: cumulative spans the whole query; self is whatever the
  // specific phases below do not account for.
  obs::OpTimer root_op("execute");
  if (plan_cache_ != nullptr) {
    if (auto cached = plan_cache_->Lookup(sparql_text)) {
      return ExecuteParsed(*cached, Params{});
    }
    obs::OpTimer cached_parse_op("parse");
    GB_ASSIGN_OR_RETURN(sparql::Query parsed, sparql::Parse(sparql_text));
    cached_parse_op.Stop();
    auto shared = std::make_shared<const sparql::Query>(std::move(parsed));
    plan_cache_->Insert(sparql_text, shared);
    return ExecuteParsed(*shared, Params{});
  }
  obs::OpTimer parse_op("parse");
  GB_ASSIGN_OR_RETURN(sparql::Query q, sparql::Parse(sparql_text));
  parse_op.Stop();
  return ExecuteParsed(q, Params{});
}

Result<QueryResult> RdfEngine::ExecuteParsed(const sparql::Query& q,
                                             const Params& params) {
  // LIMIT binds like any other parameter so one cached plan serves every
  // limit value.
  int64_t limit_bound = q.limit;
  if (!q.limit_param.empty()) {
    auto it = params.find(q.limit_param);
    if (it == params.end()) {
      return Status::InvalidArgument("missing parameter $" + q.limit_param);
    }
    if (!it->second.is_int()) {
      return Status::InvalidArgument("LIMIT parameter must be an integer");
    }
    limit_bound = it->second.as_int();
  }

  // Assign variable slots.
  std::unordered_map<std::string, int> var_slots;
  auto slot_of = [&var_slots](const std::string& name) {
    auto [it, inserted] =
        var_slots.emplace(name, int(var_slots.size()));
    return it->second;
  };

  std::vector<ResolvedPattern> patterns;
  patterns.reserve(q.patterns.size());
  bool impossible = false;
  // Dictionary-encode the constant terms (the forward half of the RDF
  // translation cost).
  obs::OpTimer resolve_op("resolve_terms");
  for (const auto& tp : q.patterns) {
    ResolvedPattern rp{kWildcard, kWildcard, kWildcard};
    auto resolve = [&](const sparql::TermPattern& t, uint64_t* id,
                       int* var) -> Status {
      switch (t.kind) {
        case sparql::TermPattern::Kind::kVariable:
          *var = slot_of(t.text);
          break;
        case sparql::TermPattern::Kind::kIri: {
          auto found = dict_.LookupIri(t.text);
          if (!found) rp.impossible = true;
          else *id = *found;
          break;
        }
        case sparql::TermPattern::Kind::kLiteral: {
          auto found = dict_.LookupLiteral(t.literal);
          if (!found) rp.impossible = true;
          else *id = *found;
          break;
        }
        case sparql::TermPattern::Kind::kParam: {
          // Bind step: parameters resolve to literal terms per call.
          auto it = params.find(t.text);
          if (it == params.end()) {
            return Status::InvalidArgument("missing parameter $" + t.text);
          }
          auto found = dict_.LookupLiteral(it->second);
          if (!found) rp.impossible = true;
          else *id = *found;
          break;
        }
      }
      return Status::OK();
    };
    GB_RETURN_IF_ERROR(resolve(tp.s, &rp.s, &rp.s_var));
    GB_RETURN_IF_ERROR(resolve(tp.p, &rp.p, &rp.p_var));
    GB_RETURN_IF_ERROR(resolve(tp.o, &rp.o, &rp.o_var));
    impossible |= rp.impossible;
    patterns.push_back(rp);
  }
  resolve_op.AddRows(patterns.size());
  resolve_op.Stop();
  // Variables that only appear in projections (shortestPath args must come
  // from patterns; plain vars too) are an error caught below.

  QueryResult result;
  for (const auto& sel : q.select) {
    result.columns.push_back(
        sel.is_path || sel.is_count ? sel.as_name : sel.var);
  }
  if (impossible) {
    // Some constant term is not in the dictionary: no solutions. A global
    // aggregate still yields its zero row.
    bool all_counts = !q.select.empty();
    for (const auto& sel : q.select) all_counts &= sel.is_count;
    if (all_counts && q.group_by.empty()) {
      Row zeros(q.select.size(), Value(int64_t{0}));
      result.rows.push_back(std::move(zeros));
    }
    return result;
  }

  // Greedy BGP join: repeatedly run the most selective remaining pattern.
  std::vector<BindingRow> rows;
  rows.emplace_back(var_slots.size(), kWildcard);
  std::vector<bool> used(patterns.size(), false);
  std::vector<bool> bound(var_slots.size(), false);

  auto selectivity = [&](const ResolvedPattern& rp) {
    int score = 0;
    if (rp.s_var < 0 || bound[size_t(rp.s_var)]) score += 4;
    if (rp.o_var < 0 || bound[size_t(rp.o_var)]) score += 2;
    if (rp.p_var < 0 || bound[size_t(rp.p_var)]) score += 1;
    return score;
  };

  for (size_t step = 0; step < patterns.size(); ++step) {
    int best = -1, best_score = -1;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      int s = selectivity(patterns[i]);
      if (s > best_score) {
        best_score = s;
        best = int(i);
      }
    }
    used[size_t(best)] = true;
    const ResolvedPattern& rp = patterns[size_t(best)];

    // One triple-pattern join step: probe the triple indexes once per
    // current binding and extend with every match.
    obs::OpTimer join_op("triple_pattern_join");
    std::vector<BindingRow> next;
    std::vector<Triple> matches;
    for (const BindingRow& row : rows) {
      uint64_t s = rp.s_var >= 0 && row[size_t(rp.s_var)] != kWildcard
                       ? row[size_t(rp.s_var)]
                       : rp.s;
      uint64_t p = rp.p_var >= 0 && row[size_t(rp.p_var)] != kWildcard
                       ? row[size_t(rp.p_var)]
                       : rp.p;
      uint64_t o = rp.o_var >= 0 && row[size_t(rp.o_var)] != kWildcard
                       ? row[size_t(rp.o_var)]
                       : rp.o;
      store_.Match(s, p, o, &matches);
      for (const Triple& t : matches) {
        BindingRow extended = row;
        if (rp.s_var >= 0) extended[size_t(rp.s_var)] = t.s;
        if (rp.p_var >= 0) extended[size_t(rp.p_var)] = t.p;
        if (rp.o_var >= 0) extended[size_t(rp.o_var)] = t.o;
        next.push_back(std::move(extended));
      }
    }
    if (rp.s_var >= 0) bound[size_t(rp.s_var)] = true;
    if (rp.p_var >= 0) bound[size_t(rp.p_var)] = true;
    if (rp.o_var >= 0) bound[size_t(rp.o_var)] = true;
    rows = std::move(next);
    join_op.AddRows(rows.size());
    join_op.Stop();

    // Apply filters whose variables are both bound.
    if (!q.filters.empty()) {
      obs::OpTimer filter_op("filter");
      for (const auto& f : q.filters) {
        auto a = var_slots.find(f.var_a);
        auto b = var_slots.find(f.var_b);
        if (a == var_slots.end() || b == var_slots.end()) {
          return Status::InvalidArgument("FILTER on unknown variable");
        }
        if (!bound[size_t(a->second)] || !bound[size_t(b->second)]) {
          continue;
        }
        std::vector<BindingRow> kept;
        kept.reserve(rows.size());
        for (BindingRow& row : rows) {
          bool eq = row[size_t(a->second)] == row[size_t(b->second)];
          if (eq != f.not_equal) kept.push_back(std::move(row));
        }
        rows = std::move(kept);
      }
      filter_op.AddRows(rows.size());
    }
    if (rows.empty()) break;
  }

  // Project (decoding ids back to Values — the reverse-dictionary half of
  // the translation cost) plus ORDER BY keys.
  auto decode = [this](uint64_t id) {
    Term t = dict_.Decode(id);
    return t.kind == Term::Kind::kIri ? Value(t.iri) : t.literal;
  };

  // Aggregation path: any (COUNT(?v) AS ?n) projection groups the
  // solutions by the GROUP BY variables (SPARQL 1.1 semantics subset).
  bool has_count = false;
  for (const auto& sel : q.select) has_count |= sel.is_count;
  if (has_count) {
    obs::OpTimer agg_op("aggregate");
    auto slot = [&var_slots](const std::string& name) -> Result<int> {
      auto it = var_slots.find(name);
      if (it == var_slots.end()) {
        return Status::InvalidArgument("unknown variable ?" + name);
      }
      return it->second;
    };
    std::unordered_map<Row, int64_t, RowHash, RowEq> counts;
    std::vector<Row> group_order;
    for (const BindingRow& binding : rows) {
      Row key;
      for (const std::string& g : q.group_by) {
        GB_ASSIGN_OR_RETURN(int s, slot(g));
        key.push_back(decode(binding[size_t(s)]));
      }
      auto [it, inserted] = counts.emplace(key, 0);
      if (inserted) group_order.push_back(key);
      ++it->second;
    }
    if (group_order.empty() && q.group_by.empty()) {
      group_order.push_back(Row{});
      counts[Row{}] = 0;
    }
    for (const Row& key : group_order) {
      Row row;
      for (const auto& sel : q.select) {
        if (sel.is_count) {
          row.push_back(Value(counts[key]));
          continue;
        }
        if (sel.is_path) {
          return Status::NotSupported(
              "shortestPath cannot mix with aggregates");
        }
        // Plain variable: must be one of the GROUP BY keys.
        size_t key_index = q.group_by.size();
        for (size_t g = 0; g < q.group_by.size(); ++g) {
          if (q.group_by[g] == sel.var) {
            key_index = g;
            break;
          }
        }
        if (key_index == q.group_by.size()) {
          return Status::InvalidArgument(
              "projected variable ?" + sel.var + " not in GROUP BY");
        }
        row.push_back(key[key_index]);
      }
      result.rows.push_back(std::move(row));
    }
    agg_op.AddRows(result.rows.size());
    agg_op.Stop();
    // ORDER BY over aggregated output references projected names.
    if (!q.order_by.empty()) {
      obs::OpTimer sort_op("sort");
      std::vector<std::pair<size_t, bool>> keys;
      for (const auto& [var, desc] : q.order_by) {
        size_t column = q.select.size();
        for (size_t i = 0; i < q.select.size(); ++i) {
          const std::string& name =
              q.select[i].is_count ? q.select[i].as_name : q.select[i].var;
          if (name == var) {
            column = i;
            break;
          }
        }
        if (column == q.select.size()) {
          return Status::InvalidArgument("ORDER BY unknown projection ?" +
                                         var);
        }
        keys.emplace_back(column, desc);
      }
      std::stable_sort(result.rows.begin(), result.rows.end(),
                       [&keys](const Row& a, const Row& b) {
                         for (auto [column, desc] : keys) {
                           int c = a[column].Compare(b[column]);
                           if (c != 0) return desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    if (limit_bound >= 0 && result.rows.size() > size_t(limit_bound)) {
      result.rows.resize(size_t(limit_bound));
    }
    return result;
  }

  struct Projected {
    Row row;
    Row sort_key;
  };
  std::vector<Projected> projected;
  std::unordered_set<Row, RowHash, RowEq> seen;
  obs::OpTimer project_op("project");
  for (const BindingRow& binding : rows) {
    Row row;
    for (const auto& sel : q.select) {
      if (sel.is_path) {
        auto from = var_slots.find(sel.from_var);
        auto to = var_slots.find(sel.to_var);
        auto pred = dict_.LookupIri(sel.pred_iri);
        if (from == var_slots.end() || to == var_slots.end()) {
          return Status::InvalidArgument("shortestPath over unbound vars");
        }
        if (!pred) {
          row.push_back(Value(int64_t{-1}));
          continue;
        }
        GB_ASSIGN_OR_RETURN(int len,
                            ShortestPath(binding[size_t(from->second)],
                                         binding[size_t(to->second)], *pred));
        row.push_back(Value(int64_t{len}));
      } else {
        auto it = var_slots.find(sel.var);
        if (it == var_slots.end()) {
          return Status::InvalidArgument("projection of unknown variable ?" +
                                         sel.var);
        }
        row.push_back(decode(binding[size_t(it->second)]));
      }
    }
    if (q.distinct && !seen.insert(row).second) continue;
    Row sort_key;
    for (const auto& [var, desc] : q.order_by) {
      auto it = var_slots.find(var);
      if (it == var_slots.end()) {
        return Status::InvalidArgument("ORDER BY unknown variable");
      }
      sort_key.push_back(decode(binding[size_t(it->second)]));
    }
    projected.push_back(Projected{std::move(row), std::move(sort_key)});
  }
  project_op.AddRows(projected.size());
  project_op.Stop();

  if (!q.order_by.empty()) {
    obs::OpTimer sort_op("sort");
    std::stable_sort(projected.begin(), projected.end(),
                     [&q](const Projected& a, const Projected& b) {
                       for (size_t i = 0; i < q.order_by.size(); ++i) {
                         int c = a.sort_key[i].Compare(b.sort_key[i]);
                         if (c != 0) return q.order_by[i].second ? c > 0
                                                                 : c < 0;
                       }
                       return false;
                     });
  }
  size_t limit = limit_bound < 0
                     ? projected.size()
                     : std::min(size_t(limit_bound), projected.size());
  result.rows.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    result.rows.push_back(std::move(projected[i].row));
  }
  return result;
}

Result<int> RdfEngine::ShortestPath(uint64_t from_id, uint64_t to_id,
                                    uint64_t pred_id) const {
  obs::OpTimer op("shortest_path");
  if (from_id == to_id) return 0;
  // BFS over the triple indexes, expanding both edge directions.
  std::unordered_set<uint64_t> visited{from_id};
  std::deque<uint64_t> frontier{from_id};
  std::vector<Triple> matches;
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    size_t level = frontier.size();
    for (size_t i = 0; i < level; ++i) {
      uint64_t v = frontier.front();
      frontier.pop_front();
      for (bool forward : {true, false}) {
        if (forward) {
          store_.Match(v, pred_id, kWildcard, &matches);
        } else {
          store_.Match(kWildcard, pred_id, v, &matches);
        }
        for (const Triple& t : matches) {
          uint64_t next = forward ? t.o : t.s;
          if (visited.count(next)) continue;
          if (next == to_id) return depth;
          visited.insert(next);
          frontier.push_back(next);
        }
      }
    }
  }
  return -1;
}

}  // namespace graphbench
