#ifndef GRAPHBENCH_ENGINES_RDF_RDF_ENGINE_H_
#define GRAPHBENCH_ENGINES_RDF_RDF_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "engines/rdf/term_dictionary.h"
#include "engines/rdf/triple_store.h"
#include "engines/relational/query_result.h"
#include "lang/sparql/ast.h"
#include "util/result.h"

namespace graphbench {

/// RDF store with a SPARQL front-end: the Virtuoso-SPARQL analog. The
/// whole graph lives in one dictionary-encoded triple table with up to
/// four covering indexes; SPARQL basic graph patterns translate into
/// index-range joins (the "query translation cost" of §4.2) and every
/// update maintains all indexes (the write tax of §4.3).
class RdfEngine {
 public:
  explicit RdfEngine(int num_indexes = 4);

  /// Parses and executes one SPARQL query. Constants are inlined in the
  /// query text, as SPARQL clients do.
  Result<QueryResult> Execute(std::string_view sparql);

  /// Loader/update path (bulk import bypasses SPARQL, as Virtuoso's bulk
  /// loader does; per-update inserts are issued by the writer thread).
  Status AddTriple(const Term& subject, std::string_view predicate,
                   const Term& object);

  /// Unweighted shortest-path length over `predicate` edges (undirected),
  /// BFS over the POS/SPO indexes. Exposed for tests; SPARQL reaches it
  /// through the shortestPath() projection extension.
  Result<int> ShortestPath(uint64_t from_id, uint64_t to_id,
                           uint64_t pred_id) const;

  uint64_t TripleCount() const { return store_.size(); }
  uint64_t ApproximateSizeBytes() const {
    return store_.ApproximateSizeBytes() + dict_.ApproximateSizeBytes();
  }

  TermDictionary& dict() { return dict_; }
  const TripleStore& store() const { return store_; }

 private:
  // One BGP solution: TermIds per variable (kWildcard = unbound).
  using BindingRow = std::vector<uint64_t>;

  struct ResolvedPattern {
    // kWildcard components hold variable slots in `var_slot`.
    uint64_t s, p, o;
    int s_var = -1, p_var = -1, o_var = -1;
    bool impossible = false;  // constant term not in dictionary
  };

  Result<QueryResult> ExecuteParsed(const sparql::Query& q);

  TermDictionary dict_;
  TripleStore store_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_RDF_RDF_ENGINE_H_
