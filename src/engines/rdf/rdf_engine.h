#ifndef GRAPHBENCH_ENGINES_RDF_RDF_ENGINE_H_
#define GRAPHBENCH_ENGINES_RDF_RDF_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engines/rdf/term_dictionary.h"
#include "engines/rdf/triple_store.h"
#include "engines/relational/query_result.h"
#include "lang/plan_cache.h"
#include "lang/sparql/ast.h"
#include "util/result.h"

namespace graphbench {

/// RDF store with a SPARQL front-end: the Virtuoso-SPARQL analog. The
/// whole graph lives in one dictionary-encoded triple table with up to
/// four covering indexes; SPARQL basic graph patterns translate into
/// index-range joins (the "query translation cost" of §4.2) and every
/// update maintains all indexes (the write tax of §4.3).
class RdfEngine {
 public:
  explicit RdfEngine(int num_indexes = 4);

  /// Named $parameters bound at execution time; parameter values bind as
  /// literals (ids, names — the constants the SNB workload varies).
  using Params = std::map<std::string, Value>;

  /// An immutable parsed query; share freely across threads and execute
  /// with per-call parameters.
  class PreparedStatement {
   public:
    PreparedStatement() = default;
    const std::string& text() const { return text_; }
    const sparql::Query& query() const { return *query_; }
    bool valid() const { return query_ != nullptr; }

   private:
    friend class RdfEngine;
    std::string text_;
    std::shared_ptr<const sparql::Query> query_;
  };

  /// Parses `sparql` into an immutable statement with $name placeholders
  /// (consulting the plan cache when enabled).
  Result<PreparedStatement> Prepare(std::string_view sparql);

  /// Binds `params` and runs a prepared statement — no parsing.
  Result<QueryResult> Execute(const PreparedStatement& prepared,
                              const Params& params);

  /// Parses and executes one SPARQL query. Constants are inlined in the
  /// query text, as SPARQL clients do; parses per call — the
  /// paper-faithful default — unless the plan cache is enabled.
  Result<QueryResult> Execute(std::string_view sparql);

  /// Opts this instance into caching parsed queries keyed by statement
  /// text. Call before concurrent use. Off by default.
  void EnablePlanCache(size_t capacity = lang::kDefaultPlanCacheCapacity);
  bool plan_cache_enabled() const { return plan_cache_ != nullptr; }
  lang::PlanCacheStats plan_cache_stats() const {
    return plan_cache_ == nullptr ? lang::PlanCacheStats{}
                                  : plan_cache_->Stats();
  }

  /// Loader/update path (bulk import bypasses SPARQL, as Virtuoso's bulk
  /// loader does; per-update inserts are issued by the writer thread).
  Status AddTriple(const Term& subject, std::string_view predicate,
                   const Term& object);

  /// Deletes one asserted triple (SPARQL UPDATE's DELETE DATA analog).
  /// NotFound when the triple, or any of its terms, was never asserted.
  Status RemoveTriple(const Term& subject, std::string_view predicate,
                      const Term& object);

  /// Unweighted shortest-path length over `predicate` edges (undirected),
  /// BFS over the POS/SPO indexes. Exposed for tests; SPARQL reaches it
  /// through the shortestPath() projection extension.
  Result<int> ShortestPath(uint64_t from_id, uint64_t to_id,
                           uint64_t pred_id) const;

  uint64_t TripleCount() const { return store_.size(); }
  uint64_t ApproximateSizeBytes() const {
    return store_.ApproximateSizeBytes() + dict_.ApproximateSizeBytes();
  }

  TermDictionary& dict() { return dict_; }
  const TripleStore& store() const { return store_; }

 private:
  // One BGP solution: TermIds per variable (kWildcard = unbound).
  using BindingRow = std::vector<uint64_t>;

  struct ResolvedPattern {
    // kWildcard components hold variable slots in `var_slot`.
    uint64_t s, p, o;
    int s_var = -1, p_var = -1, o_var = -1;
    bool impossible = false;  // constant term not in dictionary
  };

  Result<QueryResult> ExecuteParsed(const sparql::Query& q,
                                    const Params& params);

  TermDictionary dict_;
  TripleStore store_;
  std::unique_ptr<lang::PlanCache<sparql::Query>> plan_cache_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_RDF_RDF_ENGINE_H_
