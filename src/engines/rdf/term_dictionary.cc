#include "engines/rdf/term_dictionary.h"

#include "obs/lock_timer.h"

#include <mutex>

#include "graph/value_codec.h"

namespace graphbench {

std::string TermDictionary::EncodeKey(const Term& term) {
  std::string key;
  key.push_back(char(uint8_t(term.kind)));
  if (term.kind == Term::Kind::kIri) {
    key += term.iri;
  } else {
    valuecodec::EncodeValue(&key, term.literal);
  }
  return key;
}

TermDictionary::TermId TermDictionary::InternTerm(Term term) {
  std::string key = EncodeKey(term);
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  TermId id = terms_.size();
  bytes_ += key.size() + 64;
  terms_.push_back(std::move(term));
  ids_.emplace(std::move(key), id);
  return id;
}

TermDictionary::TermId TermDictionary::InternIri(std::string_view iri) {
  return InternTerm(Term::Iri(iri));
}

TermDictionary::TermId TermDictionary::InternLiteral(const Value& v) {
  return InternTerm(Term::Literal(v));
}

std::optional<TermDictionary::TermId> TermDictionary::LookupIri(
    std::string_view iri) const {
  std::string key = EncodeKey(Term::Iri(iri));
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = ids_.find(key);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

std::optional<TermDictionary::TermId> TermDictionary::LookupLiteral(
    const Value& v) const {
  std::string key = EncodeKey(Term::Literal(v));
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = ids_.find(key);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

Term TermDictionary::Decode(TermId id) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  if (id >= terms_.size()) return Term();
  return terms_[size_t(id)];
}

uint64_t TermDictionary::size() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return terms_.size();
}

uint64_t TermDictionary::ApproximateSizeBytes() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return bytes_;
}

}  // namespace graphbench
