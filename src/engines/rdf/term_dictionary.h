#ifndef GRAPHBENCH_ENGINES_RDF_TERM_DICTIONARY_H_
#define GRAPHBENCH_ENGINES_RDF_TERM_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <shared_mutex>

#include "obs/lock_timer.h"
#include <string>
#include <unordered_map>
#include <vector>

#include "util/value.h"

namespace graphbench {

/// An RDF term: an IRI (resources, predicates) or a literal value.
struct Term {
  enum class Kind : uint8_t { kIri = 0, kLiteral = 1 };
  Kind kind = Kind::kIri;
  std::string iri;  // kIri
  Value literal;    // kLiteral

  static Term Iri(std::string_view s) {
    Term t;
    t.kind = Kind::kIri;
    t.iri = std::string(s);
    return t;
  }
  static Term Literal(Value v) {
    Term t;
    t.kind = Kind::kLiteral;
    t.literal = std::move(v);
    return t;
  }

  std::string ToString() const {
    return kind == Kind::kIri ? iri : literal.ToString();
  }
};

/// Bidirectional term <-> dense-id mapping, the dictionary encoding every
/// triple store uses. Interning is write-locked; lookups take shared locks
/// (part of SPARQL's per-query translation cost, §4.2).
class TermDictionary {
 public:
  using TermId = uint64_t;

  /// Returns the id for the term, interning it if new.
  TermId InternIri(std::string_view iri);
  TermId InternLiteral(const Value& v);

  /// Read-side lookup; nullopt when the term was never interned.
  std::optional<TermId> LookupIri(std::string_view iri) const;
  std::optional<TermId> LookupLiteral(const Value& v) const;

  /// Reverse mapping; terms ids are dense so this is a vector access.
  Term Decode(TermId id) const;

  uint64_t size() const;
  uint64_t ApproximateSizeBytes() const;

 private:
  static std::string EncodeKey(const Term& term);
  TermId InternTerm(Term term);

  mutable obs::TimedSharedMutex mu_{"rdf.lock_wait_us"};
  std::unordered_map<std::string, TermId> ids_;
  std::vector<Term> terms_;
  uint64_t bytes_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_RDF_TERM_DICTIONARY_H_
