#include "engines/rdf/triple_store.h"

#include "obs/lock_timer.h"

#include <algorithm>
#include <mutex>

namespace graphbench {

namespace {

// Permutations: index key position -> triple component (0=s,1=p,2=o).
constexpr int kSpoPerm[3] = {0, 1, 2};
constexpr int kPosPerm[3] = {1, 2, 0};
constexpr int kOspPerm[3] = {2, 0, 1};
constexpr int kPsoPerm[3] = {1, 0, 2};

std::array<uint64_t, 3> Permute(const int perm[3], uint64_t s, uint64_t p,
                                uint64_t o) {
  uint64_t c[3] = {s, p, o};
  return {c[perm[0]], c[perm[1]], c[perm[2]]};
}

}  // namespace

TripleStore::TripleStore(int num_indexes)
    : num_indexes_(std::clamp(num_indexes, 1, 4)) {}

Status TripleStore::Insert(uint64_t s, uint64_t p, uint64_t o) {
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  auto [it, inserted] = spo_.insert({s, p, o});
  if (!inserted) return Status::AlreadyExists("triple");
  if (num_indexes_ >= 2) pos_.insert(Permute(kPosPerm, s, p, o));
  if (num_indexes_ >= 3) osp_.insert(Permute(kOspPerm, s, p, o));
  if (num_indexes_ >= 4) pso_.insert(Permute(kPsoPerm, s, p, o));
  return Status::OK();
}

Status TripleStore::Remove(uint64_t s, uint64_t p, uint64_t o) {
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  if (spo_.erase({s, p, o}) == 0) return Status::NotFound("triple");
  if (num_indexes_ >= 2) pos_.erase(Permute(kPosPerm, s, p, o));
  if (num_indexes_ >= 3) osp_.erase(Permute(kOspPerm, s, p, o));
  if (num_indexes_ >= 4) pso_.erase(Permute(kPsoPerm, s, p, o));
  return Status::OK();
}

void TripleStore::ScanIndex(const std::set<Key>& index, const int perm[3],
                            uint64_t s, uint64_t p, uint64_t o,
                            std::vector<Triple>* out) const {
  uint64_t comps[3] = {s, p, o};
  // Bound prefix length under this index's order.
  Key lo = {0, 0, 0};
  int prefix = 0;
  while (prefix < 3 && comps[perm[prefix]] != kWildcard) {
    lo[size_t(prefix)] = comps[perm[prefix]];
    ++prefix;
  }
  auto it = prefix == 0 ? index.begin() : index.lower_bound(lo);
  for (; it != index.end(); ++it) {
    const Key& k = *it;
    bool prefix_ok = true;
    for (int i = 0; i < prefix; ++i) {
      if (k[size_t(i)] != comps[perm[i]]) {
        prefix_ok = false;
        break;
      }
    }
    if (!prefix_ok) break;  // past the bound prefix range
    // Residual filter on non-prefix bound positions.
    uint64_t c[3];
    for (int i = 0; i < 3; ++i) c[perm[i]] = k[size_t(i)];
    if ((s != kWildcard && c[0] != s) || (p != kWildcard && c[1] != p) ||
        (o != kWildcard && c[2] != o)) {
      continue;
    }
    out->push_back(Triple{c[0], c[1], c[2]});
  }
}

void TripleStore::Match(uint64_t s, uint64_t p, uint64_t o,
                        std::vector<Triple>* out) const {
  out->clear();
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  const bool bs = s != kWildcard, bp = p != kWildcard, bo = o != kWildcard;
  // Choose the index whose order puts the bound components first;
  // fall back to an SPO scan with residual filters when the matching
  // index is not materialized (ablation configurations).
  if (bs) {
    ScanIndex(spo_, kSpoPerm, s, p, o, out);
  } else if (bp && bo && num_indexes_ >= 2) {
    ScanIndex(pos_, kPosPerm, s, p, o, out);
  } else if (bo && num_indexes_ >= 3) {
    ScanIndex(osp_, kOspPerm, s, p, o, out);
  } else if (bp && !bo && num_indexes_ >= 4) {
    ScanIndex(pso_, kPsoPerm, s, p, o, out);
  } else {
    ScanIndex(spo_, kSpoPerm, s, p, o, out);
  }
}

bool TripleStore::Contains(uint64_t s, uint64_t p, uint64_t o) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return spo_.count({s, p, o}) > 0;
}

uint64_t TripleStore::size() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return spo_.size();
}

uint64_t TripleStore::ApproximateSizeBytes() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  // Each std::set node: 3 u64 + tree overhead (~40 bytes).
  return spo_.size() * uint64_t(num_indexes_) * (24 + 40);
}

}  // namespace graphbench
