#ifndef GRAPHBENCH_ENGINES_RDF_TRIPLE_STORE_H_
#define GRAPHBENCH_ENGINES_RDF_TRIPLE_STORE_H_

#include <array>
#include <cstdint>
#include <set>
#include <shared_mutex>

#include "obs/lock_timer.h"
#include <vector>

#include "util/status.h"

namespace graphbench {

/// A dictionary-encoded triple.
struct Triple {
  uint64_t s, p, o;
  friend bool operator==(const Triple&, const Triple&) = default;
};

/// Wildcard id for pattern matching.
inline constexpr uint64_t kWildcard = ~uint64_t{0};

/// Triple store as one logical table with four covering indexes
/// (SPO, POS, OSP, PSO), Virtuoso's "single table with extensive indexing"
/// layout. Every insert maintains all four orderings — the index-
/// maintenance cost behind Virtuoso-SPARQL's ~3x slower writes (§4.3).
/// The index count is configurable for the ablation bench.
class TripleStore {
 public:
  /// `num_indexes` in [1,4]: 1=SPO only, 2=+POS, 3=+OSP, 4=+PSO.
  explicit TripleStore(int num_indexes = 4);

  Status Insert(uint64_t s, uint64_t p, uint64_t o);

  /// Deletes the exact triple from every materialized index. NotFound
  /// when absent.
  Status Remove(uint64_t s, uint64_t p, uint64_t o);

  /// All triples matching the pattern (kWildcard = any). Picks the most
  /// selective available index for the bound positions; unbound-prefix
  /// patterns fall back to scanning SPO.
  void Match(uint64_t s, uint64_t p, uint64_t o,
             std::vector<Triple>* out) const;

  /// True when the exact triple exists.
  bool Contains(uint64_t s, uint64_t p, uint64_t o) const;

  uint64_t size() const;
  uint64_t ApproximateSizeBytes() const;
  int num_indexes() const { return num_indexes_; }

 private:
  using Key = std::array<uint64_t, 3>;

  // Range scan over one index: entries with the given bound prefix
  // (kWildcard terminates the prefix). Remaining positions filtered.
  void ScanIndex(const std::set<Key>& index, const int perm[3], uint64_t s,
                 uint64_t p, uint64_t o, std::vector<Triple>* out) const;

  int num_indexes_;
  mutable obs::TimedSharedMutex mu_{"rdf.lock_wait_us"};
  std::set<Key> spo_;
  std::set<Key> pos_;
  std::set<Key> osp_;
  std::set<Key> pso_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_RDF_TRIPLE_STORE_H_
