#include "engines/relational/database.h"

#include "obs/lock_timer.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_set>

#include "engines/relational/sql_executor.h"
#include "lang/sql/parser.h"
#include "obs/profiler.h"
#include "storage/column_table.h"
#include "storage/heap_table.h"
#include "storage/paged_table.h"

namespace graphbench {

Database::Database(StorageMode mode) : mode_(mode) {}

Database::Database(StorageMode mode,
                   const storage::DurabilityOptions& durability)
    : mode_(mode), durability_(durability) {
  if (!durability_.enabled) return;
  const char* component =
      mode == StorageMode::kRow ? "rel_row" : "rel_col";
  auto pager = storage::Pager::Open(
      storage::ResolveFileSystem(durability_),
      storage::DbPath(durability_, component),
      storage::WalPath(durability_, component),
      storage::ToPagerOptions(durability_));
  if (pager.ok()) {
    pager_ = std::move(pager).value();
  } else {
    durability_error_ = pager.status();
  }
}

Status Database::CreateTable(const TableSchema& schema) {
  std::unique_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  if (durability_.enabled && !durability_error_.ok()) {
    return durability_error_;
  }
  if (tables_.count(schema.name())) {
    return Status::AlreadyExists("table " + schema.name());
  }
  std::unique_ptr<Table> table;
  if (pager_ != nullptr) {
    // Durable mode: both layouts persist through the slotted paged table
    // (the columnar mode keeps its in-memory adjacency accelerator on
    // top — DESIGN.md §12 discusses the deviation).
    GB_ASSIGN_OR_RETURN(table, PagedTable::Create(pager_.get(), schema));
  } else if (mode_ == StorageMode::kRow) {
    table = std::make_unique<HeapTable>(schema);
  } else {
    table = std::make_unique<ColumnTable>(schema);
  }
  tables_.emplace(schema.name(), std::move(table));
  return Status::OK();
}

Status Database::Checkpoint() {
  if (pager_ == nullptr) return Status::OK();
  return pager_->Checkpoint();
}

Status Database::CreateIndex(std::string_view table, std::string_view column,
                             bool unique) {
  std::unique_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return Status::NotFound("table");
  if (it->second->schema().ColumnIndex(column) < 0) {
    return Status::NotFound("column");
  }
  std::string key = std::string(table) + "." + std::string(column);
  if (indexes_.count(key)) return Status::OK();  // idempotent
  auto index = std::make_unique<HashIndex>(key, unique);
  // Back-fill existing rows.
  int ci = it->second->schema().ColumnIndex(column);
  for (auto scan = it->second->NewScanIterator(); scan->Valid();
       scan->Next()) {
    Value v;
    GB_RETURN_IF_ERROR(
        it->second->GetColumn(scan->row_id(), size_t(ci), &v));
    GB_RETURN_IF_ERROR(index->Insert(v, scan->row_id()));
  }
  indexes_.emplace(std::move(key), std::move(index));
  return Status::OK();
}

Status Database::RegisterEdgeTable(std::string_view table,
                                   std::string_view src_col,
                                   std::string_view dst_col) {
  std::unique_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  auto it = tables_.find(std::string(table));
  if (it == tables_.end()) return Status::NotFound("table");
  auto meta = std::make_unique<EdgeMeta>();
  meta->src_col = std::string(src_col);
  meta->dst_col = std::string(dst_col);
  if (mode_ == StorageMode::kColumnar) {
    // Build the adjacency accelerator from existing rows.
    int si = it->second->schema().ColumnIndex(src_col);
    int di = it->second->schema().ColumnIndex(dst_col);
    if (si < 0 || di < 0) return Status::NotFound("edge column");
    for (auto scan = it->second->NewScanIterator(); scan->Valid();
         scan->Next()) {
      Value s, d;
      GB_RETURN_IF_ERROR(it->second->GetColumn(scan->row_id(), size_t(si), &s));
      GB_RETURN_IF_ERROR(it->second->GetColumn(scan->row_id(), size_t(di), &d));
      meta->adjacency[s.as_int()].push_back(d.as_int());
      meta->adjacency[d.as_int()].push_back(s.as_int());
    }
  }
  edge_tables_[std::string(table)] = std::move(meta);
  return Status::OK();
}

Table* Database::GetTable(std::string_view name) const {
  std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

HashIndex* Database::GetIndex(std::string_view table,
                              std::string_view column) const {
  std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  auto it = indexes_.find(std::string(table) + "." + std::string(column));
  return it == indexes_.end() ? nullptr : it->second.get();
}

uint64_t Database::TotalSizeBytes() const {
  std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  uint64_t total = 0;
  for (const auto& [name, table] : tables_) {
    total += table->ApproximateSizeBytes();
  }
  for (const auto& [name, index] : indexes_) {
    total += index->ApproximateSizeBytes();
  }
  for (const auto& [name, meta] : edge_tables_) {
    std::shared_lock<obs::TimedSharedMutex> adj(meta->adj_mu);
    total += meta->adjacency.size() * 48;
    for (const auto& [k, v] : meta->adjacency) total += v.size() * 8;
  }
  return total;
}

namespace {

// Evaluates a single-table expression against one materialized row.
Result<Value> EvalRowExpr(const sql::Expr& e, const TableSchema& schema,
                          const Row& row,
                          const std::vector<Value>& params) {
  using K = sql::Expr::Kind;
  switch (e.kind) {
    case K::kLiteral:
      return e.literal;
    case K::kParam:
      if (e.param_index < 0 || size_t(e.param_index) >= params.size()) {
        return Status::InvalidArgument("parameter index out of range");
      }
      return params[size_t(e.param_index)];
    case K::kColumn: {
      int ci = schema.ColumnIndex(e.column);
      if (ci < 0) {
        return Status::InvalidArgument("unknown column " + e.column);
      }
      return row[size_t(ci)];
    }
    case K::kBinary: {
      GB_ASSIGN_OR_RETURN(Value l,
                          EvalRowExpr(*e.lhs, schema, row, params));
      if (e.op == sql::BinOp::kAnd) {
        if (!l.is_bool() || !l.as_bool()) return Value(false);
        return EvalRowExpr(*e.rhs, schema, row, params);
      }
      GB_ASSIGN_OR_RETURN(Value r,
                          EvalRowExpr(*e.rhs, schema, row, params));
      int c = l.Compare(r);
      switch (e.op) {
        case sql::BinOp::kEq: return Value(c == 0);
        case sql::BinOp::kNe: return Value(c != 0);
        case sql::BinOp::kLt: return Value(c < 0);
        case sql::BinOp::kLe: return Value(c <= 0);
        case sql::BinOp::kGt: return Value(c > 0);
        case sql::BinOp::kGe: return Value(c >= 0);
        case sql::BinOp::kAnd: break;  // handled above
      }
      return Status::Internal("unhandled op");
    }
    default:
      return Status::NotSupported("expression not allowed in DML WHERE");
  }
}

}  // namespace

Result<std::vector<RowId>> Database::MatchRows(
    std::string_view table_name, const sql::Expr* where,
    const std::vector<Value>& params) {
  Table* table = GetTable(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument("unknown table " +
                                   std::string(table_name));
  }
  // Leading indexed equality: WHERE col = const [AND ...].
  const sql::Expr* probe = where;
  while (probe != nullptr && probe->kind == sql::Expr::Kind::kBinary &&
         probe->op == sql::BinOp::kAnd) {
    probe = probe->lhs.get();
  }
  std::vector<RowId> candidates;
  bool used_index = false;
  if (probe != nullptr && probe->kind == sql::Expr::Kind::kBinary &&
      probe->op == sql::BinOp::kEq &&
      probe->lhs->kind == sql::Expr::Kind::kColumn &&
      (probe->rhs->kind == sql::Expr::Kind::kLiteral ||
       probe->rhs->kind == sql::Expr::Kind::kParam)) {
    HashIndex* index = GetIndex(table_name, probe->lhs->column);
    if (index != nullptr) {
      GB_ASSIGN_OR_RETURN(
          Value key, EvalRowExpr(*probe->rhs, table->schema(), {}, params));
      candidates = index->Lookup(key);
      used_index = true;
    }
  }
  if (!used_index) {
    for (auto it = table->NewScanIterator(); it->Valid(); it->Next()) {
      candidates.push_back(it->row_id());
    }
  }
  std::vector<RowId> out;
  for (RowId id : candidates) {
    if (where == nullptr) {
      out.push_back(id);
      continue;
    }
    Row row;
    GB_RETURN_IF_ERROR(table->Get(id, &row));
    GB_ASSIGN_OR_RETURN(Value pass,
                        EvalRowExpr(*where, table->schema(), row, params));
    if (pass.is_bool() && pass.as_bool()) out.push_back(id);
  }
  return out;
}

void Database::UnindexRow(const std::string& table_name, Table* table,
                          RowId id, const Row& row) {
  std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  std::string prefix = table_name + ".";
  for (const auto& [key, index] : indexes_) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    int ci = table->schema().ColumnIndex(key.substr(prefix.size()));
    index->Remove(row[size_t(ci)], id);
  }
}

Status Database::IndexRow(const std::string& table_name, Table* table,
                          RowId id, const Row& row) {
  std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  std::string prefix = table_name + ".";
  std::vector<HashIndex*> touched;
  std::vector<int> touched_cols;
  for (const auto& [key, index] : indexes_) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    int ci = table->schema().ColumnIndex(key.substr(prefix.size()));
    Status s = index->Insert(row[size_t(ci)], id);
    if (!s.ok()) {
      for (size_t i = 0; i < touched.size(); ++i) {
        touched[i]->Remove(row[size_t(touched_cols[i])], id);
      }
      return s;
    }
    touched.push_back(index.get());
    touched_cols.push_back(ci);
  }
  return Status::OK();
}

void Database::AdjacencyRemove(const std::string& table_name,
                               const Row& row) {
  if (mode_ != StorageMode::kColumnar) return;
  std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  auto it = edge_tables_.find(table_name);
  if (it == edge_tables_.end()) return;
  EdgeMeta* meta = it->second.get();
  Table* table = GetTable(table_name);
  int si = table->schema().ColumnIndex(meta->src_col);
  int di = table->schema().ColumnIndex(meta->dst_col);
  int64_t s = row[size_t(si)].as_int(), d = row[size_t(di)].as_int();
  std::unique_lock<obs::TimedSharedMutex> adj(meta->adj_mu);
  auto erase_one = [meta](int64_t from, int64_t to) {
    auto list = meta->adjacency.find(from);
    if (list == meta->adjacency.end()) return;
    auto pos = std::find(list->second.begin(), list->second.end(), to);
    if (pos != list->second.end()) list->second.erase(pos);
  };
  erase_one(s, d);
  erase_one(d, s);
}

void Database::AdjacencyAdd(const std::string& table_name, const Row& row) {
  if (mode_ != StorageMode::kColumnar) return;
  std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
  auto it = edge_tables_.find(table_name);
  if (it == edge_tables_.end()) return;
  EdgeMeta* meta = it->second.get();
  Table* table = GetTable(table_name);
  int si = table->schema().ColumnIndex(meta->src_col);
  int di = table->schema().ColumnIndex(meta->dst_col);
  std::unique_lock<obs::TimedSharedMutex> adj(meta->adj_mu);
  meta->adjacency[row[size_t(si)].as_int()].push_back(
      row[size_t(di)].as_int());
  meta->adjacency[row[size_t(di)].as_int()].push_back(
      row[size_t(si)].as_int());
}

Result<QueryResult> Database::ExecuteUpdate(
    const sql::UpdateStmt& stmt, const std::vector<Value>& params) {
  Table* table = GetTable(stmt.table);
  if (table == nullptr) {
    return Status::InvalidArgument("unknown table " + stmt.table);
  }
  GB_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                      MatchRows(stmt.table, stmt.where.get(), params));
  QueryResult result;
  for (RowId id : ids) {
    Row old_row;
    GB_RETURN_IF_ERROR(table->Get(id, &old_row));
    Row new_row = old_row;
    for (const auto& [column, expr] : stmt.sets) {
      int ci = table->schema().ColumnIndex(column);
      if (ci < 0) {
        return Status::InvalidArgument("unknown column " + column);
      }
      GB_ASSIGN_OR_RETURN(
          new_row[size_t(ci)],
          EvalRowExpr(*expr, table->schema(), old_row, params));
    }
    UnindexRow(stmt.table, table, id, old_row);
    Status reindexed = IndexRow(stmt.table, table, id, new_row);
    if (!reindexed.ok()) {
      // Unique violation: restore the old entries and stop.
      IndexRow(stmt.table, table, id, old_row);
      return reindexed;
    }
    GB_RETURN_IF_ERROR(table->Update(id, new_row));
    AdjacencyRemove(stmt.table, old_row);
    AdjacencyAdd(stmt.table, new_row);
    ++result.affected;
  }
  return result;
}

Result<QueryResult> Database::ExecuteDelete(
    const sql::DeleteStmt& stmt, const std::vector<Value>& params) {
  Table* table = GetTable(stmt.table);
  if (table == nullptr) {
    return Status::InvalidArgument("unknown table " + stmt.table);
  }
  GB_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                      MatchRows(stmt.table, stmt.where.get(), params));
  QueryResult result;
  for (RowId id : ids) {
    Row row;
    GB_RETURN_IF_ERROR(table->Get(id, &row));
    UnindexRow(stmt.table, table, id, row);
    GB_RETURN_IF_ERROR(table->Delete(id));
    AdjacencyRemove(stmt.table, row);
    ++result.affected;
  }
  return result;
}

void Database::EnablePlanCache(size_t capacity) {
  plan_cache_ =
      std::make_unique<lang::PlanCache<sql::Statement>>("sql", capacity);
}

Result<Database::PreparedStatement> Database::Prepare(
    std::string_view sql_text) {
  PreparedStatement prepared;
  prepared.text_ = std::string(sql_text);
  if (plan_cache_ != nullptr) {
    if (auto cached = plan_cache_->Lookup(sql_text)) {
      prepared.stmt_ = std::move(cached);
      return prepared;
    }
  }
  obs::OpTimer parse_op("parse");
  GB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql_text));
  parse_op.Stop();
  auto shared = std::make_shared<const sql::Statement>(std::move(stmt));
  if (plan_cache_ != nullptr) plan_cache_->Insert(sql_text, shared);
  prepared.stmt_ = std::move(shared);
  return prepared;
}

Result<QueryResult> Database::Execute(const PreparedStatement& prepared,
                                      const std::vector<Value>& params) {
  if (!prepared.valid()) {
    return Status::InvalidArgument("prepared statement is empty");
  }
  obs::OpTimer root_op("execute");
  if (plan_cache_ != nullptr) {
    // Extended-protocol model: every execution of a named statement goes
    // through the server's statement cache. A handle whose entry was
    // evicted re-seeds it — never a re-parse, the handle keeps the plan
    // alive.
    if (auto cached = plan_cache_->Lookup(prepared.text_)) {
      return ExecuteStatement(*cached, params);
    }
    plan_cache_->Insert(prepared.text_, prepared.stmt_);
  }
  return ExecuteStatement(*prepared.stmt_, params);
}

Result<QueryResult> Database::Execute(std::string_view sql_text,
                                      const std::vector<Value>& params) {
  // Root phase: cumulative spans the whole statement; self is the
  // dispatch/assembly work the phases below do not account for.
  obs::OpTimer root_op("execute");
  if (plan_cache_ != nullptr) {
    if (auto cached = plan_cache_->Lookup(sql_text)) {
      return ExecuteStatement(*cached, params);
    }
    obs::OpTimer cached_parse_op("parse");
    GB_ASSIGN_OR_RETURN(sql::Statement parsed, sql::Parse(sql_text));
    cached_parse_op.Stop();
    auto shared = std::make_shared<const sql::Statement>(std::move(parsed));
    plan_cache_->Insert(sql_text, shared);
    return ExecuteStatement(*shared, params);
  }
  obs::OpTimer parse_op("parse");
  GB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql_text));
  parse_op.Stop();
  return ExecuteStatement(stmt, params);
}

Result<QueryResult> Database::ExecuteStatement(
    const sql::Statement& stmt, const std::vector<Value>& params) {
  if (stmt.kind == sql::Statement::Kind::kSelect) {
    SqlExecutor exec(this, *stmt.select, params);
    return exec.Run();
  }
  if (stmt.kind == sql::Statement::Kind::kUpdate) {
    return ExecuteUpdate(*stmt.update, params);
  }
  if (stmt.kind == sql::Statement::Kind::kDelete) {
    return ExecuteDelete(*stmt.del, params);
  }
  return ExecuteInsert(*stmt.insert, params);
}

Result<QueryResult> Database::ExecuteInsert(const sql::InsertStmt& ins,
                                            const std::vector<Value>& params) {
  Table* table = GetTable(ins.table);
  if (table == nullptr) {
    return Status::InvalidArgument("unknown table " + ins.table);
  }
  if (ins.columns.size() != ins.values.size()) {
    return Status::InvalidArgument("INSERT arity mismatch");
  }
  Row row(table->schema().num_columns());  // Nulls for unnamed columns
  for (size_t i = 0; i < ins.columns.size(); ++i) {
    int ci = table->schema().ColumnIndex(ins.columns[i]);
    if (ci < 0) {
      return Status::InvalidArgument("unknown column " + ins.columns[i]);
    }
    const sql::Expr& e = *ins.values[i];
    if (e.kind == sql::Expr::Kind::kLiteral) {
      row[size_t(ci)] = e.literal;
    } else if (e.kind == sql::Expr::Kind::kParam) {
      if (e.param_index < 0 || size_t(e.param_index) >= params.size()) {
        return Status::InvalidArgument("parameter index out of range");
      }
      row[size_t(ci)] = params[size_t(e.param_index)];
    } else {
      return Status::NotSupported("INSERT values must be literals/params");
    }
  }
  GB_RETURN_IF_ERROR(InsertRow(ins.table, row).status());
  QueryResult result;
  result.affected = 1;
  return result;
}

Result<RowId> Database::InsertRow(std::string_view table_name,
                                  const Row& row) {
  Table* table = GetTable(table_name);
  if (table == nullptr) {
    return Status::InvalidArgument("unknown table " +
                                   std::string(table_name));
  }
  GB_ASSIGN_OR_RETURN(RowId id, table->Insert(row));
  std::string prefix = std::string(table_name) + ".";

  // Maintain indexes; a unique violation rolls the row back.
  std::vector<HashIndex*> touched;
  {
    std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
    for (const auto& [key, index] : indexes_) {
      if (key.compare(0, prefix.size(), prefix) != 0) continue;
      std::string column = key.substr(prefix.size());
      int ci = table->schema().ColumnIndex(column);
      Status s = index->Insert(row[size_t(ci)], id);
      if (!s.ok()) {
        for (HashIndex* undo : touched) {
          int uci = table->schema().ColumnIndex(
              undo->name().substr(prefix.size()));
          undo->Remove(row[size_t(uci)], id);
        }
        table->Delete(id);
        return s;
      }
      touched.push_back(index.get());
    }
  }

  // Maintain the columnar adjacency accelerator (Virtuoso's graph-aware
  // structures add write-path work; §4.3's row-vs-column write gap).
  if (mode_ == StorageMode::kColumnar) {
    std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
    auto it = edge_tables_.find(std::string(table_name));
    if (it != edge_tables_.end()) {
      EdgeMeta* meta = it->second.get();
      int si = table->schema().ColumnIndex(meta->src_col);
      int di = table->schema().ColumnIndex(meta->dst_col);
      std::unique_lock<obs::TimedSharedMutex> adj(meta->adj_mu);
      meta->adjacency[row[size_t(si)].as_int()].push_back(
          row[size_t(di)].as_int());
      meta->adjacency[row[size_t(di)].as_int()].push_back(
          row[size_t(si)].as_int());
    }
  }
  return id;
}

Result<int> Database::ShortestPath(std::string_view edge_table,
                                   std::string_view src_col,
                                   std::string_view dst_col,
                                   const Value& from, const Value& to) const {
  Table* table = GetTable(edge_table);
  if (table == nullptr) return Status::InvalidArgument("unknown edge table");
  if (mode_ == StorageMode::kColumnar) {
    std::shared_lock<obs::TimedSharedMutex> lock(catalog_mu_);
    auto it = edge_tables_.find(std::string(edge_table));
    if (it != edge_tables_.end()) {
      EdgeMeta* meta = it->second.get();
      lock.unlock();
      return ShortestPathVectorized(meta, from, to);
    }
    lock.unlock();
  }
  HashIndex* src_idx = GetIndex(edge_table, src_col);
  HashIndex* dst_idx = GetIndex(edge_table, dst_col);
  if (src_idx == nullptr || dst_idx == nullptr) {
    return Status::InvalidArgument(
        "SHORTEST_PATH requires indexes on both edge columns");
  }
  int si = table->schema().ColumnIndex(src_col);
  int di = table->schema().ColumnIndex(dst_col);
  return ShortestPathTupleAtATime(table, src_idx, dst_idx, si, di, from, to);
}

Result<int> Database::ShortestPathTupleAtATime(
    Table* table, HashIndex* src_idx, HashIndex* dst_idx, int src_col,
    int dst_col, const Value& from, const Value& to) const {
  // Single-sided BFS, one index probe + full-tuple fetch per edge — the
  // iterated self-join a row engine without transitivity support runs.
  if (from == to) return 0;
  std::unordered_set<Value, ValueHash> visited{from};
  std::deque<Value> frontier{from};
  int depth = 0;
  while (!frontier.empty()) {
    ++depth;
    size_t level = frontier.size();
    for (size_t i = 0; i < level; ++i) {
      Value v = frontier.front();
      frontier.pop_front();
      for (auto [index, col] : {std::pair{src_idx, dst_col},
                                std::pair{dst_idx, src_col}}) {
        for (RowId id : index->Lookup(v)) {
          Row row;  // tuple-at-a-time: materialize the whole edge row
          GB_RETURN_IF_ERROR(table->Get(id, &row));
          const Value& next = row[size_t(col)];
          if (visited.count(next)) continue;
          if (next == to) return depth;
          visited.insert(next);
          frontier.push_back(next);
        }
      }
    }
  }
  return -1;
}

Result<int> Database::ShortestPathVectorized(EdgeMeta* meta,
                                             const Value& from,
                                             const Value& to) const {
  // Bidirectional BFS over int64 adjacency vectors (Virtuoso's optimized
  // transitivity path).
  if (!from.is_int() || !to.is_int()) {
    return Status::InvalidArgument("vertex ids must be integers");
  }
  int64_t a = from.as_int(), b = to.as_int();
  if (a == b) return 0;
  std::shared_lock<obs::TimedSharedMutex> lock(meta->adj_mu);
  const auto& adj = meta->adjacency;
  if (!adj.count(a) || !adj.count(b)) return -1;

  std::unordered_map<int64_t, int> dist_a{{a, 0}}, dist_b{{b, 0}};
  std::deque<int64_t> frontier_a{a}, frontier_b{b};
  auto expand = [&adj](std::deque<int64_t>& frontier,
                       std::unordered_map<int64_t, int>& dist,
                       const std::unordered_map<int64_t, int>& other,
                       int* meet) {
    size_t level = frontier.size();
    for (size_t i = 0; i < level; ++i) {
      int64_t v = frontier.front();
      frontier.pop_front();
      int d = dist[v];
      auto it = adj.find(v);
      if (it == adj.end()) continue;
      for (int64_t next : it->second) {
        if (dist.count(next)) continue;
        dist[next] = d + 1;
        auto hit = other.find(next);
        if (hit != other.end()) {
          *meet = d + 1 + hit->second;
          return true;
        }
        frontier.push_back(next);
      }
    }
    return false;
  };

  int meet = -1;
  while (!frontier_a.empty() && !frontier_b.empty()) {
    bool found = frontier_a.size() <= frontier_b.size()
                     ? expand(frontier_a, dist_a, dist_b, &meet)
                     : expand(frontier_b, dist_b, dist_a, &meet);
    if (found) return meet;
  }
  return -1;
}

}  // namespace graphbench
