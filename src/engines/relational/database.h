#ifndef GRAPHBENCH_ENGINES_RELATIONAL_DATABASE_H_
#define GRAPHBENCH_ENGINES_RELATIONAL_DATABASE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engines/relational/query_result.h"
#include "lang/sql/ast.h"
#include "storage/hash_index.h"
#include "storage/table.h"
#include "storage/table_schema.h"
#include "util/result.h"

namespace graphbench {

/// Physical layout of the relational engine.
enum class StorageMode {
  kRow,       // slotted-page heap tables: the Postgres analog
  kColumnar,  // per-column vectors: the Virtuoso analog
};

/// Relational database engine executing the SQL subset of
/// lang/sql/parser.h. One instance per SUT; each vertex and edge type of
/// the SNB schema maps to one table (§3.2 of the paper).
///
/// In columnar mode the engine additionally maintains a graph-aware
/// adjacency accelerator per registered edge relationship, modelling
/// Virtuoso's optimized transitivity support: SHORTEST_PATH queries run
/// over int64 adjacency vectors instead of tuple-at-a-time index probes.
class Database {
 public:
  explicit Database(StorageMode mode);

  Status CreateTable(const TableSchema& schema);
  /// Index on `column` of `table`; vertex-id columns per the paper's rule.
  Status CreateIndex(std::string_view table, std::string_view column,
                     bool unique);

  /// Declares `table` as an edge relationship over integer vertex ids held
  /// in `src_col`/`dst_col`. Columnar mode builds its adjacency
  /// accelerator from this; row mode records metadata only.
  Status RegisterEdgeTable(std::string_view table, std::string_view src_col,
                           std::string_view dst_col);

  /// Parses and executes one statement. Parameters bind `?` positionally.
  Result<QueryResult> Execute(std::string_view sql,
                              const std::vector<Value>& params = {});

  /// Inserts a full row (schema order), maintaining indexes and — in
  /// columnar mode — the adjacency accelerator. Unique violations roll the
  /// row back. The SQL INSERT path and the Sqlg provider both route here.
  Result<RowId> InsertRow(std::string_view table, const Row& row);

  Table* GetTable(std::string_view name) const;
  HashIndex* GetIndex(std::string_view table, std::string_view column) const;

  StorageMode mode() const { return mode_; }
  uint64_t TotalSizeBytes() const;

  /// Unweighted shortest-path length between application-level vertex ids
  /// over the registered edge table (undirected). -1 if unreachable.
  /// Public so tests can exercise both code paths directly.
  Result<int> ShortestPath(std::string_view edge_table,
                           std::string_view src_col,
                           std::string_view dst_col, const Value& from,
                           const Value& to) const;

 private:
  friend class SqlExecutor;

  // Single-table predicate matching for UPDATE/DELETE: RowIds whose row
  // satisfies `where` (all rows when null). Uses an index for a leading
  // indexed equality conjunct, otherwise scans.
  Result<std::vector<RowId>> MatchRows(std::string_view table,
                                       const sql::Expr* where,
                                       const std::vector<Value>& params);
  Result<QueryResult> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                    const std::vector<Value>& params);
  Result<QueryResult> ExecuteDelete(const sql::DeleteStmt& stmt,
                                    const std::vector<Value>& params);
  // Removes/adds the row's entries in every index on `table`.
  void UnindexRow(const std::string& table, Table* t, RowId id,
                  const Row& row);
  Status IndexRow(const std::string& table, Table* t, RowId id,
                  const Row& row);
  // Columnar adjacency accelerator maintenance for edge-table rows.
  void AdjacencyRemove(const std::string& table, const Row& row);
  void AdjacencyAdd(const std::string& table, const Row& row);

  struct EdgeMeta {
    std::string src_col;
    std::string dst_col;
    // Columnar accelerator: app-id -> neighbour app-ids (undirected view),
    // maintained incrementally on INSERT. Guarded by adj_mu.
    std::unordered_map<int64_t, std::vector<int64_t>> adjacency;
    mutable std::shared_mutex adj_mu;
  };

  Result<QueryResult> ExecuteInsert(const struct InsertPlan& plan);

  // BFS via index probes + tuple fetches (the row-store path).
  Result<int> ShortestPathTupleAtATime(Table* table, HashIndex* src_idx,
                                       HashIndex* dst_idx, int src_col,
                                       int dst_col, const Value& from,
                                       const Value& to) const;
  // BFS over the adjacency accelerator (the columnar path).
  Result<int> ShortestPathVectorized(EdgeMeta* meta, const Value& from,
                                     const Value& to) const;

  StorageMode mode_;
  mutable std::shared_mutex catalog_mu_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  // "table.column" -> index
  std::unordered_map<std::string, std::unique_ptr<HashIndex>> indexes_;
  std::unordered_map<std::string, std::unique_ptr<EdgeMeta>> edge_tables_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_RELATIONAL_DATABASE_H_
