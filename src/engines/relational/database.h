#ifndef GRAPHBENCH_ENGINES_RELATIONAL_DATABASE_H_
#define GRAPHBENCH_ENGINES_RELATIONAL_DATABASE_H_

#include <memory>
#include <mutex>
#include <shared_mutex>

#include "obs/lock_timer.h"
#include <string>
#include <unordered_map>
#include <vector>

#include "engines/relational/query_result.h"
#include "lang/plan_cache.h"
#include "lang/sql/ast.h"
#include "storage/durability.h"
#include "storage/hash_index.h"
#include "storage/table.h"
#include "storage/table_schema.h"
#include "util/result.h"

namespace graphbench {

/// Physical layout of the relational engine.
enum class StorageMode {
  kRow,       // slotted-page heap tables: the Postgres analog
  kColumnar,  // per-column vectors: the Virtuoso analog
};

/// Relational database engine executing the SQL subset of
/// lang/sql/parser.h. One instance per SUT; each vertex and edge type of
/// the SNB schema maps to one table (§3.2 of the paper).
///
/// In columnar mode the engine additionally maintains a graph-aware
/// adjacency accelerator per registered edge relationship, modelling
/// Virtuoso's optimized transitivity support: SHORTEST_PATH queries run
/// over int64 adjacency vectors instead of tuple-at-a-time index probes.
class Database {
 public:
  explicit Database(StorageMode mode);
  /// Durable variant: tables are PagedTable over a shared pager/WAL in
  /// `durability.dir` (one db file per Database). Open failures are
  /// deferred to the first CreateTable. With durability disabled this is
  /// identical to Database(mode).
  Database(StorageMode mode, const storage::DurabilityOptions& durability);

  Status CreateTable(const TableSchema& schema);
  /// Index on `column` of `table`; vertex-id columns per the paper's rule.
  Status CreateIndex(std::string_view table, std::string_view column,
                     bool unique);

  /// Declares `table` as an edge relationship over integer vertex ids held
  /// in `src_col`/`dst_col`. Columnar mode builds its adjacency
  /// accelerator from this; row mode records metadata only.
  Status RegisterEdgeTable(std::string_view table, std::string_view src_col,
                           std::string_view dst_col);

  /// An immutable parsed statement with `?` placeholders, obtained from
  /// Prepare and executed repeatedly with per-call parameters. Safe to
  /// share across threads (the plan is read-only after Prepare).
  class PreparedStatement {
   public:
    PreparedStatement() = default;
    const std::string& text() const { return text_; }
    const sql::Statement& statement() const { return *stmt_; }
    bool valid() const { return stmt_ != nullptr; }

   private:
    friend class Database;
    std::string text_;
    std::shared_ptr<const sql::Statement> stmt_;
  };

  /// Parses `sql` into an immutable statement (consulting the plan cache
  /// when enabled). Execution later binds parameters only.
  Result<PreparedStatement> Prepare(std::string_view sql);

  /// Binds `params` and runs a prepared statement — no parsing or
  /// re-planning.
  Result<QueryResult> Execute(const PreparedStatement& prepared,
                              const std::vector<Value>& params = {});

  /// Parses and executes one statement. Parameters bind `?` positionally.
  /// Parses per call — the paper-faithful default — unless the plan cache
  /// is enabled, in which case the parsed plan is reused by statement
  /// text.
  Result<QueryResult> Execute(std::string_view sql,
                              const std::vector<Value>& params = {});

  /// Opts this instance into caching parsed plans keyed by statement
  /// text. Call before concurrent use (typically before Load). Off by
  /// default to preserve one-parse-per-query methodology.
  void EnablePlanCache(size_t capacity = lang::kDefaultPlanCacheCapacity);
  bool plan_cache_enabled() const { return plan_cache_ != nullptr; }
  lang::PlanCacheStats plan_cache_stats() const {
    return plan_cache_ == nullptr ? lang::PlanCacheStats{}
                                  : plan_cache_->Stats();
  }

  /// Inserts a full row (schema order), maintaining indexes and — in
  /// columnar mode — the adjacency accelerator. Unique violations roll the
  /// row back. The SQL INSERT path and the Sqlg provider both route here.
  Result<RowId> InsertRow(std::string_view table, const Row& row);

  Table* GetTable(std::string_view name) const;
  HashIndex* GetIndex(std::string_view table, std::string_view column) const;

  StorageMode mode() const { return mode_; }
  uint64_t TotalSizeBytes() const;

  bool durable() const { return pager_ != nullptr; }
  storage::Pager* pager() { return pager_.get(); }
  /// Durable mode: flush + publish + WAL reset (no-op otherwise).
  Status Checkpoint();

  /// Unweighted shortest-path length between application-level vertex ids
  /// over the registered edge table (undirected). -1 if unreachable.
  /// Public so tests can exercise both code paths directly.
  Result<int> ShortestPath(std::string_view edge_table,
                           std::string_view src_col,
                           std::string_view dst_col, const Value& from,
                           const Value& to) const;

 private:
  friend class SqlExecutor;

  // Single-table predicate matching for UPDATE/DELETE: RowIds whose row
  // satisfies `where` (all rows when null). Uses an index for a leading
  // indexed equality conjunct, otherwise scans.
  Result<std::vector<RowId>> MatchRows(std::string_view table,
                                       const sql::Expr* where,
                                       const std::vector<Value>& params);
  Result<QueryResult> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                    const std::vector<Value>& params);
  Result<QueryResult> ExecuteDelete(const sql::DeleteStmt& stmt,
                                    const std::vector<Value>& params);
  // Removes/adds the row's entries in every index on `table`.
  void UnindexRow(const std::string& table, Table* t, RowId id,
                  const Row& row);
  Status IndexRow(const std::string& table, Table* t, RowId id,
                  const Row& row);
  // Columnar adjacency accelerator maintenance for edge-table rows.
  void AdjacencyRemove(const std::string& table, const Row& row);
  void AdjacencyAdd(const std::string& table, const Row& row);

  struct EdgeMeta {
    std::string src_col;
    std::string dst_col;
    // Columnar accelerator: app-id -> neighbour app-ids (undirected view),
    // maintained incrementally on INSERT. Guarded by adj_mu.
    std::unordered_map<int64_t, std::vector<int64_t>> adjacency;
    mutable obs::TimedSharedMutex adj_mu{"relational.lock_wait_us"};
  };

  // Dispatches a parsed statement: the shared tail of both the string
  // and prepared Execute overloads.
  Result<QueryResult> ExecuteStatement(const sql::Statement& stmt,
                                       const std::vector<Value>& params);
  Result<QueryResult> ExecuteInsert(const sql::InsertStmt& stmt,
                                    const std::vector<Value>& params);

  // BFS via index probes + tuple fetches (the row-store path).
  Result<int> ShortestPathTupleAtATime(Table* table, HashIndex* src_idx,
                                       HashIndex* dst_idx, int src_col,
                                       int dst_col, const Value& from,
                                       const Value& to) const;
  // BFS over the adjacency accelerator (the columnar path).
  Result<int> ShortestPathVectorized(EdgeMeta* meta, const Value& from,
                                     const Value& to) const;

  StorageMode mode_;
  storage::DurabilityOptions durability_;
  std::unique_ptr<storage::Pager> pager_;
  Status durability_error_;  // deferred pager-open failure
  mutable obs::TimedSharedMutex catalog_mu_{"relational.lock_wait_us"};
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  // "table.column" -> index
  std::unordered_map<std::string, std::unique_ptr<HashIndex>> indexes_;
  std::unordered_map<std::string, std::unique_ptr<EdgeMeta>> edge_tables_;
  std::unique_ptr<lang::PlanCache<sql::Statement>> plan_cache_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_RELATIONAL_DATABASE_H_
