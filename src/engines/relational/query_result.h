#ifndef GRAPHBENCH_ENGINES_RELATIONAL_QUERY_RESULT_H_
#define GRAPHBENCH_ENGINES_RELATIONAL_QUERY_RESULT_H_

#include <string>
#include <vector>

#include "util/value.h"

namespace graphbench {

/// Tabular result of a query in any of the engines (SQL, SPARQL, Cypher
/// all return these so the benchmark can compare outputs across systems).
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Rows affected for DML statements (INSERT).
  uint64_t affected = 0;
};

/// Hash/equality for Row, used by DISTINCT and hash joins.
struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : row) h = h * 31 + v.Hash();
    return h;
  }
};

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// Lexicographic Row comparison (ORDER BY support).
inline int CompareRows(const Row& a, const Row& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return a.size() == b.size() ? 0 : (a.size() < b.size() ? -1 : 1);
}

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_RELATIONAL_QUERY_RESULT_H_
