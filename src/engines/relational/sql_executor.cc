#include "engines/relational/sql_executor.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "obs/profiler.h"

namespace graphbench {

using sql::BinOp;
using sql::Expr;

namespace {

// Flattens an AND tree into individual conjuncts.
void FlattenConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == Expr::Kind::kBinary && e->op == BinOp::kAnd) {
    FlattenConjuncts(e->lhs.get(), out);
    FlattenConjuncts(e->rhs.get(), out);
    return;
  }
  out->push_back(e);
}

bool CompareSatisfies(BinOp op, int cmp) {
  switch (op) {
    case BinOp::kEq: return cmp == 0;
    case BinOp::kNe: return cmp != 0;
    case BinOp::kLt: return cmp < 0;
    case BinOp::kLe: return cmp <= 0;
    case BinOp::kGt: return cmp > 0;
    case BinOp::kGe: return cmp >= 0;
    case BinOp::kAnd: return false;  // handled elsewhere
  }
  return false;
}

}  // namespace

SqlExecutor::SqlExecutor(Database* db, const sql::SelectStmt& stmt,
                         const std::vector<Value>& params)
    : db_(db), stmt_(stmt), params_(params) {}

int SqlExecutor::AliasIndex(const std::string& alias) const {
  for (size_t i = 0; i < aliases_.size(); ++i) {
    if (aliases_[i].alias == alias) return int(i);
  }
  return -1;
}

Status SqlExecutor::ResolveColumn(const Expr& e, int* alias_idx,
                                  int* col_idx) const {
  if (!e.table_alias.empty()) {
    int ai = AliasIndex(e.table_alias);
    if (ai < 0) {
      return Status::InvalidArgument("unknown alias " + e.table_alias);
    }
    int ci = aliases_[size_t(ai)].table->schema().ColumnIndex(e.column);
    if (ci < 0) {
      return Status::InvalidArgument("unknown column " + e.table_alias +
                                     "." + e.column);
    }
    *alias_idx = ai;
    *col_idx = ci;
    return Status::OK();
  }
  // Unqualified: first table whose schema has the column.
  for (size_t i = 0; i < aliases_.size(); ++i) {
    int ci = aliases_[i].table->schema().ColumnIndex(e.column);
    if (ci >= 0) {
      *alias_idx = int(i);
      *col_idx = ci;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown column " + e.column);
}

bool SqlExecutor::AllBound(const Expr& e, size_t bound_count) const {
  switch (e.kind) {
    case Expr::Kind::kColumn: {
      int ai, ci;
      if (!ResolveColumn(e, &ai, &ci).ok()) return false;
      return size_t(ai) < bound_count;
    }
    case Expr::Kind::kBinary:
      return AllBound(*e.lhs, bound_count) && AllBound(*e.rhs, bound_count);
    case Expr::Kind::kShortestPath:
      return AllBound(*e.sp_from, bound_count) &&
             AllBound(*e.sp_to, bound_count);
    default:
      return true;
  }
}

Result<Value> SqlExecutor::FetchColumn(int alias_idx, int col_idx,
                                       const Binding& binding) const {
  RowId id = binding[size_t(alias_idx)];
  Table* table = aliases_[size_t(alias_idx)].table;
  if (db_->mode() == StorageMode::kRow) {
    // Tuple-at-a-time: the row store hands back the whole tuple and the
    // executor projects out of it, as a row engine does.
    Row row;
    GB_RETURN_IF_ERROR(table->Get(id, &row));
    return row[size_t(col_idx)];
  }
  Value v;
  GB_RETURN_IF_ERROR(table->GetColumn(id, size_t(col_idx), &v));
  return v;
}

Result<Value> SqlExecutor::Eval(const Expr& e, const Binding& binding) const {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kParam:
      if (e.param_index < 0 || size_t(e.param_index) >= params_.size()) {
        return Status::InvalidArgument("parameter index out of range");
      }
      return params_[size_t(e.param_index)];
    case Expr::Kind::kColumn: {
      int ai, ci;
      GB_RETURN_IF_ERROR(ResolveColumn(e, &ai, &ci));
      if (binding[size_t(ai)] == kUnbound) {
        return Status::Internal("column evaluated before its join");
      }
      return FetchColumn(ai, ci, binding);
    }
    case Expr::Kind::kBinary: {
      if (e.op == BinOp::kAnd) {
        GB_ASSIGN_OR_RETURN(Value l, Eval(*e.lhs, binding));
        if (!l.as_bool()) return Value(false);
        return Eval(*e.rhs, binding);
      }
      GB_ASSIGN_OR_RETURN(Value l, Eval(*e.lhs, binding));
      GB_ASSIGN_OR_RETURN(Value r, Eval(*e.rhs, binding));
      return Value(CompareSatisfies(e.op, l.Compare(r)));
    }
    case Expr::Kind::kShortestPath: {
      obs::OpTimer op("shortest_path");
      GB_ASSIGN_OR_RETURN(Value from, Eval(*e.sp_from, binding));
      GB_ASSIGN_OR_RETURN(Value to, Eval(*e.sp_to, binding));
      GB_ASSIGN_OR_RETURN(
          int len, db_->ShortestPath(e.sp_table, e.sp_src_col, e.sp_dst_col,
                                     from, to));
      return Value(int64_t{len});
    }
    case Expr::Kind::kCountStar:
      return Status::Internal("COUNT(*) outside aggregation context");
  }
  return Status::Internal("unhandled expression kind");
}

Result<std::vector<SqlExecutor::Binding>> SqlExecutor::BuildDrivingSet(
    std::vector<const Expr*>* conjuncts) {
  Table* driving = aliases_[0].table;
  const std::string& table_name = stmt_.from[0].table;

  // Look for an indexed equality conjunct on the driving table.
  for (auto it = conjuncts->begin(); it != conjuncts->end(); ++it) {
    const Expr* c = *it;
    if (c->kind != Expr::Kind::kBinary || c->op != BinOp::kEq) continue;
    const Expr* col = nullptr;
    const Expr* other = nullptr;
    for (auto [a, b] : {std::pair{c->lhs.get(), c->rhs.get()},
                        std::pair{c->rhs.get(), c->lhs.get()}}) {
      if (a->kind == Expr::Kind::kColumn &&
          (b->kind == Expr::Kind::kLiteral ||
           b->kind == Expr::Kind::kParam)) {
        col = a;
        other = b;
        break;
      }
    }
    if (col == nullptr) continue;
    int ai, ci;
    if (!ResolveColumn(*col, &ai, &ci).ok() || ai != 0) continue;
    HashIndex* index = db_->GetIndex(
        table_name, driving->schema().columns()[size_t(ci)].name);
    if (index == nullptr) continue;
    Binding empty(aliases_.size(), kUnbound);
    GB_ASSIGN_OR_RETURN(Value key, Eval(*other, empty));
    std::vector<Binding> out;
    for (RowId id : index->Lookup(key)) {
      Binding b(aliases_.size(), kUnbound);
      b[0] = id;
      out.push_back(std::move(b));
    }
    conjuncts->erase(it);  // consumed by the index lookup
    return out;
  }

  // Fall back to a full scan; residual conjuncts filter later.
  std::vector<Binding> out;
  for (auto it = driving->NewScanIterator(); it->Valid(); it->Next()) {
    Binding b(aliases_.size(), kUnbound);
    b[0] = it->row_id();
    out.push_back(std::move(b));
  }
  return out;
}

Result<std::vector<SqlExecutor::Binding>> SqlExecutor::JoinNext(
    std::vector<Binding> input, size_t alias_idx, const Expr& on) {
  if (on.kind != Expr::Kind::kBinary || on.op != BinOp::kEq ||
      on.lhs->kind != Expr::Kind::kColumn ||
      on.rhs->kind != Expr::Kind::kColumn) {
    return Status::NotSupported("JOIN ON requires column equality");
  }
  int l_ai, l_ci, r_ai, r_ci;
  GB_RETURN_IF_ERROR(ResolveColumn(*on.lhs, &l_ai, &l_ci));
  GB_RETURN_IF_ERROR(ResolveColumn(*on.rhs, &r_ai, &r_ci));
  int new_ci, old_ai, old_ci;
  if (size_t(l_ai) == alias_idx) {
    new_ci = l_ci;
    old_ai = r_ai;
    old_ci = r_ci;
  } else if (size_t(r_ai) == alias_idx) {
    new_ci = r_ci;
    old_ai = l_ai;
    old_ci = l_ci;
  } else {
    return Status::NotSupported("ON must reference the joined table");
  }

  Table* new_table = aliases_[alias_idx].table;
  const std::string& new_col =
      new_table->schema().columns()[size_t(new_ci)].name;
  HashIndex* index = db_->GetIndex(stmt_.from[alias_idx].table, new_col);

  std::vector<Binding> out;
  if (index != nullptr) {
    // Index nested-loop join.
    for (Binding& b : input) {
      GB_ASSIGN_OR_RETURN(Value key, FetchColumn(old_ai, old_ci, b));
      for (RowId id : index->Lookup(key)) {
        Binding nb = b;
        nb[alias_idx] = id;
        out.push_back(std::move(nb));
      }
    }
    return out;
  }

  // Hash join: build on the new table's join column.
  std::unordered_map<Value, std::vector<RowId>, ValueHash> build;
  for (auto it = new_table->NewScanIterator(); it->Valid(); it->Next()) {
    Value key;
    GB_RETURN_IF_ERROR(
        new_table->GetColumn(it->row_id(), size_t(new_ci), &key));
    build[key].push_back(it->row_id());
  }
  for (Binding& b : input) {
    GB_ASSIGN_OR_RETURN(Value key, FetchColumn(old_ai, old_ci, b));
    auto hit = build.find(key);
    if (hit == build.end()) continue;
    for (RowId id : hit->second) {
      Binding nb = b;
      nb[alias_idx] = id;
      out.push_back(std::move(nb));
    }
  }
  return out;
}

Status SqlExecutor::ApplyReadyConjuncts(
    std::vector<const Expr*>* conjuncts, size_t bound_count,
    std::vector<Binding>* bindings) const {
  for (auto it = conjuncts->begin(); it != conjuncts->end();) {
    if (!AllBound(**it, bound_count)) {
      ++it;
      continue;
    }
    std::vector<Binding> kept;
    kept.reserve(bindings->size());
    for (Binding& b : *bindings) {
      GB_ASSIGN_OR_RETURN(Value pass, Eval(**it, b));
      if (pass.is_bool() && pass.as_bool()) kept.push_back(std::move(b));
    }
    *bindings = std::move(kept);
    it = conjuncts->erase(it);
  }
  return Status::OK();
}

Result<std::vector<Row>> SqlExecutor::Aggregate(
    const std::vector<Binding>& bindings) const {
  struct Accumulator {
    int64_t count = 0;
    double sum = 0;
    bool ints_only = true;
    Value min, max;
    Value first;       // for non-aggregate (group key) items
    bool has_first = false;
  };
  struct Group {
    Row key;
    std::vector<Accumulator> accs;
  };
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  std::vector<Group> groups;

  for (const Binding& b : bindings) {
    Row key;
    key.reserve(stmt_.group_by.size());
    for (const auto& g : stmt_.group_by) {
      GB_ASSIGN_OR_RETURN(Value v, Eval(*g, b));
      key.push_back(std::move(v));
    }
    auto [it, inserted] = index.emplace(key, groups.size());
    if (inserted) {
      groups.push_back(Group{std::move(key),
                             std::vector<Accumulator>(stmt_.items.size())});
    }
    Group& group = groups[it->second];
    for (size_t i = 0; i < stmt_.items.size(); ++i) {
      const Expr& e = *stmt_.items[i].expr;
      Accumulator& acc = group.accs[i];
      if (e.kind == Expr::Kind::kCountStar) {
        ++acc.count;
      } else if (e.kind == Expr::Kind::kAggregate) {
        GB_ASSIGN_OR_RETURN(Value v, Eval(*e.lhs, b));
        if (v.is_null()) continue;  // SQL: aggregates skip NULLs
        ++acc.count;
        if (v.is_numeric()) {
          acc.sum += v.numeric();
          acc.ints_only &= v.is_int();
        }
        if (acc.min.is_null() || v.Compare(acc.min) < 0) acc.min = v;
        if (acc.max.is_null() || v.Compare(acc.max) > 0) acc.max = v;
      } else if (!acc.has_first) {
        GB_ASSIGN_OR_RETURN(acc.first, Eval(e, b));
        acc.has_first = true;
      }
    }
  }

  // A global aggregate over zero rows still yields one (empty) group.
  if (groups.empty() && stmt_.group_by.empty()) {
    groups.push_back(Group{{}, std::vector<Accumulator>(
                                   stmt_.items.size())});
  }

  std::vector<Row> rows;
  rows.reserve(groups.size());
  for (const Group& group : groups) {
    Row row;
    row.reserve(stmt_.items.size());
    for (size_t i = 0; i < stmt_.items.size(); ++i) {
      const Expr& e = *stmt_.items[i].expr;
      const Accumulator& acc = group.accs[i];
      switch (e.kind) {
        case Expr::Kind::kCountStar:
          row.push_back(Value(acc.count));
          break;
        case Expr::Kind::kAggregate:
          switch (e.agg_fn) {
            case sql::AggFn::kCount:
              row.push_back(Value(acc.count));
              break;
            case sql::AggFn::kSum:
              row.push_back(acc.ints_only ? Value(int64_t(acc.sum))
                                          : Value(acc.sum));
              break;
            case sql::AggFn::kAvg:
              row.push_back(acc.count ? Value(acc.sum / double(acc.count))
                                      : Value());
              break;
            case sql::AggFn::kMin:
              row.push_back(acc.min);
              break;
            case sql::AggFn::kMax:
              row.push_back(acc.max);
              break;
          }
          break;
        default:
          row.push_back(acc.first);
      }
    }
    rows.push_back(std::move(row));
  }

  // ORDER BY in aggregate mode references select-item aliases.
  if (!stmt_.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;  // (column index, desc)
    for (const auto& o : stmt_.order_by) {
      if (o.expr->kind != Expr::Kind::kColumn || !o.expr->table_alias.empty()) {
        return Status::NotSupported(
            "aggregate ORDER BY must name a select alias");
      }
      size_t column = stmt_.items.size();
      for (size_t i = 0; i < stmt_.items.size(); ++i) {
        if (stmt_.items[i].name == o.expr->column) {
          column = i;
          break;
        }
      }
      if (column == stmt_.items.size()) {
        return Status::InvalidArgument("unknown ORDER BY alias " +
                                       o.expr->column);
      }
      keys.emplace_back(column, o.desc);
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [&keys](const Row& a, const Row& b) {
                       for (auto [column, desc] : keys) {
                         int c = a[column].Compare(b[column]);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  return rows;
}

Result<int64_t> SqlExecutor::EffectiveLimit() const {
  if (stmt_.limit_param < 0) return stmt_.limit;
  if (size_t(stmt_.limit_param) >= params_.size()) {
    return Status::InvalidArgument("LIMIT parameter index out of range");
  }
  const Value& v = params_[size_t(stmt_.limit_param)];
  if (!v.is_int()) {
    return Status::InvalidArgument("LIMIT parameter must be an integer");
  }
  return v.as_int();
}

Result<QueryResult> SqlExecutor::Run() {
  // Plan phase: resolve FROM aliases and flatten the WHERE conjuncts.
  obs::OpTimer plan_op("plan");
  for (const auto& ref : stmt_.from) {
    Table* t = db_->GetTable(ref.table);
    if (t == nullptr) {
      return Status::InvalidArgument("unknown table " + ref.table);
    }
    aliases_.push_back(AliasInfo{ref.alias, t});
  }

  std::vector<const Expr*> conjuncts;
  FlattenConjuncts(stmt_.where.get(), &conjuncts);
  plan_op.Stop();

  std::vector<Binding> bindings;
  if (aliases_.empty()) {
    bindings.emplace_back();  // one empty binding: SELECT SHORTEST_PATH(..)
  } else {
    {
      obs::OpTimer scan_op("scan");
      GB_ASSIGN_OR_RETURN(bindings, BuildDrivingSet(&conjuncts));
      scan_op.AddRows(bindings.size());
    }
    {
      obs::OpTimer filter_op("filter");
      GB_RETURN_IF_ERROR(ApplyReadyConjuncts(&conjuncts, 1, &bindings));
      filter_op.AddRows(bindings.size());
    }
    for (size_t i = 1; i < aliases_.size(); ++i) {
      {
        obs::OpTimer join_op("join");
        GB_ASSIGN_OR_RETURN(
            bindings, JoinNext(std::move(bindings), i, *stmt_.from[i].on));
        join_op.AddRows(bindings.size());
      }
      obs::OpTimer filter_op("filter");
      GB_RETURN_IF_ERROR(ApplyReadyConjuncts(&conjuncts, i + 1, &bindings));
      filter_op.AddRows(bindings.size());
    }
  }
  if (!conjuncts.empty()) {
    return Status::NotSupported("unappliable WHERE predicate");
  }

  QueryResult result;
  for (const auto& item : stmt_.items) result.columns.push_back(item.name);

  // Aggregation path: any aggregate item or an explicit GROUP BY.
  bool has_aggregate = !stmt_.group_by.empty();
  for (const auto& item : stmt_.items) {
    has_aggregate |= item.expr->kind == Expr::Kind::kCountStar ||
                     item.expr->kind == Expr::Kind::kAggregate;
  }
  if (has_aggregate) {
    obs::OpTimer agg_op("aggregate");
    GB_ASSIGN_OR_RETURN(result.rows, Aggregate(bindings));
    GB_ASSIGN_OR_RETURN(int64_t bound, EffectiveLimit());
    size_t limit = bound < 0 ? result.rows.size()
                             : std::min(size_t(bound), result.rows.size());
    result.rows.resize(limit);
    agg_op.AddRows(result.rows.size());
    return result;
  }

  // Projection, with ORDER BY keys computed alongside.
  struct Projected {
    Row row;
    Row sort_key;
  };
  std::vector<Projected> projected;
  projected.reserve(bindings.size());
  std::unordered_set<Row, RowHash, RowEq> seen;
  obs::OpTimer project_op("project");
  for (const Binding& b : bindings) {
    Row row;
    row.reserve(stmt_.items.size());
    for (const auto& item : stmt_.items) {
      GB_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, b));
      row.push_back(std::move(v));
    }
    if (stmt_.distinct && !seen.insert(row).second) continue;
    Row sort_key;
    for (const auto& o : stmt_.order_by) {
      GB_ASSIGN_OR_RETURN(Value v, Eval(*o.expr, b));
      sort_key.push_back(std::move(v));
    }
    projected.push_back(Projected{std::move(row), std::move(sort_key)});
  }
  project_op.AddRows(projected.size());
  project_op.Stop();

  if (!stmt_.order_by.empty()) {
    obs::OpTimer sort_op("sort");
    std::stable_sort(projected.begin(), projected.end(),
                     [this](const Projected& a, const Projected& b) {
                       for (size_t i = 0; i < stmt_.order_by.size(); ++i) {
                         int c = a.sort_key[i].Compare(b.sort_key[i]);
                         if (c != 0) {
                           return stmt_.order_by[i].desc ? c > 0 : c < 0;
                         }
                       }
                       return false;
                     });
  }

  GB_ASSIGN_OR_RETURN(int64_t bound, EffectiveLimit());
  size_t limit = bound < 0 ? projected.size()
                           : std::min(size_t(bound), projected.size());
  result.rows.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    result.rows.push_back(std::move(projected[i].row));
  }
  return result;
}

}  // namespace graphbench
