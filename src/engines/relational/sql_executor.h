#ifndef GRAPHBENCH_ENGINES_RELATIONAL_SQL_EXECUTOR_H_
#define GRAPHBENCH_ENGINES_RELATIONAL_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "engines/relational/database.h"
#include "engines/relational/query_result.h"
#include "lang/sql/ast.h"
#include "util/result.h"

namespace graphbench {

/// Executes a parsed SELECT against a Database. Planning is heuristic and
/// query-shape-appropriate for the SNB workload:
///   - the driving table is FROM[0]; an indexed equality predicate on it
///     becomes an index lookup, otherwise a filtered scan;
///   - each JOIN uses an index nested-loop join when the new side's join
///     column is indexed, falling back to a hash join built over a scan;
///   - residual predicates apply as soon as their aliases are bound.
///
/// Column access follows the storage engine: row mode materializes the
/// whole tuple per access (tuple-at-a-time, the Postgres model); columnar
/// mode fetches only the referenced column (the Virtuoso model). That
/// asymmetry — not different plans — is what separates the two SQL SUTs.
class SqlExecutor {
 public:
  SqlExecutor(Database* db, const sql::SelectStmt& stmt,
              const std::vector<Value>& params);

  Result<QueryResult> Run();

 private:
  struct AliasInfo {
    std::string alias;
    Table* table = nullptr;
  };
  // A binding assigns a RowId to each alias (kUnbound before its join).
  static constexpr RowId kUnbound = ~RowId{0};
  using Binding = std::vector<RowId>;

  int AliasIndex(const std::string& alias) const;
  // Resolves a column expr to (alias index, column index).
  Status ResolveColumn(const sql::Expr& e, int* alias_idx,
                       int* col_idx) const;
  // True when every column referenced by `e` belongs to a bound alias.
  bool AllBound(const sql::Expr& e, size_t bound_count) const;

  Result<Value> Eval(const sql::Expr& e, const Binding& binding) const;
  // The row bound: the literal LIMIT, a bound LIMIT ? parameter, or -1
  // for none.
  Result<int64_t> EffectiveLimit() const;
  // Column fetch honouring the storage model (see class comment).
  Result<Value> FetchColumn(int alias_idx, int col_idx,
                            const Binding& binding) const;

  Result<std::vector<Binding>> BuildDrivingSet(
      std::vector<const sql::Expr*>* conjuncts);
  Result<std::vector<Binding>> JoinNext(std::vector<Binding> input,
                                        size_t alias_idx,
                                        const sql::Expr& on);
  Status ApplyReadyConjuncts(std::vector<const sql::Expr*>* conjuncts,
                             size_t bound_count,
                             std::vector<Binding>* bindings) const;

  // Grouped/global aggregation over the final binding set, honouring
  // GROUP BY and ORDER BY on select-item aliases.
  Result<std::vector<Row>> Aggregate(
      const std::vector<Binding>& bindings) const;

  Database* db_;
  const sql::SelectStmt& stmt_;
  const std::vector<Value>& params_;
  std::vector<AliasInfo> aliases_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_RELATIONAL_SQL_EXECUTOR_H_
