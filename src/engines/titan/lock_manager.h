#ifndef GRAPHBENCH_ENGINES_TITAN_LOCK_MANAGER_H_
#define GRAPHBENCH_ENGINES_TITAN_LOCK_MANAGER_H_

#include <array>
#include <functional>
#include <mutex>
#include <string_view>

namespace graphbench {

/// Striped lock table keyed by byte strings. TitanDB must implement its
/// own locking to guarantee index uniqueness because Cassandra provides no
/// transactional isolation — the paper points at exactly this locking as a
/// drag on Titan-C's update throughput (§4.3).
class LockManager {
 public:
  static constexpr size_t kStripes = 64;

  /// RAII guard for one key's stripe.
  class Guard {
   public:
    explicit Guard(std::mutex* mu) : mu_(mu) { mu_->lock(); }
    ~Guard() {
      if (mu_ != nullptr) mu_->unlock();
    }
    Guard(Guard&& other) noexcept : mu_(other.mu_) { other.mu_ = nullptr; }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    Guard& operator=(Guard&&) = delete;

   private:
    std::mutex* mu_;
  };

  Guard Lock(std::string_view key) {
    size_t stripe = std::hash<std::string_view>()(key) % kStripes;
    return Guard(&stripes_[stripe]);
  }

 private:
  std::array<std::mutex, kStripes> stripes_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_TITAN_LOCK_MANAGER_H_
