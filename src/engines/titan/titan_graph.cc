#include "engines/titan/titan_graph.h"

#include "obs/lock_timer.h"

#include <mutex>

#include "graph/value_codec.h"
#include "kv/key_codec.h"

namespace graphbench {

TitanGraph::TitanGraph(std::unique_ptr<KvStore> backend)
    : kv_(std::move(backend)) {}

std::string TitanGraph::VertexKey(uint64_t vid) {
  std::string key;
  keycodec::AppendByte(&key, 'V');
  keycodec::AppendU64(&key, vid);
  return key;
}

std::string TitanGraph::AdjPrefix(uint64_t vid, Direction dir,
                                  std::string_view elabel) {
  std::string key;
  keycodec::AppendByte(&key, 'A');
  keycodec::AppendU64(&key, vid);
  keycodec::AppendByte(&key, dir == Direction::kOut ? 0 : 1);
  if (!elabel.empty()) keycodec::AppendString(&key, elabel);
  return key;
}

std::string TitanGraph::AdjKey(uint64_t vid, Direction dir,
                               std::string_view elabel, uint64_t other,
                               uint64_t eid) {
  std::string key = AdjPrefix(vid, dir, elabel);
  keycodec::AppendU64(&key, other);
  keycodec::AppendU64(&key, eid);
  return key;
}

std::string TitanGraph::IndexKey(std::string_view label,
                                 std::string_view key, const Value& value) {
  std::string out;
  keycodec::AppendByte(&out, 'I');
  keycodec::AppendString(&out, label);
  keycodec::AppendString(&out, key);
  valuecodec::EncodeValue(&out, value);
  return out;
}

Status TitanGraph::RegisterUniqueIndex(std::string_view label,
                                       std::string_view key) {
  std::unique_lock<obs::TimedSharedMutex> lock(index_mu_);
  indexed_.emplace(std::string(label), std::string(key));
  return Status::OK();
}

Result<GVertex> TitanGraph::AddVertex(std::string_view label,
                                      const PropertyMap& props) {
  // Determine which unique index (if any) guards this label.
  std::string index_key;
  {
    std::shared_lock<obs::TimedSharedMutex> lock(index_mu_);
    for (const auto& [ilabel, ikey] : indexed_) {
      if (ilabel == label && props.Has(ikey)) {
        index_key = IndexKey(label, ikey, props.Get(ikey));
        break;
      }
    }
  }

  uint64_t vid = next_vertex_.fetch_add(1);
  std::string row;
  valuecodec::EncodeValue(&row, Value(std::string(label)));
  valuecodec::EncodePropertyMap(&row, props);

  if (!index_key.empty()) {
    // The backend has no isolation (Cassandra), so Titan takes an explicit
    // lock around the check-then-insert on the uniqueness index.
    LockManager::Guard guard = locks_.Lock(index_key);
    std::string existing;
    if (kv_->Get(index_key, &existing).ok()) {
      return Status::AlreadyExists("unique index violation");
    }
    std::string vid_bytes;
    keycodec::AppendU64(&vid_bytes, vid);
    GB_RETURN_IF_ERROR(kv_->Put(index_key, vid_bytes));
    GB_RETURN_IF_ERROR(kv_->Put(VertexKey(vid), row));
  } else {
    GB_RETURN_IF_ERROR(kv_->Put(VertexKey(vid), row));
  }
  ++vertex_count_;
  return GVertex{vid};
}

Status TitanGraph::AddEdge(std::string_view label, GVertex from, GVertex to,
                           const PropertyMap& props) {
  std::string probe;
  if (!kv_->Get(VertexKey(from.id), &probe).ok() ||
      !kv_->Get(VertexKey(to.id), &probe).ok()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  uint64_t eid = next_edge_.fetch_add(1);
  std::string row;
  valuecodec::EncodePropertyMap(&row, props);
  // The edge is materialized on both endpoints (Titan's BigTable layout).
  GB_RETURN_IF_ERROR(
      kv_->Put(AdjKey(from.id, Direction::kOut, label, to.id, eid), row));
  GB_RETURN_IF_ERROR(
      kv_->Put(AdjKey(to.id, Direction::kIn, label, from.id, eid), row));
  ++edge_count_;
  return Status::OK();
}

Status TitanGraph::RemoveEdge(std::string_view label, GVertex from,
                              GVertex to) {
  // Scan the out-adjacency of each orientation for one matching edge,
  // then delete both of its materializations.
  for (const auto& [src, dst] :
       {std::pair<GVertex, GVertex>{from, to}, {to, from}}) {
    std::vector<std::pair<std::string, std::string>> rows;
    GB_RETURN_IF_ERROR(
        kv_->ScanPrefix(AdjPrefix(src.id, Direction::kOut, label), &rows));
    for (const auto& [key, value] : rows) {
      std::string_view kview(key);
      uint8_t tag, dbyte;
      uint64_t vid, other, eid;
      std::string elabel;
      if (!keycodec::DecodeByte(&kview, &tag) ||
          !keycodec::DecodeU64(&kview, &vid) ||
          !keycodec::DecodeByte(&kview, &dbyte) ||
          !keycodec::DecodeString(&kview, &elabel) ||
          !keycodec::DecodeU64(&kview, &other) ||
          !keycodec::DecodeU64(&kview, &eid)) {
        return Status::Corruption("bad adjacency key");
      }
      if (other != dst.id) continue;
      GB_RETURN_IF_ERROR(kv_->Delete(
          AdjKey(src.id, Direction::kOut, label, dst.id, eid)));
      GB_RETURN_IF_ERROR(kv_->Delete(
          AdjKey(dst.id, Direction::kIn, label, src.id, eid)));
      --edge_count_;
      return Status::OK();
    }
  }
  return Status::NotFound("edge");
}

Result<std::vector<GVertex>> TitanGraph::VerticesByProperty(
    std::string_view label, std::string_view key, const Value& value) {
  {
    std::shared_lock<obs::TimedSharedMutex> lock(index_mu_);
    if (indexed_.count({std::string(label), std::string(key)})) {
      std::string vid_bytes;
      Status s = kv_->Get(IndexKey(label, key, value), &vid_bytes);
      if (s.IsNotFound()) return std::vector<GVertex>{};
      GB_RETURN_IF_ERROR(s);
      std::string_view view(vid_bytes);
      uint64_t vid;
      if (!keycodec::DecodeU64(&view, &vid)) {
        return Status::Corruption("bad index entry");
      }
      return std::vector<GVertex>{GVertex{vid}};
    }
  }
  // Unindexed: scan all vertex rows (the expensive fallback).
  GB_ASSIGN_OR_RETURN(std::vector<GVertex> all, AllVertices(label));
  std::vector<GVertex> out;
  for (GVertex v : all) {
    GB_ASSIGN_OR_RETURN(Value got, Property(v, key));
    if (got == value) out.push_back(v);
  }
  return out;
}

Result<std::vector<GVertex>> TitanGraph::AllVertices(
    std::string_view label) {
  std::string prefix;
  keycodec::AppendByte(&prefix, 'V');
  std::vector<std::pair<std::string, std::string>> rows;
  GB_RETURN_IF_ERROR(kv_->ScanPrefix(prefix, &rows));
  std::vector<GVertex> out;
  for (const auto& [key, value] : rows) {
    std::string_view kview(key);
    uint8_t tag;
    uint64_t vid;
    if (!keycodec::DecodeByte(&kview, &tag) ||
        !keycodec::DecodeU64(&kview, &vid)) {
      return Status::Corruption("bad vertex key");
    }
    if (!label.empty()) {
      std::string_view vview(value);
      Value vlabel;
      if (!valuecodec::DecodeValue(&vview, &vlabel)) {
        return Status::Corruption("bad vertex row");
      }
      if (vlabel.as_string() != label) continue;
    }
    out.push_back(GVertex{vid});
  }
  return out;
}

Result<std::vector<GVertex>> TitanGraph::Adjacent(
    GVertex v, std::string_view edge_label, Direction dir) {
  std::vector<GVertex> out;
  std::vector<std::pair<std::string, std::string>> rows;
  for (Direction d : {Direction::kOut, Direction::kIn}) {
    if (dir != Direction::kBoth && dir != d) continue;
    GB_RETURN_IF_ERROR(kv_->ScanPrefix(AdjPrefix(v.id, d, edge_label),
                                       &rows));
    for (const auto& [key, value] : rows) {
      // Key: 'A' vid dir [elabel] other eid — decode from the back is
      // awkward with varying label, so decode forward.
      std::string_view kview(key);
      uint8_t tag, dbyte;
      uint64_t vid, other, eid;
      std::string elabel;
      if (!keycodec::DecodeByte(&kview, &tag) ||
          !keycodec::DecodeU64(&kview, &vid) ||
          !keycodec::DecodeByte(&kview, &dbyte) ||
          !keycodec::DecodeString(&kview, &elabel) ||
          !keycodec::DecodeU64(&kview, &other) ||
          !keycodec::DecodeU64(&kview, &eid)) {
        return Status::Corruption("bad adjacency key");
      }
      out.push_back(GVertex{other});
    }
  }
  return out;
}

Status TitanGraph::LoadVertex(uint64_t vid, std::string* label,
                              PropertyMap* props) const {
  std::string row;
  GB_RETURN_IF_ERROR(kv_->Get(VertexKey(vid), &row));
  std::string_view view(row);
  Value vlabel;
  if (!valuecodec::DecodeValue(&view, &vlabel) ||
      !valuecodec::DecodePropertyMap(&view, props)) {
    return Status::Corruption("bad vertex row");
  }
  if (label != nullptr) *label = vlabel.as_string();
  return Status::OK();
}

Result<Value> TitanGraph::Property(GVertex v, std::string_view key) {
  // Whole-row decode per property read: the storage-abstraction tax.
  PropertyMap props;
  GB_RETURN_IF_ERROR(LoadVertex(v.id, nullptr, &props));
  return props.Get(key);
}

Result<std::string> TitanGraph::Label(GVertex v) {
  std::string label;
  PropertyMap props;
  GB_RETURN_IF_ERROR(LoadVertex(v.id, &label, &props));
  return label;
}

}  // namespace graphbench
