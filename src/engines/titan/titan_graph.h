#ifndef GRAPHBENCH_ENGINES_TITAN_TITAN_GRAPH_H_
#define GRAPHBENCH_ENGINES_TITAN_TITAN_GRAPH_H_

#include <atomic>
#include <memory>
#include <set>
#include <shared_mutex>

#include "obs/lock_timer.h"
#include <string>
#include <utility>

#include "engines/titan/lock_manager.h"
#include "kv/kv_store.h"
#include "tinkerpop/structure.h"

namespace graphbench {

/// Property graph layered over a pluggable key-value store: the TitanDB
/// analog. With an LsmKv backend this is Titan-C (Cassandra); with a
/// BTreeKv backend, Titan-B (BerkeleyDB).
///
/// Storage layout (order-preserving keycodec):
///   'V' vid                         -> label + encoded PropertyMap
///   'A' vid dir elabel other eid    -> encoded edge PropertyMap
///   'I' label key encoded-value     -> vid (unique vertex index)
///
/// Every vertex/edge access crosses the serialization codec and every
/// uniqueness check takes an explicit lock (the KV store below offers no
/// isolation) — the storage/indexing abstraction costs the paper blames
/// for Titan's latency and update throughput (§4.2-4.3).
class TitanGraph : public GremlinGraph {
 public:
  explicit TitanGraph(std::unique_ptr<KvStore> backend);

  Result<GVertex> AddVertex(std::string_view label,
                            const PropertyMap& props) override;
  Status AddEdge(std::string_view label, GVertex from, GVertex to,
                 const PropertyMap& props) override;
  Status RemoveEdge(std::string_view label, GVertex from,
                    GVertex to) override;
  Result<std::vector<GVertex>> VerticesByProperty(
      std::string_view label, std::string_view key,
      const Value& value) override;
  Result<std::vector<GVertex>> AllVertices(std::string_view label) override;
  Result<std::vector<GVertex>> Adjacent(GVertex v,
                                        std::string_view edge_label,
                                        Direction dir) override;
  Result<Value> Property(GVertex v, std::string_view key) override;
  Result<std::string> Label(GVertex v) override;
  uint64_t VertexCount() const override { return vertex_count_; }
  uint64_t EdgeCount() const override { return edge_count_; }
  uint64_t ApproximateSizeBytes() const override {
    return kv_->ApproximateSizeBytes();
  }
  std::string name() const override { return "titan-" + kv_->name(); }

  /// Declares a unique index on (vertex label, property key). Must be
  /// called before vertices of that label are added (Titan's schema-first
  /// index definition).
  Status RegisterUniqueIndex(std::string_view label, std::string_view key);

  KvStore* backend() { return kv_.get(); }

 private:
  static std::string VertexKey(uint64_t vid);
  static std::string AdjPrefix(uint64_t vid, Direction dir,
                               std::string_view elabel);
  static std::string AdjKey(uint64_t vid, Direction dir,
                            std::string_view elabel, uint64_t other,
                            uint64_t eid);
  static std::string IndexKey(std::string_view label, std::string_view key,
                              const Value& value);

  // Reads and decodes the vertex row.
  Status LoadVertex(uint64_t vid, std::string* label,
                    PropertyMap* props) const;

  std::unique_ptr<KvStore> kv_;
  LockManager locks_;
  std::atomic<uint64_t> next_vertex_{0};
  std::atomic<uint64_t> next_edge_{0};
  std::atomic<uint64_t> vertex_count_{0};
  std::atomic<uint64_t> edge_count_{0};
  mutable obs::TimedSharedMutex index_mu_{"titan.lock_wait_us"};
  std::set<std::pair<std::string, std::string>> indexed_;  // (label, key)
};

}  // namespace graphbench

#endif  // GRAPHBENCH_ENGINES_TITAN_TITAN_GRAPH_H_
