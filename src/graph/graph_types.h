#ifndef GRAPHBENCH_GRAPH_GRAPH_TYPES_H_
#define GRAPHBENCH_GRAPH_GRAPH_TYPES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/value.h"

namespace graphbench {

/// Engine-internal vertex/edge identifiers (dense, assigned at insert).
/// Distinct from application-level IDs (the SNB "id" property), which are
/// looked up through the per-label unique index, as in the paper (§4.1).
using VertexId = uint64_t;
using EdgeId = uint64_t;

inline constexpr VertexId kInvalidVertexId = ~VertexId{0};
inline constexpr EdgeId kInvalidEdgeId = ~EdgeId{0};

enum class Direction : uint8_t { kOut = 0, kIn = 1, kBoth = 2 };

/// Ordered list of named properties. Small and flat: SNB entities carry
/// ~5-10 properties, so linear search beats hashing.
class PropertyMap {
 public:
  PropertyMap() = default;
  PropertyMap(std::initializer_list<std::pair<std::string, Value>> init) {
    for (auto& [k, v] : init) Set(k, v);
  }

  void Set(std::string_view key, Value value) {
    for (auto& [k, v] : entries_) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    entries_.emplace_back(std::string(key), std::move(value));
  }

  /// Null Value when absent.
  const Value& Get(std::string_view key) const {
    static const Value kNull;
    for (const auto& [k, v] : entries_) {
      if (k == key) return v;
    }
    return kNull;
  }

  bool Has(std::string_view key) const {
    for (const auto& [k, v] : entries_) {
      if (k == key) return true;
    }
    return false;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, Value>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

/// An adjacency entry: the neighbouring vertex plus the connecting edge.
struct Neighbor {
  VertexId vertex;
  EdgeId edge;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_GRAPH_GRAPH_TYPES_H_
