#include "graph/landmarks.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <utility>

#include "obs/metrics.h"

namespace graphbench {
namespace {

constexpr int32_t kUnreachable = -1;
constexpr int kInfinity = std::numeric_limits<int>::max() / 4;

obs::Counter* HitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("landmarks.hits");
  return c;
}
obs::Counter* PrunesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("landmarks.prunes");
  return c;
}
obs::Counter* RebuildsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("landmarks.rebuilds");
  return c;
}

}  // namespace

LandmarkIndex::LandmarkIndex(LandmarkOptions options)
    : options_(options) {}

int32_t LandmarkIndex::InternLocked(int64_t person_id) {
  auto it = id_to_idx_.find(person_id);
  if (it != id_to_idx_.end()) return it->second;
  int32_t idx = static_cast<int32_t>(ids_.size());
  id_to_idx_.emplace(person_id, idx);
  ids_.push_back(person_id);
  adj_.emplace_back();
  // A vertex born after Build starts unreachable from every landmark;
  // the insert repair that adds its first edge settles its distances.
  for (auto& d : dist_) d.push_back(kUnreachable);
  return idx;
}

void LandmarkIndex::AddPerson(int64_t person_id) {
  std::unique_lock lock(mu_);
  InternLocked(person_id);
}

void LandmarkIndex::AddEdge(int64_t a, int64_t b) {
  std::unique_lock lock(mu_);
  int32_t ia = InternLocked(a);
  int32_t ib = InternLocked(b);
  adj_[ia].push_back(ib);
  adj_[ib].push_back(ia);
}

void LandmarkIndex::BfsLocked(int32_t source,
                              std::vector<int32_t>* dist) const {
  dist->assign(adj_.size(), kUnreachable);
  (*dist)[source] = 0;
  std::deque<int32_t> queue{source};
  while (!queue.empty()) {
    int32_t x = queue.front();
    queue.pop_front();
    int32_t next = (*dist)[x] + 1;
    for (int32_t n : adj_[x]) {
      if ((*dist)[n] != kUnreachable) continue;
      (*dist)[n] = next;
      queue.push_back(n);
    }
  }
}

void LandmarkIndex::BuildLocked() {
  const size_t n = adj_.size();
  const size_t k = std::min<size_t>(
      n, static_cast<size_t>(std::max(options_.num_landmarks, 0)));
  if (options_.hub_selection == HubSelection::kCoverage) {
    // Farthest-point coverage: seed with the highest-degree person, then
    // repeatedly take the person farthest from every hub chosen so far
    // (unreachable counts as infinitely far, so each extra component gets
    // a hub before any component gets its second). Each selection's BFS
    // doubles as the hub's distance vector — same K-BFS cost as kDegree.
    // All tie-breaks are deterministic: degree desc, then id asc.
    landmarks_.clear();
    dist_.clear();
    std::vector<bool> chosen(n, false);
    std::vector<int> mindist(n, kInfinity);
    auto beats = [this, &mindist](int32_t a, int32_t b) {
      // True when a is a strictly better next hub than b.
      if (mindist[a] != mindist[b]) return mindist[a] > mindist[b];
      if (adj_[a].size() != adj_[b].size())
        return adj_[a].size() > adj_[b].size();
      return ids_[a] < ids_[b];
    };
    int32_t next = -1;
    for (size_t i = 0; i < n; ++i) {
      int32_t c = static_cast<int32_t>(i);
      if (next < 0 || beats(c, next)) next = c;
    }
    while (landmarks_.size() < k) {
      chosen[next] = true;
      landmarks_.push_back(next);
      dist_.emplace_back();
      BfsLocked(next, &dist_.back());
      const std::vector<int32_t>& d = dist_.back();
      for (size_t i = 0; i < n; ++i) {
        if (d[i] != kUnreachable && d[i] < mindist[i]) mindist[i] = d[i];
      }
      next = -1;
      for (size_t i = 0; i < n; ++i) {
        int32_t c = static_cast<int32_t>(i);
        if (chosen[i]) continue;
        if (next < 0 || beats(c, next)) next = c;
      }
      if (next < 0) break;  // fewer persons than landmarks
    }
  } else {
    // Hubs: highest knows-degree first, person id as deterministic
    // tie-break (the paper's generator hands every run the same hubs).
    std::vector<int32_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
    std::sort(order.begin(), order.end(), [this](int32_t a, int32_t b) {
      if (adj_[a].size() != adj_[b].size())
        return adj_[a].size() > adj_[b].size();
      return ids_[a] < ids_[b];
    });
    landmarks_.assign(order.begin(), order.begin() + k);
    dist_.resize(landmarks_.size());
    for (size_t i = 0; i < landmarks_.size(); ++i)
      BfsLocked(landmarks_[i], &dist_[i]);
  }
  built_ = true;
  built_epoch_ = epoch_;
  writes_since_build_ = 0;
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  RebuildsCounter()->Increment();
}

void LandmarkIndex::Build() {
  std::unique_lock lock(mu_);
  ++epoch_;
  BuildLocked();
}

void LandmarkIndex::NoteWriteLocked(bool repaired) {
  ++epoch_;
  ++writes_since_build_;
  if (!repaired || writes_since_build_ >= options_.rebuild_churn_threshold) {
    BuildLocked();
  }
}

void LandmarkIndex::OnPersonAdded(int64_t person_id) {
  std::unique_lock lock(mu_);
  InternLocked(person_id);
  ++epoch_;
}

bool LandmarkIndex::RepairInsertLocked(int32_t a, int32_t b) {
  // Unit-weight decrease propagation: the new edge can only lower
  // distances, by relaxing across (a,b) and flooding outward.
  size_t settled = 0;
  std::deque<int32_t> queue;
  for (auto& dist : dist_) {
    int da = dist[a] == kUnreachable ? kInfinity : dist[a];
    int db = dist[b] == kUnreachable ? kInfinity : dist[b];
    queue.clear();
    if (db + 1 < da) {
      dist[a] = db + 1;
      queue.push_back(a);
    } else if (da + 1 < db) {
      dist[b] = da + 1;
      queue.push_back(b);
    }
    while (!queue.empty()) {
      int32_t x = queue.front();
      queue.pop_front();
      if (++settled > options_.repair_budget) return false;
      int32_t next = dist[x] + 1;
      for (int32_t n : adj_[x]) {
        if (dist[n] != kUnreachable && dist[n] <= next) continue;
        dist[n] = next;
        queue.push_back(n);
      }
    }
  }
  return true;
}

void LandmarkIndex::OnEdgeAdded(int64_t a, int64_t b) {
  std::unique_lock lock(mu_);
  int32_t ia = InternLocked(a);
  int32_t ib = InternLocked(b);
  adj_[ia].push_back(ib);
  adj_[ib].push_back(ia);
  if (!built_) {
    ++epoch_;
    return;
  }
  bool repaired = RepairInsertLocked(ia, ib);
  if (repaired) repairs_.fetch_add(1, std::memory_order_relaxed);
  NoteWriteLocked(repaired);
}

bool LandmarkIndex::RepairRemoveLocked(int32_t a, int32_t b) {
  // A parallel knows edge keeps every distance intact.
  for (int32_t n : adj_[a])
    if (n == b) return true;

  size_t settled = 0;
  std::vector<int32_t> region;
  // Dijkstra with unit weights over the invalidated region, keyed by
  // tentative distance; lazy deletion.
  using Entry = std::pair<int32_t, int32_t>;  // (tentative dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  for (auto& dist : dist_) {
    int32_t da = dist[a];
    int32_t db = dist[b];
    // With the edge present both endpoints were in the same component,
    // so one-sided unreachability cannot arise; skip defensively.
    if (da == kUnreachable || db == kUnreachable) continue;
    // Only a tree-tight edge (levels differing by exactly one) can have
    // carried shortest paths; same-level edges never do.
    int32_t diff = da - db;
    if (diff != 1 && diff != -1) continue;
    int32_t w = diff == 1 ? a : b;  // farther endpoint
    // Still supported by another parent one level up? Nothing moved.
    bool supported = false;
    for (int32_t n : adj_[w]) {
      if (dist[n] != kUnreachable && dist[n] == dist[w] - 1) {
        supported = true;
        break;
      }
    }
    if (supported) continue;

    // Superset of every vertex whose distance may grow: the closure of
    // strict BFS descendants of w. Vertices inside whose distance is in
    // fact unchanged re-derive to the same value below.
    region.clear();
    region.push_back(w);
    std::vector<int32_t> saved{dist[w]};
    dist[w] = kUnreachable - 1;  // -2: "in region, not yet re-settled"
    for (size_t head = 0; head < region.size(); ++head) {
      if (region.size() > options_.repair_budget) {
        for (size_t i = 0; i < region.size(); ++i) dist[region[i]] = saved[i];
        return false;
      }
      int32_t x = region[head];
      int32_t child_level = saved[head] + 1;
      for (int32_t n : adj_[x]) {
        if (dist[n] == kUnreachable || dist[n] != child_level) continue;
        region.push_back(n);
        saved.push_back(dist[n]);
        dist[n] = kUnreachable - 1;
      }
    }
    // Re-settle from the region boundary: any intact neighbor seeds a
    // tentative distance; unreached region vertices are now disconnected.
    while (!pq.empty()) pq.pop();
    for (int32_t x : region) {
      for (int32_t n : adj_[x]) {
        if (dist[n] >= 0) pq.emplace(dist[n] + 1, x);
      }
    }
    while (!pq.empty()) {
      auto [t, x] = pq.top();
      pq.pop();
      if (dist[x] >= 0) continue;  // already settled at <= t
      dist[x] = t;
      if (++settled > options_.repair_budget) return false;
      for (int32_t n : adj_[x]) {
        if (dist[n] < 0 && dist[n] != kUnreachable) pq.emplace(t + 1, n);
      }
    }
    for (int32_t x : region) {
      if (dist[x] < 0) dist[x] = kUnreachable;
    }
  }
  return true;
}

void LandmarkIndex::OnEdgeRemoved(int64_t a, int64_t b) {
  std::unique_lock lock(mu_);
  auto ita = id_to_idx_.find(a);
  auto itb = id_to_idx_.find(b);
  if (ita == id_to_idx_.end() || itb == id_to_idx_.end()) return;
  int32_t ia = ita->second;
  int32_t ib = itb->second;
  // Drop one occurrence from each side of the mirror.
  auto erase_one = [this](int32_t from, int32_t to) {
    auto& list = adj_[from];
    auto it = std::find(list.begin(), list.end(), to);
    if (it == list.end()) return false;
    *it = list.back();
    list.pop_back();
    return true;
  };
  if (!erase_one(ia, ib)) return;  // edge was never mirrored
  erase_one(ib, ia);
  if (!built_) {
    ++epoch_;
    return;
  }
  bool repaired = RepairRemoveLocked(ia, ib);
  if (repaired) repairs_.fetch_add(1, std::memory_order_relaxed);
  // A landmark may sit on the removed edge's far side with its region
  // torn off mid-repair on budget overflow; NoteWriteLocked rebuilds.
  NoteWriteLocked(repaired);
}

std::optional<LandmarkIndex::Bounds> LandmarkIndex::BoundsFor(
    int64_t from, int64_t to) const {
  std::shared_lock lock(mu_);
  auto itf = id_to_idx_.find(from);
  auto itt = id_to_idx_.find(to);
  if (itf == id_to_idx_.end() || itt == id_to_idx_.end() || !built_)
    return std::nullopt;
  Bounds out;
  if (itf->second == itt->second) {
    out.lower = 0;
    out.upper = 0;
    return out;
  }
  int lb = 0;
  int ub = kInfinity;
  for (const auto& dist : dist_) {
    int32_t df = dist[itf->second];
    int32_t dt = dist[itt->second];
    if ((df == kUnreachable) != (dt == kUnreachable)) {
      out.disconnected = true;
      out.upper = -1;
      out.lower = kInfinity;
      return out;
    }
    if (df == kUnreachable) continue;  // landmark sees neither endpoint
    lb = std::max(lb, df > dt ? df - dt : dt - df);
    ub = std::min(ub, df + dt);
  }
  out.lower = lb;
  out.upper = ub == kInfinity ? -1 : ub;
  return out;
}

std::optional<int> LandmarkIndex::ShortestPathLen(int64_t from,
                                                  int64_t to) const {
  std::shared_lock lock(mu_);
  auto itf = id_to_idx_.find(from);
  auto itt = id_to_idx_.find(to);
  if (itf == id_to_idx_.end() || itt == id_to_idx_.end() || !built_) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  int32_t src = itf->second;
  int32_t dst = itt->second;
  if (src == dst) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    HitsCounter()->Increment();
    return 0;
  }

  int lb = 0;
  int ub = kInfinity;
  for (size_t i = 0; i < dist_.size(); ++i) {
    int32_t df = dist_[i][src];
    int32_t dt = dist_[i][dst];
    if ((df == kUnreachable) != (dt == kUnreachable)) {
      // One endpoint in this landmark's component, the other not:
      // different components, no path.
      hits_.fetch_add(1, std::memory_order_relaxed);
      HitsCounter()->Increment();
      return -1;
    }
    if (df == kUnreachable) continue;
    lb = std::max(lb, df > dt ? df - dt : dt - df);
    ub = std::min(ub, df + dt);
  }
  if (lb >= ub) {
    // Bounds met: the path through the best landmark is optimal.
    hits_.fetch_add(1, std::memory_order_relaxed);
    HitsCounter()->Increment();
    return ub;
  }

  // Bound-pruned bidirectional BFS, looking only for paths shorter than
  // ub; exhaustion proves the landmark path (length ub) is optimal.
  uint64_t prunes = 0;
  std::unordered_map<int32_t, int32_t> seen_f{{src, 0}};
  std::unordered_map<int32_t, int32_t> seen_b{{dst, 0}};
  std::vector<int32_t> frontier_f{src};
  std::vector<int32_t> frontier_b{dst};
  std::vector<int32_t> next;
  int df = 0;
  int db = 0;
  int best = ub;
  while (!frontier_f.empty() && !frontier_b.empty() && df + db < best) {
    bool forward = frontier_f.size() <= frontier_b.size();
    auto& frontier = forward ? frontier_f : frontier_b;
    auto& seen = forward ? seen_f : seen_b;
    auto& other = forward ? seen_b : seen_f;
    int depth = (forward ? ++df : ++db);
    int32_t far_end = forward ? dst : src;
    next.clear();
    for (int32_t x : frontier) {
      for (int32_t n : adj_[x]) {
        if (!seen.emplace(n, depth).second) continue;
        auto met = other.find(n);
        if (met != other.end()) best = std::min(best, depth + met->second);
        if (best < kInfinity) {
          // Prune any vertex that provably cannot lie on a path shorter
          // than the best answer so far: depth(n) + LB(n, far end) is a
          // lower bound on every path through n.
          int est = depth;
          for (const auto& dist : dist_) {
            int32_t dn = dist[n];
            int32_t de = dist[far_end];
            if (dn == kUnreachable || de == kUnreachable) continue;
            est = std::max(est, depth + (dn > de ? dn - de : de - dn));
          }
          if (est >= best) {
            ++prunes;
            continue;
          }
        }
        next.push_back(n);
      }
    }
    frontier.swap(next);
  }
  if (prunes > 0) {
    prunes_.fetch_add(prunes, std::memory_order_relaxed);
    PrunesCounter()->Increment(prunes);
  }
  pruned_searches_.fetch_add(1, std::memory_order_relaxed);
  if (best < kInfinity) return best;
  return -1;
}

uint64_t LandmarkIndex::epoch() const {
  std::shared_lock lock(mu_);
  return epoch_;
}

uint64_t LandmarkIndex::built_epoch() const {
  std::shared_lock lock(mu_);
  return built_epoch_;
}

std::vector<int64_t> LandmarkIndex::landmark_ids() const {
  std::shared_lock lock(mu_);
  std::vector<int64_t> out;
  out.reserve(landmarks_.size());
  for (int32_t idx : landmarks_) out.push_back(ids_[idx]);
  return out;
}

LandmarkStats LandmarkIndex::stats() const {
  LandmarkStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.pruned_searches = pruned_searches_.load(std::memory_order_relaxed);
  s.prunes = prunes_.load(std::memory_order_relaxed);
  s.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  s.repairs = repairs_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace graphbench
