#include "graph/landmarks.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace graphbench {
namespace {

using concurrency::EpochGuard;
using concurrency::EpochManager;
using concurrency::ReadPin;
using concurrency::WriteBatch;

constexpr int32_t kUnreachable = -1;
constexpr int kInfinity = std::numeric_limits<int>::max() / 4;

obs::Counter* HitsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("landmarks.hits");
  return c;
}
obs::Counter* PrunesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("landmarks.prunes");
  return c;
}
obs::Counter* RebuildsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Default().GetCounter("landmarks.rebuilds");
  return c;
}

}  // namespace

LandmarkIndex::LandmarkIndex(LandmarkOptions options)
    : options_(options) {}

int32_t LandmarkIndex::InternLocked(EpochManager& mgr, int64_t person_id) {
  if (const int32_t* idx =
          id_to_idx_.Find(person_id, EpochManager::kWriterPin)) {
    return *idx;
  }
  int32_t idx = static_cast<int32_t>(ids_.size());
  id_to_idx_.Insert(mgr, person_id, idx);
  ids_.PushBack(mgr, person_id);
  adj_.Append(mgr, {});
  // A vertex born after Build starts unreachable from every landmark;
  // the insert repair that adds its first edge settles its distances.
  for (size_t i = 0; i < num_landmarks_; ++i) {
    dist_.Publish(mgr, i, [](std::vector<int32_t>& d) {
      d.push_back(kUnreachable);
    });
  }
  return idx;
}

void LandmarkIndex::PublishMetaLocked(EpochManager& mgr) {
  meta_.Store(mgr, Meta{epoch_, built_epoch_,
                        static_cast<uint32_t>(num_landmarks_), built_});
}

void LandmarkIndex::AddPerson(int64_t person_id) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  InternLocked(EpochManager::Global(), person_id);
}

void LandmarkIndex::AddEdge(int64_t a, int64_t b) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  int32_t ia = InternLocked(mgr, a);
  int32_t ib = InternLocked(mgr, b);
  adj_.Publish(mgr, ia, [ib](std::vector<int32_t>& l) { l.push_back(ib); });
  adj_.Publish(mgr, ib, [ia](std::vector<int32_t>& l) { l.push_back(ia); });
}

void LandmarkIndex::BfsLocked(int32_t source,
                              std::vector<int32_t>* dist) const {
  dist->assign(adj_.size(), kUnreachable);
  (*dist)[source] = 0;
  std::deque<int32_t> queue{source};
  while (!queue.empty()) {
    int32_t x = queue.front();
    queue.pop_front();
    int32_t next = (*dist)[x] + 1;
    for (int32_t n : *adj_.WriterLatest(x)) {
      if ((*dist)[n] != kUnreachable) continue;
      (*dist)[n] = next;
      queue.push_back(n);
    }
  }
}

void LandmarkIndex::BuildLocked(EpochManager& mgr) {
  const size_t n = adj_.size();
  const size_t k = std::min<size_t>(
      n, static_cast<size_t>(std::max(options_.num_landmarks, 0)));
  auto degree = [this](int32_t v) { return adj_.WriterLatest(v)->size(); };
  std::vector<int32_t> lms;
  std::vector<std::vector<int32_t>> dists;
  if (options_.hub_selection == HubSelection::kCoverage) {
    // Farthest-point coverage: seed with the highest-degree person, then
    // repeatedly take the person farthest from every hub chosen so far
    // (unreachable counts as infinitely far, so each extra component gets
    // a hub before any component gets its second). Each selection's BFS
    // doubles as the hub's distance vector — same K-BFS cost as kDegree.
    // All tie-breaks are deterministic: degree desc, then id asc.
    std::vector<bool> chosen(n, false);
    std::vector<int> mindist(n, kInfinity);
    auto beats = [&](int32_t a, int32_t b) {
      // True when a is a strictly better next hub than b.
      if (mindist[a] != mindist[b]) return mindist[a] > mindist[b];
      if (degree(a) != degree(b)) return degree(a) > degree(b);
      return ids_[a] < ids_[b];
    };
    int32_t next = -1;
    for (size_t i = 0; i < n; ++i) {
      int32_t c = static_cast<int32_t>(i);
      if (next < 0 || beats(c, next)) next = c;
    }
    while (lms.size() < k) {
      chosen[next] = true;
      lms.push_back(next);
      dists.emplace_back();
      BfsLocked(next, &dists.back());
      const std::vector<int32_t>& d = dists.back();
      for (size_t i = 0; i < n; ++i) {
        if (d[i] != kUnreachable && d[i] < mindist[i]) mindist[i] = d[i];
      }
      next = -1;
      for (size_t i = 0; i < n; ++i) {
        int32_t c = static_cast<int32_t>(i);
        if (chosen[i]) continue;
        if (next < 0 || beats(c, next)) next = c;
      }
      if (next < 0) break;  // fewer persons than landmarks
    }
  } else {
    // Hubs: highest knows-degree first, person id as deterministic
    // tie-break (the paper's generator hands every run the same hubs).
    std::vector<int32_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = static_cast<int32_t>(i);
    std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      if (degree(a) != degree(b)) return degree(a) > degree(b);
      return ids_[a] < ids_[b];
    });
    lms.assign(order.begin(), order.begin() + k);
    dists.resize(lms.size());
    for (size_t i = 0; i < lms.size(); ++i) BfsLocked(lms[i], &dists[i]);
  }
  for (size_t i = 0; i < lms.size(); ++i) {
    dist_.Publish(mgr, i, [&dists, i](std::vector<int32_t>& d) {
      d = std::move(dists[i]);
    });
  }
  landmarks_.Store(mgr, std::move(lms));
  num_landmarks_ = dists.size();
  built_ = true;
  built_epoch_ = epoch_;
  writes_since_build_ = 0;
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  RebuildsCounter()->Increment();
}

void LandmarkIndex::Build() {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  ++epoch_;
  BuildLocked(mgr);
  PublishMetaLocked(mgr);
}

void LandmarkIndex::NoteWriteLocked(EpochManager& mgr, bool repaired) {
  ++epoch_;
  ++writes_since_build_;
  if (!repaired || writes_since_build_ >= options_.rebuild_churn_threshold) {
    BuildLocked(mgr);
  }
  PublishMetaLocked(mgr);
}

void LandmarkIndex::OnPersonAdded(int64_t person_id) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  InternLocked(mgr, person_id);
  ++epoch_;
  PublishMetaLocked(mgr);
}

bool LandmarkIndex::RepairInsertLocked(EpochManager& mgr, int32_t a,
                                       int32_t b) {
  // Unit-weight decrease propagation: the new edge can only lower
  // distances, by relaxing across (a,b) and flooding outward. Each
  // touched landmark vector is repaired on its uncommitted copy-on-write
  // version; untouched landmarks are not even cloned.
  size_t settled = 0;
  std::deque<int32_t> queue;
  for (size_t li = 0; li < num_landmarks_; ++li) {
    const std::vector<int32_t>& cur = *dist_.WriterLatest(li);
    int da = cur[a] == kUnreachable ? kInfinity : cur[a];
    int db = cur[b] == kUnreachable ? kInfinity : cur[b];
    if (db + 1 >= da && da + 1 >= db) continue;  // nothing to relax
    bool ok = true;
    dist_.Publish(mgr, li, [&](std::vector<int32_t>& dist) {
      queue.clear();
      if (db + 1 < da) {
        dist[a] = db + 1;
        queue.push_back(a);
      } else {
        dist[b] = da + 1;
        queue.push_back(b);
      }
      while (!queue.empty()) {
        int32_t x = queue.front();
        queue.pop_front();
        if (++settled > options_.repair_budget) {
          ok = false;
          return;
        }
        int32_t next = dist[x] + 1;
        for (int32_t n : *adj_.WriterLatest(x)) {
          if (dist[n] != kUnreachable && dist[n] <= next) continue;
          dist[n] = next;
          queue.push_back(n);
        }
      }
    });
    if (!ok) return false;
  }
  return true;
}

void LandmarkIndex::OnEdgeAdded(int64_t a, int64_t b) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  int32_t ia = InternLocked(mgr, a);
  int32_t ib = InternLocked(mgr, b);
  adj_.Publish(mgr, ia, [ib](std::vector<int32_t>& l) { l.push_back(ib); });
  adj_.Publish(mgr, ib, [ia](std::vector<int32_t>& l) { l.push_back(ia); });
  if (!built_) {
    ++epoch_;
    PublishMetaLocked(mgr);
    return;
  }
  bool repaired = RepairInsertLocked(mgr, ia, ib);
  if (repaired) repairs_.fetch_add(1, std::memory_order_relaxed);
  NoteWriteLocked(mgr, repaired);
}

bool LandmarkIndex::RepairRemoveLocked(EpochManager& mgr, int32_t a,
                                       int32_t b) {
  // A parallel knows edge keeps every distance intact.
  for (int32_t n : *adj_.WriterLatest(a)) {
    if (n == b) return true;
  }

  size_t settled = 0;
  std::vector<int32_t> region;
  // Dijkstra with unit weights over the invalidated region, keyed by
  // tentative distance; lazy deletion.
  using Entry = std::pair<int32_t, int32_t>;  // (tentative dist, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  for (size_t li = 0; li < num_landmarks_; ++li) {
    const std::vector<int32_t>& cur = *dist_.WriterLatest(li);
    int32_t da = cur[a];
    int32_t db = cur[b];
    // With the edge present both endpoints were in the same component,
    // so one-sided unreachability cannot arise; skip defensively.
    if (da == kUnreachable || db == kUnreachable) continue;
    // Only a tree-tight edge (levels differing by exactly one) can have
    // carried shortest paths; same-level edges never do.
    int32_t diff = da - db;
    if (diff != 1 && diff != -1) continue;
    int32_t w = diff == 1 ? a : b;  // farther endpoint
    // Still supported by another parent one level up? Nothing moved.
    bool supported = false;
    for (int32_t n : *adj_.WriterLatest(w)) {
      if (cur[n] != kUnreachable && cur[n] == cur[w] - 1) {
        supported = true;
        break;
      }
    }
    if (supported) continue;

    // The repair mutates this landmark's uncommitted copy-on-write
    // version, so the -2 "in region" sentinels below can never leak to a
    // reader — even on the budget-overflow abort paths (the rebuild that
    // follows replaces the vector within the same batch).
    bool ok = true;
    dist_.Publish(mgr, li, [&](std::vector<int32_t>& dist) {
      // Superset of every vertex whose distance may grow: the closure of
      // strict BFS descendants of w. Vertices inside whose distance is in
      // fact unchanged re-derive to the same value below.
      region.clear();
      region.push_back(w);
      std::vector<int32_t> saved{dist[w]};
      dist[w] = kUnreachable - 1;  // -2: "in region, not yet re-settled"
      for (size_t head = 0; head < region.size(); ++head) {
        if (region.size() > options_.repair_budget) {
          for (size_t i = 0; i < region.size(); ++i) {
            dist[region[i]] = saved[i];
          }
          ok = false;
          return;
        }
        int32_t x = region[head];
        int32_t child_level = saved[head] + 1;
        for (int32_t n : *adj_.WriterLatest(x)) {
          if (dist[n] == kUnreachable || dist[n] != child_level) continue;
          region.push_back(n);
          saved.push_back(dist[n]);
          dist[n] = kUnreachable - 1;
        }
      }
      // Re-settle from the region boundary: any intact neighbor seeds a
      // tentative distance; unreached region vertices are now
      // disconnected.
      while (!pq.empty()) pq.pop();
      for (int32_t x : region) {
        for (int32_t n : *adj_.WriterLatest(x)) {
          if (dist[n] >= 0) pq.emplace(dist[n] + 1, x);
        }
      }
      while (!pq.empty()) {
        auto [t, x] = pq.top();
        pq.pop();
        if (dist[x] >= 0) continue;  // already settled at <= t
        dist[x] = t;
        if (++settled > options_.repair_budget) {
          ok = false;
          return;
        }
        for (int32_t n : *adj_.WriterLatest(x)) {
          if (dist[n] < 0 && dist[n] != kUnreachable) pq.emplace(t + 1, n);
        }
      }
      for (int32_t x : region) {
        if (dist[x] < 0) dist[x] = kUnreachable;
      }
    });
    if (!ok) return false;
  }
  return true;
}

void LandmarkIndex::OnEdgeRemoved(int64_t a, int64_t b) {
  WriteBatch batch;
  std::lock_guard<std::mutex> lock(write_mu_);
  EpochManager& mgr = EpochManager::Global();
  const int32_t* pa = id_to_idx_.Find(a, EpochManager::kWriterPin);
  const int32_t* pb = id_to_idx_.Find(b, EpochManager::kWriterPin);
  if (pa == nullptr || pb == nullptr) return;
  int32_t ia = *pa;
  int32_t ib = *pb;
  // Drop one occurrence from each side of the mirror.
  const std::vector<int32_t>& cur = *adj_.WriterLatest(ia);
  if (std::find(cur.begin(), cur.end(), ib) == cur.end()) {
    return;  // edge was never mirrored
  }
  auto erase_one = [](std::vector<int32_t>& list, int32_t to) {
    auto it = std::find(list.begin(), list.end(), to);
    if (it == list.end()) return;
    *it = list.back();
    list.pop_back();
  };
  adj_.Publish(mgr, ia, [&](std::vector<int32_t>& l) { erase_one(l, ib); });
  adj_.Publish(mgr, ib, [&](std::vector<int32_t>& l) { erase_one(l, ia); });
  if (!built_) {
    ++epoch_;
    PublishMetaLocked(mgr);
    return;
  }
  bool repaired = RepairRemoveLocked(mgr, ia, ib);
  if (repaired) repairs_.fetch_add(1, std::memory_order_relaxed);
  // A landmark may sit on the removed edge's far side with its region
  // torn off mid-repair on budget overflow; NoteWriteLocked rebuilds.
  NoteWriteLocked(mgr, repaired);
}

std::optional<LandmarkIndex::Bounds> LandmarkIndex::BoundsFor(
    int64_t from, int64_t to) const {
  EpochGuard guard;
  const uint64_t pin = ReadPin(guard);
  const Meta* m = meta_.Read(pin);
  const int32_t* pf = id_to_idx_.Find(from, pin);
  const int32_t* pt = id_to_idx_.Find(to, pin);
  if (m == nullptr || !m->built || pf == nullptr || pt == nullptr) {
    return std::nullopt;
  }
  Bounds out;
  if (*pf == *pt) {
    out.lower = 0;
    out.upper = 0;
    return out;
  }
  size_t f = size_t(*pf);
  size_t t = size_t(*pt);
  int lb = 0;
  int ub = kInfinity;
  for (uint32_t i = 0; i < m->num_landmarks; ++i) {
    const std::vector<int32_t>* dist = dist_.Read(i, pin);
    if (dist == nullptr || f >= dist->size() || t >= dist->size()) continue;
    int32_t df = (*dist)[f];
    int32_t dt = (*dist)[t];
    if ((df == kUnreachable) != (dt == kUnreachable)) {
      out.disconnected = true;
      out.upper = -1;
      out.lower = kInfinity;
      return out;
    }
    if (df == kUnreachable) continue;  // landmark sees neither endpoint
    lb = std::max(lb, df > dt ? df - dt : dt - df);
    ub = std::min(ub, df + dt);
  }
  out.lower = lb;
  out.upper = ub == kInfinity ? -1 : ub;
  return out;
}

std::optional<int> LandmarkIndex::ShortestPathLen(int64_t from,
                                                  int64_t to) const {
  EpochGuard guard;
  const uint64_t pin = ReadPin(guard);
  const Meta* m = meta_.Read(pin);
  const int32_t* pf = id_to_idx_.Find(from, pin);
  const int32_t* pt = id_to_idx_.Find(to, pin);
  if (m == nullptr || !m->built || pf == nullptr || pt == nullptr) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  int32_t src = *pf;
  int32_t dst = *pt;
  if (src == dst) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    HitsCounter()->Increment();
    return 0;
  }

  // Resolve the hub snapshot of the pinned epoch once; the whole query —
  // bounds and pruned search — sees one consistent index state.
  std::vector<const std::vector<int32_t>*> dists;
  dists.reserve(m->num_landmarks);
  for (uint32_t i = 0; i < m->num_landmarks; ++i) {
    const std::vector<int32_t>* d = dist_.Read(i, pin);
    if (d != nullptr && size_t(src) < d->size() && size_t(dst) < d->size()) {
      dists.push_back(d);
    }
  }

  int lb = 0;
  int ub = kInfinity;
  for (const auto* dist : dists) {
    int32_t df = (*dist)[src];
    int32_t dt = (*dist)[dst];
    if ((df == kUnreachable) != (dt == kUnreachable)) {
      // One endpoint in this landmark's component, the other not:
      // different components, no path.
      hits_.fetch_add(1, std::memory_order_relaxed);
      HitsCounter()->Increment();
      return -1;
    }
    if (df == kUnreachable) continue;
    lb = std::max(lb, df > dt ? df - dt : dt - df);
    ub = std::min(ub, df + dt);
  }
  if (lb >= ub) {
    // Bounds met: the path through the best landmark is optimal.
    hits_.fetch_add(1, std::memory_order_relaxed);
    HitsCounter()->Increment();
    return ub;
  }

  // Bound-pruned bidirectional BFS, looking only for paths shorter than
  // ub; exhaustion proves the landmark path (length ub) is optimal.
  uint64_t prunes = 0;
  std::unordered_map<int32_t, int32_t> seen_f{{src, 0}};
  std::unordered_map<int32_t, int32_t> seen_b{{dst, 0}};
  std::vector<int32_t> frontier_f{src};
  std::vector<int32_t> frontier_b{dst};
  std::vector<int32_t> next;
  int df = 0;
  int db = 0;
  int best = ub;
  while (!frontier_f.empty() && !frontier_b.empty() && df + db < best) {
    bool forward = frontier_f.size() <= frontier_b.size();
    auto& frontier = forward ? frontier_f : frontier_b;
    auto& seen = forward ? seen_f : seen_b;
    auto& other = forward ? seen_b : seen_f;
    int depth = (forward ? ++df : ++db);
    int32_t far_end = forward ? dst : src;
    next.clear();
    for (int32_t x : frontier) {
      const std::vector<int32_t>* row = adj_.Read(x, pin);
      if (row == nullptr) continue;
      for (int32_t n : *row) {
        if (!seen.emplace(n, depth).second) continue;
        auto met = other.find(n);
        if (met != other.end()) best = std::min(best, depth + met->second);
        if (best < kInfinity) {
          // Prune any vertex that provably cannot lie on a path shorter
          // than the best answer so far: depth(n) + LB(n, far end) is a
          // lower bound on every path through n.
          int est = depth;
          for (const auto* dist : dists) {
            if (size_t(n) >= dist->size()) continue;
            int32_t dn = (*dist)[n];
            int32_t de = (*dist)[far_end];
            if (dn == kUnreachable || de == kUnreachable) continue;
            est = std::max(est, depth + (dn > de ? dn - de : de - dn));
          }
          if (est >= best) {
            ++prunes;
            continue;
          }
        }
        next.push_back(n);
      }
    }
    frontier.swap(next);
  }
  if (prunes > 0) {
    prunes_.fetch_add(prunes, std::memory_order_relaxed);
    PrunesCounter()->Increment(prunes);
  }
  pruned_searches_.fetch_add(1, std::memory_order_relaxed);
  if (best < kInfinity) return best;
  return -1;
}

uint64_t LandmarkIndex::epoch() const {
  EpochGuard guard;
  const Meta* m = meta_.Read(ReadPin(guard));
  return m != nullptr ? m->epoch : 0;
}

uint64_t LandmarkIndex::built_epoch() const {
  EpochGuard guard;
  const Meta* m = meta_.Read(ReadPin(guard));
  return m != nullptr ? m->built_epoch : 0;
}

std::vector<int64_t> LandmarkIndex::landmark_ids() const {
  EpochGuard guard;
  const std::vector<int32_t>* lms = landmarks_.Read(ReadPin(guard));
  std::vector<int64_t> out;
  if (lms == nullptr) return out;
  out.reserve(lms->size());
  for (int32_t idx : *lms) out.push_back(ids_[idx]);
  return out;
}

LandmarkStats LandmarkIndex::stats() const {
  LandmarkStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.pruned_searches = pruned_searches_.load(std::memory_order_relaxed);
  s.prunes = prunes_.load(std::memory_order_relaxed);
  s.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  s.repairs = repairs_.load(std::memory_order_relaxed);
  s.fallbacks = fallbacks_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace graphbench
