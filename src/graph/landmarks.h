#ifndef GRAPHBENCH_GRAPH_LANDMARKS_H_
#define GRAPHBENCH_GRAPH_LANDMARKS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "concurrency/epoch.h"
#include "concurrency/versioned.h"

namespace graphbench {

/// How Build picks its hub persons (DESIGN.md §9).
enum class HubSelection : uint8_t {
  /// The K highest-degree persons. Cheap (no extra BFS work) and strong
  /// on hub-and-spoke cores, but the hubs cluster together, so pairs on
  /// low-degree periphery chains keep loose bounds and fall through to
  /// the pruned search.
  kDegree,
  /// Farthest-point coverage: the first hub is the highest-degree person;
  /// each next hub is the person farthest (in hops) from every hub chosen
  /// so far, with unreachable treated as infinitely far so secondary
  /// components get a hub before any component gets a second one.
  /// Ties break toward higher degree, then lower id. Costs the same K
  /// BFS passes as kDegree (each selection BFS doubles as the hub's
  /// distance vector) and spreads hubs across the graph, tightening
  /// bounds on exactly the periphery pairs kDegree leaves loose.
  kCoverage,
};

/// Tuning knobs for the landmark index (DESIGN.md §9).
struct LandmarkOptions {
  /// Number of hub persons to precompute distance vectors from. More
  /// landmarks tighten the bounds (more queries answered without any
  /// search) at K× the build and repair cost.
  int num_landmarks = 8;
  /// Maximum vertices an incremental repair may re-settle per knows write
  /// before giving up and rebuilding from scratch.
  size_t repair_budget = 4096;
  /// Full rebuild (with fresh hub selection) after this many knows writes
  /// since the last build, so hubs track the mutating degree distribution.
  uint64_t rebuild_churn_threshold = 50000;
  /// Hub selection policy applied at every (re)build.
  HubSelection hub_selection = HubSelection::kDegree;
};

/// Aggregated index traffic, mirrored into the default obs registry as
/// landmarks.hits / landmarks.prunes / landmarks.rebuilds.
struct LandmarkStats {
  uint64_t hits = 0;       // answered from the bounds alone, no search
  uint64_t pruned_searches = 0;  // answered by the bound-pruned BFS
  uint64_t prunes = 0;     // vertices cut from those searches by the bounds
  uint64_t rebuilds = 0;   // full rebuilds (initial build included)
  uint64_t repairs = 0;    // incremental distance repairs applied
  uint64_t fallbacks = 0;  // queries declined (person unknown to the index)
};

/// Landmark-accelerated single-pair shortest paths over the SNB knows
/// relation, shared by all four pipelines (ROADMAP: "cached shortest-path
/// landmarks").
///
/// The index keeps a mirror of the undirected knows adjacency keyed by
/// person id, picks the K highest-degree persons as landmarks, and stores
/// one BFS distance vector per landmark. A query derives, per the triangle
/// inequality,
///
///   LB(u,v) = max_L |d(L,u) - d(L,v)|   <=  d(u,v)  <=
///   UB(u,v) = min_L  d(L,u) + d(L,v)
///
/// and answers without search when LB == UB, or when some landmark reaches
/// exactly one endpoint (different components: -1). Otherwise it runs a
/// bidirectional BFS that only looks for paths *shorter than UB* — any
/// vertex whose landmark lower bound to the far endpoint cannot beat UB is
/// pruned, and the search stops as soon as the frontier depths reach UB
/// (the path through the best landmark is already known to exist). Either
/// the search finds something shorter or the answer is exactly UB, so
/// results are always exact, never approximate.
///
/// Writes invalidate incrementally: an epoch counter advances on every
/// mutation, edge inserts run a bounded unit-distance decrease propagation
/// and edge deletes a bounded Even–Shiloach-style increase propagation
/// (per landmark); past the repair budget or the churn threshold the index
/// rebuilds from scratch. One writer mutates at a time (plain mutex);
/// readers never lock: adjacency rows and per-landmark distance vectors
/// are epoch-versioned, so ShortestPathLen traverses the consistent hub
/// snapshot of its pinned epoch — mid-repair sentinel states are plain
/// impossible to observe.
class LandmarkIndex {
 public:
  explicit LandmarkIndex(LandmarkOptions options = {});

  // --- Bulk seeding (Load time, before Build) -------------------------
  void AddPerson(int64_t person_id);
  /// Seeds one undirected knows edge; parallel edges are kept (removal
  /// deletes one occurrence at a time). Unknown endpoints are created.
  void AddEdge(int64_t a, int64_t b);
  /// Selects hubs and recomputes every distance vector.
  void Build();

  // --- Write-path invalidation hooks (after Build) --------------------
  void OnPersonAdded(int64_t person_id);
  void OnEdgeAdded(int64_t a, int64_t b);
  void OnEdgeRemoved(int64_t a, int64_t b);

  /// Exact knows-distance between two persons (-1 when unreachable), or
  /// nullopt when either id is unknown to the index — the caller then
  /// falls back to its engine's plain BFS (and its error semantics).
  std::optional<int> ShortestPathLen(int64_t from, int64_t to) const;

  /// Bounds as derived from the landmark vectors, without searching.
  /// Exposed for tests; nullopt when either id is unknown.
  struct Bounds {
    int lower = 0;
    int upper = -1;         // -1: no landmark reaches both endpoints
    bool disconnected = false;  // some landmark reaches exactly one
  };
  std::optional<Bounds> BoundsFor(int64_t from, int64_t to) const;

  /// Advances on every mutation (person/edge add, edge remove, rebuild);
  /// readers can detect staleness of anything they cached outside the
  /// index.
  uint64_t epoch() const;
  /// Epoch at which the current distance vectors were last fully rebuilt.
  uint64_t built_epoch() const;

  std::vector<int64_t> landmark_ids() const;
  LandmarkStats stats() const;

 private:
  /// Reader-visible scalar state, republished as a unit with whatever
  /// rows the same batch touched.
  struct Meta {
    uint64_t epoch = 0;
    uint64_t built_epoch = 0;
    uint32_t num_landmarks = 0;
    bool built = false;
  };

  // Dense index of a person id, creating it on first use (write_mu_
  // held).
  int32_t InternLocked(concurrency::EpochManager& mgr, int64_t person_id);
  // BFS from `source` over the writer-latest adjacency, filling `dist`
  // (-1 unreachable); write_mu_ held.
  void BfsLocked(int32_t source, std::vector<int32_t>* dist) const;
  // Hub selection + full BFS per hub; write_mu_ held.
  void BuildLocked(concurrency::EpochManager& mgr);
  // Bounded decrease propagation after inserting edge (a,b); returns
  // false when the repair budget is exhausted (caller rebuilds).
  bool RepairInsertLocked(concurrency::EpochManager& mgr, int32_t a,
                          int32_t b);
  // Bounded increase propagation after removing edge (a,b); returns
  // false when the repair budget is exhausted (caller rebuilds).
  bool RepairRemoveLocked(concurrency::EpochManager& mgr, int32_t a,
                          int32_t b);
  // Bookkeeping shared by both write hooks; write_mu_ held.
  void NoteWriteLocked(concurrency::EpochManager& mgr, bool repaired);
  void PublishMetaLocked(concurrency::EpochManager& mgr);

  const LandmarkOptions options_;
  std::mutex write_mu_;  // serializes writers; readers never take it

  concurrency::EpochHashMap<int64_t, int32_t> id_to_idx_;
  concurrency::StableVec<int64_t> ids_;
  /// Undirected, dup-tolerant adjacency mirror; one versioned row per
  /// person.
  concurrency::VersionedTable<std::vector<int32_t>> adj_;
  /// Dense indexes of the hubs.
  concurrency::VersionedCell<std::vector<int32_t>> landmarks_;
  /// One versioned distance vector per hub slot; readers bound the slot
  /// count by their pinned Meta.
  concurrency::VersionedTable<std::vector<int32_t>> dist_;
  concurrency::VersionedCell<Meta> meta_;

  // Writer-side mirrors of Meta (under write_mu_).
  uint64_t epoch_ = 0;
  uint64_t built_epoch_ = 0;
  uint64_t writes_since_build_ = 0;
  bool built_ = false;
  size_t num_landmarks_ = 0;

  // Stats are relaxed atomics so lock-free readers can bump them.
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> pruned_searches_{0};
  mutable std::atomic<uint64_t> prunes_{0};
  mutable std::atomic<uint64_t> rebuilds_{0};
  mutable std::atomic<uint64_t> repairs_{0};
  mutable std::atomic<uint64_t> fallbacks_{0};
};

}  // namespace graphbench

#endif  // GRAPHBENCH_GRAPH_LANDMARKS_H_
