#ifndef GRAPHBENCH_GRAPH_PROPERTY_GRAPH_H_
#define GRAPHBENCH_GRAPH_PROPERTY_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/graph_types.h"
#include "util/result.h"
#include "util/status.h"

namespace graphbench {

/// Engine-facing property-graph interface: directed, edge-labelled
/// multigraph with key-value properties on vertices and edges. Implemented
/// by NativeGraph (index-free adjacency, Neo4j analog) and TitanGraph
/// (KV-backed, TitanDB analog); TinkerPop providers adapt it to the
/// Gremlin structure API.
class PropertyGraph {
 public:
  virtual ~PropertyGraph() = default;

  virtual Result<VertexId> AddVertex(std::string_view label,
                                     const PropertyMap& props) = 0;
  virtual Result<EdgeId> AddEdge(std::string_view label, VertexId src,
                                 VertexId dst, const PropertyMap& props) = 0;

  virtual Status GetVertex(VertexId v, std::string* label,
                           PropertyMap* props) const = 0;
  virtual Status GetEdge(EdgeId e, std::string* label, VertexId* src,
                         VertexId* dst, PropertyMap* props) const = 0;

  /// Single vertex property (Null when absent).
  virtual Result<Value> VertexProperty(VertexId v,
                                       std::string_view key) const = 0;
  virtual Status SetVertexProperty(VertexId v, std::string_view key,
                                   const Value& value) = 0;

  /// Adjacency of `v` restricted to `edge_label` (empty = any) and
  /// direction.
  virtual Result<std::vector<Neighbor>> Neighbors(
      VertexId v, std::string_view edge_label, Direction dir) const = 0;

  /// Unique lookup through the (label, property) index. Engines index the
  /// "id" property of every vertex label (the paper's fairness rule).
  virtual Result<VertexId> FindVertex(std::string_view label,
                                      std::string_view key,
                                      const Value& value) const = 0;

  /// All vertices of `label` (any label when empty). For scans/loaders.
  virtual std::vector<VertexId> VerticesByLabel(
      std::string_view label) const = 0;

  virtual uint64_t VertexCount() const = 0;
  virtual uint64_t EdgeCount() const = 0;
  virtual uint64_t ApproximateSizeBytes() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_GRAPH_PROPERTY_GRAPH_H_
