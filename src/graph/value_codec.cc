#include "graph/value_codec.h"

#include <cstring>

namespace graphbench {
namespace valuecodec {

namespace {

void AppendVarU64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(char(uint8_t(v) | 0x80));
    v >>= 7;
  }
  dst->push_back(char(uint8_t(v)));
}

bool DecodeVarU64(std::string_view* src, uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  while (!src->empty() && shift < 64) {
    uint8_t b = uint8_t((*src)[0]);
    src->remove_prefix(1);
    out |= uint64_t(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      *v = out;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

void EncodeValue(std::string* dst, const Value& v) {
  dst->push_back(char(uint8_t(v.type())));
  switch (v.type()) {
    case Value::Type::kNull:
      break;
    case Value::Type::kBool:
      dst->push_back(v.as_bool() ? 1 : 0);
      break;
    case Value::Type::kInt: {
      uint64_t bits = uint64_t(v.as_int());
      // ZigZag so small negatives stay short.
      AppendVarU64(dst, (bits << 1) ^ uint64_t(v.as_int() >> 63));
      break;
    }
    case Value::Type::kDouble: {
      double d = v.as_double();
      char buf[sizeof(double)];
      std::memcpy(buf, &d, sizeof(double));
      dst->append(buf, sizeof(double));
      break;
    }
    case Value::Type::kString: {
      AppendVarU64(dst, v.as_string().size());
      dst->append(v.as_string());
      break;
    }
  }
}

bool DecodeValue(std::string_view* src, Value* v) {
  if (src->empty()) return false;
  auto type = Value::Type(uint8_t((*src)[0]));
  src->remove_prefix(1);
  switch (type) {
    case Value::Type::kNull:
      *v = Value();
      return true;
    case Value::Type::kBool:
      if (src->empty()) return false;
      *v = Value((*src)[0] != 0);
      src->remove_prefix(1);
      return true;
    case Value::Type::kInt: {
      uint64_t zz;
      if (!DecodeVarU64(src, &zz)) return false;
      *v = Value(int64_t((zz >> 1) ^ (~(zz & 1) + 1)));
      return true;
    }
    case Value::Type::kDouble: {
      if (src->size() < sizeof(double)) return false;
      double d;
      std::memcpy(&d, src->data(), sizeof(double));
      src->remove_prefix(sizeof(double));
      *v = Value(d);
      return true;
    }
    case Value::Type::kString: {
      uint64_t len;
      if (!DecodeVarU64(src, &len)) return false;
      if (src->size() < len) return false;
      *v = Value(std::string(src->substr(0, size_t(len))));
      src->remove_prefix(size_t(len));
      return true;
    }
  }
  return false;
}

void EncodePropertyMap(std::string* dst, const PropertyMap& props) {
  AppendVarU64(dst, props.size());
  for (const auto& [key, value] : props.entries()) {
    AppendVarU64(dst, key.size());
    dst->append(key);
    EncodeValue(dst, value);
  }
}

bool DecodePropertyMap(std::string_view* src, PropertyMap* props) {
  uint64_t n;
  if (!DecodeVarU64(src, &n)) return false;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t klen;
    if (!DecodeVarU64(src, &klen)) return false;
    if (src->size() < klen) return false;
    std::string key(src->substr(0, size_t(klen)));
    src->remove_prefix(size_t(klen));
    Value value;
    if (!DecodeValue(src, &value)) return false;
    props->Set(key, std::move(value));
  }
  return true;
}

}  // namespace valuecodec
}  // namespace graphbench
