#ifndef GRAPHBENCH_GRAPH_VALUE_CODEC_H_
#define GRAPHBENCH_GRAPH_VALUE_CODEC_H_

#include <string>
#include <string_view>

#include "graph/graph_types.h"
#include "util/value.h"

namespace graphbench {

/// Binary (de)serialization for Value and PropertyMap. Used by the
/// KV-backed TitanGraph (every vertex/edge crosses this codec — part of the
/// storage-abstraction overhead the paper attributes to TitanDB) and by the
/// Gremlin Server wire protocol analog.
namespace valuecodec {

void EncodeValue(std::string* dst, const Value& v);
/// Advances `*src`; false on malformed input.
bool DecodeValue(std::string_view* src, Value* v);

void EncodePropertyMap(std::string* dst, const PropertyMap& props);
bool DecodePropertyMap(std::string_view* src, PropertyMap* props);

}  // namespace valuecodec

}  // namespace graphbench

#endif  // GRAPHBENCH_GRAPH_VALUE_CODEC_H_
