#include "kv/btree_kv.h"

#include "obs/lock_timer.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace graphbench {

struct BTreeKv::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<std::string> keys;
  // Internal nodes: children.size() == keys.size() + 1.
  std::vector<Node*> children;
  // Leaf nodes: values parallel to keys, plus a next-leaf link.
  std::vector<std::string> values;
  Node* next = nullptr;
};

class BTreeKv::Iter : public KvIterator {
 public:
  // Snapshot iterator: copies the live key/value pairs under the shared
  // latch at construction so iteration never observes partial splits.
  explicit Iter(const BTreeKv* tree) {
    std::shared_lock<obs::TimedSharedMutex> lock(tree->latch_);
    for (const Node* n = tree->first_leaf_; n != nullptr; n = n->next) {
      for (size_t i = 0; i < n->keys.size(); ++i) {
        entries_.emplace_back(n->keys[i], n->values[i]);
      }
    }
  }

  void SeekToFirst() override { pos_ = 0; }
  void Seek(std::string_view target) override {
    pos_ = size_t(std::lower_bound(entries_.begin(), entries_.end(), target,
                                   [](const auto& e, std::string_view t) {
                                     return e.first < t;
                                   }) -
                  entries_.begin());
  }
  bool Valid() const override { return pos_ < entries_.size(); }
  void Next() override { ++pos_; }
  std::string_view key() const override { return entries_[pos_].first; }
  std::string_view value() const override { return entries_[pos_].second; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_ = 0;
};

BTreeKv::BTreeKv(size_t fanout) : fanout_(std::max<size_t>(fanout, 4)) {
  root_ = new Node();
  first_leaf_ = root_;
}

BTreeKv::~BTreeKv() { FreeSubtree(root_); }

void BTreeKv::FreeSubtree(Node* node) {
  if (!node->leaf) {
    for (Node* c : node->children) FreeSubtree(c);
  }
  delete node;
}

BTreeKv::Node* BTreeKv::FindLeaf(std::string_view key) const {
  Node* n = root_;
  while (!n->leaf) {
    size_t i = size_t(std::upper_bound(n->keys.begin(), n->keys.end(), key) -
                      n->keys.begin());
    n = n->children[i];
  }
  return n;
}

Status BTreeKv::Put(std::string_view key, std::string_view value) {
  std::unique_lock<obs::TimedSharedMutex> lock(latch_);
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  size_t idx = size_t(it - leaf->keys.begin());
  if (it != leaf->keys.end() && *it == key) {
    bytes_ += value.size();
    bytes_ -= leaf->values[idx].size();
    leaf->values[idx].assign(value);
    return Status::OK();
  }
  leaf->keys.insert(it, std::string(key));
  leaf->values.insert(leaf->values.begin() + ptrdiff_t(idx),
                      std::string(value));
  ++count_;
  bytes_ += key.size() + value.size() + 32;  // 32: node bookkeeping estimate
  if (leaf->keys.size() > fanout_) SplitUpward(leaf);
  return Status::OK();
}

void BTreeKv::SplitUpward(Node* node) {
  while (node->keys.size() > fanout_) {
    size_t mid = node->keys.size() / 2;
    Node* right = new Node();
    right->leaf = node->leaf;
    std::string separator;
    if (node->leaf) {
      separator = node->keys[mid];
      right->keys.assign(node->keys.begin() + ptrdiff_t(mid),
                         node->keys.end());
      right->values.assign(node->values.begin() + ptrdiff_t(mid),
                           node->values.end());
      node->keys.resize(mid);
      node->values.resize(mid);
      right->next = node->next;
      node->next = right;
    } else {
      separator = node->keys[mid];
      right->keys.assign(node->keys.begin() + ptrdiff_t(mid) + 1,
                         node->keys.end());
      right->children.assign(node->children.begin() + ptrdiff_t(mid) + 1,
                             node->children.end());
      node->keys.resize(mid);
      node->children.resize(mid + 1);
      for (Node* c : right->children) c->parent = right;
    }
    Node* parent = node->parent;
    if (parent == nullptr) {
      parent = new Node();
      parent->leaf = false;
      parent->children.push_back(node);
      node->parent = parent;
      root_ = parent;
    }
    right->parent = parent;
    auto pos = std::lower_bound(parent->keys.begin(), parent->keys.end(),
                                separator);
    size_t pidx = size_t(pos - parent->keys.begin());
    parent->keys.insert(pos, separator);
    parent->children.insert(parent->children.begin() + ptrdiff_t(pidx) + 1,
                            right);
    node = parent;
  }
}

Status BTreeKv::Get(std::string_view key, std::string* value) const {
  std::shared_lock<obs::TimedSharedMutex> lock(latch_);
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return Status::NotFound("key not in btree");
  }
  value->assign(leaf->values[size_t(it - leaf->keys.begin())]);
  return Status::OK();
}

Status BTreeKv::Delete(std::string_view key) {
  std::unique_lock<obs::TimedSharedMutex> lock(latch_);
  Node* leaf = FindLeaf(key);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
  if (it == leaf->keys.end() || *it != key) {
    return Status::NotFound("key not in btree");
  }
  size_t idx = size_t(it - leaf->keys.begin());
  bytes_ -= leaf->keys[idx].size() + leaf->values[idx].size() + 32;
  // Lazy deletion: underfull leaves are tolerated (no rebalancing), which
  // keeps deletes cheap; the workload is insert/read dominated.
  leaf->keys.erase(it);
  leaf->values.erase(leaf->values.begin() + ptrdiff_t(idx));
  --count_;
  return Status::OK();
}

std::unique_ptr<KvIterator> BTreeKv::NewIterator() const {
  return std::make_unique<Iter>(this);
}

Status BTreeKv::ScanPrefix(
    std::string_view prefix,
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  std::shared_lock<obs::TimedSharedMutex> lock(latch_);
  Node* leaf = FindLeaf(prefix);
  auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), prefix);
  size_t idx = size_t(it - leaf->keys.begin());
  while (leaf != nullptr) {
    for (; idx < leaf->keys.size(); ++idx) {
      const std::string& key = leaf->keys[idx];
      if (key.compare(0, prefix.size(), prefix) != 0) return Status::OK();
      out->emplace_back(key, leaf->values[idx]);
    }
    leaf = leaf->next;
    idx = 0;
  }
  return Status::OK();
}

}  // namespace graphbench
