#ifndef GRAPHBENCH_KV_BTREE_KV_H_
#define GRAPHBENCH_KV_BTREE_KV_H_

#include <memory>
#include <shared_mutex>

#include "obs/lock_timer.h"
#include <string>
#include <vector>

#include "kv/kv_store.h"

namespace graphbench {

/// In-memory B+-tree key-value store: the BerkeleyDB analog backing
/// Titan-B.
///
/// Writers take the tree latch exclusively for the whole structural update
/// (lookup + insert + possible splits), readers take it shared. This coarse,
/// transactional latching is the behaviour the paper attributes to
/// BerkeleyDB: excellent single-threaded ingest, severe degradation under
/// concurrent read/write mixes (§4.3, Appendix A).
class BTreeKv : public KvStore {
 public:
  /// `fanout` is the max keys per node before a split (>= 4).
  explicit BTreeKv(size_t fanout = 64);
  ~BTreeKv() override;

  BTreeKv(const BTreeKv&) = delete;
  BTreeKv& operator=(const BTreeKv&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  Status ScanPrefix(
      std::string_view prefix,
      std::vector<std::pair<std::string, std::string>>* out) const override;
  uint64_t Count() const override { return count_; }
  uint64_t ApproximateSizeBytes() const override { return bytes_; }
  bool SupportsTransactionalIsolation() const override { return true; }
  std::string name() const override { return "btree"; }

 private:
  struct Node;
  class Iter;

  // Returns the leaf that should contain `key` (no locking; caller holds
  // the latch).
  Node* FindLeaf(std::string_view key) const;
  // Splits `node` (which is over-full) and propagates upward via parent
  // pointers; may create a new root.
  void SplitUpward(Node* node);
  void FreeSubtree(Node* node);

  mutable obs::TimedSharedMutex latch_{"btree.lock_wait_us"};
  size_t fanout_;
  Node* root_;
  Node* first_leaf_;
  uint64_t count_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_KV_BTREE_KV_H_
