#include "kv/key_codec.h"

namespace graphbench {
namespace keycodec {

void AppendU64(std::string* dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst->push_back(char(uint8_t(v >> shift)));
  }
}

void AppendByte(std::string* dst, uint8_t v) { dst->push_back(char(v)); }

void AppendString(std::string* dst, std::string_view s) {
  for (char c : s) {
    dst->push_back(c);
    if (c == '\0') dst->push_back('\xff');
  }
  dst->push_back('\0');
  dst->push_back('\0');
}

bool DecodeU64(std::string_view* src, uint64_t* v) {
  if (src->size() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out = (out << 8) | uint8_t((*src)[size_t(i)]);
  }
  src->remove_prefix(8);
  *v = out;
  return true;
}

bool DecodeByte(std::string_view* src, uint8_t* v) {
  if (src->empty()) return false;
  *v = uint8_t((*src)[0]);
  src->remove_prefix(1);
  return true;
}

bool DecodeString(std::string_view* src, std::string* s) {
  s->clear();
  size_t i = 0;
  while (i < src->size()) {
    char c = (*src)[i];
    if (c == '\0') {
      if (i + 1 >= src->size()) return false;
      char next = (*src)[i + 1];
      if (next == '\0') {
        src->remove_prefix(i + 2);
        return true;
      }
      if (next == '\xff') {
        s->push_back('\0');
        i += 2;
        continue;
      }
      return false;
    }
    s->push_back(c);
    ++i;
  }
  return false;
}

}  // namespace keycodec
}  // namespace graphbench
