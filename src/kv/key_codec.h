#ifndef GRAPHBENCH_KV_KEY_CODEC_H_
#define GRAPHBENCH_KV_KEY_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace graphbench {

/// Order-preserving key encoding for composite KV keys. The encoded byte
/// order equals the logical order of the components, so range scans over a
/// (prefix, suffix) keyspace (e.g., all edge rows of a vertex) are prefix
/// scans on the KV store.
namespace keycodec {

/// Appends a big-endian uint64; preserves unsigned order.
void AppendU64(std::string* dst, uint64_t v);

/// Appends a byte; preserves order.
void AppendByte(std::string* dst, uint8_t v);

/// Appends a string with 0x00 -> 0x00 0xFF escaping and a 0x00 0x00
/// terminator, so "a" < "aa" < "b" holds in encoded form.
void AppendString(std::string* dst, std::string_view s);

/// Decoders advance `*src` past the consumed component. They return false
/// on malformed input (truncation).
bool DecodeU64(std::string_view* src, uint64_t* v);
bool DecodeByte(std::string_view* src, uint8_t* v);
bool DecodeString(std::string_view* src, std::string* s);

}  // namespace keycodec

}  // namespace graphbench

#endif  // GRAPHBENCH_KV_KEY_CODEC_H_
