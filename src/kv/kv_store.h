#ifndef GRAPHBENCH_KV_KV_STORE_H_
#define GRAPHBENCH_KV_KV_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace graphbench {

/// Forward-only ordered iterator over a KV store (RocksDB-style contract:
/// position with Seek*/ then loop while Valid()).
class KvIterator {
 public:
  virtual ~KvIterator() = default;

  virtual void SeekToFirst() = 0;
  /// Positions at the first key >= target.
  virtual void Seek(std::string_view target) = 0;
  virtual bool Valid() const = 0;
  virtual void Next() = 0;

  /// Valid only while Valid() is true.
  virtual std::string_view key() const = 0;
  virtual std::string_view value() const = 0;
};

/// Ordered key-value store interface. Two in-memory implementations back the
/// TitanDB analog: BTreeKv (BerkeleyDB-like, transactional, coarse latching)
/// and LsmKv (Cassandra-like, no isolation, steady write path).
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Status Put(std::string_view key, std::string_view value) = 0;
  virtual Status Get(std::string_view key, std::string* value) const = 0;
  virtual Status Delete(std::string_view key) = 0;

  /// Ordered iteration over the live keyspace.
  virtual std::unique_ptr<KvIterator> NewIterator() const = 0;

  /// Collects all live entries whose key starts with `prefix`, in key
  /// order. The efficient range-read primitive the graph layer uses for
  /// adjacency rows (a snapshot iterator would be O(store size)).
  virtual Status ScanPrefix(
      std::string_view prefix,
      std::vector<std::pair<std::string, std::string>>* out) const = 0;

  /// Number of live keys.
  virtual uint64_t Count() const = 0;

  /// Approximate resident bytes (keys + values + structural overhead).
  virtual uint64_t ApproximateSizeBytes() const = 0;

  /// True when concurrent writers are isolated by the store itself.
  /// Layers above a non-transactional store (Titan over Cassandra) must
  /// provide their own locking for read-modify-write sequences (§4.3).
  virtual bool SupportsTransactionalIsolation() const = 0;

  /// Human-readable backend name for benchmark output.
  virtual std::string name() const = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_KV_KV_STORE_H_
