#include "kv/lsm_kv.h"

#include <algorithm>
#include <set>

namespace graphbench {

SortedRun::SortedRun(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  for (const Entry& e : entries_) {
    size_bytes_ += e.key.size() + e.value.size() + 24;
  }
}

const SortedRun::Entry* SortedRun::Find(std::string_view key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  if (it == entries_.end() || it->key != key) return nullptr;
  return &*it;
}

LsmKv::LsmKv(LsmOptions options) : options_(options) {}

Status LsmKv::Put(std::string_view key, std::string_view value) {
  return WriteInternal(key, value, /*tombstone=*/false);
}

Status LsmKv::Delete(std::string_view key) {
  return WriteInternal(key, "", /*tombstone=*/true);
}

Status LsmKv::WriteInternal(std::string_view key, std::string_view value,
                            bool tombstone) {
  Shard& shard = shards_[ShardOf(key)];
  bool need_flush = false;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto [it, inserted] = shard.memtable.try_emplace(std::string(key));
    if (!inserted) shard.bytes -= it->second.value.size();
    else shard.bytes += key.size() + 24;
    it->second.value.assign(value);
    it->second.tombstone = tombstone;
    shard.bytes += value.size();
    need_flush = shard.bytes >= options_.memtable_bytes;
  }
  if (need_flush) FlushShard(&shard);
  return Status::OK();
}

void LsmKv::FlushShard(Shard* shard) {
  // Drain the shard under its own latch, then publish the run. The write
  // stall is confined to this shard plus the brief runs_ append.
  std::vector<SortedRun::Entry> entries;
  {
    std::unique_lock<std::shared_mutex> lock(shard->mu);
    if (shard->memtable.empty()) return;
    entries.reserve(shard->memtable.size());
    for (auto& [k, v] : shard->memtable) {
      entries.push_back({k, std::move(v.value), v.tombstone});
    }
    shard->memtable.clear();
    shard->bytes = 0;
  }
  std::unique_lock<std::shared_mutex> lock(runs_mu_);
  runs_.push_back(std::make_shared<SortedRun>(std::move(entries)));
  MaybeCompactLocked();
}

void LsmKv::MaybeCompactLocked() {
  if (runs_.size() < options_.max_runs) return;
  // Full merge of all runs, newest entry per key wins; tombstones of the
  // bottom level are dropped (nothing older can resurface).
  std::map<std::string, MemValue> merged;
  for (const auto& run : runs_) {  // oldest first; later runs overwrite
    for (const auto& e : run->entries()) {
      merged[e.key] = MemValue{e.value, e.tombstone};
    }
  }
  std::vector<SortedRun::Entry> entries;
  entries.reserve(merged.size());
  for (auto& [k, v] : merged) {
    if (v.tombstone) continue;
    entries.push_back({k, std::move(v.value), false});
  }
  runs_.clear();
  runs_.push_back(std::make_shared<SortedRun>(std::move(entries)));
  ++compactions_;
}

Status LsmKv::Get(std::string_view key, std::string* value) const {
  const Shard& shard = shards_[ShardOf(key)];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.memtable.find(std::string(key));
    if (it != shard.memtable.end()) {
      if (it->second.tombstone) return Status::NotFound("deleted");
      value->assign(it->second.value);
      return Status::OK();
    }
  }
  std::shared_lock<std::shared_mutex> lock(runs_mu_);
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    const SortedRun::Entry* e = (*run)->Find(key);
    if (e != nullptr) {
      if (e->tombstone) return Status::NotFound("deleted");
      value->assign(e->value);
      return Status::OK();
    }
  }
  return Status::NotFound("key not in lsm");
}

class LsmKv::Iter : public KvIterator {
 public:
  explicit Iter(const LsmKv* lsm) {
    // Snapshot merge at construction: runs then shard memtables (newest
    // wins).
    std::map<std::string, MemValue> merged;
    {
      std::shared_lock<std::shared_mutex> lock(lsm->runs_mu_);
      for (const auto& run : lsm->runs_) {
        for (const auto& e : run->entries()) {
          merged[e.key] = MemValue{e.value, e.tombstone};
        }
      }
    }
    for (const Shard& shard : lsm->shards_) {
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      for (const auto& [k, v] : shard.memtable) merged[k] = v;
    }
    for (auto& [k, v] : merged) {
      if (!v.tombstone) entries_.emplace_back(k, std::move(v.value));
    }
  }

  void SeekToFirst() override { pos_ = 0; }
  void Seek(std::string_view target) override {
    pos_ = size_t(std::lower_bound(entries_.begin(), entries_.end(), target,
                                   [](const auto& e, std::string_view t) {
                                     return e.first < t;
                                   }) -
                  entries_.begin());
  }
  bool Valid() const override { return pos_ < entries_.size(); }
  void Next() override { ++pos_; }
  std::string_view key() const override { return entries_[pos_].first; }
  std::string_view value() const override { return entries_[pos_].second; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_ = 0;
};

std::unique_ptr<KvIterator> LsmKv::NewIterator() const {
  return std::make_unique<Iter>(this);
}

Status LsmKv::ScanPrefix(
    std::string_view prefix,
    std::vector<std::pair<std::string, std::string>>* out) const {
  out->clear();
  // Merge the prefix range of every run and every shard memtable; newer
  // sources overwrite older ones.
  std::map<std::string, MemValue> merged;
  {
    std::shared_lock<std::shared_mutex> lock(runs_mu_);
    for (const auto& run : runs_) {  // oldest first
      const auto& entries = run->entries();
      auto it = std::lower_bound(
          entries.begin(), entries.end(), prefix,
          [](const SortedRun::Entry& e, std::string_view p) {
            return e.key < p;
          });
      for (; it != entries.end(); ++it) {
        if (it->key.compare(0, prefix.size(), prefix) != 0) break;
        merged[it->key] = MemValue{it->value, it->tombstone};
      }
    }
  }
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (auto it = shard.memtable.lower_bound(std::string(prefix));
         it != shard.memtable.end(); ++it) {
      if (it->first.compare(0, prefix.size(), prefix) != 0) break;
      merged[it->first] = it->second;
    }
  }
  for (const auto& [key, mv] : merged) {
    if (!mv.tombstone) out->emplace_back(key, mv.value);
  }
  return Status::OK();
}

uint64_t LsmKv::Count() const {
  // Exact live count requires a merge; acceptable for stats reporting.
  std::set<std::string> live;
  std::set<std::string> dead;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [k, v] : shard.memtable) {
      (v.tombstone ? dead : live).insert(k);
    }
  }
  std::shared_lock<std::shared_mutex> lock(runs_mu_);
  for (auto run = runs_.rbegin(); run != runs_.rend(); ++run) {
    for (const auto& e : (*run)->entries()) {
      if (live.count(e.key) || dead.count(e.key)) continue;
      (e.tombstone ? dead : live).insert(e.key);
    }
  }
  return live.size();
}

uint64_t LsmKv::ApproximateSizeBytes() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.bytes;
  }
  std::shared_lock<std::shared_mutex> lock(runs_mu_);
  for (const auto& run : runs_) total += run->size_bytes();
  return total;
}

size_t LsmKv::num_runs() const {
  std::shared_lock<std::shared_mutex> lock(runs_mu_);
  return runs_.size();
}

uint64_t LsmKv::compactions_run() const {
  std::shared_lock<std::shared_mutex> lock(runs_mu_);
  return compactions_;
}

void LsmKv::Flush() {
  for (Shard& shard : shards_) FlushShard(&shard);
}

}  // namespace graphbench
