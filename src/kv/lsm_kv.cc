#include "kv/lsm_kv.h"

#include <algorithm>
#include <map>

namespace graphbench {

namespace {

bool HasPrefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

// ---------------------------------------------------------------- MemTable

MemTable::MemTable() { head_.height = kMaxHeight; }

int MemTable::RandomHeight() {
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  int h = 1;
  uint64_t r = rng_state_;
  while (h < kMaxHeight && (r & 3) == 0) {
    ++h;
    r >>= 2;
  }
  return h;
}

MemTable::Node* MemTable::FindPredecessors(
    std::string_view key, std::array<Node*, kMaxHeight>* preds) const {
  Node* x = &head_;
  for (int l = kMaxHeight - 1; l >= 0; --l) {
    Node* nxt;
    while ((nxt = x->next[l].load(std::memory_order_acquire)) != nullptr &&
           nxt->key < key) {
      x = nxt;
    }
    (*preds)[l] = x;
  }
  Node* cand = x->next[0].load(std::memory_order_acquire);
  return (cand != nullptr && cand->key == key) ? cand : nullptr;
}

void MemTable::Put(concurrency::EpochManager& mgr, std::string_view key,
                   std::string_view value, bool tombstone) {
  std::array<Node*, kMaxHeight> preds;
  Node* eq = FindPredecessors(key, &preds);
  const uint64_t we = mgr.write_epoch();
  if (eq != nullptr) {
    const ValueVersion* head = eq->chain.load(std::memory_order_relaxed);
    if (head != nullptr && head->epoch == we) {
      // Same still-open batch: the version is not yet visible to anyone
      // but this writer, so overwrite in place.
      auto* h = const_cast<ValueVersion*>(head);
      h->value.assign(value);
      h->tombstone = tombstone;
      eq->chain.store(head, std::memory_order_release);
    } else {
      version_arena_.push_back(
          ValueVersion{std::string(value), tombstone, we, head});
      eq->chain.store(&version_arena_.back(), std::memory_order_release);
    }
    bytes_.fetch_add(value.size() + 24, std::memory_order_relaxed);
    return;
  }
  node_arena_.emplace_back();
  Node& n = node_arena_.back();
  n.key.assign(key);
  n.height = RandomHeight();
  version_arena_.push_back(
      ValueVersion{std::string(value), tombstone, we, nullptr});
  n.chain.store(&version_arena_.back(), std::memory_order_relaxed);
  for (int l = 0; l < n.height; ++l) {
    n.next[l].store(preds[l]->next[l].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
  // Publish bottom-up: once a level's predecessor points here, the node
  // (key, chain, lower links) is complete.
  for (int l = 0; l < n.height; ++l) {
    preds[l]->next[l].store(&n, std::memory_order_release);
  }
  bytes_.fetch_add(key.size() + value.size() + 64,
                   std::memory_order_relaxed);
}

const MemTable::ValueVersion* MemTable::Find(std::string_view key,
                                             uint64_t pin) const {
  const Node* x = &head_;
  for (int l = kMaxHeight - 1; l >= 0; --l) {
    const Node* nxt;
    while ((nxt = x->next[l].load(std::memory_order_acquire)) != nullptr &&
           nxt->key < key) {
      x = nxt;
    }
  }
  const Node* cand = x->next[0].load(std::memory_order_acquire);
  if (cand == nullptr || cand->key != key) return nullptr;
  const ValueVersion* v = cand->chain.load(std::memory_order_acquire);
  while (v != nullptr && v->epoch > pin) v = v->older;
  return v;
}

const MemTable::Node* MemTable::Seek(std::string_view target) const {
  const Node* x = &head_;
  for (int l = kMaxHeight - 1; l >= 0; --l) {
    const Node* nxt;
    while ((nxt = x->next[l].load(std::memory_order_acquire)) != nullptr &&
           nxt->key < target) {
      x = nxt;
    }
  }
  return x->next[0].load(std::memory_order_acquire);
}

const MemTable::Node* MemTable::First() const {
  return head_.next[0].load(std::memory_order_acquire);
}

// --------------------------------------------------------------- SortedRun

SortedRun::SortedRun(std::vector<Entry> entries)
    : entries_(std::move(entries)) {
  for (const Entry& e : entries_) {
    size_bytes_ += e.key.size() + e.value.size() + 32;
  }
}

const SortedRun::Entry* SortedRun::Find(std::string_view key,
                                        uint64_t pin) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, std::string_view k) { return e.key < k; });
  // Entries for one key are newest-epoch first.
  for (; it != entries_.end() && it->key == key; ++it) {
    if (it->epoch <= pin) return &*it;
  }
  return nullptr;
}

// ------------------------------------------------------------------- LsmKv

LsmKv::LsmKv(LsmOptions options) : options_(options) {
  for (Shard& shard : shards_) {
    shard.mem_owned = std::make_shared<MemTable>();
    shard.mem.store(shard.mem_owned.get(), std::memory_order_release);
  }
  runs_owned_ = std::make_shared<RunsVec>();
  runs_.store(runs_owned_.get(), std::memory_order_release);
}

Status LsmKv::Put(std::string_view key, std::string_view value) {
  return WriteInternal(key, value, /*tombstone=*/false);
}

Status LsmKv::Delete(std::string_view key) {
  return WriteInternal(key, "", /*tombstone=*/true);
}

Status LsmKv::WriteInternal(std::string_view key, std::string_view value,
                            bool tombstone) {
  concurrency::WriteBatch batch;
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  Shard& shard = shards_[ShardOf(key)];
  bool need_flush = false;
  {
    std::lock_guard<std::mutex> lock(shard.write_mu);
    shard.mem_owned->Put(mgr, key, value, tombstone);
    need_flush = shard.mem_owned->bytes() >= options_.memtable_bytes;
  }
  if (need_flush) FlushShard(&shard);
  return Status::OK();
}

void LsmKv::FlushShard(Shard* shard) {
  concurrency::WriteBatch batch;
  concurrency::EpochManager& mgr = concurrency::EpochManager::Global();
  std::lock_guard<std::mutex> lock(shard->write_mu);
  if (shard->mem_owned->empty()) return;
  // Every version is carried into the run (keys ascending, epochs
  // descending within a key) so pinned readers keep their snapshot
  // across the flush.
  std::vector<SortedRun::Entry> entries;
  for (const MemTable::Node* n = shard->mem_owned->First(); n != nullptr;
       n = MemTable::NextNode(n)) {
    for (const MemTable::ValueVersion* v =
             n->chain.load(std::memory_order_acquire);
         v != nullptr; v = v->older) {
      entries.push_back({n->key, v->value, v->tombstone, v->epoch});
    }
  }
  auto run = std::make_shared<const SortedRun>(std::move(entries));
  {
    std::lock_guard<std::mutex> rlock(runs_write_mu_);
    auto next = std::make_shared<RunsVec>(*runs_owned_);
    next->push_back(std::move(run));
    std::shared_ptr<RunsVec> old = std::move(runs_owned_);
    runs_owned_ = std::move(next);
    // Publish order matters: the run list containing the flushed data
    // must be visible before the emptied memtable, and readers load the
    // memtable pointer first.
    runs_.store(runs_owned_.get(), std::memory_order_release);
    mgr.Retire(std::static_pointer_cast<const void>(std::move(old)));
    MaybeCompactLocked(mgr);
  }
  std::shared_ptr<MemTable> old_mem = std::move(shard->mem_owned);
  shard->mem_owned = std::make_shared<MemTable>();
  shard->mem.store(shard->mem_owned.get(), std::memory_order_release);
  mgr.Retire(std::static_pointer_cast<const void>(std::move(old_mem)));
}

void LsmKv::MaybeCompactLocked(concurrency::EpochManager& mgr) {
  if (runs_owned_->size() < options_.max_runs) return;
  // Full merge, newest version per key wins; history is collapsed and
  // bottom-level tombstones are dropped (nothing older can resurface).
  struct Best {
    std::string value;
    bool tombstone;
    uint64_t epoch;
  };
  std::map<std::string, Best> merged;
  for (const auto& run : *runs_owned_) {  // oldest first
    for (const SortedRun::Entry& e : run->entries()) {
      auto [it, inserted] =
          merged.try_emplace(e.key, Best{e.value, e.tombstone, e.epoch});
      if (!inserted && e.epoch >= it->second.epoch) {
        it->second = Best{e.value, e.tombstone, e.epoch};
      }
    }
  }
  std::vector<SortedRun::Entry> entries;
  entries.reserve(merged.size());
  for (auto& [k, b] : merged) {
    if (b.tombstone) continue;
    entries.push_back({k, std::move(b.value), false, b.epoch});
  }
  auto next = std::make_shared<RunsVec>();
  next->push_back(std::make_shared<const SortedRun>(std::move(entries)));
  std::shared_ptr<RunsVec> old = std::move(runs_owned_);
  runs_owned_ = std::move(next);
  runs_.store(runs_owned_.get(), std::memory_order_release);
  mgr.Retire(std::static_pointer_cast<const void>(std::move(old)));
  compactions_.fetch_add(1, std::memory_order_relaxed);
}

Status LsmKv::Get(std::string_view key, std::string* value) const {
  concurrency::EpochGuard guard;
  const uint64_t pin = concurrency::ReadPin(guard);
  const Shard& shard = shards_[ShardOf(key)];
  // Memtable before runs: the flush publishes the new run list before
  // the fresh memtable, so a reader that misses here cannot also miss
  // the flushed entries.
  const MemTable* mem = shard.mem.load(std::memory_order_acquire);
  if (const MemTable::ValueVersion* v = mem->Find(key, pin)) {
    if (v->tombstone) return Status::NotFound("deleted");
    value->assign(v->value);
    return Status::OK();
  }
  const RunsVec* runs = runs_.load(std::memory_order_acquire);
  for (auto run = runs->rbegin(); run != runs->rend(); ++run) {
    const SortedRun::Entry* e = (*run)->Find(key, pin);
    if (e != nullptr) {
      if (e->tombstone) return Status::NotFound("deleted");
      value->assign(e->value);
      return Status::OK();
    }
  }
  return Status::NotFound("key not in lsm");
}

void LsmKv::CollectVisible(
    std::string_view prefix, uint64_t pin,
    std::vector<std::pair<std::string, std::string>>* live) const {
  struct Best {
    std::string value;
    bool tombstone;
    uint64_t epoch;
  };
  std::map<std::string, Best> merged;
  // Capture memtables before the run list (see Get for the ordering
  // argument; a retired memtable stays readable under our caller's pin).
  std::array<const MemTable*, kShards> mems;
  for (size_t i = 0; i < kShards; ++i) {
    mems[i] = shards_[i].mem.load(std::memory_order_acquire);
  }
  const RunsVec* runs = runs_.load(std::memory_order_acquire);
  auto apply = [&merged](const std::string& key, const std::string& val,
                         bool tombstone, uint64_t epoch) {
    auto [it, inserted] = merged.try_emplace(key, Best{val, tombstone, epoch});
    if (!inserted && epoch >= it->second.epoch) {
      it->second = Best{val, tombstone, epoch};
    }
  };
  for (const auto& run : *runs) {  // oldest first
    const auto& entries = run->entries();
    auto it = std::lower_bound(
        entries.begin(), entries.end(), prefix,
        [](const SortedRun::Entry& e, std::string_view p) {
          return e.key < p;
        });
    for (; it != entries.end() && HasPrefix(it->key, prefix); ++it) {
      if (it->epoch <= pin) apply(it->key, it->value, it->tombstone, it->epoch);
    }
  }
  for (const MemTable* mem : mems) {
    for (const MemTable::Node* n = mem->Seek(prefix);
         n != nullptr && HasPrefix(n->key, prefix);
         n = MemTable::NextNode(n)) {
      const MemTable::ValueVersion* v =
          n->chain.load(std::memory_order_acquire);
      while (v != nullptr && v->epoch > pin) v = v->older;
      if (v != nullptr) apply(n->key, v->value, v->tombstone, v->epoch);
    }
  }
  live->clear();
  for (auto& [key, b] : merged) {
    if (!b.tombstone) live->emplace_back(key, std::move(b.value));
  }
}

class LsmKv::Iter : public KvIterator {
 public:
  explicit Iter(const LsmKv* lsm) {
    concurrency::EpochGuard guard;
    lsm->CollectVisible("", concurrency::ReadPin(guard), &entries_);
  }

  void SeekToFirst() override { pos_ = 0; }
  void Seek(std::string_view target) override {
    pos_ = size_t(std::lower_bound(entries_.begin(), entries_.end(), target,
                                   [](const auto& e, std::string_view t) {
                                     return e.first < t;
                                   }) -
                  entries_.begin());
  }
  bool Valid() const override { return pos_ < entries_.size(); }
  void Next() override { ++pos_; }
  std::string_view key() const override { return entries_[pos_].first; }
  std::string_view value() const override { return entries_[pos_].second; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_ = 0;
};

std::unique_ptr<KvIterator> LsmKv::NewIterator() const {
  return std::make_unique<Iter>(this);
}

Status LsmKv::ScanPrefix(
    std::string_view prefix,
    std::vector<std::pair<std::string, std::string>>* out) const {
  concurrency::EpochGuard guard;
  CollectVisible(prefix, concurrency::ReadPin(guard), out);
  return Status::OK();
}

uint64_t LsmKv::Count() const {
  concurrency::EpochGuard guard;
  std::vector<std::pair<std::string, std::string>> live;
  CollectVisible("", concurrency::ReadPin(guard), &live);
  return live.size();
}

uint64_t LsmKv::ApproximateSizeBytes() const {
  concurrency::EpochGuard guard;
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.mem.load(std::memory_order_acquire)->bytes();
  }
  const RunsVec* runs = runs_.load(std::memory_order_acquire);
  for (const auto& run : *runs) total += run->size_bytes();
  return total;
}

size_t LsmKv::num_runs() const {
  concurrency::EpochGuard guard;
  return runs_.load(std::memory_order_acquire)->size();
}

uint64_t LsmKv::compactions_run() const {
  return compactions_.load(std::memory_order_relaxed);
}

void LsmKv::Flush() {
  for (Shard& shard : shards_) FlushShard(&shard);
}

}  // namespace graphbench
