#ifndef GRAPHBENCH_KV_LSM_KV_H_
#define GRAPHBENCH_KV_LSM_KV_H_

#include <array>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "kv/kv_store.h"

namespace graphbench {

/// Immutable sorted run (an in-memory SSTable analog). Entries are unique
/// by key; a true `tombstone` flag marks deletions.
class SortedRun {
 public:
  struct Entry {
    std::string key;
    std::string value;
    bool tombstone = false;
  };

  explicit SortedRun(std::vector<Entry> entries);

  /// Returns the entry for `key` (possibly a tombstone) or nullptr.
  const Entry* Find(std::string_view key) const;

  const std::vector<Entry>& entries() const { return entries_; }
  uint64_t size_bytes() const { return size_bytes_; }

 private:
  std::vector<Entry> entries_;
  uint64_t size_bytes_ = 0;
};

/// Options controlling LSM shape; defaults mimic a small write-optimized
/// store.
struct LsmOptions {
  /// Per-shard memtable flush threshold in bytes.
  uint64_t memtable_bytes = 1 << 20;
  /// Compact (merge all runs) when the run count reaches this.
  size_t max_runs = 8;
};

/// In-memory log-structured merge KV store: the Cassandra analog backing
/// Titan-C.
///
/// The memtable is hash-partitioned into independent shards, each with its
/// own latch — Cassandra's partitioned write path. Concurrent readers and
/// writers touching different shards do not contend, which is why Titan-C
/// keeps a steady write rate under concurrent load while the tree-latched
/// Titan-B degrades (§4.3, Appendix A). There is NO transactional
/// isolation: concurrent read-modify-write sequences race unless a layer
/// above locks (TitanGraph's uniqueness locking, §4.3).
class LsmKv : public KvStore {
 public:
  static constexpr size_t kShards = 16;

  explicit LsmKv(LsmOptions options = {});

  LsmKv(const LsmKv&) = delete;
  LsmKv& operator=(const LsmKv&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  Status ScanPrefix(
      std::string_view prefix,
      std::vector<std::pair<std::string, std::string>>* out) const override;
  uint64_t Count() const override;
  uint64_t ApproximateSizeBytes() const override;
  bool SupportsTransactionalIsolation() const override { return false; }
  std::string name() const override { return "lsm"; }

  /// Observable internals for tests/benchmarks.
  size_t num_runs() const;
  uint64_t compactions_run() const;

  /// Forces a flush of every shard memtable (tests).
  void Flush();

 private:
  class Iter;

  struct MemValue {
    std::string value;
    bool tombstone = false;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::map<std::string, MemValue> memtable;
    uint64_t bytes = 0;
  };

  size_t ShardOf(std::string_view key) const {
    return std::hash<std::string_view>()(key) % kShards;
  }

  // Write `tombstone ? delete : put` into the owning shard; flush the
  // shard and maybe compact when thresholds trip.
  Status WriteInternal(std::string_view key, std::string_view value,
                       bool tombstone);
  // Drains `shard`'s memtable into a new run. Takes runs_mu_.
  void FlushShard(Shard* shard);
  void MaybeCompactLocked();

  LsmOptions options_;
  std::array<Shard, kShards> shards_;
  mutable std::shared_mutex runs_mu_;
  std::vector<std::shared_ptr<SortedRun>> runs_;  // oldest first
  uint64_t compactions_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_KV_LSM_KV_H_
