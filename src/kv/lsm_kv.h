#ifndef GRAPHBENCH_KV_LSM_KV_H_
#define GRAPHBENCH_KV_LSM_KV_H_

#include <array>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "concurrency/epoch.h"
#include "kv/kv_store.h"

namespace graphbench {

/// Lock-free-for-readers memtable: a single-writer skiplist whose values
/// are epoch-tagged version chains. Writers (serialized by the owning
/// shard's mutex) splice nodes with release stores; readers traverse with
/// acquire loads under an epoch guard and resolve each key to the newest
/// version at their pin. The whole memtable is retired wholesale when its
/// shard flushes, so nodes and versions need no individual reclamation.
class MemTable {
 public:
  static constexpr int kMaxHeight = 12;

  struct ValueVersion {
    std::string value;
    bool tombstone = false;
    uint64_t epoch = 0;
    const ValueVersion* older = nullptr;
  };

  struct Node {
    std::string key;
    std::atomic<const ValueVersion*> chain{nullptr};
    int height = 1;
    std::array<std::atomic<Node*>, kMaxHeight> next{};
  };

  MemTable();

  /// Writer: insert or version `key`. Same-batch overwrites collapse in
  /// place (the batch's epoch is frozen while it is open).
  void Put(concurrency::EpochManager& mgr, std::string_view key,
           std::string_view value, bool tombstone);

  /// Reader: newest version of `key` visible at `pin`, or nullptr.
  const ValueVersion* Find(std::string_view key, uint64_t pin) const;

  /// Reader: first node with key >= `target` (level-0 ordered scan).
  const Node* Seek(std::string_view target) const;
  const Node* First() const;
  static const Node* NextNode(const Node* n) {
    return n->next[0].load(std::memory_order_acquire);
  }

  bool empty() const {
    return head_.next[0].load(std::memory_order_acquire) == nullptr;
  }
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

 private:
  // Strictly-less search: last node < key at each level.
  Node* FindPredecessors(std::string_view key,
                         std::array<Node*, kMaxHeight>* preds) const;
  int RandomHeight();

  mutable Node head_;
  std::deque<Node> node_arena_;           // writer-owned; nodes never move
  std::deque<ValueVersion> version_arena_;
  int height_ = 1;
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  std::atomic<uint64_t> bytes_{0};
};

/// Immutable sorted run (an in-memory SSTable analog). Keys may repeat
/// with distinct write epochs — newest first — so pinned readers can
/// still resolve their snapshot after a flush.
class SortedRun {
 public:
  struct Entry {
    std::string key;
    std::string value;
    bool tombstone = false;
    uint64_t epoch = 0;
  };

  /// `entries` must be sorted by (key asc, epoch desc).
  explicit SortedRun(std::vector<Entry> entries);

  /// Newest entry for `key` visible at `pin` (possibly a tombstone), or
  /// nullptr.
  const Entry* Find(std::string_view key, uint64_t pin) const;

  const std::vector<Entry>& entries() const { return entries_; }
  uint64_t size_bytes() const { return size_bytes_; }

 private:
  std::vector<Entry> entries_;
  uint64_t size_bytes_ = 0;
};

/// Options controlling LSM shape; defaults mimic a small write-optimized
/// store.
struct LsmOptions {
  /// Per-shard memtable flush threshold in bytes.
  uint64_t memtable_bytes = 1 << 20;
  /// Compact (merge all runs) when the run count reaches this.
  size_t max_runs = 8;
};

/// In-memory log-structured merge KV store: the Cassandra analog backing
/// Titan-C.
///
/// The memtable is hash-partitioned into independent shards, each with its
/// own writer mutex — Cassandra's partitioned write path. Reads never take
/// a lock at all: they pin an epoch, load the published memtable and run
/// pointers, and resolve version chains at that pin, so readers observe a
/// consistent snapshot while updates stream in (§4.3: this is what keeps
/// Titan-C steady under concurrent load while tree-latched Titan-B
/// collapses). There is still NO cross-key transactional isolation:
/// read-modify-write sequences race unless a layer above locks
/// (TitanGraph's uniqueness locking). Compaction collapses version
/// history to the newest entry per key; a reader whose pin overlaps a
/// compaction may observe the newest committed value instead of its
/// snapshot value for compacted keys — still strictly stronger than the
/// old locked design, which offered no snapshot at all.
class LsmKv : public KvStore {
 public:
  static constexpr size_t kShards = 16;

  explicit LsmKv(LsmOptions options = {});

  LsmKv(const LsmKv&) = delete;
  LsmKv& operator=(const LsmKv&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  Status ScanPrefix(
      std::string_view prefix,
      std::vector<std::pair<std::string, std::string>>* out) const override;
  uint64_t Count() const override;
  uint64_t ApproximateSizeBytes() const override;
  bool SupportsTransactionalIsolation() const override { return false; }
  std::string name() const override { return "lsm"; }

  /// Observable internals for tests/benchmarks.
  size_t num_runs() const;
  uint64_t compactions_run() const;

  /// Forces a flush of every shard memtable (tests).
  void Flush();

 private:
  class Iter;
  using RunsVec = std::vector<std::shared_ptr<const SortedRun>>;

  struct Shard {
    std::mutex write_mu;
    // Owned by the writer (guarded by write_mu); the atomic mirrors it
    // for lock-free readers. Replaced wholesale on flush (old table
    // retired under the epoch).
    std::shared_ptr<MemTable> mem_owned;
    std::atomic<const MemTable*> mem{nullptr};
  };

  size_t ShardOf(std::string_view key) const {
    return std::hash<std::string_view>()(key) % kShards;
  }

  Status WriteInternal(std::string_view key, std::string_view value,
                       bool tombstone);
  void FlushShard(Shard* shard);
  void MaybeCompactLocked(concurrency::EpochManager& mgr);

  /// Epoch-filtered merge of every source overlapping [prefix, ...): the
  /// newest visible version per key. Used by scans/iterators/Count.
  void CollectVisible(
      std::string_view prefix, uint64_t pin,
      std::vector<std::pair<std::string, std::string>>* live) const;

  LsmOptions options_;
  std::array<Shard, kShards> shards_;

  std::mutex runs_write_mu_;
  std::shared_ptr<RunsVec> runs_owned_;  // guarded by runs_write_mu_
  std::atomic<const RunsVec*> runs_{nullptr};
  std::atomic<uint64_t> compactions_{0};
};

}  // namespace graphbench

#endif  // GRAPHBENCH_KV_LSM_KV_H_
