#include "kv/paged_btree_kv.h"

#include <algorithm>
#include <cstring>

#include "storage/page_codec.h"

namespace graphbench {

using storage::GetU16;
using storage::GetU32;
using storage::GetU64;
using storage::kPageDataSize;
using storage::PageRef;
using storage::PutU16;
using storage::PutU32;
using storage::PutU64;
using storage::ReadBytes;
using storage::ReadU16;
using storage::ReadU32;
using storage::ReadU64;
using storage::ReadU8;

namespace {

constexpr uint8_t kLeafNode = 1;
constexpr uint8_t kInteriorNode = 2;
constexpr uint8_t kFlagTombstone = 1;
constexpr uint8_t kFlagOverflow = 2;
constexpr uint64_t kMetaMagic = 0x5442424247ull;  // "GBBBT"
constexpr uint64_t kMetaPage = 1;
// Structural overhead charged per entry, matching BTreeKv's accounting so
// ApproximateSizeBytes is comparable across the backends.
constexpr uint64_t kEntryOverhead = 32;

}  // namespace

struct PagedBTreeKv::NodeView {
  struct Entry {
    std::string key;
    std::string value;  // inline leaf value
    uint64_t child = 0;  // interior child page
    uint64_t ov_page = 0;
    uint64_t ov_len = 0;
    bool tombstone = false;
    bool overflow = false;
  };

  uint8_t type = kLeafNode;
  uint64_t next_leaf = 0;
  uint64_t leftmost_child = 0;
  std::vector<Entry> entries;

  size_t SerializedSize() const {
    size_t size = 12;
    for (const Entry& e : entries) {
      if (type == kLeafNode) {
        size += 1 + 2 + e.key.size();
        size += e.overflow ? 16 : 4 + e.value.size();
      } else {
        size += 2 + e.key.size() + 8;
      }
    }
    return size;
  }

  void Serialize(char* out) const {
    std::string buf;
    buf.reserve(SerializedSize());
    buf.push_back(char(type));
    buf.push_back(0);
    PutU16(&buf, uint16_t(entries.size()));
    PutU64(&buf, type == kLeafNode ? next_leaf : leftmost_child);
    for (const Entry& e : entries) {
      if (type == kLeafNode) {
        uint8_t flags = (e.tombstone ? kFlagTombstone : 0) |
                        (e.overflow ? kFlagOverflow : 0);
        buf.push_back(char(flags));
        PutU16(&buf, uint16_t(e.key.size()));
        buf.append(e.key);
        if (e.overflow) {
          PutU64(&buf, e.ov_page);
          PutU64(&buf, e.ov_len);
        } else {
          PutU32(&buf, uint32_t(e.value.size()));
          buf.append(e.value);
        }
      } else {
        PutU16(&buf, uint16_t(e.key.size()));
        buf.append(e.key);
        PutU64(&buf, e.child);
      }
    }
    std::memcpy(out, buf.data(), buf.size());
    // Zero the slack so unchanged tails never show up in commit deltas.
    if (buf.size() < kPageDataSize) {
      std::memset(out + buf.size(), 0, kPageDataSize - buf.size());
    }
  }

  Status Deserialize(const char* data) {
    std::string_view cursor(data, kPageDataSize);
    uint8_t pad;
    uint16_t nkeys;
    uint64_t link;
    if (!ReadU8(&cursor, &type) || !ReadU8(&cursor, &pad) ||
        !ReadU16(&cursor, &nkeys) || !ReadU64(&cursor, &link) ||
        (type != kLeafNode && type != kInteriorNode)) {
      return Status::Corruption("paged_btree: bad node header");
    }
    next_leaf = type == kLeafNode ? link : 0;
    leftmost_child = type == kInteriorNode ? link : 0;
    entries.clear();
    entries.reserve(nkeys);
    for (uint16_t i = 0; i < nkeys; ++i) {
      Entry e;
      uint16_t klen;
      std::string_view bytes;
      if (type == kLeafNode) {
        uint8_t flags;
        if (!ReadU8(&cursor, &flags) || !ReadU16(&cursor, &klen) ||
            !ReadBytes(&cursor, klen, &bytes)) {
          return Status::Corruption("paged_btree: bad leaf entry");
        }
        e.key.assign(bytes);
        e.tombstone = flags & kFlagTombstone;
        e.overflow = flags & kFlagOverflow;
        if (e.overflow) {
          if (!ReadU64(&cursor, &e.ov_page) || !ReadU64(&cursor, &e.ov_len)) {
            return Status::Corruption("paged_btree: bad overflow ref");
          }
        } else {
          uint32_t vlen;
          if (!ReadU32(&cursor, &vlen) || !ReadBytes(&cursor, vlen, &bytes)) {
            return Status::Corruption("paged_btree: bad leaf value");
          }
          e.value.assign(bytes);
        }
      } else {
        if (!ReadU16(&cursor, &klen) || !ReadBytes(&cursor, klen, &bytes) ||
            !ReadU64(&cursor, &e.child)) {
          return Status::Corruption("paged_btree: bad interior entry");
        }
        e.key.assign(bytes);
      }
      entries.push_back(std::move(e));
    }
    return Status::OK();
  }
};

struct PagedBTreeKv::DescentStep {
  uint64_t page_id = 0;
  // Which child of this interior node the descent took (0 = leftmost).
  size_t child_index = 0;
};

PagedBTreeKv::PagedBTreeKv(std::unique_ptr<storage::Pager> pager)
    : pager_(std::move(pager)) {}

PagedBTreeKv::~PagedBTreeKv() = default;

Result<std::unique_ptr<PagedBTreeKv>> PagedBTreeKv::Open(
    storage::FileSystem* fs, const std::string& db_path,
    const std::string& wal_path, const storage::PagerOptions& options) {
  GB_ASSIGN_OR_RETURN(std::unique_ptr<storage::Pager> pager,
                      storage::Pager::Open(fs, db_path, wal_path, options));
  std::unique_ptr<PagedBTreeKv> kv(new PagedBTreeKv(std::move(pager)));
  if (kv->pager_->page_count() <= kMetaPage) {
    GB_RETURN_IF_ERROR(kv->InitFresh());
  } else {
    GB_RETURN_IF_ERROR(kv->LoadMeta());
  }
  return kv;
}

Status PagedBTreeKv::InitFresh() {
  pager_->BeginOp();
  auto meta_or = pager_->Allocate();
  if (!meta_or.ok()) {
    pager_->AbortOp();
    return meta_or.status();
  }
  auto root_or = pager_->Allocate();
  if (!root_or.ok()) {
    pager_->AbortOp();
    return root_or.status();
  }
  root_page_ = root_or->page_id();
  first_leaf_ = root_page_;
  count_ = 0;
  bytes_ = 0;
  root_or->MarkDirty();
  NodeView root;
  root.type = kLeafNode;
  root.Serialize(root_or->data());
  Status s = WriteMetaLocked();
  if (!s.ok()) {
    pager_->AbortOp();
    return s;
  }
  return pager_->CommitOp();
}

Status PagedBTreeKv::LoadMeta() {
  GB_ASSIGN_OR_RETURN(PageRef meta, pager_->Fetch(kMetaPage));
  if (GetU64(meta.data()) != kMetaMagic) {
    return Status::Corruption("paged_btree: bad meta page");
  }
  root_page_ = GetU64(meta.data() + 8);
  first_leaf_ = GetU64(meta.data() + 16);
  count_ = GetU64(meta.data() + 24);
  bytes_ = GetU64(meta.data() + 32);
  return Status::OK();
}

Status PagedBTreeKv::WriteMetaLocked() {
  GB_ASSIGN_OR_RETURN(PageRef meta, pager_->Fetch(kMetaPage));
  meta.MarkDirty();
  char* p = meta.data();
  storage::StoreU64(p, kMetaMagic);
  storage::StoreU64(p + 8, root_page_);
  storage::StoreU64(p + 16, first_leaf_);
  storage::StoreU64(p + 24, count_);
  storage::StoreU64(p + 32, bytes_);
  return Status::OK();
}

Status PagedBTreeKv::ReadNode(uint64_t page_id, NodeView* node) const {
  GB_ASSIGN_OR_RETURN(PageRef ref, pager_->Fetch(page_id));
  return node->Deserialize(ref.data());
}

Status PagedBTreeKv::WriteNode(uint64_t page_id, const NodeView& node) {
  GB_ASSIGN_OR_RETURN(PageRef ref, pager_->Fetch(page_id));
  ref.MarkDirty();
  node.Serialize(ref.data());
  return Status::OK();
}

Status PagedBTreeKv::DescendToLeaf(std::string_view key,
                                   std::vector<DescentStep>* path) const {
  path->clear();
  uint64_t page_id = root_page_;
  for (;;) {
    NodeView node;
    GB_RETURN_IF_ERROR(ReadNode(page_id, &node));
    DescentStep step;
    step.page_id = page_id;
    if (node.type == kLeafNode) {
      path->push_back(step);
      return Status::OK();
    }
    // Child 0 holds keys < entries[0].key; child i+1 holds keys >=
    // entries[i].key.
    size_t idx = 0;
    while (idx < node.entries.size() && key >= node.entries[idx].key) ++idx;
    step.child_index = idx;
    path->push_back(step);
    page_id = idx == 0 ? node.leftmost_child : node.entries[idx - 1].child;
  }
}

/// Splits over-full nodes bottom-up along `path`. `nodes` holds the
/// deserialized node for each path step; nodes->back() (the leaf) must
/// already contain the upsert.
Status PagedBTreeKv::SplitPathLocked(std::vector<DescentStep>* path,
                                     std::vector<NodeView>* nodes) {
  for (size_t level = path->size(); level-- > 0;) {
    NodeView& node = (*nodes)[level];
    if (node.SerializedSize() <= kPageDataSize) {
      GB_RETURN_IF_ERROR(WriteNode((*path)[level].page_id, node));
      return Status::OK();
    }
    size_t mid = node.entries.size() / 2;
    NodeView right;
    right.type = node.type;
    std::string separator;
    if (node.type == kLeafNode) {
      right.entries.assign(node.entries.begin() + ptrdiff_t(mid),
                           node.entries.end());
      node.entries.resize(mid);
      separator = right.entries.front().key;
      right.next_leaf = node.next_leaf;
    } else {
      // The middle key moves up; its child becomes the right node's
      // leftmost.
      separator = node.entries[mid].key;
      right.leftmost_child = node.entries[mid].child;
      right.entries.assign(node.entries.begin() + ptrdiff_t(mid) + 1,
                           node.entries.end());
      node.entries.resize(mid);
    }
    GB_ASSIGN_OR_RETURN(PageRef right_ref, pager_->Allocate());
    uint64_t right_id = right_ref.page_id();
    right_ref.MarkDirty();
    right.Serialize(right_ref.data());
    if (node.type == kLeafNode) node.next_leaf = right_id;
    GB_RETURN_IF_ERROR(WriteNode((*path)[level].page_id, node));

    NodeView::Entry up;
    up.key = std::move(separator);
    up.child = right_id;
    if (level == 0) {
      // Root split: the tree grows a level.
      NodeView new_root;
      new_root.type = kInteriorNode;
      new_root.leftmost_child = (*path)[level].page_id;
      new_root.entries.push_back(std::move(up));
      GB_ASSIGN_OR_RETURN(PageRef root_ref, pager_->Allocate());
      root_ref.MarkDirty();
      new_root.Serialize(root_ref.data());
      root_page_ = root_ref.page_id();
      return Status::OK();
    }
    NodeView& parent = (*nodes)[level - 1];
    size_t at = (*path)[level - 1].child_index;
    parent.entries.insert(parent.entries.begin() + ptrdiff_t(at),
                          std::move(up));
  }
  return Status::OK();
}

Status PagedBTreeKv::MutateLeaf(std::string_view key, std::string_view value,
                                bool is_delete) {
  if (key.size() > kMaxKeyBytes) {
    return Status::InvalidArgument("paged_btree: key too large");
  }
  std::vector<DescentStep> path;
  GB_RETURN_IF_ERROR(DescendToLeaf(key, &path));
  std::vector<NodeView> nodes(path.size());
  for (size_t i = 0; i < path.size(); ++i) {
    GB_RETURN_IF_ERROR(ReadNode(path[i].page_id, &nodes[i]));
  }
  NodeView& leaf = nodes.back();
  auto it = std::lower_bound(
      leaf.entries.begin(), leaf.entries.end(), key,
      [](const NodeView::Entry& e, std::string_view k) { return e.key < k; });
  bool found = it != leaf.entries.end() && it->key == key;

  if (is_delete) {
    if (!found || it->tombstone) {
      return Status::NotFound("key not in btree");
    }
    bytes_ -= std::min<uint64_t>(
        bytes_, key.size() + (it->overflow ? it->ov_len : it->value.size()) +
                    kEntryOverhead);
    --count_;
    // Lazy tombstone: the slot stays (and keeps leaves ordered) but reads
    // skip it. A dropped overflow chain is leaked — no free list
    // (DESIGN.md §12).
    it->tombstone = true;
    it->overflow = false;
    it->ov_page = it->ov_len = 0;
    it->value.clear();
  } else {
    NodeView::Entry entry;
    entry.key.assign(key);
    if (value.size() > kMaxInlineValue) {
      GB_ASSIGN_OR_RETURN(uint64_t first, storage::WriteOverflowChain(
                                              pager_.get(), value));
      entry.overflow = true;
      entry.ov_page = first;
      entry.ov_len = value.size();
    } else {
      entry.value.assign(value);
    }
    if (found) {
      if (!it->tombstone) {
        bytes_ -= std::min<uint64_t>(
            bytes_, key.size() +
                        (it->overflow ? it->ov_len : it->value.size()) +
                        kEntryOverhead);
        --count_;
      }
      *it = std::move(entry);
    } else {
      leaf.entries.insert(it, std::move(entry));
    }
    bytes_ += key.size() + value.size() + kEntryOverhead;
    ++count_;
  }

  GB_RETURN_IF_ERROR(SplitPathLocked(&path, &nodes));
  return WriteMetaLocked();
}

Status PagedBTreeKv::Put(std::string_view key, std::string_view value) {
  std::unique_lock<obs::TimedSharedMutex> lock(latch_);
  pager_->BeginOp();
  Status s = MutateLeaf(key, value, /*is_delete=*/false);
  if (!s.ok()) {
    pager_->AbortOp();
    // Meta counters may have moved before the failure; re-sync from the
    // (rolled back) meta page.
    (void)LoadMeta();
    return s;
  }
  return pager_->CommitOp();
}

Status PagedBTreeKv::Delete(std::string_view key) {
  std::unique_lock<obs::TimedSharedMutex> lock(latch_);
  pager_->BeginOp();
  Status s = MutateLeaf(key, "", /*is_delete=*/true);
  if (!s.ok()) {
    pager_->AbortOp();
    (void)LoadMeta();
    return s;
  }
  return pager_->CommitOp();
}

Status PagedBTreeKv::Get(std::string_view key, std::string* value) const {
  std::shared_lock<obs::TimedSharedMutex> lock(latch_);
  std::vector<DescentStep> path;
  GB_RETURN_IF_ERROR(DescendToLeaf(key, &path));
  NodeView leaf;
  GB_RETURN_IF_ERROR(ReadNode(path.back().page_id, &leaf));
  auto it = std::lower_bound(
      leaf.entries.begin(), leaf.entries.end(), key,
      [](const NodeView::Entry& e, std::string_view k) { return e.key < k; });
  if (it == leaf.entries.end() || it->key != key || it->tombstone) {
    return Status::NotFound("key not in btree");
  }
  if (it->overflow) {
    GB_ASSIGN_OR_RETURN(*value, storage::ReadOverflowChain(
                                    pager_.get(), it->ov_page, it->ov_len));
    return Status::OK();
  }
  value->assign(it->value);
  return Status::OK();
}

Status PagedBTreeKv::ScanPrefix(
    std::string_view prefix,
    std::vector<std::pair<std::string, std::string>>* out) const {
  std::shared_lock<obs::TimedSharedMutex> lock(latch_);
  std::vector<DescentStep> path;
  GB_RETURN_IF_ERROR(DescendToLeaf(prefix, &path));
  uint64_t page_id = path.back().page_id;
  while (page_id != 0) {
    NodeView leaf;
    GB_RETURN_IF_ERROR(ReadNode(page_id, &leaf));
    for (const NodeView::Entry& e : leaf.entries) {
      if (e.key.size() < prefix.size()) {
        if (e.key < prefix) continue;
        return Status::OK();
      }
      int cmp = e.key.compare(0, prefix.size(), prefix);
      if (cmp < 0) continue;
      if (cmp > 0) return Status::OK();
      if (e.tombstone) continue;
      std::string value;
      if (e.overflow) {
        GB_ASSIGN_OR_RETURN(value, storage::ReadOverflowChain(
                                       pager_.get(), e.ov_page, e.ov_len));
      } else {
        value = e.value;
      }
      out->emplace_back(e.key, std::move(value));
    }
    page_id = leaf.next_leaf;
  }
  return Status::OK();
}

uint64_t PagedBTreeKv::Count() const {
  std::shared_lock<obs::TimedSharedMutex> lock(latch_);
  return count_;
}

uint64_t PagedBTreeKv::ApproximateSizeBytes() const {
  std::shared_lock<obs::TimedSharedMutex> lock(latch_);
  return bytes_;
}

/// Snapshot iterator mirroring BTreeKv::Iter: materializes the live
/// keyspace under the shared latch so iteration never observes a
/// half-applied structural change.
class PagedBTreeKv::Iter : public KvIterator {
 public:
  explicit Iter(std::vector<std::pair<std::string, std::string>> entries)
      : entries_(std::move(entries)) {}

  void SeekToFirst() override { pos_ = 0; }
  void Seek(std::string_view target) override {
    pos_ = size_t(std::lower_bound(entries_.begin(), entries_.end(), target,
                                   [](const auto& e, std::string_view t) {
                                     return e.first < t;
                                   }) -
                  entries_.begin());
  }
  bool Valid() const override { return pos_ < entries_.size(); }
  void Next() override { ++pos_; }
  std::string_view key() const override { return entries_[pos_].first; }
  std::string_view value() const override { return entries_[pos_].second; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
  size_t pos_ = 0;
};

std::unique_ptr<KvIterator> PagedBTreeKv::NewIterator() const {
  std::vector<std::pair<std::string, std::string>> entries;
  {
    std::shared_lock<obs::TimedSharedMutex> lock(latch_);
    uint64_t page_id = first_leaf_;
    while (page_id != 0) {
      NodeView leaf;
      if (!ReadNode(page_id, &leaf).ok()) break;
      for (const NodeView::Entry& e : leaf.entries) {
        if (e.tombstone) continue;
        std::string value;
        if (e.overflow) {
          auto v = storage::ReadOverflowChain(pager_.get(), e.ov_page,
                                              e.ov_len);
          if (!v.ok()) continue;
          value = std::move(*v);
        } else {
          value = e.value;
        }
        entries.emplace_back(e.key, std::move(value));
      }
      page_id = leaf.next_leaf;
    }
  }
  return std::make_unique<Iter>(std::move(entries));
}

}  // namespace graphbench
