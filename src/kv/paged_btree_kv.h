#ifndef GRAPHBENCH_KV_PAGED_BTREE_KV_H_
#define GRAPHBENCH_KV_PAGED_BTREE_KV_H_

#include <memory>
#include <string>
#include <vector>

#include "kv/kv_store.h"
#include "obs/lock_timer.h"
#include "storage/pager.h"

namespace graphbench {

/// Durable B+-tree key-value store over the buffer-pool pager: the
/// `--durable` backend for Titan-B (DESIGN.md §12).
///
/// Nodes are whole pages. Each Put/Delete runs as one pager op —
/// BeginOp, mutate the leaf plus any split path, CommitOp — so every
/// structural update is a single atomic WAL record: a crash replays all
/// of a split or none of it. Deletes are lazy tombstones (mirroring the
/// in-memory BTreeKv): the key stays in the leaf flagged dead and is
/// filtered by reads; tombstoned slots are reused by later Puts of the
/// same key. Values larger than kMaxInlineValue go to overflow chains.
///
/// Latching mirrors BTreeKv's coarse tree latch (writers exclusive,
/// readers shared) under "paged_btree.lock_wait_us", so the paged
/// backend degrades under contention the same way §4.3 describes — plus
/// the log/fsync cost that is the point of the durability ablation.
class PagedBTreeKv : public KvStore {
 public:
  /// Values above this are stored out-of-line in overflow chains.
  static constexpr size_t kMaxInlineValue = 512;
  /// Hard key ceiling: guarantees any two entries fit one leaf, so a
  /// split can always succeed.
  static constexpr size_t kMaxKeyBytes = 1024;

  /// Opens (creating or recovering) the tree at `db_path`/`wal_path`.
  static Result<std::unique_ptr<PagedBTreeKv>> Open(
      storage::FileSystem* fs, const std::string& db_path,
      const std::string& wal_path, const storage::PagerOptions& options);
  ~PagedBTreeKv() override;

  PagedBTreeKv(const PagedBTreeKv&) = delete;
  PagedBTreeKv& operator=(const PagedBTreeKv&) = delete;

  Status Put(std::string_view key, std::string_view value) override;
  Status Get(std::string_view key, std::string* value) const override;
  Status Delete(std::string_view key) override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  Status ScanPrefix(
      std::string_view prefix,
      std::vector<std::pair<std::string, std::string>>* out) const override;
  uint64_t Count() const override;
  uint64_t ApproximateSizeBytes() const override;
  bool SupportsTransactionalIsolation() const override { return true; }
  std::string name() const override { return "paged_btree"; }

  /// Flush + publish + WAL reset; exposed so tests and benches can place
  /// checkpoints deterministically (auto-checkpointing comes from
  /// PagerOptions::checkpoint_interval_ops).
  Status Checkpoint() { return pager_->Checkpoint(); }
  storage::Pager* pager() { return pager_.get(); }

 private:
  struct NodeView;
  struct DescentStep;
  class Iter;

  explicit PagedBTreeKv(std::unique_ptr<storage::Pager> pager);

  Status InitFresh();
  Status LoadMeta();
  Status WriteMetaLocked();
  Status DescendToLeaf(std::string_view key,
                       std::vector<DescentStep>* path) const;
  Status WriteNode(uint64_t page_id, const NodeView& node);
  Status ReadNode(uint64_t page_id, NodeView* node) const;
  Status SplitPathLocked(std::vector<DescentStep>* path,
                         std::vector<NodeView>* nodes);
  Status MutateLeaf(std::string_view key, std::string_view value,
                    bool is_delete);

  std::unique_ptr<storage::Pager> pager_;
  mutable obs::TimedSharedMutex latch_{"paged_btree.lock_wait_us"};

  // Cached meta-page fields (page 1), rewritten inside every mutating op.
  uint64_t root_page_ = 0;
  uint64_t first_leaf_ = 0;
  uint64_t count_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_KV_PAGED_BTREE_KV_H_
