#ifndef GRAPHBENCH_LANG_CYPHER_AST_H_
#define GRAPHBENCH_LANG_CYPHER_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph_types.h"
#include "util/value.h"

namespace graphbench {
namespace cypher {

enum class BinOp { kEq, kNe, kLt, kLe, kGt, kGe, kAnd };

/// Cypher expression: property access, literals, $parameters, comparisons,
/// count(*), and length(shortestPath((a)-[:T*]-(b))).
struct Expr {
  enum class Kind {
    kProp,        // var.key
    kLiteral,
    kParam,       // $name
    kBinary,
    kCountStar,
    kPathLength,  // length(shortestPath((a)-[:T*]-(b)))
  };

  Kind kind = Kind::kLiteral;
  std::string var;   // kProp: variable; kParam: parameter name
  std::string key;   // kProp
  Value literal;
  BinOp op = BinOp::kEq;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;
  // kPathLength
  std::string path_from;
  std::string path_to;
  std::string path_rel_type;
};

struct NodePattern {
  std::string var;    // may be empty (anonymous)
  std::string label;  // may be empty
  // Inline property constraints {k: expr}; exprs are literals or params.
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> props;
};

struct RelPattern {
  std::string type;  // edge label; required in this subset
  Direction dir = Direction::kBoth;
  // Variable-length expansion -[:T*min..max]- ; single hop when both are 1.
  int min_hops = 1;
  int max_hops = 1;
  // Inline properties, used by CREATE (ignored for MATCH filtering).
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> props;
};

/// A linear pattern (n0)-[r0]-(n1)-[r1]-(n2)...:
/// nodes.size() == rels.size() + 1.
struct PatternChain {
  std::vector<NodePattern> nodes;
  std::vector<RelPattern> rels;
};

struct ReturnItem {
  std::unique_ptr<Expr> expr;
  std::string name;
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

/// One Cypher statement: MATCH..RETURN, CREATE.., or MATCH..CREATE..
struct Query {
  std::vector<PatternChain> match;
  std::unique_ptr<Expr> where;

  bool distinct = false;
  std::vector<ReturnItem> ret;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
  /// LIMIT $name — the named parameter supplying the limit at bind time;
  /// empty when the limit is a literal (or absent). Lets prepared
  /// statements share one plan across differing limits.
  std::string limit_param;

  // CREATE clause: standalone node patterns and/or relationship chains
  // between (possibly MATCH-bound) endpoints.
  std::vector<NodePattern> create_nodes;
  struct CreateRel {
    std::string from_var;
    std::string to_var;
    RelPattern rel;
  };
  std::vector<CreateRel> create_rels;
};

}  // namespace cypher
}  // namespace graphbench

#endif  // GRAPHBENCH_LANG_CYPHER_AST_H_
