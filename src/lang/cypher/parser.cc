#include "lang/cypher/parser.h"

#include "lang/lexer.h"

namespace graphbench {
namespace cypher {

namespace {

class Parser {
 public:
  explicit Parser(const std::vector<Token>* tokens) : cur_(tokens) {}

  Result<Query> ParseQuery() {
    Query q;
    if (cur_.TryKeyword("MATCH")) {
      do {
        GB_ASSIGN_OR_RETURN(PatternChain chain, ParseChain());
        q.match.push_back(std::move(chain));
      } while (cur_.TryPunct(","));
      if (cur_.TryKeyword("WHERE")) {
        GB_ASSIGN_OR_RETURN(q.where, ParseExpr());
      }
    }
    if (cur_.TryKeyword("CREATE")) {
      do {
        GB_ASSIGN_OR_RETURN(PatternChain chain, ParseChain());
        if (chain.rels.empty()) {
          if (chain.nodes.size() != 1) {
            return Status::InvalidArgument("CREATE node pattern malformed");
          }
          q.create_nodes.push_back(std::move(chain.nodes[0]));
        } else if (chain.rels.size() == 1 && chain.nodes.size() == 2) {
          if (chain.rels[0].dir == Direction::kBoth) {
            return Status::InvalidArgument(
                "CREATE relationships must be directed");
          }
          if (chain.rels[0].max_hops != 1) {
            return Status::InvalidArgument(
                "CREATE cannot use variable-length patterns");
          }
          Query::CreateRel cr;
          bool forward = chain.rels[0].dir == Direction::kOut;
          cr.from_var = chain.nodes[forward ? 0 : 1].var;
          cr.to_var = chain.nodes[forward ? 1 : 0].var;
          cr.rel = std::move(chain.rels[0]);
          cr.rel.dir = Direction::kOut;
          q.create_rels.push_back(std::move(cr));
        } else {
          return Status::InvalidArgument(
              "CREATE supports single nodes or single relationships");
        }
      } while (cur_.TryPunct(","));
    }
    if (cur_.TryKeyword("RETURN")) {
      q.distinct = cur_.TryKeyword("DISTINCT");
      do {
        ReturnItem item;
        GB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (cur_.TryKeyword("AS")) {
          item.name = cur_.Advance().text;
        } else {
          item.name = DeriveName(*item.expr);
        }
        q.ret.push_back(std::move(item));
      } while (cur_.TryPunct(","));
      if (cur_.TryKeyword("ORDER")) {
        GB_RETURN_IF_ERROR(cur_.ExpectKeyword("BY"));
        do {
          OrderItem item;
          GB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
          if (cur_.TryKeyword("DESC")) {
            item.desc = true;
          } else {
            cur_.TryKeyword("ASC");
          }
          q.order_by.push_back(std::move(item));
        } while (cur_.TryPunct(","));
      }
      if (cur_.TryKeyword("LIMIT")) {
        const Token& t = cur_.Advance();
        if (t.kind == Token::Kind::kParam && !t.text.empty()) {
          q.limit_param = t.text;
        } else if (t.kind == Token::Kind::kInteger) {
          q.limit = t.literal.as_int();
        } else {
          return Status::InvalidArgument(
              "LIMIT expects an integer or $parameter");
        }
      }
    }
    if (q.match.empty() && q.create_nodes.empty() && q.create_rels.empty()) {
      return Status::InvalidArgument("expected MATCH or CREATE");
    }
    if (!cur_.AtEnd()) {
      return Status::InvalidArgument("trailing tokens near '" +
                                     cur_.Peek().text + "'");
    }
    return q;
  }

 private:
  Result<PatternChain> ParseChain() {
    PatternChain chain;
    GB_ASSIGN_OR_RETURN(NodePattern node, ParseNode());
    chain.nodes.push_back(std::move(node));
    for (;;) {
      Direction dir;
      if (cur_.Peek().IsPunct("<-")) {
        cur_.Advance();
        dir = Direction::kIn;
      } else if (cur_.Peek().IsPunct("-")) {
        cur_.Advance();
        dir = Direction::kBoth;  // may become kOut after the closing arrow
      } else {
        break;
      }
      RelPattern rel;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("["));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(":"));
      rel.type = cur_.Advance().text;
      if (cur_.TryPunct("*")) {
        // -[:T*]- (unbounded is capped), -[:T*n]-, or -[:T*min..max]-.
        rel.min_hops = 1;
        rel.max_hops = 16;  // engine-enforced cap for bare '*'
        if (cur_.Peek().kind == Token::Kind::kInteger) {
          rel.min_hops = int(cur_.Advance().literal.as_int());
          rel.max_hops = rel.min_hops;
          if (cur_.TryPunct("..")) {
            if (cur_.Peek().kind != Token::Kind::kInteger) {
              return Status::InvalidArgument("expected upper hop bound");
            }
            rel.max_hops = int(cur_.Advance().literal.as_int());
          }
        }
        if (rel.min_hops < 1 || rel.max_hops < rel.min_hops) {
          return Status::InvalidArgument("bad variable-length bounds");
        }
      }
      if (cur_.Peek().IsPunct("{")) {
        GB_RETURN_IF_ERROR(ParsePropBlock(&rel.props));
      }
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("]"));
      if (dir == Direction::kIn) {
        GB_RETURN_IF_ERROR(cur_.ExpectPunct("-"));
      } else if (cur_.TryPunct("->")) {
        dir = Direction::kOut;
      } else {
        GB_RETURN_IF_ERROR(cur_.ExpectPunct("-"));
      }
      rel.dir = dir;
      GB_ASSIGN_OR_RETURN(NodePattern next, ParseNode());
      chain.rels.push_back(std::move(rel));
      chain.nodes.push_back(std::move(next));
    }
    return chain;
  }

  Result<NodePattern> ParseNode() {
    NodePattern node;
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
    if (cur_.Peek().kind == Token::Kind::kIdentifier) {
      node.var = cur_.Advance().text;
    }
    if (cur_.TryPunct(":")) {
      node.label = cur_.Advance().text;
    }
    if (cur_.Peek().IsPunct("{")) {
      GB_RETURN_IF_ERROR(ParsePropBlock(&node.props));
    }
    GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
    return node;
  }

  Status ParsePropBlock(
      std::vector<std::pair<std::string, std::unique_ptr<Expr>>>* out) {
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("{"));
    do {
      std::string key = cur_.Advance().text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(":"));
      auto value_or = ParseExpr();
      if (!value_or.ok()) return value_or.status();
      out->emplace_back(std::move(key), std::move(value_or).value());
    } while (cur_.TryPunct(","));
    return cur_.ExpectPunct("}");
  }

  Result<std::unique_ptr<Expr>> ParseExpr() {
    GB_ASSIGN_OR_RETURN(auto lhs, ParseComparison());
    while (cur_.TryKeyword("AND")) {
      GB_ASSIGN_OR_RETURN(auto rhs, ParseComparison());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = BinOp::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    GB_ASSIGN_OR_RETURN(auto lhs, ParsePrimary());
    BinOp op;
    const Token& t = cur_.Peek();
    if (t.IsPunct("=")) op = BinOp::kEq;
    else if (t.IsPunct("<>") || t.IsPunct("!=")) op = BinOp::kNe;
    else if (t.IsPunct("<")) op = BinOp::kLt;
    else if (t.IsPunct("<=")) op = BinOp::kLe;
    else if (t.IsPunct(">")) op = BinOp::kGt;
    else if (t.IsPunct(">=")) op = BinOp::kGe;
    else return lhs;
    cur_.Advance();
    GB_ASSIGN_OR_RETURN(auto rhs, ParsePrimary());
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    auto node = std::make_unique<Expr>();
    const Token& t = cur_.Peek();
    switch (t.kind) {
      case Token::Kind::kInteger:
      case Token::Kind::kFloat:
      case Token::Kind::kString:
        node->kind = Expr::Kind::kLiteral;
        node->literal = cur_.Advance().literal;
        return node;
      case Token::Kind::kParam:
        node->kind = Expr::Kind::kParam;
        node->var = cur_.Advance().text;
        if (node->var.empty()) {
          return Status::InvalidArgument("Cypher parameters must be named");
        }
        return node;
      case Token::Kind::kIdentifier:
        break;
      default:
        return Status::InvalidArgument("unexpected token '" + t.text + "'");
    }
    if (t.IsKeyword("count")) {
      cur_.Advance();
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("*"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      node->kind = Expr::Kind::kCountStar;
      return node;
    }
    if (t.IsKeyword("length")) {
      // length(shortestPath((a)-[:T*]-(b)))
      cur_.Advance();
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      GB_RETURN_IF_ERROR(cur_.ExpectKeyword("shortestPath"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      node->path_from = cur_.Advance().text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("-"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("["));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(":"));
      node->path_rel_type = cur_.Advance().text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("*"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("]"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("-"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      node->path_to = cur_.Advance().text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      node->kind = Expr::Kind::kPathLength;
      return node;
    }
    // var.prop or bare var (bare vars are only valid as property-less
    // references inside shortestPath, handled above, so require ".prop").
    std::string var = cur_.Advance().text;
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("."));
    node->kind = Expr::Kind::kProp;
    node->var = std::move(var);
    node->key = cur_.Advance().text;
    return node;
  }

  static std::string DeriveName(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kProp:
        return e.var + "." + e.key;
      case Expr::Kind::kCountStar:
        return "count";
      case Expr::Kind::kPathLength:
        return "length";
      default:
        return "expr";
    }
  }

  TokenCursor cur_;
};

}  // namespace

Result<Query> Parse(std::string_view text) {
  std::vector<Token> tokens;
  GB_RETURN_IF_ERROR(Tokenize(text, LexerOptions{}, &tokens));
  Parser parser(&tokens);
  return parser.ParseQuery();
}

}  // namespace cypher
}  // namespace graphbench
