#ifndef GRAPHBENCH_LANG_CYPHER_PARSER_H_
#define GRAPHBENCH_LANG_CYPHER_PARSER_H_

#include <string_view>

#include "lang/cypher/ast.h"
#include "util/result.h"

namespace graphbench {
namespace cypher {

/// Parses the Cypher subset:
///
///   MATCH (a:Label {k: $p})-[:TYPE]->(b), (c {k: 1})
///   [WHERE expr] RETURN [DISTINCT] expr [AS x], ...
///   [ORDER BY expr [DESC], ...] [LIMIT n]
///
///   [MATCH ...] CREATE (n:Label {..}) | CREATE (a)-[:TYPE {..}]->(b)
///
/// plus length(shortestPath((a)-[:TYPE*]-(b))) in RETURN items.
Result<Query> Parse(std::string_view text);

}  // namespace cypher
}  // namespace graphbench

#endif  // GRAPHBENCH_LANG_CYPHER_PARSER_H_
