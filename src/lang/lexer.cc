#include "lang/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace graphbench {

bool Token::IsKeyword(std::string_view kw) const {
  return kind == Kind::kIdentifier && EqualsIgnoreCase(text, kw);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c, bool allow_colon) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         (allow_colon && c == ':');
}

}  // namespace

Status Tokenize(std::string_view input, const LexerOptions& options,
                std::vector<Token>* tokens) {
  tokens->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i], options.colon_in_identifiers)) {
        ++i;
      }
      tok.kind = Token::Kind::kIdentifier;
      tok.text = std::string(input.substr(start, i - start));
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])) &&
                (tokens->empty() ||
                 tokens->back().kind == Token::Kind::kPunct))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        if (input[i] == '.') {
          // ".." or ".name" terminates the number (SQL alias.column).
          if (i + 1 >= n ||
              !std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
            break;
          }
          is_float = true;
        }
        ++i;
      }
      std::string text(input.substr(start, i - start));
      if (is_float) {
        tok.kind = Token::Kind::kFloat;
        tok.literal = Value(std::stod(text));
      } else {
        tok.kind = Token::Kind::kInteger;
        tok.literal = Value(int64_t(std::stoll(text)));
      }
      tok.text = std::move(text);
    } else if (c == '\'' || c == '"') {
      char quote = c;
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\\' && i + 1 < n) {
          body.push_back(input[i + 1]);
          i += 2;
          continue;
        }
        if (input[i] == quote) {
          closed = true;
          ++i;
          break;
        }
        body.push_back(input[i]);
        ++i;
      }
      if (!closed) return Status::InvalidArgument("unterminated string");
      tok.kind = Token::Kind::kString;
      tok.literal = Value(body);
      tok.text = std::move(body);
    } else if (c == '?') {
      ++i;
      if (options.question_mark_is_variable && i < n &&
          IsIdentStart(input[i])) {
        size_t start = i;
        while (i < n && IsIdentChar(input[i], false)) ++i;
        tok.kind = Token::Kind::kVariable;
        tok.text = std::string(input.substr(start, i - start));
      } else {
        tok.kind = Token::Kind::kParam;
      }
    } else if (c == '$' && i + 1 < n && IsIdentStart(input[i + 1])) {
      ++i;
      size_t start = i;
      while (i < n && IsIdentChar(input[i], false)) ++i;
      tok.kind = Token::Kind::kParam;
      tok.text = std::string(input.substr(start, i - start));
    } else {
      // Multi-char operators first.
      static constexpr std::string_view kTwoChar[] = {"<>", "<=", ">=", "!=",
                                                      "->", "<-", ".."};
      tok.kind = Token::Kind::kPunct;
      bool matched = false;
      for (std::string_view op : kTwoChar) {
        if (input.substr(i, 2) == op) {
          tok.text = std::string(op);
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens->push_back(std::move(tok));
  }
  tokens->push_back(Token{});  // kEnd sentinel
  return Status::OK();
}

Status TokenCursor::ExpectKeyword(std::string_view kw) {
  if (!TryKeyword(kw)) {
    return Status::InvalidArgument("expected keyword '" + std::string(kw) +
                                   "' near '" + Peek().text + "'");
  }
  return Status::OK();
}

Status TokenCursor::ExpectPunct(std::string_view p) {
  if (!TryPunct(p)) {
    return Status::InvalidArgument("expected '" + std::string(p) +
                                   "' near '" + Peek().text + "'");
  }
  return Status::OK();
}

}  // namespace graphbench
