#ifndef GRAPHBENCH_LANG_LEXER_H_
#define GRAPHBENCH_LANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "util/value.h"

namespace graphbench {

/// One lexical token. Shared by the SQL, Cypher, and SPARQL parsers:
/// all three languages tokenize into identifiers, numbers, quoted strings,
/// parameters, and punctuation.
struct Token {
  enum class Kind {
    kIdentifier,   // person, firstName, snb:knows (SPARQL prefixed names)
    kInteger,      // 42
    kFloat,        // 3.14
    kString,       // 'abc' or "abc"
    kParam,        // ?  (positional) or $name (named)
    kVariable,     // ?name (SPARQL variable)
    kPunct,        // ( ) , . ; = <> <= >= < > + - * / [ ] { } : | !=
    kEnd,
  };

  Kind kind = Kind::kEnd;
  std::string text;    // identifier/punct spelling, param name, string body
  Value literal;       // for kInteger/kFloat/kString

  bool IsPunct(std::string_view p) const {
    return kind == Kind::kPunct && text == p;
  }
  /// Case-insensitive keyword test (identifiers only).
  bool IsKeyword(std::string_view kw) const;
};

/// Options controlling language-specific lexing quirks.
struct LexerOptions {
  /// SPARQL: "?x" is a variable; SQL: "?" is a positional parameter.
  bool question_mark_is_variable = false;
  /// SPARQL: allow ':' inside identifiers (prefixed names like snb:knows).
  bool colon_in_identifiers = false;
};

/// Tokenizes `input`. On success fills `tokens` (terminated by kEnd).
Status Tokenize(std::string_view input, const LexerOptions& options,
                std::vector<Token>* tokens);

/// Cursor over a token stream with the helpers recursive-descent parsers
/// need.
class TokenCursor {
 public:
  explicit TokenCursor(const std::vector<Token>* tokens) : tokens_(tokens) {}

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_->size() ? (*tokens_)[i] : tokens_->back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ < tokens_->size() - 1) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().kind == Token::Kind::kEnd; }

  /// Consumes the keyword if present.
  bool TryKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  /// Consumes the punctuation if present.
  bool TryPunct(std::string_view p) {
    if (Peek().IsPunct(p)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw);
  Status ExpectPunct(std::string_view p);

 private:
  const std::vector<Token>* tokens_;
  size_t pos_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_LANG_LEXER_H_
