#include "lang/plan_cache.h"

namespace graphbench {
namespace lang {

PlanCacheCounters::PlanCacheCounters(std::string_view engine) {
  std::string prefix = "plan_cache." + std::string(engine) + ".";
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  hits_counter_ = registry.GetCounter(prefix + "hits");
  misses_counter_ = registry.GetCounter(prefix + "misses");
  evictions_counter_ = registry.GetCounter(prefix + "evictions");
}

}  // namespace lang
}  // namespace graphbench
