#ifndef GRAPHBENCH_LANG_PLAN_CACHE_H_
#define GRAPHBENCH_LANG_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.h"

namespace graphbench {
namespace lang {

/// Default bound for engine plan caches: comfortably above the workload's
/// ~16 statement shapes, small enough that eviction is testable.
inline constexpr size_t kDefaultPlanCacheCapacity = 128;

/// Point-in-time view of one cache instance, for per-SUT reporting (the
/// obs counters aggregate across instances that share an engine label).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t size = 0;
  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : double(hits) / double(total);
  }
};

/// Counts cache traffic both per instance (atomics, read via Stats()) and
/// process-wide (obs counters "plan_cache.<engine>.hits/misses/evictions"
/// in the default registry). Non-template so the registry lookups live in
/// plan_cache.cc.
class PlanCacheCounters {
 public:
  explicit PlanCacheCounters(std::string_view engine);

  void RecordHit() {
    hits_.fetch_add(1, std::memory_order_relaxed);
    hits_counter_->Increment();
  }
  void RecordMiss() {
    misses_.fetch_add(1, std::memory_order_relaxed);
    misses_counter_->Increment();
  }
  void RecordEviction() {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evictions_counter_->Increment();
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  obs::Counter* hits_counter_;
  obs::Counter* misses_counter_;
  obs::Counter* evictions_counter_;
};

/// Bounded, thread-safe LRU of immutable prepared plans keyed by statement
/// text. Each engine instance owns one; `engine` labels the shared obs
/// counters ("sql", "cypher", "sparql", "gremlin"). Values are
/// shared_ptr<const PlanT> so a cached plan stays alive while an executor
/// on another thread still holds it after eviction.
template <typename PlanT>
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = kDefaultPlanCacheCapacity;

  explicit PlanCache(std::string_view engine,
                     size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity), counters_(engine) {}

  /// Returns the cached plan (promoting it to most-recently-used) or null
  /// on a miss. Counts a hit or miss either way.
  std::shared_ptr<const PlanT> Lookup(std::string_view text) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(text);
    if (it == map_.end()) {
      counters_.RecordMiss();
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    counters_.RecordHit();
    return it->second.plan;
  }

  /// Inserts (or replaces) the plan for `text` as most-recently-used,
  /// evicting the least-recently-used entry when over capacity.
  void Insert(std::string_view text, std::shared_ptr<const PlanT> plan) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(text);
    if (it != map_.end()) {
      it->second.plan = std::move(plan);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return;
    }
    lru_.emplace_front(text);
    map_.emplace(std::string(text), Entry{std::move(plan), lru_.begin()});
    while (map_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
      counters_.RecordEviction();
    }
  }

  /// True if `text` is cached, without touching LRU order or counters.
  bool Contains(std::string_view text) const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.find(text) != map_.end();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  size_t capacity() const { return capacity_; }

  PlanCacheStats Stats() const {
    PlanCacheStats s;
    s.hits = counters_.hits();
    s.misses = counters_.misses();
    s.evictions = counters_.evictions();
    s.size = size();
    return s;
  }

 private:
  struct Entry {
    std::shared_ptr<const PlanT> plan;
    std::list<std::string>::iterator lru_it;
  };

  const size_t capacity_;
  PlanCacheCounters counters_;
  mutable std::mutex mu_;
  /// Front = most recently used; back is next to evict.
  std::list<std::string> lru_;
  std::map<std::string, Entry, std::less<>> map_;
};

}  // namespace lang
}  // namespace graphbench

#endif  // GRAPHBENCH_LANG_PLAN_CACHE_H_
