#ifndef GRAPHBENCH_LANG_SPARQL_AST_H_
#define GRAPHBENCH_LANG_SPARQL_AST_H_

#include <string>
#include <vector>

#include "util/value.h"

namespace graphbench {
namespace sparql {

/// A term position in a triple pattern: constant IRI, constant literal,
/// named parameter ($name, bound to a literal at execution time), or
/// variable.
struct TermPattern {
  enum class Kind { kIri, kLiteral, kVariable, kParam };
  Kind kind = Kind::kIri;
  std::string text;  // IRI spelling, variable name, or parameter name
  Value literal;

  static TermPattern Var(std::string name) {
    TermPattern t;
    t.kind = Kind::kVariable;
    t.text = std::move(name);
    return t;
  }
};

struct TriplePattern {
  TermPattern s, p, o;
};

/// FILTER(?a != ?b) / FILTER(?a = ?b) — the only filter forms the SNB
/// queries need.
struct Filter {
  std::string var_a;
  std::string var_b;
  bool not_equal = true;
};

/// A projection: a plain variable, the transitivity extension
/// (shortestPath(?a, ?b, pred) AS ?name) — our analog of Virtuoso's
/// transitive closure support — or an aggregate (COUNT(?v) AS ?n).
struct SelectExpr {
  bool is_path = false;
  bool is_count = false;  // (COUNT(?var) AS ?name)
  std::string var;        // plain projection / COUNT argument
  std::string from_var;   // path form
  std::string to_var;
  std::string pred_iri;
  std::string as_name;
};

struct Query {
  bool distinct = false;
  std::vector<SelectExpr> select;
  std::vector<TriplePattern> patterns;
  std::vector<Filter> filters;
  std::vector<std::string> group_by;  // GROUP BY ?vars
  std::vector<std::pair<std::string, bool>> order_by;  // (var, desc)
  int64_t limit = -1;
  /// LIMIT $name — the named parameter supplying the limit at bind time;
  /// empty when the limit is a literal (or absent). Lets prepared
  /// statements share one plan across differing limits.
  std::string limit_param;
};

}  // namespace sparql
}  // namespace graphbench

#endif  // GRAPHBENCH_LANG_SPARQL_AST_H_
