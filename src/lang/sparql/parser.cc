#include "lang/sparql/parser.h"

#include "lang/lexer.h"

namespace graphbench {
namespace sparql {

namespace {

class Parser {
 public:
  explicit Parser(const std::vector<Token>* tokens) : cur_(tokens) {}

  Result<Query> ParseQuery() {
    Query q;
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("SELECT"));
    q.distinct = cur_.TryKeyword("DISTINCT");
    // Projections.
    for (;;) {
      const Token& t = cur_.Peek();
      if (t.kind == Token::Kind::kVariable) {
        SelectExpr e;
        e.var = cur_.Advance().text;
        q.select.push_back(std::move(e));
      } else if (t.IsPunct("(")) {
        cur_.Advance();
        GB_ASSIGN_OR_RETURN(SelectExpr e, ParsePathExpr());
        q.select.push_back(std::move(e));
        GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      } else {
        break;
      }
    }
    if (q.select.empty()) {
      return Status::InvalidArgument("SELECT needs at least one projection");
    }
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("WHERE"));
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("{"));
    while (!cur_.Peek().IsPunct("}")) {
      if (cur_.TryKeyword("FILTER")) {
        GB_ASSIGN_OR_RETURN(Filter f, ParseFilter());
        q.filters.push_back(std::move(f));
        cur_.TryPunct(".");
        continue;
      }
      TriplePattern tp;
      GB_ASSIGN_OR_RETURN(tp.s, ParseTerm());
      GB_ASSIGN_OR_RETURN(tp.p, ParseTerm());
      GB_ASSIGN_OR_RETURN(tp.o, ParseTerm());
      q.patterns.push_back(std::move(tp));
      // Predicate-object lists: "?s p1 o1 ; p2 o2 ."
      while (cur_.TryPunct(";")) {
        TriplePattern more;
        more.s = q.patterns.back().s;
        GB_ASSIGN_OR_RETURN(more.p, ParseTerm());
        GB_ASSIGN_OR_RETURN(more.o, ParseTerm());
        q.patterns.push_back(std::move(more));
      }
      cur_.TryPunct(".");
    }
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("}"));
    if (cur_.TryKeyword("GROUP")) {
      GB_RETURN_IF_ERROR(cur_.ExpectKeyword("BY"));
      while (cur_.Peek().kind == Token::Kind::kVariable) {
        q.group_by.push_back(cur_.Advance().text);
      }
      if (q.group_by.empty()) {
        return Status::InvalidArgument("GROUP BY needs variables");
      }
    }
    if (cur_.TryKeyword("ORDER")) {
      GB_RETURN_IF_ERROR(cur_.ExpectKeyword("BY"));
      for (;;) {
        bool desc = false;
        if (cur_.TryKeyword("DESC")) {
          GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
          desc = true;
        } else {
          cur_.TryKeyword("ASC");
        }
        const Token& v = cur_.Peek();
        if (v.kind != Token::Kind::kVariable) break;
        q.order_by.emplace_back(cur_.Advance().text, desc);
        if (desc) GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
        cur_.TryPunct(",");  // SPARQL keys are space-separated; comma ok
        if (cur_.Peek().kind != Token::Kind::kVariable &&
            !cur_.Peek().IsKeyword("DESC") && !cur_.Peek().IsKeyword("ASC")) {
          break;
        }
      }
      if (q.order_by.empty()) {
        return Status::InvalidArgument("ORDER BY needs a variable");
      }
    }
    if (cur_.TryKeyword("LIMIT")) {
      const Token& t = cur_.Advance();
      if (t.kind == Token::Kind::kParam && !t.text.empty()) {
        q.limit_param = t.text;
      } else if (t.kind == Token::Kind::kInteger) {
        q.limit = t.literal.as_int();
      } else {
        return Status::InvalidArgument(
            "LIMIT expects an integer or $parameter");
      }
    }
    if (!cur_.AtEnd()) {
      return Status::InvalidArgument("trailing tokens near '" +
                                     cur_.Peek().text + "'");
    }
    return q;
  }

 private:
  Result<SelectExpr> ParsePathExpr() {
    SelectExpr e;
    const Token& fn = cur_.Advance();
    if (fn.IsKeyword("COUNT")) {
      e.is_count = true;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      const Token& v = cur_.Advance();
      if (v.kind != Token::Kind::kVariable) {
        return Status::InvalidArgument("COUNT expects a variable");
      }
      e.var = v.text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      GB_RETURN_IF_ERROR(cur_.ExpectKeyword("AS"));
      const Token& as = cur_.Advance();
      if (as.kind != Token::Kind::kVariable) {
        return Status::InvalidArgument("AS target must be a variable");
      }
      e.as_name = as.text;
      return e;
    }
    e.is_path = true;
    if (!fn.IsKeyword("shortestPath")) {
      return Status::InvalidArgument("expected shortestPath(...) or COUNT");
    }
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
    const Token& a = cur_.Advance();
    if (a.kind != Token::Kind::kVariable) {
      return Status::InvalidArgument("shortestPath arg must be a variable");
    }
    e.from_var = a.text;
    GB_RETURN_IF_ERROR(cur_.ExpectPunct(","));
    const Token& b = cur_.Advance();
    if (b.kind != Token::Kind::kVariable) {
      return Status::InvalidArgument("shortestPath arg must be a variable");
    }
    e.to_var = b.text;
    GB_RETURN_IF_ERROR(cur_.ExpectPunct(","));
    const Token& p = cur_.Advance();
    if (p.kind != Token::Kind::kIdentifier) {
      return Status::InvalidArgument("shortestPath predicate must be an IRI");
    }
    e.pred_iri = p.text;
    GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("AS"));
    const Token& as = cur_.Advance();
    if (as.kind != Token::Kind::kVariable) {
      return Status::InvalidArgument("AS target must be a variable");
    }
    e.as_name = as.text;
    return e;
  }

  Result<Filter> ParseFilter() {
    Filter f;
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
    const Token& a = cur_.Advance();
    if (a.kind != Token::Kind::kVariable) {
      return Status::InvalidArgument("FILTER expects variables");
    }
    f.var_a = a.text;
    if (cur_.TryPunct("!=")) {
      f.not_equal = true;
    } else if (cur_.TryPunct("=")) {
      f.not_equal = false;
    } else {
      return Status::InvalidArgument("FILTER supports = and != only");
    }
    const Token& b = cur_.Advance();
    if (b.kind != Token::Kind::kVariable) {
      return Status::InvalidArgument("FILTER expects variables");
    }
    f.var_b = b.text;
    GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
    return f;
  }

  Result<TermPattern> ParseTerm() {
    const Token& t = cur_.Peek();
    TermPattern out;
    switch (t.kind) {
      case Token::Kind::kVariable:
        out.kind = TermPattern::Kind::kVariable;
        out.text = cur_.Advance().text;
        return out;
      case Token::Kind::kIdentifier:
        out.kind = TermPattern::Kind::kIri;
        out.text = cur_.Advance().text;
        return out;
      case Token::Kind::kInteger:
      case Token::Kind::kFloat:
      case Token::Kind::kString:
        out.kind = TermPattern::Kind::kLiteral;
        out.literal = cur_.Advance().literal;
        return out;
      case Token::Kind::kParam:
        if (t.text.empty()) {
          return Status::InvalidArgument(
              "SPARQL parameters must be named ($name)");
        }
        out.kind = TermPattern::Kind::kParam;
        out.text = cur_.Advance().text;
        return out;
      default:
        return Status::InvalidArgument("unexpected token '" + t.text +
                                       "' in triple pattern");
    }
  }

  TokenCursor cur_;
};

}  // namespace

Result<Query> Parse(std::string_view text) {
  LexerOptions options;
  options.question_mark_is_variable = true;
  options.colon_in_identifiers = true;
  std::vector<Token> tokens;
  GB_RETURN_IF_ERROR(Tokenize(text, options, &tokens));
  Parser parser(&tokens);
  return parser.ParseQuery();
}

}  // namespace sparql
}  // namespace graphbench
