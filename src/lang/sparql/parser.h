#ifndef GRAPHBENCH_LANG_SPARQL_PARSER_H_
#define GRAPHBENCH_LANG_SPARQL_PARSER_H_

#include <string_view>

#include "lang/sparql/ast.h"
#include "util/result.h"

namespace graphbench {
namespace sparql {

/// Parses the SPARQL subset:
///
///   SELECT [DISTINCT] ?v ... | (shortestPath(?a, ?b, pred) AS ?d)
///   WHERE { s p o . s p o . FILTER(?x != ?y) ... }
///   [ORDER BY [DESC(]?v[)] ...] [LIMIT n]
///
/// Prefixed names (snb:knows) are treated as opaque IRIs; literals are
/// integers, floats, or quoted strings.
Result<Query> Parse(std::string_view text);

}  // namespace sparql
}  // namespace graphbench

#endif  // GRAPHBENCH_LANG_SPARQL_PARSER_H_
