#ifndef GRAPHBENCH_LANG_SQL_AST_H_
#define GRAPHBENCH_LANG_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "util/value.h"

namespace graphbench {
namespace sql {

enum class BinOp { kEq, kNe, kLt, kLe, kGt, kGe, kAnd };

/// SQL expression tree. A deliberately small surface: column refs,
/// literals, positional parameters, comparisons/AND, COUNT(*), and the
/// SHORTEST_PATH(...) USING ... extension (our analog of Virtuoso's
/// transitivity support, which the paper credits for its shortest-path
/// performance).
enum class AggFn { kCount, kSum, kMin, kMax, kAvg };

struct Expr {
  enum class Kind {
    kColumn,
    kLiteral,
    kParam,
    kBinary,
    kCountStar,
    kAggregate,  // SUM/MIN/MAX/AVG/COUNT(expr) over the group
    kShortestPath,
  };

  Kind kind = Kind::kLiteral;

  // kColumn
  std::string table_alias;  // empty when unqualified
  std::string column;

  // kLiteral
  Value literal;

  // kParam: positional index assigned left-to-right
  int param_index = -1;

  // kBinary
  BinOp op = BinOp::kEq;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;

  // kAggregate: fn over `lhs` (the aggregated expression)
  AggFn agg_fn = AggFn::kCount;

  // kShortestPath: SHORTEST_PATH(from, to) USING table(src_col, dst_col).
  // `from`/`to` evaluate to application-level vertex ids.
  std::unique_ptr<Expr> sp_from;
  std::unique_ptr<Expr> sp_to;
  std::string sp_table;
  std::string sp_src_col;
  std::string sp_dst_col;
};

struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string name;  // output column name (AS alias or derived)
};

/// One FROM entry. The first entry has no join condition; each subsequent
/// entry carries its ON equality (JOIN ... ON a.x = b.y).
struct TableRef {
  std::string table;
  std::string alias;
  std::unique_ptr<Expr> on;  // null for the first table
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool desc = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  // may be empty (SELECT SHORTEST_PATH(...))
  std::unique_ptr<Expr> where;
  /// Aggregation keys; with aggregates and no GROUP BY the whole result is
  /// one group. In aggregate mode ORDER BY may reference select aliases.
  std::vector<std::unique_ptr<Expr>> group_by;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1: no limit
  /// LIMIT ? — positional parameter index supplying the limit at bind
  /// time; -1 when the limit is a literal (or absent). Lets prepared
  /// statements share one plan across differing limits.
  int limit_param = -1;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;
  std::vector<std::unique_ptr<Expr>> values;  // literals or params
};

/// UPDATE t SET c = expr [, ...] WHERE cond (single table).
struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> sets;
  std::unique_ptr<Expr> where;  // null = all rows
};

/// DELETE FROM t WHERE cond (single table).
struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;  // null = all rows
};

struct Statement {
  enum class Kind { kSelect, kInsert, kUpdate, kDelete };
  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
};

}  // namespace sql
}  // namespace graphbench

#endif  // GRAPHBENCH_LANG_SQL_AST_H_
