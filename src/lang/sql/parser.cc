#include "lang/sql/parser.h"

#include <utility>

#include "lang/lexer.h"
#include "util/string_util.h"

namespace graphbench {
namespace sql {

namespace {

/// Recursive-descent parser over the shared token stream.
class Parser {
 public:
  explicit Parser(const std::vector<Token>* tokens) : cur_(tokens) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (cur_.Peek().IsKeyword("SELECT")) {
      GB_ASSIGN_OR_RETURN(auto select, ParseSelect());
      stmt.kind = Statement::Kind::kSelect;
      stmt.select = std::move(select);
    } else if (cur_.Peek().IsKeyword("INSERT")) {
      GB_ASSIGN_OR_RETURN(auto insert, ParseInsert());
      stmt.kind = Statement::Kind::kInsert;
      stmt.insert = std::move(insert);
    } else if (cur_.Peek().IsKeyword("UPDATE")) {
      GB_ASSIGN_OR_RETURN(auto update, ParseUpdate());
      stmt.kind = Statement::Kind::kUpdate;
      stmt.update = std::move(update);
    } else if (cur_.Peek().IsKeyword("DELETE")) {
      GB_ASSIGN_OR_RETURN(auto del, ParseDelete());
      stmt.kind = Statement::Kind::kDelete;
      stmt.del = std::move(del);
    } else {
      return Status::InvalidArgument(
          "expected SELECT, INSERT, UPDATE, or DELETE");
    }
    if (cur_.TryPunct(";")) {
      // trailing semicolon ok
    }
    if (!cur_.AtEnd()) {
      return Status::InvalidArgument("trailing tokens after statement: '" +
                                     cur_.Peek().text + "'");
    }
    return stmt;
  }

 private:
  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStmt>();
    stmt->distinct = cur_.TryKeyword("DISTINCT");
    // Select list.
    do {
      SelectItem item;
      GB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (cur_.TryKeyword("AS")) {
        item.name = cur_.Advance().text;
      } else {
        item.name = DeriveName(*item.expr);
      }
      stmt->items.push_back(std::move(item));
    } while (cur_.TryPunct(","));

    if (cur_.TryKeyword("FROM")) {
      bool first = true;
      for (;;) {
        TableRef ref;
        ref.table = cur_.Advance().text;
        ref.alias = ref.table;
        if (cur_.Peek().kind == Token::Kind::kIdentifier &&
            !IsClauseKeyword(cur_.Peek())) {
          ref.alias = cur_.Advance().text;
        }
        if (!first) {
          GB_RETURN_IF_ERROR(cur_.ExpectKeyword("ON"));
          GB_ASSIGN_OR_RETURN(ref.on, ParseExpr());
        }
        stmt->from.push_back(std::move(ref));
        first = false;
        if (cur_.TryKeyword("JOIN")) continue;
        if (cur_.TryPunct(",")) continue;  // comma joins need a WHERE eq
        break;
      }
    }
    if (cur_.TryKeyword("WHERE")) {
      GB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (cur_.TryKeyword("GROUP")) {
      GB_RETURN_IF_ERROR(cur_.ExpectKeyword("BY"));
      do {
        GB_ASSIGN_OR_RETURN(auto key, ParseExpr());
        stmt->group_by.push_back(std::move(key));
      } while (cur_.TryPunct(","));
    }
    if (cur_.TryKeyword("ORDER")) {
      GB_RETURN_IF_ERROR(cur_.ExpectKeyword("BY"));
      do {
        OrderItem item;
        GB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (cur_.TryKeyword("DESC")) {
          item.desc = true;
        } else {
          cur_.TryKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (cur_.TryPunct(","));
    }
    if (cur_.TryKeyword("LIMIT")) {
      const Token& t = cur_.Advance();
      if (t.kind == Token::Kind::kParam) {
        stmt->limit_param = next_param_++;
      } else if (t.kind == Token::Kind::kInteger) {
        stmt->limit = t.literal.as_int();
      } else {
        return Status::InvalidArgument(
            "LIMIT expects an integer or parameter");
      }
    }
    return stmt;
  }

  Result<std::unique_ptr<InsertStmt>> ParseInsert() {
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("INSERT"));
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStmt>();
    stmt->table = cur_.Advance().text;
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
    do {
      stmt->columns.push_back(cur_.Advance().text);
    } while (cur_.TryPunct(","));
    GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("VALUES"));
    GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
    do {
      GB_ASSIGN_OR_RETURN(auto expr, ParseExpr());
      stmt->values.push_back(std::move(expr));
    } while (cur_.TryPunct(","));
    GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
    return stmt;
  }

  Result<std::unique_ptr<UpdateStmt>> ParseUpdate() {
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStmt>();
    stmt->table = cur_.Advance().text;
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("SET"));
    do {
      std::string column = cur_.Advance().text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("="));
      GB_ASSIGN_OR_RETURN(auto value, ParsePrimary());
      stmt->sets.emplace_back(std::move(column), std::move(value));
    } while (cur_.TryPunct(","));
    if (cur_.TryKeyword("WHERE")) {
      GB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  Result<std::unique_ptr<DeleteStmt>> ParseDelete() {
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("DELETE"));
    GB_RETURN_IF_ERROR(cur_.ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStmt>();
    stmt->table = cur_.Advance().text;
    if (cur_.TryKeyword("WHERE")) {
      GB_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return stmt;
  }

  static bool IsClauseKeyword(const Token& t) {
    for (const char* kw : {"FROM", "JOIN", "ON", "WHERE", "ORDER", "LIMIT",
                           "AS", "GROUP", "BY", "USING"}) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  // Expression grammar: expr := cmp (AND cmp)* ; cmp := primary (op primary)?
  Result<std::unique_ptr<Expr>> ParseExpr() {
    GB_ASSIGN_OR_RETURN(auto lhs, ParseComparison());
    while (cur_.TryKeyword("AND")) {
      GB_ASSIGN_OR_RETURN(auto rhs, ParseComparison());
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = BinOp::kAnd;
      node->lhs = std::move(lhs);
      node->rhs = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    GB_ASSIGN_OR_RETURN(auto lhs, ParsePrimary());
    BinOp op;
    const Token& t = cur_.Peek();
    if (t.IsPunct("=")) op = BinOp::kEq;
    else if (t.IsPunct("<>") || t.IsPunct("!=")) op = BinOp::kNe;
    else if (t.IsPunct("<")) op = BinOp::kLt;
    else if (t.IsPunct("<=")) op = BinOp::kLe;
    else if (t.IsPunct(">")) op = BinOp::kGt;
    else if (t.IsPunct(">=")) op = BinOp::kGe;
    else return lhs;
    cur_.Advance();
    GB_ASSIGN_OR_RETURN(auto rhs, ParsePrimary());
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->op = op;
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    return node;
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    auto node = std::make_unique<Expr>();
    const Token& t = cur_.Peek();
    switch (t.kind) {
      case Token::Kind::kInteger:
      case Token::Kind::kFloat:
      case Token::Kind::kString:
        node->kind = Expr::Kind::kLiteral;
        node->literal = cur_.Advance().literal;
        return node;
      case Token::Kind::kParam:
        cur_.Advance();
        node->kind = Expr::Kind::kParam;
        node->param_index = next_param_++;
        return node;
      case Token::Kind::kIdentifier:
        break;
      default:
        if (t.IsPunct("(")) {
          cur_.Advance();
          GB_ASSIGN_OR_RETURN(auto inner, ParseExpr());
          GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
          return inner;
        }
        return Status::InvalidArgument("unexpected token '" + t.text + "'");
    }
    if (t.IsKeyword("COUNT") && cur_.Peek(1).IsPunct("(")) {
      cur_.Advance();
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      if (cur_.TryPunct("*")) {
        GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
        node->kind = Expr::Kind::kCountStar;
        return node;
      }
      GB_ASSIGN_OR_RETURN(node->lhs, ParseExpr());
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      node->kind = Expr::Kind::kAggregate;
      node->agg_fn = AggFn::kCount;
      return node;
    }
    for (auto [kw, fn] : {std::pair{"SUM", AggFn::kSum},
                          std::pair{"MIN", AggFn::kMin},
                          std::pair{"MAX", AggFn::kMax},
                          std::pair{"AVG", AggFn::kAvg}}) {
      // Aggregate only when called like a function; "min" stays usable as
      // a column name otherwise.
      if (!t.IsKeyword(kw) || !cur_.Peek(1).IsPunct("(")) continue;
      cur_.Advance();
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      GB_ASSIGN_OR_RETURN(node->lhs, ParseExpr());
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      node->kind = Expr::Kind::kAggregate;
      node->agg_fn = fn;
      return node;
    }
    if (t.IsKeyword("SHORTEST_PATH")) {
      cur_.Advance();
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      GB_ASSIGN_OR_RETURN(node->sp_from, ParseExpr());
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(","));
      GB_ASSIGN_OR_RETURN(node->sp_to, ParseExpr());
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      GB_RETURN_IF_ERROR(cur_.ExpectKeyword("USING"));
      node->sp_table = cur_.Advance().text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct("("));
      node->sp_src_col = cur_.Advance().text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(","));
      node->sp_dst_col = cur_.Advance().text;
      GB_RETURN_IF_ERROR(cur_.ExpectPunct(")"));
      node->kind = Expr::Kind::kShortestPath;
      return node;
    }
    // Column reference: ident or alias.ident. Reserved words cannot name
    // columns (catches malformed queries like "SELECT FROM t").
    if (IsClauseKeyword(t) || t.IsKeyword("SELECT") || t.IsKeyword("AND") ||
        t.IsKeyword("INSERT") || t.IsKeyword("VALUES") ||
        t.IsKeyword("DISTINCT")) {
      return Status::InvalidArgument("unexpected keyword '" + t.text + "'");
    }
    node->kind = Expr::Kind::kColumn;
    std::string first = cur_.Advance().text;
    if (cur_.TryPunct(".")) {
      node->table_alias = std::move(first);
      node->column = cur_.Advance().text;
    } else {
      node->column = std::move(first);
    }
    return node;
  }

  static std::string DeriveName(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kColumn:
        return e.column;
      case Expr::Kind::kCountStar:
        return "count";
      case Expr::Kind::kAggregate:
        switch (e.agg_fn) {
          case AggFn::kCount: return "count";
          case AggFn::kSum: return "sum";
          case AggFn::kMin: return "min";
          case AggFn::kMax: return "max";
          case AggFn::kAvg: return "avg";
        }
        return "agg";
      case Expr::Kind::kShortestPath:
        return "shortest_path";
      default:
        return "expr";
    }
  }

  TokenCursor cur_;
  int next_param_ = 0;
};

}  // namespace

Result<Statement> Parse(std::string_view text) {
  std::vector<Token> tokens;
  GB_RETURN_IF_ERROR(Tokenize(text, LexerOptions{}, &tokens));
  Parser parser(&tokens);
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace graphbench
