#ifndef GRAPHBENCH_LANG_SQL_PARSER_H_
#define GRAPHBENCH_LANG_SQL_PARSER_H_

#include <string_view>

#include "lang/sql/ast.h"
#include "util/result.h"

namespace graphbench {
namespace sql {

/// Parses one SQL statement (SELECT or INSERT) of the supported subset:
///
///   SELECT [DISTINCT] expr [AS name], ...
///   FROM t1 [a1] [JOIN t2 [a2] ON a1.x = a2.y ...]
///   [WHERE cond AND cond ...]
///   [ORDER BY expr [ASC|DESC], ...]
///   [LIMIT n]
///
///   INSERT INTO t (c1, ...) VALUES (v1, ...)
///
/// Placeholders `?` bind positionally at execution. SHORTEST_PATH(a, b)
/// USING edge_table(src_col, dst_col) is the transitivity extension.
Result<Statement> Parse(std::string_view text);

}  // namespace sql
}  // namespace graphbench

#endif  // GRAPHBENCH_LANG_SQL_PARSER_H_
