#include "mq/broker.h"

#include <atomic>
#include <functional>

namespace graphbench {
namespace mq {

uint64_t PartitionLog::Append(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  message.offset = log_.size();
  log_.push_back(std::move(message));
  return log_.back().offset;
}

size_t PartitionLog::Read(uint64_t offset, size_t max,
                          std::vector<Message>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t copied = 0;
  for (uint64_t i = offset; i < log_.size() && copied < max; ++i, ++copied) {
    out->push_back(log_[size_t(i)]);
  }
  return copied;
}

uint64_t PartitionLog::end_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

Status Broker::CreateTopic(std::string_view name, uint32_t partitions) {
  if (partitions == 0) {
    return Status::InvalidArgument("topic needs >= 1 partition");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = topics_.try_emplace(std::string(name));
  if (!inserted) return Status::AlreadyExists("topic");
  it->second = std::make_unique<Topic>();
  for (uint32_t p = 0; p < partitions; ++p) {
    it->second->partitions.push_back(std::make_unique<PartitionLog>());
  }
  return Status::OK();
}

Broker::Topic* Broker::FindTopic(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(std::string(name));
  return it == topics_.end() ? nullptr : it->second.get();
}

Result<uint64_t> Broker::Produce(std::string_view topic, Message message) {
  Topic* t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("topic");
  uint32_t partition;
  if (message.key.empty()) {
    partition =
        uint32_t(t->round_robin.fetch_add(1) % t->partitions.size());
  } else {
    partition =
        uint32_t(std::hash<std::string>()(message.key) %
                 t->partitions.size());
  }
  message.partition = partition;
  return t->partitions[partition]->Append(std::move(message));
}

Result<size_t> Broker::Fetch(std::string_view topic, uint32_t partition,
                             uint64_t offset, size_t max,
                             std::vector<Message>* out) const {
  const Topic* t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("topic");
  if (partition >= t->partitions.size()) {
    return Status::InvalidArgument("partition out of range");
  }
  return t->partitions[partition]->Read(offset, max, out);
}

Result<uint32_t> Broker::PartitionCount(std::string_view topic) const {
  const Topic* t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("topic");
  return uint32_t(t->partitions.size());
}

Result<uint64_t> Broker::EndOffset(std::string_view topic,
                                   uint32_t partition) const {
  const Topic* t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("topic");
  if (partition >= t->partitions.size()) {
    return Status::InvalidArgument("partition out of range");
  }
  return t->partitions[partition]->end_offset();
}

Result<uint64_t> Producer::Send(std::string_view key,
                                std::string_view payload,
                                int64_t timestamp_micros) {
  Message m;
  m.key = std::string(key);
  m.payload = std::string(payload);
  m.timestamp_micros = timestamp_micros;
  return broker_->Produce(topic_, std::move(m));
}

Consumer::Consumer(Broker* broker, std::string topic)
    : broker_(broker), topic_(std::move(topic)) {
  auto partitions = broker_->PartitionCount(topic_);
  offsets_.assign(partitions.ok() ? *partitions : 0, 0);
}

Result<std::vector<Message>> Consumer::Poll(size_t max) {
  std::vector<Message> out;
  if (offsets_.empty()) return Status::NotFound("topic");
  // Round-robin across partitions for fairness.
  for (size_t scanned = 0; scanned < offsets_.size() && out.size() < max;
       ++scanned) {
    uint32_t p = next_partition_;
    next_partition_ = uint32_t((next_partition_ + 1) % offsets_.size());
    GB_ASSIGN_OR_RETURN(size_t n,
                        broker_->Fetch(topic_, p, offsets_[p],
                                       max - out.size(), &out));
    offsets_[p] += n;
    consumed_ += n;
  }
  return out;
}

bool Consumer::CaughtUp() const {
  for (uint32_t p = 0; p < offsets_.size(); ++p) {
    auto end = broker_->EndOffset(topic_, p);
    if (!end.ok() || offsets_[p] < *end) return false;
  }
  return true;
}

}  // namespace mq
}  // namespace graphbench
