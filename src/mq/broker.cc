#include "mq/broker.h"

#include <atomic>
#include <functional>

#include "obs/metrics.h"

namespace graphbench {
namespace mq {

namespace {

obs::Counter* ProducedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("mq.produced");
  return counter;
}

obs::Counter* FetchedCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("mq.fetched_messages");
  return counter;
}

}  // namespace

uint64_t PartitionLog::Append(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  message.offset = log_.size();
  log_.push_back(std::move(message));
  return log_.back().offset;
}

Result<std::vector<Message>> PartitionLog::Read(uint64_t offset,
                                                size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Message> out;
  for (uint64_t i = offset; i < log_.size() && out.size() < max; ++i) {
    out.push_back(log_[size_t(i)]);
  }
  return out;
}

uint64_t PartitionLog::end_offset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.size();
}

Status Broker::CreateTopic(std::string_view name, uint32_t partitions) {
  if (partitions == 0) {
    return Status::InvalidArgument("topic needs >= 1 partition");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = topics_.try_emplace(std::string(name));
  if (!inserted) return Status::AlreadyExists("topic");
  it->second = std::make_unique<Topic>();
  for (uint32_t p = 0; p < partitions; ++p) {
    it->second->partitions.push_back(std::make_unique<PartitionLog>());
  }
  return Status::OK();
}

Broker::Topic* Broker::FindTopic(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(std::string(name));
  return it == topics_.end() ? nullptr : it->second.get();
}

Result<uint64_t> Broker::Produce(std::string_view topic, Message message) {
  Topic* t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("topic");
  uint32_t partition;
  if (message.key.empty()) {
    partition =
        uint32_t(t->round_robin.fetch_add(1) % t->partitions.size());
  } else {
    partition =
        uint32_t(std::hash<std::string>()(message.key) %
                 t->partitions.size());
  }
  message.partition = partition;
  if constexpr (obs::kEnabled) ProducedCounter()->Increment();
  return t->partitions[partition]->Append(std::move(message));
}

Result<std::vector<Message>> Broker::Fetch(std::string_view topic,
                                           uint32_t partition,
                                           uint64_t offset,
                                           size_t max) const {
  const Topic* t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("topic");
  if (partition >= t->partitions.size()) {
    return Status::InvalidArgument("partition out of range");
  }
  Result<std::vector<Message>> batch =
      t->partitions[partition]->Read(offset, max);
  if constexpr (obs::kEnabled) {
    if (batch.ok()) FetchedCounter()->Increment(batch->size());
  }
  return batch;
}

Result<uint32_t> Broker::PartitionCount(std::string_view topic) const {
  const Topic* t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("topic");
  return uint32_t(t->partitions.size());
}

Result<uint64_t> Broker::EndOffset(std::string_view topic,
                                   uint32_t partition) const {
  const Topic* t = FindTopic(topic);
  if (t == nullptr) return Status::NotFound("topic");
  if (partition >= t->partitions.size()) {
    return Status::InvalidArgument("partition out of range");
  }
  return t->partitions[partition]->end_offset();
}

Result<uint64_t> Producer::Send(std::string_view key,
                                std::string_view payload,
                                int64_t timestamp_micros) {
  Message m;
  m.key = std::string(key);
  m.payload = std::string(payload);
  m.timestamp_micros = timestamp_micros;
  return broker_->Produce(topic_, std::move(m));
}

Consumer::Consumer(Broker* broker, std::string topic)
    : broker_(broker), topic_(std::move(topic)) {
  auto partitions = broker_->PartitionCount(topic_);
  offsets_.assign(partitions.ok() ? *partitions : 0, 0);
}

Result<std::vector<Message>> Consumer::Poll(size_t max) {
  std::vector<Message> out;
  if (offsets_.empty()) return Status::NotFound("topic");
  // Round-robin across partitions for fairness.
  for (size_t scanned = 0; scanned < offsets_.size() && out.size() < max;
       ++scanned) {
    uint32_t p = next_partition_;
    next_partition_ = uint32_t((next_partition_ + 1) % offsets_.size());
    GB_ASSIGN_OR_RETURN(
        std::vector<Message> batch,
        broker_->Fetch(topic_, p, offsets_[p], max - out.size()));
    offsets_[p] += batch.size();
    consumed_ += batch.size();
    for (Message& m : batch) out.push_back(std::move(m));
  }
  return out;
}

uint64_t Consumer::Lag() const {
  uint64_t lag = 0;
  for (uint32_t p = 0; p < offsets_.size(); ++p) {
    auto end = broker_->EndOffset(topic_, p);
    if (end.ok() && *end > offsets_[p]) lag += *end - offsets_[p];
  }
  return lag;
}

}  // namespace mq
}  // namespace graphbench
