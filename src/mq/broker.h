#ifndef GRAPHBENCH_MQ_BROKER_H_
#define GRAPHBENCH_MQ_BROKER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace graphbench {
namespace mq {

/// One record in a partition log.
struct Message {
  std::string key;
  std::string payload;
  int64_t timestamp_micros = 0;
  // Assigned by the broker on append:
  uint32_t partition = 0;
  uint64_t offset = 0;
};

/// Append-only partition log with offset-based reads (the Kafka storage
/// model: consumers track their own offsets; messages are never removed).
class PartitionLog {
 public:
  /// Appends and returns the assigned offset.
  uint64_t Append(Message message);

  /// Reads up to `max` messages starting at `offset`; empty when the log
  /// end is reached.
  Result<std::vector<Message>> Read(uint64_t offset, size_t max) const;

  uint64_t end_offset() const;

 private:
  mutable std::mutex mu_;
  std::vector<Message> log_;
};

/// In-process message broker: the Kafka analog of the paper's benchmarking
/// architecture (Figure 1). The LDBC driver produces update operations
/// into a topic; the single writer consumes them and applies them to the
/// SUT, decoupling update generation from execution.
///
/// Produce/Fetch volumes are counted in the default obs registry as
/// "mq.produced" / "mq.fetched_messages".
class Broker {
 public:
  Status CreateTopic(std::string_view name, uint32_t partitions);

  /// Appends to the partition chosen by hash(key) (empty key: round-robin).
  Result<uint64_t> Produce(std::string_view topic, Message message);

  /// Direct partition read (consumers use this via Consumer::Poll).
  /// Returns the messages copied; empty when the partition end is reached.
  Result<std::vector<Message>> Fetch(std::string_view topic,
                                     uint32_t partition, uint64_t offset,
                                     size_t max) const;

  Result<uint32_t> PartitionCount(std::string_view topic) const;
  Result<uint64_t> EndOffset(std::string_view topic,
                             uint32_t partition) const;

 private:
  struct Topic {
    std::vector<std::unique_ptr<PartitionLog>> partitions;
    std::atomic<uint64_t> round_robin{0};
  };
  Topic* FindTopic(std::string_view name) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Topic>> topics_;
};

/// Publishes messages to one topic.
class Producer {
 public:
  Producer(Broker* broker, std::string topic)
      : broker_(broker), topic_(std::move(topic)) {}

  Result<uint64_t> Send(std::string_view key, std::string_view payload,
                        int64_t timestamp_micros = 0);

 private:
  Broker* broker_;
  std::string topic_;
};

/// Offset-tracking consumer over all partitions of one topic (a
/// single-member consumer group).
class Consumer {
 public:
  Consumer(Broker* broker, std::string topic);

  /// Reads up to `max` available messages across partitions, advancing
  /// this consumer's offsets. Returns an empty vector when caught up.
  Result<std::vector<Message>> Poll(size_t max);

  /// Total messages consumed so far.
  uint64_t consumed() const { return consumed_; }

  /// Messages published but not yet consumed, summed across partitions
  /// (end offset minus consumed offset — the Kafka consumer-group lag).
  uint64_t Lag() const;

  /// True when every partition has been fully read (Lag() == 0).
  bool CaughtUp() const { return Lag() == 0; }

 private:
  Broker* broker_;
  std::string topic_;
  std::vector<uint64_t> offsets_;
  uint64_t consumed_ = 0;
  uint32_t next_partition_ = 0;
};

}  // namespace mq
}  // namespace graphbench

#endif  // GRAPHBENCH_MQ_BROKER_H_
