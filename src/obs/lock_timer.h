#ifndef GRAPHBENCH_OBS_LOCK_TIMER_H_
#define GRAPHBENCH_OBS_LOCK_TIMER_H_

#include <shared_mutex>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace graphbench {
namespace obs {

/// A shared_mutex that accumulates acquisition wait time into an obs
/// counter (`<engine>.lock_wait_us`). The engines whose hot paths moved to
/// epoch-snapshot reads no longer take any reader lock; the ones still on
/// coarse reader-writer locking wear this wrapper instead, so the ablation
/// (bench_ablation_mvcc) and ops dashboards can see exactly how much time
/// each remaining lock burns. Satisfies SharedLockable — drop-in for
/// std::shared_mutex under std::unique_lock / std::shared_lock /
/// std::shared_mutex-style call sites.
///
/// Uncontended acquisitions cost two clock reads (~tens of ns); with obs
/// compiled out the wrapper is a plain shared_mutex.
class TimedSharedMutex {
 public:
  /// `counter_name` must outlive the registry lookup (string literals).
  explicit TimedSharedMutex(const char* counter_name) {
    if constexpr (kEnabled) {
      wait_us_ = MetricsRegistry::Default().GetCounter(counter_name);
    }
  }

  TimedSharedMutex(const TimedSharedMutex&) = delete;
  TimedSharedMutex& operator=(const TimedSharedMutex&) = delete;

  void lock() {
    if constexpr (kEnabled) {
      if (mu_.try_lock()) return;
      const uint64_t t0 = NowMicros();
      mu_.lock();
      wait_us_->Increment(NowMicros() - t0);
    } else {
      mu_.lock();
    }
  }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }

  void lock_shared() {
    if constexpr (kEnabled) {
      if (mu_.try_lock_shared()) return;
      const uint64_t t0 = NowMicros();
      mu_.lock_shared();
      wait_us_->Increment(NowMicros() - t0);
    } else {
      mu_.lock_shared();
    }
  }
  bool try_lock_shared() { return mu_.try_lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
  Counter* wait_us_ = nullptr;
};

}  // namespace obs
}  // namespace graphbench

#endif  // GRAPHBENCH_OBS_LOCK_TIMER_H_
