#include "obs/metrics.h"

#include <string>

namespace graphbench {
namespace obs {

namespace {

template <typename T>
T* GetOrCreate(std::mutex* mu,
               std::map<std::string, std::unique_ptr<T>, std::less<>>* map,
               std::string_view name) {
  std::lock_guard<std::mutex> lock(*mu);
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

}  // namespace

MetricsSnapshot::HistogramStats SummarizeHistogram(const Histogram& h) {
  MetricsSnapshot::HistogramStats stats;
  stats.count = h.count();
  stats.mean = h.mean();
  stats.min = h.min();
  stats.max = h.max();
  stats.p50 = h.Percentile(50);
  stats.p95 = h.Percentile(95);
  stats.p99 = h.Percentile(99);
  return stats;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(&mu_, &counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  return GetOrCreate(&mu_, &gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(&mu_, &histograms_, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, SummarizeHistogram(*h));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Clear();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

SutProbe::SutProbe(std::string_view sut_id) {
  std::string base = "sut." + std::string(sut_id);
  MetricsRegistry& reg = MetricsRegistry::Default();
  reads_ = reg.GetCounter(base + ".reads");
  writes_ = reg.GetCounter(base + ".writes");
  read_micros_ = reg.GetHistogram(base + ".read_micros");
  write_micros_ = reg.GetHistogram(base + ".write_micros");
}

}  // namespace obs
}  // namespace graphbench
