#ifndef GRAPHBENCH_OBS_METRICS_H_
#define GRAPHBENCH_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"
#include "util/stopwatch.h"

namespace graphbench {
namespace obs {

/// Compile-time kill switch: configure with -DGRAPHBENCH_OBS=OFF to define
/// GRAPHBENCH_OBS_DISABLED, turning every instrumentation point into dead
/// code the optimizer removes. Used to measure the instrumentation tax
/// itself (the acceptance bar is < 3% on the Figure 3 read path).
#ifdef GRAPHBENCH_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonically increasing event count. Increment is one relaxed atomic
/// add; safe from any thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if constexpr (kEnabled) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time value (queue depth, consumer lag). Set/Add are relaxed
/// atomics; safe from any thread.
class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (kEnabled) value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if constexpr (kEnabled) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time view of one registry, for report serialization.
struct MetricsSnapshot {
  struct HistogramStats {
    uint64_t count = 0;
    double mean = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;
};

MetricsSnapshot::HistogramStats SummarizeHistogram(const Histogram& h);

/// Thread-safe registry of named counters, gauges, and latency histograms.
/// Get* creates on first use and returns a pointer that stays valid for
/// the registry's lifetime, so hot paths look a metric up once (e.g. in a
/// constructor or function-local static) and then touch only the atomic.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Sorted by name; histograms are summarized to percentile stats.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every counter/gauge and clears every histogram (names and
  /// pointers survive). Benches call this between per-system runs.
  void Reset();

  /// The process-wide registry every built-in instrumentation point
  /// records into.
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records the scope's wall-clock duration (micros) into a histogram, and
/// optionally counts the event, on destruction. A null histogram (or the
/// compile-time kill switch) makes it a no-op, including the clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist, Counter* count = nullptr)
      : hist_(hist), count_(count) {
    if constexpr (kEnabled) {
      if (hist_ != nullptr) start_ = NowMicros();
    }
  }
  ~ScopedTimer() {
    if constexpr (kEnabled) {
      if (hist_ == nullptr) return;
      hist_->Add(NowMicros() - start_);
      if (count_ != nullptr) count_->Increment();
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  Counter* count_;
  uint64_t start_ = 0;
};

/// Per-SUT read/write probe: one counter + latency histogram pair per
/// direction, named "sut.<id>.{reads,writes}[. _micros]" in the default
/// registry. SUT implementations hold one and wrap their query/update
/// bodies in Read()/Write() scopes.
class SutProbe {
 public:
  explicit SutProbe(std::string_view sut_id);

  Histogram* read_micros() const { return read_micros_; }
  Histogram* write_micros() const { return write_micros_; }
  Counter* reads() const { return reads_; }
  Counter* writes() const { return writes_; }

 private:
  Counter* reads_;
  Counter* writes_;
  Histogram* read_micros_;
  Histogram* write_micros_;
};

}  // namespace obs
}  // namespace graphbench

#endif  // GRAPHBENCH_OBS_METRICS_H_
