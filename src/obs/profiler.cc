#include "obs/profiler.h"

#include "util/string_util.h"
#include "util/table_printer.h"

namespace graphbench {
namespace obs {

void QueryProfile::Record(std::string_view op, uint64_t invocations,
                          uint64_t rows, uint64_t self_micros,
                          uint64_t cumulative_micros) {
  for (OpStats& s : ops_) {
    if (s.name == op) {
      s.invocations += invocations;
      s.rows += rows;
      s.self_micros += self_micros;
      s.cumulative_micros += cumulative_micros;
      return;
    }
  }
  ops_.push_back(OpStats{std::string(op), invocations, rows, self_micros,
                         cumulative_micros});
}

void QueryProfile::Merge(const QueryProfile& other) {
  for (const OpStats& s : other.ops_) {
    Record(s.name, s.invocations, s.rows, s.self_micros,
           s.cumulative_micros);
  }
}

const OpStats* QueryProfile::Find(std::string_view op) const {
  for (const OpStats& s : ops_) {
    if (s.name == op) return &s;
  }
  return nullptr;
}

uint64_t QueryProfile::TotalSelfMicros() const {
  uint64_t total = 0;
  for (const OpStats& s : ops_) total += s.self_micros;
  return total;
}

std::string QueryProfile::ToString(const std::string& title) const {
  TablePrinter table(title.empty() ? "Query profile" : title);
  table.SetHeader({"Operator", "Invocations", "Rows", "Self ms", "Cum ms"});
  for (const OpStats& s : ops_) {
    table.AddRow({s.name, std::to_string(s.invocations),
                  std::to_string(s.rows),
                  StringPrintf("%.3f", double(s.self_micros) / 1000.0),
                  StringPrintf("%.3f",
                               double(s.cumulative_micros) / 1000.0)});
  }
  return table.ToString();
}

#ifndef GRAPHBENCH_OBS_DISABLED

namespace {

// Per-thread profiling context: the active profile plus the innermost live
// OpTimer's child-time accumulator (how nested timers report their elapsed
// time up so the parent can compute self = elapsed - children).
struct ProfilerTls {
  QueryProfile* active = nullptr;
  uint64_t* child_micros = nullptr;
};

ProfilerTls& Tls() {
  thread_local ProfilerTls tls;
  return tls;
}

}  // namespace

QueryProfile* ActiveProfile() { return Tls().active; }

ProfileScope::ProfileScope(QueryProfile* profile) {
  ProfilerTls& tls = Tls();
  prev_profile_ = tls.active;
  prev_child_micros_ = tls.child_micros;
  tls.active = profile;
  // Timers opened inside this scope must not leak elapsed time into a
  // timer of the enclosing scope.
  tls.child_micros = nullptr;
}

ProfileScope::~ProfileScope() {
  ProfilerTls& tls = Tls();
  tls.active = prev_profile_;
  tls.child_micros = prev_child_micros_;
}

OpTimer::OpTimer(std::string_view name) {
  ProfilerTls& tls = Tls();
  if (tls.active == nullptr) return;
  profile_ = tls.active;
  name_ = name;
  parent_child_micros_ = tls.child_micros;
  tls.child_micros = &child_micros_;
  start_ = NowMicros();
}

void OpTimer::Stop() {
  if (profile_ == nullptr) return;
  uint64_t elapsed = NowMicros() - start_;
  ProfilerTls& tls = Tls();
  tls.child_micros = parent_child_micros_;
  if (parent_child_micros_ != nullptr) *parent_child_micros_ += elapsed;
  // Children ran within this scope, so their sum cannot exceed elapsed
  // beyond clock granularity; saturate for safety.
  uint64_t self =
      elapsed >= child_micros_ ? elapsed - child_micros_ : 0;
  profile_->Record(name_, 1, rows_, self, elapsed);
  profile_ = nullptr;
}

#else  // GRAPHBENCH_OBS_DISABLED

QueryProfile* ActiveProfile() { return nullptr; }
ProfileScope::ProfileScope(QueryProfile*) {}
ProfileScope::~ProfileScope() = default;
OpTimer::OpTimer(std::string_view) {}
void OpTimer::Stop() {}

#endif  // GRAPHBENCH_OBS_DISABLED

}  // namespace obs
}  // namespace graphbench
