#ifndef GRAPHBENCH_OBS_PROFILER_H_
#define GRAPHBENCH_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace graphbench {
namespace obs {

/// One per-operator row of a query profile: how often the operator ran,
/// how many elements/rows it produced, and where the time went. Self time
/// excludes nested instrumented operators; cumulative includes them (the
/// TinkerPop profile() / Neo4j PROFILE split).
struct OpStats {
  std::string name;
  uint64_t invocations = 0;
  uint64_t rows = 0;
  uint64_t self_micros = 0;
  uint64_t cumulative_micros = 0;
};

/// Per-operator breakdown of one or more queries, accumulated by OpTimer
/// against the thread-local active profile (see ProfileScope), so engines
/// need no profiling context plumbed through their call graphs. Rows merge
/// by operator name in first-execution order. NOT thread-safe: one thread
/// records at a time (the Gremlin Server hands the profile to its worker
/// while the submitting client blocks on the reply).
class QueryProfile {
 public:
  /// Merges one operator execution into the profile.
  void Record(std::string_view op, uint64_t invocations, uint64_t rows,
              uint64_t self_micros, uint64_t cumulative_micros);

  /// Adds every row of `other` into this profile (merging by name).
  void Merge(const QueryProfile& other);

  void Clear() { ops_.clear(); }
  bool empty() const { return ops_.empty(); }
  const std::vector<OpStats>& ops() const { return ops_; }

  /// The row for `op`, or nullptr if it never ran.
  const OpStats* Find(std::string_view op) const;

  /// Sum of self times — the profile's account of where the wall clock
  /// went. Coverage = TotalSelfMicros() / measured latency.
  uint64_t TotalSelfMicros() const;

  /// Human-readable operator table ("operator | invocations | rows |
  /// self ms | cum ms"), for --profile output.
  std::string ToString(const std::string& title = "") const;

 private:
  std::vector<OpStats> ops_;
};

/// The calling thread's active profile (nullptr when none is installed or
/// the obs kill switch is off). Engines never call this directly — OpTimer
/// does — but pipeline hand-off points (the Gremlin Server worker pool) use
/// it to carry the submitting client's profile across threads.
QueryProfile* ActiveProfile();

/// Installs `profile` as the calling thread's active profile for the
/// scope's lifetime and restores the previous one (and any in-flight
/// OpTimer nesting state) on exit. A null profile disables capture within
/// the scope. Scopes nest.
class ProfileScope {
 public:
  explicit ProfileScope(QueryProfile* profile);
  ~ProfileScope();

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
#ifndef GRAPHBENCH_OBS_DISABLED
  QueryProfile* prev_profile_ = nullptr;
  uint64_t* prev_child_micros_ = nullptr;
#endif
};

/// RAII operator probe: records one OpStats row (merged by name) into the
/// thread-local active profile when the scope ends. Nested OpTimers
/// subtract their elapsed time from the enclosing timer's self time, so
/// self times partition the instrumented wall clock. No-op (including the
/// clock reads) when no profile is active or obs is compiled out.
///
///   obs::OpTimer op("Expand");
///   ... produce rows ...
///   op.AddRows(rows.size());
///
/// `name` must outlive the timer (string literals in practice).
class OpTimer {
 public:
  explicit OpTimer(std::string_view name);
  ~OpTimer() { Stop(); }

  /// Adds produced elements/rows to the row this timer will record.
  void AddRows(uint64_t n) {
#ifndef GRAPHBENCH_OBS_DISABLED
    rows_ += n;
#else
    (void)n;
#endif
  }

  /// Records now instead of at scope exit (for straight-line phase code:
  /// parse, plan, ... in one function body). Idempotent; the destructor
  /// becomes a no-op afterwards. Must respect stack order: do not Stop()
  /// while a nested OpTimer is still alive.
  void Stop();

  OpTimer(const OpTimer&) = delete;
  OpTimer& operator=(const OpTimer&) = delete;

 private:
#ifndef GRAPHBENCH_OBS_DISABLED
  QueryProfile* profile_ = nullptr;
  std::string_view name_;
  uint64_t start_ = 0;
  uint64_t rows_ = 0;
  uint64_t child_micros_ = 0;
  uint64_t* parent_child_micros_ = nullptr;
#endif
};

}  // namespace obs
}  // namespace graphbench

#endif  // GRAPHBENCH_OBS_PROFILER_H_
