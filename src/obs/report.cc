#include "obs/report.h"

#include <cstdio>

namespace graphbench {
namespace obs {

BenchReport::BenchReport(std::string bench_name, std::string scale)
    : bench_name_(std::move(bench_name)), scale_(std::move(scale)) {}

void BenchReport::SetParam(std::string_view key, Json value) {
  params_.Set(std::string(key), std::move(value));
}

void BenchReport::AddSystem(std::string_view system, Json metrics) {
  if (!metrics.Has("system")) {
    // Rebuild with "system" leading so reports read naturally.
    Json entry = Json::Object();
    entry.Set("system", Json::Str(std::string(system)));
    for (const auto& [key, value] : metrics.object_pairs()) {
      entry.Set(key, value);
    }
    metrics = std::move(entry);
  }
  systems_.Append(std::move(metrics));
}

void BenchReport::AttachRegistry(const MetricsRegistry& registry) {
  MetricsSnapshot snap = registry.Snapshot();
  Json counters = Json::Object();
  for (const auto& [name, value] : snap.counters) {
    counters.Set(name, Json::Int(int64_t(value)));
  }
  Json gauges = Json::Object();
  for (const auto& [name, value] : snap.gauges) {
    gauges.Set(name, Json::Int(value));
  }
  Json histograms = Json::Object();
  for (const auto& [name, stats] : snap.histograms) {
    histograms.Set(name, HistogramJson(stats));
  }
  metrics_ = Json::Object();
  metrics_.Set("counters", std::move(counters));
  metrics_.Set("gauges", std::move(gauges));
  metrics_.Set("histograms", std::move(histograms));
}

void BenchReport::AttachTrace(const TraceRing& ring) {
  Json stages = TraceStagesJson(ring);
  if (systems_.size() == 0) {
    metrics_.Set("trace_stages", std::move(stages));
    return;
  }
  // Attach to the most recent system entry.
  systems_.at(systems_.size() - 1).Set("trace_stages", std::move(stages));
}

Json BenchReport::ToJson() const {
  Json root = Json::Object();
  root.Set("schema_version", Json::Int(kSchemaVersion));
  root.Set("bench", Json::Str(bench_name_));
  root.Set("scale", Json::Str(scale_));
  root.Set("params", params_);
  root.Set("systems", systems_);
  root.Set("metrics", metrics_);
  return root;
}

Result<std::string> BenchReport::WriteFile(std::string_view dir) const {
  std::string path = std::string(dir);
  if (!path.empty() && path.back() != '/') path += '/';
  path += "BENCH_" + bench_name_ + ".json";
  std::string body = ToJson().Serialize();
  body += '\n';
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int close_err = std::fclose(f);
  if (written != body.size() || close_err != 0) {
    return Status::Internal("short write to " + path);
  }
  return path;
}

Json HistogramJson(const Histogram& h) {
  return HistogramJson(SummarizeHistogram(h));
}

Json HistogramJson(const MetricsSnapshot::HistogramStats& stats) {
  Json out = Json::Object();
  out.Set("count", Json::Int(int64_t(stats.count)));
  out.Set("mean_us", Json::Number(stats.mean));
  out.Set("min_us", Json::Int(int64_t(stats.min)));
  out.Set("max_us", Json::Int(int64_t(stats.max)));
  out.Set("p50_us", Json::Number(stats.p50));
  out.Set("p95_us", Json::Number(stats.p95));
  out.Set("p99_us", Json::Number(stats.p99));
  return out;
}

Json DriverMetricsJson(const DriverMetrics& metrics) {
  Json out = Json::Object();
  out.Set("reads_completed", Json::Int(int64_t(metrics.reads_completed)));
  out.Set("read_errors", Json::Int(int64_t(metrics.read_errors)));
  out.Set("writes_completed",
          Json::Int(int64_t(metrics.writes_completed)));
  out.Set("write_errors", Json::Int(int64_t(metrics.write_errors)));
  out.Set("dependency_violations",
          Json::Int(int64_t(metrics.dependency_violations)));
  out.Set("late_writes", Json::Int(int64_t(metrics.late_writes)));
  out.Set("elapsed_seconds", Json::Number(metrics.elapsed_seconds));
  out.Set("write_seconds", Json::Number(metrics.write_seconds));
  out.Set("reads_per_second", Json::Number(metrics.reads_per_second));
  out.Set("writes_per_second", Json::Number(metrics.writes_per_second));
  out.Set("read_latency", HistogramJson(metrics.read_latency_micros));
  out.Set("write_latency", HistogramJson(metrics.write_latency_micros));
  out.Set("write_schedule_latency",
          HistogramJson(metrics.write_schedule_latency_micros));
  out.Set("timeline_bucket_millis",
          Json::Int(metrics.timeline_bucket_millis));
  Json reads = Json::Array();
  for (uint64_t n : metrics.read_timeline) reads.Append(Json::Int(int64_t(n)));
  Json writes = Json::Array();
  for (uint64_t n : metrics.write_timeline) {
    writes.Append(Json::Int(int64_t(n)));
  }
  out.Set("read_timeline", std::move(reads));
  out.Set("write_timeline", std::move(writes));
  out.Set("slow_queries", SlowLogJson(metrics.slow_queries));
  return out;
}

Json ProfileJson(const QueryProfile& profile) {
  Json out = Json::Object();
  out.Set("total_self_micros",
          Json::Int(int64_t(profile.TotalSelfMicros())));
  Json ops = Json::Array();
  for (const OpStats& s : profile.ops()) {
    Json row = Json::Object();
    row.Set("op", Json::Str(s.name));
    row.Set("invocations", Json::Int(int64_t(s.invocations)));
    row.Set("rows", Json::Int(int64_t(s.rows)));
    row.Set("self_micros", Json::Int(int64_t(s.self_micros)));
    row.Set("cumulative_micros", Json::Int(int64_t(s.cumulative_micros)));
    ops.Append(std::move(row));
  }
  out.Set("ops", std::move(ops));
  return out;
}

Json SlowLogJson(const std::vector<SlowQueryEntry>& entries) {
  Json out = Json::Array();
  for (const SlowQueryEntry& e : entries) {
    Json entry = Json::Object();
    entry.Set("kind", Json::Str(e.kind));
    if (!e.statement.empty()) {
      entry.Set("statement", Json::Str(e.statement));
    }
    entry.Set("params", Json::Str(e.param_digest));
    entry.Set("latency_micros", Json::Int(int64_t(e.latency_micros)));
    entry.Set("profile", ProfileJson(e.profile));
    out.Append(std::move(entry));
  }
  return out;
}

Json TraceStagesJson(const TraceRing& ring) {
  Json out = Json::Object();
  for (size_t s = 0; s < kNumStages; ++s) {
    TraceRing::StageTotals totals = ring.totals(Stage(s));
    if (totals.count == 0) continue;
    Json stage = Json::Object();
    stage.Set("count", Json::Int(int64_t(totals.count)));
    stage.Set("total_micros", Json::Int(int64_t(totals.total_micros)));
    stage.Set("mean_us",
              Json::Number(double(totals.total_micros) /
                           double(totals.count)));
    out.Set(StageName(Stage(s)), std::move(stage));
  }
  return out;
}

}  // namespace obs
}  // namespace graphbench
