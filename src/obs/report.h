#ifndef GRAPHBENCH_OBS_REPORT_H_
#define GRAPHBENCH_OBS_REPORT_H_

#include <string>
#include <string_view>

#include "driver/driver.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/result.h"

namespace graphbench {
namespace obs {

/// Machine-readable benchmark report, serialized as BENCH_<name>.json so
/// runs can be diffed across commits (the per-operation latency reporting
/// the LDBC SNB Interactive spec mandates). Schema (all keys always
/// present, see DESIGN.md "Observability & bench reports"):
///
///   {
///     "schema_version": 2,
///     "bench":   "<name>",
///     "scale":   "<dataset description>",
///     "params":  { flag: value, ... },
///     "systems": [ { "system": "...", <metric>: ... }, ... ],
///     "metrics": { "counters": {...}, "gauges": {...},
///                  "histograms": { name: {count,mean,min,max,
///                                         p50,p95,p99}, ... } }
///   }
///
/// Schema v2 additions (all inside "systems" entries): "profiles"
/// (per-query-type per-operator breakdowns, see ProfileJson),
/// "slow_queries" (the slow-query log, see SlowLogJson),
/// "write_schedule_latency" and "timeline_bucket_millis" (schedule-aware
/// driver metrics, see DriverMetricsJson).
class BenchReport {
 public:
  explicit BenchReport(std::string bench_name, std::string scale = "");

  const std::string& bench_name() const { return bench_name_; }
  void set_scale(std::string scale) { scale_ = std::move(scale); }

  /// Run parameter recorded under "params" (reader count, reps, ...).
  void SetParam(std::string_view key, Json value);

  /// Appends one measured configuration under "systems". The object
  /// should carry a "system" key; AddSystem inserts it if missing.
  void AddSystem(std::string_view system, Json metrics);

  /// Snapshot of a registry, stored under "metrics".
  void AttachRegistry(const MetricsRegistry& registry);

  /// Per-stage totals of a trace ring, stored under
  /// "systems[...].trace_stages" of the most recent AddSystem entry, or
  /// under top-level "trace_stages" when no system was added yet.
  void AttachTrace(const TraceRing& ring);

  Json ToJson() const;

  /// Serializes to `<dir>/BENCH_<bench_name>.json` ("." by default).
  /// Returns the path written.
  Result<std::string> WriteFile(std::string_view dir = ".") const;

  static constexpr int kSchemaVersion = 2;

 private:
  std::string bench_name_;
  std::string scale_;
  Json params_ = Json::Object();
  Json systems_ = Json::Array();
  Json metrics_ = Json::Object();
};

/// Histogram -> {"count","mean_us","min_us","max_us","p50_us","p95_us",
/// "p99_us"}.
Json HistogramJson(const Histogram& h);
Json HistogramJson(const MetricsSnapshot::HistogramStats& stats);

/// DriverMetrics -> one "systems" entry body: op counts, rates, latency
/// summaries (service and, in paced mode, schedule-aware write latency),
/// the Figure 3 read/write timelines with their bucket width, and any
/// captured slow queries.
Json DriverMetricsJson(const DriverMetrics& metrics);

/// QueryProfile -> {"total_self_micros", "ops": [{"op", "invocations",
/// "rows", "self_micros", "cumulative_micros"}, ...]} in first-execution
/// order.
Json ProfileJson(const QueryProfile& profile);

/// Slow-query entries -> [{"kind", "params", "latency_micros",
/// "profile"}, ...], worst first.
Json SlowLogJson(const std::vector<SlowQueryEntry>& entries);

/// TraceRing per-stage breakdown ->
/// {stage: {"count","total_micros","mean_us"}, ...} for every stage with
/// at least one span.
Json TraceStagesJson(const TraceRing& ring);

}  // namespace obs
}  // namespace graphbench

#endif  // GRAPHBENCH_OBS_REPORT_H_
