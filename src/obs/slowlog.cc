#include "obs/slowlog.h"

#include <algorithm>

namespace graphbench {
namespace obs {

void SlowQueryLog::Record(std::string_view kind, std::string_view statement,
                          std::string_view param_digest,
                          uint64_t latency_micros, QueryProfile profile) {
  if (capacity_ == 0 || latency_micros < threshold_micros_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= capacity_ &&
      latency_micros <= entries_.back().latency_micros) {
    return;  // not worse than the current worst-N cut
  }
  SlowQueryEntry entry;
  entry.kind = std::string(kind);
  entry.statement = std::string(statement);
  entry.param_digest = std::string(param_digest);
  entry.latency_micros = latency_micros;
  entry.profile = std::move(profile);
  // Insert keeping latency-descending order; ties keep arrival order.
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), latency_micros,
      [](uint64_t lat, const SlowQueryEntry& e) {
        return lat > e.latency_micros;
      });
  entries_.insert(pos, std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_back();  // evict least-bad
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::vector<SlowQueryEntry> SlowQueryLog::TakeEntries() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SlowQueryEntry> out = std::move(entries_);
  entries_.clear();
  return out;
}

size_t SlowQueryLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace obs
}  // namespace graphbench
