#ifndef GRAPHBENCH_OBS_SLOWLOG_H_
#define GRAPHBENCH_OBS_SLOWLOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/profiler.h"

namespace graphbench {
namespace obs {

/// One captured slow query: what ran (the driver's query kind plus the
/// SUT's statement text, when it has one), with which parameters (as a
/// short digest, e.g. "person_id=42"), how long it took, and its
/// per-operator profile.
struct SlowQueryEntry {
  std::string kind;
  /// The workload statement behind the kind (SQL/Cypher/SPARQL text);
  /// empty for SUTs without a textual statement form (Gremlin).
  std::string statement;
  std::string param_digest;
  uint64_t latency_micros = 0;
  QueryProfile profile;
};

/// Thread-safe bounded log of the N worst queries at or above a latency
/// threshold. When full, a new entry evicts the least-bad retained one (or
/// is dropped if it is the least bad itself), so the log converges on the
/// run's worst offenders regardless of arrival order. The interactive
/// driver wires this up under --slowlog_threshold_us and serializes it
/// into BENCH_*.json.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 16,
                        uint64_t threshold_micros = 0)
      : capacity_(capacity), threshold_micros_(threshold_micros) {}

  size_t capacity() const { return capacity_; }
  uint64_t threshold_micros() const { return threshold_micros_; }

  /// Records the query if latency_micros >= the threshold (and it beats
  /// the current worst-N cut). The profile is consumed.
  void Record(std::string_view kind, std::string_view statement,
              std::string_view param_digest, uint64_t latency_micros,
              QueryProfile profile);

  /// Retained entries, worst (highest latency) first.
  std::vector<SlowQueryEntry> Entries() const;

  /// Moves the entries out (worst first), leaving the log empty.
  std::vector<SlowQueryEntry> TakeEntries();

  size_t size() const;
  void Clear();

 private:
  const size_t capacity_;
  const uint64_t threshold_micros_;
  mutable std::mutex mu_;
  /// Sorted by latency descending (worst first).
  std::vector<SlowQueryEntry> entries_;
};

}  // namespace obs
}  // namespace graphbench

#endif  // GRAPHBENCH_OBS_SLOWLOG_H_
