#include "obs/trace.h"

#include <algorithm>

namespace graphbench {
namespace obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kPlan: return "plan";
    case Stage::kSerialize: return "serialize";
    case Stage::kQueue: return "queue";
    case Stage::kExecute: return "execute";
    case Stage::kDeserialize: return "deserialize";
  }
  return "unknown";
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {
  ring_.reserve(capacity_);
}

void TraceRing::Record(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[next_slot_] = span;
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
  ++recorded_;
  StageTotals& t = totals_[size_t(span.stage)];
  ++t.count;
  t.total_micros += span.duration_micros;
}

std::vector<Span> TraceRing::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Once wrapped, next_slot_ points at the oldest retained span.
  size_t start = ring_.size() < capacity_ ? 0 : next_slot_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recorded_;
}

TraceRing::StageTotals TraceRing::totals(Stage stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_[size_t(stage)];
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  recorded_ = 0;
  totals_.fill(StageTotals{});
}

}  // namespace obs
}  // namespace graphbench
