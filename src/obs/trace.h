#ifndef GRAPHBENCH_OBS_TRACE_H_
#define GRAPHBENCH_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.h"
#include "util/stopwatch.h"

namespace graphbench {
namespace obs {

/// Pipeline stages a query passes through. One request produces one span
/// per stage it touches; spans sharing a trace id belong to one request.
/// The Gremlin Server path is serialize -> queue -> execute -> deserialize
/// (the Figure 2 platform-agnostic-access tax, now attributable per
/// stage); language engines use parse -> plan -> execute -> serialize.
enum class Stage : uint8_t {
  kParse = 0,
  kPlan,
  kSerialize,
  kQueue,
  kExecute,
  kDeserialize,
};
inline constexpr size_t kNumStages = 6;

const char* StageName(Stage stage);

/// One completed span.
struct Span {
  uint64_t trace_id = 0;
  Stage stage = Stage::kExecute;
  uint64_t start_micros = 0;     // NowMicros() at stage entry
  uint64_t duration_micros = 0;
};

/// Fixed-capacity ring of the most recent completed spans plus running
/// per-stage totals over everything ever recorded. Record() is two index
/// updates under a mutex — cheap enough for per-request use — and never
/// allocates after construction.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 4096);

  /// Overwrites the oldest span once the ring is full.
  void Record(Span span);

  /// Fresh id for correlating one request's spans.
  uint64_t NextTraceId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Retained spans, oldest first.
  std::vector<Span> Spans() const;

  size_t capacity() const { return capacity_; }
  /// Total spans ever recorded (>= Spans().size(); excess was overwritten).
  uint64_t total_recorded() const;

  struct StageTotals {
    uint64_t count = 0;
    uint64_t total_micros = 0;
  };
  /// Running totals since construction (not limited to retained spans).
  StageTotals totals(Stage stage) const;

  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Span> ring_;
  size_t next_slot_ = 0;
  uint64_t recorded_ = 0;
  std::array<StageTotals, kNumStages> totals_{};
  std::atomic<uint64_t> next_id_{0};
};

/// RAII span: times its scope and records into the ring on destruction.
/// Null ring (or the compile-time kill switch) makes it a no-op.
class ScopedSpan {
 public:
  ScopedSpan(TraceRing* ring, Stage stage, uint64_t trace_id = 0)
      : ring_(ring), stage_(stage), trace_id_(trace_id) {
    if constexpr (kEnabled) {
      if (ring_ != nullptr) start_ = NowMicros();
    }
  }
  ~ScopedSpan() {
    if constexpr (kEnabled) {
      if (ring_ == nullptr) return;
      ring_->Record(
          Span{trace_id_, stage_, start_, NowMicros() - start_});
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceRing* ring_;
  Stage stage_;
  uint64_t trace_id_;
  uint64_t start_ = 0;
};

}  // namespace obs
}  // namespace graphbench

#endif  // GRAPHBENCH_OBS_TRACE_H_
