#ifndef GRAPHBENCH_PROVIDERS_NATIVE_PROVIDER_H_
#define GRAPHBENCH_PROVIDERS_NATIVE_PROVIDER_H_

#include <string>

#include "engines/native/native_graph.h"
#include "tinkerpop/structure.h"

namespace graphbench {

/// TinkerPop provider over the native graph store: the Neo4j-Gremlin
/// configuration. Same storage as Neo4j-Cypher, but accessed one small
/// structure-API call at a time — the comparison that isolates the
/// TinkerPop overhead in §4.2.
class NativeProvider : public GremlinGraph {
 public:
  explicit NativeProvider(NativeGraph* graph) : graph_(graph) {}

  Result<GVertex> AddVertex(std::string_view label,
                            const PropertyMap& props) override {
    GB_ASSIGN_OR_RETURN(VertexId v, graph_->AddVertex(label, props));
    return GVertex{v};
  }

  Status AddEdge(std::string_view label, GVertex from, GVertex to,
                 const PropertyMap& props) override {
    return graph_->AddEdge(label, from.id, to.id, props).status();
  }

  Status RemoveEdge(std::string_view label, GVertex from,
                    GVertex to) override {
    return graph_->RemoveEdge(label, from.id, to.id);
  }

  Result<std::vector<GVertex>> VerticesByProperty(
      std::string_view label, std::string_view key,
      const Value& value) override {
    auto found = graph_->FindVertex(label, key, value);
    if (found.status().IsNotFound()) return std::vector<GVertex>{};
    GB_RETURN_IF_ERROR(found.status());
    return std::vector<GVertex>{GVertex{*found}};
  }

  Result<std::vector<GVertex>> AllVertices(std::string_view label) override {
    std::vector<GVertex> out;
    for (VertexId v : graph_->VerticesByLabel(label)) {
      out.push_back(GVertex{v});
    }
    return out;
  }

  Result<std::vector<GVertex>> Adjacent(GVertex v,
                                        std::string_view edge_label,
                                        Direction dir) override {
    GB_ASSIGN_OR_RETURN(std::vector<Neighbor> neighbors,
                        graph_->Neighbors(v.id, edge_label, dir));
    std::vector<GVertex> out;
    out.reserve(neighbors.size());
    for (const Neighbor& n : neighbors) out.push_back(GVertex{n.vertex});
    return out;
  }

  Result<Value> Property(GVertex v, std::string_view key) override {
    return graph_->VertexProperty(v.id, key);
  }

  Result<std::string> Label(GVertex v) override {
    std::string label;
    GB_RETURN_IF_ERROR(graph_->GetVertex(v.id, &label, nullptr));
    return label;
  }

  uint64_t VertexCount() const override { return graph_->VertexCount(); }
  uint64_t EdgeCount() const override { return graph_->EdgeCount(); }
  uint64_t ApproximateSizeBytes() const override {
    return graph_->ApproximateSizeBytes();
  }
  std::string name() const override { return "neo4j-gremlin"; }

 private:
  NativeGraph* graph_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_PROVIDERS_NATIVE_PROVIDER_H_
