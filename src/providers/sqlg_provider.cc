#include "providers/sqlg_provider.h"

#include "obs/lock_timer.h"

#include <mutex>

#include "util/string_util.h"

namespace graphbench {

// Sqlg translates every structure-API call into SQL statements against the
// relational engine — one small parsed/planned statement per step, which
// is precisely the behaviour §4.3 contrasts with a single hand-written SQL
// query over the same storage.

Status SqlgProvider::RegisterVertexLabel(std::string_view label,
                                         std::string_view table) {
  if (db_->GetTable(table) == nullptr) return Status::NotFound("table");
  if (db_->GetIndex(table, "id") == nullptr) {
    return Status::InvalidArgument("vertex table needs an id index");
  }
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  vertex_labels_.push_back(
      VertexMeta{std::string(label), std::string(table)});
  return Status::OK();
}

Status SqlgProvider::RegisterEdgeLabel(std::string_view label,
                                       std::string_view table,
                                       std::string_view src_col,
                                       std::string_view dst_col,
                                       std::string_view src_label,
                                       std::string_view dst_label,
                                       bool embedded) {
  if (db_->GetTable(table) == nullptr) return Status::NotFound("table");
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  edge_labels_[std::string(label)] =
      EdgeMeta{std::string(table),     std::string(src_col),
               std::string(dst_col),   std::string(src_label),
               std::string(dst_label), embedded};
  return Status::OK();
}

int SqlgProvider::LabelOrdinal(std::string_view label) const {
  for (size_t i = 0; i < vertex_labels_.size(); ++i) {
    if (vertex_labels_[i].label == label) return int(i);
  }
  return -1;
}

Result<GVertex> SqlgProvider::AddVertex(std::string_view label,
                                        const PropertyMap& props) {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  int ord = LabelOrdinal(label);
  if (ord < 0) return Status::InvalidArgument("unregistered vertex label");
  const VertexMeta& meta = vertex_labels_[size_t(ord)];
  Table* table = db_->GetTable(meta.table);

  // One generated INSERT statement per vertex (Sqlg's write path).
  std::string columns, placeholders;
  std::vector<Value> params;
  for (const auto& [key, value] : props.entries()) {
    if (table->schema().ColumnIndex(key) < 0) continue;  // dropped
    if (!params.empty()) {
      columns += ", ";
      placeholders += ", ";
    }
    columns += key;
    placeholders += "?";
    params.push_back(value);
  }
  if (params.empty()) {
    return Status::InvalidArgument("vertex has no schema properties");
  }
  GB_RETURN_IF_ERROR(db_->Execute("INSERT INTO " + meta.table + " (" +
                                      columns + ") VALUES (" +
                                      placeholders + ")",
                                  params)
                         .status());
  // Resolve the handle through the id index (Sqlg's RETURNING pk).
  HashIndex* id_index = db_->GetIndex(meta.table, "id");
  GB_ASSIGN_OR_RETURN(RowId id, id_index->LookupUnique(props.Get("id")));
  return Encode(size_t(ord), id);
}

Status SqlgProvider::AddEdge(std::string_view label, GVertex from,
                             GVertex to, const PropertyMap& props) {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = edge_labels_.find(std::string(label));
  if (it == edge_labels_.end()) {
    return Status::InvalidArgument("unregistered edge label");
  }
  const EdgeMeta& meta = it->second;
  // Per-step requests: fetch both endpoint application ids, then insert.
  GB_ASSIGN_OR_RETURN(Value from_id, Property(from, "id"));
  GB_ASSIGN_OR_RETURN(Value to_id, Property(to, "id"));
  // Embedded edges exist as foreign-key columns written with the vertex
  // row; the endpoint reads above validate them, nothing else to write.
  if (meta.embedded) return Status::OK();

  Table* table = db_->GetTable(meta.table);
  std::string columns = meta.src_col + ", " + meta.dst_col;
  std::string placeholders = "?, ?";
  std::vector<Value> params{from_id, to_id};
  for (const auto& [key, value] : props.entries()) {
    int ci = table->schema().ColumnIndex(key);
    if (ci < 0) continue;
    columns += ", " + key;
    placeholders += ", ?";
    params.push_back(value);
  }
  return db_
      ->Execute("INSERT INTO " + meta.table + " (" + columns +
                    ") VALUES (" + placeholders + ")",
                params)
      .status();
}

Status SqlgProvider::RemoveEdge(std::string_view label, GVertex from,
                                GVertex to) {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = edge_labels_.find(std::string(label));
  if (it == edge_labels_.end()) {
    return Status::InvalidArgument("unregistered edge label");
  }
  const EdgeMeta& meta = it->second;
  if (meta.embedded) {
    return Status::InvalidArgument("embedded edge cannot be dropped");
  }
  GB_ASSIGN_OR_RETURN(Value from_id, Property(from, "id"));
  GB_ASSIGN_OR_RETURN(Value to_id, Property(to, "id"));
  // One small DELETE per orientation until a row goes away.
  const std::string sql = "DELETE FROM " + meta.table + " WHERE " +
                          meta.src_col + " = ? AND " + meta.dst_col + " = ?";
  GB_ASSIGN_OR_RETURN(QueryResult forward,
                      db_->Execute(sql, {from_id, to_id}));
  if (forward.affected > 0) return Status::OK();
  GB_ASSIGN_OR_RETURN(QueryResult backward,
                      db_->Execute(sql, {to_id, from_id}));
  if (backward.affected > 0) return Status::OK();
  return Status::NotFound("edge");
}

Result<std::vector<GVertex>> SqlgProvider::VerticesByProperty(
    std::string_view label, std::string_view key, const Value& value) {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  int ord = LabelOrdinal(label);
  if (ord < 0) return Status::InvalidArgument("unregistered vertex label");
  const VertexMeta& meta = vertex_labels_[size_t(ord)];
  // g.V().has(...) becomes a small SELECT; the handle is then resolved
  // through the id index.
  GB_ASSIGN_OR_RETURN(
      QueryResult r,
      db_->Execute("SELECT id FROM " + meta.table + " WHERE " +
                       std::string(key) + " = ?",
                   {value}));
  HashIndex* id_index = db_->GetIndex(meta.table, "id");
  std::vector<GVertex> out;
  out.reserve(r.rows.size());
  for (const Row& row : r.rows) {
    auto rowid = id_index->LookupUnique(row[0]);
    if (rowid.ok()) out.push_back(Encode(size_t(ord), *rowid));
  }
  return out;
}

Result<std::vector<GVertex>> SqlgProvider::AllVertices(
    std::string_view label) {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  std::vector<GVertex> out;
  for (size_t ord = 0; ord < vertex_labels_.size(); ++ord) {
    if (!label.empty() && vertex_labels_[ord].label != label) continue;
    Table* table = db_->GetTable(vertex_labels_[ord].table);
    for (auto scan = table->NewScanIterator(); scan->Valid(); scan->Next()) {
      out.push_back(Encode(ord, scan->row_id()));
    }
  }
  return out;
}

Result<std::vector<GVertex>> SqlgProvider::Adjacent(
    GVertex v, std::string_view edge_label, Direction dir) {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = edge_labels_.find(std::string(edge_label));
  if (it == edge_labels_.end()) {
    return Status::InvalidArgument("unregistered edge label");
  }
  const EdgeMeta& meta = it->second;

  // Request 1: this vertex's application id.
  GB_ASSIGN_OR_RETURN(Value my_id, Property(v, "id"));

  std::vector<GVertex> out;
  auto expand = [&](const std::string& probe_col,
                    const std::string& fetch_col,
                    const std::string& target_label) -> Status {
    // One generated SELECT per expansion (Sqlg's per-step SQL), then one
    // index resolution per neighbour.
    GB_ASSIGN_OR_RETURN(
        QueryResult r,
        db_->Execute("SELECT " + fetch_col + " FROM " + meta.table +
                         " WHERE " + probe_col + " = ?",
                     {my_id}));
    int target_ord = LabelOrdinal(target_label);
    if (target_ord < 0) return Status::Corruption("edge target label");
    HashIndex* target_index =
        db_->GetIndex(vertex_labels_[size_t(target_ord)].table, "id");
    for (const Row& row : r.rows) {
      auto target_row = target_index->LookupUnique(row[0]);
      if (!target_row.ok()) continue;  // dangling edge
      out.push_back(Encode(size_t(target_ord), *target_row));
    }
    return Status::OK();
  };

  if (dir == Direction::kOut || dir == Direction::kBoth) {
    GB_RETURN_IF_ERROR(expand(meta.src_col, meta.dst_col, meta.dst_label));
  }
  if (dir == Direction::kIn || dir == Direction::kBoth) {
    GB_RETURN_IF_ERROR(expand(meta.dst_col, meta.src_col, meta.src_label));
  }
  return out;
}

Result<Value> SqlgProvider::Property(GVertex v, std::string_view key) {
  size_t ord = OrdinalOf(v);
  if (ord >= vertex_labels_.size()) return Status::NotFound("vertex");
  Table* table = db_->GetTable(vertex_labels_[ord].table);
  int ci = table->schema().ColumnIndex(key);
  if (ci < 0) return Value();
  Value out;
  GB_RETURN_IF_ERROR(table->GetColumn(RowOf(v), size_t(ci), &out));
  return out;
}

Result<std::string> SqlgProvider::Label(GVertex v) {
  size_t ord = OrdinalOf(v);
  if (ord >= vertex_labels_.size()) return Status::NotFound("vertex");
  return vertex_labels_[ord].label;
}

uint64_t SqlgProvider::VertexCount() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& meta : vertex_labels_) {
    total += db_->GetTable(meta.table)->row_count();
  }
  return total;
}

uint64_t SqlgProvider::EdgeCount() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [label, meta] : edge_labels_) {
    if (meta.embedded) continue;  // rows counted as vertices already
    total += db_->GetTable(meta.table)->row_count();
  }
  return total;
}

}  // namespace graphbench
