#ifndef GRAPHBENCH_PROVIDERS_SQLG_PROVIDER_H_
#define GRAPHBENCH_PROVIDERS_SQLG_PROVIDER_H_

#include <shared_mutex>

#include "obs/lock_timer.h"
#include <string>
#include <unordered_map>
#include <vector>

#include "engines/relational/database.h"
#include "tinkerpop/structure.h"

namespace graphbench {

/// TinkerPop provider over the relational engine: the Sqlg configuration
/// (graph API on Postgres). Vertex labels map to vertex tables, edge
/// labels to edge tables holding (src, dst) application ids. Every
/// structure-API call becomes one or more small table/index operations —
/// the per-step request translation that, per §4.3/§4.4, forfeits the
/// optimization opportunities a single SQL statement would give the same
/// storage engine.
class SqlgProvider : public GremlinGraph {
 public:
  explicit SqlgProvider(Database* db) : db_(db) {}

  /// Maps a vertex label to its table; the table must have an "id" column
  /// with a unique index (Sqlg's ID scheme).
  Status RegisterVertexLabel(std::string_view label, std::string_view table);

  /// Maps an edge label to its table and endpoint metadata. `embedded`
  /// edges are stored as foreign-key columns of a vertex table (e.g. a
  /// post's creatorId); AddEdge on them is a no-op because the columns
  /// were written with the vertex row.
  Status RegisterEdgeLabel(std::string_view label, std::string_view table,
                           std::string_view src_col, std::string_view dst_col,
                           std::string_view src_label,
                           std::string_view dst_label,
                           bool embedded = false);

  Result<GVertex> AddVertex(std::string_view label,
                            const PropertyMap& props) override;
  Status AddEdge(std::string_view label, GVertex from, GVertex to,
                 const PropertyMap& props) override;
  Status RemoveEdge(std::string_view label, GVertex from,
                    GVertex to) override;
  Result<std::vector<GVertex>> VerticesByProperty(
      std::string_view label, std::string_view key,
      const Value& value) override;
  Result<std::vector<GVertex>> AllVertices(std::string_view label) override;
  Result<std::vector<GVertex>> Adjacent(GVertex v,
                                        std::string_view edge_label,
                                        Direction dir) override;
  Result<Value> Property(GVertex v, std::string_view key) override;
  Result<std::string> Label(GVertex v) override;
  uint64_t VertexCount() const override;
  uint64_t EdgeCount() const override;
  uint64_t ApproximateSizeBytes() const override {
    return db_->TotalSizeBytes();
  }
  std::string name() const override { return "sqlg"; }

 private:
  struct VertexMeta {
    std::string label;
    std::string table;
  };
  struct EdgeMeta {
    std::string table;
    std::string src_col;
    std::string dst_col;
    std::string src_label;
    std::string dst_label;
    bool embedded = false;
  };

  // GVertex ids encode (vertex-label ordinal << 48) | row id.
  static constexpr int kTableShift = 48;
  GVertex Encode(size_t label_ordinal, RowId row) const {
    return GVertex{(uint64_t(label_ordinal) << kTableShift) | row};
  }
  size_t OrdinalOf(GVertex v) const { return size_t(v.id >> kTableShift); }
  RowId RowOf(GVertex v) const {
    return v.id & ((uint64_t{1} << kTableShift) - 1);
  }

  int LabelOrdinal(std::string_view label) const;

  mutable obs::TimedSharedMutex mu_{"sqlg.lock_wait_us"};
  Database* db_;
  std::vector<VertexMeta> vertex_labels_;
  std::unordered_map<std::string, EdgeMeta> edge_labels_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_PROVIDERS_SQLG_PROVIDER_H_
