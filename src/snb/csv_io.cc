#include "snb/csv_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "snb/update_codec.h"
#include "util/string_util.h"

namespace graphbench {
namespace snb {

namespace {

// Field values never contain '|' (generated content is words/numbers),
// but escape defensively: '|' -> "\p", '\' -> "\\", '\n' -> "\n".
std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '|': out += "\\p"; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out.push_back(s[i]);
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'p': out.push_back('|'); break;
      case 'n': out.push_back('\n'); break;
      default: out.push_back(s[i]);
    }
  }
  return out;
}

class CsvWriter {
 public:
  CsvWriter(std::string_view dir, std::string_view file) {
    path_ = std::string(dir) + "/" + std::string(file);
    out_.open(path_);
  }
  bool ok() const { return out_.good(); }
  const std::string& path() const { return path_; }

  void Row(const std::vector<std::string>& fields) {
    for (size_t i = 0; i < fields.size(); ++i) {
      if (i) out_ << '|';
      out_ << fields[i];
    }
    out_ << '\n';
  }

 private:
  std::string path_;
  std::ofstream out_;
};

Result<std::vector<std::vector<std::string>>> ReadRows(
    std::string_view dir, std::string_view file, size_t arity) {
  std::string path = std::string(dir) + "/" + std::string(file);
  std::ifstream in(path);
  if (!in.good()) return Status::NotFound("missing csv file " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool header = true;
  while (std::getline(in, line)) {
    if (header) {  // skip header row
      header = false;
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> fields = Split(line, '|');
    if (fields.size() != arity) {
      return Status::Corruption("bad arity in " + path + ": " + line);
    }
    rows.push_back(std::move(fields));
  }
  return rows;
}

int64_t ToI64(const std::string& s) { return std::stoll(s); }

std::string I64(int64_t v) { return std::to_string(v); }

// Update stream rows carry the binary codec payload, hex-encoded, so one
// CSV round-trips every operation kind exactly.
std::string ToHex(const std::string& bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHex[c >> 4]);
    out.push_back(kHex[c & 0xf]);
  }
  return out;
}

Result<std::string> FromHex(const std::string& hex) {
  if (hex.size() % 2) return Status::Corruption("odd hex length");
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]), lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    out.push_back(char(hi << 4 | lo));
  }
  return out;
}

}  // namespace

Status WriteCsv(const Dataset& data, std::string_view dir) {
  std::error_code ec;
  std::filesystem::create_directories(std::string(dir), ec);
  if (ec) return Status::Internal("cannot create " + std::string(dir));

  {
    CsvWriter w(dir, "person.csv");
    w.Row({"id", "firstName", "lastName", "gender", "birthday",
           "creationDate", "browserUsed", "locationIP", "cityId"});
    for (const auto& p : data.persons) {
      w.Row({I64(p.id), Escape(p.first_name), Escape(p.last_name),
             Escape(p.gender), I64(p.birthday), I64(p.creation_date),
             Escape(p.browser), Escape(p.location_ip), I64(p.city_id)});
    }
    if (!w.ok()) return Status::Internal("write failed: " + w.path());
  }
  {
    CsvWriter w(dir, "knows.csv");
    w.Row({"person1Id", "person2Id", "creationDate"});
    for (const auto& k : data.knows) {
      w.Row({I64(k.person1), I64(k.person2), I64(k.creation_date)});
    }
  }
  {
    CsvWriter w(dir, "forum.csv");
    w.Row({"id", "title", "creationDate", "moderatorId"});
    for (const auto& f : data.forums) {
      w.Row({I64(f.id), Escape(f.title), I64(f.creation_date),
             I64(f.moderator)});
    }
  }
  {
    CsvWriter w(dir, "forum_member.csv");
    w.Row({"forumId", "personId", "joinDate"});
    for (const auto& m : data.members) {
      w.Row({I64(m.forum), I64(m.person), I64(m.join_date)});
    }
  }
  {
    CsvWriter w(dir, "post.csv");
    w.Row({"id", "content", "creationDate", "creatorId", "forumId",
           "browserUsed"});
    for (const auto& p : data.posts) {
      w.Row({I64(p.id), Escape(p.content), I64(p.creation_date),
             I64(p.creator), I64(p.forum), Escape(p.browser)});
    }
  }
  {
    CsvWriter w(dir, "comment.csv");
    w.Row({"id", "content", "creationDate", "creatorId", "replyOfPost",
           "replyOfComment"});
    for (const auto& c : data.comments) {
      w.Row({I64(c.id), Escape(c.content), I64(c.creation_date),
             I64(c.creator), I64(c.reply_of_post),
             I64(c.reply_of_comment)});
    }
  }
  {
    CsvWriter w(dir, "likes.csv");
    w.Row({"personId", "postId", "commentId", "creationDate"});
    for (const auto& l : data.likes) {
      w.Row({I64(l.person), I64(l.post), I64(l.comment),
             I64(l.creation_date)});
    }
  }
  {
    CsvWriter w(dir, "tag.csv");
    w.Row({"id", "name"});
    for (const auto& t : data.tags) w.Row({I64(t.id), Escape(t.name)});
  }
  {
    CsvWriter w(dir, "post_tag.csv");
    w.Row({"postId", "tagId"});
    for (const auto& pt : data.post_tags) {
      w.Row({I64(pt.post), I64(pt.tag)});
    }
  }
  {
    CsvWriter w(dir, "place.csv");
    w.Row({"id", "name"});
    for (const auto& p : data.places) w.Row({I64(p.id), Escape(p.name)});
  }
  {
    CsvWriter w(dir, "organisation.csv");
    w.Row({"id", "name", "type"});
    for (const auto& o : data.organisations) {
      w.Row({I64(o.id), Escape(o.name), Escape(o.type)});
    }
  }
  {
    CsvWriter w(dir, "study_at.csv");
    w.Row({"personId", "organisationId", "classYear"});
    for (const auto& s : data.study_at) {
      w.Row({I64(s.person), I64(s.organisation), I64(s.year)});
    }
  }
  {
    CsvWriter w(dir, "work_at.csv");
    w.Row({"personId", "organisationId", "workFrom"});
    for (const auto& s : data.work_at) {
      w.Row({I64(s.person), I64(s.organisation), I64(s.year)});
    }
  }
  {
    CsvWriter w(dir, "update_stream.csv");
    w.Row({"scheduledDate", "payloadHex"});
    for (const auto& op : data.update_stream) {
      w.Row({I64(op.scheduled_date), ToHex(EncodeUpdate(op))});
    }
    if (!w.ok()) return Status::Internal("write failed: " + w.path());
  }
  return Status::OK();
}

Result<Dataset> ReadCsv(std::string_view dir) {
  Dataset data;
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "person.csv", 9));
    for (auto& f : rows) {
      Person p;
      p.id = ToI64(f[0]);
      p.first_name = Unescape(f[1]);
      p.last_name = Unescape(f[2]);
      p.gender = Unescape(f[3]);
      p.birthday = ToI64(f[4]);
      p.creation_date = ToI64(f[5]);
      p.browser = Unescape(f[6]);
      p.location_ip = Unescape(f[7]);
      p.city_id = ToI64(f[8]);
      data.persons.push_back(std::move(p));
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "knows.csv", 3));
    for (auto& f : rows) {
      data.knows.push_back({ToI64(f[0]), ToI64(f[1]), ToI64(f[2])});
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "forum.csv", 4));
    for (auto& f : rows) {
      Forum forum;
      forum.id = ToI64(f[0]);
      forum.title = Unescape(f[1]);
      forum.creation_date = ToI64(f[2]);
      forum.moderator = ToI64(f[3]);
      data.forums.push_back(std::move(forum));
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "forum_member.csv", 3));
    for (auto& f : rows) {
      data.members.push_back({ToI64(f[0]), ToI64(f[1]), ToI64(f[2])});
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "post.csv", 6));
    for (auto& f : rows) {
      Post p;
      p.id = ToI64(f[0]);
      p.content = Unescape(f[1]);
      p.creation_date = ToI64(f[2]);
      p.creator = ToI64(f[3]);
      p.forum = ToI64(f[4]);
      p.browser = Unescape(f[5]);
      data.posts.push_back(std::move(p));
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "comment.csv", 6));
    for (auto& f : rows) {
      Comment c;
      c.id = ToI64(f[0]);
      c.content = Unescape(f[1]);
      c.creation_date = ToI64(f[2]);
      c.creator = ToI64(f[3]);
      c.reply_of_post = ToI64(f[4]);
      c.reply_of_comment = ToI64(f[5]);
      data.comments.push_back(std::move(c));
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "likes.csv", 4));
    for (auto& f : rows) {
      data.likes.push_back(
          {ToI64(f[0]), ToI64(f[1]), ToI64(f[2]), ToI64(f[3])});
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "tag.csv", 2));
    for (auto& f : rows) data.tags.push_back({ToI64(f[0]), Unescape(f[1])});
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "post_tag.csv", 2));
    for (auto& f : rows) data.post_tags.push_back({ToI64(f[0]),
                                                   ToI64(f[1])});
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "place.csv", 2));
    for (auto& f : rows) {
      data.places.push_back({ToI64(f[0]), Unescape(f[1])});
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "organisation.csv", 3));
    for (auto& f : rows) {
      data.organisations.push_back(
          {ToI64(f[0]), Unescape(f[1]), Unescape(f[2])});
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "study_at.csv", 3));
    for (auto& f : rows) {
      data.study_at.push_back({ToI64(f[0]), ToI64(f[1]), ToI64(f[2])});
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "work_at.csv", 3));
    for (auto& f : rows) {
      data.work_at.push_back({ToI64(f[0]), ToI64(f[1]), ToI64(f[2])});
    }
  }
  {
    GB_ASSIGN_OR_RETURN(auto rows, ReadRows(dir, "update_stream.csv", 2));
    for (auto& f : rows) {
      GB_ASSIGN_OR_RETURN(std::string payload, FromHex(f[1]));
      GB_ASSIGN_OR_RETURN(UpdateOp op, DecodeUpdate(payload));
      data.update_stream.push_back(std::move(op));
    }
  }
  return data;
}

}  // namespace snb
}  // namespace graphbench
