#ifndef GRAPHBENCH_SNB_CSV_IO_H_
#define GRAPHBENCH_SNB_CSV_IO_H_

#include <string>
#include <string_view>

#include "snb/schema.h"
#include "util/result.h"

namespace graphbench {
namespace snb {

/// CSV serialization of a generated dataset — the analog of the LDBC data
/// generator's raw output files (Table 1's "raw" column is the size of
/// these). One pipe-separated file per entity type plus
/// update_stream.csv, written under `dir`.
Status WriteCsv(const Dataset& data, std::string_view dir);

/// Reads a dataset previously written by WriteCsv.
Result<Dataset> ReadCsv(std::string_view dir);

}  // namespace snb
}  // namespace graphbench

#endif  // GRAPHBENCH_SNB_CSV_IO_H_
