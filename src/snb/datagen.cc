#include "snb/datagen.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/random.h"

namespace graphbench {
namespace snb {

namespace {

constexpr int64_t kTimelineEnd = 100'000'000;  // simulated ms

const char* const kFirstNames[] = {
    "Ada",  "Bob",   "Carlos", "Dana",  "Emil",  "Fatima", "Grace", "Hiro",
    "Ines", "Jan",   "Karim",  "Lena",  "Mei",   "Nadia",  "Otto",  "Priya",
    "Quin", "Rosa",  "Sven",   "Tara",  "Umar",  "Vera",   "Wei",   "Xena",
    "Yuri", "Zara",  "Anders", "Bianca", "Chen", "Dmitri", "Elena", "Farid"};
const char* const kLastNames[] = {
    "Smith",  "Garcia", "Mueller", "Tanaka", "Kumar",   "Ivanov", "Chen",
    "Silva",  "Okafor", "Larsson", "Novak",  "Haddad",  "Kim",    "Rossi",
    "Dubois", "Nagy",   "Petrov",  "Sato",   "Andersen", "Moreau", "Walsh",
    "Costa",  "Popov",  "Yamada",  "Khan",   "Berg",    "Vargas", "Ali"};
const char* const kCityNames[] = {
    "Arbor",   "Brookfield", "Carden",  "Dunmore", "Eastvale", "Fernley",
    "Grafton", "Halstead",   "Ironton", "Juniper", "Kenwood",  "Linden",
    "Marlow",  "Norwood",    "Oakhill", "Preston", "Quarry",   "Redwood",
    "Selwyn",  "Thornton"};
const char* const kBrowsers[] = {"Firefox", "Chrome", "Safari", "Opera",
                                 "InternetExplorer"};
const char* const kWords[] = {
    "about",  "graph",  "photo", "music",  "travel", "friend", "today",
    "world",  "great",  "happy", "coffee", "winter", "summer", "movie",
    "sports", "recipe", "study", "party",  "update", "question"};

std::string MakeContent(Rng* rng, size_t min_words, size_t max_words) {
  size_t n = min_words + rng->Uniform(max_words - min_words + 1);
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    if (i) out += ' ';
    out += kWords[rng->Uniform(std::size(kWords))];
  }
  return out;
}

std::string MakeIp(Rng* rng) {
  return std::to_string(rng->Uniform(224)) + "." +
         std::to_string(rng->Uniform(256)) + "." +
         std::to_string(rng->Uniform(256)) + "." +
         std::to_string(rng->Uniform(256));
}

}  // namespace

DatagenOptions ScaleA() {
  DatagenOptions o;
  o.num_persons = 2500;
  o.seed = 3;
  return o;
}

DatagenOptions ScaleB() {
  DatagenOptions o;
  o.num_persons = 8000;  // ~3.2x scale-A persons, mirroring SF3 -> SF10
  o.seed = 10;
  return o;
}

Dataset Generate(const DatagenOptions& options) {
  Dataset data;
  Rng rng(options.seed);
  const int64_t cutoff =
      int64_t(double(kTimelineEnd) * (1.0 - options.update_window));

  // ---- Static world: places, tags, organisations -----------------------
  for (uint32_t c = 0; c < options.num_cities; ++c) {
    std::string name = kCityNames[c % std::size(kCityNames)];
    if (c >= std::size(kCityNames)) {
      name += "-" + std::to_string(c / std::size(kCityNames));
    }
    data.places.push_back(Place{int64_t(c + 1), name});
  }
  for (uint32_t t = 0; t < options.num_tags; ++t) {
    data.tags.push_back(
        Tag{int64_t(t + 1),
            std::string(kWords[t % std::size(kWords)]) + "_" +
                std::to_string(t)});
  }
  for (uint32_t o = 0; o < options.num_organisations; ++o) {
    data.organisations.push_back(Organisation{
        int64_t(o + 1), "Org_" + std::to_string(o),
        o % 2 == 0 ? "university" : "company"});
  }

  // ---- Persons ----------------------------------------------------------
  // Creation dates uniform over the whole timeline; the late tail lands in
  // the update stream as U1 AddPerson operations.
  std::vector<Person> all_persons;
  std::unordered_map<int64_t, int64_t> person_date;
  std::vector<std::vector<int64_t>> city_members(options.num_cities);
  for (uint32_t i = 0; i < options.num_persons; ++i) {
    Person p;
    p.id = int64_t(i + 1);
    p.city_id = int64_t(rng.Uniform(options.num_cities)) + 1;
    // Names correlate with location (the generator's attribute
    // correlation, §2.2): the city biases the first-name pool.
    size_t name_base = size_t(p.city_id) * 7;
    p.first_name =
        kFirstNames[(name_base + rng.Uniform(8)) % std::size(kFirstNames)];
    p.last_name =
        kLastNames[(name_base + rng.Uniform(12)) % std::size(kLastNames)];
    p.gender = rng.Bernoulli(0.5) ? "male" : "female";
    p.birthday = -int64_t(rng.Uniform(2'000'000'000));
    p.creation_date = int64_t(rng.Uniform(kTimelineEnd));
    p.browser = kBrowsers[rng.Uniform(std::size(kBrowsers))];
    p.location_ip = MakeIp(&rng);
    person_date[p.id] = p.creation_date;
    city_members[size_t(p.city_id - 1)].push_back(p.id);
    all_persons.push_back(std::move(p));
  }

  // ---- Friendships (power-law degrees, city-correlated) -----------------
  PowerLawDegree degree_gen(options.min_degree,
                            std::min(options.max_degree,
                                     options.num_persons / 2),
                            options.degree_gamma, options.seed + 1);
  std::vector<Knows> all_knows;
  std::unordered_set<uint64_t> knows_seen;
  for (const Person& p : all_persons) {
    uint32_t target = degree_gen.Next();
    for (uint32_t attempt = 0, made = 0;
         made < target && attempt < target * 4; ++attempt) {
      int64_t other;
      if (rng.Bernoulli(options.same_city_affinity)) {
        const auto& pool = city_members[size_t(p.city_id - 1)];
        other = pool[rng.Uniform(pool.size())];
      } else {
        other = int64_t(rng.Uniform(options.num_persons)) + 1;
      }
      if (other == p.id) continue;
      int64_t a = std::min(p.id, other), b = std::max(p.id, other);
      uint64_t pair_key = uint64_t(a) << 32 | uint64_t(b);
      if (!knows_seen.insert(pair_key).second) continue;
      Knows k;
      k.person1 = a;
      k.person2 = b;
      int64_t base = std::max(person_date[a], person_date[b]);
      k.creation_date =
          base + 1 + int64_t(rng.Uniform(uint64_t(
                         std::max<int64_t>(kTimelineEnd - base, 1))));
      all_knows.push_back(k);
      ++made;
    }
  }

  // ---- Forums, membership -----------------------------------------------
  std::vector<Forum> all_forums;
  std::vector<ForumMember> all_members;
  std::unordered_map<int64_t, int64_t> forum_date;
  // member join dates per forum, used to anchor posts.
  std::unordered_map<int64_t, std::vector<std::pair<int64_t, int64_t>>>
      forum_members;  // forum -> (person, join_date)
  uint32_t num_forums =
      uint32_t(double(options.num_persons) * options.forums_per_person);
  PowerLawDegree member_gen(2, std::max(options.max_forum_members, 3u), 2.0,
                            options.seed + 2);
  for (uint32_t f = 0; f < num_forums; ++f) {
    Forum forum;
    forum.id = int64_t(f + 1);
    forum.title = "Forum " + MakeContent(&rng, 2, 4);
    forum.moderator = int64_t(rng.Uniform(options.num_persons)) + 1;
    int64_t base = person_date[forum.moderator];
    forum.creation_date =
        base + 1 + int64_t(rng.Uniform(uint64_t(std::max<int64_t>(
                        (kTimelineEnd - base) / 2, 1))));
    forum_date[forum.id] = forum.creation_date;

    uint32_t member_count = member_gen.Next();
    std::unordered_set<int64_t> joined;
    for (uint32_t m = 0, attempts = 0;
         m < member_count && attempts < member_count * 3; ++attempts) {
      int64_t person = int64_t(rng.Uniform(options.num_persons)) + 1;
      if (!joined.insert(person).second) continue;
      ForumMember member;
      member.forum = forum.id;
      member.person = person;
      int64_t jbase = std::max(forum.creation_date, person_date[person]);
      member.join_date =
          jbase + 1 + int64_t(rng.Uniform(uint64_t(std::max<int64_t>(
                          (kTimelineEnd - jbase) / 2, 1))));
      forum_members[forum.id].emplace_back(person, member.join_date);
      all_members.push_back(member);
      ++m;
    }
    all_forums.push_back(std::move(forum));
  }

  // ---- Posts, comments, likes, tags --------------------------------------
  std::vector<Post> all_posts;
  std::vector<Comment> all_comments;
  std::vector<Like> all_likes;
  int64_t next_post_id = 1, next_comment_id = 1;
  std::unordered_map<int64_t, int64_t> post_date, comment_date;
  for (const Forum& forum : all_forums) {
    const auto& members = forum_members[forum.id];
    if (members.empty()) continue;
    // Popular (well-membered) forums carry proportionally more content.
    uint32_t post_count = uint32_t(
        rng.Uniform(std::min<uint64_t>(members.size() * 2,
                                       options.max_posts_per_forum) +
                    1));
    for (uint32_t pi = 0; pi < post_count; ++pi) {
      const auto& [creator, join_date] =
          members[rng.Uniform(members.size())];
      Post post;
      post.id = next_post_id++;
      post.content = MakeContent(&rng, 5, 30);
      post.creator = creator;
      post.forum = forum.id;
      post.browser = kBrowsers[rng.Uniform(std::size(kBrowsers))];
      int64_t base = join_date;
      post.creation_date =
          base + 1 + int64_t(rng.Uniform(uint64_t(std::max<int64_t>(
                          (kTimelineEnd - base) / 2, 1))));
      post_date[post.id] = post.creation_date;

      // Tags: static metadata, attached only to snapshot posts (update
      // operations carry the post itself, not its tag edges).
      if (post.creation_date <= cutoff) {
        uint32_t tag_count = uint32_t(rng.Uniform(4));
        std::unordered_set<int64_t> tagged;
        for (uint32_t t = 0; t < tag_count; ++t) {
          int64_t tag = int64_t(rng.Uniform(options.num_tags)) + 1;
          if (tagged.insert(tag).second) {
            data.post_tags.push_back(PostTag{post.id, tag});
          }
        }
      }

      // Comments: a short reply cascade under the post.
      uint32_t comment_count = 0;
      while (rng.NextDouble() <
                 options.avg_comments_per_post /
                     (1.0 + options.avg_comments_per_post) &&
             comment_count < 12) {
        ++comment_count;
      }
      std::vector<int64_t> thread;  // comment ids under this post
      for (uint32_t ci = 0; ci < comment_count; ++ci) {
        const auto& [commenter, cjoin] =
            members[rng.Uniform(members.size())];
        Comment comment;
        comment.id = next_comment_id++;
        comment.content = MakeContent(&rng, 2, 12);
        comment.creator = commenter;
        int64_t parent_date;
        if (!thread.empty() && rng.Bernoulli(0.4)) {
          comment.reply_of_comment = thread[rng.Uniform(thread.size())];
          parent_date = comment_date[comment.reply_of_comment];
        } else {
          comment.reply_of_post = post.id;
          parent_date = post.creation_date;
        }
        int64_t cbase = std::max({parent_date, person_date[commenter],
                                  cjoin});
        comment.creation_date =
            cbase + 1 + int64_t(rng.Uniform(uint64_t(std::max<int64_t>(
                            (kTimelineEnd - cbase) / 3, 1))));
        comment_date[comment.id] = comment.creation_date;
        thread.push_back(comment.id);
        all_comments.push_back(std::move(comment));
      }

      // Likes, Zipf-ish: early posts in popular forums attract more.
      uint32_t like_count = uint32_t(rng.Uniform(
          uint64_t(options.avg_likes_per_post * 2.0 *
                   double(members.size()) / 8.0) +
          1));
      std::unordered_set<int64_t> likers;
      for (uint32_t li = 0; li < like_count; ++li) {
        int64_t liker = rng.Bernoulli(0.7)
                            ? members[rng.Uniform(members.size())].first
                            : int64_t(rng.Uniform(options.num_persons)) + 1;
        if (!likers.insert(liker).second) continue;
        Like like;
        like.person = liker;
        like.post = post.id;
        int64_t lbase = std::max(post.creation_date, person_date[liker]);
        like.creation_date =
            lbase + 1 + int64_t(rng.Uniform(uint64_t(std::max<int64_t>(
                            (kTimelineEnd - lbase) / 3, 1))));
        all_likes.push_back(like);
      }
      all_posts.push_back(std::move(post));
    }
  }

  // ---- studyAt / workAt (static metadata; snapshot persons only — these
  // edges are not part of the SNB update stream) ---------------------------
  for (const Person& p : all_persons) {
    if (p.creation_date > cutoff) continue;
    if (rng.Bernoulli(0.6)) {
      data.study_at.push_back(StudyAt{
          p.id, int64_t(rng.Uniform(options.num_organisations)) + 1,
          1990 + int64_t(rng.Uniform(30))});
    }
    uint32_t jobs = uint32_t(rng.Uniform(3));
    for (uint32_t j = 0; j < jobs; ++j) {
      data.work_at.push_back(WorkAt{
          p.id, int64_t(rng.Uniform(options.num_organisations)) + 1,
          2000 + int64_t(rng.Uniform(20))});
    }
  }

  // ---- Split static snapshot vs update stream ---------------------------
  auto clamp_dep = [&](int64_t date) { return date; };
  for (Person& p : all_persons) {
    if (p.creation_date <= cutoff) {
      data.persons.push_back(std::move(p));
    } else {
      UpdateOp op;
      op.kind = UpdateOp::Kind::kAddPerson;
      op.scheduled_date = p.creation_date;
      op.dependency_date = 0;
      op.person = std::move(p);
      data.update_stream.push_back(std::move(op));
    }
  }
  for (Knows& k : all_knows) {
    if (k.creation_date <= cutoff) {
      data.knows.push_back(k);
    } else {
      UpdateOp op;
      op.kind = UpdateOp::Kind::kAddFriendship;
      op.scheduled_date = k.creation_date;
      op.dependency_date =
          clamp_dep(std::max(person_date[k.person1],
                             person_date[k.person2]));
      op.knows = k;
      data.update_stream.push_back(std::move(op));
    }
  }
  for (Forum& f : all_forums) {
    if (f.creation_date <= cutoff) {
      data.forums.push_back(std::move(f));
    } else {
      UpdateOp op;
      op.kind = UpdateOp::Kind::kAddForum;
      op.scheduled_date = f.creation_date;
      op.dependency_date = person_date[f.moderator];
      op.forum = std::move(f);
      data.update_stream.push_back(std::move(op));
    }
  }
  for (ForumMember& m : all_members) {
    if (m.join_date <= cutoff) {
      data.members.push_back(m);
    } else {
      UpdateOp op;
      op.kind = UpdateOp::Kind::kAddForumMember;
      op.scheduled_date = m.join_date;
      op.dependency_date =
          std::max(forum_date[m.forum], person_date[m.person]);
      op.member = m;
      data.update_stream.push_back(std::move(op));
    }
  }
  for (Post& p : all_posts) {
    if (p.creation_date <= cutoff) {
      data.posts.push_back(std::move(p));
    } else {
      UpdateOp op;
      op.kind = UpdateOp::Kind::kAddPost;
      op.scheduled_date = p.creation_date;
      op.dependency_date =
          std::max(person_date[p.creator], forum_date[p.forum]);
      op.post = std::move(p);
      data.update_stream.push_back(std::move(op));
    }
  }
  for (Comment& c : all_comments) {
    if (c.creation_date <= cutoff) {
      data.comments.push_back(std::move(c));
    } else {
      UpdateOp op;
      op.kind = UpdateOp::Kind::kAddComment;
      op.scheduled_date = c.creation_date;
      int64_t parent = c.reply_of_post >= 0 ? post_date[c.reply_of_post]
                                            : comment_date[c.reply_of_comment];
      op.dependency_date = std::max(person_date[c.creator], parent);
      op.comment = std::move(c);
      data.update_stream.push_back(std::move(op));
    }
  }
  for (Like& l : all_likes) {
    if (l.creation_date <= cutoff) {
      data.likes.push_back(l);
    } else {
      UpdateOp op;
      op.kind = l.post >= 0 ? UpdateOp::Kind::kAddLikePost
                            : UpdateOp::Kind::kAddLikeComment;
      op.scheduled_date = l.creation_date;
      op.dependency_date =
          std::max(person_date[l.person],
                   l.post >= 0 ? post_date[l.post]
                               : comment_date[l.comment]);
      op.like = l;
      data.update_stream.push_back(std::move(op));
    }
  }

  std::stable_sort(data.update_stream.begin(), data.update_stream.end(),
                   [](const UpdateOp& a, const UpdateOp& b) {
                     return a.scheduled_date < b.scheduled_date;
                   });
  return data;
}

}  // namespace snb
}  // namespace graphbench
