#ifndef GRAPHBENCH_SNB_DATAGEN_H_
#define GRAPHBENCH_SNB_DATAGEN_H_

#include "snb/schema.h"

namespace graphbench {
namespace snb {

/// Generator knobs. The defaults produce SNB-shaped data: power-law
/// friendship degrees, location-correlated friendships and names, Zipfian
/// forum popularity, and activity (posts/comments/likes) concentrated on
/// popular content.
struct DatagenOptions {
  uint32_t num_persons = 1000;
  uint64_t seed = 42;

  /// Events after this fraction of the simulated timeline become the
  /// update stream; earlier ones form the static snapshot (§2.2's two-part
  /// dataset).
  double update_window = 0.1;

  // Friendship degree distribution (power law).
  uint32_t min_degree = 3;
  uint32_t max_degree = 200;
  double degree_gamma = 2.4;
  /// Probability a friend is chosen from the same city.
  double same_city_affinity = 0.7;

  // Activity volume.
  double forums_per_person = 0.3;
  uint32_t max_forum_members = 80;
  uint32_t max_posts_per_forum = 30;
  double avg_comments_per_post = 1.5;
  double avg_likes_per_post = 2.0;

  // World size.
  uint32_t num_cities = 40;
  uint32_t num_tags = 120;
  uint32_t num_organisations = 60;
};

/// Deterministically generates a social network for the given options.
/// Every event's date is >= the dates of everything it references, so the
/// static/update split at the cutoff is dependency-consistent and the
/// update stream is replayable in timestamp order.
Dataset Generate(const DatagenOptions& options);

/// The two benchmark scales standing in for the paper's SF3 and SF10 (the
/// ~3x vertex-count ratio of Table 1 is preserved).
DatagenOptions ScaleA();  // "SF3 analog"
DatagenOptions ScaleB();  // "SF10 analog"

}  // namespace snb
}  // namespace graphbench

#endif  // GRAPHBENCH_SNB_DATAGEN_H_
