#include "snb/params.h"

#include <algorithm>
#include <unordered_set>

namespace graphbench {
namespace snb {

ParamPools::ParamPools(const Dataset& dataset, uint64_t seed) : rng_(seed) {
  person_ids_.reserve(dataset.persons.size());
  for (const Person& p : dataset.persons) person_ids_.push_back(p.id);
  std::unordered_set<int64_t> connected;
  for (const Knows& k : dataset.knows) {
    connected.insert(k.person1);
    connected.insert(k.person2);
  }
  // Keep snapshot persons only (knows edges referencing update-stream
  // persons are themselves in the update stream, but be defensive).
  std::unordered_set<int64_t> snapshot(person_ids_.begin(),
                                       person_ids_.end());
  for (int64_t id : connected) {
    if (snapshot.count(id)) connected_ids_.push_back(id);
  }
  std::sort(connected_ids_.begin(), connected_ids_.end());
}

int64_t ParamPools::NextPersonId() {
  return person_ids_[rng_.Uniform(person_ids_.size())];
}

std::pair<int64_t, int64_t> ParamPools::NextPersonPair() {
  int64_t a = connected_ids_[rng_.Uniform(connected_ids_.size())];
  int64_t b = a;
  for (int attempt = 0; attempt < 8 && b == a; ++attempt) {
    b = connected_ids_[rng_.Uniform(connected_ids_.size())];
  }
  return {a, b};
}

}  // namespace snb
}  // namespace graphbench
