#ifndef GRAPHBENCH_SNB_PARAMS_H_
#define GRAPHBENCH_SNB_PARAMS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "snb/schema.h"
#include "util/random.h"

namespace graphbench {
namespace snb {

/// Query-parameter pools curated from the static snapshot, mirroring the
/// LDBC driver's parameter generation: person ids for lookups/traversals
/// and person pairs for shortest paths. Sampling is deterministic per
/// seed so every SUT sees the same parameter sequence.
class ParamPools {
 public:
  ParamPools(const Dataset& dataset, uint64_t seed);

  /// A person id from the static snapshot (uniform).
  int64_t NextPersonId();

  /// A person pair for shortest-path queries; both endpoints are snapshot
  /// persons with at least one friendship, biased toward distinct pairs.
  std::pair<int64_t, int64_t> NextPersonPair();

  const std::vector<int64_t>& person_ids() const { return person_ids_; }

 private:
  std::vector<int64_t> person_ids_;
  std::vector<int64_t> connected_ids_;  // persons with >= 1 knows edge
  Rng rng_;
};

}  // namespace snb
}  // namespace graphbench

#endif  // GRAPHBENCH_SNB_PARAMS_H_
