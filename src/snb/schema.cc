#include "snb/schema.h"

namespace graphbench {
namespace snb {

namespace {

// Rough CSV rendering widths: numeric fields ~12 chars + separator.
constexpr uint64_t kNum = 13;

}  // namespace

uint64_t Dataset::RawBytes() const {
  uint64_t bytes = 0;
  for (const Person& p : persons) {
    bytes += 3 * kNum + p.first_name.size() + p.last_name.size() +
             p.gender.size() + p.browser.size() + p.location_ip.size() + 8;
  }
  bytes += knows.size() * 3 * kNum;
  for (const Forum& f : forums) bytes += 3 * kNum + f.title.size();
  bytes += members.size() * 3 * kNum;
  for (const Post& p : posts) {
    bytes += 4 * kNum + p.content.size() + p.browser.size();
  }
  for (const Comment& c : comments) bytes += 5 * kNum + c.content.size();
  bytes += likes.size() * 4 * kNum;
  for (const Tag& t : tags) bytes += kNum + t.name.size();
  bytes += post_tags.size() * 2 * kNum;
  for (const Place& p : places) bytes += kNum + p.name.size();
  for (const Organisation& o : organisations) {
    bytes += kNum + o.name.size() + o.type.size();
  }
  bytes += (study_at.size() + work_at.size()) * 3 * kNum;
  return bytes;
}

}  // namespace snb
}  // namespace graphbench
