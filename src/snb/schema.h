#ifndef GRAPHBENCH_SNB_SCHEMA_H_
#define GRAPHBENCH_SNB_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace graphbench {
namespace snb {

/// Entity structs mirroring the LDBC SNB schema (the subset the
/// interactive workload touches). Dates are epoch-milliseconds from the
/// simulation origin.

struct Person {
  int64_t id = 0;
  std::string first_name;
  std::string last_name;
  std::string gender;
  int64_t birthday = 0;
  int64_t creation_date = 0;
  std::string browser;
  std::string location_ip;
  int64_t city_id = 0;
};

/// Undirected friendship, stored once with person1 < person2.
struct Knows {
  int64_t person1 = 0;
  int64_t person2 = 0;
  int64_t creation_date = 0;
};

struct Forum {
  int64_t id = 0;
  std::string title;
  int64_t creation_date = 0;
  int64_t moderator = 0;  // person id
};

struct ForumMember {
  int64_t forum = 0;
  int64_t person = 0;
  int64_t join_date = 0;
};

struct Post {
  int64_t id = 0;
  std::string content;
  int64_t creation_date = 0;
  int64_t creator = 0;  // person id
  int64_t forum = 0;
  std::string browser;
};

struct Comment {
  int64_t id = 0;
  std::string content;
  int64_t creation_date = 0;
  int64_t creator = 0;
  int64_t reply_of_post = -1;     // exactly one of these is set
  int64_t reply_of_comment = -1;
};

struct Like {
  int64_t person = 0;
  int64_t post = -1;     // exactly one of post/comment is set
  int64_t comment = -1;
  int64_t creation_date = 0;
};

struct Tag {
  int64_t id = 0;
  std::string name;
};

struct PostTag {
  int64_t post = 0;
  int64_t tag = 0;
};

struct Place {
  int64_t id = 0;
  std::string name;
};

struct Organisation {
  int64_t id = 0;
  std::string name;
  std::string type;  // "university" | "company"
};

struct StudyAt {
  int64_t person = 0;
  int64_t organisation = 0;
  int64_t year = 0;
};

struct WorkAt {
  int64_t person = 0;
  int64_t organisation = 0;
  int64_t year = 0;
};

/// One operation of the update stream (the SNB interactive update types
/// U1-U8). `dependency_date` is the latest creation date among referenced
/// entities: the op may only execute once everything it references exists
/// (the driver's dependency-tracking contract, §2.2).
struct UpdateOp {
  enum class Kind : uint8_t {
    kAddPerson = 1,        // U1
    kAddLikePost = 2,      // U2
    kAddLikeComment = 3,   // U3
    kAddForum = 4,         // U4
    kAddForumMember = 5,   // U5
    kAddPost = 6,          // U6
    kAddComment = 7,       // U7
    kAddFriendship = 8,    // U8
    // Extension beyond the spec's U1-U8 adds: unfriending, so precomputed
    // read structures (landmark index) face genuine invalidation churn.
    kRemoveFriendship = 9,
  };

  Kind kind = Kind::kAddPerson;
  int64_t scheduled_date = 0;   // simulation time of the event
  int64_t dependency_date = 0;

  // Exactly the member matching `kind` is meaningful.
  Person person;
  Like like;
  Forum forum;
  ForumMember member;
  Post post;
  Comment comment;
  Knows knows;
};

/// A generated social network: the static snapshot loaded into each SUT
/// plus the timestamp-ordered update stream played through Kafka.
struct Dataset {
  std::vector<Person> persons;
  std::vector<Knows> knows;
  std::vector<Forum> forums;
  std::vector<ForumMember> members;
  std::vector<Post> posts;
  std::vector<Comment> comments;
  std::vector<Like> likes;
  std::vector<Tag> tags;
  std::vector<PostTag> post_tags;
  std::vector<Place> places;
  std::vector<Organisation> organisations;
  std::vector<StudyAt> study_at;
  std::vector<WorkAt> work_at;

  std::vector<UpdateOp> update_stream;  // sorted by scheduled_date

  uint64_t VertexCount() const {
    return persons.size() + forums.size() + posts.size() + comments.size() +
           tags.size() + places.size() + organisations.size();
  }
  uint64_t EdgeCount() const {
    return knows.size() + members.size() + likes.size() + post_tags.size() +
           study_at.size() + work_at.size() +
           posts.size() * 2 +      // creator + forum containment
           comments.size() * 2 +   // creator + replyOf
           persons.size() +        // isLocatedIn
           forums.size();          // moderator
  }
  /// Approximate size of the dataset rendered as CSV (Table 1's "raw").
  uint64_t RawBytes() const;
};

}  // namespace snb
}  // namespace graphbench

#endif  // GRAPHBENCH_SNB_SCHEMA_H_
