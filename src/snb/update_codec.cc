#include "snb/update_codec.h"

#include "graph/value_codec.h"

namespace graphbench {
namespace snb {

namespace {

void PutI64(std::string* dst, int64_t v) {
  valuecodec::EncodeValue(dst, Value(v));
}
void PutStr(std::string* dst, const std::string& s) {
  valuecodec::EncodeValue(dst, Value(s));
}

bool TakeI64(std::string_view* src, int64_t* v) {
  Value val;
  if (!valuecodec::DecodeValue(src, &val) || !val.is_int()) return false;
  *v = val.as_int();
  return true;
}
bool TakeStr(std::string_view* src, std::string* s) {
  Value val;
  if (!valuecodec::DecodeValue(src, &val) || !val.is_string()) return false;
  *s = val.as_string();
  return true;
}

}  // namespace

std::string EncodeUpdate(const UpdateOp& op) {
  std::string out;
  out.push_back(char(uint8_t(op.kind)));
  PutI64(&out, op.scheduled_date);
  PutI64(&out, op.dependency_date);
  switch (op.kind) {
    case UpdateOp::Kind::kAddPerson: {
      const Person& p = op.person;
      PutI64(&out, p.id);
      PutStr(&out, p.first_name);
      PutStr(&out, p.last_name);
      PutStr(&out, p.gender);
      PutI64(&out, p.birthday);
      PutI64(&out, p.creation_date);
      PutStr(&out, p.browser);
      PutStr(&out, p.location_ip);
      PutI64(&out, p.city_id);
      break;
    }
    case UpdateOp::Kind::kAddLikePost:
    case UpdateOp::Kind::kAddLikeComment:
      PutI64(&out, op.like.person);
      PutI64(&out, op.like.post);
      PutI64(&out, op.like.comment);
      PutI64(&out, op.like.creation_date);
      break;
    case UpdateOp::Kind::kAddForum:
      PutI64(&out, op.forum.id);
      PutStr(&out, op.forum.title);
      PutI64(&out, op.forum.creation_date);
      PutI64(&out, op.forum.moderator);
      break;
    case UpdateOp::Kind::kAddForumMember:
      PutI64(&out, op.member.forum);
      PutI64(&out, op.member.person);
      PutI64(&out, op.member.join_date);
      break;
    case UpdateOp::Kind::kAddPost: {
      const Post& p = op.post;
      PutI64(&out, p.id);
      PutStr(&out, p.content);
      PutI64(&out, p.creation_date);
      PutI64(&out, p.creator);
      PutI64(&out, p.forum);
      PutStr(&out, p.browser);
      break;
    }
    case UpdateOp::Kind::kAddComment: {
      const Comment& c = op.comment;
      PutI64(&out, c.id);
      PutStr(&out, c.content);
      PutI64(&out, c.creation_date);
      PutI64(&out, c.creator);
      PutI64(&out, c.reply_of_post);
      PutI64(&out, c.reply_of_comment);
      break;
    }
    case UpdateOp::Kind::kAddFriendship:
    case UpdateOp::Kind::kRemoveFriendship:
      PutI64(&out, op.knows.person1);
      PutI64(&out, op.knows.person2);
      PutI64(&out, op.knows.creation_date);
      break;
  }
  return out;
}

Result<UpdateOp> DecodeUpdate(std::string_view bytes) {
  if (bytes.empty()) return Status::Corruption("empty update");
  UpdateOp op;
  op.kind = UpdateOp::Kind(uint8_t(bytes[0]));
  bytes.remove_prefix(1);
  if (!TakeI64(&bytes, &op.scheduled_date) ||
      !TakeI64(&bytes, &op.dependency_date)) {
    return Status::Corruption("bad update header");
  }
  bool ok = true;
  switch (op.kind) {
    case UpdateOp::Kind::kAddPerson: {
      Person& p = op.person;
      ok = TakeI64(&bytes, &p.id) && TakeStr(&bytes, &p.first_name) &&
           TakeStr(&bytes, &p.last_name) && TakeStr(&bytes, &p.gender) &&
           TakeI64(&bytes, &p.birthday) &&
           TakeI64(&bytes, &p.creation_date) &&
           TakeStr(&bytes, &p.browser) &&
           TakeStr(&bytes, &p.location_ip) && TakeI64(&bytes, &p.city_id);
      break;
    }
    case UpdateOp::Kind::kAddLikePost:
    case UpdateOp::Kind::kAddLikeComment:
      ok = TakeI64(&bytes, &op.like.person) &&
           TakeI64(&bytes, &op.like.post) &&
           TakeI64(&bytes, &op.like.comment) &&
           TakeI64(&bytes, &op.like.creation_date);
      break;
    case UpdateOp::Kind::kAddForum:
      ok = TakeI64(&bytes, &op.forum.id) &&
           TakeStr(&bytes, &op.forum.title) &&
           TakeI64(&bytes, &op.forum.creation_date) &&
           TakeI64(&bytes, &op.forum.moderator);
      break;
    case UpdateOp::Kind::kAddForumMember:
      ok = TakeI64(&bytes, &op.member.forum) &&
           TakeI64(&bytes, &op.member.person) &&
           TakeI64(&bytes, &op.member.join_date);
      break;
    case UpdateOp::Kind::kAddPost: {
      Post& p = op.post;
      ok = TakeI64(&bytes, &p.id) && TakeStr(&bytes, &p.content) &&
           TakeI64(&bytes, &p.creation_date) &&
           TakeI64(&bytes, &p.creator) && TakeI64(&bytes, &p.forum) &&
           TakeStr(&bytes, &p.browser);
      break;
    }
    case UpdateOp::Kind::kAddComment: {
      Comment& c = op.comment;
      ok = TakeI64(&bytes, &c.id) && TakeStr(&bytes, &c.content) &&
           TakeI64(&bytes, &c.creation_date) &&
           TakeI64(&bytes, &c.creator) &&
           TakeI64(&bytes, &c.reply_of_post) &&
           TakeI64(&bytes, &c.reply_of_comment);
      break;
    }
    case UpdateOp::Kind::kAddFriendship:
    case UpdateOp::Kind::kRemoveFriendship:
      ok = TakeI64(&bytes, &op.knows.person1) &&
           TakeI64(&bytes, &op.knows.person2) &&
           TakeI64(&bytes, &op.knows.creation_date);
      break;
    default:
      return Status::Corruption("unknown update kind");
  }
  if (!ok) return Status::Corruption("truncated update payload");
  return op;
}

}  // namespace snb
}  // namespace graphbench
