#ifndef GRAPHBENCH_SNB_UPDATE_CODEC_H_
#define GRAPHBENCH_SNB_UPDATE_CODEC_H_

#include <string>
#include <string_view>

#include "snb/schema.h"
#include "util/result.h"

namespace graphbench {
namespace snb {

/// Wire codec for update operations flowing through the Kafka-analog
/// queue (Figure 1: driver -> topic -> single writer -> SUT).
std::string EncodeUpdate(const UpdateOp& op);
Result<UpdateOp> DecodeUpdate(std::string_view bytes);

}  // namespace snb
}  // namespace graphbench

#endif  // GRAPHBENCH_SNB_UPDATE_CODEC_H_
