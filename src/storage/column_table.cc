#include "storage/column_table.h"

#include "obs/lock_timer.h"

#include <mutex>
#include <unordered_set>

#include "storage/heap_table.h"  // ValueFootprint

namespace graphbench {

ColumnTable::ColumnTable(TableSchema schema) : Table(std::move(schema)) {
  columns_.resize(schema_.num_columns());
  zone_maps_.resize(schema_.num_columns());
}

const Value& ColumnTable::ValueAtLocked(size_t column, size_t id) const {
  size_t merged = columns_[column].size();
  if (id < merged) return columns_[column][id];
  return delta_[id - merged][column];
}

void ColumnTable::MergeDeltaLocked() {
  if (delta_.empty()) return;
  // Column-wise placement of the delta.
  for (const Row& row : delta_) {
    for (size_t c = 0; c < row.size(); ++c) {
      columns_[c].push_back(row[c]);
    }
  }
  delta_.clear();
  // Recompress the tail segment of every column: zone maps (min/max) and
  // dictionary statistics are recomputed over the whole affected segment —
  // the merge-time write amplification of a compressed column store.
  for (size_t c = 0; c < columns_.size(); ++c) {
    const auto& col = columns_[c];
    size_t seg_index = col.empty() ? 0 : (col.size() - 1) / kSegmentRows;
    size_t seg_start = seg_index * kSegmentRows;
    Value lo, hi;
    bool first = true;
    std::unordered_set<Value, ValueHash> dictionary;
    for (size_t i = seg_start; i < col.size(); ++i) {
      dictionary.insert(col[i]);
      if (first) {
        lo = col[i];
        hi = col[i];
        first = false;
        continue;
      }
      if (col[i].Compare(lo) < 0) lo = col[i];
      if (col[i].Compare(hi) > 0) hi = col[i];
    }
    auto& zones = zone_maps_[c];
    zones.resize(seg_index + 1);
    zones[seg_index] = {std::move(lo), std::move(hi)};
  }
  ++merges_;
}

Result<RowId> ColumnTable::Insert(const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   schema_.name());
  }
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  RowId id = live_.size();
  delta_.push_back(row);
  live_.push_back(true);
  ++live_rows_;
  for (const Value& v : row) bytes_ += ValueFootprint(v);
  if (delta_.size() >= kDeltaMergeRows) MergeDeltaLocked();
  return id;
}

Status ColumnTable::Get(RowId id, Row* row) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  if (id >= live_.size() || !live_[size_t(id)]) {
    return Status::NotFound("row");
  }
  row->clear();
  row->reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    row->push_back(ValueAtLocked(c, size_t(id)));
  }
  return Status::OK();
}

Status ColumnTable::GetColumn(RowId id, size_t column, Value* out) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  if (id >= live_.size() || !live_[size_t(id)]) {
    return Status::NotFound("row");
  }
  if (column >= columns_.size()) return Status::InvalidArgument("column");
  *out = ValueAtLocked(column, size_t(id));
  return Status::OK();
}

Status ColumnTable::Update(RowId id, const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  if (id >= live_.size() || !live_[size_t(id)]) {
    return Status::NotFound("row");
  }
  size_t merged = columns_.empty() ? 0 : columns_[0].size();
  for (size_t c = 0; c < row.size(); ++c) {
    Value& slot = size_t(id) < merged
                      ? columns_[c][size_t(id)]
                      : delta_[size_t(id) - merged][c];
    bytes_ -= ValueFootprint(slot);
    slot = row[c];
    bytes_ += ValueFootprint(row[c]);
  }
  return Status::OK();
}

Status ColumnTable::Delete(RowId id) {
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  if (id >= live_.size() || !live_[size_t(id)]) {
    return Status::NotFound("row");
  }
  live_[size_t(id)] = false;
  for (size_t c = 0; c < columns_.size(); ++c) {
    bytes_ -= ValueFootprint(ValueAtLocked(c, size_t(id)));
  }
  --live_rows_;
  return Status::OK();
}

void ColumnTable::ScanColumn(size_t column, std::vector<Value>* values,
                             std::vector<RowId>* row_ids) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  values->clear();
  row_ids->clear();
  for (size_t i = 0; i < live_.size(); ++i) {
    if (!live_[i]) continue;
    values->push_back(ValueAtLocked(column, i));
    row_ids->push_back(RowId(i));
  }
}

class ColumnTable::Iter : public TableScanIterator {
 public:
  explicit Iter(const ColumnTable* table) : table_(table) { Advance(0); }

  bool Valid() const override { return valid_; }
  void Next() override { Advance(pos_ + 1); }
  RowId row_id() const override { return pos_; }

  void GetRow(Row* row) const override {
    table_->Get(pos_, row).ok();  // NotFound leaves row untouched
  }

 private:
  void Advance(RowId from) {
    std::shared_lock<obs::TimedSharedMutex> lock(table_->mu_);
    for (RowId id = from; id < table_->live_.size(); ++id) {
      if (table_->live_[size_t(id)]) {
        pos_ = id;
        valid_ = true;
        return;
      }
    }
    valid_ = false;
  }

  const ColumnTable* table_;
  RowId pos_ = 0;
  bool valid_ = false;
};

std::unique_ptr<TableScanIterator> ColumnTable::NewScanIterator() const {
  return std::make_unique<Iter>(this);
}

uint64_t ColumnTable::row_count() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return live_rows_;
}

uint64_t ColumnTable::ApproximateSizeBytes() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return bytes_;
}

uint64_t ColumnTable::merges() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return merges_;
}

}  // namespace graphbench
