#ifndef GRAPHBENCH_STORAGE_COLUMN_TABLE_H_
#define GRAPHBENCH_STORAGE_COLUMN_TABLE_H_

#include <memory>
#include <shared_mutex>

#include "obs/lock_timer.h"
#include <vector>

#include "storage/table.h"

namespace graphbench {

/// Column store: one value vector per column plus a liveness bitmap (the
/// Virtuoso analog). Projections touch only the referenced columns —
/// the read-side advantage on multi-row traversals.
///
/// Writes follow the C-store/Virtuoso model: inserts land in a row-format
/// write-optimized delta; when the delta reaches `kDeltaMergeRows` it is
/// merged into the column vectors and the tail segment of every column is
/// recompressed (zone-map/dictionary maintenance re-scans it). The merge
/// work plus the periodic stall is the §4.3 write tax that row stores
/// don't pay.
class ColumnTable : public Table {
 public:
  /// Delta rows buffered before a merge.
  static constexpr size_t kDeltaMergeRows = 1024;
  /// Values per compression segment; a merge re-scans the tail segment of
  /// each column.
  static constexpr size_t kSegmentRows = 8192;

  explicit ColumnTable(TableSchema schema);

  Result<RowId> Insert(const Row& row) override;
  Status Get(RowId id, Row* row) const override;
  Status GetColumn(RowId id, size_t column, Value* out) const override;
  Status Update(RowId id, const Row& row) override;
  Status Delete(RowId id) override;
  std::unique_ptr<TableScanIterator> NewScanIterator() const override;
  uint64_t row_count() const override;
  uint64_t ApproximateSizeBytes() const override;

  /// Vectorized read of one full column restricted to live rows (merged
  /// region and delta); the executor uses this for column scans.
  void ScanColumn(size_t column, std::vector<Value>* values,
                  std::vector<RowId>* row_ids) const;

  /// Merges of the write-optimized delta so far (observable for tests).
  uint64_t merges() const;

 private:
  class Iter;

  // Caller holds mu_ exclusively. Appends the delta to the column vectors
  // and recompresses each column's tail segment.
  void MergeDeltaLocked();
  // Value at `id` across merged columns + delta; caller holds mu_.
  const Value& ValueAtLocked(size_t column, size_t id) const;

  mutable obs::TimedSharedMutex mu_{"storage.lock_wait_us"};
  std::vector<std::vector<Value>> columns_;  // merged, columnar region
  std::vector<Row> delta_;                   // write-optimized region
  std::vector<bool> live_;                   // covers merged + delta
  // Zone maps per column, one entry per segment (min, max); rebuilt for
  // the tail segment on every merge.
  std::vector<std::vector<std::pair<Value, Value>>> zone_maps_;
  uint64_t live_rows_ = 0;
  uint64_t bytes_ = 0;
  uint64_t merges_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_COLUMN_TABLE_H_
