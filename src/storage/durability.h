#ifndef GRAPHBENCH_STORAGE_DURABILITY_H_
#define GRAPHBENCH_STORAGE_DURABILITY_H_

#include <string>
#include <string_view>

#include "storage/os_file.h"
#include "storage/pager.h"

namespace graphbench {
namespace storage {

/// Opt-in durable storage (the --durable flag). Default-constructed =
/// disabled: every engine keeps its original in-memory substrate and all
/// existing wiring behaves exactly as before.
///
/// When enabled, the SUTs with a natural persistent analog re-seat their
/// storage on the pager/WAL substrate (DESIGN.md §12): Titan-B on
/// PagedBTreeKv, Postgres/Virtuoso SQL on PagedTable, and Neo4j-Cypher's
/// native store appends a WAL journal and fsyncs its store file at
/// checkpoints (replacing the simulated sleep). The remaining SUTs model
/// systems benchmarked memory-resident and stay in-memory.
struct DurabilityOptions {
  bool enabled = false;
  /// Directory for db/wal files (required when enabled; must exist).
  std::string dir;
  /// Fsync the WAL on every committed op (the paper-faithful durable
  /// configuration). Off: group durability at checkpoints/evictions only.
  bool fsync_on_commit = false;
  /// Auto-checkpoint every N ops (0 = only when the engine asks).
  uint64_t checkpoint_interval_ops = 0;
  /// Buffer-pool capacity in pages.
  size_t cache_pages = 1024;
  /// File-system override for tests (fault injection / crash simulation);
  /// null = the real PosixFileSystem.
  FileSystem* fs = nullptr;
};

inline FileSystem* ResolveFileSystem(const DurabilityOptions& options) {
  return options.fs != nullptr ? options.fs : PosixFileSystem::Default();
}

inline PagerOptions ToPagerOptions(const DurabilityOptions& options) {
  PagerOptions pager;
  pager.cache_pages = options.cache_pages;
  pager.fsync_on_commit = options.fsync_on_commit;
  pager.checkpoint_interval_ops = options.checkpoint_interval_ops;
  return pager;
}

/// Paths for one engine component ("titanb", "rel_row", ...): the db file
/// and its WAL side file.
inline std::string DbPath(const DurabilityOptions& options,
                          std::string_view component) {
  return options.dir + "/" + std::string(component) + ".db";
}

inline std::string WalPath(const DurabilityOptions& options,
                           std::string_view component) {
  return options.dir + "/" + std::string(component) + ".wal";
}

}  // namespace storage
}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_DURABILITY_H_
