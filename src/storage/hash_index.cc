#include "storage/hash_index.h"

#include "obs/lock_timer.h"

#include <algorithm>
#include <mutex>

namespace graphbench {

Status HashIndex::Insert(const Value& key, RowId id) {
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  auto& ids = map_[key];
  if (unique_ && !ids.empty()) {
    return Status::AlreadyExists("duplicate key in unique index " + name_);
  }
  ids.push_back(id);
  ++entries_;
  return Status::OK();
}

Status HashIndex::Remove(const Value& key, RowId id) {
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return Status::NotFound("index key");
  auto& ids = it->second;
  auto pos = std::find(ids.begin(), ids.end(), id);
  if (pos == ids.end()) return Status::NotFound("row id under key");
  ids.erase(pos);
  --entries_;
  if (ids.empty()) map_.erase(it);
  return Status::OK();
}

std::vector<RowId> HashIndex::Lookup(const Value& key) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end()) return {};
  return it->second;
}

Result<RowId> HashIndex::LookupUnique(const Value& key) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second.empty()) {
    return Status::NotFound("key not in index " + name_);
  }
  return it->second.front();
}

bool HashIndex::Contains(const Value& key) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return map_.find(key) != map_.end();
}

uint64_t HashIndex::entry_count() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return entries_;
}

uint64_t HashIndex::ApproximateSizeBytes() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  // Bucket + key + id-vector overhead estimate per entry.
  return entries_ * 56 + map_.bucket_count() * 8;
}

}  // namespace graphbench
