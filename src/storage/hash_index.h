#ifndef GRAPHBENCH_STORAGE_HASH_INDEX_H_
#define GRAPHBENCH_STORAGE_HASH_INDEX_H_

#include <shared_mutex>

#include "obs/lock_timer.h"
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"
#include "util/status.h"
#include "util/value.h"

namespace graphbench {

/// Hash index from a column value to RowIds. Per the paper's fairness rule,
/// every system indexes exactly the vertex-ID columns (§4.1); the relational
/// engines additionally index edge-table source/target columns since those
/// hold vertex IDs.
class HashIndex {
 public:
  /// `unique` enforces at-most-one RowId per key.
  HashIndex(std::string name, bool unique)
      : name_(std::move(name)), unique_(unique) {}

  Status Insert(const Value& key, RowId id);
  Status Remove(const Value& key, RowId id);

  /// All RowIds for `key` (empty when absent).
  std::vector<RowId> Lookup(const Value& key) const;

  /// Unique lookup; NotFound when absent.
  Result<RowId> LookupUnique(const Value& key) const;

  bool Contains(const Value& key) const;

  const std::string& name() const { return name_; }
  bool unique() const { return unique_; }
  uint64_t entry_count() const;
  uint64_t ApproximateSizeBytes() const;

 private:
  std::string name_;
  bool unique_;
  mutable obs::TimedSharedMutex mu_{"storage.lock_wait_us"};
  std::unordered_map<Value, std::vector<RowId>, ValueHash> map_;
  uint64_t entries_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_HASH_INDEX_H_
