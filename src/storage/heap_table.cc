#include "storage/heap_table.h"

#include "obs/lock_timer.h"

#include <mutex>

namespace graphbench {

uint64_t ValueFootprint(const Value& v) {
  uint64_t base = 24;  // variant + bookkeeping
  if (v.is_string()) base += v.as_string().size();
  return base;
}

HeapTable::HeapTable(TableSchema schema) : Table(std::move(schema)) {}

Result<RowId> HeapTable::Insert(const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   schema_.name());
  }
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  if (pages_.empty() || pages_.back()->rows.size() >= kRowsPerPage) {
    pages_.push_back(std::make_unique<Page>());
    pages_.back()->rows.reserve(kRowsPerPage);
    bytes_ += 64;  // page header estimate
  }
  Page* page = pages_.back().get();
  RowId id = RowId((pages_.size() - 1) * kRowsPerPage + page->rows.size());
  page->rows.push_back(row);
  page->live.push_back(true);
  ++live_rows_;
  for (const Value& v : row) bytes_ += ValueFootprint(v);
  return id;
}

const Row* HeapTable::Locate(RowId id) const {
  size_t page_idx = size_t(id / kRowsPerPage);
  size_t slot = size_t(id % kRowsPerPage);
  if (page_idx >= pages_.size()) return nullptr;
  const Page& page = *pages_[page_idx];
  if (slot >= page.rows.size() || !page.live[slot]) return nullptr;
  return &page.rows[slot];
}

Status HeapTable::Get(RowId id, Row* row) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  const Row* r = Locate(id);
  if (r == nullptr) return Status::NotFound("row");
  *row = *r;
  return Status::OK();
}

Status HeapTable::GetColumn(RowId id, size_t column, Value* out) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  const Row* r = Locate(id);
  if (r == nullptr) return Status::NotFound("row");
  if (column >= r->size()) return Status::InvalidArgument("column index");
  *out = (*r)[column];
  return Status::OK();
}

Status HeapTable::Update(RowId id, const Row& row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  size_t page_idx = size_t(id / kRowsPerPage);
  size_t slot = size_t(id % kRowsPerPage);
  if (page_idx >= pages_.size()) return Status::NotFound("row");
  Page& page = *pages_[page_idx];
  if (slot >= page.rows.size() || !page.live[slot]) {
    return Status::NotFound("row");
  }
  for (const Value& v : page.rows[slot]) bytes_ -= ValueFootprint(v);
  page.rows[slot] = row;
  for (const Value& v : row) bytes_ += ValueFootprint(v);
  return Status::OK();
}

Status HeapTable::Delete(RowId id) {
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  size_t page_idx = size_t(id / kRowsPerPage);
  size_t slot = size_t(id % kRowsPerPage);
  if (page_idx >= pages_.size()) return Status::NotFound("row");
  Page& page = *pages_[page_idx];
  if (slot >= page.rows.size() || !page.live[slot]) {
    return Status::NotFound("row");
  }
  page.live[slot] = false;
  for (const Value& v : page.rows[slot]) bytes_ -= ValueFootprint(v);
  --live_rows_;
  return Status::OK();
}

class HeapTable::Iter : public TableScanIterator {
 public:
  explicit Iter(const HeapTable* table) : table_(table) {
    // Snapshot of liveness is not taken: scans run under brief shared
    // locks per step; RowIds are append-only so positions are stable.
    Advance(0);
  }

  bool Valid() const override { return valid_; }

  void Next() override { Advance(pos_ + 1); }

  RowId row_id() const override { return pos_; }

  void GetRow(Row* row) const override {
    std::shared_lock<obs::TimedSharedMutex> lock(table_->mu_);
    const Row* r = table_->Locate(pos_);
    if (r != nullptr) *row = *r;
  }

 private:
  void Advance(RowId from) {
    std::shared_lock<obs::TimedSharedMutex> lock(table_->mu_);
    uint64_t limit = table_->pages_.empty()
                         ? 0
                         : (table_->pages_.size() - 1) * kRowsPerPage +
                               table_->pages_.back()->rows.size();
    for (RowId id = from; id < limit; ++id) {
      if (table_->Locate(id) != nullptr) {
        pos_ = id;
        valid_ = true;
        return;
      }
    }
    valid_ = false;
  }

  const HeapTable* table_;
  RowId pos_ = 0;
  bool valid_ = false;
};

std::unique_ptr<TableScanIterator> HeapTable::NewScanIterator() const {
  return std::make_unique<Iter>(this);
}

uint64_t HeapTable::row_count() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return live_rows_;
}

uint64_t HeapTable::ApproximateSizeBytes() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return bytes_;
}

}  // namespace graphbench
