#ifndef GRAPHBENCH_STORAGE_HEAP_TABLE_H_
#define GRAPHBENCH_STORAGE_HEAP_TABLE_H_

#include <memory>
#include <shared_mutex>

#include "obs/lock_timer.h"
#include <vector>

#include "storage/table.h"

namespace graphbench {

/// Row store: rows live in fixed-capacity pages appended to a heap file
/// (the Postgres analog). A point access touches exactly one page slot;
/// inserts append to the last page — the cheap write path that gives the
/// row store its §4.3 update-throughput win.
class HeapTable : public Table {
 public:
  static constexpr size_t kRowsPerPage = 128;

  explicit HeapTable(TableSchema schema);

  Result<RowId> Insert(const Row& row) override;
  Status Get(RowId id, Row* row) const override;
  Status GetColumn(RowId id, size_t column, Value* out) const override;
  Status Update(RowId id, const Row& row) override;
  Status Delete(RowId id) override;
  std::unique_ptr<TableScanIterator> NewScanIterator() const override;
  uint64_t row_count() const override;
  uint64_t ApproximateSizeBytes() const override;

 private:
  struct Page {
    std::vector<Row> rows;        // size() == #slots used
    std::vector<bool> live;       // parallel to rows
  };
  class Iter;

  // Returns the slot or nullptr when id is out of range / deleted.
  const Row* Locate(RowId id) const;

  mutable obs::TimedSharedMutex mu_{"storage.lock_wait_us"};
  std::vector<std::unique_ptr<Page>> pages_;
  uint64_t live_rows_ = 0;
  uint64_t bytes_ = 0;
};

/// Approximate resident size of one Value (for size accounting).
uint64_t ValueFootprint(const Value& v);

}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_HEAP_TABLE_H_
