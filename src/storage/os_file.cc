#include "storage/os_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace graphbench {
namespace storage {

uint32_t Crc32(std::string_view data, uint32_t init) {
  // CRC-32C (Castagnoli), table generated on first use.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  uint32_t crc = init ^ 0xffffffffu;
  for (unsigned char b : std::string_view(data)) {
    crc = kTable[(crc ^ b) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

// --- Posix ----------------------------------------------------------------

namespace {

class PosixFile : public File {
 public:
  PosixFile(int fd, uint64_t size) : fd_(fd), size_(size) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override {
    out->clear();
    out->resize(n);
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, out->data() + done, n - done,
                          off_t(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("pread: ") +
                                std::strerror(errno));
      }
      if (r == 0) break;  // EOF
      done += size_t(r);
    }
    out->resize(done);
    return Status::OK();
  }

  Status WriteAt(uint64_t offset, std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t w = ::pwrite(fd_, data.data() + done, data.size() - done,
                           off_t(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("pwrite: ") +
                                std::strerror(errno));
      }
      done += size_t(w);
    }
    size_ = std::max(size_, offset + data.size());
    return Status::OK();
  }

  Status Append(std::string_view data) override {
    return WriteAt(size_, data);
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, off_t(size)) != 0) {
      return Status::Internal(std::string("ftruncate: ") +
                              std::strerror(errno));
    }
    size_ = size;
    return Status::OK();
  }

  Result<uint64_t> Size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
};

}  // namespace

PosixFileSystem* PosixFileSystem::Default() {
  static PosixFileSystem fs;
  return &fs;
}

Result<std::unique_ptr<File>> PosixFileSystem::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::Internal("fstat " + path + ": " + std::strerror(errno));
  }
  return std::unique_ptr<File>(new PosixFile(fd, uint64_t(st.st_size)));
}

bool PosixFileSystem::Exists(const std::string& path) const {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status PosixFileSystem::Remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal("unlink " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status PosixFileSystem::CreateDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::Internal("mkdir " + path + ": " + std::strerror(errno));
  }
  return Status::OK();
}

// --- In-memory with crash semantics ---------------------------------------

namespace {

// Applies one write to a flat image, zero-filling any hole.
void ApplyWrite(std::string* image, uint64_t offset, std::string_view data) {
  if (image->size() < offset + data.size()) {
    image->resize(offset + data.size(), '\0');
  }
  std::memcpy(image->data() + offset, data.data(), data.size());
}

}  // namespace

std::string MemFileSystem::FileState::Materialize() const {
  std::string image = durable;
  for (const PendingWrite& w : pending) {
    if (w.data.empty()) {
      image.resize(w.offset, '\0');  // pending truncate
    } else {
      ApplyWrite(&image, w.offset, w.data);
    }
  }
  return image;
}

class MemFile : public File {
 public:
  MemFile(std::mutex* mu, std::shared_ptr<void> state)
      : mu_(mu), state_holder_(std::move(state)) {}

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override;
  Status WriteAt(uint64_t offset, std::string_view data) override;
  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Truncate(uint64_t size) override;
  Result<uint64_t> Size() const override;

 private:
  using FileState = MemFileSystem::FileState;
  FileState* state() const {
    return static_cast<FileState*>(state_holder_.get());
  }
  std::mutex* mu_;
  std::shared_ptr<void> state_holder_;
};

Status MemFile::ReadAt(uint64_t offset, size_t n, std::string* out) const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::string image = state()->Materialize();
  out->clear();
  if (offset >= image.size()) return Status::OK();
  *out = image.substr(offset, n);
  return Status::OK();
}

Status MemFile::WriteAt(uint64_t offset, std::string_view data) {
  if (data.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(*mu_);
  FileState* s = state();
  s->pending.push_back({offset, std::string(data)});
  s->logical_size = std::max(s->logical_size, offset + data.size());
  return Status::OK();
}

Status MemFile::Append(std::string_view data) {
  if (data.empty()) return Status::OK();
  std::lock_guard<std::mutex> lock(*mu_);
  FileState* s = state();
  s->pending.push_back({s->logical_size, std::string(data)});
  s->logical_size += data.size();
  return Status::OK();
}

Status MemFile::Sync() {
  std::lock_guard<std::mutex> lock(*mu_);
  FileState* s = state();
  s->durable = s->Materialize();
  s->pending.clear();
  return Status::OK();
}

Status MemFile::Truncate(uint64_t size) {
  std::lock_guard<std::mutex> lock(*mu_);
  FileState* s = state();
  // Represented as an empty-data pending write: Materialize and Crash both
  // treat it as "resize to offset".
  s->pending.push_back({size, std::string()});
  s->logical_size = size;
  return Status::OK();
}

Result<uint64_t> MemFile::Size() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return state()->logical_size;
}

Result<std::unique_ptr<File>> MemFileSystem::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<FileState>& state = files_[path];
  if (state == nullptr) state = std::make_shared<FileState>();
  return std::unique_ptr<File>(new MemFile(&mu_, state));
}

bool MemFileSystem::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status MemFileSystem::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
  return Status::OK();
}

void MemFileSystem::Crash(Rng* rng) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, state] : files_) {
    std::string image = state->durable;
    for (const PendingWrite& w : state->pending) {
      if (w.data.empty()) {
        // Unsynced truncate: kept or lost wholesale.
        if (rng->Bernoulli(0.5)) image.resize(w.offset, '\0');
        continue;
      }
      switch (rng->Uniform(3)) {
        case 0:  // fully persisted
          ApplyWrite(&image, w.offset, w.data);
          break;
        case 1: {  // torn: a 512-byte-aligned prefix survives
          uint64_t sectors = (w.data.size() + kSectorBytes - 1) / kSectorBytes;
          uint64_t keep =
              std::min<uint64_t>(rng->Uniform(sectors + 1) * kSectorBytes,
                                 w.data.size());
          if (keep > 0) {
            ApplyWrite(&image, w.offset,
                       std::string_view(w.data).substr(0, keep));
          }
          break;
        }
        default:  // dropped entirely
          break;
      }
    }
    state->durable = std::move(image);
    state->pending.clear();
    state->logical_size = state->durable.size();
  }
}

uint64_t MemFileSystem::PendingBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [path, state] : files_) {
    for (const PendingWrite& w : state->pending) total += w.data.size();
  }
  return total;
}

// --- Fault injection ------------------------------------------------------

Result<size_t> FaultFile::AdmitWrite(size_t len) {
  ++writes_;
  bytes_written_ += len;
  if (options_.fail_after_write_bytes >= 0 &&
      int64_t(bytes_written_) > options_.fail_after_write_bytes) {
    return Status::Internal("fault: write failed (disk full)");
  }
  if (options_.short_write_at >= 0 &&
      int64_t(writes_) == options_.short_write_at) {
    // Persist a sector-aligned strict prefix, then report the failure. A
    // write that is already sector-aligned still loses its last sector —
    // a "short write" that persists everything would not be a fault.
    size_t aligned = len / kSectorBytes * kSectorBytes;
    if (aligned >= len && aligned > 0) aligned -= kSectorBytes;
    return aligned;
  }
  return len;
}

Status FaultFile::ReadAt(uint64_t offset, size_t n, std::string* out) const {
  return base_->ReadAt(offset, n, out);
}

Status FaultFile::WriteAt(uint64_t offset, std::string_view data) {
  Result<size_t> admit = AdmitWrite(data.size());
  if (!admit.ok()) return admit.status();
  if (*admit < data.size()) {
    Status s = base_->WriteAt(offset, data.substr(0, *admit));
    if (!s.ok()) return s;
    return Status::Internal("fault: short write");
  }
  return base_->WriteAt(offset, data);
}

Status FaultFile::Append(std::string_view data) {
  Result<size_t> admit = AdmitWrite(data.size());
  if (!admit.ok()) return admit.status();
  if (*admit < data.size()) {
    Status s = base_->Append(data.substr(0, *admit));
    if (!s.ok()) return s;
    return Status::Internal("fault: short write");
  }
  return base_->Append(data);
}

Status FaultFile::Sync() {
  ++syncs_;
  if (options_.fail_after_fsyncs >= 0 &&
      int64_t(syncs_) >= options_.fail_after_fsyncs) {
    return Status::Internal("fault: fsync failed");
  }
  return base_->Sync();
}

Status FaultFile::Truncate(uint64_t size) { return base_->Truncate(size); }

Result<uint64_t> FaultFile::Size() const { return base_->Size(); }

Result<std::unique_ptr<File>> FaultFileSystem::Open(const std::string& path) {
  GB_ASSIGN_OR_RETURN(std::unique_ptr<File> base, base_->Open(path));
  if (!path_filter_.empty() &&
      path.find(path_filter_) == std::string::npos) {
    return base;
  }
  return std::unique_ptr<File>(
      new FaultFile(std::move(base), options_));
}

}  // namespace storage
}  // namespace graphbench
