#ifndef GRAPHBENCH_STORAGE_OS_FILE_H_
#define GRAPHBENCH_STORAGE_OS_FILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/random.h"
#include "util/result.h"
#include "util/status.h"

namespace graphbench {
namespace storage {

/// CRC-32 (Castagnoli polynomial, software table). `init` chains/ seeds the
/// computation so callers can fold a per-generation salt into checksums.
uint32_t Crc32(std::string_view data, uint32_t init = 0);

/// The disk sector size fault injection tears writes at: a crash may
/// persist any 512-byte-aligned prefix of an unsynced write, never a
/// partial sector.
inline constexpr uint64_t kSectorBytes = 512;

/// Abstract random-access file. The durable storage layer (pager + WAL)
/// talks only to this interface so tests can substitute in-memory files
/// with crash/fault semantics for the real thing.
///
/// Durability contract: WriteAt/Append affect the file contents
/// immediately for subsequent reads, but survive a crash only once Sync()
/// has returned OK (the fsync barrier). Implementations may lose or tear
/// unsynced writes at `kSectorBytes` granularity on a crash.
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `n` bytes at `offset` into `*out` (replaced). Reading at
  /// or past EOF yields an empty/short result, not an error.
  virtual Status ReadAt(uint64_t offset, size_t n, std::string* out) const = 0;

  /// Writes `data` at `offset`, extending the file if needed (sparse holes
  /// read as zeros).
  virtual Status WriteAt(uint64_t offset, std::string_view data) = 0;

  /// Appends `data` at the current end of file.
  virtual Status Append(std::string_view data) = 0;

  /// Durability barrier: all previous writes survive a crash after this
  /// returns OK.
  virtual Status Sync() = 0;

  virtual Status Truncate(uint64_t size) = 0;

  virtual Result<uint64_t> Size() const = 0;
};

/// Abstract file namespace. Open() creates the file when absent.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  virtual Result<std::unique_ptr<File>> Open(const std::string& path) = 0;
  virtual bool Exists(const std::string& path) const = 0;
  virtual Status Remove(const std::string& path) = 0;

  /// Ensures `path` exists as a directory (one level; parents must exist).
  /// OK when it already does. In-memory namespaces have no directories and
  /// accept everything.
  virtual Status CreateDir(const std::string& path) {
    (void)path;
    return Status::OK();
  }
};

/// Real files via pread/pwrite/fsync. One process-wide instance.
class PosixFileSystem : public FileSystem {
 public:
  static PosixFileSystem* Default();

  Result<std::unique_ptr<File>> Open(const std::string& path) override;
  bool Exists(const std::string& path) const override;
  Status Remove(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
};

/// In-memory file system with crash semantics, the substrate under every
/// durability test. File contents outlive the File handles (they belong to
/// the file system object), so a test can drop a store, "crash the
/// machine", and reopen against the surviving bytes.
///
/// Each file tracks its durable image (as of the last Sync) plus the
/// ordered list of unsynced writes. Crash() resolves the unsynced writes
/// the way a dying page cache would: each one is independently kept,
/// dropped, or torn at a `kSectorBytes` boundary, chosen by the rng — so
/// replay code sees holes, torn record tails, and partially-flushed pages.
class MemFileSystem : public FileSystem {
 public:
  MemFileSystem() = default;

  Result<std::unique_ptr<File>> Open(const std::string& path) override;
  bool Exists(const std::string& path) const override;
  Status Remove(const std::string& path) override;

  /// Simulates a machine crash: every file reverts to its durable image
  /// with each unsynced write applied fully, partially (512-byte-aligned
  /// prefix), or not at all. Open File handles remain usable and see the
  /// post-crash contents.
  void Crash(Rng* rng);

  /// Total unsynced write bytes across all files (observable for tests).
  uint64_t PendingBytes() const;

 private:
  friend class MemFile;
  struct PendingWrite {
    uint64_t offset;
    std::string data;
  };
  struct FileState {
    std::string durable;              // contents as of the last Sync
    std::vector<PendingWrite> pending;  // unsynced writes, in issue order
    uint64_t logical_size = 0;          // durable + pending view
    // Renders durable+pending into a flat contents string.
    std::string Materialize() const;
  };

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<FileState>> files_;
};

/// Fault plan for FaultFile. Counters trigger once; -1 disarms.
struct FaultOptions {
  /// Fail the Nth Sync() call (1-based) and every one after it, leaving
  /// the pending writes unsynced (they are at the crash's mercy).
  int64_t fail_after_fsyncs = -1;
  /// On the Nth write (WriteAt/Append, 1-based), persist only a
  /// 512-byte-aligned prefix and return an error — the short-write fault.
  int64_t short_write_at = -1;
  /// Fail every write after `fail_after_write_bytes` total bytes written
  /// through this handle (disk-full style). -1 disarms.
  int64_t fail_after_write_bytes = -1;
};

/// Fault-injection File decorator wrapping any base File. All new
/// durability tests reuse this double to force short writes, torn
/// sectors, and fsync failures at scripted points.
class FaultFile : public File {
 public:
  FaultFile(std::unique_ptr<File> base, FaultOptions options)
      : base_(std::move(base)), options_(options) {}

  Status ReadAt(uint64_t offset, size_t n, std::string* out) const override;
  Status WriteAt(uint64_t offset, std::string_view data) override;
  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Truncate(uint64_t size) override;
  Result<uint64_t> Size() const override;

  uint64_t syncs_attempted() const { return syncs_; }
  uint64_t writes_attempted() const { return writes_; }

 private:
  // Applies the write-fault schedule; returns the (possibly shortened)
  // number of bytes to persist, or an error without any write.
  Result<size_t> AdmitWrite(size_t len);

  std::unique_ptr<File> base_;
  FaultOptions options_;
  uint64_t syncs_ = 0;
  uint64_t writes_ = 0;
  uint64_t bytes_written_ = 0;
};

/// FileSystem decorator applying one FaultOptions schedule to every file
/// it opens whose path contains `path_filter` (empty matches all);
/// counters are per-file. Non-matching paths pass through unwrapped, so a
/// test can fault only the WAL while the page file behaves.
class FaultFileSystem : public FileSystem {
 public:
  FaultFileSystem(FileSystem* base, FaultOptions options,
                  std::string path_filter = "")
      : base_(base), options_(options),
        path_filter_(std::move(path_filter)) {}

  Result<std::unique_ptr<File>> Open(const std::string& path) override;
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  Status Remove(const std::string& path) override {
    return base_->Remove(path);
  }

 private:
  FileSystem* base_;
  FaultOptions options_;
  std::string path_filter_;
};

}  // namespace storage
}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_OS_FILE_H_
