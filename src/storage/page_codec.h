#ifndef GRAPHBENCH_STORAGE_PAGE_CODEC_H_
#define GRAPHBENCH_STORAGE_PAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace graphbench {
namespace storage {

/// Fixed-width little-endian-native integer packing shared by the WAL,
/// pager, and paged containers. (Files are not interchanged across
/// architectures, so native byte order is part of the format.)

inline void PutU16(std::string* dst, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint16_t GetU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

inline uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

/// In-place variants for page buffers.
inline void StoreU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }
inline void StoreU32(char* p, uint32_t v) { std::memcpy(p, &v, 4); }
inline void StoreU64(char* p, uint64_t v) { std::memcpy(p, &v, 8); }

/// Bounds-checked cursor reads for record bodies; false on truncation.
inline bool ReadU8(std::string_view* src, uint8_t* v) {
  if (src->size() < 1) return false;
  *v = uint8_t((*src)[0]);
  src->remove_prefix(1);
  return true;
}

inline bool ReadU16(std::string_view* src, uint16_t* v) {
  if (src->size() < 2) return false;
  *v = GetU16(src->data());
  src->remove_prefix(2);
  return true;
}

inline bool ReadU32(std::string_view* src, uint32_t* v) {
  if (src->size() < 4) return false;
  *v = GetU32(src->data());
  src->remove_prefix(4);
  return true;
}

inline bool ReadU64(std::string_view* src, uint64_t* v) {
  if (src->size() < 8) return false;
  *v = GetU64(src->data());
  src->remove_prefix(8);
  return true;
}

inline bool ReadBytes(std::string_view* src, size_t n, std::string_view* out) {
  if (src->size() < n) return false;
  *out = src->substr(0, n);
  src->remove_prefix(n);
  return true;
}

}  // namespace storage
}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_PAGE_CODEC_H_
