#include "storage/paged_table.h"

#include <algorithm>
#include <cstring>

#include "storage/heap_table.h"
#include "storage/page_codec.h"

namespace graphbench {

using storage::GetU32;
using storage::GetU64;
using storage::kPageDataSize;
using storage::PageRef;
using storage::PutU16;
using storage::PutU32;
using storage::PutU64;
using storage::ReadBytes;
using storage::ReadU16;
using storage::ReadU32;
using storage::ReadU64;
using storage::ReadU8;
using storage::StoreU32;
using storage::StoreU64;

namespace {

constexpr uint64_t kTableMagic = 0x4c42544247ull;  // "GBTBL"
// Slot flags.
constexpr uint8_t kSlotUnused = 0;
constexpr uint8_t kSlotLive = 1;
constexpr uint8_t kSlotOverflow = 2;  // OR'd with kSlotLive
constexpr uint8_t kSlotTombstone = 4;
// Slot payload starts after [flags u8][pad u8][len u16].
constexpr size_t kSlotHeader = 4;
constexpr size_t kInlineCapacity = PagedTable::kSlotBytes - kSlotHeader;
// Directory page: [next u64][count u32] + page ids.
constexpr size_t kDirHeader = 12;
constexpr size_t kDirCapacity = (kPageDataSize - kDirHeader) / 8;

std::string SerializeRow(const Row& row) {
  std::string out;
  PutU16(&out, uint16_t(row.size()));
  for (const Value& v : row) {
    out.push_back(char(v.type()));
    switch (v.type()) {
      case Value::Type::kNull:
        break;
      case Value::Type::kBool:
        out.push_back(v.as_bool() ? 1 : 0);
        break;
      case Value::Type::kInt:
        PutU64(&out, uint64_t(v.as_int()));
        break;
      case Value::Type::kDouble: {
        double d = v.as_double();
        uint64_t bits;
        std::memcpy(&bits, &d, 8);
        PutU64(&out, bits);
        break;
      }
      case Value::Type::kString:
        PutU32(&out, uint32_t(v.as_string().size()));
        out.append(v.as_string());
        break;
    }
  }
  return out;
}

Status DeserializeRow(std::string_view buf, Row* row) {
  std::string_view cursor = buf;
  uint16_t ncols;
  if (!ReadU16(&cursor, &ncols)) {
    return Status::Corruption("paged_table: bad row header");
  }
  row->clear();
  row->reserve(ncols);
  for (uint16_t i = 0; i < ncols; ++i) {
    uint8_t type;
    if (!ReadU8(&cursor, &type)) {
      return Status::Corruption("paged_table: truncated row");
    }
    switch (Value::Type(type)) {
      case Value::Type::kNull:
        row->emplace_back();
        break;
      case Value::Type::kBool: {
        uint8_t b;
        if (!ReadU8(&cursor, &b)) {
          return Status::Corruption("paged_table: truncated bool");
        }
        row->emplace_back(b != 0);
        break;
      }
      case Value::Type::kInt: {
        uint64_t bits;
        if (!ReadU64(&cursor, &bits)) {
          return Status::Corruption("paged_table: truncated int");
        }
        row->emplace_back(int64_t(bits));
        break;
      }
      case Value::Type::kDouble: {
        uint64_t bits;
        if (!ReadU64(&cursor, &bits)) {
          return Status::Corruption("paged_table: truncated double");
        }
        double d;
        std::memcpy(&d, &bits, 8);
        row->emplace_back(d);
        break;
      }
      case Value::Type::kString: {
        uint32_t len;
        std::string_view bytes;
        if (!ReadU32(&cursor, &len) || !ReadBytes(&cursor, len, &bytes)) {
          return Status::Corruption("paged_table: truncated string");
        }
        row->emplace_back(std::string(bytes));
        break;
      }
      default:
        return Status::Corruption("paged_table: unknown value type");
    }
  }
  return Status::OK();
}

uint64_t RowFootprint(const Row& row) {
  uint64_t total = 16;
  for (const Value& v : row) total += ValueFootprint(v);
  return total;
}

}  // namespace

PagedTable::PagedTable(storage::Pager* pager, TableSchema schema)
    : Table(std::move(schema)), pager_(pager) {}

Result<std::unique_ptr<PagedTable>> PagedTable::Create(storage::Pager* pager,
                                                       TableSchema schema) {
  std::unique_ptr<PagedTable> table(
      new PagedTable(pager, std::move(schema)));
  GB_RETURN_IF_ERROR(table->InitFresh());
  return table;
}

Result<std::unique_ptr<PagedTable>> PagedTable::Attach(storage::Pager* pager,
                                                       uint64_t meta_page,
                                                       TableSchema schema) {
  std::unique_ptr<PagedTable> table(
      new PagedTable(pager, std::move(schema)));
  GB_RETURN_IF_ERROR(table->LoadMeta(meta_page));
  return table;
}

Status PagedTable::InitFresh() {
  pager_->BeginOp();
  auto meta_or = pager_->Allocate();
  if (!meta_or.ok()) {
    pager_->AbortOp();
    return meta_or.status();
  }
  meta_page_ = meta_or->page_id();
  Status s = WriteMetaLocked();
  if (!s.ok()) {
    pager_->AbortOp();
    return s;
  }
  return pager_->CommitOp();
}

Status PagedTable::LoadMeta(uint64_t meta_page) {
  GB_ASSIGN_OR_RETURN(PageRef meta, pager_->Fetch(meta_page));
  if (GetU64(meta.data()) != kTableMagic) {
    return Status::Corruption("paged_table: bad meta page");
  }
  meta_page_ = meta_page;
  next_row_ = GetU64(meta.data() + 8);
  live_rows_ = GetU64(meta.data() + 16);
  bytes_ = GetU64(meta.data() + 24);
  uint64_t dir = GetU64(meta.data() + 32);
  // The chain is newest-dir-page-first (GrowLocked pushes at the head),
  // but ids within a page are in allocation order. Collect per-page runs
  // and flatten them oldest-run-first so slot_pages_ matches write-time
  // order — otherwise RowId / kSlotsPerPage resolves to the wrong page
  // once the table spans more than one directory page.
  std::vector<std::vector<uint64_t>> runs;
  while (dir != 0) {
    GB_ASSIGN_OR_RETURN(PageRef page, pager_->Fetch(dir));
    uint32_t count = GetU32(page.data() + 8);
    if (count > kDirCapacity) {
      return Status::Corruption("paged_table: bad directory page");
    }
    std::vector<uint64_t> run;
    run.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      run.push_back(GetU64(page.data() + kDirHeader + i * 8));
    }
    runs.push_back(std::move(run));
    dir = GetU64(page.data());
  }
  slot_pages_.clear();
  for (auto it = runs.rbegin(); it != runs.rend(); ++it) {
    slot_pages_.insert(slot_pages_.end(), it->begin(), it->end());
  }
  return Status::OK();
}

Status PagedTable::WriteMetaLocked() {
  GB_ASSIGN_OR_RETURN(PageRef meta, pager_->Fetch(meta_page_));
  meta.MarkDirty();
  char* p = meta.data();
  StoreU64(p, kTableMagic);
  StoreU64(p + 8, next_row_);
  StoreU64(p + 16, live_rows_);
  StoreU64(p + 24, bytes_);
  // first_dir (p + 32) is maintained by GrowLocked.
  return Status::OK();
}

Status PagedTable::GrowLocked() {
  GB_ASSIGN_OR_RETURN(PageRef slots, pager_->Allocate());
  slots.MarkDirty();
  std::memset(slots.data(), 0, kPageDataSize);
  uint64_t slots_id = slots.page_id();

  // Append to the directory chain: new dir pages are pushed at the head
  // so we never walk the chain on the write path; LoadMeta walks the
  // chain newest-first and reverses the run order to recover allocation
  // order.
  GB_ASSIGN_OR_RETURN(PageRef meta, pager_->Fetch(meta_page_));
  uint64_t head = GetU64(meta.data() + 32);
  if (head != 0) {
    GB_ASSIGN_OR_RETURN(PageRef dir, pager_->Fetch(head));
    uint32_t count = GetU32(dir.data() + 8);
    if (count < kDirCapacity) {
      dir.MarkDirty();
      StoreU64(dir.data() + kDirHeader + count * 8, slots_id);
      StoreU32(dir.data() + 8, count + 1);
      slot_pages_.push_back(slots_id);
      return Status::OK();
    }
  }
  GB_ASSIGN_OR_RETURN(PageRef dir, pager_->Allocate());
  dir.MarkDirty();
  std::memset(dir.data(), 0, kPageDataSize);
  StoreU64(dir.data(), head);
  StoreU32(dir.data() + 8, 1);
  StoreU64(dir.data() + kDirHeader, slots_id);
  meta.MarkDirty();
  StoreU64(meta.data() + 32, dir.page_id());
  slot_pages_.push_back(slots_id);
  return Status::OK();
}

Status PagedTable::WriteSlot(RowId id, const Row& row, bool live) {
  uint64_t page_index = id / kSlotsPerPage;
  size_t slot = size_t(id % kSlotsPerPage);
  GB_ASSIGN_OR_RETURN(PageRef page, pager_->Fetch(slot_pages_[page_index]));
  page.MarkDirty();
  char* p = page.data() + slot * kSlotBytes;
  if (!live) {
    p[0] = char(kSlotTombstone);
    p[1] = 0;
    storage::StoreU16(p + 2, 0);
    std::memset(p + kSlotHeader, 0, kInlineCapacity);
    return Status::OK();
  }
  std::string payload = SerializeRow(row);
  if (payload.size() <= kInlineCapacity) {
    p[0] = char(kSlotLive);
    p[1] = 0;
    storage::StoreU16(p + 2, uint16_t(payload.size()));
    std::memcpy(p + kSlotHeader, payload.data(), payload.size());
    std::memset(p + kSlotHeader + payload.size(), 0,
                kInlineCapacity - payload.size());
  } else {
    // A replaced overflow chain is leaked — no free list (DESIGN.md §12).
    GB_ASSIGN_OR_RETURN(uint64_t first,
                        storage::WriteOverflowChain(pager_, payload));
    // The overflow writes may have evicted and reloaded this slot page;
    // re-fetch rather than trusting the old frame pointer.
    GB_ASSIGN_OR_RETURN(page, pager_->Fetch(slot_pages_[page_index]));
    page.MarkDirty();
    p = page.data() + slot * kSlotBytes;
    p[0] = char(kSlotLive | kSlotOverflow);
    p[1] = 0;
    storage::StoreU16(p + 2, 0);
    StoreU64(p + kSlotHeader, first);
    StoreU64(p + kSlotHeader + 8, payload.size());
    std::memset(p + kSlotHeader + 16, 0, kInlineCapacity - 16);
  }
  return Status::OK();
}

Status PagedTable::ReadSlot(RowId id, Row* row, bool* live) const {
  uint64_t page_index = id / kSlotsPerPage;
  size_t slot = size_t(id % kSlotsPerPage);
  if (page_index >= slot_pages_.size()) {
    return Status::NotFound("row id out of range");
  }
  GB_ASSIGN_OR_RETURN(PageRef page, pager_->Fetch(slot_pages_[page_index]));
  const char* p = page.data() + slot * kSlotBytes;
  uint8_t flags = uint8_t(p[0]);
  if (!(flags & kSlotLive)) {
    *live = false;
    return Status::OK();
  }
  *live = true;
  if (row == nullptr) return Status::OK();
  if (flags & kSlotOverflow) {
    uint64_t first = GetU64(p + kSlotHeader);
    uint64_t len = GetU64(p + kSlotHeader + 8);
    GB_ASSIGN_OR_RETURN(
        std::string payload,
        storage::ReadOverflowChain(
            const_cast<storage::Pager*>(pager_), first, len));
    return DeserializeRow(payload, row);
  }
  uint16_t len = storage::GetU16(p + 2);
  return DeserializeRow(std::string_view(p + kSlotHeader, len), row);
}

Status PagedTable::RunOp(const std::function<Status()>& body) {
  pager_->BeginOp();
  Status s = body();
  if (!s.ok()) {
    pager_->AbortOp();
    return s;
  }
  return pager_->CommitOp();
}

Result<RowId> PagedTable::Insert(const Row& row) {
  if (row.size() != schema_.columns().size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  RowId id = next_row_;
  size_t dir_size_before = slot_pages_.size();
  uint64_t live_before = live_rows_, bytes_before = bytes_;
  Status s = RunOp([&] {
    if (id / kSlotsPerPage >= slot_pages_.size()) {
      GB_RETURN_IF_ERROR(GrowLocked());
    }
    GB_RETURN_IF_ERROR(WriteSlot(id, row, /*live=*/true));
    next_row_ = id + 1;
    ++live_rows_;
    bytes_ += RowFootprint(row);
    return WriteMetaLocked();
  });
  if (!s.ok()) {
    slot_pages_.resize(dir_size_before);
    next_row_ = id;
    live_rows_ = live_before;
    bytes_ = bytes_before;
    return s;
  }
  return id;
}

Status PagedTable::Get(RowId id, Row* row) const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  if (id >= next_row_) return Status::NotFound("row id out of range");
  bool live = false;
  GB_RETURN_IF_ERROR(ReadSlot(id, row, &live));
  if (!live) return Status::NotFound("row deleted");
  return Status::OK();
}

Status PagedTable::GetColumn(RowId id, size_t column, Value* out) const {
  if (column >= schema_.columns().size()) {
    return Status::InvalidArgument("column out of range");
  }
  Row row;
  GB_RETURN_IF_ERROR(Get(id, &row));
  *out = std::move(row[column]);
  return Status::OK();
}

Status PagedTable::Update(RowId id, const Row& row) {
  if (row.size() != schema_.columns().size()) {
    return Status::InvalidArgument("row arity does not match schema");
  }
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  if (id >= next_row_) return Status::NotFound("row id out of range");
  bool live = false;
  Row old;
  GB_RETURN_IF_ERROR(ReadSlot(id, &old, &live));
  if (!live) return Status::NotFound("row deleted");
  uint64_t bytes_before = bytes_;
  Status s = RunOp([&] {
    GB_RETURN_IF_ERROR(WriteSlot(id, row, /*live=*/true));
    bytes_ += RowFootprint(row);
    bytes_ -= std::min(bytes_, RowFootprint(old));
    return WriteMetaLocked();
  });
  if (!s.ok()) bytes_ = bytes_before;
  return s;
}

Status PagedTable::Delete(RowId id) {
  std::unique_lock<obs::TimedSharedMutex> lock(mu_);
  if (id >= next_row_) return Status::NotFound("row id out of range");
  bool live = false;
  Row old;
  GB_RETURN_IF_ERROR(ReadSlot(id, &old, &live));
  if (!live) return Status::NotFound("row deleted");
  uint64_t live_before = live_rows_, bytes_before = bytes_;
  Status s = RunOp([&] {
    GB_RETURN_IF_ERROR(WriteSlot(id, Row{}, /*live=*/false));
    --live_rows_;
    bytes_ -= std::min(bytes_, RowFootprint(old));
    return WriteMetaLocked();
  });
  if (!s.ok()) {
    live_rows_ = live_before;
    bytes_ = bytes_before;
  }
  return s;
}

uint64_t PagedTable::row_count() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return live_rows_;
}

uint64_t PagedTable::ApproximateSizeBytes() const {
  std::shared_lock<obs::TimedSharedMutex> lock(mu_);
  return bytes_;
}

/// Snapshot scan (mirrors the paged B+-tree iterator): rows are
/// materialized under the shared latch so the scan never sees a
/// half-committed mutation.
class PagedTable::Iter : public TableScanIterator {
 public:
  explicit Iter(std::vector<std::pair<RowId, Row>> rows)
      : rows_(std::move(rows)) {}

  bool Valid() const override { return pos_ < rows_.size(); }
  void Next() override { ++pos_; }
  RowId row_id() const override { return rows_[pos_].first; }
  void GetRow(Row* row) const override { *row = rows_[pos_].second; }

 private:
  std::vector<std::pair<RowId, Row>> rows_;
  size_t pos_ = 0;
};

std::unique_ptr<TableScanIterator> PagedTable::NewScanIterator() const {
  std::vector<std::pair<RowId, Row>> rows;
  {
    std::shared_lock<obs::TimedSharedMutex> lock(mu_);
    rows.reserve(live_rows_);
    for (RowId id = 0; id < next_row_; ++id) {
      Row row;
      bool live = false;
      if (!ReadSlot(id, &row, &live).ok() || !live) continue;
      rows.emplace_back(id, std::move(row));
    }
  }
  return std::make_unique<Iter>(std::move(rows));
}

}  // namespace graphbench
