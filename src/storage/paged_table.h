#ifndef GRAPHBENCH_STORAGE_PAGED_TABLE_H_
#define GRAPHBENCH_STORAGE_PAGED_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/lock_timer.h"
#include "storage/pager.h"
#include "storage/table.h"

namespace graphbench {

/// Durable slotted table over the buffer-pool pager: the `--durable`
/// backing for both relational storage modes (DESIGN.md §12).
///
/// Rows live in fixed 128-byte slots so RowIds stay dense and stable
/// (id = slot_page_index * kSlotsPerPage + slot, exactly HeapTable's
/// scheme) no matter how row sizes change across updates: a row whose
/// serialization outgrows its slot moves to an overflow chain while the
/// slot keeps its place. Slot pages are registered in a directory chain
/// hanging off the table's meta page; several tables share one pager
/// (one db file per Database). Deletes tombstone the slot; ids are never
/// reused. Each Insert/Update/Delete is one pager op, so every mutation
/// is one atomic WAL record.
class PagedTable : public Table {
 public:
  static constexpr size_t kSlotBytes = 128;
  static constexpr size_t kSlotsPerPage = 31;  // 16B page hdr + 31*128 ≤ 4080

  /// Creates a fresh table in `pager` (allocates its meta page).
  static Result<std::unique_ptr<PagedTable>> Create(storage::Pager* pager,
                                                    TableSchema schema);
  /// Re-attaches to a table previously created at `meta_page` (the
  /// storage-level reopen path used by recovery tests).
  static Result<std::unique_ptr<PagedTable>> Attach(storage::Pager* pager,
                                                    uint64_t meta_page,
                                                    TableSchema schema);

  Result<RowId> Insert(const Row& row) override;
  Status Get(RowId id, Row* row) const override;
  Status GetColumn(RowId id, size_t column, Value* out) const override;
  Status Update(RowId id, const Row& row) override;
  Status Delete(RowId id) override;
  std::unique_ptr<TableScanIterator> NewScanIterator() const override;
  uint64_t row_count() const override;
  uint64_t ApproximateSizeBytes() const override;

  uint64_t meta_page() const { return meta_page_; }

 private:
  class Iter;

  PagedTable(storage::Pager* pager, TableSchema schema);

  Status InitFresh();
  Status LoadMeta(uint64_t meta_page);
  Status WriteMetaLocked();
  /// Appends a fresh slot page to the directory (inside the current op).
  Status GrowLocked();
  /// Serializes `row` into the slot, spilling to an overflow chain when
  /// it doesn't fit inline (inside the current op).
  Status WriteSlot(RowId id, const Row& row, bool live);
  Status ReadSlot(RowId id, Row* row, bool* live) const;
  /// One mutation = one pager op; shared by Insert/Update/Delete.
  Status RunOp(const std::function<Status()>& body);

  storage::Pager* pager_;
  uint64_t meta_page_ = 0;

  mutable obs::TimedSharedMutex mu_{"storage.lock_wait_us"};
  std::vector<uint64_t> slot_pages_;  // directory cache, chain order
  uint64_t next_row_ = 0;             // dense id counter (includes deleted)
  uint64_t live_rows_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_PAGED_TABLE_H_
