#include "storage/pager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <vector>

#include "storage/page_codec.h"

namespace graphbench {
namespace storage {

namespace {

constexpr char kDbMagic[8] = {'G', 'B', 'P', 'A', 'G', 'E', '1', 0};
constexpr uint32_t kDbVersion = 1;
// Two header slots inside page 0, written alternately so a torn header
// write can never destroy the last good copy.
constexpr uint64_t kHeaderSlotBytes = 44;
constexpr uint64_t kHeaderSlotOffsets[2] = {0, 2048};

// WAL record types owned by the pager.
constexpr uint8_t kOpRecord = 1;

// Sub-record tags inside an op record's body.
constexpr uint8_t kSubImage = 1;  // [page_id u64][kPageDataSize bytes]
constexpr uint8_t kSubDelta = 2;  // [page_id u64][off u16][len u16][bytes]

struct HeaderSlot {
  uint64_t generation = 0;
  uint64_t checkpoint_lsn = 0;
  uint64_t page_count = 0;
};

std::string SerializeHeaderSlot(const HeaderSlot& slot) {
  std::string out(kDbMagic, sizeof(kDbMagic));
  PutU32(&out, kDbVersion);
  PutU32(&out, 0);  // reserved
  PutU64(&out, slot.generation);
  PutU64(&out, slot.checkpoint_lsn);
  PutU64(&out, slot.page_count);
  PutU32(&out, Crc32(out, 0));
  return out;
}

bool ParseHeaderSlot(std::string_view buf, HeaderSlot* slot) {
  if (buf.size() < kHeaderSlotBytes) return false;
  if (std::memcmp(buf.data(), kDbMagic, sizeof(kDbMagic)) != 0) return false;
  if (GetU32(buf.data() + 8) != kDbVersion) return false;
  if (Crc32(buf.substr(0, 40), 0) != GetU32(buf.data() + 40)) return false;
  slot->generation = GetU64(buf.data() + 16);
  slot->checkpoint_lsn = GetU64(buf.data() + 24);
  slot->page_count = GetU64(buf.data() + 32);
  return true;
}

uint32_t PageCrc(const char* data_area, uint64_t page_lsn) {
  return Crc32(std::string_view(data_area, kPageDataSize),
               uint32_t(page_lsn) ^ uint32_t(page_lsn >> 32));
}

bool AllZero(std::string_view buf) {
  for (char c : buf) {
    if (c != 0) return false;
  }
  return true;
}

}  // namespace

uint64_t Pager::SaltForGeneration(uint64_t generation) {
  // Deterministic per-generation salt (SQLite-style): stale records left
  // behind by a WAL reset that never hit the platter carry the old
  // generation's CRC seed and fail validation on replay.
  uint64_t salt = generation * 0x9E3779B97F4A7C15ull;
  salt ^= salt >> 32;
  salt ^= 0xD1B54A32D192ED03ull;
  return salt != 0 ? salt : 1;
}

void Pager::SealPage(Frame* frame, std::string* out) {
  out->assign(frame->data, kPageSize);
  StoreU64(out->data(), frame->page_lsn);
  StoreU32(out->data() + 8,
           PageCrc(frame->data + kPageHeaderBytes, frame->page_lsn));
  StoreU32(out->data() + 12, 0);
}

Pager::Pager(FileSystem* fs, std::unique_ptr<File> db,
             const PagerOptions& opts)
    : fs_(fs), db_(std::move(db)), options_(opts) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  evictions_ = reg.GetCounter("pager.evictions");
  flushes_ = reg.GetCounter("pager.flushes");
  checkpoints_ = reg.GetCounter("pager.checkpoints");
  ops_ = reg.GetCounter("pager.ops");
  cached_pages_ = reg.GetGauge("pager.cached_pages");
}

Pager::~Pager() = default;

Result<std::unique_ptr<Pager>> Pager::Open(FileSystem* fs,
                                           const std::string& db_path,
                                           const std::string& wal_path,
                                           const PagerOptions& options) {
  GB_ASSIGN_OR_RETURN(std::unique_ptr<File> db, fs->Open(db_path));
  GB_ASSIGN_OR_RETURN(uint64_t size, db->Size());
  std::unique_ptr<Pager> pager(new Pager(fs, std::move(db), options));
  std::lock_guard<std::mutex> lock(pager->mu_);
  if (size == 0) {
    // Fresh database: publish generation 1, then start its log.
    GB_RETURN_IF_ERROR(pager->WriteHeaderLocked());
    GB_RETURN_IF_ERROR(pager->db_->Sync());
    GB_ASSIGN_OR_RETURN(
        pager->wal_, Wal::Create(fs, wal_path, SaltForGeneration(1)));
    return pager;
  }

  std::string page0;
  GB_RETURN_IF_ERROR(pager->db_->ReadAt(0, kPageSize, &page0));
  page0.resize(kPageSize, '\0');
  HeaderSlot slots[2];
  bool valid[2];
  for (int i = 0; i < 2; ++i) {
    valid[i] = ParseHeaderSlot(
        std::string_view(page0).substr(kHeaderSlotOffsets[i]), &slots[i]);
  }
  int chosen = -1;
  for (int i = 0; i < 2; ++i) {
    if (valid[i] &&
        (chosen < 0 || slots[i].generation > slots[chosen].generation)) {
      chosen = i;
    }
  }
  if (chosen < 0) {
    return Status::Corruption("pager: no valid header slot in " + db_path);
  }
  pager->generation_ = slots[chosen].generation;
  pager->checkpoint_lsn_ = slots[chosen].checkpoint_lsn;
  pager->page_count_ = std::max<uint64_t>(slots[chosen].page_count, 1);
  // Next header write goes to the slot NOT holding the chosen copy.
  pager->header_slot_b_next_ = (chosen == 0);
  GB_RETURN_IF_ERROR(pager->RecoverLocked(wal_path));
  return pager;
}

Status Pager::RecoverLocked(const std::string& wal_path) {
  auto started = std::chrono::steady_clock::now();
  WalScanResult scan;
  GB_ASSIGN_OR_RETURN(
      wal_, Wal::Open(fs_, wal_path, SaltForGeneration(generation_), &scan));
  for (const WalRecord& record : scan.records) {
    if (record.type != kOpRecord) continue;
    std::string_view cursor(record.body);
    while (!cursor.empty()) {
      uint8_t tag;
      uint64_t page_id;
      if (!ReadU8(&cursor, &tag) || !ReadU64(&cursor, &page_id)) {
        return Status::Corruption("pager: malformed op sub-record");
      }
      if (page_id == 0) {
        return Status::Corruption("pager: op record touches header page");
      }
      page_count_ = std::max(page_count_, page_id + 1);
      GB_ASSIGN_OR_RETURN(Frame * frame,
                          FetchLocked(page_id, /*for_recovery=*/true));
      if (tag == kSubImage) {
        std::string_view image;
        if (!ReadBytes(&cursor, kPageDataSize, &image)) {
          return Status::Corruption("pager: truncated page image");
        }
        // Full-page images apply unconditionally: they are the repair
        // path for pages torn by an interrupted flush.
        std::memcpy(frame->data + kPageHeaderBytes, image.data(),
                    kPageDataSize);
        frame->page_lsn = record.lsn;
        frame->dirty = true;
        frame->image_logged = true;
      } else if (tag == kSubDelta) {
        uint16_t off, len;
        std::string_view bytes;
        if (!ReadU16(&cursor, &off) || !ReadU16(&cursor, &len) ||
            off + size_t(len) > kPageDataSize ||
            !ReadBytes(&cursor, len, &bytes)) {
          return Status::Corruption("pager: truncated page delta");
        }
        // LSN-gated so redo is idempotent against pages that were
        // flushed (and stamped) before the crash.
        if (record.lsn > frame->page_lsn) {
          std::memcpy(frame->data + kPageHeaderBytes + off, bytes.data(),
                      len);
          frame->page_lsn = record.lsn;
          frame->dirty = true;
          frame->image_logged = true;
        }
      } else {
        return Status::Corruption("pager: unknown op sub-record tag");
      }
    }
    ++recovered_records_;
  }
  wal_->AdvanceLsn(std::max(checkpoint_lsn_, scan.last_lsn) + 1);
  recovery_micros_ = uint64_t(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("wal.recovered_records")->Increment(recovered_records_);
  reg.GetCounter("wal.truncated_bytes")->Increment(scan.truncated_bytes);
  reg.GetGauge("pager.recovery_ms")->Set(int64_t(recovery_micros_ / 1000));
  return Status::OK();
}

Result<Pager::Frame*> Pager::FetchLocked(uint64_t page_id,
                                         bool for_recovery) {
  if (page_id == 0) {
    return Status::InvalidArgument("pager: page 0 is the header page");
  }
  if (!for_recovery && page_id >= page_count_) {
    return Status::InvalidArgument("pager: page id out of range");
  }
  auto it = frames_.find(page_id);
  if (it != frames_.end()) return it->second.get();

  GB_RETURN_IF_ERROR(EvictIfNeededLocked());
  auto frame = std::make_unique<Frame>();
  frame->page_id = page_id;
  std::memset(frame->data, 0, kPageSize);

  std::string buf;
  GB_RETURN_IF_ERROR(db_->ReadAt(page_id * kPageSize, kPageSize, &buf));
  if (buf.size() == kPageSize) {
    uint64_t page_lsn = GetU64(buf.data());
    uint32_t stored_crc = GetU32(buf.data() + 8);
    bool ok;
    if (page_lsn == 0 && stored_crc == 0) {
      // Never-sealed page: valid only when actually all zeros.
      ok = AllZero(buf);
    } else {
      ok = PageCrc(buf.data() + kPageHeaderBytes, page_lsn) == stored_crc;
    }
    if (ok) {
      std::memcpy(frame->data, buf.data(), kPageSize);
      frame->page_lsn = page_lsn;
    } else if (!for_recovery) {
      return Status::Corruption("pager: checksum mismatch on page " +
                                std::to_string(page_id));
    }
    // During recovery a torn page stays zeroed; the WAL's full-page
    // image for it (guaranteed by first-touch image logging) repairs it.
  }
  // Short read: page allocated but never flushed — virgin zeros.

  Frame* raw = frame.get();
  frames_.emplace(page_id, std::move(frame));
  cached_pages_->Set(int64_t(frames_.size()));
  return raw;
}

Status Pager::FlushFrameLocked(Frame* frame) {
  // WAL rule: the log covering this page's last mutation must be durable
  // before the page itself is written in place.
  GB_RETURN_IF_ERROR(wal_->SyncTo(frame->page_lsn));
  std::string sealed;
  SealPage(frame, &sealed);
  GB_RETURN_IF_ERROR(db_->WriteAt(frame->page_id * kPageSize, sealed));
  frame->dirty = false;
  flushes_->Increment();
  return Status::OK();
}

Status Pager::EvictIfNeededLocked() {
  while (frames_.size() >= options_.cache_pages && !lru_.empty()) {
    uint64_t victim_id = lru_.back();
    auto it = frames_.find(victim_id);
    Frame* victim = it->second.get();
    if (victim->dirty) GB_RETURN_IF_ERROR(FlushFrameLocked(victim));
    lru_.pop_back();
    frames_.erase(it);
    evictions_->Increment();
  }
  cached_pages_->Set(int64_t(frames_.size()));
  return Status::OK();
}

Status Pager::WriteHeaderLocked() {
  HeaderSlot slot;
  slot.generation = generation_;
  slot.checkpoint_lsn = checkpoint_lsn_;
  slot.page_count = page_count_;
  uint64_t offset = kHeaderSlotOffsets[header_slot_b_next_ ? 1 : 0];
  GB_RETURN_IF_ERROR(db_->WriteAt(offset, SerializeHeaderSlot(slot)));
  header_slot_b_next_ = !header_slot_b_next_;
  return Status::OK();
}

void Pager::PinLocked(Frame* frame) {
  ++frame->pins;
  if (frame->in_lru) {
    lru_.erase(frame->lru_pos);
    frame->in_lru = false;
  }
}

void Pager::UnpinLocked(Frame* frame) {
  --frame->pins;
  if (frame->pins == 0 && !frame->in_lru) {
    lru_.push_front(frame->page_id);
    frame->lru_pos = lru_.begin();
    frame->in_lru = true;
  }
}

void Pager::Unpin(void* frame) {
  std::lock_guard<std::mutex> lock(mu_);
  UnpinLocked(static_cast<Frame*>(frame));
}

Result<PageRef> Pager::Fetch(uint64_t page_id) {
  std::lock_guard<std::mutex> lock(mu_);
  GB_ASSIGN_OR_RETURN(Frame * frame,
                      FetchLocked(page_id, /*for_recovery=*/false));
  PinLocked(frame);
  return PageRef(this, frame, page_id);
}

Result<PageRef> Pager::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  GB_RETURN_IF_ERROR(EvictIfNeededLocked());
  uint64_t page_id = page_count_++;
  auto frame = std::make_unique<Frame>();
  frame->page_id = page_id;
  std::memset(frame->data, 0, kPageSize);
  Frame* raw = frame.get();
  frames_.emplace(page_id, std::move(frame));
  cached_pages_->Set(int64_t(frames_.size()));
  PinLocked(raw);
  return PageRef(this, raw, page_id);
}

uint64_t Pager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

void Pager::BeginOp() {
  op_mu_.lock();
  in_op_ = true;
}

void Pager::MarkDirtyFrame(void* frame_ptr) {
  Frame* frame = static_cast<Frame*>(frame_ptr);
  if (!in_op_ || frame->touched_in_op) return;
  frame->pre_image.assign(frame->data + kPageHeaderBytes, kPageDataSize);
  frame->touched_in_op = true;
  op_frames_[frame->page_id] = frame;
  // Op pin: the frame must survive (unevicted) until Commit/AbortOp even
  // if the caller drops its PageRef early.
  std::lock_guard<std::mutex> lock(mu_);
  PinLocked(frame);
}

Status Pager::CommitOp() {
  if (degraded_) {
    AbortOp();
    return Status::Internal(
        "pager: degraded after failed checkpoint; commits refused");
  }
  std::string body;
  std::vector<Frame*> changed;
  std::vector<Frame*> imaged;
  for (auto& [page_id, frame] : op_frames_) {
    const char* now = frame->data + kPageHeaderBytes;
    const std::string& was = frame->pre_image;
    if (std::memcmp(now, was.data(), kPageDataSize) == 0) {
      continue;  // touched but unchanged: nothing to log
    }
    if (!frame->image_logged) {
      // First touch this WAL generation: log the full image so a flush
      // torn mid-page is repairable on replay.
      body.push_back(char(kSubImage));
      PutU64(&body, page_id);
      body.append(now, kPageDataSize);
      imaged.push_back(frame);
    } else {
      size_t first = 0;
      while (first < kPageDataSize && now[first] == was[first]) ++first;
      size_t last = kPageDataSize;
      while (last > first && now[last - 1] == was[last - 1]) --last;
      body.push_back(char(kSubDelta));
      PutU64(&body, page_id);
      PutU16(&body, uint16_t(first));
      PutU16(&body, uint16_t(last - first));
      body.append(now + first, last - first);
    }
    changed.push_back(frame);
  }

  auto cleanup = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [page_id, frame] : op_frames_) {
      frame->touched_in_op = false;
      frame->pre_image.clear();
      frame->pre_image.shrink_to_fit();
      UnpinLocked(frame);
    }
    op_frames_.clear();
    in_op_ = false;
  };

  if (body.empty()) {
    // Nothing new to log, but the durability contract still applies: the
    // bytes this op "wrote" may have been put there by an earlier
    // commit-unknown op whose record is still unsynced, and acking now
    // without an fsync would report data durable that is not. Sync
    // short-circuits when the log is already covered, so the common case
    // stays fsync-free.
    Status sync_status =
        options_.fsync_on_commit ? wal_->Sync() : Status::OK();
    cleanup();
    op_mu_.unlock();
    ops_->Increment();
    return sync_status;
  }

  Result<uint64_t> lsn = wal_->Append(kOpRecord, body);
  if (!lsn.ok()) {
    // The record is not in the log's valid prefix (a short write may
    // have persisted a partial frame, but the next append overwrites it
    // and the scanner rejects it as a torn tail meanwhile): roll back in
    // memory so no un-logged mutation can ever be flushed without WAL
    // coverage.
    AbortOp();
    return lsn.status();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Frame* frame : changed) {
      frame->page_lsn = *lsn;
      frame->dirty = true;
    }
    for (Frame* frame : imaged) frame->image_logged = true;
  }
  Status sync_status = Status::OK();
  if (options_.fsync_on_commit) {
    // On failure the record is appended but not durable: commit-unknown.
    // In-memory state stands (it is WAL-covered); the caller must report
    // the op failed.
    sync_status = wal_->Sync();
  }
  cleanup();
  // Counted (and the checkpoint decision made) while op_mu_ is still
  // held: concurrent committers would otherwise race on the counter.
  bool checkpoint_due =
      options_.checkpoint_interval_ops > 0 &&
      ++ops_since_checkpoint_ >= options_.checkpoint_interval_ops;
  op_mu_.unlock();
  ops_->Increment();
  GB_RETURN_IF_ERROR(sync_status);

  if (checkpoint_due) return Checkpoint();
  return Status::OK();
}

void Pager::AbortOp() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [page_id, frame] : op_frames_) {
    std::memcpy(frame->data + kPageHeaderBytes, frame->pre_image.data(),
                kPageDataSize);
    frame->touched_in_op = false;
    frame->pre_image.clear();
    frame->pre_image.shrink_to_fit();
    UnpinLocked(frame);
  }
  op_frames_.clear();
  in_op_ = false;
  op_mu_.unlock();
}

Status Pager::Checkpoint() {
  // op_mu_ first (the global lock order): no op may be mid-flight, or a
  // flush could write uncommitted — hence un-logged — bytes in place.
  std::lock_guard<std::mutex> op_lock(op_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  if (degraded_) {
    return Status::Internal(
        "pager: degraded after failed checkpoint; checkpoint refused");
  }
  GB_RETURN_IF_ERROR(wal_->Sync());
  for (auto& [page_id, frame] : frames_) {
    if (frame->dirty) GB_RETURN_IF_ERROR(FlushFrameLocked(frame.get()));
  }
  GB_RETURN_IF_ERROR(db_->Sync());
  checkpoint_lsn_ = wal_->next_lsn() - 1;
  ++generation_;
  // From the first header-write byte onward, a failure leaves the
  // published generation ambiguous: the new-generation header may reach
  // the platter even though the call errored, in which case recovery
  // rejects the still-active old-salt WAL and every commit appended to
  // it after this point would be silently dropped. Refuse further
  // commits on ANY failure at or past the header write — not just a
  // failed WAL reset.
  Status publish = WriteHeaderLocked();
  if (publish.ok()) publish = db_->Sync();
  if (!publish.ok()) {
    degraded_ = true;
    return publish;
  }
  // Header published: from here the old log is dead. If the reset fails
  // we must refuse further commits — their records would land in a log
  // the published generation cannot replay.
  Status reset = wal_->ResetForCheckpoint(SaltForGeneration(generation_));
  if (!reset.ok()) {
    degraded_ = true;
    return reset;
  }
  for (auto& [page_id, frame] : frames_) frame->image_logged = false;
  ops_since_checkpoint_ = 0;
  ++checkpoints_taken_;
  checkpoints_->Increment();
  return Status::OK();
}

// --- PageRef --------------------------------------------------------------

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    if (pager_ != nullptr) pager_->Unpin(frame_);
    pager_ = other.pager_;
    frame_ = other.frame_;
    page_id_ = other.page_id_;
    other.pager_ = nullptr;
    other.frame_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() {
  if (pager_ != nullptr) pager_->Unpin(frame_);
}

char* PageRef::data() {
  return static_cast<Pager::Frame*>(frame_)->data + kPageHeaderBytes;
}

const char* PageRef::data() const {
  return static_cast<Pager::Frame*>(frame_)->data + kPageHeaderBytes;
}

void PageRef::MarkDirty() { pager_->MarkDirtyFrame(frame_); }

// --- Overflow chains ------------------------------------------------------

namespace {
constexpr size_t kOverflowPayload = kPageDataSize - 8;
}  // namespace

Result<uint64_t> WriteOverflowChain(Pager* pager, std::string_view data) {
  size_t pages = std::max<size_t>(1, (data.size() + kOverflowPayload - 1) /
                                         kOverflowPayload);
  std::vector<PageRef> refs;
  refs.reserve(pages);
  for (size_t i = 0; i < pages; ++i) {
    GB_ASSIGN_OR_RETURN(PageRef ref, pager->Allocate());
    refs.push_back(std::move(ref));
  }
  for (size_t i = 0; i < pages; ++i) {
    refs[i].MarkDirty();
    uint64_t next = (i + 1 < pages) ? refs[i + 1].page_id() : 0;
    StoreU64(refs[i].data(), next);
    size_t off = i * kOverflowPayload;
    size_t len = std::min(kOverflowPayload, data.size() - off);
    if (len > 0) std::memcpy(refs[i].data() + 8, data.data() + off, len);
  }
  return refs[0].page_id();
}

Result<std::string> ReadOverflowChain(Pager* pager, uint64_t first_page,
                                      uint64_t total_len) {
  std::string out;
  out.reserve(total_len);
  uint64_t page_id = first_page;
  while (out.size() < total_len) {
    if (page_id == 0) {
      return Status::Corruption("pager: overflow chain ended early");
    }
    GB_ASSIGN_OR_RETURN(PageRef ref, pager->Fetch(page_id));
    size_t len =
        std::min<uint64_t>(kOverflowPayload, total_len - out.size());
    out.append(ref.data() + 8, len);
    page_id = GetU64(ref.data());
  }
  return out;
}

}  // namespace storage
}  // namespace graphbench
