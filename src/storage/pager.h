#ifndef GRAPHBENCH_STORAGE_PAGER_H_
#define GRAPHBENCH_STORAGE_PAGER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "obs/metrics.h"
#include "storage/os_file.h"
#include "storage/wal.h"
#include "util/result.h"
#include "util/status.h"

namespace graphbench {
namespace storage {

/// Fixed page geometry. Every page carries a 16-byte header (LSN +
/// checksum) maintained by the pager; clients see only the data area.
inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageHeaderBytes = 16;
inline constexpr size_t kPageDataSize = kPageSize - kPageHeaderBytes;

struct PagerOptions {
  /// Buffer-pool capacity in pages; beyond it, LRU eviction (dirty
  /// victims are flushed under the WAL rule first).
  size_t cache_pages = 256;
  /// Group-fsync the WAL on every CommitOp (fsync-per-commit durability).
  /// Off: commits are durable only at the next Sync/flush/checkpoint —
  /// the cheaper, lose-a-tail-on-crash configuration.
  bool fsync_on_commit = false;
  /// Take a checkpoint automatically every N committed ops (0 = manual).
  uint64_t checkpoint_interval_ops = 0;
};

class Pager;

/// Pinned page handle. The frame cannot be evicted while a PageRef to it
/// is live. Call MarkDirty() before the first mutation inside an op so
/// the pager can snapshot the pre-image for physiological logging.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept { *this = std::move(other); }
  PageRef& operator=(PageRef&& other) noexcept;
  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  ~PageRef();

  bool valid() const { return pager_ != nullptr; }
  uint64_t page_id() const { return page_id_; }
  /// The kPageDataSize-byte client data area.
  char* data();
  const char* data() const;
  /// Snapshots the pre-image into the current op (first call per op) and
  /// marks the page as touched. Must be called inside BeginOp/CommitOp
  /// and before mutating data().
  void MarkDirty();

 private:
  friend class Pager;
  PageRef(Pager* pager, void* frame, uint64_t page_id)
      : pager_(pager), frame_(frame), page_id_(page_id) {}

  Pager* pager_ = nullptr;
  void* frame_ = nullptr;
  uint64_t page_id_ = 0;
};

/// Buffer-pool pager with a write-ahead log: the durable substrate under
/// PagedBTreeKv, PagedTable, and the native store's journal (DESIGN.md
/// §12).
///
/// Mutations happen in ops: BeginOp, fetch + MarkDirty + mutate pages,
/// CommitOp. Commit emits ONE WAL record containing a physiological
/// sub-record per touched page — the full page image on the first touch
/// after a checkpoint (the full-page-write that makes torn db-file pages
/// recoverable), a byte-range delta afterwards — so a torn WAL tail
/// drops whole ops, never half of one.
///
/// Checkpoint flushes all dirty pages, fsyncs the db file, publishes a
/// new header generation, and resets the WAL under the generation's
/// salt. Recovery picks the newer valid header copy, replays the WAL's
/// valid prefix (LSN-gated, so redo is idempotent), and truncates the
/// torn tail.
class Pager {
 public:
  static Result<std::unique_ptr<Pager>> Open(FileSystem* fs,
                                             const std::string& db_path,
                                             const std::string& wal_path,
                                             const PagerOptions& options);
  ~Pager();

  Pager(const Pager&) = delete;
  Pager& operator=(const Pager&) = delete;

  /// Pins page `page_id` (loading and checksum-validating it on a miss).
  Result<PageRef> Fetch(uint64_t page_id);

  /// Allocates the next page id (zeroed), pinned. Call inside an op and
  /// MarkDirty before writing.
  Result<PageRef> Allocate();

  /// Pages in the file, header page included (page ids are < this).
  uint64_t page_count() const;

  // --- Op lifecycle (single writer at a time; BeginOp serializes) -------
  void BeginOp();
  /// Logs the op's page changes as one WAL record, stamps touched pages
  /// with its LSN, and group-fsyncs when fsync_on_commit. On a WAL error
  /// the in-memory changes stand but the op must be reported failed
  /// (commit-unknown: it may or may not survive a crash).
  Status CommitOp();
  /// Restores pre-images of every page touched since BeginOp (for
  /// validation failures before any logging).
  void AbortOp();

  /// Flush-all + db fsync + header publish + WAL reset.
  Status Checkpoint();

  Wal* wal() { return wal_.get(); }
  const PagerOptions& options() const { return options_; }

  /// Stats from the Open-time recovery pass (also exported as obs
  /// counters wal.recovered_records / wal.truncated_bytes and the gauge
  /// pager.recovery_ms).
  uint64_t recovered_records() const { return recovered_records_; }
  uint64_t recovery_micros() const { return recovery_micros_; }
  uint64_t checkpoints_taken() const { return checkpoints_taken_; }

 private:
  struct Frame {
    uint64_t page_id = 0;
    uint64_t page_lsn = 0;
    bool dirty = false;
    /// A full image of this page is already in the current WAL
    /// generation, so later ops may log deltas.
    bool image_logged = false;
    int pins = 0;
    bool touched_in_op = false;
    std::string pre_image;  // data-area snapshot at first MarkDirty
    std::list<uint64_t>::iterator lru_pos;
    bool in_lru = false;
    char data[kPageSize];
  };
  friend class PageRef;

  Pager(FileSystem* fs, std::unique_ptr<File> db, const PagerOptions& opts);

  static uint64_t SaltForGeneration(uint64_t generation);
  static void SealPage(Frame* frame, std::string* out);

  Status RecoverLocked(const std::string& wal_path);
  Result<Frame*> FetchLocked(uint64_t page_id, bool for_recovery);
  Status FlushFrameLocked(Frame* frame);
  Status EvictIfNeededLocked();
  Status WriteHeaderLocked();
  void PinLocked(Frame* frame);
  void UnpinLocked(Frame* frame);
  void Unpin(void* frame);
  void MarkDirtyFrame(void* frame);

  FileSystem* fs_;
  std::unique_ptr<File> db_;
  std::unique_ptr<Wal> wal_;
  PagerOptions options_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_;
  std::list<uint64_t> lru_;  // front = most recent; only unpinned pages
  uint64_t page_count_ = 1;  // page 0 is the header
  uint64_t generation_ = 1;
  uint64_t checkpoint_lsn_ = 0;
  bool header_slot_b_next_ = false;
  uint64_t ops_since_checkpoint_ = 0;
  uint64_t checkpoints_taken_ = 0;
  uint64_t recovered_records_ = 0;
  uint64_t recovery_micros_ = 0;

  std::mutex op_mu_;  // held from BeginOp to Commit/AbortOp
  std::map<uint64_t, Frame*> op_frames_;  // touched pages, id-ordered
  bool in_op_ = false;
  /// Set when a checkpoint failed at or after the new-generation header
  /// write (publish ambiguous or WAL reset failed): later appends could
  /// land in a log the published generation can no longer replay, so
  /// commits are refused.
  bool degraded_ = false;

  obs::Counter* evictions_;
  obs::Counter* flushes_;
  obs::Counter* checkpoints_;
  obs::Counter* ops_;
  obs::Gauge* cached_pages_;
};

/// Overflow chains for values that don't fit a page: each overflow page
/// stores [next u64][payload]. Write inside the current op; returns the
/// first page id. Freed pages are not reclaimed (no free list — a known
/// deviation, DESIGN.md §12).
Result<uint64_t> WriteOverflowChain(Pager* pager, std::string_view data);
Result<std::string> ReadOverflowChain(Pager* pager, uint64_t first_page,
                                      uint64_t total_len);

}  // namespace storage
}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_PAGER_H_
