#ifndef GRAPHBENCH_STORAGE_TABLE_H_
#define GRAPHBENCH_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/table_schema.h"
#include "util/result.h"
#include "util/status.h"
#include "util/value.h"

namespace graphbench {

/// Physical row locator. For heap tables this encodes (page, slot); for
/// column tables it is the row position. Stable for the row's lifetime.
using RowId = uint64_t;

/// Forward scan over the live rows of a table.
class TableScanIterator {
 public:
  virtual ~TableScanIterator() = default;
  virtual bool Valid() const = 0;
  virtual void Next() = 0;
  virtual RowId row_id() const = 0;
  /// Materializes the current row into `*row` (all columns).
  virtual void GetRow(Row* row) const = 0;
};

/// Storage-engine-agnostic table interface. HeapTable implements the row
/// store (Postgres analog); ColumnTable the column store (Virtuoso analog).
/// All operations are thread-safe; writers serialize per table.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}
  virtual ~Table() = default;

  const TableSchema& schema() const { return schema_; }

  /// Appends `row` (must match schema arity). Returns its RowId.
  virtual Result<RowId> Insert(const Row& row) = 0;

  /// Materializes the full row at `id`.
  virtual Status Get(RowId id, Row* row) const = 0;

  /// Fetches a single column of the row at `id`. Column stores satisfy
  /// this touching one vector; row stores must locate the whole tuple.
  virtual Status GetColumn(RowId id, size_t column, Value* out) const = 0;

  /// Overwrites the row at `id`.
  virtual Status Update(RowId id, const Row& row) = 0;

  /// Removes the row at `id` (tombstoned; RowIds are never reused).
  virtual Status Delete(RowId id) = 0;

  virtual std::unique_ptr<TableScanIterator> NewScanIterator() const = 0;

  virtual uint64_t row_count() const = 0;
  virtual uint64_t ApproximateSizeBytes() const = 0;

 protected:
  TableSchema schema_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_TABLE_H_
