#ifndef GRAPHBENCH_STORAGE_TABLE_SCHEMA_H_
#define GRAPHBENCH_STORAGE_TABLE_SCHEMA_H_

#include <string>
#include <vector>

#include "util/value.h"

namespace graphbench {

/// A column definition: name plus declared type. Types are advisory (the
/// Value system is dynamically typed); they document intent and drive
/// column-store layout decisions.
struct ColumnDef {
  std::string name;
  Value::Type type = Value::Type::kString;
};

/// Relational table schema. Vertex/edge types of the SNB graph each map to
/// one table (the paper's relational schema, §3.2).
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column` or -1 when absent.
  int ColumnIndex(std::string_view column) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name == column) return int(i);
    }
    return -1;
  }

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_TABLE_SCHEMA_H_
