#include "storage/wal.h"

#include <cstring>

namespace graphbench {
namespace storage {

namespace {

constexpr char kMagic[8] = {'G', 'B', 'W', 'A', 'L', '1', 0, 0};
constexpr uint64_t kHeaderBytes = 24;
// Sanity ceiling on one record's payload; anything larger is treated as
// torn-tail garbage by the scanner.
constexpr uint64_t kMaxPayload = uint64_t(1) << 26;

void PutU32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

void PutU64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

uint32_t GetU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

Wal::Wal(std::unique_ptr<File> file, uint64_t salt, uint64_t append_end,
         uint64_t next_lsn)
    : file_(std::move(file)),
      salt_(salt),
      appended_end_(append_end),
      synced_end_(append_end),
      next_lsn_(next_lsn) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  appends_ = reg.GetCounter("wal.appends");
  log_bytes_ = reg.GetCounter("wal.log_bytes");
  fsyncs_ = reg.GetCounter("wal.fsyncs");
  group_commits_ = reg.GetCounter("wal.group_commits");
}

std::string Wal::SerializeHeader(uint64_t salt) {
  std::string header(kMagic, sizeof(kMagic));
  PutU32(&header, kWalVersion);
  PutU32(&header, 0);  // reserved
  PutU64(&header, salt);
  return header;
}

Result<std::unique_ptr<Wal>> Wal::Create(FileSystem* fs,
                                         const std::string& path,
                                         uint64_t salt) {
  GB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, fs->Open(path));
  GB_RETURN_IF_ERROR(file->Truncate(0));
  GB_RETURN_IF_ERROR(file->Append(SerializeHeader(salt)));
  GB_RETURN_IF_ERROR(file->Sync());
  return std::unique_ptr<Wal>(
      new Wal(std::move(file), salt, kHeaderBytes, /*next_lsn=*/1));
}

Result<WalScanResult> Wal::Scan(FileSystem* fs, const std::string& path,
                                uint64_t expected_salt) {
  WalScanResult result;
  if (!fs->Exists(path)) return result;
  GB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, fs->Open(path));
  GB_ASSIGN_OR_RETURN(uint64_t size, file->Size());
  std::string contents;
  GB_RETURN_IF_ERROR(file->ReadAt(0, size_t(size), &contents));

  if (contents.size() < kHeaderBytes ||
      std::memcmp(contents.data(), kMagic, sizeof(kMagic)) != 0 ||
      GetU32(contents.data() + 8) != kWalVersion ||
      GetU64(contents.data() + 16) != expected_salt) {
    result.truncated_bytes = contents.size();
    return result;  // header_ok stays false: stale or foreign log
  }
  result.header_ok = true;
  result.valid_end = kHeaderBytes;

  const uint32_t crc_seed =
      uint32_t(expected_salt) ^ uint32_t(expected_salt >> 32);
  uint64_t off = kHeaderBytes;
  uint64_t prev_lsn = 0;
  while (off + 8 <= contents.size()) {
    uint32_t len = GetU32(contents.data() + off);
    uint32_t crc = GetU32(contents.data() + off + 4);
    if (len < 9 || len > kMaxPayload || off + 8 + len > contents.size()) {
      break;  // torn tail
    }
    std::string_view payload(contents.data() + off + 8, len);
    if (Crc32(payload, crc_seed) != crc) break;  // corrupt record
    uint64_t lsn = GetU64(payload.data());
    if (lsn <= prev_lsn) break;  // stale bytes from an older generation
    WalRecord record;
    record.lsn = lsn;
    record.type = uint8_t(payload[8]);
    record.body.assign(payload.substr(9));
    result.records.push_back(std::move(record));
    prev_lsn = lsn;
    off += 8 + len;
    result.valid_end = off;
  }
  result.last_lsn = prev_lsn;
  result.truncated_bytes = contents.size() - result.valid_end;
  return result;
}

Result<std::unique_ptr<Wal>> Wal::Open(FileSystem* fs,
                                       const std::string& path,
                                       uint64_t salt, WalScanResult* scan) {
  GB_ASSIGN_OR_RETURN(WalScanResult scanned, Scan(fs, path, salt));
  if (!scanned.header_ok) {
    *scan = std::move(scanned);
    return Create(fs, path, salt);
  }
  GB_ASSIGN_OR_RETURN(std::unique_ptr<File> file, fs->Open(path));
  if (scanned.truncated_bytes > 0) {
    // Discard the torn tail so the next append can't splice a valid-CRC
    // record after garbage the scanner already rejected.
    GB_RETURN_IF_ERROR(file->Truncate(scanned.valid_end));
    GB_RETURN_IF_ERROR(file->Sync());
  }
  uint64_t next_lsn = scanned.last_lsn + 1;
  uint64_t valid_end = scanned.valid_end;
  *scan = std::move(scanned);
  return std::unique_ptr<Wal>(
      new Wal(std::move(file), salt, valid_end, next_lsn));
}

Result<uint64_t> Wal::Append(uint8_t type, std::string_view body) {
  std::string payload;
  payload.reserve(9 + body.size());
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t lsn = next_lsn_++;
  PutU64(&payload, lsn);
  payload.push_back(char(type));
  payload.append(body);
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32(&frame, uint32_t(payload.size()));
  PutU32(&frame, RecordCrc(payload));
  frame.append(payload);
  // Positioned write, NOT a file append: a failed write can persist a
  // sector-aligned partial frame past appended_end_ (which does not
  // advance on failure), and the next record must overwrite that garbage
  // — an append after it would leave a CRC-invalid hole that makes every
  // later record unreachable to the scanner.
  GB_RETURN_IF_ERROR(file_->WriteAt(appended_end_, frame));
  appended_end_ += frame.size();
  last_appended_lsn_ = lsn;
  appends_->Increment();
  log_bytes_->Increment(frame.size());
  bytes_logged_ += frame.size();
  return lsn;
}

Status Wal::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t target = appended_end_;
  for (;;) {
    if (synced_end_ >= target) {
      // A concurrent leader's fsync already covered our appends.
      group_commits_->Increment();
      return Status::OK();
    }
    if (!sync_in_flight_) break;
    sync_cv_.wait(lock);
  }
  sync_in_flight_ = true;
  uint64_t covered_end = appended_end_;
  uint64_t covered_lsn = last_appended_lsn_;
  lock.unlock();
  Status s = file_->Sync();
  lock.lock();
  sync_in_flight_ = false;
  if (s.ok()) {
    synced_end_ = std::max(synced_end_, covered_end);
    synced_lsn_ = std::max(synced_lsn_, covered_lsn);
    fsyncs_->Increment();
    ++fsync_count_;
  }
  sync_cv_.notify_all();
  return s;
}

Status Wal::SyncTo(uint64_t lsn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (synced_lsn_ >= lsn) return Status::OK();
  }
  return Sync();
}

Status Wal::ResetForCheckpoint(uint64_t new_salt) {
  std::lock_guard<std::mutex> lock(mu_);
  GB_RETURN_IF_ERROR(file_->Truncate(0));
  GB_RETURN_IF_ERROR(file_->Append(SerializeHeader(new_salt)));
  GB_RETURN_IF_ERROR(file_->Sync());
  fsyncs_->Increment();
  ++fsync_count_;
  salt_ = new_salt;
  appended_end_ = kHeaderBytes;
  synced_end_ = kHeaderBytes;
  // next_lsn_ / synced_lsn_ intentionally keep counting.
  synced_lsn_ = last_appended_lsn_;
  return Status::OK();
}

void Wal::AdvanceLsn(uint64_t next) {
  std::lock_guard<std::mutex> lock(mu_);
  if (next > next_lsn_) next_lsn_ = next;
}

}  // namespace storage
}  // namespace graphbench
