#ifndef GRAPHBENCH_STORAGE_WAL_H_
#define GRAPHBENCH_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "storage/os_file.h"
#include "util/result.h"
#include "util/status.h"

namespace graphbench {
namespace storage {

/// Write-ahead log format version (the header is versioned so future
/// format changes can refuse old logs instead of misreading them).
inline constexpr uint32_t kWalVersion = 1;

/// Framed WAL record as seen by Scan/replay. `type` is opaque to the log;
/// the pager uses it to distinguish page-op records from checkpoint marks.
struct WalRecord {
  uint64_t lsn = 0;
  uint8_t type = 0;
  std::string body;
};

/// Outcome of scanning a log file front to back.
struct WalScanResult {
  /// Every record whose length/CRC/LSN chain validated, in order.
  std::vector<WalRecord> records;
  /// File offset one past the last valid record; bytes beyond this are
  /// the torn tail (or stale garbage) and must be truncated before
  /// appending resumes.
  uint64_t valid_end = 0;
  /// Bytes discarded past valid_end.
  uint64_t truncated_bytes = 0;
  uint64_t last_lsn = 0;
  /// False when the header is missing, from a different version, or from
  /// a different salt generation (a stale pre-checkpoint log): no records
  /// are returned and the caller should start a fresh log.
  bool header_ok = false;
};

/// Append-only write-ahead log over the File abstraction.
///
/// On-disk layout: a 24-byte header (magic, version, salt), then records
/// framed as [len u32][crc u32][payload], payload = [lsn u64][type u8]
/// [body]. The CRC covers the payload and is seeded with the salt, so
/// records from an earlier log generation (left behind by a truncate that
/// never reached the platter) fail validation instead of replaying.
///
/// Appends are cheap buffered writes; Sync() is the group-commit barrier:
/// concurrent committers ride one fsync — the leader syncs everything
/// appended so far, followers observing their bytes already covered
/// return without touching the disk.
class Wal {
 public:
  /// Creates (truncating any prior contents) a fresh log with `salt`.
  static Result<std::unique_ptr<Wal>> Create(FileSystem* fs,
                                             const std::string& path,
                                             uint64_t salt);

  /// Read-only validation scan (the replay half of recovery). Never
  /// modifies the file.
  static Result<WalScanResult> Scan(FileSystem* fs, const std::string& path,
                                    uint64_t expected_salt);

  /// Opens for appending: scans, truncates the torn tail, and positions
  /// the next append after the last valid record. When the header doesn't
  /// match `salt` (stale or absent log) the file is reset to a fresh
  /// header and `*scan` reports no records.
  static Result<std::unique_ptr<Wal>> Open(FileSystem* fs,
                                           const std::string& path,
                                           uint64_t salt,
                                           WalScanResult* scan);

  /// Appends one record, assigning the next LSN. Not durable until
  /// Sync(). On failure the append position does not advance, so a
  /// partial frame left behind by a short write is overwritten by the
  /// next (retried or unrelated) record instead of orphaning it.
  Result<uint64_t> Append(uint8_t type, std::string_view body);

  /// Group-commit fsync barrier covering every append issued before the
  /// call.
  Status Sync();

  /// Sync only if `lsn` isn't already durable (the pager's WAL rule on
  /// page flush).
  Status SyncTo(uint64_t lsn);

  /// Checkpoint epilogue: truncates to an empty log under `new_salt` and
  /// syncs the header. LSNs keep counting — they are compared against
  /// page LSNs stamped in earlier generations.
  Status ResetForCheckpoint(uint64_t new_salt);

  /// LSN the next Append will be assigned.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Highest LSN known durable.
  uint64_t synced_lsn() const { return synced_lsn_; }
  /// Ensures LSNs resume past `next` (recovery hands the checkpoint LSN
  /// forward so LSNs stay monotonic across generations).
  void AdvanceLsn(uint64_t next);

  uint64_t size_bytes() const { return appended_end_; }

  /// Per-instance traffic totals (the obs counters aggregate across every
  /// Wal in the process; benches compare instances).
  uint64_t fsyncs() const { return fsync_count_; }
  uint64_t log_bytes() const { return bytes_logged_; }

 private:
  Wal(std::unique_ptr<File> file, uint64_t salt, uint64_t append_end,
      uint64_t next_lsn);

  static std::string SerializeHeader(uint64_t salt);
  uint32_t RecordCrc(std::string_view payload) const {
    return Crc32(payload, uint32_t(salt_) ^ uint32_t(salt_ >> 32));
  }

  std::unique_ptr<File> file_;
  uint64_t salt_;

  std::mutex mu_;
  std::condition_variable sync_cv_;
  bool sync_in_flight_ = false;
  uint64_t appended_end_;    // file offset after the last append
  uint64_t synced_end_ = 0;  // file offset covered by the last fsync
  uint64_t next_lsn_;
  uint64_t synced_lsn_ = 0;
  uint64_t last_appended_lsn_ = 0;
  uint64_t fsync_count_ = 0;
  uint64_t bytes_logged_ = 0;

  obs::Counter* appends_;
  obs::Counter* log_bytes_;
  obs::Counter* fsyncs_;
  obs::Counter* group_commits_;
};

}  // namespace storage
}  // namespace graphbench

#endif  // GRAPHBENCH_STORAGE_WAL_H_
