#include "sut/cypher_sut.h"

#include <unordered_map>

#include "concurrency/epoch.h"

namespace graphbench {

namespace {

/// Vertex labels and edge types of the SNB property-graph mapping, shared
/// by the native and Gremlin loaders.
constexpr const char* kVertexLabels[] = {"Person",       "Forum",
                                         "Post",         "Comment",
                                         "Tag",          "Place",
                                         "Organisation"};

// The fixed read statement set. Limit-bearing statements end in "LIMIT "
// so the legacy path can concatenate the literal while the prepared path
// appends "$limit" and binds.
constexpr char kPointLookupCypher[] =
    "MATCH (p:Person {id: $id}) RETURN p.firstName, p.lastName, "
    "p.gender, p.birthday, p.browserUsed, p.locationIP";
constexpr char kOneHopCypher[] =
    "MATCH (p:Person {id: $id})-[:knows]-(f) "
    "RETURN f.id, f.firstName, f.lastName";
constexpr char kTwoHopCypher[] =
    "MATCH (p:Person {id: $id})-[:knows]-(f)-[:knows]-(ff) "
    "WHERE ff.id <> $id RETURN DISTINCT ff.id";
constexpr char kShortestPathCypher[] =
    "MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
    "RETURN length(shortestPath((a)-[:knows*]-(b))) AS len";
constexpr char kRecentPostsCypherPrefix[] =
    "MATCH (p:Person {id: $id})<-[:postHasCreator]-(post) "
    "RETURN post.id, post.content, post.creationDate "
    "ORDER BY post.creationDate DESC LIMIT ";
constexpr char kFriendsWithNameCypher[] =
    "MATCH (p:Person {id: $id})-[:knows]-(f) WHERE f.firstName = $name "
    "RETURN f.id, f.lastName ORDER BY f.id";
constexpr char kRepliesOfPostCypher[] =
    "MATCH (post:Post {id: $id})<-[:replyOfPost]-(c)"
    "-[:commentHasCreator]->(cr) "
    "RETURN c.id, c.content, cr.id "
    "ORDER BY c.creationDate DESC";
constexpr char kTopPostersCypherPrefix[] =
    "MATCH (post:Post)-[:postHasCreator]->(p) "
    "RETURN p.id, count(*) AS n "
    "ORDER BY count(*) DESC, p.id LIMIT ";

}  // namespace

Status LoadSnbIntoNativeGraph(const snb::Dataset& data, NativeGraph* graph) {
  for (const char* label : kVertexLabels) {
    GB_RETURN_IF_ERROR(graph->CreateUniqueIndex(label, "id"));
  }
  std::unordered_map<int64_t, VertexId> persons, forums, posts, comments,
      tags, places, orgs;

  for (const auto& p : data.persons) {
    GB_ASSIGN_OR_RETURN(
        VertexId v,
        graph->AddVertex(
            "Person",
            {{"id", Value(p.id)},
             {"firstName", Value(p.first_name)},
             {"lastName", Value(p.last_name)},
             {"gender", Value(p.gender)},
             {"birthday", Value(p.birthday)},
             {"creationDate", Value(p.creation_date)},
             {"browserUsed", Value(p.browser)},
             {"locationIP", Value(p.location_ip)}}));
    persons[p.id] = v;
  }
  for (const auto& pl : data.places) {
    GB_ASSIGN_OR_RETURN(VertexId v,
                        graph->AddVertex("Place", {{"id", Value(pl.id)},
                                                   {"name", Value(pl.name)}}));
    places[pl.id] = v;
  }
  for (const auto& t : data.tags) {
    GB_ASSIGN_OR_RETURN(VertexId v,
                        graph->AddVertex("Tag", {{"id", Value(t.id)},
                                                 {"name", Value(t.name)}}));
    tags[t.id] = v;
  }
  for (const auto& o : data.organisations) {
    GB_ASSIGN_OR_RETURN(
        VertexId v, graph->AddVertex("Organisation",
                                     {{"id", Value(o.id)},
                                      {"name", Value(o.name)},
                                      {"type", Value(o.type)}}));
    orgs[o.id] = v;
  }
  for (const auto& f : data.forums) {
    GB_ASSIGN_OR_RETURN(
        VertexId v,
        graph->AddVertex("Forum", {{"id", Value(f.id)},
                                   {"title", Value(f.title)},
                                   {"creationDate", Value(f.creation_date)}}));
    forums[f.id] = v;
    GB_RETURN_IF_ERROR(
        graph->AddEdge("hasModerator", v, persons.at(f.moderator), {})
            .status());
  }
  for (const auto& p : data.posts) {
    GB_ASSIGN_OR_RETURN(
        VertexId v,
        graph->AddVertex("Post", {{"id", Value(p.id)},
                                  {"content", Value(p.content)},
                                  {"creationDate", Value(p.creation_date)},
                                  {"browserUsed", Value(p.browser)}}));
    posts[p.id] = v;
    GB_RETURN_IF_ERROR(
        graph->AddEdge("postHasCreator", v, persons.at(p.creator), {}).status());
    GB_RETURN_IF_ERROR(
        graph->AddEdge("containerOf", forums.at(p.forum), v, {}).status());
  }
  for (const auto& c : data.comments) {
    GB_ASSIGN_OR_RETURN(
        VertexId v,
        graph->AddVertex("Comment",
                         {{"id", Value(c.id)},
                          {"content", Value(c.content)},
                          {"creationDate", Value(c.creation_date)}}));
    comments[c.id] = v;
    GB_RETURN_IF_ERROR(
        graph->AddEdge("commentHasCreator", v, persons.at(c.creator), {}).status());
    if (c.reply_of_post >= 0) {
      GB_RETURN_IF_ERROR(
          graph->AddEdge("replyOfPost", v, posts.at(c.reply_of_post), {})
              .status());
    } else {
      GB_RETURN_IF_ERROR(
          graph->AddEdge("replyOfComment", v, comments.at(c.reply_of_comment), {})
              .status());
    }
  }
  for (const auto& k : data.knows) {
    GB_RETURN_IF_ERROR(
        graph->AddEdge("knows", persons.at(k.person1), persons.at(k.person2),
                       {{"creationDate", Value(k.creation_date)}})
            .status());
  }
  for (const auto& m : data.members) {
    GB_RETURN_IF_ERROR(
        graph->AddEdge("hasMember", forums.at(m.forum),
                       persons.at(m.person),
                       {{"joinDate", Value(m.join_date)}})
            .status());
  }
  for (const auto& l : data.likes) {
    VertexId target = l.post >= 0 ? posts.at(l.post)
                                  : comments.at(l.comment);
    const char* like_label = l.post >= 0 ? "likesPost" : "likesComment";
    GB_RETURN_IF_ERROR(
        graph->AddEdge(like_label, persons.at(l.person), target,
                       {{"creationDate", Value(l.creation_date)}})
            .status());
  }
  for (const auto& pt : data.post_tags) {
    GB_RETURN_IF_ERROR(
        graph->AddEdge("hasTag", posts.at(pt.post), tags.at(pt.tag), {})
            .status());
  }
  for (const auto& p : data.persons) {
    GB_RETURN_IF_ERROR(graph->AddEdge("isLocatedIn", persons.at(p.id),
                                      places.at(p.city_id), {})
                           .status());
  }
  for (const auto& s : data.study_at) {
    GB_RETURN_IF_ERROR(graph->AddEdge("studyAt", persons.at(s.person),
                                      orgs.at(s.organisation),
                                      {{"classYear", Value(s.year)}})
                           .status());
  }
  for (const auto& w : data.work_at) {
    GB_RETURN_IF_ERROR(graph->AddEdge("workAt", persons.at(w.person),
                                      orgs.at(w.organisation),
                                      {{"workFrom", Value(w.year)}})
                           .status());
  }
  return Status::OK();
}

CypherSut::CypherSut(NativeGraphOptions options)
    : graph_(options), engine_(&graph_) {}

Status CypherSut::Load(const snb::Dataset& data) {
  concurrency::WriteBatch batch;
  GB_RETURN_IF_ERROR(LoadSnbIntoNativeGraph(data, &graph_));
  if (engine_.plan_cache_enabled()) {
    GB_RETURN_IF_ERROR(PrepareStatements());
  }
  if (landmarks_ != nullptr) SeedLandmarkIndex(data, landmarks_.get());
  return Status::OK();
}

Status CypherSut::PrepareStatements() {
  auto prep = [this](CypherEngine::PreparedStatement* out,
                     const std::string& text) -> Status {
    GB_ASSIGN_OR_RETURN(*out, engine_.Prepare(text));
    return Status::OK();
  };
  GB_RETURN_IF_ERROR(prep(&prepared_.point_lookup, kPointLookupCypher));
  GB_RETURN_IF_ERROR(prep(&prepared_.one_hop, kOneHopCypher));
  GB_RETURN_IF_ERROR(prep(&prepared_.two_hop, kTwoHopCypher));
  GB_RETURN_IF_ERROR(prep(&prepared_.shortest_path, kShortestPathCypher));
  GB_RETURN_IF_ERROR(
      prep(&prepared_.recent_posts,
           std::string(kRecentPostsCypherPrefix) + "$limit"));
  GB_RETURN_IF_ERROR(
      prep(&prepared_.friends_with_name, kFriendsWithNameCypher));
  GB_RETURN_IF_ERROR(prep(&prepared_.replies_of_post, kRepliesOfPostCypher));
  GB_RETURN_IF_ERROR(prep(&prepared_.top_posters,
                          std::string(kTopPostersCypherPrefix) + "$limit"));
  return Status::OK();
}

std::string CypherSut::StatementText(std::string_view kind) const {
  if (kind == "point_lookup") return kPointLookupCypher;
  if (kind == "one_hop") return kOneHopCypher;
  if (kind == "two_hop") return kTwoHopCypher;
  if (kind == "recent_posts") {
    return std::string(kRecentPostsCypherPrefix) + "$limit";
  }
  return std::string();
}

Result<QueryResult> CypherSut::PointLookup(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.point_lookup.valid()) {
    return engine_.Execute(prepared_.point_lookup,
                           {{"id", Value(person_id)}});
  }
  return engine_.Execute(kPointLookupCypher, {{"id", Value(person_id)}});
}

Result<QueryResult> CypherSut::OneHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.one_hop.valid()) {
    return engine_.Execute(prepared_.one_hop, {{"id", Value(person_id)}});
  }
  return engine_.Execute(kOneHopCypher, {{"id", Value(person_id)}});
}

Result<QueryResult> CypherSut::TwoHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.two_hop.valid()) {
    return engine_.Execute(prepared_.two_hop, {{"id", Value(person_id)}});
  }
  return engine_.Execute(kTwoHopCypher, {{"id", Value(person_id)}});
}

Result<int> CypherSut::ShortestPathLen(int64_t from_person,
                                       int64_t to_person) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (landmarks_ != nullptr) {
    if (std::optional<int> len =
            landmarks_->ShortestPathLen(from_person, to_person)) {
      return *len;
    }
  }
  CypherEngine::Params params = {{"a", Value(from_person)},
                                 {"b", Value(to_person)}};
  Result<QueryResult> result =
      prepared_.shortest_path.valid()
          ? engine_.Execute(prepared_.shortest_path, params)
          : engine_.Execute(kShortestPathCypher, params);
  GB_ASSIGN_OR_RETURN(QueryResult r, std::move(result));
  if (r.rows.empty()) return Status::Internal("no shortest path row");
  return int(r.rows[0][0].as_int());
}

Result<QueryResult> CypherSut::RecentPosts(int64_t person_id,
                                           int64_t limit) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.recent_posts.valid()) {
    return engine_.Execute(
        prepared_.recent_posts,
        {{"id", Value(person_id)}, {"limit", Value(limit)}});
  }
  return engine_.Execute(
      kRecentPostsCypherPrefix + std::to_string(limit),
      {{"id", Value(person_id)}});
}

Result<QueryResult> CypherSut::FriendsWithName(
    int64_t person_id, const std::string& first_name) {
  concurrency::EpochGuard guard;
  if (prepared_.friends_with_name.valid()) {
    return engine_.Execute(
        prepared_.friends_with_name,
        {{"id", Value(person_id)}, {"name", Value(first_name)}});
  }
  return engine_.Execute(
      kFriendsWithNameCypher,
      {{"id", Value(person_id)}, {"name", Value(first_name)}});
}

Result<QueryResult> CypherSut::RepliesOfPost(int64_t post_id) {
  concurrency::EpochGuard guard;
  if (prepared_.replies_of_post.valid()) {
    return engine_.Execute(prepared_.replies_of_post,
                           {{"id", Value(post_id)}});
  }
  return engine_.Execute(kRepliesOfPostCypher, {{"id", Value(post_id)}});
}

Result<QueryResult> CypherSut::TopPosters(int64_t limit) {
  concurrency::EpochGuard guard;
  if (prepared_.top_posters.valid()) {
    return engine_.Execute(prepared_.top_posters,
                           {{"limit", Value(limit)}});
  }
  return engine_.Execute(kTopPostersCypherPrefix + std::to_string(limit),
                         {});
}

Status CypherSut::Apply(const snb::UpdateOp& op) {
  concurrency::WriteBatch batch;
  obs::ScopedTimer timer(probe_.write_micros(), probe_.writes());
  using K = snb::UpdateOp::Kind;
  switch (op.kind) {
    case K::kAddPerson: {
      const auto& p = op.person;
      Status st =
          engine_
              .Execute("CREATE (p:Person {id: $id, firstName: $fn, "
                       "lastName: $ln, gender: $g, birthday: $b, "
                       "creationDate: $cd, browserUsed: $br, "
                       "locationIP: $ip})",
                       {{"id", Value(p.id)},
                        {"fn", Value(p.first_name)},
                        {"ln", Value(p.last_name)},
                        {"g", Value(p.gender)},
                        {"b", Value(p.birthday)},
                        {"cd", Value(p.creation_date)},
                        {"br", Value(p.browser)},
                        {"ip", Value(p.location_ip)}})
              .status();
      if (st.ok() && landmarks_ != nullptr) landmarks_->OnPersonAdded(p.id);
      return st;
    }
    case K::kAddFriendship: {
      Status st =
          engine_
              .Execute("MATCH (a:Person {id: $a}), (b:Person {id: $b}) "
                       "CREATE (a)-[:knows {creationDate: $cd}]->(b)",
                       {{"a", Value(op.knows.person1)},
                        {"b", Value(op.knows.person2)},
                        {"cd", Value(op.knows.creation_date)}})
              .status();
      if (st.ok() && landmarks_ != nullptr) {
        landmarks_->OnEdgeAdded(op.knows.person1, op.knows.person2);
      }
      return st;
    }
    case K::kRemoveFriendship: {
      // Cypher has no DELETE in this engine; unfriending goes through the
      // store's structure API, the same records MATCH/CREATE touch.
      GB_ASSIGN_OR_RETURN(
          VertexId a,
          graph_.FindVertex("Person", "id", Value(op.knows.person1)));
      GB_ASSIGN_OR_RETURN(
          VertexId b,
          graph_.FindVertex("Person", "id", Value(op.knows.person2)));
      GB_RETURN_IF_ERROR(graph_.RemoveEdge("knows", a, b));
      if (landmarks_ != nullptr) {
        landmarks_->OnEdgeRemoved(op.knows.person1, op.knows.person2);
      }
      return Status::OK();
    }
    case K::kAddForum:
      GB_RETURN_IF_ERROR(
          engine_
              .Execute("CREATE (f:Forum {id: $id, title: $t, "
                       "creationDate: $cd})",
                       {{"id", Value(op.forum.id)},
                        {"t", Value(op.forum.title)},
                        {"cd", Value(op.forum.creation_date)}})
              .status());
      return engine_
          .Execute("MATCH (f:Forum {id: $f}), (p:Person {id: $p}) "
                   "CREATE (f)-[:hasModerator]->(p)",
                   {{"f", Value(op.forum.id)},
                    {"p", Value(op.forum.moderator)}})
          .status();
    case K::kAddForumMember:
      return engine_
          .Execute("MATCH (f:Forum {id: $f}), (p:Person {id: $p}) "
                   "CREATE (f)-[:hasMember {joinDate: $jd}]->(p)",
                   {{"f", Value(op.member.forum)},
                    {"p", Value(op.member.person)},
                    {"jd", Value(op.member.join_date)}})
          .status();
    case K::kAddPost: {
      const auto& p = op.post;
      GB_RETURN_IF_ERROR(
          engine_
              .Execute("CREATE (post:Post {id: $id, content: $c, "
                       "creationDate: $cd, browserUsed: $br})",
                       {{"id", Value(p.id)},
                        {"c", Value(p.content)},
                        {"cd", Value(p.creation_date)},
                        {"br", Value(p.browser)}})
              .status());
      GB_RETURN_IF_ERROR(
          engine_
              .Execute("MATCH (post:Post {id: $post}), "
                       "(p:Person {id: $p}) "
                       "CREATE (post)-[:postHasCreator]->(p)",
                       {{"post", Value(p.id)}, {"p", Value(p.creator)}})
              .status());
      return engine_
          .Execute("MATCH (f:Forum {id: $f}), (post:Post {id: $post}) "
                   "CREATE (f)-[:containerOf]->(post)",
                   {{"f", Value(p.forum)}, {"post", Value(p.id)}})
          .status();
    }
    case K::kAddComment: {
      const auto& c = op.comment;
      GB_RETURN_IF_ERROR(
          engine_
              .Execute("CREATE (c:Comment {id: $id, content: $c, "
                       "creationDate: $cd})",
                       {{"id", Value(c.id)},
                        {"c", Value(c.content)},
                        {"cd", Value(c.creation_date)}})
              .status());
      GB_RETURN_IF_ERROR(
          engine_
              .Execute("MATCH (c:Comment {id: $c}), (p:Person {id: $p}) "
                       "CREATE (c)-[:commentHasCreator]->(p)",
                       {{"c", Value(c.id)}, {"p", Value(c.creator)}})
              .status());
      if (c.reply_of_post >= 0) {
        return engine_
            .Execute("MATCH (c:Comment {id: $c}), (post:Post {id: $p}) "
                     "CREATE (c)-[:replyOfPost]->(post)",
                     {{"c", Value(c.id)}, {"p", Value(c.reply_of_post)}})
            .status();
      }
      return engine_
          .Execute("MATCH (c:Comment {id: $c}), (pc:Comment {id: $p}) "
                   "CREATE (c)-[:replyOfComment]->(pc)",
                   {{"c", Value(c.id)}, {"p", Value(c.reply_of_comment)}})
          .status();
    }
    case K::kAddLikePost:
      return engine_
          .Execute("MATCH (p:Person {id: $p}), (post:Post {id: $t}) "
                   "CREATE (p)-[:likesPost {creationDate: $cd}]->(post)",
                   {{"p", Value(op.like.person)},
                    {"t", Value(op.like.post)},
                    {"cd", Value(op.like.creation_date)}})
          .status();
    case K::kAddLikeComment:
      return engine_
          .Execute("MATCH (p:Person {id: $p}), (c:Comment {id: $t}) "
                   "CREATE (p)-[:likesComment {creationDate: $cd}]->(c)",
                   {{"p", Value(op.like.person)},
                    {"t", Value(op.like.comment)},
                    {"cd", Value(op.like.creation_date)}})
          .status();
  }
  return Status::InvalidArgument("unknown update kind");
}

}  // namespace graphbench
