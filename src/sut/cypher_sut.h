#ifndef GRAPHBENCH_SUT_CYPHER_SUT_H_
#define GRAPHBENCH_SUT_CYPHER_SUT_H_

#include <memory>
#include <string>

#include "engines/native/cypher_engine.h"
#include "engines/native/native_graph.h"
#include "obs/metrics.h"
#include "snb/schema.h"
#include "sut/sut.h"

namespace graphbench {

/// Neo4j (Cypher): the native graph store behind its declarative query
/// language. Reads and updates go through the Cypher parser/executor;
/// bulk loading uses the store's import API (neo4j-import analog), which
/// is why it posts the best single-loader ingest rates (Appendix A).
class CypherSut : public Sut {
 public:
  explicit CypherSut(NativeGraphOptions options = {});

  std::string name() const override { return "Neo4j (Cypher)"; }
  Status Load(const snb::Dataset& data) override;
  Result<QueryResult> PointLookup(int64_t person_id) override;
  Result<QueryResult> OneHop(int64_t person_id) override;
  Result<QueryResult> TwoHop(int64_t person_id) override;
  Result<int> ShortestPathLen(int64_t from_person,
                              int64_t to_person) override;
  Result<QueryResult> RecentPosts(int64_t person_id,
                                  int64_t limit) override;
  Result<QueryResult> FriendsWithName(int64_t person_id,
                                      const std::string& first_name) override;
  Result<QueryResult> RepliesOfPost(int64_t post_id) override;
  Result<QueryResult> TopPosters(int64_t limit) override;
  Status Apply(const snb::UpdateOp& op) override;
  uint64_t SizeBytes() const override {
    return graph_.ApproximateSizeBytes();
  }

  void EnablePlanCache() override { engine_.EnablePlanCache(); }
  bool plan_cache_enabled() const override {
    return engine_.plan_cache_enabled();
  }
  lang::PlanCacheStats plan_cache_stats() const override {
    return engine_.plan_cache_stats();
  }
  std::string StatementText(std::string_view kind) const override;

  void EnableLandmarks(const LandmarkOptions& options = {}) override {
    if (landmarks_ == nullptr) {
      landmarks_ = std::make_unique<LandmarkIndex>(options);
    }
  }
  bool landmarks_enabled() const override { return landmarks_ != nullptr; }
  LandmarkStats landmark_stats() const override {
    return landmarks_ == nullptr ? LandmarkStats{} : landmarks_->stats();
  }

  NativeGraph* graph() { return &graph_; }

 private:
  /// Prepares the fixed read statement set (LIMIT $limit where
  /// applicable); called at the end of Load when the plan cache is
  /// enabled. Updates ride the engine's text-keyed cache directly —
  /// their statement texts are compile-time constants.
  Status PrepareStatements();

  NativeGraph graph_;
  CypherEngine engine_;
  obs::SutProbe probe_{"neo4j"};
  std::unique_ptr<LandmarkIndex> landmarks_;

  /// Populated by PrepareStatements; per-call methods bind only.
  struct PreparedSet {
    CypherEngine::PreparedStatement point_lookup, one_hop, two_hop,
        shortest_path, recent_posts, friends_with_name, replies_of_post,
        top_posters;
  };
  PreparedSet prepared_;
};

/// Loads the SNB snapshot into any PropertyGraph-shaped store via a bulk
/// import (used by CypherSut; the Gremlin SUTs load through the structure
/// API instead). Creates the per-label unique id indexes first.
Status LoadSnbIntoNativeGraph(const snb::Dataset& data, NativeGraph* graph);

}  // namespace graphbench

#endif  // GRAPHBENCH_SUT_CYPHER_SUT_H_
