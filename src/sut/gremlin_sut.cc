#include "sut/gremlin_sut.h"

#include <thread>

#include "concurrency/epoch.h"
#include "engines/native/native_graph.h"
#include "engines/titan/titan_graph.h"
#include "obs/profiler.h"
#include "kv/btree_kv.h"
#include "kv/lsm_kv.h"
#include "kv/paged_btree_kv.h"
#include "providers/native_provider.h"
#include "providers/sqlg_provider.h"
#include "sut/relational_sut.h"

namespace graphbench {

namespace {

// Maps a display name like "Titan-C (Gremlin)" to the short metric id
// ("titan-c") so probe counters line up with SutKindId() everywhere else.
std::string ProbeIdForName(const std::string& name) {
  Result<SutKind> kind = ParseSutKind(name);
  return kind.ok() ? SutKindId(*kind) : "gremlin";
}

}  // namespace

GremlinSut::GremlinSut(std::string name,
                       std::unique_ptr<GremlinGraph> graph,
                       GremlinServerOptions server_options,
                       std::shared_ptr<void> extra)
    : name_(std::move(name)),
      extra_(std::move(extra)),
      graph_(std::move(graph)),
      options_(server_options),
      server_(std::make_unique<GremlinServer>(graph_.get(), options_)),
      probe_(ProbeIdForName(name_)) {}

Status GremlinSut::LoadVertices(const snb::Dataset& data, size_t shard,
                                size_t num_shards) {
  auto mine = [&](size_t i) { return i % num_shards == shard; };
  for (size_t i = 0; i < data.places.size(); ++i) {
    if (!mine(i)) continue;
    const auto& pl = data.places[i];
    GB_RETURN_IF_ERROR(graph_
                           ->AddVertex("Place", {{"id", Value(pl.id)},
                                                 {"name", Value(pl.name)}})
                           .status());
  }
  for (size_t i = 0; i < data.tags.size(); ++i) {
    if (!mine(i)) continue;
    const auto& t = data.tags[i];
    GB_RETURN_IF_ERROR(graph_
                           ->AddVertex("Tag", {{"id", Value(t.id)},
                                               {"name", Value(t.name)}})
                           .status());
  }
  for (size_t i = 0; i < data.organisations.size(); ++i) {
    if (!mine(i)) continue;
    const auto& o = data.organisations[i];
    GB_RETURN_IF_ERROR(graph_
                           ->AddVertex("Organisation",
                                       {{"id", Value(o.id)},
                                        {"name", Value(o.name)},
                                        {"type", Value(o.type)}})
                           .status());
  }
  for (size_t i = 0; i < data.persons.size(); ++i) {
    if (!mine(i)) continue;
    const auto& p = data.persons[i];
    GB_RETURN_IF_ERROR(
        graph_
            ->AddVertex("Person",
                        {{"id", Value(p.id)},
                         {"firstName", Value(p.first_name)},
                         {"lastName", Value(p.last_name)},
                         {"gender", Value(p.gender)},
                         {"birthday", Value(p.birthday)},
                         {"creationDate", Value(p.creation_date)},
                         {"browserUsed", Value(p.browser)},
                         {"locationIP", Value(p.location_ip)},
                         {"cityId", Value(p.city_id)}})
            .status());
  }
  for (size_t i = 0; i < data.forums.size(); ++i) {
    if (!mine(i)) continue;
    const auto& f = data.forums[i];
    GB_RETURN_IF_ERROR(
        graph_
            ->AddVertex("Forum",
                        {{"id", Value(f.id)},
                         {"title", Value(f.title)},
                         {"creationDate", Value(f.creation_date)},
                         {"moderatorId", Value(f.moderator)}})
            .status());
  }
  for (size_t i = 0; i < data.posts.size(); ++i) {
    if (!mine(i)) continue;
    const auto& p = data.posts[i];
    GB_RETURN_IF_ERROR(
        graph_
            ->AddVertex("Post",
                        {{"id", Value(p.id)},
                         {"content", Value(p.content)},
                         {"creationDate", Value(p.creation_date)},
                         {"creatorId", Value(p.creator)},
                         {"forumId", Value(p.forum)},
                         {"browserUsed", Value(p.browser)}})
            .status());
  }
  for (size_t i = 0; i < data.comments.size(); ++i) {
    if (!mine(i)) continue;
    const auto& c = data.comments[i];
    GB_RETURN_IF_ERROR(
        graph_
            ->AddVertex("Comment",
                        {{"id", Value(c.id)},
                         {"content", Value(c.content)},
                         {"creationDate", Value(c.creation_date)},
                         {"creatorId", Value(c.creator)},
                         {"replyOfPost", Value(c.reply_of_post)},
                         {"replyOfComment", Value(c.reply_of_comment)}})
            .status());
  }
  return Status::OK();
}

Result<GVertex> GremlinSut::FindOne(std::string_view label, int64_t id) {
  GB_ASSIGN_OR_RETURN(std::vector<GVertex> found,
                      graph_->VerticesByProperty(label, "id", Value(id)));
  if (found.empty()) {
    return Status::NotFound(std::string(label) + " " + std::to_string(id));
  }
  return found.front();
}

Status GremlinSut::LoadEdges(const snb::Dataset& data, size_t shard,
                             size_t num_shards) {
  auto mine = [&](size_t i) { return i % num_shards == shard; };
  // Endpoints are resolved through the id index per edge — the LDBC
  // Gremlin loader's access pattern.
  for (size_t i = 0; i < data.knows.size(); ++i) {
    if (!mine(i)) continue;
    const auto& k = data.knows[i];
    GB_ASSIGN_OR_RETURN(GVertex a, FindOne("Person", k.person1));
    GB_ASSIGN_OR_RETURN(GVertex b, FindOne("Person", k.person2));
    GB_RETURN_IF_ERROR(graph_->AddEdge(
        "knows", a, b, {{"creationDate", Value(k.creation_date)}}));
  }
  for (size_t i = 0; i < data.forums.size(); ++i) {
    if (!mine(i)) continue;
    const auto& f = data.forums[i];
    GB_ASSIGN_OR_RETURN(GVertex forum, FindOne("Forum", f.id));
    GB_ASSIGN_OR_RETURN(GVertex mod, FindOne("Person", f.moderator));
    GB_RETURN_IF_ERROR(graph_->AddEdge("hasModerator", forum, mod, {}));
  }
  for (size_t i = 0; i < data.members.size(); ++i) {
    if (!mine(i)) continue;
    const auto& m = data.members[i];
    GB_ASSIGN_OR_RETURN(GVertex forum, FindOne("Forum", m.forum));
    GB_ASSIGN_OR_RETURN(GVertex person, FindOne("Person", m.person));
    GB_RETURN_IF_ERROR(graph_->AddEdge("hasMember", forum, person,
                                       {{"joinDate", Value(m.join_date)}}));
  }
  for (size_t i = 0; i < data.posts.size(); ++i) {
    if (!mine(i)) continue;
    const auto& p = data.posts[i];
    GB_ASSIGN_OR_RETURN(GVertex post, FindOne("Post", p.id));
    GB_ASSIGN_OR_RETURN(GVertex creator, FindOne("Person", p.creator));
    GB_ASSIGN_OR_RETURN(GVertex forum, FindOne("Forum", p.forum));
    GB_RETURN_IF_ERROR(graph_->AddEdge("postHasCreator", post, creator, {}));
    GB_RETURN_IF_ERROR(graph_->AddEdge("containerOf", forum, post, {}));
  }
  for (size_t i = 0; i < data.comments.size(); ++i) {
    if (!mine(i)) continue;
    const auto& c = data.comments[i];
    GB_ASSIGN_OR_RETURN(GVertex comment, FindOne("Comment", c.id));
    GB_ASSIGN_OR_RETURN(GVertex creator, FindOne("Person", c.creator));
    GB_RETURN_IF_ERROR(
        graph_->AddEdge("commentHasCreator", comment, creator, {}));
    if (c.reply_of_post >= 0) {
      GB_ASSIGN_OR_RETURN(GVertex post, FindOne("Post", c.reply_of_post));
      GB_RETURN_IF_ERROR(graph_->AddEdge("replyOfPost", comment, post, {}));
    } else {
      GB_ASSIGN_OR_RETURN(GVertex parent,
                          FindOne("Comment", c.reply_of_comment));
      GB_RETURN_IF_ERROR(
          graph_->AddEdge("replyOfComment", comment, parent, {}));
    }
  }
  for (size_t i = 0; i < data.likes.size(); ++i) {
    if (!mine(i)) continue;
    const auto& l = data.likes[i];
    GB_ASSIGN_OR_RETURN(GVertex person, FindOne("Person", l.person));
    if (l.post >= 0) {
      GB_ASSIGN_OR_RETURN(GVertex post, FindOne("Post", l.post));
      GB_RETURN_IF_ERROR(
          graph_->AddEdge("likesPost", person, post,
                          {{"creationDate", Value(l.creation_date)}}));
    } else {
      GB_ASSIGN_OR_RETURN(GVertex comment, FindOne("Comment", l.comment));
      GB_RETURN_IF_ERROR(
          graph_->AddEdge("likesComment", person, comment,
                          {{"creationDate", Value(l.creation_date)}}));
    }
  }
  for (size_t i = 0; i < data.post_tags.size(); ++i) {
    if (!mine(i)) continue;
    const auto& pt = data.post_tags[i];
    GB_ASSIGN_OR_RETURN(GVertex post, FindOne("Post", pt.post));
    GB_ASSIGN_OR_RETURN(GVertex tag, FindOne("Tag", pt.tag));
    GB_RETURN_IF_ERROR(graph_->AddEdge("hasTag", post, tag, {}));
  }
  for (size_t i = 0; i < data.persons.size(); ++i) {
    if (!mine(i)) continue;
    const auto& p = data.persons[i];
    GB_ASSIGN_OR_RETURN(GVertex person, FindOne("Person", p.id));
    GB_ASSIGN_OR_RETURN(GVertex place, FindOne("Place", p.city_id));
    GB_RETURN_IF_ERROR(graph_->AddEdge("isLocatedIn", person, place, {}));
  }
  for (size_t i = 0; i < data.study_at.size(); ++i) {
    if (!mine(i)) continue;
    const auto& s = data.study_at[i];
    GB_ASSIGN_OR_RETURN(GVertex person, FindOne("Person", s.person));
    GB_ASSIGN_OR_RETURN(GVertex org, FindOne("Organisation",
                                             s.organisation));
    GB_RETURN_IF_ERROR(graph_->AddEdge("studyAt", person, org,
                                       {{"classYear", Value(s.year)}}));
  }
  for (size_t i = 0; i < data.work_at.size(); ++i) {
    if (!mine(i)) continue;
    const auto& w = data.work_at[i];
    GB_ASSIGN_OR_RETURN(GVertex person, FindOne("Person", w.person));
    GB_ASSIGN_OR_RETURN(GVertex org, FindOne("Organisation",
                                             w.organisation));
    GB_RETURN_IF_ERROR(graph_->AddEdge("workAt", person, org,
                                       {{"workFrom", Value(w.year)}}));
  }
  return Status::OK();
}

Status GremlinSut::Load(const snb::Dataset& data) {
  concurrency::WriteBatch batch;
  GB_RETURN_IF_ERROR(LoadVertices(data, 0, 1));
  GB_RETURN_IF_ERROR(LoadEdges(data, 0, 1));
  if (landmarks_ != nullptr) SeedLandmarkIndex(data, landmarks_.get());
  return Status::OK();
}

Status GremlinSut::LoadConcurrent(const snb::Dataset& data, size_t loaders) {
  if (loaders <= 1) return Load(data);
  std::vector<Status> statuses(loaders);
  auto run_phase = [&](bool vertices) {
    std::vector<std::thread> threads;
    for (size_t s = 0; s < loaders; ++s) {
      threads.emplace_back([&, s] {
        statuses[s] = vertices ? LoadVertices(data, s, loaders)
                               : LoadEdges(data, s, loaders);
      });
    }
    for (auto& t : threads) t.join();
  };
  run_phase(true);
  for (const Status& s : statuses) GB_RETURN_IF_ERROR(s);
  run_phase(false);
  for (const Status& s : statuses) GB_RETURN_IF_ERROR(s);
  if (landmarks_ != nullptr) SeedLandmarkIndex(data, landmarks_.get());
  return Status::OK();
}

QueryResult GremlinSut::Reshape(std::vector<Value> flat, size_t width,
                                std::vector<std::string> columns) {
  QueryResult out;
  out.columns = std::move(columns);
  for (size_t i = 0; i + width <= flat.size(); i += width) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) row.push_back(std::move(flat[i + c]));
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<QueryResult> GremlinSut::PointLookup(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  // buildTraversal / materializeResult are client-side work the server's
  // step profiler cannot see. Both run strictly outside Submit, so they
  // never race with the worker recording into the same profile.
  obs::OpTimer build_op("buildTraversal");
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(person_id))
      .ValueMap({"firstName", "lastName", "gender", "birthday",
                 "browserUsed", "locationIP"});
  build_op.Stop();
  GB_ASSIGN_OR_RETURN(std::vector<Value> flat, server_->Submit(t));
  obs::OpTimer mat_op("materializeResult");
  QueryResult out = Reshape(std::move(flat), 6,
                            {"firstName", "lastName", "gender", "birthday",
                             "browserUsed", "locationIP"});
  mat_op.AddRows(out.rows.size());
  return out;
}

Result<QueryResult> GremlinSut::OneHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  obs::OpTimer build_op("buildTraversal");
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(person_id))
      .Both("knows")
      .ValueMap({"id", "firstName", "lastName"});
  build_op.Stop();
  GB_ASSIGN_OR_RETURN(std::vector<Value> flat, server_->Submit(t));
  obs::OpTimer mat_op("materializeResult");
  QueryResult out =
      Reshape(std::move(flat), 3, {"id", "firstName", "lastName"});
  mat_op.AddRows(out.rows.size());
  return out;
}

Result<QueryResult> GremlinSut::TwoHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  obs::OpTimer build_op("buildTraversal");
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(person_id))
      .As("p")
      .Both("knows")
      .Both("knows")
      .WhereNeq("p")
      .Dedup()
      .Values("id");
  build_op.Stop();
  GB_ASSIGN_OR_RETURN(std::vector<Value> flat, server_->Submit(t));
  obs::OpTimer mat_op("materializeResult");
  QueryResult out = Reshape(std::move(flat), 1, {"id"});
  mat_op.AddRows(out.rows.size());
  return out;
}

Result<int> GremlinSut::ShortestPathLen(int64_t from_person,
                                        int64_t to_person) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (landmarks_ != nullptr) {
    if (std::optional<int> len =
            landmarks_->ShortestPathLen(from_person, to_person)) {
      return *len;
    }
  }
  obs::OpTimer build_op("buildTraversal");
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(from_person))
      .ShortestPath("knows", "id", Value(to_person));
  build_op.Stop();
  GB_ASSIGN_OR_RETURN(std::vector<Value> flat, server_->Submit(t));
  if (flat.empty()) return Status::NotFound("start person");
  return int(flat[0].as_int());
}

Result<QueryResult> GremlinSut::RecentPosts(int64_t person_id,
                                            int64_t limit) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  obs::OpTimer build_op("buildTraversal");
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(person_id))
      .In("postHasCreator")
      .OrderBy("creationDate", /*desc=*/true)
      .Limit(limit)
      .ValueMap({"id", "content", "creationDate"});
  build_op.Stop();
  GB_ASSIGN_OR_RETURN(std::vector<Value> flat, server_->Submit(t));
  obs::OpTimer mat_op("materializeResult");
  QueryResult out =
      Reshape(std::move(flat), 3, {"id", "content", "creationDate"});
  mat_op.AddRows(out.rows.size());
  return out;
}

Result<QueryResult> GremlinSut::FriendsWithName(
    int64_t person_id, const std::string& first_name) {
  concurrency::EpochGuard guard;
  Traversal t;
  t.V().HasIndexed("Person", "id", Value(person_id))
      .Both("knows")
      .Has("firstName", Value(first_name))
      .OrderBy("id", /*desc=*/false)
      .ValueMap({"id", "lastName"});
  GB_ASSIGN_OR_RETURN(std::vector<Value> flat, server_->Submit(t));
  return Reshape(std::move(flat), 2, {"id", "lastName"});
}

Result<QueryResult> GremlinSut::RepliesOfPost(int64_t post_id) {
  concurrency::EpochGuard guard;
  Traversal t;
  t.V().HasIndexed("Post", "id", Value(post_id))
      .In("replyOfPost")
      .OrderBy("creationDate", /*desc=*/true)
      .ValueMap({"id", "content", "creatorId"});
  GB_ASSIGN_OR_RETURN(std::vector<Value> flat, server_->Submit(t));
  return Reshape(std::move(flat), 3, {"id", "content", "creatorId"});
}

Result<QueryResult> GremlinSut::TopPosters(int64_t limit) {
  concurrency::EpochGuard guard;
  Traversal t;
  t.V("Post").Out("postHasCreator").GroupCount("id", limit);
  GB_ASSIGN_OR_RETURN(std::vector<Value> flat, server_->Submit(t));
  return Reshape(std::move(flat), 2, {"personId", "posts"});
}

Status GremlinSut::Apply(const snb::UpdateOp& op) {
  // No outer WriteBatch here: Submit hands each traversal to a Gremlin
  // Server worker thread, and a batch pinned to *this* thread would hide
  // the worker's own (already committed) mutations from the follow-up
  // traversals of multi-step updates. Each worker-side engine mutation
  // opens and commits its own batch instead.
  obs::ScopedTimer timer(probe_.write_micros(), probe_.writes());
  using K = snb::UpdateOp::Kind;
  auto submit = [this](const Traversal& t) {
    return server_->Submit(t).status();
  };
  switch (op.kind) {
    case K::kAddPerson: {
      const auto& p = op.person;
      Traversal t;
      t.AddV("Person", {{"id", Value(p.id)},
                        {"firstName", Value(p.first_name)},
                        {"lastName", Value(p.last_name)},
                        {"gender", Value(p.gender)},
                        {"birthday", Value(p.birthday)},
                        {"creationDate", Value(p.creation_date)},
                        {"browserUsed", Value(p.browser)},
                        {"locationIP", Value(p.location_ip)},
                        {"cityId", Value(p.city_id)}});
      GB_RETURN_IF_ERROR(submit(t));
      if (landmarks_ != nullptr) landmarks_->OnPersonAdded(p.id);
      return Status::OK();
    }
    case K::kAddFriendship: {
      Traversal t;
      t.V().HasIndexed("Person", "id", Value(op.knows.person1))
          .AddEdgeTo("knows", "Person", "id", Value(op.knows.person2),
                     {{"creationDate", Value(op.knows.creation_date)}});
      GB_RETURN_IF_ERROR(submit(t));
      if (landmarks_ != nullptr) {
        landmarks_->OnEdgeAdded(op.knows.person1, op.knows.person2);
      }
      return Status::OK();
    }
    case K::kRemoveFriendship: {
      Traversal t;
      t.V().HasIndexed("Person", "id", Value(op.knows.person1))
          .DropEdgeTo("knows", "Person", "id", Value(op.knows.person2));
      GB_RETURN_IF_ERROR(submit(t));
      if (landmarks_ != nullptr) {
        landmarks_->OnEdgeRemoved(op.knows.person1, op.knows.person2);
      }
      return Status::OK();
    }
    case K::kAddForum: {
      const auto& f = op.forum;
      Traversal create;
      create.AddV("Forum", {{"id", Value(f.id)},
                            {"title", Value(f.title)},
                            {"creationDate", Value(f.creation_date)},
                            {"moderatorId", Value(f.moderator)}});
      GB_RETURN_IF_ERROR(submit(create));
      Traversal link;
      link.V().HasIndexed("Forum", "id", Value(f.id))
          .AddEdgeTo("hasModerator", "Person", "id", Value(f.moderator), {});
      return submit(link);
    }
    case K::kAddForumMember: {
      Traversal t;
      t.V().HasIndexed("Forum", "id", Value(op.member.forum))
          .AddEdgeTo("hasMember", "Person", "id", Value(op.member.person),
                     {{"joinDate", Value(op.member.join_date)}});
      return submit(t);
    }
    case K::kAddPost: {
      const auto& p = op.post;
      Traversal create;
      create.AddV("Post", {{"id", Value(p.id)},
                           {"content", Value(p.content)},
                           {"creationDate", Value(p.creation_date)},
                           {"creatorId", Value(p.creator)},
                           {"forumId", Value(p.forum)},
                           {"browserUsed", Value(p.browser)}});
      GB_RETURN_IF_ERROR(submit(create));
      Traversal creator;
      creator.V().HasIndexed("Post", "id", Value(p.id))
          .AddEdgeTo("postHasCreator", "Person", "id", Value(p.creator), {});
      GB_RETURN_IF_ERROR(submit(creator));
      Traversal container;
      container.V().HasIndexed("Forum", "id", Value(p.forum))
          .AddEdgeTo("containerOf", "Post", "id", Value(p.id), {});
      return submit(container);
    }
    case K::kAddComment: {
      const auto& c = op.comment;
      Traversal create;
      create.AddV("Comment", {{"id", Value(c.id)},
                              {"content", Value(c.content)},
                              {"creationDate", Value(c.creation_date)},
                              {"creatorId", Value(c.creator)},
                              {"replyOfPost", Value(c.reply_of_post)},
                              {"replyOfComment",
                               Value(c.reply_of_comment)}});
      GB_RETURN_IF_ERROR(submit(create));
      Traversal creator;
      creator.V().HasIndexed("Comment", "id", Value(c.id))
          .AddEdgeTo("commentHasCreator", "Person", "id", Value(c.creator),
                     {});
      GB_RETURN_IF_ERROR(submit(creator));
      Traversal reply;
      if (c.reply_of_post >= 0) {
        reply.V().HasIndexed("Comment", "id", Value(c.id))
            .AddEdgeTo("replyOfPost", "Post", "id", Value(c.reply_of_post),
                       {});
      } else {
        reply.V().HasIndexed("Comment", "id", Value(c.id))
            .AddEdgeTo("replyOfComment", "Comment", "id",
                       Value(c.reply_of_comment), {});
      }
      return submit(reply);
    }
    case K::kAddLikePost: {
      Traversal t;
      t.V().HasIndexed("Person", "id", Value(op.like.person))
          .AddEdgeTo("likesPost", "Post", "id", Value(op.like.post),
                     {{"creationDate", Value(op.like.creation_date)}});
      return submit(t);
    }
    case K::kAddLikeComment: {
      Traversal t;
      t.V().HasIndexed("Person", "id", Value(op.like.person))
          .AddEdgeTo("likesComment", "Comment", "id",
                     Value(op.like.comment),
                     {{"creationDate", Value(op.like.creation_date)}});
      return submit(t);
    }
  }
  return Status::InvalidArgument("unknown update kind");
}

namespace {

constexpr const char* kIndexedLabels[] = {
    "Person", "Forum", "Post", "Comment", "Tag", "Place", "Organisation"};

std::unique_ptr<GremlinSut> MakeTitanSut(std::unique_ptr<KvStore> backend,
                                         const std::string& name,
                                         GremlinServerOptions server_options) {
  auto titan = std::make_unique<TitanGraph>(std::move(backend));
  for (const char* label : kIndexedLabels) {
    titan->RegisterUniqueIndex(label, "id");
  }
  return std::make_unique<GremlinSut>(name, std::move(titan),
                                      server_options);
}

}  // namespace

std::unique_ptr<GremlinSut> MakeNeo4jGremlinSut(
    GremlinServerOptions server_options) {
  auto native = std::make_shared<NativeGraph>();
  for (const char* label : kIndexedLabels) {
    native->CreateUniqueIndex(label, "id");
  }
  auto provider = std::make_unique<NativeProvider>(native.get());
  return std::make_unique<GremlinSut>("Neo4j (Gremlin)",
                                      std::move(provider), server_options,
                                      native);
}

std::unique_ptr<GremlinSut> MakeTitanCSut(
    GremlinServerOptions server_options) {
  return MakeTitanSut(std::make_unique<LsmKv>(), "Titan-C (Gremlin)",
                      server_options);
}

std::unique_ptr<GremlinSut> MakeTitanBSut(
    GremlinServerOptions server_options) {
  return MakeTitanSut(std::make_unique<BTreeKv>(), "Titan-B (Gremlin)",
                      server_options);
}

Result<std::unique_ptr<GremlinSut>> MakeTitanBSut(
    const storage::DurabilityOptions& durability,
    GremlinServerOptions server_options) {
  if (!durability.enabled) return MakeTitanBSut(server_options);
  GB_ASSIGN_OR_RETURN(
      std::unique_ptr<PagedBTreeKv> backend,
      PagedBTreeKv::Open(storage::ResolveFileSystem(durability),
                         storage::DbPath(durability, "titanb"),
                         storage::WalPath(durability, "titanb"),
                         storage::ToPagerOptions(durability)));
  return MakeTitanSut(std::move(backend), "Titan-B (Gremlin)",
                      server_options);
}

std::unique_ptr<GremlinSut> MakeSqlgSut(
    GremlinServerOptions server_options) {
  // Sqlg materializes its own schema on the RDBMS: one table per vertex
  // label plus one E_* table per edge label with (srcId, dstId) columns —
  // every edge is a row, every structure-API call a SQL statement.
  auto db = std::make_shared<Database>(StorageMode::kRow);
  RelationalSut::CreateSnbSchema(db.get());
  using T = Value::Type;
  struct EdgeDef {
    const char* label;
    const char* table;
    const char* src_label;
    const char* dst_label;
    const char* prop;  // optional third column
  };
  const EdgeDef kEdges[] = {
      {"knows", "e_knows", "Person", "Person", "creationDate"},
      {"postHasCreator", "e_post_has_creator", "Post", "Person", nullptr},
      {"containerOf", "e_container_of", "Forum", "Post", nullptr},
      {"commentHasCreator", "e_comment_has_creator", "Comment", "Person",
       nullptr},
      {"hasModerator", "e_has_moderator", "Forum", "Person", nullptr},
      {"hasMember", "e_has_member", "Forum", "Person", "joinDate"},
      {"likesPost", "e_likes_post", "Person", "Post", "creationDate"},
      {"likesComment", "e_likes_comment", "Person", "Comment",
       "creationDate"},
      {"hasTag", "e_has_tag", "Post", "Tag", nullptr},
      {"isLocatedIn", "e_is_located_in", "Person", "Place", nullptr},
      {"replyOfPost", "e_reply_of_post", "Comment", "Post", nullptr},
      {"replyOfComment", "e_reply_of_comment", "Comment", "Comment",
       nullptr},
      {"studyAt", "e_study_at", "Person", "Organisation", "classYear"},
      {"workAt", "e_work_at", "Person", "Organisation", "workFrom"},
  };
  for (const EdgeDef& e : kEdges) {
    std::vector<ColumnDef> columns{{"srcId", T::kInt}, {"dstId", T::kInt}};
    if (e.prop != nullptr) columns.push_back({e.prop, T::kInt});
    db->CreateTable(TableSchema(e.table, columns));
    db->CreateIndex(e.table, "srcId", false);
    db->CreateIndex(e.table, "dstId", false);
  }

  auto sqlg = std::make_unique<SqlgProvider>(db.get());
  sqlg->RegisterVertexLabel("Person", "person");
  sqlg->RegisterVertexLabel("Forum", "forum");
  sqlg->RegisterVertexLabel("Post", "post");
  sqlg->RegisterVertexLabel("Comment", "comment");
  sqlg->RegisterVertexLabel("Tag", "tag");
  sqlg->RegisterVertexLabel("Place", "place");
  sqlg->RegisterVertexLabel("Organisation", "organisation");
  for (const EdgeDef& e : kEdges) {
    sqlg->RegisterEdgeLabel(e.label, e.table, "srcId", "dstId", e.src_label,
                            e.dst_label);
  }
  return std::make_unique<GremlinSut>("Sqlg (Gremlin)", std::move(sqlg),
                                      server_options, db);
}

}  // namespace graphbench
