#ifndef GRAPHBENCH_SUT_GREMLIN_SUT_H_
#define GRAPHBENCH_SUT_GREMLIN_SUT_H_

#include <memory>
#include <string>

#include "engines/relational/database.h"
#include "obs/metrics.h"
#include "snb/schema.h"
#include "storage/durability.h"
#include "sut/sut.h"
#include "tinkerpop/gremlin_server.h"
#include "tinkerpop/structure.h"

namespace graphbench {

/// Shared SUT for every TinkerPop3-compliant configuration
/// (Neo4j-Gremlin, Titan-C, Titan-B, Sqlg). Queries and updates are
/// traversals submitted through the Gremlin Server analog; bulk loading
/// goes through the structure API in embedded mode (the LDBC Gremlin
/// loading utilities of Appendix A).
class GremlinSut : public Sut {
 public:
  /// `graph` is the provider; `extra` optionally owns provider
  /// dependencies (e.g. the Database under a SqlgProvider).
  GremlinSut(std::string name, std::unique_ptr<GremlinGraph> graph,
             GremlinServerOptions server_options = {},
             std::shared_ptr<void> extra = nullptr);

  std::string name() const override { return name_; }
  Status Load(const snb::Dataset& data) override;

  /// Appendix A: load with `loaders` concurrent threads (vertices first,
  /// then edges, each phase split across threads).
  Status LoadConcurrent(const snb::Dataset& data, size_t loaders);

  Result<QueryResult> PointLookup(int64_t person_id) override;
  Result<QueryResult> OneHop(int64_t person_id) override;
  Result<QueryResult> TwoHop(int64_t person_id) override;
  Result<int> ShortestPathLen(int64_t from_person,
                              int64_t to_person) override;
  Result<QueryResult> RecentPosts(int64_t person_id,
                                  int64_t limit) override;
  Result<QueryResult> FriendsWithName(int64_t person_id,
                                      const std::string& first_name) override;
  Result<QueryResult> RepliesOfPost(int64_t post_id) override;
  Result<QueryResult> TopPosters(int64_t limit) override;
  Status Apply(const snb::UpdateOp& op) override;
  uint64_t SizeBytes() const override {
    return graph_->ApproximateSizeBytes();
  }

  /// Turns on the Gremlin Server's bytecode→traversal cache by recreating
  /// the server with a non-zero cache capacity. Call before Load (the
  /// factory form MakeSut(kind, SutOptions) does); recreating the server
  /// drops any in-flight requests, so never call it mid-workload.
  void EnablePlanCache() override {
    options_.plan_cache_capacity = lang::kDefaultPlanCacheCapacity;
    server_ = std::make_unique<GremlinServer>(graph_.get(), options_);
  }
  bool plan_cache_enabled() const override {
    return server_->plan_cache_enabled();
  }
  lang::PlanCacheStats plan_cache_stats() const override {
    return server_->plan_cache_stats();
  }

  void EnableLandmarks(const LandmarkOptions& options = {}) override {
    if (landmarks_ == nullptr) {
      landmarks_ = std::make_unique<LandmarkIndex>(options);
    }
  }
  bool landmarks_enabled() const override { return landmarks_ != nullptr; }
  LandmarkStats landmark_stats() const override {
    return landmarks_ == nullptr ? LandmarkStats{} : landmarks_->stats();
  }

  GremlinGraph* graph() { return graph_.get(); }
  GremlinServer* server() { return server_.get(); }

  /// Loads vertices/edges via the structure API. `shard`/`num_shards`
  /// partition the work for concurrent loading.
  Status LoadVertices(const snb::Dataset& data, size_t shard,
                      size_t num_shards);
  Status LoadEdges(const snb::Dataset& data, size_t shard,
                   size_t num_shards);

 private:
  // Reshapes a flat valueMap stream into rows of `width` columns.
  static QueryResult Reshape(std::vector<Value> flat, size_t width,
                             std::vector<std::string> columns);
  Result<GVertex> FindOne(std::string_view label, int64_t id);

  std::string name_;
  std::shared_ptr<void> extra_;
  std::unique_ptr<GremlinGraph> graph_;
  // Kept so EnablePlanCache can rebuild the server with the same sizing.
  GremlinServerOptions options_;
  std::unique_ptr<GremlinServer> server_;
  obs::SutProbe probe_;
  std::unique_ptr<LandmarkIndex> landmarks_;
};

/// Factory helpers for the four TinkerPop configurations. The server
/// options expose the Gremlin Server's worker/queue sizing for the §4.4
/// overload experiment.
std::unique_ptr<GremlinSut> MakeNeo4jGremlinSut(
    GremlinServerOptions server_options = {});
std::unique_ptr<GremlinSut> MakeTitanCSut(
    GremlinServerOptions server_options = {});
std::unique_ptr<GremlinSut> MakeTitanBSut(
    GremlinServerOptions server_options = {});
/// Durable Titan-B (--durable): the BerkeleyDB analog backed by
/// PagedBTreeKv over the pager/WAL substrate. Returns the open error when
/// the db/wal files cannot be opened or recovered.
Result<std::unique_ptr<GremlinSut>> MakeTitanBSut(
    const storage::DurabilityOptions& durability,
    GremlinServerOptions server_options = {});
std::unique_ptr<GremlinSut> MakeSqlgSut(
    GremlinServerOptions server_options = {});

}  // namespace graphbench

#endif  // GRAPHBENCH_SUT_GREMLIN_SUT_H_
