#include "sut/matrix_sut.h"

#include <optional>
#include <utility>

#include "concurrency/epoch.h"

namespace graphbench {

MatrixSut::MatrixSut(MatrixEngineOptions options) : engine_(options) {}

Status MatrixSut::Load(const snb::Dataset& data) {
  concurrency::WriteBatch batch;
  GB_RETURN_IF_ERROR(engine_.Load(data));
  if (landmarks_ != nullptr) SeedLandmarkIndex(data, landmarks_.get());
  return Status::OK();
}

Result<QueryResult> MatrixSut::PointLookup(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  return engine_.PointLookup(person_id);
}

Result<QueryResult> MatrixSut::OneHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  return engine_.OneHop(person_id);
}

Result<QueryResult> MatrixSut::TwoHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  return engine_.TwoHop(person_id);
}

Result<int> MatrixSut::ShortestPathLen(int64_t from_person,
                                       int64_t to_person) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (landmarks_ != nullptr) {
    if (std::optional<int> len =
            landmarks_->ShortestPathLen(from_person, to_person)) {
      return *len;
    }
  }
  return engine_.ShortestPathLen(from_person, to_person);
}

Result<QueryResult> MatrixSut::RecentPosts(int64_t person_id, int64_t limit) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  return engine_.RecentPosts(person_id, limit);
}

Result<QueryResult> MatrixSut::FriendsWithName(
    int64_t person_id, const std::string& first_name) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  return engine_.FriendsWithName(person_id, first_name);
}

Result<QueryResult> MatrixSut::RepliesOfPost(int64_t post_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  return engine_.RepliesOfPost(post_id);
}

Result<QueryResult> MatrixSut::TopPosters(int64_t limit) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  return engine_.TopPosters(limit);
}

Status MatrixSut::Apply(const snb::UpdateOp& op) {
  concurrency::WriteBatch batch;
  obs::ScopedTimer timer(probe_.write_micros(), probe_.writes());
  bool knows_changed = false;
  Status st = engine_.Apply(op, &knows_changed);
  if (!st.ok() || landmarks_ == nullptr) return st;
  // The landmark mirror is dup-tolerant but the boolean matrix collapses
  // duplicate friendships, so hooks fire only when the matrix actually
  // mutated — otherwise a duplicated insert followed by one remove would
  // leave a phantom parallel edge in the mirror.
  using K = snb::UpdateOp::Kind;
  switch (op.kind) {
    case K::kAddPerson:
      landmarks_->OnPersonAdded(op.person.id);
      break;
    case K::kAddFriendship:
      if (knows_changed) {
        landmarks_->OnEdgeAdded(op.knows.person1, op.knows.person2);
      }
      break;
    case K::kRemoveFriendship:
      if (knows_changed) {
        landmarks_->OnEdgeRemoved(op.knows.person1, op.knows.person2);
      }
      break;
    default:
      break;
  }
  return st;
}

}  // namespace graphbench
