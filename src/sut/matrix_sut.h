#ifndef GRAPHBENCH_SUT_MATRIX_SUT_H_
#define GRAPHBENCH_SUT_MATRIX_SUT_H_

#include <memory>
#include <string>

#include "engines/matrix/matrix_engine.h"
#include "obs/metrics.h"
#include "snb/schema.h"
#include "sut/sut.h"

namespace graphbench {

/// Matrix (GraphBLAS): the ninth configuration — the graph as a sparse
/// boolean adjacency matrix with queries as linear-algebra kernels, the
/// RedisGraph design point the paper's taxonomy omits. There is no query
/// language in front of the engine: each benchmark query maps directly to
/// a matrix or column-table operation, which is what makes this column the
/// raw-speed bar for the k-hop reads (ROADMAP: "Ninth SUT").
class MatrixSut : public Sut {
 public:
  explicit MatrixSut(MatrixEngineOptions options = {});

  std::string name() const override { return "Matrix (GraphBLAS)"; }
  Status Load(const snb::Dataset& data) override;
  Result<QueryResult> PointLookup(int64_t person_id) override;
  Result<QueryResult> OneHop(int64_t person_id) override;
  Result<QueryResult> TwoHop(int64_t person_id) override;
  Result<int> ShortestPathLen(int64_t from_person,
                              int64_t to_person) override;
  Result<QueryResult> RecentPosts(int64_t person_id,
                                  int64_t limit) override;
  Result<QueryResult> FriendsWithName(int64_t person_id,
                                      const std::string& first_name) override;
  Result<QueryResult> RepliesOfPost(int64_t post_id) override;
  Result<QueryResult> TopPosters(int64_t limit) override;
  Status Apply(const snb::UpdateOp& op) override;
  uint64_t SizeBytes() const override { return engine_.SizeBytes(); }

  /// The engine has no statement texts to parse, so the plan cache is a
  /// recorded no-op: the flag round-trips (the equivalence harness asserts
  /// enable-state across every SUT) but no cache exists to hit or miss.
  void EnablePlanCache() override { plan_cache_ = true; }
  bool plan_cache_enabled() const override { return plan_cache_; }

  void EnableLandmarks(const LandmarkOptions& options = {}) override {
    if (landmarks_ == nullptr) {
      landmarks_ = std::make_unique<LandmarkIndex>(options);
    }
  }
  bool landmarks_enabled() const override { return landmarks_ != nullptr; }
  LandmarkStats landmark_stats() const override {
    return landmarks_ == nullptr ? LandmarkStats{} : landmarks_->stats();
  }

  MatrixStats matrix_stats() const { return engine_.stats(); }

 private:
  MatrixEngine engine_;
  obs::SutProbe probe_{"matrix"};
  bool plan_cache_ = false;
  std::unique_ptr<LandmarkIndex> landmarks_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_SUT_MATRIX_SUT_H_
