#include "sut/relational_sut.h"

#include "concurrency/epoch.h"

namespace graphbench {

namespace {

// The fixed workload statement set. The prepared path parses each text
// once at Load; the default path re-sends the same texts per call (limit
// values concatenated, as the paper's clients do).
constexpr char kPointLookupSql[] =
    "SELECT firstName, lastName, gender, birthday, browserUsed, "
    "locationIP FROM person WHERE id = ?";
constexpr char kOneHopSql[] =
    "SELECT p.id, p.firstName, p.lastName FROM knows k "
    "JOIN person p ON k.person2Id = p.id WHERE k.person1Id = ?";
constexpr char kTwoHopSql[] =
    "SELECT DISTINCT p.id FROM knows k1 "
    "JOIN knows k2 ON k1.person2Id = k2.person1Id "
    "JOIN person p ON k2.person2Id = p.id "
    "WHERE k1.person1Id = ? AND p.id <> ?";
constexpr char kShortestPathSql[] =
    "SELECT SHORTEST_PATH(?, ?) USING knows(person1Id, person2Id)";
constexpr char kRecentPostsSqlPrefix[] =
    "SELECT p.id, p.content, p.creationDate FROM post p "
    "WHERE p.creatorId = ? ORDER BY p.creationDate DESC LIMIT ";
constexpr char kFriendsWithNameSql[] =
    "SELECT p.id, p.lastName FROM knows k "
    "JOIN person p ON k.person2Id = p.id "
    "WHERE k.person1Id = ? AND p.firstName = ? ORDER BY p.id";
constexpr char kRepliesOfPostSql[] =
    "SELECT c.id, c.content, c.creatorId FROM comment c "
    "WHERE c.replyOfPost = ? ORDER BY c.creationDate DESC";
constexpr char kTopPostersSqlPrefix[] =
    "SELECT p.creatorId, COUNT(*) AS n FROM post p "
    "GROUP BY p.creatorId ORDER BY n DESC, creatorId LIMIT ";

constexpr char kInsertPersonSql[] =
    "INSERT INTO person (id, firstName, lastName, gender, "
    "birthday, creationDate, browserUsed, locationIP, cityId) "
    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)";
constexpr char kInsertKnowsSql[] =
    "INSERT INTO knows (person1Id, person2Id, creationDate) "
    "VALUES (?, ?, ?)";
constexpr char kDeleteKnowsSql[] =
    "DELETE FROM knows WHERE person1Id = ? AND person2Id = ?";
constexpr char kInsertForumSql[] =
    "INSERT INTO forum (id, title, creationDate, moderatorId) "
    "VALUES (?, ?, ?, ?)";
constexpr char kInsertForumMemberSql[] =
    "INSERT INTO forum_member (forumId, personId, joinDate) "
    "VALUES (?, ?, ?)";
constexpr char kInsertPostSql[] =
    "INSERT INTO post (id, content, creationDate, creatorId, forumId, "
    "browserUsed) VALUES (?, ?, ?, ?, ?, ?)";
constexpr char kInsertCommentSql[] =
    "INSERT INTO comment (id, content, creationDate, creatorId, "
    "replyOfPost, replyOfComment) VALUES (?, ?, ?, ?, ?, ?)";
constexpr char kInsertLikePostSql[] =
    "INSERT INTO likes_post (personId, postId, creationDate) "
    "VALUES (?, ?, ?)";
constexpr char kInsertLikeCommentSql[] =
    "INSERT INTO likes_comment (personId, commentId, creationDate) "
    "VALUES (?, ?, ?)";

}  // namespace

RelationalSut::RelationalSut(StorageMode mode)
    : mode_(mode),
      db_(mode),
      probe_(mode == StorageMode::kRow ? "postgres" : "virtuoso") {}

RelationalSut::RelationalSut(StorageMode mode,
                             const storage::DurabilityOptions& durability)
    : mode_(mode),
      db_(mode, durability),
      probe_(mode == StorageMode::kRow ? "postgres" : "virtuoso") {}

Status RelationalSut::CreateSnbSchema(Database* db) {
  using T = Value::Type;
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "person",
      {{"id", T::kInt},       {"firstName", T::kString},
       {"lastName", T::kString}, {"gender", T::kString},
       {"birthday", T::kInt}, {"creationDate", T::kInt},
       {"browserUsed", T::kString}, {"locationIP", T::kString},
       {"cityId", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "knows", {{"person1Id", T::kInt},
                {"person2Id", T::kInt},
                {"creationDate", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "forum", {{"id", T::kInt},
                {"title", T::kString},
                {"creationDate", T::kInt},
                {"moderatorId", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "forum_member", {{"forumId", T::kInt},
                       {"personId", T::kInt},
                       {"joinDate", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "post", {{"id", T::kInt},
               {"content", T::kString},
               {"creationDate", T::kInt},
               {"creatorId", T::kInt},
               {"forumId", T::kInt},
               {"browserUsed", T::kString}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "comment", {{"id", T::kInt},
                  {"content", T::kString},
                  {"creationDate", T::kInt},
                  {"creatorId", T::kInt},
                  {"replyOfPost", T::kInt},
                  {"replyOfComment", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "likes_post", {{"personId", T::kInt},
                     {"postId", T::kInt},
                     {"creationDate", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "likes_comment", {{"personId", T::kInt},
                        {"commentId", T::kInt},
                        {"creationDate", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(
      TableSchema("tag", {{"id", T::kInt}, {"name", T::kString}})));
  GB_RETURN_IF_ERROR(db->CreateTable(
      TableSchema("post_tag", {{"postId", T::kInt}, {"tagId", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(
      TableSchema("place", {{"id", T::kInt}, {"name", T::kString}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "organisation",
      {{"id", T::kInt}, {"name", T::kString}, {"type", T::kString}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "study_at", {{"personId", T::kInt},
                   {"organisationId", T::kInt},
                   {"classYear", T::kInt}})));
  GB_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "work_at", {{"personId", T::kInt},
                  {"organisationId", T::kInt},
                  {"workFrom", T::kInt}})));

  // Indexes on vertex-id columns only (the paper's fairness rule, §4.1):
  // primary ids plus edge-table columns holding vertex ids.
  GB_RETURN_IF_ERROR(db->CreateIndex("person", "id", true));
  GB_RETURN_IF_ERROR(db->CreateIndex("knows", "person1Id", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("knows", "person2Id", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("forum", "id", true));
  GB_RETURN_IF_ERROR(db->CreateIndex("post", "id", true));
  GB_RETURN_IF_ERROR(db->CreateIndex("post", "creatorId", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("comment", "id", true));
  GB_RETURN_IF_ERROR(db->CreateIndex("comment", "replyOfPost", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("forum_member", "forumId", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("forum_member", "personId", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("likes_post", "postId", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("likes_post", "personId", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("likes_comment", "personId", false));
  GB_RETURN_IF_ERROR(db->CreateIndex("tag", "id", true));
  GB_RETURN_IF_ERROR(db->CreateIndex("place", "id", true));
  GB_RETURN_IF_ERROR(db->CreateIndex("organisation", "id", true));
  // The knows relation is declared as the graph edge set (columnar mode
  // builds its transitivity accelerator over it).
  GB_RETURN_IF_ERROR(db->RegisterEdgeTable("knows", "person1Id",
                                           "person2Id"));
  return Status::OK();
}

Status RelationalSut::Load(const snb::Dataset& data) {
  concurrency::WriteBatch batch;
  GB_RETURN_IF_ERROR(CreateSnbSchema(&db_));
  // Bulk load through the storage API (the vendor bulk loader path).
  for (const auto& p : data.persons) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("person",
                      {Value(p.id), Value(p.first_name),
                       Value(p.last_name), Value(p.gender),
                       Value(p.birthday), Value(p.creation_date),
                       Value(p.browser), Value(p.location_ip),
                       Value(p.city_id)})
            .status());
  }
  for (const auto& k : data.knows) {
    // Both directions (§4.4 fix).
    GB_RETURN_IF_ERROR(db_.InsertRow("knows", {Value(k.person1),
                                               Value(k.person2),
                                               Value(k.creation_date)})
                           .status());
    GB_RETURN_IF_ERROR(db_.InsertRow("knows", {Value(k.person2),
                                               Value(k.person1),
                                               Value(k.creation_date)})
                           .status());
  }
  for (const auto& f : data.forums) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("forum", {Value(f.id), Value(f.title),
                                Value(f.creation_date),
                                Value(f.moderator)})
            .status());
  }
  for (const auto& m : data.members) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("forum_member", {Value(m.forum), Value(m.person),
                                       Value(m.join_date)})
            .status());
  }
  for (const auto& p : data.posts) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("post", {Value(p.id), Value(p.content),
                               Value(p.creation_date), Value(p.creator),
                               Value(p.forum), Value(p.browser)})
            .status());
  }
  for (const auto& c : data.comments) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("comment",
                      {Value(c.id), Value(c.content),
                       Value(c.creation_date), Value(c.creator),
                       Value(c.reply_of_post), Value(c.reply_of_comment)})
            .status());
  }
  for (const auto& l : data.likes) {
    if (l.post >= 0) {
      GB_RETURN_IF_ERROR(
          db_.InsertRow("likes_post", {Value(l.person), Value(l.post),
                                       Value(l.creation_date)})
              .status());
    } else {
      GB_RETURN_IF_ERROR(
          db_.InsertRow("likes_comment", {Value(l.person), Value(l.comment),
                                          Value(l.creation_date)})
              .status());
    }
  }
  for (const auto& t : data.tags) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("tag", {Value(t.id), Value(t.name)}).status());
  }
  for (const auto& pt : data.post_tags) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("post_tag", {Value(pt.post), Value(pt.tag)})
            .status());
  }
  for (const auto& p : data.places) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("place", {Value(p.id), Value(p.name)}).status());
  }
  for (const auto& o : data.organisations) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("organisation",
                      {Value(o.id), Value(o.name), Value(o.type)})
            .status());
  }
  for (const auto& s : data.study_at) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("study_at", {Value(s.person), Value(s.organisation),
                                   Value(s.year)})
            .status());
  }
  for (const auto& w : data.work_at) {
    GB_RETURN_IF_ERROR(
        db_.InsertRow("work_at", {Value(w.person), Value(w.organisation),
                                  Value(w.year)})
            .status());
  }
  if (db_.plan_cache_enabled()) {
    GB_RETURN_IF_ERROR(PrepareStatements());
  }
  if (landmarks_ != nullptr) SeedLandmarkIndex(data, landmarks_.get());
  return Status::OK();
}

Status RelationalSut::PrepareStatements() {
  auto prep = [this](const std::string& text,
                     Database::PreparedStatement* out) -> Status {
    GB_ASSIGN_OR_RETURN(*out, db_.Prepare(text));
    return Status::OK();
  };
  GB_RETURN_IF_ERROR(prep(kPointLookupSql, &prepared_.point_lookup));
  GB_RETURN_IF_ERROR(prep(kOneHopSql, &prepared_.one_hop));
  GB_RETURN_IF_ERROR(prep(kTwoHopSql, &prepared_.two_hop));
  GB_RETURN_IF_ERROR(prep(kShortestPathSql, &prepared_.shortest_path));
  GB_RETURN_IF_ERROR(prep(std::string(kRecentPostsSqlPrefix) + "?",
                          &prepared_.recent_posts));
  GB_RETURN_IF_ERROR(
      prep(kFriendsWithNameSql, &prepared_.friends_with_name));
  GB_RETURN_IF_ERROR(prep(kRepliesOfPostSql, &prepared_.replies_of_post));
  GB_RETURN_IF_ERROR(prep(std::string(kTopPostersSqlPrefix) + "?",
                          &prepared_.top_posters));
  GB_RETURN_IF_ERROR(prep(kInsertPersonSql, &prepared_.insert_person));
  GB_RETURN_IF_ERROR(prep(kInsertKnowsSql, &prepared_.insert_knows));
  GB_RETURN_IF_ERROR(prep(kInsertForumSql, &prepared_.insert_forum));
  GB_RETURN_IF_ERROR(
      prep(kInsertForumMemberSql, &prepared_.insert_forum_member));
  GB_RETURN_IF_ERROR(prep(kInsertPostSql, &prepared_.insert_post));
  GB_RETURN_IF_ERROR(prep(kInsertCommentSql, &prepared_.insert_comment));
  GB_RETURN_IF_ERROR(prep(kInsertLikePostSql, &prepared_.insert_like_post));
  GB_RETURN_IF_ERROR(
      prep(kInsertLikeCommentSql, &prepared_.insert_like_comment));
  return Status::OK();
}

std::string RelationalSut::StatementText(std::string_view kind) const {
  if (kind == "point_lookup") return kPointLookupSql;
  if (kind == "one_hop") return kOneHopSql;
  if (kind == "two_hop") return kTwoHopSql;
  if (kind == "recent_posts") {
    return std::string(kRecentPostsSqlPrefix) + "?";
  }
  return std::string();
}

Result<QueryResult> RelationalSut::PointLookup(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.point_lookup.valid()) {
    return db_.Execute(prepared_.point_lookup, {Value(person_id)});
  }
  return db_.Execute(kPointLookupSql, {Value(person_id)});
}

Result<QueryResult> RelationalSut::OneHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.one_hop.valid()) {
    return db_.Execute(prepared_.one_hop, {Value(person_id)});
  }
  return db_.Execute(kOneHopSql, {Value(person_id)});
}

Result<QueryResult> RelationalSut::TwoHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.two_hop.valid()) {
    return db_.Execute(prepared_.two_hop,
                       {Value(person_id), Value(person_id)});
  }
  return db_.Execute(kTwoHopSql, {Value(person_id), Value(person_id)});
}

Result<int> RelationalSut::ShortestPathLen(int64_t from_person,
                                           int64_t to_person) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (landmarks_ != nullptr) {
    if (std::optional<int> len =
            landmarks_->ShortestPathLen(from_person, to_person)) {
      return *len;
    }
  }
  Result<QueryResult> result =
      prepared_.shortest_path.valid()
          ? db_.Execute(prepared_.shortest_path,
                        {Value(from_person), Value(to_person)})
          : db_.Execute(kShortestPathSql,
                        {Value(from_person), Value(to_person)});
  GB_ASSIGN_OR_RETURN(QueryResult r, std::move(result));
  if (r.rows.empty()) return Status::Internal("no shortest path row");
  return int(r.rows[0][0].as_int());
}

Result<QueryResult> RelationalSut::RecentPosts(int64_t person_id,
                                               int64_t limit) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.recent_posts.valid()) {
    // LIMIT ? binds as the second parameter: one plan, any limit.
    return db_.Execute(prepared_.recent_posts,
                       {Value(person_id), Value(limit)});
  }
  return db_.Execute(kRecentPostsSqlPrefix + std::to_string(limit),
                     {Value(person_id)});
}

Result<QueryResult> RelationalSut::FriendsWithName(
    int64_t person_id, const std::string& first_name) {
  concurrency::EpochGuard guard;
  if (prepared_.friends_with_name.valid()) {
    return db_.Execute(prepared_.friends_with_name,
                       {Value(person_id), Value(first_name)});
  }
  return db_.Execute(kFriendsWithNameSql,
                     {Value(person_id), Value(first_name)});
}

Result<QueryResult> RelationalSut::RepliesOfPost(int64_t post_id) {
  concurrency::EpochGuard guard;
  if (prepared_.replies_of_post.valid()) {
    return db_.Execute(prepared_.replies_of_post, {Value(post_id)});
  }
  return db_.Execute(kRepliesOfPostSql, {Value(post_id)});
}

Result<QueryResult> RelationalSut::TopPosters(int64_t limit) {
  concurrency::EpochGuard guard;
  if (prepared_.top_posters.valid()) {
    return db_.Execute(prepared_.top_posters, {Value(limit)});
  }
  return db_.Execute(kTopPostersSqlPrefix + std::to_string(limit));
}

Status RelationalSut::Apply(const snb::UpdateOp& op) {
  concurrency::WriteBatch batch;
  obs::ScopedTimer timer(probe_.write_micros(), probe_.writes());
  using K = snb::UpdateOp::Kind;
  // One statement text per update kind; the prepared set covers them all,
  // so the writer binds only when the plan cache is on.
  auto run = [this](const Database::PreparedStatement& prepared,
                    const char* text,
                    const std::vector<Value>& params) -> Status {
    if (prepared.valid()) return db_.Execute(prepared, params).status();
    return db_.Execute(text, params).status();
  };
  switch (op.kind) {
    case K::kAddPerson: {
      const auto& p = op.person;
      GB_RETURN_IF_ERROR(run(
          prepared_.insert_person, kInsertPersonSql,
          {Value(p.id), Value(p.first_name), Value(p.last_name),
           Value(p.gender), Value(p.birthday), Value(p.creation_date),
           Value(p.browser), Value(p.location_ip), Value(p.city_id)}));
      if (landmarks_ != nullptr) landmarks_->OnPersonAdded(p.id);
      return Status::OK();
    }
    case K::kAddFriendship: {
      const auto& k = op.knows;
      GB_RETURN_IF_ERROR(run(prepared_.insert_knows, kInsertKnowsSql,
                             {Value(k.person1), Value(k.person2),
                              Value(k.creation_date)}));
      GB_RETURN_IF_ERROR(run(prepared_.insert_knows, kInsertKnowsSql,
                             {Value(k.person2), Value(k.person1),
                              Value(k.creation_date)}));
      if (landmarks_ != nullptr) {
        landmarks_->OnEdgeAdded(k.person1, k.person2);
      }
      return Status::OK();
    }
    case K::kRemoveFriendship: {
      // Both stored directions go away (§4.4's doubled knows relation).
      const auto& k = op.knows;
      GB_ASSIGN_OR_RETURN(
          QueryResult forward,
          db_.Execute(kDeleteKnowsSql, {Value(k.person1), Value(k.person2)}));
      GB_ASSIGN_OR_RETURN(
          QueryResult backward,
          db_.Execute(kDeleteKnowsSql, {Value(k.person2), Value(k.person1)}));
      if (forward.affected == 0 && backward.affected == 0) {
        return Status::NotFound("knows edge");
      }
      if (landmarks_ != nullptr) {
        landmarks_->OnEdgeRemoved(k.person1, k.person2);
      }
      return Status::OK();
    }
    case K::kAddForum: {
      const auto& f = op.forum;
      return run(prepared_.insert_forum, kInsertForumSql,
                 {Value(f.id), Value(f.title), Value(f.creation_date),
                  Value(f.moderator)});
    }
    case K::kAddForumMember: {
      const auto& m = op.member;
      return run(prepared_.insert_forum_member, kInsertForumMemberSql,
                 {Value(m.forum), Value(m.person), Value(m.join_date)});
    }
    case K::kAddPost: {
      const auto& p = op.post;
      return run(prepared_.insert_post, kInsertPostSql,
                 {Value(p.id), Value(p.content), Value(p.creation_date),
                  Value(p.creator), Value(p.forum), Value(p.browser)});
    }
    case K::kAddComment: {
      const auto& c = op.comment;
      return run(prepared_.insert_comment, kInsertCommentSql,
                 {Value(c.id), Value(c.content), Value(c.creation_date),
                  Value(c.creator), Value(c.reply_of_post),
                  Value(c.reply_of_comment)});
    }
    case K::kAddLikePost:
      return run(prepared_.insert_like_post, kInsertLikePostSql,
                 {Value(op.like.person), Value(op.like.post),
                  Value(op.like.creation_date)});
    case K::kAddLikeComment:
      return run(prepared_.insert_like_comment, kInsertLikeCommentSql,
                 {Value(op.like.person), Value(op.like.comment),
                  Value(op.like.creation_date)});
  }
  return Status::InvalidArgument("unknown update kind");
}

}  // namespace graphbench
