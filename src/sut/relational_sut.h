#ifndef GRAPHBENCH_SUT_RELATIONAL_SUT_H_
#define GRAPHBENCH_SUT_RELATIONAL_SUT_H_

#include <memory>
#include <string>

#include "engines/relational/database.h"
#include "obs/metrics.h"
#include "snb/schema.h"
#include "sut/sut.h"

namespace graphbench {

/// SQL-over-RDBMS SUT: Postgres (row storage) or Virtuoso (columnar).
/// Queries are SQL strings parsed and planned per execution; the knows
/// relation is stored in both directions, the fix the paper contributed to
/// the LDBC SQL reference implementation (§4.4).
class RelationalSut : public Sut {
 public:
  explicit RelationalSut(StorageMode mode);
  /// Durable variant (--durable): tables persist through the pager/WAL
  /// substrate. Identical to RelationalSut(mode) when
  /// `durability.enabled` is false.
  RelationalSut(StorageMode mode,
                const storage::DurabilityOptions& durability);

  std::string name() const override {
    return mode_ == StorageMode::kRow ? "Postgres (SQL)" : "Virtuoso (SQL)";
  }
  Status Load(const snb::Dataset& data) override;
  Result<QueryResult> PointLookup(int64_t person_id) override;
  Result<QueryResult> OneHop(int64_t person_id) override;
  Result<QueryResult> TwoHop(int64_t person_id) override;
  Result<int> ShortestPathLen(int64_t from_person,
                              int64_t to_person) override;
  Result<QueryResult> RecentPosts(int64_t person_id,
                                  int64_t limit) override;
  Result<QueryResult> FriendsWithName(int64_t person_id,
                                      const std::string& first_name) override;
  Result<QueryResult> RepliesOfPost(int64_t post_id) override;
  Result<QueryResult> TopPosters(int64_t limit) override;
  Status Apply(const snb::UpdateOp& op) override;
  uint64_t SizeBytes() const override { return db_.TotalSizeBytes(); }

  void EnablePlanCache() override { db_.EnablePlanCache(); }
  bool plan_cache_enabled() const override {
    return db_.plan_cache_enabled();
  }
  lang::PlanCacheStats plan_cache_stats() const override {
    return db_.plan_cache_stats();
  }
  std::string StatementText(std::string_view kind) const override;

  void EnableLandmarks(const LandmarkOptions& options = {}) override {
    if (landmarks_ == nullptr) {
      landmarks_ = std::make_unique<LandmarkIndex>(options);
    }
  }
  bool landmarks_enabled() const override { return landmarks_ != nullptr; }
  LandmarkStats landmark_stats() const override {
    return landmarks_ == nullptr ? LandmarkStats{} : landmarks_->stats();
  }

  Database* database() { return &db_; }

  /// Creates the SNB relational schema (tables + vertex-id indexes) on a
  /// database; shared with the Sqlg SUT, which runs on the same schema.
  static Status CreateSnbSchema(Database* db);

 private:
  /// Prepares the fixed workload statement set (reads with LIMIT ? where
  /// applicable, plus the eight update INSERTs); called at the end of
  /// Load when the plan cache is enabled.
  Status PrepareStatements();

  StorageMode mode_;
  Database db_;
  obs::SutProbe probe_;
  std::unique_ptr<LandmarkIndex> landmarks_;

  /// Populated by PrepareStatements; per-call methods bind only.
  struct PreparedSet {
    Database::PreparedStatement point_lookup, one_hop, two_hop,
        shortest_path, recent_posts, friends_with_name, replies_of_post,
        top_posters;
    Database::PreparedStatement insert_person, insert_knows, insert_forum,
        insert_forum_member, insert_post, insert_comment, insert_like_post,
        insert_like_comment;
  };
  PreparedSet prepared_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_SUT_RELATIONAL_SUT_H_
