#include "sut/sparql_sut.h"

#include "concurrency/epoch.h"
#include "util/string_util.h"

namespace graphbench {

namespace {

std::string PersonIri(int64_t id) { return "person:" + std::to_string(id); }
std::string ForumIri(int64_t id) { return "forum:" + std::to_string(id); }
std::string PostIri(int64_t id) { return "post:" + std::to_string(id); }
std::string CommentIri(int64_t id) {
  return "comment:" + std::to_string(id);
}
std::string TagIri(int64_t id) { return "tag:" + std::to_string(id); }
std::string PlaceIri(int64_t id) { return "place:" + std::to_string(id); }
std::string OrgIri(int64_t id) { return "org:" + std::to_string(id); }

// Parameterized forms of the workload reads for the prepared path:
// constants become $name parameters in literal positions (the legacy
// path keeps inlining them via StringPrintf, the paper's methodology).
constexpr char kPointLookupSparql[] =
    "SELECT ?fn ?ln ?g ?b ?br ?ip WHERE { "
    "?p snb:id $person_id ; rdf:type snb:Person ; snb:firstName ?fn ; "
    "snb:lastName ?ln ; snb:gender ?g ; snb:birthday ?b ; "
    "snb:browserUsed ?br ; snb:locationIP ?ip }";
constexpr char kOneHopSparql[] =
    "SELECT ?fid ?fn ?ln WHERE { "
    "?p snb:id $person_id ; rdf:type snb:Person . ?p snb:knows ?f . "
    "?f snb:id ?fid ; snb:firstName ?fn ; snb:lastName ?ln }";
constexpr char kTwoHopSparql[] =
    "SELECT DISTINCT ?ffid WHERE { "
    "?p snb:id $person_id ; rdf:type snb:Person . ?p snb:knows ?f . "
    "?f snb:knows ?ff . FILTER(?ff != ?p) . ?ff snb:id ?ffid }";
constexpr char kShortestPathSparql[] =
    "SELECT (shortestPath(?a, ?b, snb:knows) AS ?len) WHERE { "
    "?a snb:id $from_id ; rdf:type snb:Person . "
    "?b snb:id $to_id ; rdf:type snb:Person }";
constexpr char kRecentPostsSparql[] =
    "SELECT ?pid ?content ?date WHERE { "
    "?p snb:id $person_id ; rdf:type snb:Person . "
    "?post snb:hasCreator ?p ; rdf:type snb:Post ; snb:id ?pid ; "
    "snb:content ?content ; snb:creationDate ?date } "
    "ORDER BY DESC(?date) LIMIT $limit";
constexpr char kFriendsWithNameSparql[] =
    "SELECT ?fid ?ln WHERE { ?p snb:id $person_id ; rdf:type snb:Person . "
    "?p snb:knows ?f . ?f snb:firstName $first_name ; snb:id ?fid ; "
    "snb:lastName ?ln } ORDER BY ?fid";
constexpr char kRepliesOfPostSparql[] =
    "SELECT ?cid ?content ?crid WHERE { "
    "?post snb:id $post_id ; rdf:type snb:Post . ?c snb:replyOf ?post . "
    "?c snb:id ?cid ; snb:content ?content ; snb:creationDate ?date . "
    "?c snb:hasCreator ?cr . ?cr snb:id ?crid } ORDER BY DESC(?date)";
constexpr char kTopPostersSparql[] =
    "SELECT ?pid (COUNT(?post) AS ?n) WHERE { "
    "?post rdf:type snb:Post . ?post snb:hasCreator ?cr . "
    "?cr snb:id ?pid } GROUP BY ?pid ORDER BY DESC(?n) ?pid LIMIT $limit";

}  // namespace

Status SparqlSut::AddPersonTriples(const snb::Person& p) {
  Term s = Term::Iri(PersonIri(p.id));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "rdf:type", Term::Iri("snb:Person")));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "snb:id", Term::Literal(Value(p.id))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:firstName", Term::Literal(Value(p.first_name))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:lastName", Term::Literal(Value(p.last_name))));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "snb:gender", Term::Literal(Value(p.gender))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:birthday", Term::Literal(Value(p.birthday))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:creationDate", Term::Literal(Value(p.creation_date))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:browserUsed", Term::Literal(Value(p.browser))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:locationIP", Term::Literal(Value(p.location_ip))));
  return engine_.AddTriple(s, "snb:isLocatedIn",
                           Term::Iri(PlaceIri(p.city_id)));
}

Status SparqlSut::AddKnowsTriples(const snb::Knows& k) {
  // Both directions (§4.4 bi-directional fix).
  GB_RETURN_IF_ERROR(engine_.AddTriple(Term::Iri(PersonIri(k.person1)),
                                       "snb:knows",
                                       Term::Iri(PersonIri(k.person2))));
  return engine_.AddTriple(Term::Iri(PersonIri(k.person2)), "snb:knows",
                           Term::Iri(PersonIri(k.person1)));
}

Status SparqlSut::RemoveKnowsTriples(const snb::Knows& k) {
  // Both asserted directions go away, mirroring AddKnowsTriples.
  GB_RETURN_IF_ERROR(engine_.RemoveTriple(Term::Iri(PersonIri(k.person1)),
                                          "snb:knows",
                                          Term::Iri(PersonIri(k.person2))));
  return engine_.RemoveTriple(Term::Iri(PersonIri(k.person2)), "snb:knows",
                              Term::Iri(PersonIri(k.person1)));
}

Status SparqlSut::AddForumTriples(const snb::Forum& f) {
  Term s = Term::Iri(ForumIri(f.id));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "rdf:type", Term::Iri("snb:Forum")));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "snb:id", Term::Literal(Value(f.id))));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "snb:title", Term::Literal(Value(f.title))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:creationDate", Term::Literal(Value(f.creation_date))));
  return engine_.AddTriple(s, "snb:hasModerator",
                           Term::Iri(PersonIri(f.moderator)));
}

Status SparqlSut::AddMemberTriples(const snb::ForumMember& m) {
  return engine_.AddTriple(Term::Iri(ForumIri(m.forum)), "snb:hasMember",
                           Term::Iri(PersonIri(m.person)));
}

Status SparqlSut::AddPostTriples(const snb::Post& p) {
  Term s = Term::Iri(PostIri(p.id));
  GB_RETURN_IF_ERROR(engine_.AddTriple(s, "rdf:type", Term::Iri("snb:Post")));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "snb:id", Term::Literal(Value(p.id))));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "snb:content", Term::Literal(Value(p.content))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:creationDate", Term::Literal(Value(p.creation_date))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(s, "snb:hasCreator",
                                       Term::Iri(PersonIri(p.creator))));
  return engine_.AddTriple(Term::Iri(ForumIri(p.forum)), "snb:containerOf",
                           s);
}

Status SparqlSut::AddCommentTriples(const snb::Comment& c) {
  Term s = Term::Iri(CommentIri(c.id));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "rdf:type", Term::Iri("snb:Comment")));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "snb:id", Term::Literal(Value(c.id))));
  GB_RETURN_IF_ERROR(
      engine_.AddTriple(s, "snb:content", Term::Literal(Value(c.content))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(
      s, "snb:creationDate", Term::Literal(Value(c.creation_date))));
  GB_RETURN_IF_ERROR(engine_.AddTriple(s, "snb:hasCreator",
                                       Term::Iri(PersonIri(c.creator))));
  if (c.reply_of_post >= 0) {
    return engine_.AddTriple(s, "snb:replyOf",
                             Term::Iri(PostIri(c.reply_of_post)));
  }
  return engine_.AddTriple(s, "snb:replyOf",
                           Term::Iri(CommentIri(c.reply_of_comment)));
}

Status SparqlSut::AddLikeTriples(const snb::Like& l) {
  Term target = l.post >= 0 ? Term::Iri(PostIri(l.post))
                            : Term::Iri(CommentIri(l.comment));
  return engine_.AddTriple(Term::Iri(PersonIri(l.person)), "snb:likes",
                           target);
}

Status SparqlSut::Load(const snb::Dataset& data) {
  concurrency::WriteBatch batch;
  for (const auto& pl : data.places) {
    Term s = Term::Iri(PlaceIri(pl.id));
    GB_RETURN_IF_ERROR(
        engine_.AddTriple(s, "rdf:type", Term::Iri("snb:Place")));
    GB_RETURN_IF_ERROR(
        engine_.AddTriple(s, "snb:name", Term::Literal(Value(pl.name))));
  }
  for (const auto& t : data.tags) {
    Term s = Term::Iri(TagIri(t.id));
    GB_RETURN_IF_ERROR(engine_.AddTriple(s, "rdf:type", Term::Iri("snb:Tag")));
    GB_RETURN_IF_ERROR(
        engine_.AddTriple(s, "snb:name", Term::Literal(Value(t.name))));
  }
  for (const auto& o : data.organisations) {
    Term s = Term::Iri(OrgIri(o.id));
    GB_RETURN_IF_ERROR(
        engine_.AddTriple(s, "rdf:type", Term::Iri("snb:Organisation")));
    GB_RETURN_IF_ERROR(
        engine_.AddTriple(s, "snb:name", Term::Literal(Value(o.name))));
  }
  for (const auto& p : data.persons) GB_RETURN_IF_ERROR(AddPersonTriples(p));
  for (const auto& k : data.knows) GB_RETURN_IF_ERROR(AddKnowsTriples(k));
  for (const auto& f : data.forums) GB_RETURN_IF_ERROR(AddForumTriples(f));
  for (const auto& m : data.members) GB_RETURN_IF_ERROR(AddMemberTriples(m));
  for (const auto& p : data.posts) GB_RETURN_IF_ERROR(AddPostTriples(p));
  for (const auto& c : data.comments) {
    GB_RETURN_IF_ERROR(AddCommentTriples(c));
  }
  for (const auto& l : data.likes) GB_RETURN_IF_ERROR(AddLikeTriples(l));
  for (const auto& pt : data.post_tags) {
    GB_RETURN_IF_ERROR(engine_.AddTriple(Term::Iri(PostIri(pt.post)),
                                         "snb:hasTag",
                                         Term::Iri(TagIri(pt.tag))));
  }
  for (const auto& s : data.study_at) {
    GB_RETURN_IF_ERROR(engine_.AddTriple(Term::Iri(PersonIri(s.person)),
                                         "snb:studyAt",
                                         Term::Iri(OrgIri(s.organisation))));
  }
  for (const auto& w : data.work_at) {
    GB_RETURN_IF_ERROR(engine_.AddTriple(Term::Iri(PersonIri(w.person)),
                                         "snb:workAt",
                                         Term::Iri(OrgIri(w.organisation))));
  }
  if (engine_.plan_cache_enabled()) {
    GB_RETURN_IF_ERROR(PrepareStatements());
  }
  if (landmarks_ != nullptr) SeedLandmarkIndex(data, landmarks_.get());
  return Status::OK();
}

Status SparqlSut::PrepareStatements() {
  auto prep = [this](RdfEngine::PreparedStatement* out,
                     const char* text) -> Status {
    GB_ASSIGN_OR_RETURN(*out, engine_.Prepare(text));
    return Status::OK();
  };
  GB_RETURN_IF_ERROR(prep(&prepared_.point_lookup, kPointLookupSparql));
  GB_RETURN_IF_ERROR(prep(&prepared_.one_hop, kOneHopSparql));
  GB_RETURN_IF_ERROR(prep(&prepared_.two_hop, kTwoHopSparql));
  GB_RETURN_IF_ERROR(prep(&prepared_.shortest_path, kShortestPathSparql));
  GB_RETURN_IF_ERROR(prep(&prepared_.recent_posts, kRecentPostsSparql));
  GB_RETURN_IF_ERROR(
      prep(&prepared_.friends_with_name, kFriendsWithNameSparql));
  GB_RETURN_IF_ERROR(prep(&prepared_.replies_of_post, kRepliesOfPostSparql));
  GB_RETURN_IF_ERROR(prep(&prepared_.top_posters, kTopPostersSparql));
  return Status::OK();
}

std::string SparqlSut::StatementText(std::string_view kind) const {
  if (kind == "point_lookup") return kPointLookupSparql;
  if (kind == "one_hop") return kOneHopSparql;
  if (kind == "two_hop") return kTwoHopSparql;
  if (kind == "recent_posts") return kRecentPostsSparql;
  return std::string();
}

Result<QueryResult> SparqlSut::PointLookup(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.point_lookup.valid()) {
    return engine_.Execute(prepared_.point_lookup,
                           {{"person_id", Value(person_id)}});
  }
  return engine_.Execute(StringPrintf(
      "SELECT ?fn ?ln ?g ?b ?br ?ip WHERE { "
      "?p snb:id %lld ; rdf:type snb:Person ; snb:firstName ?fn ; "
      "snb:lastName ?ln ; snb:gender ?g ; snb:birthday ?b ; "
      "snb:browserUsed ?br ; snb:locationIP ?ip }",
      (long long)person_id));
}

Result<QueryResult> SparqlSut::OneHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.one_hop.valid()) {
    return engine_.Execute(prepared_.one_hop,
                           {{"person_id", Value(person_id)}});
  }
  return engine_.Execute(StringPrintf(
      "SELECT ?fid ?fn ?ln WHERE { "
      "?p snb:id %lld ; rdf:type snb:Person . ?p snb:knows ?f . "
      "?f snb:id ?fid ; snb:firstName ?fn ; snb:lastName ?ln }",
      (long long)person_id));
}

Result<QueryResult> SparqlSut::TwoHop(int64_t person_id) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.two_hop.valid()) {
    return engine_.Execute(prepared_.two_hop,
                           {{"person_id", Value(person_id)}});
  }
  return engine_.Execute(StringPrintf(
      "SELECT DISTINCT ?ffid WHERE { "
      "?p snb:id %lld ; rdf:type snb:Person . ?p snb:knows ?f . "
      "?f snb:knows ?ff . FILTER(?ff != ?p) . ?ff snb:id ?ffid }",
      (long long)person_id));
}

Result<int> SparqlSut::ShortestPathLen(int64_t from_person,
                                       int64_t to_person) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (landmarks_ != nullptr) {
    if (std::optional<int> len =
            landmarks_->ShortestPathLen(from_person, to_person)) {
      return *len;
    }
  }
  Result<QueryResult> result =
      prepared_.shortest_path.valid()
          ? engine_.Execute(prepared_.shortest_path,
                            {{"from_id", Value(from_person)},
                             {"to_id", Value(to_person)}})
          : engine_.Execute(StringPrintf(
                "SELECT (shortestPath(?a, ?b, snb:knows) AS ?len) WHERE { "
                "?a snb:id %lld ; rdf:type snb:Person . "
                "?b snb:id %lld ; rdf:type snb:Person }",
                (long long)from_person, (long long)to_person));
  GB_ASSIGN_OR_RETURN(QueryResult r, std::move(result));
  if (r.rows.empty()) return Status::Internal("no shortest path row");
  return int(r.rows[0][0].as_int());
}

Result<QueryResult> SparqlSut::RecentPosts(int64_t person_id,
                                           int64_t limit) {
  concurrency::EpochGuard guard;
  obs::ScopedTimer timer(probe_.read_micros(), probe_.reads());
  if (prepared_.recent_posts.valid()) {
    return engine_.Execute(
        prepared_.recent_posts,
        {{"person_id", Value(person_id)}, {"limit", Value(limit)}});
  }
  return engine_.Execute(StringPrintf(
      "SELECT ?pid ?content ?date WHERE { "
      "?p snb:id %lld ; rdf:type snb:Person . "
      "?post snb:hasCreator ?p ; rdf:type snb:Post ; snb:id ?pid ; "
      "snb:content ?content ; snb:creationDate ?date } "
      "ORDER BY DESC(?date) LIMIT %lld",
      (long long)person_id, (long long)limit));
}

Result<QueryResult> SparqlSut::FriendsWithName(
    int64_t person_id, const std::string& first_name) {
  concurrency::EpochGuard guard;
  if (prepared_.friends_with_name.valid()) {
    return engine_.Execute(prepared_.friends_with_name,
                           {{"person_id", Value(person_id)},
                            {"first_name", Value(first_name)}});
  }
  return engine_.Execute(StringPrintf(
      "SELECT ?fid ?ln WHERE { ?p snb:id %lld ; rdf:type snb:Person . "
      "?p snb:knows ?f . ?f snb:firstName '%s' ; snb:id ?fid ; "
      "snb:lastName ?ln } ORDER BY ?fid",
      (long long)person_id, first_name.c_str()));
}

Result<QueryResult> SparqlSut::RepliesOfPost(int64_t post_id) {
  concurrency::EpochGuard guard;
  if (prepared_.replies_of_post.valid()) {
    return engine_.Execute(prepared_.replies_of_post,
                           {{"post_id", Value(post_id)}});
  }
  return engine_.Execute(StringPrintf(
      "SELECT ?cid ?content ?crid WHERE { "
      "?post snb:id %lld ; rdf:type snb:Post . ?c snb:replyOf ?post . "
      "?c snb:id ?cid ; snb:content ?content ; snb:creationDate ?date . "
      "?c snb:hasCreator ?cr . ?cr snb:id ?crid } ORDER BY DESC(?date)",
      (long long)post_id));
}

Result<QueryResult> SparqlSut::TopPosters(int64_t limit) {
  concurrency::EpochGuard guard;
  if (prepared_.top_posters.valid()) {
    return engine_.Execute(prepared_.top_posters,
                           {{"limit", Value(limit)}});
  }
  return engine_.Execute(StringPrintf(
      "SELECT ?pid (COUNT(?post) AS ?n) WHERE { "
      "?post rdf:type snb:Post . ?post snb:hasCreator ?cr . "
      "?cr snb:id ?pid } GROUP BY ?pid ORDER BY DESC(?n) ?pid LIMIT %lld",
      (long long)limit));
}

Status SparqlSut::Apply(const snb::UpdateOp& op) {
  concurrency::WriteBatch batch;
  obs::ScopedTimer timer(probe_.write_micros(), probe_.writes());
  using K = snb::UpdateOp::Kind;
  switch (op.kind) {
    case K::kAddPerson: {
      GB_RETURN_IF_ERROR(AddPersonTriples(op.person));
      if (landmarks_ != nullptr) landmarks_->OnPersonAdded(op.person.id);
      return Status::OK();
    }
    case K::kAddFriendship: {
      GB_RETURN_IF_ERROR(AddKnowsTriples(op.knows));
      if (landmarks_ != nullptr) {
        landmarks_->OnEdgeAdded(op.knows.person1, op.knows.person2);
      }
      return Status::OK();
    }
    case K::kRemoveFriendship: {
      GB_RETURN_IF_ERROR(RemoveKnowsTriples(op.knows));
      if (landmarks_ != nullptr) {
        landmarks_->OnEdgeRemoved(op.knows.person1, op.knows.person2);
      }
      return Status::OK();
    }
    case K::kAddForum:
      return AddForumTriples(op.forum);
    case K::kAddForumMember:
      return AddMemberTriples(op.member);
    case K::kAddPost:
      return AddPostTriples(op.post);
    case K::kAddComment:
      return AddCommentTriples(op.comment);
    case K::kAddLikePost:
    case K::kAddLikeComment:
      return AddLikeTriples(op.like);
  }
  return Status::InvalidArgument("unknown update kind");
}

}  // namespace graphbench
