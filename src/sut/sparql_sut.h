#ifndef GRAPHBENCH_SUT_SPARQL_SUT_H_
#define GRAPHBENCH_SUT_SPARQL_SUT_H_

#include <memory>
#include <string>

#include "engines/rdf/rdf_engine.h"
#include "obs/metrics.h"
#include "snb/schema.h"
#include "sut/sut.h"

namespace graphbench {

/// Virtuoso (SPARQL): the RDF-store configuration. The SNB graph maps to
/// triples (edge properties are dropped — plain RDF has no edge
/// attributes without reification; none of the benchmark queries read
/// them). The knows relation is asserted in both directions, matching the
/// bi-directional-edge fix (§4.4). By default queries are SPARQL strings
/// with constants inlined, translated per execution; with the plan cache
/// enabled the workload set is prepared once with $name parameters and
/// per-call methods bind only (DESIGN.md §8).
class SparqlSut : public Sut {
 public:
  explicit SparqlSut(int num_indexes = 4) : engine_(num_indexes) {}

  std::string name() const override { return "Virtuoso (SPARQL)"; }
  Status Load(const snb::Dataset& data) override;
  Result<QueryResult> PointLookup(int64_t person_id) override;
  Result<QueryResult> OneHop(int64_t person_id) override;
  Result<QueryResult> TwoHop(int64_t person_id) override;
  Result<int> ShortestPathLen(int64_t from_person,
                              int64_t to_person) override;
  Result<QueryResult> RecentPosts(int64_t person_id,
                                  int64_t limit) override;
  Result<QueryResult> FriendsWithName(int64_t person_id,
                                      const std::string& first_name) override;
  Result<QueryResult> RepliesOfPost(int64_t post_id) override;
  Result<QueryResult> TopPosters(int64_t limit) override;
  Status Apply(const snb::UpdateOp& op) override;
  uint64_t SizeBytes() const override {
    return engine_.ApproximateSizeBytes();
  }

  void EnablePlanCache() override { engine_.EnablePlanCache(); }
  bool plan_cache_enabled() const override {
    return engine_.plan_cache_enabled();
  }
  lang::PlanCacheStats plan_cache_stats() const override {
    return engine_.plan_cache_stats();
  }
  std::string StatementText(std::string_view kind) const override;

  void EnableLandmarks(const LandmarkOptions& options = {}) override {
    if (landmarks_ == nullptr) {
      landmarks_ = std::make_unique<LandmarkIndex>(options);
    }
  }
  bool landmarks_enabled() const override { return landmarks_ != nullptr; }
  LandmarkStats landmark_stats() const override {
    return landmarks_ == nullptr ? LandmarkStats{} : landmarks_->stats();
  }

  RdfEngine* engine() { return &engine_; }

 private:
  /// Prepares the fixed read statement set ($name parameters in literal
  /// positions, LIMIT $limit); called at the end of Load when the plan
  /// cache is enabled. Updates go through the triple API — nothing to
  /// prepare.
  Status PrepareStatements();

  // Triple helpers for the SNB mapping.
  Status AddPersonTriples(const snb::Person& p);
  Status AddKnowsTriples(const snb::Knows& k);
  Status AddForumTriples(const snb::Forum& f);
  Status AddMemberTriples(const snb::ForumMember& m);
  Status AddPostTriples(const snb::Post& p);
  Status AddCommentTriples(const snb::Comment& c);
  Status AddLikeTriples(const snb::Like& l);
  Status RemoveKnowsTriples(const snb::Knows& k);

  RdfEngine engine_;
  obs::SutProbe probe_{"sparql"};
  std::unique_ptr<LandmarkIndex> landmarks_;

  /// Populated by PrepareStatements; per-call methods bind only.
  struct PreparedSet {
    RdfEngine::PreparedStatement point_lookup, one_hop, two_hop,
        shortest_path, recent_posts, friends_with_name, replies_of_post,
        top_posters;
  };
  PreparedSet prepared_;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_SUT_SPARQL_SUT_H_
