#include "sut/sut.h"

#include <cstdio>

#include "sut/cypher_sut.h"
#include "sut/gremlin_sut.h"
#include "sut/matrix_sut.h"
#include "sut/relational_sut.h"
#include "sut/sparql_sut.h"
#include "util/string_util.h"

namespace graphbench {

std::unique_ptr<Sut> MakeSut(SutKind kind) {
  switch (kind) {
    case SutKind::kNeo4jCypher:
      return std::make_unique<CypherSut>();
    case SutKind::kNeo4jGremlin:
      return MakeNeo4jGremlinSut();
    case SutKind::kTitanC:
      return MakeTitanCSut();
    case SutKind::kTitanB:
      return MakeTitanBSut();
    case SutKind::kSqlg:
      return MakeSqlgSut();
    case SutKind::kPostgresSql:
      return std::make_unique<RelationalSut>(StorageMode::kRow);
    case SutKind::kVirtuosoSql:
      return std::make_unique<RelationalSut>(StorageMode::kColumnar);
    case SutKind::kVirtuosoSparql:
      return std::make_unique<SparqlSut>();
    case SutKind::kMatrix:
      return std::make_unique<MatrixSut>();
  }
  return nullptr;
}

namespace {

// Durable variants for the configurations that have a paged analog; the
// rest fall back to the in-memory factory (documented in DESIGN.md §12).
std::unique_ptr<Sut> MakeDurableSut(SutKind kind,
                                    const storage::DurabilityOptions& dur) {
  switch (kind) {
    case SutKind::kTitanB: {
      Result<std::unique_ptr<GremlinSut>> sut = MakeTitanBSut(dur);
      if (!sut.ok()) {
        std::fprintf(stderr, "titan-b: durable open failed: %s\n",
                     sut.status().message().c_str());
        return nullptr;
      }
      return std::move(sut).value();
    }
    case SutKind::kPostgresSql:
      return std::make_unique<RelationalSut>(StorageMode::kRow, dur);
    case SutKind::kVirtuosoSql:
      return std::make_unique<RelationalSut>(StorageMode::kColumnar, dur);
    case SutKind::kNeo4jCypher: {
      NativeGraphOptions graph_options;
      graph_options.durability = dur;
      return std::make_unique<CypherSut>(graph_options);
    }
    default:
      return MakeSut(kind);
  }
}

}  // namespace

std::unique_ptr<Sut> MakeSut(SutKind kind, const SutOptions& options) {
  std::unique_ptr<Sut> sut = options.durability.enabled
                                 ? MakeDurableSut(kind, options.durability)
                                 : MakeSut(kind);
  if (sut == nullptr) return sut;
  if (options.plan_cache) sut->EnablePlanCache();
  if (options.landmarks) sut->EnableLandmarks(options.landmark_options);
  return sut;
}

void SeedLandmarkIndex(const snb::Dataset& data, LandmarkIndex* index) {
  for (const snb::Person& p : data.persons) index->AddPerson(p.id);
  for (const snb::Knows& k : data.knows) index->AddEdge(k.person1, k.person2);
  index->Build();
}

std::vector<SutKind> AllSutKinds() {
  return {SutKind::kNeo4jCypher, SutKind::kNeo4jGremlin,
          SutKind::kTitanC,      SutKind::kTitanB,
          SutKind::kSqlg,        SutKind::kPostgresSql,
          SutKind::kVirtuosoSql, SutKind::kVirtuosoSparql,
          SutKind::kMatrix};
}

const char* SutKindName(SutKind kind) {
  switch (kind) {
    case SutKind::kNeo4jCypher: return "Neo4j (Cypher)";
    case SutKind::kNeo4jGremlin: return "Neo4j (Gremlin)";
    case SutKind::kTitanC: return "Titan-C (Gremlin)";
    case SutKind::kTitanB: return "Titan-B (Gremlin)";
    case SutKind::kSqlg: return "Sqlg (Gremlin)";
    case SutKind::kPostgresSql: return "Postgres (SQL)";
    case SutKind::kVirtuosoSql: return "Virtuoso (SQL)";
    case SutKind::kVirtuosoSparql: return "Virtuoso (SPARQL)";
    case SutKind::kMatrix: return "Matrix (GraphBLAS)";
  }
  return "unknown";
}

const char* SutKindId(SutKind kind) {
  switch (kind) {
    case SutKind::kNeo4jCypher: return "neo4j";
    case SutKind::kNeo4jGremlin: return "neo4j-gremlin";
    case SutKind::kTitanC: return "titan-c";
    case SutKind::kTitanB: return "titan-b";
    case SutKind::kSqlg: return "sqlg";
    case SutKind::kPostgresSql: return "postgres";
    case SutKind::kVirtuosoSql: return "virtuoso";
    case SutKind::kVirtuosoSparql: return "sparql";
    case SutKind::kMatrix: return "matrix";
  }
  return "unknown";
}

Result<SutKind> ParseSutKind(std::string_view name) {
  for (SutKind kind : AllSutKinds()) {
    if (EqualsIgnoreCase(name, SutKindId(kind)) ||
        EqualsIgnoreCase(name, SutKindName(kind))) {
      return kind;
    }
  }
  // Aliases kept for older command lines and docs.
  if (EqualsIgnoreCase(name, "neo4j-cypher")) return SutKind::kNeo4jCypher;
  if (EqualsIgnoreCase(name, "virtuoso-sql")) return SutKind::kVirtuosoSql;
  if (EqualsIgnoreCase(name, "virtuoso-sparql")) {
    return SutKind::kVirtuosoSparql;
  }
  if (EqualsIgnoreCase(name, "titan")) return SutKind::kTitanC;
  if (EqualsIgnoreCase(name, "graphblas") || EqualsIgnoreCase(name, "linalg")) {
    return SutKind::kMatrix;
  }
  std::string known;
  for (SutKind kind : AllSutKinds()) {
    if (!known.empty()) known += "|";
    known += SutKindId(kind);
  }
  return Status::InvalidArgument("unknown SUT \"" + std::string(name) +
                                 "\" (expected one of " + known + ")");
}

Result<std::unique_ptr<Sut>> MakeSut(std::string_view name) {
  GB_ASSIGN_OR_RETURN(SutKind kind, ParseSutKind(name));
  return MakeSut(kind);
}

}  // namespace graphbench
