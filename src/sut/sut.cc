#include "sut/sut.h"

#include "sut/cypher_sut.h"
#include "sut/gremlin_sut.h"
#include "sut/relational_sut.h"
#include "sut/sparql_sut.h"

namespace graphbench {

std::unique_ptr<Sut> MakeSut(SutKind kind) {
  switch (kind) {
    case SutKind::kNeo4jCypher:
      return std::make_unique<CypherSut>();
    case SutKind::kNeo4jGremlin:
      return MakeNeo4jGremlinSut();
    case SutKind::kTitanC:
      return MakeTitanCSut();
    case SutKind::kTitanB:
      return MakeTitanBSut();
    case SutKind::kSqlg:
      return MakeSqlgSut();
    case SutKind::kPostgresSql:
      return std::make_unique<RelationalSut>(StorageMode::kRow);
    case SutKind::kVirtuosoSql:
      return std::make_unique<RelationalSut>(StorageMode::kColumnar);
    case SutKind::kVirtuosoSparql:
      return std::make_unique<SparqlSut>();
  }
  return nullptr;
}

std::vector<SutKind> AllSutKinds() {
  return {SutKind::kNeo4jCypher, SutKind::kNeo4jGremlin, SutKind::kTitanC,
          SutKind::kTitanB,      SutKind::kSqlg,         SutKind::kPostgresSql,
          SutKind::kVirtuosoSql, SutKind::kVirtuosoSparql};
}

const char* SutKindName(SutKind kind) {
  switch (kind) {
    case SutKind::kNeo4jCypher: return "Neo4j (Cypher)";
    case SutKind::kNeo4jGremlin: return "Neo4j (Gremlin)";
    case SutKind::kTitanC: return "Titan-C (Gremlin)";
    case SutKind::kTitanB: return "Titan-B (Gremlin)";
    case SutKind::kSqlg: return "Sqlg (Gremlin)";
    case SutKind::kPostgresSql: return "Postgres (SQL)";
    case SutKind::kVirtuosoSql: return "Virtuoso (SQL)";
    case SutKind::kVirtuosoSparql: return "Virtuoso (SPARQL)";
  }
  return "unknown";
}

}  // namespace graphbench
