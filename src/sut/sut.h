#ifndef GRAPHBENCH_SUT_SUT_H_
#define GRAPHBENCH_SUT_SUT_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "engines/relational/query_result.h"
#include "graph/landmarks.h"
#include "lang/plan_cache.h"
#include "obs/profiler.h"
#include "snb/schema.h"
#include "storage/durability.h"
#include "util/result.h"

namespace graphbench {

/// A system under test: one column of the paper's result tables. Every
/// SUT loads the same SNB snapshot, answers the four §4.2 read queries and
/// the §4.3 short reads, and applies the eight SNB update types — each
/// through its own query language and engine stack.
class Sut {
 public:
  virtual ~Sut() = default;

  /// Runs `fn` (typically one or more queries against this SUT) with
  /// per-operator profiling captured into `profile`: every instrumented
  /// pipeline (Gremlin traversal steps — including across the Gremlin
  /// Server's worker pool — Cypher operators, SQL executor phases, RDF
  /// triple-pattern joins) records its OpTimer rows there. Uniform across
  /// SUTs because capture rides the thread-local active profile rather
  /// than a plumbed context. No-op capture when obs is compiled out.
  template <typename Fn>
  auto Profiled(obs::QueryProfile* profile, Fn&& fn) {
    obs::ProfileScope scope(profile);
    return std::forward<Fn>(fn)();
  }

  /// Column label, e.g. "Postgres (SQL)" or "Titan-C (Gremlin)".
  virtual std::string name() const = 0;

  /// Bulk-loads the static snapshot (vendor-specific loading mechanism).
  virtual Status Load(const snb::Dataset& data) = 0;

  // --- §4.2 read-only queries -----------------------------------------
  /// Person profile by id (point lookup).
  virtual Result<QueryResult> PointLookup(int64_t person_id) = 0;
  /// Friends with names (1-hop).
  virtual Result<QueryResult> OneHop(int64_t person_id) = 0;
  /// Distinct friends-of-friends excluding self (2-hop).
  virtual Result<QueryResult> TwoHop(int64_t person_id) = 0;
  /// Unweighted shortest-path length over knows; -1 if unreachable.
  virtual Result<int> ShortestPathLen(int64_t from_person,
                                      int64_t to_person) = 0;

  // --- §4.3 short reads -------------------------------------------------
  /// Most recent posts of a person (id, content, creationDate).
  virtual Result<QueryResult> RecentPosts(int64_t person_id,
                                          int64_t limit) = 0;

  // --- Additional LDBC-style interactive reads ---------------------------
  /// IC1-lite: friends of a person with the given first name
  /// (id, lastName).
  virtual Result<QueryResult> FriendsWithName(
      int64_t person_id, const std::string& first_name) = 0;
  /// IS7-lite: direct comment replies to a post
  /// (comment id, content, creator person id).
  virtual Result<QueryResult> RepliesOfPost(int64_t post_id) = 0;
  /// Aggregation read: the `limit` most prolific post creators
  /// (person id, post count), count descending then id ascending.
  virtual Result<QueryResult> TopPosters(int64_t limit) = 0;

  // --- Updates (U1-U8), applied by the single writer --------------------
  virtual Status Apply(const snb::UpdateOp& op) = 0;

  /// Resident database size (Table 1's per-system column).
  virtual uint64_t SizeBytes() const = 0;

  // --- Statement lifecycle (Prepare/Bind/Execute, DESIGN.md §8) ---------
  /// Opts the SUT into the prepared-statement path: call before Load, and
  /// the fixed workload statement set is prepared once at Load time with
  /// per-call methods binding parameters only. Default: no-op — every
  /// query parses per call, the paper's methodology.
  virtual void EnablePlanCache() {}
  virtual bool plan_cache_enabled() const { return false; }
  /// Aggregated plan-cache traffic for this SUT's engine cache(s); zeros
  /// when the cache is disabled.
  virtual lang::PlanCacheStats plan_cache_stats() const { return {}; }
  /// The workload statement text behind a driver query kind
  /// ("point_lookup", "one_hop", "two_hop", "recent_posts"); empty when
  /// the SUT has no textual statement form (Gremlin builds traversals).
  virtual std::string StatementText(std::string_view kind) const {
    (void)kind;
    return std::string();
  }

  // --- Landmark-accelerated shortest paths (DESIGN.md §9) ---------------
  /// Opts the SUT into the shared landmark index: call before Load, and
  /// ShortestPathLen answers through landmark-derived bounds that prune
  /// (often eliminate) the per-call BFS, with invalidation hooks on the
  /// knows write path keeping answers exact. `options` tunes hub count,
  /// selection policy, and repair budgets. Default: off — every path
  /// query re-runs its engine's BFS, the paper's methodology.
  virtual void EnableLandmarks(const LandmarkOptions& options = {}) {
    (void)options;
  }
  virtual bool landmarks_enabled() const { return false; }
  /// Aggregated landmark-index traffic; zeros when disabled.
  virtual LandmarkStats landmark_stats() const { return {}; }
};

/// Factory identifiers: the paper's eight configurations plus the matrix
/// engine (the linear-algebra design point the paper omits, DESIGN.md
/// §10).
enum class SutKind {
  kNeo4jCypher,
  kNeo4jGremlin,
  kTitanC,
  kTitanB,
  kSqlg,
  kPostgresSql,
  kVirtuosoSql,
  kVirtuosoSparql,
  kMatrix,
};

/// Everything a factory call can toggle on a fresh SUT before Load. One
/// struct instead of a growing ladder of bool parameters: call sites name
/// what they set, and new knobs don't multiply overloads.
struct SutOptions {
  /// Prepared-statement/plan-cache path (the --plan_cache flag).
  bool plan_cache = false;
  /// Shared landmark shortest-path index (the --landmarks flag).
  bool landmarks = false;
  /// Tuning for the landmark index; only read when `landmarks` is true.
  LandmarkOptions landmark_options;
  /// Durable storage (the --durable flag): when `durability.enabled`, the
  /// SUTs with a paged analog open pager/WAL-backed stores under
  /// `durability.dir` — Titan-B's BerkeleyDB analog becomes PagedBTreeKv,
  /// the relational engines put heap/column tables on paged storage, and
  /// Neo4j-Cypher journals writes and fsyncs real checkpoints. The other
  /// configurations stay memory-resident (documented in DESIGN.md §12).
  storage::DurabilityOptions durability;
};

/// Creates a fresh SUT of the given kind with the selected opt-in read
/// structures enabled before any Load. The canonical factory form.
std::unique_ptr<Sut> MakeSut(SutKind kind, const SutOptions& options);

/// Creates a fresh, empty SUT of the given kind (no opt-in structures).
std::unique_ptr<Sut> MakeSut(SutKind kind);

/// Creates a SUT selected by configuration name (see ParseSutKind for the
/// accepted spellings). InvalidArgument for unknown names.
Result<std::unique_ptr<Sut>> MakeSut(std::string_view name);

/// All nine configurations in column order (the paper's eight, then the
/// matrix extension).
std::vector<SutKind> AllSutKinds();

/// Seeds a landmark index from the SNB snapshot (persons + knows) and
/// builds it. Shared by every SUT's Load when landmarks are enabled, so
/// all eight configurations accelerate the same structure the same way.
void SeedLandmarkIndex(const snb::Dataset& data, LandmarkIndex* index);

const char* SutKindName(SutKind kind);

/// Stable lowercase identifier ("postgres", "neo4j", "titan-c", ...);
/// used for flags, metric names, and report keys.
const char* SutKindId(SutKind kind);

/// Parses a configuration name: the SutKindId spellings plus the common
/// aliases "neo4j-cypher", "virtuoso-sql", "titan", and the full column
/// labels ("Postgres (SQL)", ...), case-insensitively. InvalidArgument
/// (with the accepted spellings in the message) for anything else.
Result<SutKind> ParseSutKind(std::string_view name);

}  // namespace graphbench

#endif  // GRAPHBENCH_SUT_SUT_H_
