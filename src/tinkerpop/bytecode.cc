#include "tinkerpop/bytecode.h"

#include "util/json.h"
#include "util/string_util.h"

namespace graphbench {
namespace gremlinio {

// GraphSON 3.0 analog: traversals and results travel as typed JSON, the
// format the real Gremlin Server speaks. The encode/parse cost on every
// request is a genuine component of the TinkerPop overhead (§4.2, §4.4).

namespace {

const char* OpName(GremlinStep::Kind kind) {
  switch (kind) {
    case GremlinStep::Kind::kV: return "V";
    case GremlinStep::Kind::kHasIndexed: return "hasIndexed";
    case GremlinStep::Kind::kHas: return "has";
    case GremlinStep::Kind::kOut: return "out";
    case GremlinStep::Kind::kIn: return "in";
    case GremlinStep::Kind::kBoth: return "both";
    case GremlinStep::Kind::kValues: return "values";
    case GremlinStep::Kind::kDedup: return "dedup";
    case GremlinStep::Kind::kLimit: return "limit";
    case GremlinStep::Kind::kCount: return "count";
    case GremlinStep::Kind::kAs: return "as";
    case GremlinStep::Kind::kWhereNeq: return "whereNeq";
    case GremlinStep::Kind::kShortestPath: return "shortestPath";
    case GremlinStep::Kind::kAddV: return "addV";
    case GremlinStep::Kind::kAddE: return "addE";
    case GremlinStep::Kind::kOrderBy: return "orderBy";
    case GremlinStep::Kind::kValueMap: return "valueMap";
    case GremlinStep::Kind::kAddEdgeTo: return "addEdgeTo";
    case GremlinStep::Kind::kDropEdgeTo: return "dropEdgeTo";
    case GremlinStep::Kind::kGroupCount: return "groupCount";
  }
  return "unknown";
}

Result<GremlinStep::Kind> OpKind(const std::string& name) {
  using K = GremlinStep::Kind;
  static constexpr std::pair<const char*, K> kOps[] = {
      {"V", K::kV},
      {"hasIndexed", K::kHasIndexed},
      {"has", K::kHas},
      {"out", K::kOut},
      {"in", K::kIn},
      {"both", K::kBoth},
      {"values", K::kValues},
      {"dedup", K::kDedup},
      {"limit", K::kLimit},
      {"count", K::kCount},
      {"as", K::kAs},
      {"whereNeq", K::kWhereNeq},
      {"shortestPath", K::kShortestPath},
      {"addV", K::kAddV},
      {"addE", K::kAddE},
      {"orderBy", K::kOrderBy},
      {"valueMap", K::kValueMap},
      {"addEdgeTo", K::kAddEdgeTo},
      {"dropEdgeTo", K::kDropEdgeTo},
      {"groupCount", K::kGroupCount},
  };
  for (const auto& [op, kind] : kOps) {
    if (name == op) return kind;
  }
  return Status::Corruption("unknown gremlin op " + name);
}

Json ValueToJson(const Value& v) {
  switch (v.type()) {
    case Value::Type::kNull:
      return Json::Null();
    case Value::Type::kBool:
      return Json::Bool(v.as_bool());
    case Value::Type::kInt: {
      Json typed = Json::Object();
      typed.Set("@type", Json::Str("g:Int64"));
      typed.Set("@value", Json::Int(v.as_int()));
      return typed;
    }
    case Value::Type::kDouble: {
      Json typed = Json::Object();
      typed.Set("@type", Json::Str("g:Double"));
      typed.Set("@value", Json::Number(v.as_double()));
      return typed;
    }
    case Value::Type::kString:
      return Json::Str(v.as_string());
  }
  return Json::Null();
}

Result<Value> JsonToValue(const Json& j) {
  switch (j.type()) {
    case Json::Type::kNull:
      return Value();
    case Json::Type::kBool:
      return Value(j.as_bool());
    case Json::Type::kString:
      return Value(j.as_string());
    case Json::Type::kNumber:
      // Bare numbers only appear in step metadata (n); typed values carry
      // the GraphSON wrapper.
      return Value(j.as_int());
    case Json::Type::kObject: {
      const std::string& type = j.Get("@type").as_string();
      if (type == "g:Int64") return Value(j.Get("@value").as_int());
      if (type == "g:Double") return Value(j.Get("@value").as_number());
      return Status::Corruption("unknown GraphSON type " + type);
    }
    default:
      return Status::Corruption("unexpected GraphSON value");
  }
}

Json PropsToJson(const PropertyMap& props) {
  Json obj = Json::Object();
  for (const auto& [key, value] : props.entries()) {
    obj.Set(key, ValueToJson(value));
  }
  return obj;
}

Result<PropertyMap> JsonToProps(const Json& j) {
  PropertyMap out;
  for (const auto& [key, value] : j.object_pairs()) {
    GB_ASSIGN_OR_RETURN(Value v, JsonToValue(value));
    out.Set(key, std::move(v));
  }
  return out;
}

}  // namespace

std::string EncodeTraversal(const Traversal& traversal) {
  Json bytecode = Json::Object();
  bytecode.Set("@type", Json::Str("g:Bytecode"));
  Json steps = Json::Array();
  for (const GremlinStep& step : traversal.steps()) {
    Json s = Json::Object();
    s.Set("op", Json::Str(OpName(step.kind)));
    if (!step.label.empty()) s.Set("label", Json::Str(step.label));
    if (!step.key.empty()) s.Set("key", Json::Str(step.key));
    if (!step.value.is_null()) s.Set("value", ValueToJson(step.value));
    if (step.n != 0) s.Set("n", Json::Int(step.n));
    if (!step.name.empty()) s.Set("name", Json::Str(step.name));
    if (!step.name2.empty()) s.Set("name2", Json::Str(step.name2));
    if (!step.props.empty()) s.Set("props", PropsToJson(step.props));
    steps.Append(std::move(s));
  }
  bytecode.Set("step", std::move(steps));
  return bytecode.Serialize();
}

Result<Traversal> DecodeTraversal(std::string_view bytes) {
  GB_ASSIGN_OR_RETURN(Json bytecode, Json::Parse(bytes));
  if (bytecode.Get("@type").as_string() != "g:Bytecode") {
    return Status::Corruption("not gremlin bytecode");
  }
  Traversal t;
  const Json& steps = bytecode.Get("step");
  for (size_t i = 0; i < steps.size(); ++i) {
    const Json& s = steps.at(i);
    GB_ASSIGN_OR_RETURN(GremlinStep::Kind kind,
                        OpKind(s.Get("op").as_string()));
    GremlinStep step{kind};
    step.label = s.Get("label").as_string();
    step.key = s.Get("key").as_string();
    if (s.Has("value")) {
      GB_ASSIGN_OR_RETURN(step.value, JsonToValue(s.Get("value")));
    }
    if (s.Has("n")) step.n = s.Get("n").as_int();
    step.name = s.Get("name").as_string();
    step.name2 = s.Get("name2").as_string();
    if (s.Has("props")) {
      GB_ASSIGN_OR_RETURN(step.props, JsonToProps(s.Get("props")));
    }
    t.mutable_steps()->push_back(std::move(step));
  }
  return t;
}

std::string EncodeResults(const std::vector<Value>& results) {
  // Response envelope mirroring the Gremlin Server protocol.
  Json response = Json::Object();
  Json status = Json::Object();
  status.Set("code", Json::Int(200));
  response.Set("status", std::move(status));
  Json data = Json::Array();
  for (const Value& v : results) data.Append(ValueToJson(v));
  Json result = Json::Object();
  result.Set("data", std::move(data));
  response.Set("result", std::move(result));
  return response.Serialize();
}

Result<std::vector<Value>> DecodeResults(std::string_view bytes) {
  GB_ASSIGN_OR_RETURN(Json response, Json::Parse(bytes));
  if (response.Get("status").Get("code").as_int() != 200) {
    return Status::Corruption("gremlin error response");
  }
  const Json& data = response.Get("result").Get("data");
  std::vector<Value> out;
  out.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    GB_ASSIGN_OR_RETURN(Value v, JsonToValue(data.at(i)));
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace gremlinio
}  // namespace graphbench
