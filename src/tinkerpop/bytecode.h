#ifndef GRAPHBENCH_TINKERPOP_BYTECODE_H_
#define GRAPHBENCH_TINKERPOP_BYTECODE_H_

#include <string>
#include <string_view>
#include <vector>

#include "tinkerpop/traversal.h"
#include "util/result.h"

namespace graphbench {

/// Gremlin bytecode analog: the wire form a Gremlin client sends to the
/// Gremlin Server. Every Submit() serializes the traversal and every
/// response serializes the results — real per-request codec work, part of
/// the server overhead the paper quantifies (§4.2, §4.4).
namespace gremlinio {

std::string EncodeTraversal(const Traversal& traversal);
Result<Traversal> DecodeTraversal(std::string_view bytes);

std::string EncodeResults(const std::vector<Value>& results);
Result<std::vector<Value>> DecodeResults(std::string_view bytes);

}  // namespace gremlinio

}  // namespace graphbench

#endif  // GRAPHBENCH_TINKERPOP_BYTECODE_H_
