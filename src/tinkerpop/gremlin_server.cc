#include "tinkerpop/gremlin_server.h"

#include <future>

#include "tinkerpop/bytecode.h"
#include "util/stopwatch.h"

namespace graphbench {

GremlinServer::GremlinServer(GremlinGraph* graph,
                             GremlinServerOptions options)
    : graph_(graph), pool_(options.workers, options.max_queue) {}

GremlinServer::~GremlinServer() { pool_.Shutdown(); }

Result<std::vector<Value>> GremlinServer::Submit(const Traversal& traversal) {
  const uint64_t trace_id = obs::kEnabled ? trace_.NextTraceId() : 0;
  const uint64_t submit_start = obs::kEnabled ? NowMicros() : 0;

  // Client side: encode the traversal to bytecode.
  std::string request;
  {
    obs::ScopedSpan span(&trace_, obs::Stage::kSerialize, trace_id);
    request = gremlinio::EncodeTraversal(traversal);
  }

  auto response = std::make_shared<std::promise<Result<std::string>>>();
  std::future<Result<std::string>> reply = response->get_future();

  GremlinGraph* graph = graph_;
  obs::TraceRing* trace = &trace_;
  const uint64_t enqueued_at = obs::kEnabled ? NowMicros() : 0;
  bool accepted = pool_.Submit([graph, request = std::move(request),
                                response, trace, trace_id,
                                enqueued_at]() mutable {
    uint64_t started_at = 0;
    if constexpr (obs::kEnabled) {
      started_at = NowMicros();
      trace->Record(obs::Span{trace_id, obs::Stage::kQueue, enqueued_at,
                              started_at - enqueued_at});
    }
    // Server side: decode, execute, encode the response frame. The
    // execute span must be recorded BEFORE set_value — set_value wakes
    // the waiting client, and any scheduling delay after it would be
    // misattributed to this stage.
    auto record_execute = [&] {
      if constexpr (obs::kEnabled) {
        trace->Record(obs::Span{trace_id, obs::Stage::kExecute, started_at,
                                NowMicros() - started_at});
      }
    };
    auto decoded = gremlinio::DecodeTraversal(request);
    if (!decoded.ok()) {
      record_execute();
      response->set_value(decoded.status());
      return;
    }
    auto results = ExecuteTraversal(graph, *decoded);
    if (!results.ok()) {
      record_execute();
      response->set_value(results.status());
      return;
    }
    std::string frame = gremlinio::EncodeResults(*results);
    record_execute();
    response->set_value(std::move(frame));
  });
  if (!accepted) {
    ++rejected_;
    return Status::Busy("gremlin server request queue full");
  }

  Result<std::string> frame = reply.get();
  if (!frame.ok()) return frame.status();
  ++served_;
  // Client side: decode the response frame.
  obs::ScopedSpan span(&trace_, obs::Stage::kDeserialize, trace_id);
  auto decoded = gremlinio::DecodeResults(*frame);
  if constexpr (obs::kEnabled) {
    submit_micros_.Add(NowMicros() - submit_start);
  }
  return decoded;
}

Result<std::vector<Value>> GremlinServer::SubmitEmbedded(
    const Traversal& traversal) {
  return ExecuteTraversal(graph_, traversal);
}

}  // namespace graphbench
