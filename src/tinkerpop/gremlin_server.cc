#include "tinkerpop/gremlin_server.h"

#include <future>

#include "tinkerpop/bytecode.h"

namespace graphbench {

GremlinServer::GremlinServer(GremlinGraph* graph,
                             GremlinServerOptions options)
    : graph_(graph), pool_(options.workers, options.max_queue) {}

GremlinServer::~GremlinServer() { pool_.Shutdown(); }

Result<std::vector<Value>> GremlinServer::Submit(const Traversal& traversal) {
  // Client side: encode the traversal to bytecode.
  std::string request = gremlinio::EncodeTraversal(traversal);

  auto response = std::make_shared<std::promise<Result<std::string>>>();
  std::future<Result<std::string>> reply = response->get_future();

  GremlinGraph* graph = graph_;
  bool accepted = pool_.Submit([graph, request = std::move(request),
                                response]() mutable {
    // Server side: decode, execute, encode the response frame.
    auto decoded = gremlinio::DecodeTraversal(request);
    if (!decoded.ok()) {
      response->set_value(decoded.status());
      return;
    }
    auto results = ExecuteTraversal(graph, *decoded);
    if (!results.ok()) {
      response->set_value(results.status());
      return;
    }
    response->set_value(gremlinio::EncodeResults(*results));
  });
  if (!accepted) {
    ++rejected_;
    return Status::Busy("gremlin server request queue full");
  }

  Result<std::string> frame = reply.get();
  if (!frame.ok()) return frame.status();
  ++served_;
  // Client side: decode the response frame.
  return gremlinio::DecodeResults(*frame);
}

Result<std::vector<Value>> GremlinServer::SubmitEmbedded(
    const Traversal& traversal) {
  return ExecuteTraversal(graph_, traversal);
}

}  // namespace graphbench
