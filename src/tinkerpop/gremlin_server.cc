#include "tinkerpop/gremlin_server.h"

#include <future>

#include "obs/profiler.h"
#include "tinkerpop/bytecode.h"
#include "util/stopwatch.h"

namespace graphbench {

GremlinServer::GremlinServer(GremlinGraph* graph,
                             GremlinServerOptions options)
    : graph_(graph), pool_(options.workers, options.max_queue) {
  if (options.plan_cache_capacity > 0) {
    plan_cache_ = std::make_unique<lang::PlanCache<Traversal>>(
        "gremlin", options.plan_cache_capacity);
  }
}

GremlinServer::~GremlinServer() { pool_.Shutdown(); }

Result<std::vector<Value>> GremlinServer::Submit(const Traversal& traversal) {
  // Opened first so trace-id/span setup is attributed rather than lost.
  obs::OpTimer serialize_op("serialize");
  const uint64_t trace_id = obs::kEnabled ? trace_.NextTraceId() : 0;
  const uint64_t submit_start = obs::kEnabled ? NowMicros() : 0;

  // The submitting thread's active profile, handed to the worker so the
  // traversal's per-step OpTimers land in the client's QueryProfile. Safe:
  // the client blocks on reply.get() while the worker runs, so only one
  // thread records at a time.
  obs::QueryProfile* profile = obs::ActiveProfile();

  // Client side: encode the traversal to bytecode.
  std::string request;
  {
    obs::ScopedSpan span(&trace_, obs::Stage::kSerialize, trace_id);
    request = gremlinio::EncodeTraversal(traversal);
  }
  serialize_op.Stop();

  // Client-side dispatch: promise/future setup and packaging the request
  // closure. Stops before the pool hand-off — once the worker can run it
  // may record into the same profile, so this timer must not overlap it
  // (the hand-off itself lands in the worker's "queue" wait).
  obs::OpTimer dispatch_op("dispatchRequest");
  auto response = std::make_shared<std::promise<Result<std::string>>>();
  std::future<Result<std::string>> reply = response->get_future();
  // Written by the worker right before set_value so the client can
  // attribute the wake-up delay of the blocking reply.get() (real Gremlin
  // clients see the same scheduling gap on the response path).
  auto finished_at = std::make_shared<std::atomic<uint64_t>>(0);

  GremlinGraph* graph = graph_;
  obs::TraceRing* trace = &trace_;
  lang::PlanCache<Traversal>* plan_cache = plan_cache_.get();
  // Stamped right before the pool hand-off (after dispatch_op stops) so the
  // worker's "queue" wait never overlaps the client's dispatchRequest time.
  auto enqueued_at = std::make_shared<std::atomic<uint64_t>>(0);
  std::function<void()> task = [graph, request = std::move(request),
                                response, trace, trace_id, enqueued_at,
                                profile, finished_at,
                                plan_cache]() mutable {
    obs::ProfileScope profile_scope(profile);
    uint64_t started_at = 0;
    if constexpr (obs::kEnabled) {
      started_at = NowMicros();
      uint64_t enq = enqueued_at->load();
      uint64_t waited = started_at > enq ? started_at - enq : 0;
      trace->Record(
          obs::Span{trace_id, obs::Stage::kQueue, enq, waited});
      if (profile != nullptr) {
        profile->Record("queue", 1, 0, waited, waited);
      }
    }
    // Server side: decode, execute, encode the response frame. The
    // execute span must be recorded BEFORE set_value — set_value wakes
    // the waiting client, and any scheduling delay after it would be
    // misattributed to this stage.
    auto record_execute = [&] {
      if constexpr (obs::kEnabled) {
        trace->Record(obs::Span{trace_id, obs::Stage::kExecute, started_at,
                                NowMicros() - started_at});
      }
    };
    // Decode the bytecode, or reuse the cached traversal template for a
    // byte-identical request (the decodeRequest profiler row shrinks to
    // the cache probe on hits; the queue/execute/encode tax stays).
    obs::OpTimer decode_op("decodeRequest");
    std::shared_ptr<const Traversal> traversal;
    if (plan_cache != nullptr) {
      traversal = plan_cache->Lookup(request);
    }
    if (traversal == nullptr) {
      auto decoded = gremlinio::DecodeTraversal(request);
      if (!decoded.ok()) {
        decode_op.Stop();
        record_execute();
        if constexpr (obs::kEnabled) finished_at->store(NowMicros());
        response->set_value(decoded.status());
        return;
      }
      traversal = std::make_shared<const Traversal>(std::move(*decoded));
      if (plan_cache != nullptr) plan_cache->Insert(request, traversal);
    }
    decode_op.Stop();
    auto results = ExecuteTraversal(graph, *traversal);
    if (!results.ok()) {
      record_execute();
      if constexpr (obs::kEnabled) finished_at->store(NowMicros());
      response->set_value(results.status());
      return;
    }
    obs::OpTimer encode_op("encodeResults");
    std::string frame = gremlinio::EncodeResults(*results);
    encode_op.AddRows(results->size());
    encode_op.Stop();
    record_execute();
    if constexpr (obs::kEnabled) finished_at->store(NowMicros());
    response->set_value(std::move(frame));
  };
  dispatch_op.Stop();
  if constexpr (obs::kEnabled) enqueued_at->store(NowMicros());
  bool accepted = pool_.Submit(std::move(task));
  if (!accepted) {
    ++rejected_;
    return Status::Busy("gremlin server request queue full");
  }

  Result<std::string> frame = reply.get();
  if constexpr (obs::kEnabled) {
    // Wake-up delay between the worker publishing the reply and this
    // thread resuming — response-path scheduling the step timers can't see.
    if (profile != nullptr && finished_at->load() != 0) {
      uint64_t now = NowMicros();
      uint64_t done = finished_at->load();
      uint64_t wake = now > done ? now - done : 0;
      profile->Record("awaitResponse", 1, 0, wake, wake);
    }
  }
  if (!frame.ok()) return frame.status();
  ++served_;
  // Client side: decode the response frame. The span's ring record and the
  // submit histogram update happen inside the timer so the tail of Submit
  // stays attributed.
  obs::OpTimer op("deserialize");
  Result<std::vector<Value>> decoded = Status::Internal("not decoded");
  {
    obs::ScopedSpan span(&trace_, obs::Stage::kDeserialize, trace_id);
    decoded = gremlinio::DecodeResults(*frame);
  }
  if (decoded.ok()) op.AddRows(decoded->size());
  if constexpr (obs::kEnabled) {
    submit_micros_.Add(NowMicros() - submit_start);
  }
  op.Stop();
  return decoded;
}

Result<std::vector<Value>> GremlinServer::SubmitEmbedded(
    const Traversal& traversal) {
  return ExecuteTraversal(graph_, traversal);
}

}  // namespace graphbench
