#ifndef GRAPHBENCH_TINKERPOP_GREMLIN_SERVER_H_
#define GRAPHBENCH_TINKERPOP_GREMLIN_SERVER_H_

#include <atomic>
#include <memory>

#include "lang/plan_cache.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tinkerpop/structure.h"
#include "tinkerpop/traversal.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace graphbench {

struct GremlinServerOptions {
  /// Worker threads executing traversals (gremlinPool in the real server).
  size_t workers = 4;
  /// Bounded request queue; submissions beyond it are rejected. The real
  /// Gremlin Server hangs and eventually crashes under floods of complex
  /// queries (§4.4) — we degrade to Busy errors, which the driver counts.
  size_t max_queue = 256;
  /// Server-side cache of decoded bytecode→traversal templates, keyed by
  /// the bytecode string; 0 disables it (the paper-faithful default:
  /// every request re-decodes). Because parameters are still inlined in
  /// the bytecode, only byte-identical submissions hit (see ROADMAP:
  /// parameterized Gremlin bytecode).
  size_t plan_cache_capacity = 0;
};

/// In-process Gremlin Server analog. Clients submit traversals which are
/// (1) serialized to bytecode, (2) queued to a worker pool, (3) decoded
/// and executed against the provider graph, (4) results serialized back
/// and decoded client-side. Steps 1-4 are real work on every request —
/// the platform-agnostic-access tax of Figure 2.
class GremlinServer {
 public:
  GremlinServer(GremlinGraph* graph, GremlinServerOptions options = {});
  ~GremlinServer();

  GremlinServer(const GremlinServer&) = delete;
  GremlinServer& operator=(const GremlinServer&) = delete;

  /// Synchronous round trip. Busy when the request queue is full.
  Result<std::vector<Value>> Submit(const Traversal& traversal);

  /// Bypass the server layer: execute directly against the provider
  /// (TinkerPop "embedded" mode). Used by the ablation benchmark.
  Result<std::vector<Value>> SubmitEmbedded(const Traversal& traversal);

  uint64_t requests_served() const { return served_; }
  uint64_t requests_rejected() const { return rejected_; }

  GremlinGraph* graph() { return graph_; }

  /// Per-stage spans of recent Submit calls: serialize (client encode),
  /// queue (wait for a worker), execute (server-side decode + run +
  /// encode), deserialize (client decode). Their per-request sum is the
  /// Figure 2 platform-agnostic-access tax, attributed.
  const obs::TraceRing& trace() const { return trace_; }
  obs::TraceRing* mutable_trace() { return &trace_; }

  /// Total wall-clock Submit latency (accepted requests only).
  const Histogram& submit_latency_micros() const { return submit_micros_; }

  bool plan_cache_enabled() const { return plan_cache_ != nullptr; }
  lang::PlanCacheStats plan_cache_stats() const {
    return plan_cache_ == nullptr ? lang::PlanCacheStats{}
                                  : plan_cache_->Stats();
  }

 private:
  GremlinGraph* graph_;
  /// Decoded-traversal cache shared by the workers; null when disabled.
  std::unique_ptr<lang::PlanCache<Traversal>> plan_cache_;
  ThreadPool pool_;
  obs::TraceRing trace_;
  Histogram submit_micros_;
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace graphbench

#endif  // GRAPHBENCH_TINKERPOP_GREMLIN_SERVER_H_
