#ifndef GRAPHBENCH_TINKERPOP_STRUCTURE_H_
#define GRAPHBENCH_TINKERPOP_STRUCTURE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph_types.h"
#include "util/result.h"

namespace graphbench {

/// A provider-scoped vertex handle flowing through Gremlin traversals.
struct GVertex {
  uint64_t id = ~uint64_t{0};
  friend bool operator==(const GVertex&, const GVertex&) = default;
};

/// The Gremlin Structure API analog: the narrow, imperative surface every
/// TinkerPop provider exposes. Each method is one "small request" to the
/// underlying store — traversals compose many of these calls, which is the
/// overhead the paper measures against native query interfaces (§4.2).
class GremlinGraph {
 public:
  virtual ~GremlinGraph() = default;

  virtual Result<GVertex> AddVertex(std::string_view label,
                                    const PropertyMap& props) = 0;
  virtual Status AddEdge(std::string_view label, GVertex from, GVertex to,
                         const PropertyMap& props) = 0;

  /// g.V(from).outE(label).where(inV().is(to)).drop(): removes one edge
  /// between the endpoints, either orientation. Default refuses so
  /// providers opt in explicitly.
  virtual Status RemoveEdge(std::string_view label, GVertex from,
                            GVertex to) {
    (void)label;
    (void)from;
    (void)to;
    return Status::NotSupported("RemoveEdge");
  }

  /// g.V().has(label, key, value): index-backed vertex lookup.
  virtual Result<std::vector<GVertex>> VerticesByProperty(
      std::string_view label, std::string_view key, const Value& value) = 0;

  /// g.V() / g.V().hasLabel(label).
  virtual Result<std::vector<GVertex>> AllVertices(
      std::string_view label) = 0;

  /// One adjacency expansion.
  virtual Result<std::vector<GVertex>> Adjacent(GVertex v,
                                                std::string_view edge_label,
                                                Direction dir) = 0;

  /// One property read.
  virtual Result<Value> Property(GVertex v, std::string_view key) = 0;

  virtual Result<std::string> Label(GVertex v) = 0;

  virtual uint64_t VertexCount() const = 0;
  virtual uint64_t EdgeCount() const = 0;
  virtual uint64_t ApproximateSizeBytes() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace graphbench

#endif  // GRAPHBENCH_TINKERPOP_STRUCTURE_H_
